// graph_analytics — the "whole substrate" tour: runs the full GraphBLAS
// algorithm collection (BFS, connected components, PageRank, triangle
// count, K-truss, SSSP) on one graph, demonstrating that the translation
// methodology of the paper extends past delta-stepping.
//
// Usage: graph_analytics [--scale 11] [--mtx file.mtx]
#include <algorithm>
#include <iostream>

#include "algorithms/bfs.hpp"
#include "algorithms/connected_components.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/triangles.hpp"
#include "bench_support/cli.hpp"
#include "graph/generators.hpp"
#include "graph/matrix_market.hpp"
#include "graph/stats.hpp"
#include "graph/weights.hpp"
#include "sssp/delta_stepping_fused.hpp"

int main(int argc, char** argv) {
  using namespace dsg;
  CliArgs args(argc, argv);

  EdgeList graph;
  if (args.has("mtx")) {
    graph = read_matrix_market_file(args.get("mtx"));
  } else {
    RmatParams params;
    params.scale = static_cast<unsigned>(args.get_int("scale", 11));
    params.edge_factor = 10;
    params.seed = 4;
    graph = generate_rmat(params);
  }
  graph.symmetrize();
  assign_unit_weights(graph);
  graph.normalize();
  const auto a = graph.to_matrix();
  std::cout << "graph: " << format_stats(compute_stats(graph)) << "\n\n";

  // 1. BFS from vertex 0 (boolean semiring).
  const auto levels = bfs_levels_graphblas(a, 0);
  Index reached = 0, depth = 0;
  for (Index l : levels) {
    if (l != kUnreachedLevel) {
      ++reached;
      depth = std::max(depth, l);
    }
  }
  std::cout << "bfs:        " << reached << " reachable, depth " << depth
            << "\n";

  // 2. Connected components ((min, first) label propagation).
  const auto labels = connected_components_graphblas(a);
  std::cout << "components: " << count_components(labels) << "\n";

  // 3. PageRank ((plus, times) power iteration).
  const auto pr = pagerank_graphblas(a, {.tolerance = 1e-10});
  const auto top =
      std::max_element(pr.rank.begin(), pr.rank.end()) - pr.rank.begin();
  std::cout << "pagerank:   converged in " << pr.iterations
            << " iterations, top vertex " << top << " (rank "
            << pr.rank[static_cast<std::size_t>(top)] << ")\n";

  // 4. Triangles (masked (plus, times) mxm, the paper's Sec. II-C pattern).
  std::cout << "triangles:  " << triangle_count_graphblas(a) << "\n";

  // 5. 3-truss (iterated support filtering).
  const auto truss = k_truss_graphblas(a, 3);
  std::cout << "3-truss:    " << truss.nvals() << " of " << a.nvals()
            << " directed edges survive\n";

  // 6. SSSP ((min, +) delta-stepping — the paper's subject).
  const auto sssp = delta_stepping_fused(a, 0, {});
  std::cout << "sssp:       " << sssp.stats.outer_iterations << " buckets, "
            << sssp.stats.relax_requests << " relax requests\n";
  return 0;
}
