// graph_analytics — the "whole substrate" tour: runs the full GraphBLAS
// algorithm collection (BFS, connected components, PageRank, triangle
// count, K-truss, SSSP) on one graph, demonstrating that the translation
// methodology of the paper extends past delta-stepping.
//
// Usage: graph_analytics [--scale 11] [--mtx file.mtx]
#include <algorithm>
#include <iostream>
#include <vector>

#include "algorithms/bfs.hpp"
#include "algorithms/connected_components.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/triangles.hpp"
#include "bench_support/cli.hpp"
#include "graph/generators.hpp"
#include "graph/matrix_market.hpp"
#include "graph/stats.hpp"
#include "graph/weights.hpp"
#include "sssp/solver.hpp"

int main(int argc, char** argv) {
  using namespace dsg;
  CliArgs args(argc, argv);

  EdgeList graph;
  if (args.has("mtx")) {
    graph = read_matrix_market_file(args.get("mtx"));
  } else {
    RmatParams params;
    params.scale = static_cast<unsigned>(args.get_int("scale", 11));
    params.edge_factor = 10;
    params.seed = 4;
    graph = generate_rmat(params);
  }
  graph.symmetrize();
  assign_unit_weights(graph);
  graph.normalize();
  const auto a = graph.to_matrix();
  std::cout << "graph: " << format_stats(compute_stats(graph)) << "\n\n";

  // 1. BFS from vertex 0 (boolean semiring).
  const auto levels = bfs_levels_graphblas(a, 0);
  Index reached = 0, depth = 0;
  for (Index l : levels) {
    if (l != kUnreachedLevel) {
      ++reached;
      depth = std::max(depth, l);
    }
  }
  std::cout << "bfs:        " << reached << " reachable, depth " << depth
            << "\n";

  // 2. Connected components ((min, first) label propagation).
  const auto labels = connected_components_graphblas(a);
  std::cout << "components: " << count_components(labels) << "\n";

  // 3. PageRank ((plus, times) power iteration).
  const auto pr = pagerank_graphblas(a, {.tolerance = 1e-10});
  const auto top =
      std::max_element(pr.rank.begin(), pr.rank.end()) - pr.rank.begin();
  std::cout << "pagerank:   converged in " << pr.iterations
            << " iterations, top vertex " << top << " (rank "
            << pr.rank[static_cast<std::size_t>(top)] << ")\n";

  // 4. Triangles (masked (plus, times) mxm, the paper's Sec. II-C pattern).
  std::cout << "triangles:  " << triangle_count_graphblas(a) << "\n";

  // 5. 3-truss (iterated support filtering).
  const auto truss = k_truss_graphblas(a, 3);
  std::cout << "3-truss:    " << truss.nvals() << " of " << a.nvals()
            << " directed edges survive\n";

  // 6. SSSP ((min, +) delta-stepping — the paper's subject), through the
  // plan/execute solver: the plan (weight validation + light/heavy split,
  // auto-selected delta) is built once and a batch of sampled sources runs
  // against it — the all-pairs-sampling shape, with preprocessing paid once.
  sssp::SsspSolver solver(a);  // kFused, auto delta
  const std::vector<Index> sample = {0, a.nrows() / 3, a.nrows() / 2,
                                     a.nrows() - 1};
  const auto runs = solver.solve_batch(sample);
  std::size_t reachable_total = 0;
  for (const auto& run : runs) {
    for (double d : run.dist) {
      if (d != kInfDist) ++reachable_total;
    }
  }
  std::cout << "sssp:       " << runs[0].stats.outer_iterations
            << " buckets from source 0, " << runs[0].stats.relax_requests
            << " relax requests; batch of " << sample.size()
            << " sources (delta=" << solver.delta() << " auto, plan reused) "
            << "reaches " << reachable_total << " vertex-pairs\n";
  return 0;
}
