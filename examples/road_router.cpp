// road_router — the high-diameter workload from the paper's motivation:
// a road-network-like weighted grid, point-to-point routing with actual
// path extraction (the feature the paper's implementations stop short of).
//
// Uses the plan/execute API the way a routing service would: ONE
// SsspSolver holds the preprocessed graph (weights validated, light/heavy
// split built, Δ auto-selected from the degree stats), and every routing
// query runs against that warm plan — preprocessing is paid once, not per
// query.  solve_with_paths() returns the shortest-path tree directly.
//
// Usage: road_router [--width 200] [--height 120] [--delta 0 (auto)]
//                    [--from 0] [--to <last>]
#include <iomanip>
#include <iostream>

#include "bench_support/cli.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "sssp/paths.hpp"
#include "sssp/solver.hpp"
#include "sssp/validate.hpp"

int main(int argc, char** argv) {
  using namespace dsg;
  CliArgs args(argc, argv);
  const auto width = static_cast<Index>(args.get_int("width", 200));
  const auto height = static_cast<Index>(args.get_int("height", 120));

  // City blocks: unit-ish travel times, diagonals slightly dearer.
  auto graph = generate_grid2d(width, height, /*diagonals=*/true);
  assign_uniform_weights(graph, 0.8, 1.6, 2024);
  graph.normalize();
  auto a = std::make_shared<const grb::Matrix<double>>(graph.to_matrix());

  const auto from = static_cast<Index>(args.get_int("from", 0));
  const auto to = static_cast<Index>(
      args.get_int("to", static_cast<long long>(width * height - 1)));

  // The router: plan once (delta <= 0 = auto-select from degree stats).
  sssp::SolverOptions options;
  options.algorithm = sssp::Algorithm::kFused;
  options.delta = args.get_double("delta", kAutoDelta);
  sssp::SsspSolver router(a, options);

  const auto result = router.solve_with_paths(from);

  const auto check = validate_sssp(*a, from, result.dist);
  if (!check.ok) {
    std::cerr << "INVALID RESULT: " << check.message << "\n";
    return 1;
  }

  if (result.dist[to] == kInfDist) {
    std::cout << "no route from " << from << " to " << to << "\n";
    return 0;
  }

  // The route comes straight out of the recovered shortest-path tree.
  const auto route = extract_path(result.parent, from, to);

  auto coord = [&](Index v) {
    // Named-string concat: the `"(" + std::string&&` rvalue operator+ chain
    // trips a GCC 12 -O3 -Wrestrict false positive under -Werror.
    std::string s = "(";
    s += std::to_string(v % width);
    s += ",";
    s += std::to_string(v / width);
    s += ")";
    return s;
  };
  std::cout << "grid " << width << "x" << height << ", "
            << a->nvals() << " directed road segments\n";
  std::cout << "plan: delta=" << std::setprecision(3) << router.delta()
            << (router.plan().delta_was_auto() ? " (auto)" : "")
            << ", setup " << router.plan().setup_seconds() * 1000.0
            << " ms — paid once, reused by every routing query\n";
  std::cout << "route " << coord(from) << " -> " << coord(to) << ": "
            << route.size() << " corners, travel time "
            << std::fixed << std::setprecision(2) << result.dist[to] << "\n";
  std::cout << "buckets processed: " << result.stats.outer_iterations
            << " (high-diameter graphs mean many buckets — the regime "
               "where delta-stepping's bucketing matters)\n";

  // Print a sparse sketch of the route (every ~10th corner).
  std::cout << "waypoints:";
  for (std::size_t k = 0; k < route.size();
       k += std::max<std::size_t>(1, route.size() / 10)) {
    std::cout << " " << coord(route[k]);
  }
  std::cout << " " << coord(route.back()) << "\n";

  // Sanity: the recovered route's weight equals the reported distance.
  const double w = path_weight(*a, route);
  std::cout << "route weight re-check: " << w << "\n";
  return std::abs(w - result.dist[to]) < 1e-6 ? 0 : 1;
}
