// road_router — the high-diameter workload from the paper's motivation:
// a road-network-like weighted grid, point-to-point routing with actual
// path extraction (the feature the paper's implementations stop short of).
//
// Builds a W x H grid with diagonals and travel-time weights, runs the
// fused delta-stepping, recovers the shortest-path tree, and prints the
// route between two street corners.
//
// Usage: road_router [--width 200] [--height 120] [--delta 1.0]
//                    [--from 0] [--to <last>]
#include <iomanip>
#include <iostream>

#include "bench_support/cli.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "sssp/delta_stepping_fused.hpp"
#include "sssp/paths.hpp"
#include "sssp/validate.hpp"

int main(int argc, char** argv) {
  using namespace dsg;
  CliArgs args(argc, argv);
  const auto width = static_cast<Index>(args.get_int("width", 200));
  const auto height = static_cast<Index>(args.get_int("height", 120));

  // City blocks: unit-ish travel times, diagonals slightly dearer.
  auto graph = generate_grid2d(width, height, /*diagonals=*/true);
  assign_uniform_weights(graph, 0.8, 1.6, 2024);
  graph.normalize();
  const auto a = graph.to_matrix();

  const auto from = static_cast<Index>(args.get_int("from", 0));
  const auto to = static_cast<Index>(
      args.get_int("to", static_cast<long long>(width * height - 1)));

  DeltaSteppingOptions options;
  options.delta = args.get_double("delta", 1.0);
  const auto result = delta_stepping_fused(a, from, options);

  const auto check = validate_sssp(a, from, result.dist);
  if (!check.ok) {
    std::cerr << "INVALID RESULT: " << check.message << "\n";
    return 1;
  }

  if (result.dist[to] == kInfDist) {
    std::cout << "no route from " << from << " to " << to << "\n";
    return 0;
  }

  // Recover the route through the shortest-path tree.
  const auto parent = recover_parents(a, from, result.dist);
  const auto route = extract_path(parent, from, to);

  auto coord = [&](Index v) {
    return "(" + std::to_string(v % width) + "," + std::to_string(v / width) +
           ")";
  };
  std::cout << "grid " << width << "x" << height << ", "
            << a.nvals() << " directed road segments\n";
  std::cout << "route " << coord(from) << " -> " << coord(to) << ": "
            << route.size() << " corners, travel time "
            << std::fixed << std::setprecision(2) << result.dist[to] << "\n";
  std::cout << "buckets processed: " << result.stats.outer_iterations
            << " (high-diameter graphs mean many buckets — the regime "
               "where delta-stepping's bucketing matters)\n";

  // Print a sparse sketch of the route (every ~10th corner).
  std::cout << "waypoints:";
  for (std::size_t k = 0; k < route.size();
       k += std::max<std::size_t>(1, route.size() / 10)) {
    std::cout << " " << coord(route[k]);
  }
  std::cout << " " << coord(route.back()) << "\n";

  // Sanity: the recovered route's weight equals the reported distance.
  const double w = path_weight(a, route);
  std::cout << "route weight re-check: " << w << "\n";
  return std::abs(w - result.dist[to]) < 1e-6 ? 0 : 1;
}
