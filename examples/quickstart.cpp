// quickstart — the smallest end-to-end use of the library:
//   1. build a graph (from a generator, or any .mtx / SNAP file),
//   2. run the GraphBLAS delta-stepping SSSP,
//   3. validate against Dijkstra and print a few distances.
//
// Usage:
//   quickstart                      # built-in RMAT graph
//   quickstart --mtx path/to/a.mtx  # Matrix Market input
//   quickstart --snap path/to/a.txt # SNAP edge list input
//   quickstart --source 5 --delta 2.0
#include <iostream>

#include "bench_support/cli.hpp"
#include "graph/generators.hpp"
#include "graph/matrix_market.hpp"
#include "graph/snap_reader.hpp"
#include "graph/stats.hpp"
#include "graph/weights.hpp"
#include "sssp/delta_stepping_graphblas.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/validate.hpp"

int main(int argc, char** argv) {
  using namespace dsg;
  CliArgs args(argc, argv);

  // 1. Load or generate a graph.
  EdgeList graph;
  if (args.has("mtx")) {
    graph = read_matrix_market_file(args.get("mtx"));
  } else if (args.has("snap")) {
    graph = read_snap_file(args.get("snap")).graph;
  } else {
    graph = generate_rmat({.scale = 12, .edge_factor = 8, .seed = 1});
    graph.symmetrize();
    assign_unit_weights(graph);
  }
  graph.normalize();  // simple graph: no self loops, min-weight dedup
  std::cout << "graph: " << format_stats(compute_stats(graph)) << "\n";

  // 2. Run the linear-algebraic delta-stepping on the adjacency matrix.
  const auto a = graph.to_matrix();
  const auto source = static_cast<Index>(args.get_int("source", 0));
  DeltaSteppingOptions options;
  options.delta = args.get_double("delta", 1.0);

  const auto result = delta_stepping_graphblas(a, source, options);
  std::cout << "delta-stepping: " << result.stats.outer_iterations
            << " buckets, " << result.stats.light_phases
            << " light phases, " << result.stats.relax_requests
            << " relax requests\n";

  // 3. Validate: structural SSSP invariants + agreement with Dijkstra.
  const auto check = validate_sssp(a, source, result.dist);
  if (!check.ok) {
    std::cerr << "INVALID RESULT: " << check.message << "\n";
    return 1;
  }
  const auto reference = dijkstra(a, source);
  const auto agree = compare_distances(reference.dist, result.dist);
  if (!agree.ok) {
    std::cerr << "DISAGREES WITH DIJKSTRA: " << agree.message << "\n";
    return 1;
  }
  std::cout << "validated: matches Dijkstra on all " << a.nrows()
            << " vertices\n";

  // Print the first few finite distances.
  std::cout << "sample distances from " << source << ":";
  int shown = 0;
  for (Index v = 0; v < a.nrows() && shown < 8; ++v) {
    if (result.dist[v] != kInfDist) {
      std::cout << "  d(" << v << ")=" << result.dist[v];
      ++shown;
    }
  }
  std::cout << "\n";
  return 0;
}
