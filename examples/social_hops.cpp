// social_hops — the low-diameter workload: an RMAT social-network stand-in
// with unit weights, where delta-stepping with Δ=1 computes BFS hop
// distances (the paper's exact evaluation configuration).  Prints the hop
// histogram ("degrees of separation") and compares the GraphBLAS and fused
// implementations' phase structure.
//
// Usage: social_hops [--scale 13] [--edge-factor 12] [--source 0]
#include <iostream>
#include <map>

#include "bench_support/cli.hpp"
#include "bench_support/timer.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "graph/weights.hpp"
#include "sssp/delta_stepping_fused.hpp"
#include "sssp/delta_stepping_graphblas.hpp"
#include "sssp/validate.hpp"

int main(int argc, char** argv) {
  using namespace dsg;
  CliArgs args(argc, argv);

  RmatParams params;
  params.scale = static_cast<unsigned>(args.get_int("scale", 13));
  params.edge_factor = args.get_double("edge-factor", 12.0);
  params.seed = 99;
  auto graph = generate_rmat(params);
  graph.symmetrize();
  assign_unit_weights(graph);
  graph.normalize();
  const auto a = graph.to_matrix();
  const auto source = static_cast<Index>(args.get_int("source", 0));

  std::cout << "social graph: " << format_stats(compute_stats(graph)) << "\n";

  // Unit weights + delta=1: bucket i is exactly the BFS level-i frontier.
  DeltaSteppingOptions options;  // delta = 1
  WallTimer gb_timer;
  const auto gb = delta_stepping_graphblas(a, source, options);
  const double gb_ms = gb_timer.milliseconds();
  WallTimer fused_timer;
  const auto fused = delta_stepping_fused(a, source, options);
  const double fused_ms = fused_timer.milliseconds();

  const auto agree = compare_distances(gb.dist, fused.dist);
  if (!agree.ok) {
    std::cerr << "IMPLEMENTATIONS DISAGREE: " << agree.message << "\n";
    return 1;
  }

  // Hop histogram: how many people are k handshakes away?
  std::map<int, Index> histogram;
  Index reachable = 0;
  for (double d : fused.dist) {
    if (d != kInfDist) {
      ++histogram[static_cast<int>(d)];
      ++reachable;
    }
  }
  std::cout << "reachable from " << source << ": " << reachable << " of "
            << a.nrows() << "\n";
  for (const auto& [hops, count] : histogram) {
    std::cout << "  " << hops << " hops: " << count << "\n";
  }

  std::cout << "buckets == BFS depth+1: " << fused.stats.outer_iterations
            << " (low diameter — few buckets, the easy regime for "
               "frontier-at-a-time algorithms)\n";
  std::cout << "unfused GraphBLAS: " << gb_ms << " ms, fused C: " << fused_ms
            << " ms (" << gb_ms / fused_ms << "x — the Fig. 3 effect)\n";
  return 0;
}
