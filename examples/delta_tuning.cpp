// delta_tuning — interactive ablation of the Δ parameter on a weighted
// graph: shows the Dijkstra-like and Bellman-Ford-like limits the paper
// discusses in Sec. VII, and how bucket count trades against wasted
// re-relaxations.
//
// The sweep is anchored on the plan's auto-Δ heuristic (max_weight /
// avg_degree, clamped to the smallest positive weight): the hand-rolled
// default list is gone — the program prints the chosen Δ and sweeps
// geometric multiples around it, so the table shows where the heuristic
// lands on the U-curve.
//
// Usage: delta_tuning [--n 20000] [--extra 60000] [--wmax 10]
#include <iomanip>
#include <iostream>
#include <memory>

#include "bench_support/cli.hpp"
#include "bench_support/reporter.hpp"
#include "bench_support/timer.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "sssp/bellman_ford.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/solver.hpp"
#include "sssp/validate.hpp"

int main(int argc, char** argv) {
  using namespace dsg;
  CliArgs args(argc, argv);
  const auto n = static_cast<Index>(args.get_int("n", 20000));
  const auto extra = static_cast<std::size_t>(args.get_int("extra", 60000));
  const double wmax = args.get_double("wmax", 10.0);

  auto graph = generate_connected_random(n, extra, 7);
  assign_uniform_weights(graph, 0.1, wmax, 8);
  graph.normalize();
  auto a = std::make_shared<const grb::Matrix<double>>(graph.to_matrix());

  // Let the plan pick Δ from the degree statistics, then sweep around it.
  sssp::SsspSolver auto_solver(a);  // delta = kAutoDelta
  const double auto_delta = auto_solver.delta();
  const auto& stats = auto_solver.plan().stats();

  std::cout << "graph: |V|=" << n << " |E|=" << a->nvals()
            << " weights in [0.1," << wmax << ")\n";
  std::cout << "auto delta = " << auto_delta << "  (max_weight "
            << stats.max_weight << " / avg_degree " << std::setprecision(3)
            << stats.avg_out_degree << ", clamped to min weight "
            << stats.min_positive_weight << ")\n\n";
  std::cout << std::left << std::setw(14) << "delta" << std::setw(10)
            << "ms" << std::setw(10) << "buckets" << std::setw(14)
            << "light_phases" << std::setw(16) << "relax_requests"
            << "\n";

  auto reference = dijkstra(*a, 0);
  for (double scale : {0.1, 0.3, 1.0, 3.0, 10.0, 1e9}) {
    const double delta = auto_delta * scale;
    sssp::SolverOptions options;
    options.algorithm = sssp::Algorithm::kFused;
    options.delta = delta;
    sssp::SsspSolver solver(a, options);
    WallTimer timer;
    const auto result = solver.solve(0);
    const double ms = timer.milliseconds();
    const auto agree = compare_distances(reference.dist, result.dist);
    if (!agree.ok) {
      std::cerr << "WRONG ANSWER at delta=" << delta << ": " << agree.message
                << "\n";
      return 1;
    }
    const std::string label =
        format_double(delta, 3) + (scale == 1.0 ? " (auto)" : "");
    std::cout << std::left << std::setw(14) << label << std::setw(10)
              << format_ms(ms) << std::setw(10)
              << result.stats.outer_iterations << std::setw(14)
              << result.stats.light_phases << std::setw(16)
              << result.stats.relax_requests << "\n";
  }

  WallTimer dij_timer;
  dijkstra(*a, 0);
  std::cout << "\ndijkstra:     " << format_ms(dij_timer.milliseconds())
            << "\n";
  WallTimer bf_timer;
  bellman_ford(*a, 0);
  std::cout << "bellman-ford: " << format_ms(bf_timer.milliseconds())
            << "\n";
  std::cout << "\nreading the table: tiny delta ~ Dijkstra (many buckets, "
               "no wasted work); huge delta ~ Bellman-Ford (one bucket, "
               "many correction phases).  The auto row is the heuristic's "
               "pick; per-delta times are warm solves (plan built outside "
               "the timer).\n";
  return 0;
}
