// standalone_main.cpp — replay driver substituted for libFuzzer's main
// when DSG_FUZZ is off (e.g. GCC-only containers without libFuzzer).
//
// Usage: <harness> [file-or-directory]...
//
// Each file argument (and each regular file directly inside a directory
// argument) is fed once through LLVMFuzzerTestOneInput — the same
// execute-corpus semantics `libfuzzer_binary corpus/ -runs=0` has.  The
// process exits 0 when every input was processed without crashing, which
// is exactly the contract being checked.  scripts/fuzz_smoke.sh uses this
// mode as its no-clang fallback.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

int run_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  (void)LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  std::printf("ok  %8zu bytes  %s\n", bytes.size(), path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int failures = 0;
  std::size_t total = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    if (std::filesystem::is_directory(arg)) {
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        if (!entry.is_regular_file()) continue;
        failures += run_file(entry.path());
        ++total;
      }
    } else {
      failures += run_file(arg);
      ++total;
    }
  }
  std::printf("replayed %zu input(s), %d unreadable\n", total, failures);
  return failures == 0 ? 0 : 1;
}
