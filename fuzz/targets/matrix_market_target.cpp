// matrix_market_target.cpp — fuzz entry point for the Matrix Market
// text parser.  The bytes are fed through an istringstream exactly as
// read_matrix_market_file would stream a file.
#include "fuzz_targets.hpp"

#include <sstream>
#include <string>

#include "graph/matrix_market.hpp"
#include "graphblas/types.hpp"

namespace dsg::fuzz {

int matrix_market_target(const std::uint8_t* data, std::size_t size) {
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(data), size));
  try {
    EdgeList graph = read_matrix_market(in);
    // Touch the parsed result so a bogus edge list (out-of-range vertex,
    // absurd counts) that slipped through detonates here.
    (void)graph.num_vertices();
    (void)graph.num_edges();
    for (const Edge& e : graph.edges()) {
      (void)e.src;
      (void)e.dst;
      (void)e.weight;
    }
  } catch (const grb::InvalidValue&) {
    // Named rejection — the allowed failure path.
  }
  return 0;
}

}  // namespace dsg::fuzz
