// plan_load_target.cpp — fuzz entry point for the binary plan loader.
//
// Drives PlanIo::load_bytes directly (no temp file: the loader's contract
// is over bytes, and the fuzzer iterates far faster without filesystem
// traffic).  A successfully loaded plan is additionally poked — stats,
// fingerprint, light/heavy split — so a structurally unsound plan that
// somehow survived validation still has a chance to crash inside the
// harness rather than in some later consumer.
#include "fuzz_targets.hpp"

#include "graphblas/types.hpp"
#include "serving/plan_io.hpp"

namespace dsg::fuzz {

int plan_load_target(const std::uint8_t* data, std::size_t size) {
  try {
    GraphPlan plan = serving::PlanIo::load_bytes(
        reinterpret_cast<const unsigned char*>(data), size, "<fuzz input>");
    // Exercise the loaded plan: these walk the adopted CSR and the
    // installed split, which is where a validation gap would detonate.
    (void)plan.fingerprint();
    (void)plan.light_heavy();
    (void)plan.stats();
  } catch (const grb::InvalidValue&) {
    // The allowed rejection path: a named parse/validation failure.
  }
  return 0;
}

}  // namespace dsg::fuzz
