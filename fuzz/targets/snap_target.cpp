// snap_target.cpp — fuzz entry point for the SNAP edge-list text parser.
#include "fuzz_targets.hpp"

#include <sstream>
#include <string>

#include "graph/snap_reader.hpp"
#include "graphblas/types.hpp"

namespace dsg::fuzz {

int snap_target(const std::uint8_t* data, std::size_t size) {
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(data), size));
  try {
    SnapReadResult result = read_snap(in);
    // The reader interns ids densely; the invariants a consumer relies
    // on are original_id covering every dense id and edges staying in
    // range.  Walk them so a violation crashes here.
    const std::size_t n =
        static_cast<std::size_t>(result.graph.num_vertices());
    if (result.original_id.size() != n) __builtin_trap();
    for (const Edge& e : result.graph.edges()) {
      if (static_cast<std::size_t>(e.src) >= n ||
          static_cast<std::size_t>(e.dst) >= n) {
        __builtin_trap();
      }
    }
  } catch (const grb::InvalidValue&) {
    // Named rejection — the allowed failure path.
  }
  return 0;
}

}  // namespace dsg::fuzz
