// capi_server_target.cpp — end-to-end fuzz entry point for the C API:
// DsgServer_new_from_file -> submit -> wait -> free, from fuzzer-chosen
// bytes and query parameters.
//
// Input layout: the first 8 bytes pick the query parameters —
//   bytes 0..3  (u32 le)  source vertex candidate
//   byte  4               algorithm selector (mapped into the enum range,
//                         including AUTO and the rejected CAPI value)
//   byte  5               number of queries to submit (0..7)
//   bytes 6..7            reserved / padding
// — and the remaining bytes are written to a unique temp file and handed
// to DsgServer_new_from_file.  This crosses every trust boundary at once:
// the binary plan loader, the C error-mapping table, and the pool's
// submit/wait lifecycle under adversarial parameters.
//
// Allowed outcomes: any DsgInfo code.  Findings: crash, sanitizer report,
// or a C++ exception escaping the C boundary (the guarded() table should
// have mapped it).
#include "fuzz_targets.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "capi/graphblas.h"

namespace dsg::fuzz {

namespace {

/// Writes bytes to a per-process unique path under the system temp dir.
/// The fuzzer is single-process single-threaded per job, so one scratch
/// file reused across iterations is race-free and avoids inode churn.
std::string scratch_path() {
  static const std::string path = [] {
    const char* tmp = std::getenv("TMPDIR");
    std::string dir = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
    return dir + "/dsg_capi_fuzz_" + std::to_string(getpid()) + ".plan";
  }();
  return path;
}

}  // namespace

int capi_server_target(const std::uint8_t* data, std::size_t size) {
  if (size < 8) return 0;
  std::uint32_t source_raw = 0;
  std::memcpy(&source_raw, data, 4);
  // Map byte 4 across the whole selector range plus the two interesting
  // out-of-range values (AUTO=-1 handled, 10.. invalid).
  const int algorithm = static_cast<int>(data[4] % 12) - 1;
  const int num_queries = data[5] % 8;

  const std::string path = scratch_path();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return 0;  // temp dir unwritable: nothing to test
    out.write(reinterpret_cast<const char*>(data + 8),
              static_cast<std::streamsize>(size - 8));
  }

  DsgServer server = nullptr;
  const GrB_Info new_info = DsgServer_new_from_file(
      &server, path.c_str(), static_cast<DsgSsspAlgorithm>(algorithm),
      /*num_workers=*/1, /*queue_capacity=*/4, /*cache_capacity=*/4);
  std::remove(path.c_str());
  if (new_info != GrB_SUCCESS) return 0;  // named rejection — allowed

  // The file loaded, so its header was validated: num_vertices at offset
  // 24 of the plan image is the real dimension (bounded by what the file
  // could back).
  std::uint64_t n = 0;
  std::memcpy(&n, data + 8 + 24, 8);
  std::vector<double> dist(static_cast<std::size_t>(n));

  for (int q = 0; q < num_queries; ++q) {
    // Steer half the sources in range so solves actually run; the rest
    // exercise the out-of-range rejection.
    const GrB_Index source =
        (q % 2 == 0) ? (source_raw % n)
                     : static_cast<GrB_Index>(source_raw) + n;
    std::uint64_t ticket = 0;
    if (DsgServer_submit(server, source, /*control=*/nullptr, &ticket) !=
        GrB_SUCCESS) {
      continue;
    }
    (void)DsgServer_wait(server, ticket, dist.data());
  }

  DsgServerStats stats;
  (void)DsgServer_stats(server, &stats);
  (void)DsgServer_free(&server);
  return 0;
}

}  // namespace dsg::fuzz
