// plan_mutate.cpp — structure-aware mutator for the binary plan format.
//
// A byte-blind mutator wastes nearly every execution on "bad magic" /
// "checksum mismatch": the format front-loads cheap gates, so random
// flips almost never reach the interesting validators (count arithmetic,
// CSR structure, the light/heavy partition).  This mutator knows the
// layout — seeded in practice from tests/data/diamond.plan — and mutates
// header fields and payload sections INDEPENDENTLY, then usually
// re-stamps the FNV checksum so the mutant walks through the gate.
//
// Strategy mix per call (driven by a private LCG on `seed`, so a corpus
// entry + seed reproduces exactly — no global RNG, no libc rand):
//   - header-field surgery: pick one of the u32/u64/double fields and
//     rewrite it (zero, max, off-by-one, sign-flip, small delta);
//   - payload section surgery: pick an 8-byte slot in one of the nine
//     arrays and rewrite it the same way (corrupting row_ptr monotonicity,
//     column ranges, weight signs/NaNs, split partition membership);
//   - length surgery: grow or shrink the tail (truncation / trailing
//     garbage paths);
//   - raw byte flips (small %): keeps the cheap gates themselves covered.
// 7/8 of mutants get a valid checksum re-stamped; 1/8 keep the stale one
// so the mismatch path stays exercised too.
#include "fuzz_targets.hpp"

#include <algorithm>
#include <cstring>

#include "serving/plan_io.hpp"

namespace dsg::fuzz {

namespace {

/// Minimal deterministic PRNG (LCG, Numerical Recipes constants).  The
/// mutator must be a pure function of (bytes, seed) for replayability.
struct Lcg {
  std::uint64_t state;
  explicit Lcg(unsigned int seed) : state(seed * 2654435761ULL + 1) {}
  std::uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 16;
  }
  std::uint64_t below(std::uint64_t n) { return n == 0 ? 0 : next() % n; }
};

/// Offsets of the mutable scalar fields inside the 112-byte header
/// (magic and checksum are handled separately).
constexpr std::size_t kHeaderFieldOffsets[] = {
    8,   // version (u32)
    12,  // endian marker (u32)
    16,  // index_bits (u32)
    20,  // value_bits (u32)
    24,  // num_vertices (u64)
    32,  // num_edges (u64)
    40,  // light_nnz (u64)
    48,  // heavy_nnz (u64)
    56,  // delta (double)
    64,  // delta_was_auto (u64)
    72,  // max_weight (double)
    80,  // min_positive_weight (double)
    88,  // max_out_degree (u64)
    96,  // avg_out_degree (double)
};

void mutate_u64_slot(std::uint8_t* slot, Lcg& rng) {
  std::uint64_t v = 0;
  std::memcpy(&v, slot, 8);
  switch (rng.below(8)) {
    case 0: v = 0; break;
    case 1: v = ~std::uint64_t{0}; break;
    case 2: v += 1; break;
    case 3: v -= 1; break;
    case 4: v ^= std::uint64_t{1} << rng.below(64); break;
    case 5: v = rng.next(); break;
    case 6: {  // reinterpret as double and negate / NaN-ify
      double d = 0.0;
      std::memcpy(&d, slot, 8);
      d = (rng.below(2) != 0U) ? -d : d * 0.0 / 0.0;
      std::memcpy(&v, &d, 8);
      break;
    }
    default: v = v << rng.below(16); break;
  }
  std::memcpy(slot, &v, 8);
}

}  // namespace

std::size_t plan_mutate(std::uint8_t* data, std::size_t size,
                        std::size_t max_size, unsigned int seed) {
  Lcg rng(seed);
  if (size < serving::kPlanHeaderBytes) {
    // Too short to be structured — grow toward a full header with noise
    // so the fuzzer can climb into the format at all.
    const std::size_t target =
        std::min(max_size, serving::kPlanHeaderBytes + rng.below(64));
    for (std::size_t i = size; i < target; ++i) {
      data[i] = static_cast<std::uint8_t>(rng.next());
    }
    if (target > 0) data[rng.below(target)] ^= 1U << rng.below(8);
    return target == 0 ? size : target;
  }

  std::size_t new_size = size;
  switch (rng.below(8)) {
    case 0: case 1: case 2: {  // header-field surgery
      const std::size_t field = kHeaderFieldOffsets[rng.below(
          sizeof(kHeaderFieldOffsets) / sizeof(kHeaderFieldOffsets[0]))];
      if (field == 8 || field == 12 || field == 16 || field == 20) {
        std::uint32_t v = 0;
        std::memcpy(&v, data + field, 4);
        switch (rng.below(4)) {
          case 0: v = 0; break;
          case 1: v = ~std::uint32_t{0}; break;
          case 2: v += 1; break;
          default: v = static_cast<std::uint32_t>(rng.next()); break;
        }
        std::memcpy(data + field, &v, 4);
      } else {
        mutate_u64_slot(data + field, rng);
      }
      break;
    }
    case 3: case 4: case 5: {  // payload 8-byte slot surgery
      if (size > serving::kPlanHeaderBytes + 8) {
        const std::size_t slots =
            (size - serving::kPlanHeaderBytes) / 8;
        const std::size_t slot =
            serving::kPlanHeaderBytes + 8 * rng.below(slots);
        mutate_u64_slot(data + slot, rng);
      }
      break;
    }
    case 6: {  // length surgery: truncate or extend the tail
      if (rng.below(2) == 0 && size > 1) {
        new_size = size - 1 - rng.below(std::min<std::size_t>(size - 1, 64));
      } else if (size < max_size) {
        const std::size_t grow =
            std::min(max_size - size, 1 + rng.below(64));
        for (std::size_t i = 0; i < grow; ++i) {
          data[size + i] = static_cast<std::uint8_t>(rng.next());
        }
        new_size = size + grow;
      }
      break;
    }
    default: {  // raw byte flip — keeps the front gates covered
      data[rng.below(size)] ^= 1U << rng.below(8);
      break;
    }
  }

  // Re-stamp the checksum most of the time so the mutation reaches the
  // validators behind the gate; leave it stale occasionally so the
  // mismatch path itself stays in the corpus.
  if (new_size >= serving::kPlanHeaderBytes && rng.below(8) != 0) {
    const std::uint64_t sum = serving::PlanIo::file_checksum(
        reinterpret_cast<const unsigned char*>(data), new_size);
    std::memcpy(data + 104, &sum, 8);
  }
  return new_size;
}

}  // namespace dsg::fuzz
