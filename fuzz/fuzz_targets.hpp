// fuzz_targets.hpp — the library entry points behind every fuzz harness.
//
// Each libFuzzer harness under fuzz/harness/ is a one-line wrapper over a
// target function declared here and defined in fuzz/targets/.  Factoring
// the bodies into a plain static library (dsg_fuzz_entry) buys two things:
//
//   - tests/test_fuzz_regressions.cpp links the SAME code paths the
//     fuzzer exercises and replays every checked-in corpus entry as a
//     deterministic ctest case — fuzz findings are pinned forever without
//     needing clang or libFuzzer at test time;
//   - the GCC container (no libFuzzer) still builds and runs everything
//     except the coverage-guided loop itself, via fuzz/standalone_main.cpp.
//
// The contract every target enforces (and the fuzzer checks by crashing):
// for ANY input bytes the parser under test either succeeds or throws
// grb::InvalidValue with a named check.  Targets catch ONLY
// grb::InvalidValue — any other exception propagates out of
// LLVMFuzzerTestOneInput and is a finding, exactly like a sanitizer
// report.  The return value is 0 in both allowed outcomes (libFuzzer
// convention: nonzero return values are reserved).
#pragma once

#include <cstddef>
#include <cstdint>

namespace dsg::fuzz {

/// PlanIo::load_bytes over `data` — the binary GraphPlan format.
int plan_load_target(const std::uint8_t* data, std::size_t size);

/// read_matrix_market over `data` as text.
int matrix_market_target(const std::uint8_t* data, std::size_t size);

/// read_snap over `data` as text.
int snap_target(const std::uint8_t* data, std::size_t size);

/// Full C-API round trip: the first 8 bytes select query parameters
/// (source vertex, algorithm, cache bypass), the rest is written to a
/// temp file and driven through DsgServer_new_from_file -> submit ->
/// wait -> free.  Every DsgInfo code is an allowed outcome; crashes,
/// sanitizer reports, and non-InvalidValue exceptions are findings.
int capi_server_target(const std::uint8_t* data, std::size_t size);

/// Structure-aware mutator for the plan format (wired into the plan_load
/// harness as LLVMFuzzerCustomMutator): mutates header fields and payload
/// sections independently, then usually re-stamps the checksum so the
/// mutation reaches the validators behind the checksum gate instead of
/// dying at "checksum mismatch" every time.  Deterministic in (input,
/// seed).  Returns the new size (<= max_size).
std::size_t plan_mutate(std::uint8_t* data, std::size_t size,
                        std::size_t max_size, unsigned int seed);

}  // namespace dsg::fuzz
