// snap_fuzzer.cpp — libFuzzer harness for the SNAP edge-list parser.
#include <cstddef>
#include <cstdint>

#include "fuzz_targets.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return dsg::fuzz::snap_target(data, size);
}
