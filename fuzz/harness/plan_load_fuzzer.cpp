// plan_load_fuzzer.cpp — libFuzzer harness for the binary plan loader,
// with the structure-aware mutator wired in as the custom mutator.
// Seed the corpus from tests/fuzz_corpus/plan_load/ (which includes the
// golden tests/data/diamond.plan image).
#include <cstddef>
#include <cstdint>

#include "fuzz_targets.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return dsg::fuzz::plan_load_target(data, size);
}

extern "C" std::size_t LLVMFuzzerCustomMutator(std::uint8_t* data,
                                               std::size_t size,
                                               std::size_t max_size,
                                               unsigned int seed) {
  return dsg::fuzz::plan_mutate(data, size, max_size, seed);
}
