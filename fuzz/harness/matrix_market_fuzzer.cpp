// matrix_market_fuzzer.cpp — libFuzzer harness for the Matrix Market
// text parser.
#include <cstddef>
#include <cstdint>

#include "fuzz_targets.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return dsg::fuzz::matrix_market_target(data, size);
}
