// capi_server_fuzzer.cpp — libFuzzer harness for the C-API round trip
// (DsgServer_new_from_file -> submit -> wait -> free).
#include <cstddef>
#include <cstdint>

#include "fuzz_targets.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return dsg::fuzz::capi_server_target(data, size);
}
