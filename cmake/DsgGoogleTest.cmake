# Resolves GoogleTest with an offline-first strategy and guarantees the
# GTest::gtest_main target exists afterwards:
#   1. a system install (find_package),
#   2. the distro source tree (/usr/src/googletest, Debian's googletest pkg),
#   3. FetchContent, for networked builds.
include_guard(GLOBAL)

function(dsg_provide_googletest)
  find_package(GTest QUIET)
  if(GTest_FOUND)
    return()
  endif()
  if(EXISTS /usr/src/googletest/CMakeLists.txt)
    set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
    add_subdirectory(/usr/src/googletest
                     ${CMAKE_BINARY_DIR}/_deps/googletest-build
                     EXCLUDE_FROM_ALL)
    if(NOT TARGET GTest::gtest_main)
      add_library(GTest::gtest_main ALIAS gtest_main)
      add_library(GTest::gtest ALIAS gtest)
    endif()
    return()
  endif()
  include(FetchContent)
  FetchContent_Declare(
    googletest
    URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
  )
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  FetchContent_MakeAvailable(googletest)
endfunction()
