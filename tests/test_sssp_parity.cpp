// Integration tests: the full benchmark-suite graphs run through every
// implementation and must agree, with plausible instrumentation — the same
// configuration (unit weights, Δ=1, symmetric graphs) as the paper's
// evaluation.
#include <gtest/gtest.h>

#include "bench_support/suite.hpp"
#include "graph/stats.hpp"
#include "sssp/delta_stepping_buckets.hpp"
#include "sssp/delta_stepping_fused.hpp"
#include "sssp/delta_stepping_graphblas.hpp"
#include "sssp/delta_stepping_openmp.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/validate.hpp"

namespace {

using grb::Index;

TEST(Suite, IsSortedByAscendingNodeCount) {
  auto suite = dsg::benchmark_suite();
  ASSERT_GE(suite.size(), 5u);
  Index prev = 0;
  for (const auto& entry : suite) {
    auto g = entry.make();
    EXPECT_GE(g.num_vertices(), prev) << entry.name;
    prev = g.num_vertices();
  }
}

TEST(Suite, GraphsAreSymmetricSimpleUnitWeighted) {
  // The paper: "input data are symmetric and undirected graphs with unit
  // edge weights".
  for (const auto& entry : dsg::quick_suite(5)) {
    auto g = entry.make();
    EXPECT_TRUE(g.is_symmetric()) << entry.name;
    for (const auto& e : g.edges()) {
      EXPECT_NE(e.src, e.dst) << entry.name << ": self loop";
      EXPECT_DOUBLE_EQ(e.weight, 1.0) << entry.name;
    }
  }
}

TEST(Suite, QuickSuiteIsPrefix) {
  auto full = dsg::benchmark_suite();
  auto quick = dsg::quick_suite(3);
  ASSERT_EQ(quick.size(), 3u);
  for (std::size_t k = 0; k < quick.size(); ++k) {
    EXPECT_EQ(quick[k].name, full[k].name);
  }
}

TEST(Suite, WeightedSuiteHasRealWeights) {
  auto weighted = dsg::weighted_suite(0.5, 2.5);
  auto g = weighted.front().make();
  bool any_non_unit = false;
  for (const auto& e : g.edges()) {
    EXPECT_GE(e.weight, 0.5);
    EXPECT_LT(e.weight, 2.5);
    if (e.weight != 1.0) any_non_unit = true;
  }
  EXPECT_TRUE(any_non_unit);
}

class SuiteParity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SuiteParity, AllImplementationsAgreeOnSuiteGraph) {
  auto suite = dsg::quick_suite(4);  // keep runtime bounded
  const auto& entry = suite[GetParam()];
  auto graph = entry.make();
  auto a = graph.to_matrix();

  auto ref = dsg::dijkstra(a, 0);
  dsg::DeltaSteppingOptions opt;  // delta = 1, the paper's setting
  dsg::OpenMpOptions omp;
  omp.num_threads = 4;

  auto r_gb = dsg::delta_stepping_graphblas(a, 0, opt);
  auto r_fused = dsg::delta_stepping_fused(a, 0, opt);
  auto r_omp = dsg::delta_stepping_openmp(a, 0, omp);
  auto r_buckets = dsg::delta_stepping_buckets(a, 0, opt);

  for (const auto* r : {&r_gb, &r_fused, &r_omp, &r_buckets}) {
    auto cmp = dsg::compare_distances(ref.dist, r->dist, 1e-9);
    EXPECT_TRUE(cmp.ok) << entry.name << ": " << cmp.message;
  }
  auto val = dsg::validate_sssp(a, 0, r_gb.dist);
  EXPECT_TRUE(val.ok) << entry.name << ": " << val.message;
}

INSTANTIATE_TEST_SUITE_P(Graphs, SuiteParity,
                         ::testing::Values(0u, 1u, 2u, 3u),
                         [](const auto& info) {
                           // gtest parameter names must be [A-Za-z0-9_].
                           std::string name = dsg::quick_suite(4)[info.param].name;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

TEST(SuiteParity, PhaseCountsAgreeAcrossAlgebraicVariants) {
  // The GraphBLAS and fused implementations run the same abstract
  // algorithm, so bucket/phase counts must match exactly.
  auto suite = dsg::quick_suite(3);
  for (const auto& entry : suite) {
    auto a = entry.make().to_matrix();
    dsg::DeltaSteppingOptions opt;
    auto r_gb = dsg::delta_stepping_graphblas(a, 0, opt);
    auto r_fused = dsg::delta_stepping_fused(a, 0, opt);
    EXPECT_EQ(r_gb.stats.outer_iterations, r_fused.stats.outer_iterations)
        << entry.name;
    EXPECT_EQ(r_gb.stats.light_phases, r_fused.stats.light_phases)
        << entry.name;
  }
}

TEST(SuiteParity, UnitWeightDeltaOneBucketsEqualBfsDepth) {
  // With unit weights and Δ=1, bucket i holds exactly the BFS level-i
  // frontier, so the number of processed buckets equals ecc(source)+1.
  auto suite = dsg::quick_suite(3);
  for (const auto& entry : suite) {
    auto g = entry.make();
    auto levels = dsg::bfs_levels(g, 0);
    Index ecc = 0;
    for (auto l : levels) {
      if (l != std::numeric_limits<Index>::max()) ecc = std::max(ecc, l);
    }
    dsg::DeltaSteppingOptions opt;
    auto r = dsg::delta_stepping_fused(g.to_matrix(), 0, opt);
    EXPECT_EQ(r.stats.outer_iterations, ecc + 1) << entry.name;
  }
}

}  // namespace
