// Integration tests: the full benchmark-suite graphs run through every
// implementation and must agree, with plausible instrumentation — the same
// configuration (unit weights, Δ=1, symmetric graphs) as the paper's
// evaluation.
#include <gtest/gtest.h>

#include "bench_support/suite.hpp"
#include "graph/stats.hpp"
#include "test_support.hpp"

namespace {

using grb::Index;

TEST(Suite, IsSortedByAscendingNodeCount) {
  auto suite = dsg::benchmark_suite();
  ASSERT_GE(suite.size(), 5u);
  Index prev = 0;
  for (const auto& entry : suite) {
    auto g = entry.make();
    EXPECT_GE(g.num_vertices(), prev) << entry.name;
    prev = g.num_vertices();
  }
}

TEST(Suite, GraphsAreSymmetricSimpleUnitWeighted) {
  // The paper: "input data are symmetric and undirected graphs with unit
  // edge weights".
  for (const auto& entry : dsg::quick_suite(5)) {
    auto g = entry.make();
    EXPECT_TRUE(g.is_symmetric()) << entry.name;
    for (const auto& e : g.edges()) {
      EXPECT_NE(e.src, e.dst) << entry.name << ": self loop";
      EXPECT_DOUBLE_EQ(e.weight, 1.0) << entry.name;
    }
  }
}

TEST(Suite, QuickSuiteIsPrefix) {
  auto full = dsg::benchmark_suite();
  auto quick = dsg::quick_suite(3);
  ASSERT_EQ(quick.size(), 3u);
  for (std::size_t k = 0; k < quick.size(); ++k) {
    EXPECT_EQ(quick[k].name, full[k].name);
  }
}

TEST(Suite, WeightedSuiteHasRealWeights) {
  auto weighted = dsg::weighted_suite(0.5, 2.5);
  auto g = weighted.front().make();
  bool any_non_unit = false;
  for (const auto& e : g.edges()) {
    EXPECT_GE(e.weight, 0.5);
    EXPECT_LT(e.weight, 2.5);
    if (e.weight != 1.0) any_non_unit = true;
  }
  EXPECT_TRUE(any_non_unit);
}

class SuiteParity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SuiteParity, AllImplementationsAgreeOnSuiteGraph) {
  auto suite = dsg::quick_suite(4);  // keep runtime bounded
  const auto& entry = suite[GetParam()];
  SCOPED_TRACE(entry.name);
  // delta = 1 is the paper's setting for the unit-weight suite graphs.
  DSG_CHECK_IMPL_PARITY(dsg::test::delta_stepping_impls(),
                        entry.make().to_matrix(), 0, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Graphs, SuiteParity,
                         ::testing::Values(0u, 1u, 2u, 3u),
                         [](const auto& param_info) {
                           // gtest parameter names must be [A-Za-z0-9_].
                           std::string name =
                               dsg::quick_suite(4)[param_info.param].name;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

TEST(SuiteParity, PhaseCountsAgreeAcrossAlgebraicVariants) {
  // The GraphBLAS and fused implementations run the same abstract
  // algorithm, so bucket/phase counts must match exactly.
  auto suite = dsg::quick_suite(3);
  for (const auto& entry : suite) {
    auto a = entry.make().to_matrix();
    dsg::DeltaSteppingOptions opt;
    auto r_gb = dsg::delta_stepping_graphblas(a, 0, opt);
    auto r_fused = dsg::delta_stepping_fused(a, 0, opt);
    EXPECT_EQ(r_gb.stats.outer_iterations, r_fused.stats.outer_iterations)
        << entry.name;
    EXPECT_EQ(r_gb.stats.light_phases, r_fused.stats.light_phases)
        << entry.name;
  }
}

TEST(SuiteParity, UnitWeightDeltaOneBucketsEqualBfsDepth) {
  // With unit weights and Δ=1, bucket i holds exactly the BFS level-i
  // frontier, so the number of processed buckets equals ecc(source)+1.
  auto suite = dsg::quick_suite(3);
  for (const auto& entry : suite) {
    auto g = entry.make();
    auto levels = dsg::bfs_levels(g, 0);
    Index ecc = 0;
    for (auto l : levels) {
      if (l != std::numeric_limits<Index>::max()) ecc = std::max(ecc, l);
    }
    dsg::DeltaSteppingOptions opt;
    auto r = dsg::delta_stepping_fused(g.to_matrix(), 0, opt);
    EXPECT_EQ(r.stats.outer_iterations, ecc + 1) << entry.name;
  }
}

}  // namespace
