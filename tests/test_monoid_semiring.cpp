// Unit tests for monoids and semirings: identities, algebraic laws, and the
// (min,+) semiring delta-stepping relies on.
#include <gtest/gtest.h>

#include <vector>

#include "graphblas/monoid.hpp"
#include "graphblas/semiring.hpp"

namespace {

TEST(Monoid, PlusIdentityIsZero) {
  auto m = grb::plus_monoid<double>();
  EXPECT_DOUBLE_EQ(m.identity(), 0.0);
  EXPECT_DOUBLE_EQ(m(m.identity(), 5.5), 5.5);
  EXPECT_DOUBLE_EQ(m(5.5, m.identity()), 5.5);
}

TEST(Monoid, TimesIdentityIsOne) {
  auto m = grb::times_monoid<double>();
  EXPECT_DOUBLE_EQ(m.identity(), 1.0);
  EXPECT_DOUBLE_EQ(m(m.identity(), 5.5), 5.5);
}

TEST(Monoid, MinIdentityIsInfinity) {
  auto m = grb::min_monoid<double>();
  EXPECT_EQ(m.identity(), grb::infinity_value<double>());
  EXPECT_DOUBLE_EQ(m(m.identity(), 5.5), 5.5);
  EXPECT_DOUBLE_EQ(m(2.0, 5.5), 2.0);
}

TEST(Monoid, MinIdentityIntegral) {
  auto m = grb::min_monoid<int>();
  EXPECT_EQ(m.identity(), std::numeric_limits<int>::max());
  EXPECT_EQ(m(m.identity(), 42), 42);
}

TEST(Monoid, MaxIdentityIsLowest) {
  auto m = grb::max_monoid<double>();
  EXPECT_EQ(m.identity(), std::numeric_limits<double>::lowest());
  EXPECT_DOUBLE_EQ(m(m.identity(), -1e300), -1e300);
}

TEST(Monoid, LorIdentityIsFalse) {
  auto m = grb::lor_monoid<bool>();
  EXPECT_FALSE(m.identity());
  EXPECT_TRUE(m(m.identity(), true));
  EXPECT_FALSE(m(false, false));
}

TEST(Monoid, LandIdentityIsTrue) {
  auto m = grb::land_monoid<bool>();
  EXPECT_TRUE(m.identity());
  EXPECT_TRUE(m(m.identity(), true));
  EXPECT_FALSE(m(m.identity(), false));
}

TEST(Monoid, AssociativityHoldsOnSamples) {
  auto m = grb::min_monoid<double>();
  const std::vector<double> xs{3.0, 1.0, 2.0, 9.0, -4.0};
  for (double a : xs)
    for (double b : xs)
      for (double c : xs) {
        EXPECT_DOUBLE_EQ(m(m(a, b), c), m(a, m(b, c)));
      }
}

// --- Semirings. -----------------------------------------------------------

TEST(Semiring, PlusTimesMatchesArithmetic) {
  auto sr = grb::plus_times_semiring<double>();
  EXPECT_DOUBLE_EQ(sr.mult(3.0, 4.0), 12.0);
  EXPECT_DOUBLE_EQ(sr.add(3.0, 4.0), 7.0);
  EXPECT_DOUBLE_EQ(sr.zero(), 0.0);
}

TEST(Semiring, MinPlusIsShortestPathAlgebra) {
  auto sr = grb::min_plus_semiring<double>();
  // mult is +, add is min, zero is inf
  EXPECT_DOUBLE_EQ(sr.mult(3.0, 4.0), 7.0);
  EXPECT_DOUBLE_EQ(sr.add(3.0, 4.0), 3.0);
  EXPECT_EQ(sr.zero(), grb::infinity_value<double>());
  // annihilation: inf "multiplied" stays inf
  EXPECT_EQ(sr.mult(sr.zero(), 5.0), grb::infinity_value<double>());
}

TEST(Semiring, MinPlusIntegralDoesNotOverflow) {
  auto sr = grb::min_plus_semiring<std::int32_t>();
  const auto inf = grb::infinity_value<std::int32_t>();
  EXPECT_EQ(sr.mult(inf, 100), inf);  // would wrap without saturation
  EXPECT_EQ(sr.add(inf, 7), 7);
}

TEST(Semiring, MaxPlusLongestPath) {
  auto sr = grb::max_plus_semiring<double>();
  EXPECT_DOUBLE_EQ(sr.mult(3.0, 4.0), 7.0);
  EXPECT_DOUBLE_EQ(sr.add(3.0, 4.0), 4.0);
}

TEST(Semiring, MinMaxBottleneck) {
  auto sr = grb::min_max_semiring<double>();
  EXPECT_DOUBLE_EQ(sr.mult(3.0, 4.0), 4.0);  // worst edge on the path
  EXPECT_DOUBLE_EQ(sr.add(3.0, 4.0), 3.0);   // best path
}

TEST(Semiring, BooleanReachability) {
  auto sr = grb::lor_land_semiring<bool>();
  EXPECT_TRUE(sr.mult(true, true));
  EXPECT_FALSE(sr.mult(true, false));
  EXPECT_TRUE(sr.add(false, true));
  EXPECT_FALSE(sr.zero());
}

TEST(Semiring, MinFirstSelectsVectorOperand) {
  auto sr = grb::min_first_semiring<double>();
  EXPECT_DOUBLE_EQ(sr.mult(3.0, 99.0), 3.0);
}

TEST(Semiring, MinSecondSelectsMatrixOperand) {
  auto sr = grb::min_second_semiring<double>();
  EXPECT_DOUBLE_EQ(sr.mult(3.0, 99.0), 99.0);
}

TEST(Semiring, PlusFirstCountsWeighted) {
  auto sr = grb::plus_first_semiring<double>();
  EXPECT_DOUBLE_EQ(sr.mult(3.0, 99.0), 3.0);
  EXPECT_DOUBLE_EQ(sr.add(3.0, 4.0), 7.0);
}

TEST(Semiring, DistributivityOnSamplesMinPlus) {
  // a + min(b, c) == min(a+b, a+c): mult distributes over add.
  auto sr = grb::min_plus_semiring<double>();
  const std::vector<double> xs{0.0, 1.5, 3.0, 7.25};
  for (double a : xs)
    for (double b : xs)
      for (double c : xs) {
        EXPECT_DOUBLE_EQ(sr.mult(a, sr.add(b, c)),
                         sr.add(sr.mult(a, b), sr.mult(a, c)));
      }
}

}  // namespace
