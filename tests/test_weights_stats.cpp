// Unit tests for weight models and graph statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "graph/weights.hpp"

namespace {

using dsg::EdgeList;
using grb::Index;

TEST(Weights, UnitSetsEverythingToOne) {
  auto g = dsg::generate_erdos_renyi(50, 200, 1);
  dsg::assign_uniform_weights(g, 2.0, 9.0, 1);
  dsg::assign_unit_weights(g);
  for (const auto& e : g.edges()) EXPECT_DOUBLE_EQ(e.weight, 1.0);
}

TEST(Weights, UniformStaysInRange) {
  auto g = dsg::generate_erdos_renyi(50, 300, 2);
  dsg::assign_uniform_weights(g, 0.5, 3.5, 2);
  for (const auto& e : g.edges()) {
    EXPECT_GE(e.weight, 0.5);
    EXPECT_LT(e.weight, 3.5);
  }
}

TEST(Weights, UniformIsSymmetricConsistent) {
  auto g = dsg::generate_grid2d(6, 6);  // symmetric structure
  dsg::assign_uniform_weights(g, 0.1, 5.0, 3);
  EXPECT_TRUE(g.is_symmetric());  // (u,v) and (v,u) share a weight
}

TEST(Weights, IntegerRange) {
  auto g = dsg::generate_erdos_renyi(30, 100, 4);
  dsg::assign_integer_weights(g, 1, 4, 4);
  for (const auto& e : g.edges()) {
    EXPECT_GE(e.weight, 1.0);
    EXPECT_LE(e.weight, 4.0);
    EXPECT_DOUBLE_EQ(e.weight, std::round(e.weight));
  }
}

TEST(Weights, ExponentialIsPositiveAndHeavyTailed) {
  auto g = dsg::generate_erdos_renyi(100, 2000, 5);
  dsg::assign_exponential_weights(g, 4.0, 5);
  double min_w = 1e18, max_w = 0;
  for (const auto& e : g.edges()) {
    EXPECT_GT(e.weight, 0.0);
    min_w = std::min(min_w, e.weight);
    max_w = std::max(max_w, e.weight);
  }
  EXPECT_GT(max_w / min_w, 10.0);  // spans more than a decade
}

TEST(Weights, DeterministicPerSeed) {
  auto a = dsg::generate_erdos_renyi(30, 100, 6);
  auto b = a;
  dsg::assign_uniform_weights(a, 0.0, 1.0, 42);
  dsg::assign_uniform_weights(b, 0.0, 1.0, 42);
  EXPECT_EQ(a, b);
}

// --- stats. -------------------------------------------------------------------

TEST(Stats, OutDegrees) {
  EdgeList g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(2, 1);
  auto deg = dsg::out_degrees(g);
  EXPECT_EQ(deg, (std::vector<Index>{2, 0, 1}));
}

TEST(Stats, ComponentSizesDescending) {
  EdgeList g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  auto sizes = dsg::component_sizes(g);
  EXPECT_EQ(sizes, (std::vector<Index>{3, 2, 1}));
}

TEST(Stats, ComponentsAreWeaklyConnected) {
  // Directed edge only: still one component weakly.
  EdgeList g(2);
  g.add_edge(1, 0);
  auto sizes = dsg::component_sizes(g);
  EXPECT_EQ(sizes.size(), 1u);
}

TEST(Stats, BfsLevels) {
  auto g = dsg::generate_path(5);
  auto levels = dsg::bfs_levels(g, 2);
  EXPECT_EQ(levels[2], 0u);
  EXPECT_EQ(levels[0], 2u);
  EXPECT_EQ(levels[4], 2u);
}

TEST(Stats, BfsUnreachableIsMax) {
  EdgeList g(3);
  g.add_edge(0, 1);
  auto levels = dsg::bfs_levels(g, 0);
  EXPECT_EQ(levels[2], std::numeric_limits<Index>::max());
}

TEST(Stats, ComputeStatsBlock) {
  auto g = dsg::generate_grid2d(4, 4);
  dsg::assign_uniform_weights(g, 1.0, 2.0, 7);
  auto s = dsg::compute_stats(g);
  EXPECT_EQ(s.num_vertices, 16u);
  EXPECT_EQ(s.num_edges, g.num_edges());
  EXPECT_EQ(s.min_degree, 2u);  // corners
  EXPECT_EQ(s.max_degree, 4u);  // interior
  EXPECT_EQ(s.num_components, 1u);
  EXPECT_EQ(s.largest_component, 16u);
  EXPECT_EQ(s.bfs_ecc_from_zero, 6u);
  EXPECT_GE(s.min_weight, 1.0);
  EXPECT_LT(s.max_weight, 2.0);
}

TEST(Stats, FormatMentionsKeyNumbers) {
  auto g = dsg::generate_path(3);
  auto str = dsg::format_stats(dsg::compute_stats(g));
  EXPECT_NE(str.find("|V|=3"), std::string::npos);
  EXPECT_NE(str.find("comps=1"), std::string::npos);
}

TEST(Stats, EmptyGraph) {
  EdgeList g;
  auto s = dsg::compute_stats(g);
  EXPECT_EQ(s.num_vertices, 0u);
  EXPECT_EQ(s.num_edges, 0u);
}

}  // namespace
