// Unit tests for grb::Vector<T>: construction, element access, build,
// tuples, resize, bool storage, equality.
#include <gtest/gtest.h>

#include <vector>

#include "graphblas/vector.hpp"

namespace {

using grb::Index;

TEST(Vector, DefaultIsEmptyZeroDim) {
  grb::Vector<double> v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.nvals(), 0u);
  EXPECT_TRUE(v.empty());
}

TEST(Vector, SizedConstructionHasNoStoredElements) {
  grb::Vector<double> v(10);
  EXPECT_EQ(v.size(), 10u);
  EXPECT_EQ(v.nvals(), 0u);
  EXPECT_FALSE(v.has_element(3));
}

TEST(Vector, FullStoresEverything) {
  auto v = grb::Vector<double>::full(5, 7.5);
  EXPECT_EQ(v.nvals(), 5u);
  for (Index i = 0; i < 5; ++i) {
    ASSERT_TRUE(v.has_element(i));
    EXPECT_DOUBLE_EQ(*v.extract_element(i), 7.5);
  }
}

TEST(Vector, SetGetRemove) {
  grb::Vector<double> v(8);
  v.set_element(3, 1.5);
  v.set_element(6, 2.5);
  v.set_element(0, 0.5);
  EXPECT_EQ(v.nvals(), 3u);
  EXPECT_DOUBLE_EQ(*v.extract_element(3), 1.5);
  EXPECT_DOUBLE_EQ(*v.extract_element(0), 0.5);
  EXPECT_FALSE(v.extract_element(1).has_value());

  v.set_element(3, 9.0);  // overwrite keeps nvals
  EXPECT_EQ(v.nvals(), 3u);
  EXPECT_DOUBLE_EQ(*v.extract_element(3), 9.0);

  v.remove_element(3);
  EXPECT_EQ(v.nvals(), 2u);
  EXPECT_FALSE(v.has_element(3));
  v.remove_element(3);  // removing absent is a no-op
  EXPECT_EQ(v.nvals(), 2u);
}

TEST(Vector, IndicesStaySorted) {
  grb::Vector<int> v(100);
  for (Index i : {50, 10, 90, 30, 70}) v.set_element(i, static_cast<int>(i));
  auto idx = v.indices();
  for (std::size_t k = 1; k < idx.size(); ++k) EXPECT_LT(idx[k - 1], idx[k]);
}

TEST(Vector, SetElementOutOfRangeThrows) {
  grb::Vector<double> v(4);
  EXPECT_THROW(v.set_element(4, 1.0), grb::IndexOutOfBounds);
}

TEST(Vector, BuildSortsAndCombinesDuplicates) {
  const std::vector<Index> idx{5, 2, 5, 0};
  const std::vector<double> val{1.0, 2.0, 3.0, 4.0};
  // Default dup is Second: last value for index 5 wins.
  auto v = grb::Vector<double>::build(8, idx, val);
  EXPECT_EQ(v.nvals(), 3u);
  EXPECT_DOUBLE_EQ(*v.extract_element(5), 3.0);
  EXPECT_DOUBLE_EQ(*v.extract_element(2), 2.0);
  EXPECT_DOUBLE_EQ(*v.extract_element(0), 4.0);
}

TEST(Vector, BuildWithMinDup) {
  const std::vector<Index> idx{1, 1, 1};
  const std::vector<double> val{3.0, 1.0, 2.0};
  auto v = grb::Vector<double>::build(4, idx, val, grb::Min<double>{});
  EXPECT_DOUBLE_EQ(*v.extract_element(1), 1.0);
}

TEST(Vector, BuildRejectsBadInput) {
  const std::vector<Index> idx{9};
  const std::vector<double> val{1.0};
  EXPECT_THROW(grb::Vector<double>::build(4, idx, val),
               grb::IndexOutOfBounds);
  const std::vector<Index> idx2{1, 2};
  EXPECT_THROW(grb::Vector<double>::build(4, idx2, val), grb::InvalidValue);
}

TEST(Vector, ExtractTuplesRoundTrips) {
  grb::Vector<double> v(6);
  v.set_element(1, 1.5);
  v.set_element(4, 4.5);
  std::vector<Index> idx;
  std::vector<double> val;
  v.extract_tuples(idx, val);
  auto w = grb::Vector<double>::build(6, idx, val);
  EXPECT_EQ(v, w);
}

TEST(Vector, AtOrDefaultsWhenAbsent) {
  grb::Vector<double> v(4);
  v.set_element(2, 3.0);
  EXPECT_DOUBLE_EQ(v.at_or(2, -1.0), 3.0);
  EXPECT_DOUBLE_EQ(v.at_or(1, -1.0), -1.0);
}

TEST(Vector, ToDenseFills) {
  grb::Vector<double> v(4);
  v.set_element(1, 2.0);
  auto dense = v.to_dense_array(-5.0);
  EXPECT_EQ(dense, (std::vector<double>{-5.0, 2.0, -5.0, -5.0}));
}

TEST(Vector, ClearKeepsDimension) {
  grb::Vector<double> v(4);
  v.set_element(1, 2.0);
  v.clear();
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v.nvals(), 0u);
}

TEST(Vector, ResizeDropsTail) {
  grb::Vector<double> v(10);
  v.set_element(2, 1.0);
  v.set_element(7, 2.0);
  v.resize(5);
  EXPECT_EQ(v.size(), 5u);
  EXPECT_EQ(v.nvals(), 1u);
  EXPECT_TRUE(v.has_element(2));
  v.resize(20);
  EXPECT_EQ(v.size(), 20u);
  EXPECT_EQ(v.nvals(), 1u);
}

TEST(Vector, ForEachVisitsInOrder) {
  grb::Vector<int> v(10);
  v.set_element(7, 70);
  v.set_element(2, 20);
  std::vector<std::pair<Index, int>> seen;
  v.for_each([&](Index i, int x) { seen.emplace_back(i, x); });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair<Index, int>{2, 20}));
  EXPECT_EQ(seen[1], (std::pair<Index, int>{7, 70}));
}

TEST(Vector, BoolVectorWorksDespiteVectorBool) {
  grb::Vector<bool> v(5);
  v.set_element(0, true);
  v.set_element(3, false);
  EXPECT_EQ(v.nvals(), 2u);  // false is *stored*, storage != value
  EXPECT_TRUE(*v.extract_element(0));
  EXPECT_FALSE(*v.extract_element(3));
  auto dense = v.to_dense_array(false);
  EXPECT_TRUE(dense[0]);
  EXPECT_FALSE(dense[1]);
}

TEST(Vector, EqualityIsStructuralAndValue) {
  grb::Vector<double> a(4), b(4), c(5);
  a.set_element(1, 2.0);
  b.set_element(1, 2.0);
  EXPECT_EQ(a, b);
  b.set_element(2, 3.0);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);  // different dimension
}

}  // namespace
