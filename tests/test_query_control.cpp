// Query lifecycle tests: deadlines, cooperative cancellation, partial
// upper-bound results, and failure-isolated batches — across every
// registered algorithm.
//
// The partial-result contract under test (see sssp/query_control.hpp):
// every core's tentative distances only ever improve (write_min /
// relax-only), so a run interrupted at ANY round boundary must return
// dist with dist[source] == 0 and dist[v] >= d*(v) for all v, +inf
// meaning "not reached yet".  The oracle is a self-validated Dijkstra.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "sssp/solver.hpp"
#include "test_support.hpp"
#include "testing/fault_injection.hpp"

namespace {

using dsg::QueryControl;
using dsg::SsspResult;
using dsg::SsspStatus;
using dsg::sssp::Algorithm;
using dsg::sssp::AlgorithmInfo;
using dsg::sssp::BatchOptions;
using dsg::sssp::QueryResult;
using dsg::sssp::SolverOptions;
using dsg::sssp::SsspSolver;
using grb::Index;

/// Checks the partial-result contract: dist is a valid element-wise upper
/// bound on the true distances (Dijkstra oracle), with the source settled.
void expect_upper_bounds(const grb::Matrix<double>& a, Index source,
                         const std::vector<double>& dist) {
  const auto ref = dsg::dijkstra(a, source);
  ASSERT_EQ(dist.size(), ref.dist.size());
  EXPECT_DOUBLE_EQ(dist[source], 0.0);
  for (Index v = 0; v < dist.size(); ++v) {
    if (ref.dist[v] == dsg::kInfDist) {
      // Unreachable vertices can never acquire a finite tentative value.
      EXPECT_EQ(dist[v], dsg::kInfDist) << "vertex " << v;
    } else if (dist[v] != dsg::kInfDist) {
      EXPECT_GE(dist[v], ref.dist[v] - 1e-9) << "vertex " << v;
    }
  }
}

SsspSolver make_solver(Algorithm algorithm, const dsg::EdgeList& g,
                       double delta = dsg::kAutoDelta) {
  SolverOptions options;
  options.algorithm = algorithm;
  options.delta = delta;
  return SsspSolver(g.to_matrix(), options);
}

// --- QueryControl unit semantics. --------------------------------------------

TEST(QueryControl, DefaultIsComplete) {
  QueryControl control;
  EXPECT_EQ(control.poll(), SsspStatus::kComplete);
  EXPECT_FALSE(control.cancel_requested());
  EXPECT_FALSE(control.has_deadline());
}

TEST(QueryControl, CancelSticksUntilReset) {
  QueryControl control;
  control.request_cancel();
  EXPECT_EQ(control.poll(), SsspStatus::kCancelled);
  EXPECT_EQ(control.poll(), SsspStatus::kCancelled);
  control.reset();
  EXPECT_EQ(control.poll(), SsspStatus::kComplete);
}

TEST(QueryControl, ZeroTimeoutIsAlreadyExpired) {
  QueryControl control;
  control.set_timeout(0.0);
  EXPECT_EQ(control.poll(), SsspStatus::kDeadlineExpired);
}

TEST(QueryControl, NegativeTimeoutIsAlreadyExpired) {
  QueryControl control;
  control.set_timeout(-5.0);
  EXPECT_EQ(control.poll(), SsspStatus::kDeadlineExpired);
}

TEST(QueryControl, CancelWinsOverExpiredDeadline) {
  QueryControl control;
  control.set_timeout(0.0);
  control.request_cancel();
  EXPECT_EQ(control.poll(), SsspStatus::kCancelled);
}

TEST(QueryControl, FarDeadlineStaysComplete) {
  QueryControl control;
  control.set_timeout(3600.0);
  EXPECT_EQ(control.poll(), SsspStatus::kComplete);
  control.clear_deadline();
  EXPECT_FALSE(control.has_deadline());
}

TEST(QueryControl, StatusNames) {
  EXPECT_STREQ(to_string(SsspStatus::kComplete), "complete");
  EXPECT_STREQ(to_string(SsspStatus::kDeadlineExpired), "deadline_expired");
  EXPECT_STREQ(to_string(SsspStatus::kCancelled), "cancelled");
  EXPECT_STREQ(to_string(SsspStatus::kFailed), "failed");
}

TEST(QueryControl, NullControlPollsComplete) {
  EXPECT_EQ(dsg::poll_control(nullptr), SsspStatus::kComplete);
}

// --- Deadline / cancel across every registered algorithm. --------------------

TEST(QueryLifecycle, ExpiredDeadlineReturnsUpperBoundsOnEveryAlgorithm) {
  const auto g = dsg::test::diamond_graph();
  const auto a = g.to_matrix();
  for (const AlgorithmInfo& info : dsg::sssp::algorithm_registry()) {
    SCOPED_TRACE(std::string("algorithm=") + info.name);
    SsspSolver solver = make_solver(info.id, g);
    QueryControl control;
    control.set_timeout(0.0);
    SsspResult r = solver.solve(0, control);
    EXPECT_EQ(r.status, SsspStatus::kDeadlineExpired);
    expect_upper_bounds(a, 0, r.dist);
  }
}

TEST(QueryLifecycle, PreCancelledControlReturnsUpperBoundsOnEveryAlgorithm) {
  const auto g = dsg::test::zigzag_graph();
  const auto a = g.to_matrix();
  for (const AlgorithmInfo& info : dsg::sssp::algorithm_registry()) {
    SCOPED_TRACE(std::string("algorithm=") + info.name);
    SsspSolver solver = make_solver(info.id, g);
    QueryControl control;
    control.request_cancel();
    SsspResult r = solver.solve(0, control);
    EXPECT_EQ(r.status, SsspStatus::kCancelled);
    expect_upper_bounds(a, 0, r.dist);
  }
}

TEST(QueryLifecycle, NoControlAndFarDeadlineBothRunToCompletion) {
  const auto g = dsg::test::diamond_graph();
  for (const AlgorithmInfo& info : dsg::sssp::algorithm_registry()) {
    SCOPED_TRACE(std::string("algorithm=") + info.name);
    SsspSolver solver = make_solver(info.id, g);
    QueryControl control;
    control.set_timeout(3600.0);
    SsspResult r = solver.solve(0, control);
    EXPECT_EQ(r.status, SsspStatus::kComplete);
    dsg::test::expect_distances(r.dist, dsg::test::diamond_distances_from_0(),
                                info.name);
  }
}

TEST(QueryLifecycle, SolverIsReusableAfterInterruption) {
  // An interrupted run must leave the warm workspace clean: the next solve
  // on the same solver has to be exact.  The async engine's scratch flags
  // are the sharp edge here, so every algorithm gets the same treatment.
  const auto g = dsg::test::diamond_graph();
  for (const AlgorithmInfo& info : dsg::sssp::algorithm_registry()) {
    SCOPED_TRACE(std::string("algorithm=") + info.name);
    SsspSolver solver = make_solver(info.id, g);
    QueryControl control;
    control.set_timeout(0.0);
    SsspResult interrupted = solver.solve(0, control);
    EXPECT_EQ(interrupted.status, SsspStatus::kDeadlineExpired);
    control.reset();
    SsspResult r = solver.solve(0, control);
    EXPECT_EQ(r.status, SsspStatus::kComplete);
    dsg::test::expect_distances(r.dist, dsg::test::diamond_distances_from_0(),
                                info.name);
  }
}

// --- Mid-run interruption on the threaded variants. --------------------------
//
// Delay injection at the round fault points stretches every round, and a
// watcher thread cancels as soon as the first round is observed
// (fault_point_hits is schedule-independent evidence that the solve is
// mid-run).  The run must come back kCancelled — i.e. the cancel was
// observed at a round boundary, not after running to completion — with
// valid partial upper bounds.

struct MidRunCase {
  Algorithm algorithm;
  const char* round_point;  // the fault point to delay and watch
};

void check_mid_run_cancel(const MidRunCase& c) {
  const auto g = dsg::test::path_graph(2000);
  const auto a = g.to_matrix();
  dsg::testing::FaultSpec slow;
  slow.point = c.round_point;
  slow.one_in = 1;
  slow.action = dsg::testing::FaultSpec::Action::kDelay;
  slow.delay = std::chrono::microseconds(500);
  dsg::testing::ScopedFaults faults(/*seed=*/7, {slow});

  SsspSolver solver = make_solver(c.algorithm, g, /*delta=*/1.0);
  QueryControl control;
  std::thread watcher([&] {
    while (dsg::testing::fault_point_hits(c.round_point) < 1) {
      std::this_thread::yield();
    }
    control.request_cancel();
  });
  SsspResult r = solver.solve(0, control);
  watcher.join();

  EXPECT_EQ(r.status, SsspStatus::kCancelled);
  expect_upper_bounds(a, 0, r.dist);

  // And the solver must still be reusable for an exact run afterwards.
  dsg::testing::clear_faults();
  control.reset();
  SsspResult exact = solver.solve(0, control);
  EXPECT_EQ(exact.status, SsspStatus::kComplete);
  dsg::test::expect_distances(exact.dist,
                              dsg::test::path_distances_from_0(2000),
                              "after mid-run cancel");
}

#if defined(DSG_HAVE_OPENMP)
TEST(QueryLifecycle, MidRunCancelOpenmp) {
  check_mid_run_cancel({Algorithm::kOpenmp, "openmp/round"});
}
#endif

TEST(QueryLifecycle, MidRunCancelRhoStepping) {
  check_mid_run_cancel({Algorithm::kRhoStepping, "async/coordinate"});
}

TEST(QueryLifecycle, MidRunCancelDeltaSteppingAsync) {
  check_mid_run_cancel({Algorithm::kDeltaSteppingAsync, "async/coordinate"});
}

TEST(QueryLifecycle, MidRunDeadlineExpiresOnThreadedVariant) {
  // Same shape with a short armed deadline instead of a watcher thread:
  // the delay guarantees the deadline fires strictly mid-run.
  const auto g = dsg::test::path_graph(2000);
  const auto a = g.to_matrix();
  dsg::testing::FaultSpec slow;
  slow.point = "async/coordinate";
  slow.one_in = 1;
  slow.action = dsg::testing::FaultSpec::Action::kDelay;
  slow.delay = std::chrono::microseconds(500);
  dsg::testing::ScopedFaults faults(/*seed=*/7, {slow});

  SsspSolver solver = make_solver(Algorithm::kDeltaSteppingAsync, g, 1.0);
  QueryControl control;
  control.set_timeout(0.01);
  SsspResult r = solver.solve(0, control);
  EXPECT_EQ(r.status, SsspStatus::kDeadlineExpired);
  expect_upper_bounds(a, 0, r.dist);
}

// --- Failure-isolated batches. -----------------------------------------------

TEST(BatchIsolation, PoisonedQueryFailsAloneOthersComplete) {
  // Poison exactly the query whose source is 2, schedule-independently
  // (the fault keys on the source id, not on hit order).
  const auto g = dsg::test::diamond_graph();
  dsg::testing::FaultSpec poison;
  poison.point = "solver/batch_query";
  poison.with_key = 2;
  dsg::testing::ScopedFaults faults(/*seed=*/1, {poison});

  SsspSolver solver = make_solver(Algorithm::kFused, g);
  const std::vector<Index> sources = {0, 1, 2, 3, 4};
  std::vector<QueryResult> results =
      solver.solve_batch(sources, BatchOptions{});
  ASSERT_EQ(results.size(), sources.size());
  for (std::size_t k = 0; k < results.size(); ++k) {
    SCOPED_TRACE("query " + std::to_string(k));
    if (sources[k] == 2) {
      EXPECT_FALSE(results[k].ok());
      EXPECT_EQ(results[k].result.status, SsspStatus::kFailed);
      EXPECT_TRUE(results[k].result.dist.empty());
      EXPECT_NE(results[k].exception, nullptr);
    } else {
      EXPECT_TRUE(results[k].ok());
      EXPECT_EQ(results[k].result.status, SsspStatus::kComplete);
      DSG_CHECK_DISTANCES_ONLY(solver.plan().matrix(), sources[k],
                               results[k].result.dist);
    }
  }
}

TEST(BatchIsolation, LegacyOverloadStillRethrows) {
  const auto g = dsg::test::diamond_graph();
  dsg::testing::FaultSpec poison;
  poison.point = "solver/batch_query";
  poison.with_key = 2;
  dsg::testing::ScopedFaults faults(/*seed=*/1, {poison});

  SsspSolver solver = make_solver(Algorithm::kFused, g);
  const std::vector<Index> sources = {0, 1, 2, 3};
  EXPECT_THROW(solver.solve_batch(std::span<const Index>(sources)),
               std::bad_alloc);
}

TEST(BatchIsolation, OutOfRangeSourceIsPerQueryFailure) {
  const auto g = dsg::test::diamond_graph();
  SsspSolver solver = make_solver(Algorithm::kFused, g);
  const std::vector<Index> sources = {0, 99, 4};
  std::vector<QueryResult> results =
      solver.solve_batch(sources, BatchOptions{});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].result.status, SsspStatus::kFailed);
  EXPECT_TRUE(results[2].ok());
  // The legacy contract validates up front instead.
  BatchOptions rethrow;
  rethrow.rethrow_errors = true;
  EXPECT_THROW(solver.solve_batch(sources, rethrow), grb::IndexOutOfBounds);
}

TEST(BatchIsolation, SharedControlWindsDownTheWholeBatch) {
  const auto g = dsg::test::diamond_graph();
  const auto a = g.to_matrix();
  SsspSolver solver = make_solver(Algorithm::kFused, g);
  QueryControl control;
  control.request_cancel();
  BatchOptions batch;
  batch.control = &control;
  const std::vector<Index> sources = {0, 1, 2};
  std::vector<QueryResult> results = solver.solve_batch(sources, batch);
  ASSERT_EQ(results.size(), 3u);
  for (std::size_t k = 0; k < results.size(); ++k) {
    SCOPED_TRACE("query " + std::to_string(k));
    EXPECT_TRUE(results[k].ok());
    EXPECT_EQ(results[k].result.status, SsspStatus::kCancelled);
    expect_upper_bounds(a, sources[k], results[k].result.dist);
  }
}

TEST(BatchIsolation, CleanBatchMatchesPerQuerySolves) {
  const auto g = dsg::test::zigzag_graph();
  SsspSolver solver = make_solver(Algorithm::kFused, g);
  const std::vector<Index> sources = {0, 1, 2, 3, 4};
  std::vector<QueryResult> results =
      solver.solve_batch(sources, BatchOptions{});
  ASSERT_EQ(results.size(), sources.size());
  for (std::size_t k = 0; k < results.size(); ++k) {
    SCOPED_TRACE("query " + std::to_string(k));
    ASSERT_TRUE(results[k].ok());
    SsspResult single = solver.solve(sources[k]);
    dsg::test::expect_distances(results[k].result.dist, single.dist, "batch");
  }
}

}  // namespace
