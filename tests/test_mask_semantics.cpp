// Systematic property tests of the GraphBLAS write rule
//     C<M, desc> accum= T
// across the full flag cube {value/structural} x {plain/complement} x
// {merge/replace} x {no-accum/accum}, checked against an independent
// element-wise model of the standard semantics.  This is the machinery
// every operation shares, so these parameterized sweeps protect all of
// apply/ewise/vxm/mxm/reduce/select/extract/assign/transpose at once.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "graphblas/graphblas.hpp"

namespace {

using grb::Index;

struct Flags {
  bool structural;
  bool complement;
  bool replace;
  bool accumulate;
};

std::string flags_name(const ::testing::TestParamInfo<Flags>& info) {
  const Flags& f = info.param;
  std::string s;
  s += f.structural ? "Struct" : "Value";
  s += f.complement ? "Comp" : "Plain";
  s += f.replace ? "Replace" : "Merge";
  s += f.accumulate ? "Accum" : "NoAccum";
  return s;
}

constexpr Index kN = 16;

/// Dense models: nullopt == structurally absent.
using Model = std::vector<std::optional<double>>;

Model old_output() {
  Model w(kN);
  for (Index i = 0; i < kN; i += 3) w[i] = 100.0 + static_cast<double>(i);
  return w;
}

Model computed_result() {
  Model t(kN);
  for (Index i = 0; i < kN; i += 2) t[i] = static_cast<double>(i);
  return t;
}

/// Mask with a mix of absent, stored-false and stored-true positions.
std::vector<std::optional<bool>> mask_model() {
  std::vector<std::optional<bool>> m(kN);
  for (Index i = 0; i < kN; ++i) {
    if (i % 4 == 1) continue;  // absent
    m[i] = (i % 4 != 2);       // stored false at i%4==2, true elsewhere
  }
  return m;
}

grb::Vector<double> to_vector(const Model& model) {
  grb::Vector<double> v(kN);
  for (Index i = 0; i < kN; ++i) {
    if (model[i]) v.set_element(i, *model[i]);
  }
  return v;
}

grb::Vector<bool> to_mask(const std::vector<std::optional<bool>>& model) {
  grb::Vector<bool> v(kN);
  for (Index i = 0; i < kN; ++i) {
    if (model[i]) v.set_element(i, *model[i]);
  }
  return v;
}

/// The standard's write rule, evaluated independently per position.
Model expected_write(const Model& old, const Model& t,
                     const std::vector<std::optional<bool>>& mask,
                     const Flags& f) {
  Model out(kN);
  for (Index i = 0; i < kN; ++i) {
    bool m = f.structural ? mask[i].has_value()
                          : (mask[i].has_value() && *mask[i]);
    if (f.complement) m = !m;
    // Z = accum ? (old ⊙ t) : t
    std::optional<double> z;
    if (f.accumulate) {
      if (old[i] && t[i]) {
        z = *old[i] + *t[i];
      } else if (old[i]) {
        z = old[i];
      } else {
        z = t[i];
      }
    } else {
      z = t[i];
    }
    if (m) {
      out[i] = z;
    } else {
      out[i] = f.replace ? std::nullopt : old[i];
    }
  }
  return out;
}

void expect_matches(const grb::Vector<double>& got, const Model& want,
                    const std::string& context) {
  for (Index i = 0; i < kN; ++i) {
    auto g = got.extract_element(i);
    if (want[i]) {
      ASSERT_TRUE(g.has_value()) << context << ": missing element " << i;
      EXPECT_DOUBLE_EQ(*g, *want[i]) << context << " at " << i;
    } else {
      EXPECT_FALSE(g.has_value()) << context << ": spurious element " << i;
    }
  }
}

class MaskCube : public ::testing::TestWithParam<Flags> {};

// apply with Identity is the purest window onto the write rule: T == input.
TEST_P(MaskCube, ApplyFollowsTheStandardWriteRule) {
  const Flags f = GetParam();
  auto w = to_vector(old_output());
  const auto u = to_vector(computed_result());
  const auto mask = to_mask(mask_model());
  const grb::Descriptor desc{.replace = f.replace,
                             .mask_complement = f.complement,
                             .mask_structure = f.structural};
  if (f.accumulate) {
    grb::apply(w, mask, grb::Plus<double>{}, grb::Identity<double>{}, u,
               desc);
  } else {
    grb::apply(w, mask, grb::NoAccumulate{}, grb::Identity<double>{}, u,
               desc);
  }
  expect_matches(w, expected_write(old_output(), computed_result(),
                                   mask_model(), f),
                 flags_name({GetParam(), 0}));
}

// The same cube through ewise_mult with Second (T = u ∩ u == u).
TEST_P(MaskCube, EwiseMultSeesTheSameRule) {
  const Flags f = GetParam();
  auto w = to_vector(old_output());
  const auto u = to_vector(computed_result());
  const auto mask = to_mask(mask_model());
  const grb::Descriptor desc{.replace = f.replace,
                             .mask_complement = f.complement,
                             .mask_structure = f.structural};
  if (f.accumulate) {
    grb::ewise_mult(w, mask, grb::Plus<double>{}, grb::Second<double>{}, u,
                    u, desc);
  } else {
    grb::ewise_mult(w, mask, grb::NoAccumulate{}, grb::Second<double>{}, u,
                    u, desc);
  }
  expect_matches(w, expected_write(old_output(), computed_result(),
                                   mask_model(), f),
                 flags_name({GetParam(), 0}));
}

// And through the matrix path, via a 1-column matrix apply.
TEST_P(MaskCube, MatrixWritePhaseAgrees) {
  const Flags f = GetParam();
  grb::Matrix<double> w(kN, 1);
  for (Index i = 0; i < kN; ++i) {
    if (auto v = old_output()[i]) w.set_element(i, 0, *v);
  }
  grb::Matrix<double> u(kN, 1);
  for (Index i = 0; i < kN; ++i) {
    if (auto v = computed_result()[i]) u.set_element(i, 0, *v);
  }
  grb::Matrix<bool> mask(kN, 1);
  for (Index i = 0; i < kN; ++i) {
    if (auto v = mask_model()[i]) mask.set_element(i, 0, *v);
  }
  const grb::Descriptor desc{.replace = f.replace,
                             .mask_complement = f.complement,
                             .mask_structure = f.structural};
  if (f.accumulate) {
    grb::apply(w, mask, grb::Plus<double>{}, grb::Identity<double>{}, u,
               desc);
  } else {
    grb::apply(w, mask, grb::NoAccumulate{}, grb::Identity<double>{}, u,
               desc);
  }
  const auto want =
      expected_write(old_output(), computed_result(), mask_model(), f);
  for (Index i = 0; i < kN; ++i) {
    auto g = w.extract_element(i, 0);
    if (want[i]) {
      ASSERT_TRUE(g.has_value()) << "row " << i;
      EXPECT_DOUBLE_EQ(*g, *want[i]) << "row " << i;
    } else {
      EXPECT_FALSE(g.has_value()) << "row " << i;
    }
  }
}

std::vector<Flags> all_flag_combinations() {
  std::vector<Flags> out;
  for (bool structural : {false, true})
    for (bool complement : {false, true})
      for (bool replace : {false, true})
        for (bool accumulate : {false, true}) {
          out.push_back({structural, complement, replace, accumulate});
        }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllFlagCombos, MaskCube,
                         ::testing::ValuesIn(all_flag_combinations()),
                         flags_name);

// --- NoMask corner cases. ------------------------------------------------------

TEST(NoMaskSemantics, NoMaskNoAccumReplacesOutputEntirely) {
  auto w = to_vector(old_output());
  const auto u = to_vector(computed_result());
  grb::apply(w, grb::NoMask{}, grb::NoAccumulate{}, grb::Identity<double>{},
             u);
  EXPECT_EQ(w.nvals(), u.nvals());
}

TEST(NoMaskSemantics, ComplementOfNoMaskWritesNothing) {
  auto w = to_vector(old_output());
  const auto before = w;
  const auto u = to_vector(computed_result());
  grb::apply(w, grb::NoMask{}, grb::NoAccumulate{}, grb::Identity<double>{},
             u, grb::complement_mask_desc);
  EXPECT_EQ(w, before);  // nothing writable, merge keeps everything
}

TEST(NoMaskSemantics, ComplementOfNoMaskWithReplaceClears) {
  auto w = to_vector(old_output());
  const auto u = to_vector(computed_result());
  grb::apply(w, grb::NoMask{}, grb::NoAccumulate{}, grb::Identity<double>{},
             u,
             grb::Descriptor{.replace = true, .mask_complement = true});
  EXPECT_EQ(w.nvals(), 0u);
}

TEST(NoMaskSemantics, AccumWithoutMaskMergesUnion) {
  auto w = to_vector(old_output());
  const auto u = to_vector(computed_result());
  grb::apply(w, grb::NoMask{}, grb::Plus<double>{}, grb::Identity<double>{},
             u);
  // i=0 is in both models: accum(100, 0) = 100.
  EXPECT_DOUBLE_EQ(*w.extract_element(0), 100.0);
  // i=3 only in old: kept.  i=2 only in new: inserted.
  EXPECT_DOUBLE_EQ(*w.extract_element(3), 103.0);
  EXPECT_DOUBLE_EQ(*w.extract_element(2), 2.0);
}

}  // namespace
