// Unit tests for the grb::transpose operation (masked/accumulated variant
// over Matrix::transposed()).
#include <gtest/gtest.h>

#include "graphblas/graphblas.hpp"

namespace {

using grb::Index;

grb::Matrix<double> sample() {
  grb::Matrix<double> m(3, 2);
  m.set_element(0, 1, 1.0);
  m.set_element(1, 0, 2.0);
  m.set_element(2, 1, 3.0);
  return m;
}

TEST(Transpose, BasicSwap) {
  auto a = sample();
  grb::Matrix<double> c(2, 3);
  grb::transpose(c, a);
  EXPECT_DOUBLE_EQ(*c.extract_element(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(*c.extract_element(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(*c.extract_element(1, 2), 3.0);
  EXPECT_EQ(c.nvals(), 3u);
}

TEST(Transpose, TransposeInDescriptorCancelsToMaskedCopy) {
  auto a = sample();
  grb::Matrix<double> c(3, 2);
  grb::transpose(c, grb::NoMask{}, grb::NoAccumulate{}, a,
                 grb::Descriptor{.transpose_in0 = true});
  EXPECT_EQ(c, a);
}

TEST(Transpose, MaskSelectsEntries) {
  auto a = sample();
  grb::Matrix<bool> mask(2, 3);
  mask.set_element(1, 0, true);
  grb::Matrix<double> c(2, 3);
  grb::transpose(c, mask, grb::NoAccumulate{}, a, grb::replace_desc);
  EXPECT_EQ(c.nvals(), 1u);
  EXPECT_DOUBLE_EQ(*c.extract_element(1, 0), 1.0);
}

TEST(Transpose, AccumMergesWithExisting) {
  auto a = sample();
  grb::Matrix<double> c(2, 3);
  c.set_element(1, 0, 10.0);
  grb::transpose(c, grb::NoMask{}, grb::Plus<double>{}, a);
  EXPECT_DOUBLE_EQ(*c.extract_element(1, 0), 11.0);
  EXPECT_DOUBLE_EQ(*c.extract_element(0, 1), 2.0);
}

TEST(Transpose, DimensionCheck) {
  auto a = sample();  // 3x2
  grb::Matrix<double> wrong(3, 2);
  EXPECT_THROW(grb::transpose(wrong, a), grb::DimensionMismatch);
}

TEST(Transpose, SymmetricMatrixIsFixedPoint) {
  grb::Matrix<double> a(3, 3);
  a.set_element(0, 1, 5.0);
  a.set_element(1, 0, 5.0);
  a.set_element(2, 2, 1.0);
  grb::Matrix<double> c(3, 3);
  grb::transpose(c, a);
  EXPECT_EQ(c, a);
}

}  // namespace
