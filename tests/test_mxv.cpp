// Unit tests for vxm / mxv over several semirings — including the exact
// (min,+) relaxation pattern of delta-stepping and mask/transpose behaviour.
#include <gtest/gtest.h>

#include "graphblas/graphblas.hpp"

namespace {

using grb::Index;

// A small weighted digraph as adjacency matrix (5 vertices):
// 0->1 (2), 0->2 (5), 1->2 (1), 2->3 (2), 3->4 (3), 1->4 (9)
grb::Matrix<double> graph5() {
  const std::vector<Index> r{0, 0, 1, 2, 3, 1};
  const std::vector<Index> c{1, 2, 2, 3, 4, 4};
  const std::vector<double> v{2, 5, 1, 2, 3, 9};
  return grb::Matrix<double>::build(5, 5, r, c, v);
}

TEST(Vxm, PlusTimesMatchesDenseReference) {
  auto a = graph5();
  grb::Vector<double> u(5);
  u.set_element(0, 1.0);
  u.set_element(1, 2.0);
  grb::Vector<double> w(5);
  grb::vxm(w, grb::plus_times_semiring<double>(), u, a);
  // uT A: col1 = 1*2; col2 = 1*5 + 2*1; col4 = 2*9
  EXPECT_DOUBLE_EQ(*w.extract_element(1), 2.0);
  EXPECT_DOUBLE_EQ(*w.extract_element(2), 7.0);
  EXPECT_DOUBLE_EQ(*w.extract_element(4), 18.0);
  EXPECT_FALSE(w.has_element(0));
  EXPECT_FALSE(w.has_element(3));
}

TEST(Vxm, MinPlusOneHopRelaxation) {
  // tReq = A'(min.+)(t over frontier): one hop from the source.
  auto a = graph5();
  grb::Vector<double> t(5);
  t.set_element(0, 0.0);
  grb::Vector<double> treq(5);
  grb::vxm(treq, grb::min_plus_semiring<double>(), t, a);
  EXPECT_DOUBLE_EQ(*treq.extract_element(1), 2.0);
  EXPECT_DOUBLE_EQ(*treq.extract_element(2), 5.0);
  EXPECT_EQ(treq.nvals(), 2u);
}

TEST(Vxm, MinPlusCombinesParallelPaths) {
  auto a = graph5();
  grb::Vector<double> t(5);
  t.set_element(0, 0.0);
  t.set_element(1, 2.0);
  grb::Vector<double> treq(5);
  grb::vxm(treq, grb::min_plus_semiring<double>(), t, a);
  // vertex 2 reachable as 0->2 (5) and 1->2 (2+1=3): min is 3.
  EXPECT_DOUBLE_EQ(*treq.extract_element(2), 3.0);
  EXPECT_DOUBLE_EQ(*treq.extract_element(4), 11.0);
}

TEST(Vxm, EmptyInputGivesEmptyOutput) {
  auto a = graph5();
  grb::Vector<double> u(5), w(5);
  grb::vxm(w, grb::min_plus_semiring<double>(), u, a);
  EXPECT_EQ(w.nvals(), 0u);
}

TEST(Vxm, MaskAndReplaceComposition) {
  auto a = graph5();
  grb::Vector<double> u(5);
  u.set_element(0, 1.0);
  grb::Vector<double> w(5);
  w.set_element(3, 42.0);
  grb::Vector<bool> mask(5);
  mask.set_element(1, true);
  grb::vxm(w, mask, grb::NoAccumulate{}, grb::plus_times_semiring<double>(),
           u, a, grb::replace_desc);
  EXPECT_EQ(w.nvals(), 1u);
  EXPECT_DOUBLE_EQ(*w.extract_element(1), 2.0);
}

TEST(Vxm, AccumMin) {
  auto a = graph5();
  grb::Vector<double> u(5);
  u.set_element(0, 0.0);
  grb::Vector<double> w(5);
  w.set_element(1, 1.0);  // better than the 2.0 coming from the product
  w.set_element(2, 9.0);  // worse than the 5.0 coming from the product
  grb::vxm(w, grb::NoMask{}, grb::Min<double>{},
           grb::min_plus_semiring<double>(), u, a);
  EXPECT_DOUBLE_EQ(*w.extract_element(1), 1.0);
  EXPECT_DOUBLE_EQ(*w.extract_element(2), 5.0);
}

TEST(Vxm, TransposeDescriptorReversesEdges) {
  auto a = graph5();
  grb::Vector<double> u(5);
  u.set_element(1, 1.0);
  grb::Vector<double> w(5);
  grb::vxm(w, grb::NoMask{}, grb::NoAccumulate{},
           grb::plus_times_semiring<double>(), u, a,
           grb::Descriptor{.transpose_in1 = true});
  // uT AT = (A u)T: row 0 has A[0][1]=2.
  EXPECT_DOUBLE_EQ(*w.extract_element(0), 2.0);
}

TEST(Vxm, DimensionChecks) {
  auto a = graph5();
  grb::Vector<double> u(4), w(5);
  EXPECT_THROW(grb::vxm(w, grb::min_plus_semiring<double>(), u, a),
               grb::DimensionMismatch);
  grb::Vector<double> u5(5), w4(4);
  EXPECT_THROW(grb::vxm(w4, grb::min_plus_semiring<double>(), u5, a),
               grb::DimensionMismatch);
}

// --- mxv. -------------------------------------------------------------------

TEST(Mxv, PlusTimesPull) {
  auto a = graph5();
  grb::Vector<double> u(5);
  u.set_element(2, 1.0);
  u.set_element(4, 2.0);
  grb::Vector<double> w(5);
  grb::mxv(w, grb::plus_times_semiring<double>(), a, u);
  // row0: A[0][2]*1 = 5; row1: A[1][2]*1 + A[1][4]*2 = 1+18 = 19;
  // row3: A[3][4]*2 = 6
  EXPECT_DOUBLE_EQ(*w.extract_element(0), 5.0);
  EXPECT_DOUBLE_EQ(*w.extract_element(1), 19.0);
  EXPECT_DOUBLE_EQ(*w.extract_element(3), 6.0);
  EXPECT_FALSE(w.has_element(2));
}

TEST(Mxv, AgreesWithVxmOnTranspose) {
  // A u == (uT AT)T: mxv must equal vxm against the transposed matrix.
  auto a = graph5();
  auto at = a.transposed();
  grb::Vector<double> u(5);
  u.set_element(2, 1.5);
  u.set_element(3, 0.5);
  grb::Vector<double> w1(5), w2(5);
  grb::mxv(w1, grb::min_plus_semiring<double>(), a, u);
  grb::vxm(w2, grb::min_plus_semiring<double>(), u, at);
  EXPECT_EQ(w1, w2);
}

TEST(Mxv, TransposeDescriptorUsesPushKernel) {
  auto a = graph5();
  grb::Vector<double> u(5);
  u.set_element(0, 0.0);
  grb::Vector<double> w1(5), w2(5);
  grb::mxv(w1, grb::NoMask{}, grb::NoAccumulate{},
           grb::min_plus_semiring<double>(), a, u,
           grb::Descriptor{.transpose_in0 = true});
  grb::vxm(w2, grb::min_plus_semiring<double>(), u, a);
  EXPECT_EQ(w1, w2);
}

TEST(Mxv, BooleanSemiringIsBfsStep) {
  auto a = graph5();
  grb::Vector<bool> frontier(5);
  frontier.set_element(0, true);
  grb::Vector<bool> next(5);
  grb::vxm(next, grb::lor_land_semiring<bool>(), frontier, a);
  EXPECT_TRUE(next.has_element(1));
  EXPECT_TRUE(next.has_element(2));
  EXPECT_EQ(next.nvals(), 2u);
}

TEST(Mxv, IntegralMinPlusSaturates) {
  // Integral weights with "infinity" inputs must not wrap around.
  grb::Matrix<std::int64_t> a(2, 2);
  a.set_element(0, 1, 5);
  grb::Vector<std::int64_t> u(2);
  u.set_element(0, grb::infinity_value<std::int64_t>());
  grb::Vector<std::int64_t> w(2);
  grb::vxm(w, grb::min_plus_semiring<std::int64_t>(), u, a);
  EXPECT_EQ(*w.extract_element(1), grb::infinity_value<std::int64_t>());
}

}  // namespace
