// test_plan_io.cpp — GraphPlan::save / GraphPlan::load: bit-identical
// round trips across the whole benchmark suite, distance equality from a
// loaded plan under every registered algorithm, rejection of malformed
// files, and a checked-in golden file guarding the on-disk format against
// silent drift.
//
// Regenerating the golden (only when the format version is bumped):
//   DSG_REGEN_GOLDEN=1 ./test_plan_io --gtest_filter=PlanGolden.*
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_support/suite.hpp"
#include "graphblas/context.hpp"
#include "serving/plan_io.hpp"
#include "sssp/plan.hpp"
#include "sssp/solver.hpp"
#include "test_support.hpp"

namespace dsg {
namespace {

using grb::Index;

std::string temp_plan_path(const std::string& stem) {
  return ::testing::TempDir() + "dsg_" + stem + ".plan";
}

std::vector<unsigned char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path,
                const std::vector<unsigned char>& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(os.good()) << path;
}

/// Everything observable must survive the trip bit-for-bit: the CSR, the
/// materialized split, Δ and its provenance, the stats, the fingerprint.
void expect_bit_identical(const GraphPlan& original, const GraphPlan& loaded) {
  const grb::Matrix<double>& a = original.matrix();
  const grb::Matrix<double>& b = loaded.matrix();
  ASSERT_EQ(a.nrows(), b.nrows());
  ASSERT_EQ(a.nvals(), b.nvals());
  EXPECT_TRUE(std::equal(a.row_ptr().begin(), a.row_ptr().end(),
                         b.row_ptr().begin(), b.row_ptr().end()));
  EXPECT_TRUE(std::equal(a.col_ind().begin(), a.col_ind().end(),
                         b.col_ind().begin(), b.col_ind().end()));
  EXPECT_TRUE(std::equal(a.raw_values().begin(), a.raw_values().end(),
                         b.raw_values().begin(), b.raw_values().end()));

  EXPECT_EQ(original.delta(), loaded.delta());
  EXPECT_EQ(original.delta_was_auto(), loaded.delta_was_auto());

  const PlanStats& sa = original.stats();
  const PlanStats& sb = loaded.stats();
  EXPECT_EQ(sa.num_vertices, sb.num_vertices);
  EXPECT_EQ(sa.num_edges, sb.num_edges);
  EXPECT_EQ(sa.max_out_degree, sb.max_out_degree);
  EXPECT_EQ(sa.avg_out_degree, sb.avg_out_degree);
  EXPECT_EQ(sa.max_weight, sb.max_weight);
  EXPECT_EQ(sa.min_positive_weight, sb.min_positive_weight);

  const detail::LightHeavySplit& la = original.light_heavy();
  const detail::LightHeavySplit& lb = loaded.light_heavy();
  EXPECT_EQ(la.light_ptr, lb.light_ptr);
  EXPECT_EQ(la.light_ind, lb.light_ind);
  EXPECT_EQ(la.light_val, lb.light_val);
  EXPECT_EQ(la.heavy_ptr, lb.heavy_ptr);
  EXPECT_EQ(la.heavy_ind, lb.heavy_ind);
  EXPECT_EQ(la.heavy_val, lb.heavy_val);

  // Same bytes => same structural fingerprint (the cache-key anchor).
  EXPECT_EQ(original.fingerprint(), loaded.fingerprint());
}

TEST(PlanIoRoundTrip, EverySuiteGraphBitIdentical) {
  for (const SuiteEntry& entry : benchmark_suite()) {
    SCOPED_TRACE("graph=" + entry.name);
    GraphPlan plan(entry.make().to_matrix());
    const std::string path = temp_plan_path("suite_" + entry.name);
    plan.save(path);
    GraphPlan loaded = GraphPlan::load(path);
    expect_bit_identical(plan, loaded);
    std::remove(path.c_str());
  }
}

// Unit-weight graphs put every edge in the light partition; the weighted
// variants exercise a genuinely mixed light/heavy split (and non-trivial
// weight stats) through the same trip.  First five only: the two largest
// graphs already round-tripped above, and the split structure — not the
// graph scale — is what the weighted leg adds.
TEST(PlanIoRoundTrip, WeightedSuiteGraphsBitIdentical) {
  std::vector<SuiteEntry> entries = weighted_suite();
  entries.resize(5);
  for (const SuiteEntry& entry : entries) {
    SCOPED_TRACE("graph=" + entry.name);
    GraphPlan plan(entry.make().to_matrix());
    const std::string path = temp_plan_path("suite_" + entry.name);
    plan.save(path);
    GraphPlan loaded = GraphPlan::load(path);
    expect_bit_identical(plan, loaded);
    std::remove(path.c_str());
  }
}

TEST(PlanIoRoundTrip, ExplicitDeltaSurvives) {
  GraphPlan plan(test::diamond_graph().to_matrix(), 2.5);
  ASSERT_FALSE(plan.delta_was_auto());
  const std::string path = temp_plan_path("explicit_delta");
  plan.save(path);
  GraphPlan loaded = GraphPlan::load(path);
  EXPECT_EQ(loaded.delta(), 2.5);
  EXPECT_FALSE(loaded.delta_was_auto());
  std::remove(path.c_str());
}

TEST(PlanIoRoundTrip, AutoDeltaProvenanceSurvives) {
  GraphPlan plan(test::zigzag_graph().to_matrix(), kAutoDelta);
  ASSERT_TRUE(plan.delta_was_auto());
  const std::string path = temp_plan_path("auto_delta");
  plan.save(path);
  GraphPlan loaded = GraphPlan::load(path);
  EXPECT_EQ(loaded.delta(), plan.delta());
  EXPECT_TRUE(loaded.delta_was_auto());
  std::remove(path.c_str());
}

// The acceptance bar: a loaded plan is indistinguishable from the
// in-memory plan to every registered algorithm — distances EXPECT_EQ
// (exact, not approximate; the bytes driving the arithmetic are
// identical).
TEST(PlanIoRoundTrip, LoadedPlanDistancesMatchInMemoryAllAlgorithms) {
  struct Case {
    const char* name;
    grb::Matrix<double> a;
    double delta;
  };
  std::vector<Case> cases;
  cases.push_back({"diamond", test::diamond_graph().to_matrix(), 3.0});
  cases.push_back({"zigzag", test::zigzag_graph().to_matrix(), 0.4});
  cases.push_back(
      {"two_islands", test::two_islands_graph().to_matrix(), kAutoDelta});

  for (Case& c : cases) {
    SCOPED_TRACE(std::string("graph=") + c.name);
    GraphPlan plan(std::move(c.a), c.delta);
    const std::string path = temp_plan_path(std::string("dist_") + c.name);
    plan.save(path);
    GraphPlan loaded = GraphPlan::load(path);
    for (const sssp::AlgorithmInfo& info : sssp::algorithm_registry()) {
      SCOPED_TRACE(std::string("algorithm=") + info.name);
      grb::Context ctx_mem;
      grb::Context ctx_load;
      ExecOptions exec;
      exec.num_threads = 2;
      const SsspResult from_memory = info.run(plan, ctx_mem, 0, exec);
      const SsspResult from_file = info.run(loaded, ctx_load, 0, exec);
      ASSERT_EQ(from_memory.dist.size(), from_file.dist.size());
      for (std::size_t v = 0; v < from_memory.dist.size(); ++v) {
        EXPECT_EQ(from_memory.dist[v], from_file.dist[v]) << "vertex " << v;
      }
    }
    std::remove(path.c_str());
  }
}

// ---------------------------------------------------------------------------
// Rejection: every malformed input is refused with grb::InvalidValue, never
// a crash or a silently wrong plan.
// ---------------------------------------------------------------------------

class PlanIoReject : public ::testing::Test {
 protected:
  void SetUp() override {
    GraphPlan plan(test::diamond_graph().to_matrix(), 2.5);
    path_ = temp_plan_path("reject");
    plan.save(path_);
    bytes_ = read_file(path_);
    ASSERT_GT(bytes_.size(), 112u);
  }

  void TearDown() override { std::remove(path_.c_str()); }

  void expect_rejected(const std::string& why) {
    write_file(path_, bytes_);
    try {
      GraphPlan loaded = GraphPlan::load(path_);
      FAIL() << "load accepted a malformed file (" << why << ")";
    } catch (const grb::InvalidValue& e) {
      EXPECT_NE(std::string(e.what()).find(why), std::string::npos)
          << "actual message: " << e.what();
    }
  }

  void patch(std::size_t offset, std::uint64_t value) {
    std::memcpy(bytes_.data() + offset, &value, sizeof(value));
  }
  void patch(std::size_t offset, double value) {
    std::memcpy(bytes_.data() + offset, &value, sizeof(value));
  }

  /// Forge a matching checksum for the current (patched) bytes: the
  /// checksum gate only screens accidental corruption, so these tests
  /// walk straight through it to the validators behind it.
  void restamp_checksum() {
    const std::uint64_t sum =
        serving::PlanIo::file_checksum(bytes_.data(), bytes_.size());
    std::memcpy(bytes_.data() + 104, &sum, sizeof(sum));
  }

  std::string path_;
  std::vector<unsigned char> bytes_;
};

TEST_F(PlanIoReject, MissingFile) {
  EXPECT_THROW(GraphPlan::load(path_ + ".does-not-exist"), grb::InvalidValue);
}

TEST_F(PlanIoReject, TruncatedHeader) {
  bytes_.resize(50);
  expect_rejected("truncated header");
}

TEST_F(PlanIoReject, TruncatedPayload) {
  bytes_.resize(bytes_.size() - 8);
  expect_rejected("file size mismatch");
}

TEST_F(PlanIoReject, TrailingGarbage) {
  bytes_.push_back(0xAB);
  expect_rejected("file size mismatch");
}

TEST_F(PlanIoReject, CorruptMagic) {
  bytes_[0] = 'X';
  expect_rejected("bad magic");
}

TEST_F(PlanIoReject, WrongVersion) {
  bytes_[8] = static_cast<unsigned char>(serving::kPlanFormatVersion + 1);
  expect_rejected("unsupported format version");
}

TEST_F(PlanIoReject, ForeignEndianHeader) {
  // The endian marker lives at offset 12; byte-swapping it is exactly what
  // a foreign-endian writer would have produced.
  std::swap(bytes_[12], bytes_[15]);
  std::swap(bytes_[13], bytes_[14]);
  expect_rejected("endianness mismatch");
}

TEST_F(PlanIoReject, PayloadBitFlip) {
  bytes_[bytes_.size() - 1] ^= 0x01;
  expect_rejected("checksum mismatch");
}

TEST_F(PlanIoReject, HeaderStatsBitFlip) {
  // max_weight sits at offset 72 — inside the checksummed header region but
  // after every field the structural validators look at.
  bytes_[72] ^= 0x01;
  expect_rejected("checksum mismatch");
}

// ---------------------------------------------------------------------------
// Adversarial headers: counts chosen so the size arithmetic itself is the
// attack surface.  These must be rejected BEFORE any allocation — the
// overflow-checked checked_payload_bytes path.
// ---------------------------------------------------------------------------

TEST_F(PlanIoReject, HeaderCountsOverflowUint64) {
  // (num_vertices + 1) * 8 wraps: a naive computation would alias a small
  // payload size and commit memory the file cannot back.
  patch(24, ~std::uint64_t{0} - 1);  // num_vertices
  restamp_checksum();
  expect_rejected("header counts overflow");
}

TEST_F(PlanIoReject, HeaderCountSumOverflows) {
  // Each product fits but the section sum wraps.
  patch(32, std::uint64_t{1} << 61);  // num_edges
  patch(40, std::uint64_t{1} << 61);  // light_nnz
  restamp_checksum();
  expect_rejected("header counts overflow");
}

TEST_F(PlanIoReject, HeaderCountsExceedFileSize) {
  // No overflow, just a claimed payload far beyond the real byte count:
  // caught by the exact size cross-check, still before any allocation.
  patch(32, std::uint64_t{1} << 40);  // num_edges
  restamp_checksum();
  expect_rejected("file size mismatch");
}

// ---------------------------------------------------------------------------
// Forged checksum: FNV-1a is not cryptographic, so an adversary stamps a
// valid checksum over corrupted content.  Every semantic validator must
// hold with the gate forged open.
// ---------------------------------------------------------------------------

TEST_F(PlanIoReject, ForgedNaNDelta) {
  patch(56, std::nan(""));
  restamp_checksum();
  expect_rejected("invalid delta");
}

TEST_F(PlanIoReject, ForgedZeroDelta) {
  patch(56, 0.0);
  restamp_checksum();
  expect_rejected("invalid delta");
}

TEST_F(PlanIoReject, ForgedNegativeWeight) {
  // val[0]: header(112) + row_ptr(6*8) + col_ind(10*8) = offset 240.
  patch(240, -2.0);
  restamp_checksum();
  expect_rejected("non-finite or negative edge weight");
}

TEST_F(PlanIoReject, ForgedNaNWeight) {
  patch(240, std::nan(""));
  restamp_checksum();
  expect_rejected("non-finite or negative edge weight");
}

TEST_F(PlanIoReject, ForgedRowPtrRiseThenFall) {
  // row_ptr[1] at offset 120 jumps past nnz while row_ptr[5] still ends
  // at 10: monotone-so-far, both endpoints plausible — the per-row bound
  // check in grb::audit::check_csr is what must catch it (it used to
  // read col_ind out of bounds instead).
  patch(120, std::uint64_t{1} << 20);
  restamp_checksum();
  expect_rejected("structurally invalid payload");
}

TEST_F(PlanIoReject, ForgedColIndOutOfRange) {
  // col_ind[0] at offset 160 points far outside the 5-vertex graph.
  patch(160, std::uint64_t{1} << 30);
  restamp_checksum();
  expect_rejected("structurally invalid payload");
}

TEST_F(PlanIoReject, ForgedLightSplitCorruption) {
  // light_ptr[1] (offset 320 + 8) inflated: the split CSR audit fails
  // regardless of what the light/heavy partition contains.
  patch(328, std::uint64_t{1} << 20);
  restamp_checksum();
  expect_rejected("structurally invalid payload");
}

// ---------------------------------------------------------------------------
// Golden file: tests/data/diamond.plan, written at format version 1 with a
// pinned Δ of 2.5.  A format change that still round-trips (writer and
// reader drifting together) cannot pass this test without a deliberate
// golden regeneration.
// ---------------------------------------------------------------------------

TEST(PlanGolden, CheckedInFileLoads) {
  const std::string golden = std::string(DSG_TEST_DATA_DIR) + "/diamond.plan";
  if (std::getenv("DSG_REGEN_GOLDEN") != nullptr) {
    GraphPlan plan(test::diamond_graph().to_matrix(), 2.5);
    plan.save(golden);
  }
  GraphPlan loaded = GraphPlan::load(golden);
  EXPECT_EQ(loaded.num_vertices(), 5u);
  EXPECT_EQ(loaded.stats().num_edges, 10u);
  EXPECT_EQ(loaded.delta(), 2.5);
  EXPECT_FALSE(loaded.delta_was_auto());

  grb::Context ctx;
  const SsspResult r =
      sssp::algorithm_info(sssp::Algorithm::kFused).run(loaded, ctx, 0, {});
  test::expect_distances(r.dist, test::diamond_distances_from_0(), "golden");

  // And the golden is bit-identical to what today's writer produces.
  GraphPlan fresh(test::diamond_graph().to_matrix(), 2.5);
  const std::string rewritten = temp_plan_path("golden_rewrite");
  fresh.save(rewritten);
  EXPECT_EQ(read_file(golden), read_file(rewritten));
  std::remove(rewritten.c_str());
}

}  // namespace
}  // namespace dsg
