// Exhaustive semantics tests for the workspace-reusing, mask-fused SpMSpV
// engine: vxm / mxv checked against a brute-force dense reference across
// every mask x complement x structure x replace x accum combination, plus
// workspace-reuse (one grb::Context across many differently-shaped calls),
// the OpenMP parallel kernel, and the cached transpose.
#include <gtest/gtest.h>

#include <optional>
#include <random>
#include <vector>

#include "graphblas/graphblas.hpp"

#if defined(DSG_HAVE_OPENMP)
#include <omp.h>
#endif

namespace {

using grb::Index;

// ---------------------------------------------------------------------------
// Brute-force dense model of a vector with explicit presence.
// ---------------------------------------------------------------------------

struct DenseVec {
  std::vector<bool> has;
  std::vector<double> val;

  explicit DenseVec(Index n) : has(n, false), val(n, 0.0) {}

  static DenseVec from(const grb::Vector<double>& v) {
    DenseVec d(v.size());
    v.for_each([&](Index i, const double& x) {
      d.has[i] = true;
      d.val[i] = x;
    });
    return d;
  }
};

void expect_matches(const grb::Vector<double>& got, const DenseVec& want,
                    const std::string& label) {
  ASSERT_EQ(got.size(), want.has.size()) << label;
  for (Index i = 0; i < got.size(); ++i) {
    auto v = got.extract_element(i);
    EXPECT_EQ(v.has_value(), static_cast<bool>(want.has[i]))
        << label << " presence at " << i;
    if (v && want.has[i]) {
      EXPECT_DOUBLE_EQ(*v, want.val[i]) << label << " value at " << i;
    }
  }
}

/// Reference z = uT A over (min,+), dense, with explicit presence.
DenseVec ref_vxm_minplus(const grb::Vector<double>& u,
                         const grb::Matrix<double>& a) {
  DenseVec z(a.ncols());
  u.for_each([&](Index i, const double& ux) {
    auto cols = a.row_indices(i);
    auto vals = a.row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const double p = ux + static_cast<double>(vals[k]);
      const Index j = cols[k];
      if (!z.has[j] || p < z.val[j]) {
        z.has[j] = true;
        z.val[j] = p;
      }
    }
  });
  return z;
}

/// Reference z = A u over (min,+), dense.
DenseVec ref_mxv_minplus(const grb::Matrix<double>& a,
                         const grb::Vector<double>& u) {
  DenseVec z(a.nrows());
  a.for_each([&](Index r, Index c, const double& w) {
    auto uv = u.extract_element(c);
    if (!uv) return;
    const double p = w + *uv;
    if (!z.has[r] || p < z.val[r]) {
      z.has[r] = true;
      z.val[r] = p;
    }
  });
  return z;
}

enum class MaskKind { kNone, kBool, kDouble };

/// Reference write phase per the GraphBLAS rule (see mask.hpp):
///   mask true at i  -> w[i] = accum ? combine(w, z) : z   (absent if absent)
///   mask false at i -> w[i] kept, or deleted when replace
template <typename MaskVec>
DenseVec ref_write(const DenseVec& w0, const DenseVec& z, const MaskVec* mask,
                   bool complement, bool structure, bool replace,
                   bool min_accum) {
  const Index n = w0.has.size();
  DenseVec out(n);
  for (Index i = 0; i < n; ++i) {
    bool m;
    if (mask == nullptr) {
      m = true;
    } else {
      auto v = mask->extract_element(i);
      m = structure ? v.has_value() : (v.has_value() && *v != 0);
    }
    if (complement) m = !m;

    if (m) {
      if (min_accum) {
        if (w0.has[i] && z.has[i]) {
          out.has[i] = true;
          out.val[i] = std::min(w0.val[i], z.val[i]);
        } else if (z.has[i]) {
          out.has[i] = true;
          out.val[i] = z.val[i];
        } else if (w0.has[i]) {
          out.has[i] = true;
          out.val[i] = w0.val[i];
        }
      } else if (z.has[i]) {
        out.has[i] = true;
        out.val[i] = z.val[i];
      }
    } else if (!replace && w0.has[i]) {
      out.has[i] = true;
      out.val[i] = w0.val[i];
    }
  }
  return out;
}

// Small weighted digraph exercising fan-in, fan-out and isolated columns.
grb::Matrix<double> graph8() {
  const std::vector<Index> r{0, 0, 1, 1, 2, 3, 3, 4, 5, 6, 6};
  const std::vector<Index> c{1, 3, 2, 4, 4, 1, 5, 6, 6, 0, 7};
  const std::vector<double> v{2, 7, 1, 9, 3, 4, 2, 1, 5, 8, 6};
  return grb::Matrix<double>::build(8, 8, r, c, v);
}

grb::Vector<double> frontier8() {
  grb::Vector<double> u(8);
  u.set_element(0, 0.0);
  u.set_element(1, 2.0);
  u.set_element(3, 1.5);
  return u;
}

grb::Vector<double> preloaded_w8() {
  grb::Vector<double> w(8);
  w.set_element(1, 0.5);
  w.set_element(4, 100.0);
  w.set_element(7, -3.0);
  return w;
}

// Bool mask: entries at {1, 2, 4, 6}, with 2 stored-but-false.
grb::Vector<bool> bool_mask8() {
  grb::Vector<bool> m(8);
  m.set_element(1, true);
  m.set_element(2, false);
  m.set_element(4, true);
  m.set_element(6, true);
  return m;
}

// Dense double mask (every position stored, some zero) — exercises the
// O(1) dense-probe fast path.
grb::Vector<double> dense_mask8() {
  grb::Vector<double> m(8);
  for (Index i = 0; i < 8; ++i) m.set_element(i, (i % 3 == 0) ? 0.0 : 1.0);
  return m;
}

struct Combo {
  MaskKind mask;
  bool complement;
  bool structure;
  bool replace;
  bool accum;
};

std::vector<Combo> all_combos() {
  std::vector<Combo> out;
  for (MaskKind mk : {MaskKind::kNone, MaskKind::kBool, MaskKind::kDouble}) {
    for (bool comp : {false, true}) {
      for (bool str : {false, true}) {
        for (bool rep : {false, true}) {
          for (bool acc : {false, true}) {
            out.push_back({mk, comp, str, rep, acc});
          }
        }
      }
    }
  }
  return out;
}

std::string combo_name(const Combo& c) {
  std::string s;
  s += c.mask == MaskKind::kNone ? "nomask"
       : c.mask == MaskKind::kBool ? "bool" : "dense";
  if (c.complement) s += "+comp";
  if (c.structure) s += "+struct";
  if (c.replace) s += "+replace";
  if (c.accum) s += "+accum";
  return s;
}

grb::Descriptor make_desc(const Combo& c) {
  grb::Descriptor d;
  d.mask_complement = c.complement;
  d.mask_structure = c.structure;
  d.replace = c.replace;
  return d;
}

/// Runs one op for every combo, comparing against the dense reference.
/// `run(w, mask_ptr_bool, mask_ptr_double, desc, accum?)` is abstracted via
/// two lambdas (no-accum and min-accum variants).
template <typename RunNoAcc, typename RunMinAcc>
void check_all_combos(const DenseVec& zref, const grb::Vector<double>& w0,
                      RunNoAcc&& run_noacc, RunMinAcc&& run_minacc) {
  const auto bm = bool_mask8();
  const auto dm = dense_mask8();
  for (const Combo& c : all_combos()) {
    grb::Vector<double> w = w0;
    const grb::Descriptor desc = make_desc(c);
    DenseVec want(0);
    switch (c.mask) {
      case MaskKind::kNone:
        want = ref_write<grb::Vector<bool>>(DenseVec::from(w0), zref, nullptr,
                                            c.complement, c.structure,
                                            c.replace, c.accum);
        break;
      case MaskKind::kBool:
        want = ref_write(DenseVec::from(w0), zref, &bm, c.complement,
                         c.structure, c.replace, c.accum);
        break;
      case MaskKind::kDouble:
        want = ref_write(DenseVec::from(w0), zref, &dm, c.complement,
                         c.structure, c.replace, c.accum);
        break;
    }
    if (c.accum) {
      run_minacc(w, c.mask, desc);
    } else {
      run_noacc(w, c.mask, desc);
    }
    expect_matches(w, want, combo_name(c));
  }
}

TEST(VxmReference, AllMaskCombosMatchDenseReference) {
  const auto a = graph8();
  const auto u = frontier8();
  const auto w0 = preloaded_w8();
  const auto zref = ref_vxm_minplus(u, a);
  const auto sr = grb::min_plus_semiring<double>();
  const auto bm = bool_mask8();
  const auto dm = dense_mask8();

  check_all_combos(
      zref, w0,
      [&](grb::Vector<double>& w, MaskKind mk, const grb::Descriptor& d) {
        switch (mk) {
          case MaskKind::kNone:
            grb::vxm(w, grb::NoMask{}, grb::NoAccumulate{}, sr, u, a, d);
            break;
          case MaskKind::kBool:
            grb::vxm(w, bm, grb::NoAccumulate{}, sr, u, a, d);
            break;
          case MaskKind::kDouble:
            grb::vxm(w, dm, grb::NoAccumulate{}, sr, u, a, d);
            break;
        }
      },
      [&](grb::Vector<double>& w, MaskKind mk, const grb::Descriptor& d) {
        switch (mk) {
          case MaskKind::kNone:
            grb::vxm(w, grb::NoMask{}, grb::Min<double>{}, sr, u, a, d);
            break;
          case MaskKind::kBool:
            grb::vxm(w, bm, grb::Min<double>{}, sr, u, a, d);
            break;
          case MaskKind::kDouble:
            grb::vxm(w, dm, grb::Min<double>{}, sr, u, a, d);
            break;
        }
      });
}

TEST(MxvReference, AllMaskCombosMatchDenseReference) {
  const auto a = graph8();
  const auto u = frontier8();
  const auto w0 = preloaded_w8();
  const auto zref = ref_mxv_minplus(a, u);
  const auto sr = grb::min_plus_semiring<double>();
  const auto bm = bool_mask8();
  const auto dm = dense_mask8();

  check_all_combos(
      zref, w0,
      [&](grb::Vector<double>& w, MaskKind mk, const grb::Descriptor& d) {
        switch (mk) {
          case MaskKind::kNone:
            grb::mxv(w, grb::NoMask{}, grb::NoAccumulate{}, sr, a, u, d);
            break;
          case MaskKind::kBool:
            grb::mxv(w, bm, grb::NoAccumulate{}, sr, a, u, d);
            break;
          case MaskKind::kDouble:
            grb::mxv(w, dm, grb::NoAccumulate{}, sr, a, u, d);
            break;
        }
      },
      [&](grb::Vector<double>& w, MaskKind mk, const grb::Descriptor& d) {
        switch (mk) {
          case MaskKind::kNone:
            grb::mxv(w, grb::NoMask{}, grb::Min<double>{}, sr, a, u, d);
            break;
          case MaskKind::kBool:
            grb::mxv(w, bm, grb::Min<double>{}, sr, a, u, d);
            break;
          case MaskKind::kDouble:
            grb::mxv(w, dm, grb::Min<double>{}, sr, a, u, d);
            break;
        }
      });
}

TEST(MxvReference, TransposeDescriptorMatchesVxmReference) {
  // mxv with transpose_in0 takes the push-kernel path: ATu == (uTA)T.
  const auto a = graph8();
  const auto u = frontier8();
  const auto w0 = preloaded_w8();
  const auto zref = ref_vxm_minplus(u, a);
  const auto sr = grb::min_plus_semiring<double>();
  const auto bm = bool_mask8();

  for (bool replace : {false, true}) {
    grb::Vector<double> w = w0;
    grb::Descriptor d;
    d.transpose_in0 = true;
    d.replace = replace;
    grb::mxv(w, bm, grb::NoAccumulate{}, sr, a, u, d);
    const auto want = ref_write(DenseVec::from(w0), zref, &bm, false, false,
                                replace, false);
    expect_matches(w, want, replace ? "mxv(T)+replace" : "mxv(T)");
  }
}

// ---------------------------------------------------------------------------
// Workspace reuse.
// ---------------------------------------------------------------------------

TEST(ContextWorkspace, RepeatedCallsMatchFreshContext) {
  // One Context carried across many calls of different shapes and
  // dimensions must produce exactly what fresh-context calls produce.
  const auto a8 = graph8();
  const auto u8 = frontier8();
  const auto sr = grb::min_plus_semiring<double>();
  const auto bm = bool_mask8();

  std::mt19937_64 rng(11);
  std::uniform_int_distribution<Index> pick(0, 99);
  std::vector<Index> r, c;
  std::vector<double> v;
  for (int k = 0; k < 600; ++k) {
    r.push_back(pick(rng));
    c.push_back(pick(rng));
    v.push_back(1.0 + static_cast<double>(k % 7));
  }
  const auto a100 =
      grb::Matrix<double>::build(100, 100, r, c, v, grb::Min<double>{});
  grb::Vector<double> u100(100);
  for (Index i = 0; i < 100; i += 9) u100.set_element(i, 0.25 * i);

  grb::Context shared;
  for (int round = 0; round < 3; ++round) {
    // Small masked vxm.
    grb::Vector<double> w_shared(8), w_fresh(8);
    grb::Context fresh1;
    grb::vxm(shared, w_shared, bm, grb::NoAccumulate{}, sr, u8, a8,
             grb::replace_desc);
    grb::vxm(fresh1, w_fresh, bm, grb::NoAccumulate{}, sr, u8, a8,
             grb::replace_desc);
    EXPECT_EQ(w_shared, w_fresh) << "round " << round;

    // Bigger unmasked vxm (different dimension through the same workspace).
    grb::Vector<double> x_shared(100), x_fresh(100);
    grb::Context fresh2;
    grb::vxm(shared, x_shared, sr, u100, a100);
    grb::vxm(fresh2, x_fresh, sr, u100, a100);
    EXPECT_EQ(x_shared, x_fresh) << "round " << round;

    // Interleave masked point-wise ops through the same Context.
    grb::Vector<double> y_shared(8), y_fresh(8);
    grb::Context fresh3;
    grb::apply(shared, y_shared, bm, grb::NoAccumulate{},
               grb::Identity<double>{}, w_shared, grb::replace_desc);
    grb::apply(fresh3, y_fresh, bm, grb::NoAccumulate{},
               grb::Identity<double>{}, w_fresh, grb::replace_desc);
    EXPECT_EQ(y_shared, y_fresh) << "round " << round;

    grb::Vector<double> m_shared(8), m_fresh(8);
    grb::Context fresh4;
    grb::ewise_add(shared, m_shared, grb::Min<double>{}, w_shared, y_shared);
    grb::ewise_add(fresh4, m_fresh, grb::Min<double>{}, w_fresh, y_fresh);
    EXPECT_EQ(m_shared, m_fresh) << "round " << round;
  }
}

TEST(ContextWorkspace, ReleaseKeepsContextUsable) {
  const auto a = graph8();
  const auto u = frontier8();
  const auto sr = grb::min_plus_semiring<double>();

  grb::Context ctx;
  grb::Vector<double> w1(8), w2(8);
  grb::vxm(ctx, w1, sr, u, a);
  ctx.release();
  grb::vxm(ctx, w2, sr, u, a);
  EXPECT_EQ(w1, w2);
}

TEST(ContextWorkspace, DefaultContextIsReusedByLegacySignatures) {
  // Same result through the implicit thread-local context, repeatedly.
  const auto a = graph8();
  const auto u = frontier8();
  const auto sr = grb::min_plus_semiring<double>();
  grb::Vector<double> first(8);
  grb::vxm(first, sr, u, a);
  for (int i = 0; i < 5; ++i) {
    grb::Vector<double> again(8);
    grb::vxm(again, sr, u, a);
    EXPECT_EQ(first, again);
  }
}

// ---------------------------------------------------------------------------
// OpenMP parallel kernel.
// ---------------------------------------------------------------------------

#if defined(DSG_HAVE_OPENMP)
TEST(ParallelVxm, MatchesSerialKernelBitForBit) {
  // Random graph, dense frontier; the parallel kernel must agree with the
  // serial one exactly (the merge reproduces the serial combine order).
  const Index n = 3000;
  std::mt19937_64 rng(5);
  std::uniform_int_distribution<Index> pick(0, n - 1);
  std::uniform_real_distribution<double> wd(0.1, 4.0);
  std::vector<Index> r, c;
  std::vector<double> v;
  for (Index i = 0; i < n; ++i) {
    for (int k = 0; k < 6; ++k) {
      r.push_back(i);
      c.push_back(pick(rng));
      v.push_back(wd(rng));
    }
  }
  const auto a = grb::Matrix<double>::build(n, n, r, c, v, grb::Min<double>{});

  for (Index frontier : {Index{50}, Index{700}, n}) {
    grb::Vector<double> u(n);
    for (Index i = 0; i < frontier; ++i) {
      u.set_element((i * 37) % n, 0.5 * static_cast<double>(i % 13));
    }
    grb::Vector<bool> mask(n);
    for (Index i = 0; i < n; i += 3) mask.set_element(i, true);

    const int saved_threads = omp_get_max_threads();
    omp_set_num_threads(4);  // oversubscription is fine for correctness
    grb::Context par;
    par.vxm_parallel_threshold = 1;  // force the parallel path
    grb::Context ser;
    ser.vxm_parallel_threshold = std::numeric_limits<Index>::max();

    {
      // (min,+) adds are exactly associative: the parallel merge must be
      // bit-identical to the serial kernel.
      grb::Vector<double> wp(n), ws(n);
      const auto sr = grb::min_plus_semiring<double>();
      grb::vxm(par, wp, sr, u, a);
      grb::vxm(ser, ws, sr, u, a);
      EXPECT_EQ(wp, ws) << "minplus frontier=" << frontier;

      // Masked variant through the same workspaces.
      grb::Vector<double> mp(n), ms(n);
      grb::vxm(par, mp, mask, grb::NoAccumulate{}, sr, u, a,
               grb::replace_desc);
      grb::vxm(ser, ms, mask, grb::NoAccumulate{}, sr, u, a,
               grb::replace_desc);
      EXPECT_EQ(mp, ms) << "masked frontier=" << frontier;
    }
    {
      // Floating-point sums are re-associated per chunk by the merge:
      // structure is identical, values agree within rounding.
      grb::Vector<double> wp(n), ws(n);
      const auto sr = grb::plus_times_semiring<double>();
      grb::vxm(par, wp, sr, u, a);
      grb::vxm(ser, ws, sr, u, a);
      ASSERT_EQ(wp.nvals(), ws.nvals()) << "plustimes frontier=" << frontier;
      ASSERT_TRUE(std::equal(wp.indices().begin(), wp.indices().end(),
                             ws.indices().begin()))
          << "plustimes structure, frontier=" << frontier;
      for (std::size_t k = 0; k < wp.values().size(); ++k) {
        EXPECT_NEAR(wp.values()[k], ws.values()[k],
                    1e-12 * std::max(1.0, std::abs(ws.values()[k])))
            << "plustimes value " << k << ", frontier=" << frontier;
      }
    }
    omp_set_num_threads(saved_threads);
  }
}
#endif  // DSG_HAVE_OPENMP

// ---------------------------------------------------------------------------
// Cached transpose.
// ---------------------------------------------------------------------------

TEST(TransposeCache, MatchesExplicitTransposeAndInvalidates) {
  auto a = graph8();
  EXPECT_EQ(a.transpose_cached(), a.transposed());
  // Second call returns the same object (cache hit).
  const grb::Matrix<double>* first = &a.transpose_cached();
  EXPECT_EQ(first, &a.transpose_cached());

  // Mutation invalidates: the cache must reflect the new element.
  a.set_element(7, 0, 42.0);
  EXPECT_EQ(a.transpose_cached(), a.transposed());
  EXPECT_DOUBLE_EQ(*a.transpose_cached().extract_element(0, 7), 42.0);

  a.remove_element(7, 0);
  EXPECT_EQ(a.transpose_cached(), a.transposed());
  EXPECT_FALSE(a.transpose_cached().has_element(0, 7));

  a.clear();
  EXPECT_EQ(a.transpose_cached().nvals(), 0u);
}

TEST(TransposeCache, CopiesInvalidateIndependently) {
  auto a = graph8();
  (void)a.transpose_cached();
  grb::Matrix<double> b = a;  // shares the snapshot
  b.set_element(0, 7, 9.0);   // must only invalidate b's cache
  EXPECT_EQ(a.transpose_cached(), a.transposed());
  EXPECT_EQ(b.transpose_cached(), b.transposed());
  EXPECT_DOUBLE_EQ(*b.transpose_cached().extract_element(7, 0), 9.0);
  EXPECT_FALSE(a.transpose_cached().has_element(7, 0));
}

TEST(TransposeCache, VxmWithTransposeDescriptorUsesCache) {
  const auto a = graph8();
  const auto u = frontier8();
  const auto sr = grb::min_plus_semiring<double>();
  grb::Descriptor d;
  d.transpose_in1 = true;

  grb::Vector<double> w1(8), w2(8), wref(8);
  grb::vxm(w1, grb::NoMask{}, grb::NoAccumulate{}, sr, u, a, d);
  grb::vxm(w2, grb::NoMask{}, grb::NoAccumulate{}, sr, u, a, d);  // cache hit
  grb::vxm(wref, grb::NoMask{}, grb::NoAccumulate{}, sr, u, a.transposed());
  EXPECT_EQ(w1, wref);
  EXPECT_EQ(w2, wref);
}

}  // namespace
