// Unit tests for grb::kronecker.
#include <gtest/gtest.h>

#include "graphblas/graphblas.hpp"
#include "graphblas/operations/kronecker.hpp"

namespace {

using grb::Index;

grb::Matrix<double> mat(Index r, Index c,
                        std::initializer_list<std::tuple<Index, Index, double>>
                            entries) {
  grb::Matrix<double> m(r, c);
  for (auto [i, j, v] : entries) m.set_element(i, j, v);
  return m;
}

TEST(Kronecker, DimensionsAndCoordinates) {
  auto a = mat(2, 2, {{0, 1, 2.0}, {1, 0, 3.0}});
  auto b = mat(2, 2, {{0, 0, 5.0}, {1, 1, 7.0}});
  grb::Matrix<double> c(4, 4);
  grb::kronecker(c, grb::Times<double>{}, a, b);
  EXPECT_EQ(c.nvals(), 4u);
  // A[0][1]*B[0][0] lands at (0*2+0, 1*2+0) = (0, 2).
  EXPECT_DOUBLE_EQ(*c.extract_element(0, 2), 10.0);
  // A[0][1]*B[1][1] -> (1, 3).
  EXPECT_DOUBLE_EQ(*c.extract_element(1, 3), 14.0);
  // A[1][0]*B[0][0] -> (2, 0); A[1][0]*B[1][1] -> (3, 1).
  EXPECT_DOUBLE_EQ(*c.extract_element(2, 0), 15.0);
  EXPECT_DOUBLE_EQ(*c.extract_element(3, 1), 21.0);
}

TEST(Kronecker, NvalsIsProduct) {
  auto a = mat(2, 3, {{0, 0, 1.0}, {0, 2, 1.0}, {1, 1, 1.0}});
  auto b = mat(3, 2, {{0, 1, 1.0}, {2, 0, 1.0}});
  grb::Matrix<double> c(6, 6);
  grb::kronecker(c, grb::Times<double>{}, a, b);
  EXPECT_EQ(c.nvals(), a.nvals() * b.nvals());
  EXPECT_EQ(c.nrows(), 6u);
  EXPECT_EQ(c.ncols(), 6u);
}

TEST(Kronecker, IdentityIsNeutralUpToDimensions) {
  auto a = mat(2, 2, {{0, 1, 2.0}, {1, 0, 3.0}});
  auto one = mat(1, 1, {{0, 0, 1.0}});
  grb::Matrix<double> c(2, 2);
  grb::kronecker(c, grb::Times<double>{}, a, one);
  EXPECT_EQ(c, a);
  grb::kronecker(c, grb::Times<double>{}, one, a);
  EXPECT_EQ(c, a);
}

TEST(Kronecker, MatchesBruteForce) {
  auto a = mat(3, 2, {{0, 0, 1.5}, {1, 1, 2.5}, {2, 0, 3.5}});
  auto b = mat(2, 3, {{0, 2, 1.0}, {1, 0, 4.0}, {1, 1, 5.0}});
  grb::Matrix<double> c(6, 6);
  grb::kronecker(c, grb::Times<double>{}, a, b);
  a.for_each([&](Index i, Index j, double av) {
    b.for_each([&](Index k, Index l, double bv) {
      auto got = c.extract_element(i * 2 + k, j * 3 + l);
      ASSERT_TRUE(got.has_value());
      EXPECT_DOUBLE_EQ(*got, av * bv);
    });
  });
}

TEST(Kronecker, KroneckerPowerGrowsGraph500Style) {
  // The RMAT/Graph500 connection: the k-th Kronecker power of a 2x2 seed
  // has 4^k potential edges over 2^k vertices.
  auto seed = mat(2, 2, {{0, 0, 1.0}, {0, 1, 1.0}, {1, 0, 1.0}});
  grb::Matrix<double> p2(4, 4);
  grb::kronecker(p2, grb::Times<double>{}, seed, seed);
  EXPECT_EQ(p2.nvals(), 9u);  // 3^2
  grb::Matrix<double> p3(8, 8);
  grb::kronecker(p3, grb::Times<double>{}, p2, seed);
  EXPECT_EQ(p3.nvals(), 27u);  // 3^3
}

TEST(Kronecker, MaskAndReplace) {
  auto a = mat(2, 2, {{0, 0, 2.0}, {1, 1, 3.0}});
  auto b = mat(2, 2, {{0, 0, 1.0}, {1, 1, 1.0}});
  grb::Matrix<bool> mask(4, 4);
  mask.set_element(0, 0, true);
  grb::Matrix<double> c(4, 4);
  c.set_element(3, 0, 9.0);
  grb::kronecker(c, mask, grb::NoAccumulate{}, grb::Times<double>{}, a, b,
                 grb::replace_desc);
  EXPECT_EQ(c.nvals(), 1u);
  EXPECT_DOUBLE_EQ(*c.extract_element(0, 0), 2.0);
}

TEST(Kronecker, MinPlusSemiringOp) {
  // Over (min,+) the Kronecker "product" adds weights — composite edge
  // costs on product graphs.
  auto a = mat(2, 2, {{0, 1, 2.0}});
  auto b = mat(2, 2, {{1, 0, 3.0}});
  grb::Matrix<double> c(4, 4);
  grb::kronecker(c, grb::PlusSaturating<double>{}, a, b);
  EXPECT_DOUBLE_EQ(*c.extract_element(1, 2), 5.0);
}

TEST(Kronecker, DimensionCheck) {
  auto a = mat(2, 2, {{0, 0, 1.0}});
  auto b = mat(2, 2, {{0, 0, 1.0}});
  grb::Matrix<double> wrong(3, 4);
  EXPECT_THROW(grb::kronecker(wrong, grb::Times<double>{}, a, b),
               grb::DimensionMismatch);
}

TEST(Kronecker, EmptyOperand) {
  auto a = mat(2, 2, {{0, 0, 1.0}});
  grb::Matrix<double> empty(2, 2);
  grb::Matrix<double> c(4, 4);
  grb::kronecker(c, grb::Times<double>{}, a, empty);
  EXPECT_EQ(c.nvals(), 0u);
}

}  // namespace
