// Unit tests for graphblas/ops.hpp: each predefined operator and the
// delta-stepping threshold predicates.
#include <gtest/gtest.h>

#include "graphblas/ops.hpp"

namespace {

TEST(UnaryOps, Identity) {
  EXPECT_DOUBLE_EQ(grb::Identity<double>{}(3.25), 3.25);
  EXPECT_EQ(grb::Identity<int>{}(-7), -7);
}

TEST(UnaryOps, AdditiveInverse) {
  EXPECT_DOUBLE_EQ(grb::AdditiveInverse<double>{}(2.0), -2.0);
  EXPECT_EQ(grb::AdditiveInverse<int>{}(-3), 3);
}

TEST(UnaryOps, MultiplicativeInverse) {
  EXPECT_DOUBLE_EQ(grb::MultiplicativeInverse<double>{}(4.0), 0.25);
}

TEST(UnaryOps, LogicalNot) {
  EXPECT_EQ(grb::LogicalNot<int>{}(0), 1);
  EXPECT_EQ(grb::LogicalNot<int>{}(7), 0);
}

TEST(UnaryOps, Abs) {
  EXPECT_EQ(grb::AbsOp<int>{}(-5), 5);
  EXPECT_EQ(grb::AbsOp<int>{}(5), 5);
  EXPECT_EQ(grb::AbsOp<unsigned>{}(5u), 5u);
}

TEST(UnaryOps, One) {
  EXPECT_DOUBLE_EQ(grb::One<double>{}(123.0), 1.0);
}

TEST(UnaryOps, BindSecondTurnsBinaryIntoUnary) {
  grb::BindSecond<grb::Plus<double>, double> add5{{}, 5.0};
  EXPECT_DOUBLE_EQ(add5(2.0), 7.0);
  grb::BindSecond<grb::LessThan<double>, double> lt3{{}, 3.0};
  EXPECT_TRUE(lt3(2.0));
  EXPECT_FALSE(lt3(3.0));
}

TEST(UnaryOps, BindFirst) {
  grb::BindFirst<grb::Minus<double>, double> tenMinus{{}, 10.0};
  EXPECT_DOUBLE_EQ(tenMinus(4.0), 6.0);
}

// --- Delta-stepping predicates (paper: delta_leq, delta_gt, delta_igeq,
// delta_irange). --------------------------------------------------------

TEST(Predicates, GreaterThanThresholdIsStrict) {
  grb::GreaterThanThreshold<double> heavy{2.0};
  EXPECT_FALSE(heavy(2.0));  // boundary goes to the light set
  EXPECT_TRUE(heavy(2.0000001));
  EXPECT_FALSE(heavy(0.5));
}

TEST(Predicates, LightEdgeExcludesZeroAndIncludesBoundary) {
  grb::LightEdgePredicate<double> light{2.0};
  EXPECT_TRUE(light(2.0));    // w <= delta
  EXPECT_TRUE(light(0.001));
  EXPECT_FALSE(light(0.0));   // 0 < A: explicit zeros are not edges
  EXPECT_FALSE(light(2.5));
}

TEST(Predicates, LightHeavyPartitionIsExact) {
  // Every positive weight is exactly one of light/heavy.
  grb::LightEdgePredicate<double> light{1.0};
  grb::GreaterThanThreshold<double> heavy{1.0};
  for (double w : {0.1, 0.5, 1.0, 1.5, 10.0}) {
    EXPECT_NE(light(w), heavy(w)) << "w=" << w;
  }
}

TEST(Predicates, GreaterEqualThreshold) {
  grb::GreaterEqualThreshold<double> geq{3.0};
  EXPECT_TRUE(geq(3.0));
  EXPECT_TRUE(geq(4.0));
  EXPECT_FALSE(geq(2.999));
}

TEST(Predicates, HalfOpenRange) {
  grb::HalfOpenRangePredicate<double> bucket{2.0, 4.0};
  EXPECT_TRUE(bucket(2.0));   // closed below
  EXPECT_TRUE(bucket(3.999));
  EXPECT_FALSE(bucket(4.0));  // open above
  EXPECT_FALSE(bucket(1.999));
}

// --- Binary ops. --------------------------------------------------------

TEST(BinaryOps, Arithmetic) {
  EXPECT_DOUBLE_EQ(grb::Plus<double>{}(2.0, 3.0), 5.0);
  EXPECT_DOUBLE_EQ(grb::Minus<double>{}(2.0, 3.0), -1.0);
  EXPECT_DOUBLE_EQ(grb::Times<double>{}(2.0, 3.0), 6.0);
  EXPECT_DOUBLE_EQ(grb::Div<double>{}(6.0, 3.0), 2.0);
}

TEST(BinaryOps, PlusSaturatingOnIntegral) {
  const int inf = grb::infinity_value<int>();
  EXPECT_EQ(grb::PlusSaturating<int>{}(inf, 7), inf);
  EXPECT_EQ(grb::PlusSaturating<int>{}(3, 4), 7);
}

TEST(BinaryOps, MinMax) {
  EXPECT_DOUBLE_EQ(grb::Min<double>{}(2.0, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(grb::Max<double>{}(2.0, 3.0), 3.0);
  // min/max are commutative and idempotent
  EXPECT_DOUBLE_EQ(grb::Min<double>{}(3.0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(grb::Min<double>{}(2.0, 2.0), 2.0);
}

TEST(BinaryOps, FirstSecond) {
  EXPECT_EQ(grb::First<int>{}(1, 2), 1);
  EXPECT_EQ(grb::Second<int>{}(1, 2), 2);
}

TEST(BinaryOps, Logical) {
  EXPECT_EQ(grb::LogicalOr<int>{}(0, 0), 0);
  EXPECT_EQ(grb::LogicalOr<int>{}(0, 5), 1);
  EXPECT_EQ(grb::LogicalAnd<int>{}(3, 5), 1);
  EXPECT_EQ(grb::LogicalAnd<int>{}(3, 0), 0);
  EXPECT_EQ(grb::LogicalXor<int>{}(3, 0), 1);
  EXPECT_EQ(grb::LogicalXor<int>{}(3, 5), 0);
}

TEST(BinaryOps, ComparisonsReturnBool) {
  EXPECT_TRUE(grb::LessThan<double>{}(1.0, 2.0));
  EXPECT_FALSE(grb::LessThan<double>{}(2.0, 2.0));
  EXPECT_TRUE(grb::LessEqual<double>{}(2.0, 2.0));
  EXPECT_TRUE(grb::GreaterThan<double>{}(3.0, 2.0));
  EXPECT_TRUE(grb::GreaterEqual<double>{}(2.0, 2.0));
  EXPECT_TRUE(grb::Equal<double>{}(2.0, 2.0));
  EXPECT_TRUE(grb::NotEqual<double>{}(2.0, 3.0));
}

TEST(BinaryOps, LessThanIsNotCommutative) {
  // The property at the heart of the paper's Sec. V-B discussion.
  grb::LessThan<double> lt;
  EXPECT_NE(lt(1.0, 2.0), lt(2.0, 1.0));
}

}  // namespace
