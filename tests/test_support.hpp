// test_support.hpp — shared fixture layer for the SSSP test suites.
//
// Provides four things so the SSSP variants are exercised uniformly:
//   1. tiny hand-computed graphs with their known distance vectors,
//   2. an oracle checker against hand-computed distances,
//   3. a table of every SSSP entry point under one signature, plus the
//      DSG_CHECK_IMPL_PARITY table-driven parity macro (structural
//      validate_sssp + Dijkstra agreement for each implementation),
//   4. run_concurrent_stress, the barrier-started multi-thread harness
//      shared by the serving and async suites.
#pragma once

#include <gtest/gtest.h>

#include <barrier>
#include <cstdint>
#include <exception>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "graph/edge_list.hpp"
#include "sssp/async/async_stepping.hpp"
#include "sssp/bellman_ford.hpp"
#include "sssp/delta_stepping_buckets.hpp"
#include "sssp/delta_stepping_capi.hpp"
#include "sssp/delta_stepping_fused.hpp"
#include "sssp/delta_stepping_graphblas.hpp"
#include "sssp/delta_stepping_openmp.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/validate.hpp"

namespace dsg::test {

using grb::Index;

// ---------------------------------------------------------------------------
// 1. Hand-computed instances.  Each returns the graph; the matching
//    *_distances() function returns the worked-by-hand oracle from the
//    conventional source (documented per graph).
// ---------------------------------------------------------------------------

/// The classic CLRS-style weighted digraph on 5 vertices.
inline EdgeList diamond_graph() {
  EdgeList g(5);
  g.add_edge(0, 1, 10.0);
  g.add_edge(0, 3, 5.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(1, 3, 2.0);
  g.add_edge(2, 4, 4.0);
  g.add_edge(3, 1, 3.0);
  g.add_edge(3, 2, 9.0);
  g.add_edge(3, 4, 2.0);
  g.add_edge(4, 0, 7.0);
  g.add_edge(4, 2, 6.0);
  return g;
}

/// Shortest paths in diamond_graph() from source 0:
///   0; 0->3->1 = 8; 0->3->1->2 = 9; 0->3 = 5; 0->3->4 = 7.
inline std::vector<double> diamond_distances_from_0() {
  return {0.0, 8.0, 9.0, 5.0, 7.0};
}

/// Undirected unit-weight path 0-1-...-(n-1): dist from 0 is the hop count.
inline EdgeList path_graph(Index n) {
  EdgeList g(n);
  for (Index v = 0; v + 1 < n; ++v) {
    g.add_edge(v, v + 1, 1.0);
    g.add_edge(v + 1, v, 1.0);
  }
  return g;
}

inline std::vector<double> path_distances_from_0(Index n) {
  std::vector<double> d(n);
  for (Index v = 0; v < n; ++v) d[v] = static_cast<double>(v);
  return d;
}

/// Two disconnected unit-weight edges: {0-1} and the island {2-3}.
inline EdgeList two_islands_graph() {
  EdgeList g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  return g;
}

inline std::vector<double> two_islands_distances_from_0() {
  return {0.0, 1.0, kInfDist, kInfDist};
}

/// Light-edge chain inside one bucket beating a direct heavier edge:
/// 0 -> 4 direct costs 1.0; 0->1->2->3->4 costs 0.95.  Stresses bucket
/// re-introduction (the delta-stepping corner the paper's Fig. 2 loops on).
inline EdgeList zigzag_graph() {
  EdgeList g(5);
  g.add_edge(0, 1, 0.3);
  g.add_edge(1, 2, 0.3);
  g.add_edge(2, 3, 0.3);
  g.add_edge(3, 4, 0.05);
  g.add_edge(0, 4, 1.0);
  return g;
}

inline std::vector<double> zigzag_distances_from_0() {
  return {0.0, 0.3, 0.6, 0.9, 0.95};
}

// ---------------------------------------------------------------------------
// 2. Oracle checkers.
// ---------------------------------------------------------------------------

/// Element-wise check of a distance vector against a hand-computed oracle.
inline void expect_distances(const std::vector<double>& got,
                             const std::vector<double>& want,
                             const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (Index v = 0; v < want.size(); ++v) {
    if (want[v] == kInfDist) {
      EXPECT_EQ(got[v], kInfDist) << context << ": vertex " << v;
    } else {
      EXPECT_NEAR(got[v], want[v], 1e-12) << context << ": vertex " << v;
    }
  }
}

// ---------------------------------------------------------------------------
// 3. The implementation table: every SSSP entry point under one signature.
// ---------------------------------------------------------------------------

using SsspFn = SsspResult (*)(const grb::Matrix<double>&, Index, double);

struct Impl {
  const char* name;
  SsspFn fn;
};

namespace detail {

inline SsspResult run_graphblas(const grb::Matrix<double>& a, Index s,
                                double d) {
  DeltaSteppingOptions o;
  o.delta = d;
  return delta_stepping_graphblas(a, s, o);
}
inline SsspResult run_graphblas_select(const grb::Matrix<double>& a, Index s,
                                       double d) {
  DeltaSteppingOptions o;
  o.delta = d;
  return delta_stepping_graphblas_select(a, s, o);
}
inline SsspResult run_fused(const grb::Matrix<double>& a, Index s, double d) {
  DeltaSteppingOptions o;
  o.delta = d;
  return delta_stepping_fused(a, s, o);
}
inline SsspResult run_openmp(const grb::Matrix<double>& a, Index s, double d) {
  OpenMpOptions o;
  o.delta = d;
  o.num_threads = 2;
  return delta_stepping_openmp(a, s, o);
}
inline SsspResult run_openmp_mt(const grb::Matrix<double>& a, Index s,
                                double d) {
  OpenMpOptions o;
  o.delta = d;
  o.num_threads = 4;
  return delta_stepping_openmp(a, s, o);
}
inline SsspResult run_buckets(const grb::Matrix<double>& a, Index s,
                              double d) {
  DeltaSteppingOptions o;
  o.delta = d;
  return delta_stepping_buckets(a, s, o);
}
inline SsspResult run_capi(const grb::Matrix<double>& a, Index s, double d) {
  DeltaSteppingOptions o;
  o.delta = d;
  return delta_stepping_capi(a, s, o);
}
inline SsspResult run_async_delta(const grb::Matrix<double>& a, Index s,
                                  double d) {
  AsyncSteppingOptions o;
  o.delta = d;
  o.num_threads = 2;
  return delta_stepping_async(a, s, o);
}
inline SsspResult run_async_delta_mt(const grb::Matrix<double>& a, Index s,
                                     double d) {
  AsyncSteppingOptions o;
  o.delta = d;
  o.num_threads = 4;
  return delta_stepping_async(a, s, o);
}
inline SsspResult run_rho(const grb::Matrix<double>& a, Index s, double) {
  AsyncSteppingOptions o;
  o.num_threads = 2;
  return rho_stepping(a, s, o);
}
inline SsspResult run_rho_mt(const grb::Matrix<double>& a, Index s, double) {
  AsyncSteppingOptions o;
  o.num_threads = 4;
  return rho_stepping(a, s, o);
}
inline SsspResult run_dijkstra(const grb::Matrix<double>& a, Index s, double) {
  return dijkstra(a, s);
}
inline SsspResult run_bellman_ford(const grb::Matrix<double>& a, Index s,
                                   double) {
  return bellman_ford(a, s);
}
inline SsspResult run_bellman_ford_rounds(const grb::Matrix<double>& a,
                                          Index s, double) {
  return bellman_ford_rounds(a, s);
}

}  // namespace detail

/// The delta-stepping variants (paper Fig. 2 and its optimizations), with
/// the OpenMP one at two thread counts so parallel bugs that need >2
/// threads still have a chance to surface.  Non-negative weights required;
/// delta is honored.
inline const std::vector<Impl>& delta_stepping_impls() {
  static const std::vector<Impl> impls = {
      {"graphblas", detail::run_graphblas},
      {"graphblas_select", detail::run_graphblas_select},
      {"fused", detail::run_fused},
      {"openmp", detail::run_openmp},
      {"openmp_4t", detail::run_openmp_mt},
      {"buckets", detail::run_buckets},
      {"capi", detail::run_capi},
      // The lock-free async engine at two thread counts.  Its *distances*
      // honor delta-independence like every other variant (they are the
      // unique fp fixed point), so it belongs in every parity sweep.
      {"delta_stepping_async_2t", detail::run_async_delta},
      {"delta_stepping_async_4t", detail::run_async_delta_mt},
  };
  return impls;
}

/// Everything, baselines included (delta ignored by the baselines and by
/// rho_stepping, which schedules by frontier quantiles instead of buckets).
inline const std::vector<Impl>& all_sssp_impls() {
  static const std::vector<Impl> impls = [] {
    std::vector<Impl> v = delta_stepping_impls();
    v.push_back({"rho_stepping_2t", detail::run_rho});
    v.push_back({"rho_stepping_4t", detail::run_rho_mt});
    v.push_back({"dijkstra", detail::run_dijkstra});
    v.push_back({"bellman_ford", detail::run_bellman_ford});
    v.push_back({"bellman_ford_rounds", detail::run_bellman_ford_rounds});
    return v;
  }();
  return impls;
}

// ---------------------------------------------------------------------------
// 4. Concurrent-stress harness.
// ---------------------------------------------------------------------------

/// Runs `body(thread_index, rng)` on `num_threads` threads that all start
/// together (a barrier maximizes real overlap — without it, thread 0 often
/// finishes before thread N-1 even launches) with a per-thread
/// deterministically-seeded RNG.  gtest assertions are not thread-safe to
/// *fail* on worker threads, so bodies should collect observations and
/// throw on violation; the first exception from any thread is rethrown on
/// the caller after every thread has joined.
template <typename Body>
void run_concurrent_stress(int num_threads, std::uint64_t seed, Body&& body) {
  std::barrier gate(num_threads);
  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(num_threads));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ULL +
                          static_cast<std::uint64_t>(t));
      gate.arrive_and_wait();
      try {
        body(t, rng);
      } catch (...) {
        errors[static_cast<std::size_t>(t)] = std::current_exception();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace dsg::test

/// Table-driven cross-implementation parity: runs every implementation in
/// `impls` on (matrix, source, delta) and checks each result against the
/// structural SSSP invariants and against a single shared Dijkstra
/// reference (itself validated first).
#define DSG_CHECK_IMPL_PARITY(impls, matrix, source, delta)                  \
  do {                                                                       \
    const auto& dsg_parity_a = (matrix);                                     \
    const auto dsg_parity_ref = ::dsg::dijkstra(dsg_parity_a, (source));     \
    const auto dsg_ref_val =                                                 \
        ::dsg::validate_sssp(dsg_parity_a, (source), dsg_parity_ref.dist);   \
    ASSERT_TRUE(dsg_ref_val.ok) << "dijkstra invalid: "                      \
                                << dsg_ref_val.message;                      \
    for (const auto& dsg_impl : (impls)) {                                   \
      SCOPED_TRACE(std::string("impl=") + dsg_impl.name);                    \
      const auto dsg_r = dsg_impl.fn(dsg_parity_a, (source), (delta));       \
      const auto dsg_cmp =                                                   \
          ::dsg::compare_distances(dsg_parity_ref.dist, dsg_r.dist, 1e-9);   \
      EXPECT_TRUE(dsg_cmp.ok) << dsg_cmp.message;                            \
      const auto dsg_val =                                                   \
          ::dsg::validate_sssp(dsg_parity_a, (source), dsg_r.dist);          \
      EXPECT_TRUE(dsg_val.ok) << dsg_val.message;                            \
    }                                                                        \
  } while (0)

/// Distances-only (schedule-independent) parity: checks ONE distance vector
/// — however it was produced — against the structural SSSP invariants and a
/// fresh, self-validated Dijkstra reference.  This is the oracle for the
/// nondeterministic engines: it never looks at stats, phase counts or any
/// other schedule artifact, only at the returned distances (which the async
/// engines guarantee are the unique fp fixed point for every thread count).
#define DSG_CHECK_DISTANCES_ONLY(matrix, source, dist_vec)                   \
  do {                                                                       \
    const auto& dsg_do_a = (matrix);                                         \
    const auto& dsg_do_d = (dist_vec);                                       \
    const auto dsg_do_ref = ::dsg::dijkstra(dsg_do_a, (source));             \
    const auto dsg_do_refval =                                               \
        ::dsg::validate_sssp(dsg_do_a, (source), dsg_do_ref.dist);           \
    ASSERT_TRUE(dsg_do_refval.ok) << "dijkstra invalid: "                    \
                                  << dsg_do_refval.message;                  \
    const auto dsg_do_cmp =                                                  \
        ::dsg::compare_distances(dsg_do_ref.dist, dsg_do_d, 1e-9);           \
    EXPECT_TRUE(dsg_do_cmp.ok) << dsg_do_cmp.message;                        \
    const auto dsg_do_val =                                                  \
        ::dsg::validate_sssp(dsg_do_a, (source), dsg_do_d);                  \
    EXPECT_TRUE(dsg_do_val.ok) << dsg_do_val.message;                        \
  } while (0)
