// Unit tests for the measurement substrate: timers, statistics, reporter,
// CLI parsing.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "bench_support/cli.hpp"
#include "bench_support/reporter.hpp"
#include "bench_support/stats.hpp"
#include "bench_support/timer.hpp"

namespace {

TEST(WallTimer, MeasuresElapsedTime) {
  dsg::WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double ms = timer.milliseconds();
  EXPECT_GE(ms, 15.0);
  EXPECT_LT(ms, 2000.0);
  timer.reset();
  EXPECT_LT(timer.milliseconds(), 15.0);
}

TEST(TscTimer, TicksAdvanceOnX86) {
  if (dsg::read_tsc() == 0) GTEST_SKIP() << "no TSC on this arch";
  dsg::TscTimer timer;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i * 0.5;
  EXPECT_GT(timer.ticks(), 0u);
}

TEST(TscTimer, FrequencyEstimatePlausible) {
  if (dsg::read_tsc() == 0) GTEST_SKIP() << "no TSC on this arch";
  const double hz = dsg::estimate_tsc_hz();
  EXPECT_GT(hz, 1e8);   // > 100 MHz
  EXPECT_LT(hz, 1e11);  // < 100 GHz
}

TEST(Stats, SummarizeBasics) {
  auto s = dsg::summarize({3.0, 1.0, 2.0});
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.median, 2.0);
  EXPECT_NEAR(s.stddev, 1.0, 1e-12);
}

TEST(Stats, MedianEvenCount) {
  auto s = dsg::summarize({4.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(Stats, EmptyAndSingle) {
  auto e = dsg::summarize({});
  EXPECT_EQ(e.count, 0u);
  auto s = dsg::summarize({7.0});
  EXPECT_DOUBLE_EQ(s.median, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, GeometricMean) {
  EXPECT_DOUBLE_EQ(dsg::geometric_mean({1.0, 4.0}), 2.0);
  EXPECT_DOUBLE_EQ(dsg::geometric_mean({2.0, 0.0, 8.0}), 4.0);  // skips 0
  EXPECT_DOUBLE_EQ(dsg::geometric_mean({}), 0.0);
}

TEST(Stats, ArithmeticMean) {
  EXPECT_DOUBLE_EQ(dsg::arithmetic_mean({1.0, 2.0, 6.0}), 3.0);
  EXPECT_DOUBLE_EQ(dsg::arithmetic_mean({}), 0.0);
}

TEST(Reporter, AlignedTableContainsEverything) {
  dsg::TableReporter table("Fig X");
  table.set_header({"graph", "ms"});
  table.add_row({"grid", "1.25"});
  table.add_row({"rmat-16", "330.1"});
  table.add_footer("average 3.7x");
  std::ostringstream out;
  table.print(out);
  const auto s = out.str();
  EXPECT_NE(s.find("Fig X"), std::string::npos);
  EXPECT_NE(s.find("graph"), std::string::npos);
  EXPECT_NE(s.find("rmat-16"), std::string::npos);
  EXPECT_NE(s.find("average 3.7x"), std::string::npos);
}

TEST(Reporter, CsvEscapesCommas) {
  dsg::TableReporter table("t");
  table.set_header({"a", "b"});
  table.add_row({"x,y", "1"});
  std::ostringstream out;
  table.print_csv(out);
  EXPECT_NE(out.str().find("\"x,y\",1"), std::string::npos);
}

TEST(Reporter, FormatHelpers) {
  EXPECT_EQ(dsg::format_double(3.14159, 2), "3.14");
  EXPECT_EQ(dsg::format_ms(0.05), "50.0us");
  EXPECT_EQ(dsg::format_ms(12.3), "12.30ms");
  EXPECT_EQ(dsg::format_ms(20000.0), "20.00s");
}

TEST(Cli, ParsesFlagsValuesAndPositionals) {
  const char* argv[] = {"prog",       "--verbose", "--delta", "2.5",
                        "--name=foo", "input.mtx", "--count", "7"};
  dsg::CliArgs args(8, const_cast<char**>(argv));
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_FALSE(args.has("quiet"));
  EXPECT_DOUBLE_EQ(args.get_double("delta", 0.0), 2.5);
  EXPECT_EQ(args.get("name"), "foo");
  EXPECT_EQ(args.get_int("count", 0), 7);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "input.mtx");
  EXPECT_EQ(args.program(), "prog");
}

TEST(Cli, FallbacksWhenMissing) {
  const char* argv[] = {"prog"};
  dsg::CliArgs args(1, const_cast<char**>(argv));
  EXPECT_EQ(args.get("x", "dflt"), "dflt");
  EXPECT_EQ(args.get_int("n", 42), 42);
  EXPECT_DOUBLE_EQ(args.get_double("d", 1.5), 1.5);
}

TEST(Cli, FlagBeforeAnotherFlagHasEmptyValue) {
  const char* argv[] = {"prog", "--a", "--b", "v"};
  dsg::CliArgs args(4, const_cast<char**>(argv));
  EXPECT_TRUE(args.has("a"));
  EXPECT_EQ(args.get("a", "x"), "");
  EXPECT_EQ(args.get("b"), "v");
}

}  // namespace
