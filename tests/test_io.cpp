// Unit tests for the Matrix Market and SNAP readers/writers.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "graph/matrix_market.hpp"
#include "graph/snap_reader.hpp"
#include "test_support.hpp"

namespace {

using dsg::EdgeList;

std::string data_path(const char* name) {
  return std::string(DSG_TEST_DATA_DIR) + "/" + name;
}

// --- File-path entry points, against the checked-in sample graphs. -----------

TEST(MatrixMarket, ReadsDiamondSampleFile) {
  auto g = dsg::read_matrix_market_file(data_path("diamond.mtx"));
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 10u);
  auto r = dsg::dijkstra(g.to_matrix(), 0);
  dsg::test::expect_distances(r.dist, dsg::test::diamond_distances_from_0(),
                              "diamond.mtx");
}

TEST(MatrixMarket, MissingFileThrows) {
  EXPECT_THROW(dsg::read_matrix_market_file(data_path("no_such_file.mtx")),
               grb::InvalidValue);
}

TEST(Snap, ReadsDiamondSampleFile) {
  auto result = dsg::read_snap_file(data_path("diamond.snap"));
  EXPECT_EQ(result.graph.num_vertices(), 5u);
  EXPECT_EQ(result.graph.num_edges(), 10u);
  auto r = dsg::dijkstra(result.graph.to_matrix(), 0);
  dsg::test::expect_distances(r.dist, dsg::test::diamond_distances_from_0(),
                              "diamond.snap");
}

TEST(Snap, MissingFileThrows) {
  EXPECT_THROW(dsg::read_snap_file(data_path("no_such_file.snap")),
               grb::InvalidValue);
}

TEST(SampleFiles, MtxAndSnapEncodeTheSameGraph) {
  auto mtx = dsg::read_matrix_market_file(data_path("diamond.mtx"));
  auto snap = dsg::read_snap_file(data_path("diamond.snap")).graph;
  mtx.normalize();
  snap.normalize();
  ASSERT_EQ(mtx.num_edges(), snap.num_edges());
  for (std::size_t k = 0; k < mtx.num_edges(); ++k) {
    EXPECT_EQ(mtx.edges()[k].src, snap.edges()[k].src);
    EXPECT_EQ(mtx.edges()[k].dst, snap.edges()[k].dst);
    EXPECT_DOUBLE_EQ(mtx.edges()[k].weight, snap.edges()[k].weight);
  }
}

TEST(MatrixMarket, ReadsGeneralReal) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 3 2\n"
      "1 2 1.5\n"
      "3 1 2.5\n");
  auto g = dsg::read_matrix_market(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  ASSERT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.edges()[0].src, 0u);  // 1-based -> 0-based
  EXPECT_EQ(g.edges()[0].dst, 1u);
  EXPECT_DOUBLE_EQ(g.edges()[0].weight, 1.5);
}

TEST(MatrixMarket, PatternGetsUnitWeights) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 1\n"
      "1 2\n");
  auto g = dsg::read_matrix_market(in);
  EXPECT_DOUBLE_EQ(g.edges()[0].weight, 1.0);
}

TEST(MatrixMarket, SymmetricExpandsBothTriangles) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 2\n"
      "2 1 4.0\n"
      "3 3 1.0\n");  // diagonal entry must not duplicate
  auto g = dsg::read_matrix_market(in);
  EXPECT_EQ(g.num_edges(), 3u);  // (1,0), (0,1), (2,2)
  EXPECT_TRUE(g.is_symmetric());
}

TEST(MatrixMarket, RejectsMissingBanner) {
  std::istringstream in("3 3 0\n");
  EXPECT_THROW(dsg::read_matrix_market(in), grb::InvalidValue);
}

TEST(MatrixMarket, RejectsNonSquare) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 4 0\n");
  EXPECT_THROW(dsg::read_matrix_market(in), grb::InvalidValue);
}

TEST(MatrixMarket, RejectsOutOfBoundsEntry) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "3 1 1.0\n");
  EXPECT_THROW(dsg::read_matrix_market(in), grb::InvalidValue);
}

TEST(MatrixMarket, RejectsTruncatedFile) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 2 1.0\n");
  EXPECT_THROW(dsg::read_matrix_market(in), grb::InvalidValue);
}

TEST(MatrixMarket, RejectsOutOfRangeDimension) {
  // 2^64 does not fit Index; the old long-long parse path clamped instead
  // of diagnosing.  Must be an InvalidValue, never a truncated dimension.
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "18446744073709551616 18446744073709551616 0\n");
  EXPECT_THROW(dsg::read_matrix_market(in), grb::InvalidValue);
}

TEST(MatrixMarket, RejectsOutOfRangeEntryCoordinate) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "18446744073709551616 1 1.0\n");
  EXPECT_THROW(dsg::read_matrix_market(in), grb::InvalidValue);
}

TEST(MatrixMarket, RejectsNegativeDimension) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "-3 -3 0\n");
  EXPECT_THROW(dsg::read_matrix_market(in), grb::InvalidValue);
}

TEST(MatrixMarket, RejectsNonFiniteWeights) {
  // operator>> parses "nan"/"inf" spellings into real doubles; SSSP
  // weights must be finite, so the reader rejects them at the boundary.
  for (const char* bad : {"nan", "inf", "-inf", "NaN", "Infinity"}) {
    std::istringstream in(
        std::string("%%MatrixMarket matrix coordinate real general\n"
                    "3 3 1\n"
                    "1 2 ") +
        bad + "\n");
    EXPECT_THROW(dsg::read_matrix_market(in), grb::InvalidValue) << bad;
  }
}

TEST(MatrixMarket, HugeDeclaredNnzDoesNotPreallocate) {
  // The size line is untrusted: a declared nnz of 2^63 must fail on "not
  // enough entries", not OOM in reserve() before parsing a single line.
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "4 4 9223372036854775807\n"
      "1 2 1.0\n");
  EXPECT_THROW(dsg::read_matrix_market(in), grb::InvalidValue);
}

TEST(MatrixMarket, AcceptsFullWidthCoordinatesUpToDimension) {
  // Ids above 2^63 are valid Index values; the reader must not funnel them
  // through a signed 64-bit intermediate.
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "9223372036854775810 9223372036854775810 1\n"
      "9223372036854775809 1 1.0\n");
  auto g = dsg::read_matrix_market(in);
  EXPECT_EQ(g.num_vertices(), 9223372036854775810ull);
  ASSERT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.edges()[0].src, 9223372036854775808ull);
}

TEST(MatrixMarket, WriteReadRoundTrip) {
  EdgeList g(4);
  g.add_edge(0, 1, 1.25);
  g.add_edge(2, 3, 2.5);
  g.add_edge(3, 0, 0.75);
  std::ostringstream out;
  dsg::write_matrix_market(out, g);
  std::istringstream in(out.str());
  auto back = dsg::read_matrix_market(in);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.edges(), g.edges());
}

// --- SNAP. -------------------------------------------------------------------

TEST(Snap, ReadsCommentsAndEdges) {
  std::istringstream in(
      "# Directed graph\n"
      "# FromNodeId ToNodeId\n"
      "0 1\n"
      "1 2\n"
      "0 2\n");
  auto result = dsg::read_snap(in);
  EXPECT_EQ(result.graph.num_vertices(), 3u);
  EXPECT_EQ(result.graph.num_edges(), 3u);
  EXPECT_DOUBLE_EQ(result.graph.edges()[0].weight, 1.0);
}

TEST(Snap, CompactsSparseIds) {
  std::istringstream in(
      "1000 5\n"
      "5 99\n");
  auto result = dsg::read_snap(in);
  EXPECT_EQ(result.graph.num_vertices(), 3u);
  ASSERT_EQ(result.original_id.size(), 3u);
  EXPECT_EQ(result.original_id[0], 1000u);
  EXPECT_EQ(result.original_id[1], 5u);
  EXPECT_EQ(result.original_id[2], 99u);
  EXPECT_EQ(result.graph.edges()[0].src, 0u);
  EXPECT_EQ(result.graph.edges()[0].dst, 1u);
}

TEST(Snap, OptionalWeightsParsed) {
  std::istringstream in("0 1 2.5\n1 0\n");
  auto result = dsg::read_snap(in);
  EXPECT_DOUBLE_EQ(result.graph.edges()[0].weight, 2.5);
  EXPECT_DOUBLE_EQ(result.graph.edges()[1].weight, 1.0);
}

TEST(Snap, RejectsMalformedLine) {
  std::istringstream in("0\n");
  EXPECT_THROW(dsg::read_snap(in), grb::InvalidValue);
}

TEST(Snap, RejectsNonFiniteWeights) {
  for (const char* bad : {"0 1 nan\n", "0 1 inf\n", "0 1 -inf\n"}) {
    std::istringstream in(bad);
    EXPECT_THROW(dsg::read_snap(in), grb::InvalidValue) << bad;
  }
}

TEST(Snap, RejectsGarbageWeight) {
  // A present-but-unparseable weight column must be a parse error, not a
  // silent default of 1.0 (the "a b xyz" swallow regression).
  std::istringstream in("0 1 xyz\n");
  EXPECT_THROW(dsg::read_snap(in), grb::InvalidValue);
}

TEST(Snap, RejectsGarbageWeightAfterValidRows) {
  std::istringstream in(
      "0 1 2.5\n"
      "1 2 oops\n");
  EXPECT_THROW(dsg::read_snap(in), grb::InvalidValue);
}

TEST(Snap, AbsentWeightStillDefaultsToUnit) {
  // The companion case the fix must not break: no third column at all
  // (including trailing whitespace) keeps the documented 1.0 default.
  std::istringstream in(
      "0 1\n"
      "1 2 \n");
  auto result = dsg::read_snap(in);
  ASSERT_EQ(result.graph.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(result.graph.edges()[0].weight, 1.0);
  EXPECT_DOUBLE_EQ(result.graph.edges()[1].weight, 1.0);
}

TEST(Snap, NumericPrefixWeightMatchesMatrixMarketLaxity) {
  // operator>> stops at the first non-numeric character, so "2.5x" parses
  // as 2.5 with trailing junk ignored — exactly what matrix_market.cpp
  // accepts for its value field.  Pinned so the strictness stays *parity*,
  // not stricter.
  std::istringstream in("0 1 2.5x\n");
  auto result = dsg::read_snap(in);
  ASSERT_EQ(result.graph.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(result.graph.edges()[0].weight, 2.5);
}

TEST(Snap, RejectsNegativeIds) {
  std::istringstream in("-1 2\n");
  EXPECT_THROW(dsg::read_snap(in), grb::InvalidValue);
}

TEST(Snap, RejectsOutOfRangeIds) {
  // 2^64 does not fit Index; the old long-long parse path clamped instead
  // of diagnosing.  Must be an InvalidValue, never a truncated id.
  std::istringstream in("18446744073709551616 2\n");
  EXPECT_THROW(dsg::read_snap(in), grb::InvalidValue);
}

TEST(Snap, RejectsGarbageIds) {
  std::istringstream in("12x3 2\n");
  EXPECT_THROW(dsg::read_snap(in), grb::InvalidValue);
}

TEST(Snap, AcceptsFullWidthIds) {
  // Ids above 2^63 are valid Index values; the reader must not funnel them
  // through a signed 64-bit intermediate.  They compact like any other id.
  std::istringstream in("18446744073709551615 7\n");
  auto result = dsg::read_snap(in);
  EXPECT_EQ(result.graph.num_vertices(), 2u);
  ASSERT_EQ(result.original_id.size(), 2u);
  EXPECT_EQ(result.original_id[0], 18446744073709551615ull);
  EXPECT_EQ(result.original_id[1], 7u);
}

TEST(Snap, WriteReadRoundTrip) {
  EdgeList g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  std::ostringstream out;
  dsg::write_snap(out, g);
  std::istringstream in(out.str());
  auto back = dsg::read_snap(in);
  EXPECT_EQ(back.graph.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(back.graph.edges()[1].weight, 2.0);
}

TEST(Snap, EmptyInputYieldsEmptyGraph) {
  std::istringstream in("# only comments\n");
  auto result = dsg::read_snap(in);
  EXPECT_EQ(result.graph.num_vertices(), 0u);
  EXPECT_EQ(result.graph.num_edges(), 0u);
}

}  // namespace
