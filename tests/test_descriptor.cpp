// Dedicated suite for grb::Descriptor (descriptor.hpp): flag defaults, the
// with_* builder chain, the predefined descriptor constants, and a few
// end-to-end checks that the replace / mask-complement / mask-structure
// flags actually steer the shared write phase.
#include <gtest/gtest.h>

#include "graphblas/graphblas.hpp"

namespace {

using grb::Descriptor;
using grb::Index;

TEST(Descriptor, DefaultsAreAllClear) {
  constexpr Descriptor d{};
  EXPECT_FALSE(d.replace);
  EXPECT_FALSE(d.mask_complement);
  EXPECT_FALSE(d.mask_structure);
  EXPECT_FALSE(d.transpose_in0);
  EXPECT_FALSE(d.transpose_in1);
}

TEST(Descriptor, BuildersSetOneFlagAndPreserveTheRest) {
  constexpr Descriptor d{};
  constexpr auto r = d.with_replace();
  static_assert(r.replace && !r.mask_complement && !r.mask_structure &&
                !r.transpose_in0 && !r.transpose_in1);

  constexpr auto c = d.with_mask_complement();
  static_assert(c.mask_complement && !c.replace);

  constexpr auto s = d.with_mask_structure();
  static_assert(s.mask_structure && !s.replace);

  constexpr auto t0 = d.with_transpose_in0();
  static_assert(t0.transpose_in0 && !t0.transpose_in1);

  constexpr auto t1 = d.with_transpose_in1();
  static_assert(t1.transpose_in1 && !t1.transpose_in0);
}

TEST(Descriptor, BuildersAreNonMutatingAndChainable) {
  const Descriptor base{};
  const auto built =
      base.with_replace().with_mask_complement().with_mask_structure();
  EXPECT_FALSE(base.replace);  // builders copy, never mutate
  EXPECT_TRUE(built.replace);
  EXPECT_TRUE(built.mask_complement);
  EXPECT_TRUE(built.mask_structure);
  // Explicit false clears a previously set flag.
  const auto cleared = built.with_replace(false);
  EXPECT_FALSE(cleared.replace);
  EXPECT_TRUE(cleared.mask_complement);
}

TEST(Descriptor, PredefinedConstantsMatchTheirNames) {
  static_assert(!grb::default_desc.replace &&
                !grb::default_desc.mask_complement &&
                !grb::default_desc.mask_structure);
  static_assert(grb::replace_desc.replace &&
                !grb::replace_desc.mask_complement);
  static_assert(grb::complement_mask_desc.mask_complement &&
                !grb::complement_mask_desc.replace);
  static_assert(grb::structure_mask_desc.mask_structure &&
                !grb::structure_mask_desc.replace);
}

// --- Behavioral checks: the flags must drive the shared write phase. -------

grb::Vector<double> dense_vec(Index n, double base) {
  grb::Vector<double> v(n);
  for (Index i = 0; i < n; ++i) v.set_element(i, base + static_cast<double>(i));
  return v;
}

TEST(DescriptorBehavior, ReplaceModeDropsUnwrittenPositions) {
  constexpr Index n = 8;
  auto w = dense_vec(n, 100.0);  // all 8 positions stored
  grb::Vector<double> u(n);
  u.set_element(2, 2.0);
  u.set_element(5, 5.0);

  // Mask admits only the positions u writes.
  grb::Vector<bool> mask(n);
  mask.set_element(2, true);
  mask.set_element(5, true);

  // Merge mode keeps the 6 masked-off positions of w.
  auto merged = w;
  grb::apply(merged, mask, grb::NoAccumulate{}, grb::Identity<double>{}, u,
             grb::default_desc);
  EXPECT_EQ(merged.nvals(), n);

  // The paper's clear_desc: masked-off positions are deleted.
  grb::apply(w, mask, grb::NoAccumulate{}, grb::Identity<double>{}, u,
             grb::replace_desc);
  EXPECT_EQ(w.nvals(), 2u);
  EXPECT_DOUBLE_EQ(*w.extract_element(2), 2.0);
  EXPECT_DOUBLE_EQ(*w.extract_element(5), 5.0);
}

TEST(DescriptorBehavior, ComplementFlipsWhichPositionsAreWritable) {
  constexpr Index n = 6;
  grb::Vector<double> w(n);
  const auto u = dense_vec(n, 0.0);
  grb::Vector<bool> mask(n);
  mask.set_element(1, true);
  mask.set_element(4, true);

  grb::apply(w, mask, grb::NoAccumulate{}, grb::Identity<double>{}, u,
             grb::complement_mask_desc);
  EXPECT_EQ(w.nvals(), n - 2);
  EXPECT_FALSE(w.extract_element(1).has_value());
  EXPECT_FALSE(w.extract_element(4).has_value());
  EXPECT_DOUBLE_EQ(*w.extract_element(0), 0.0);
}

TEST(DescriptorBehavior, StructuralMaskIgnoresStoredFalse) {
  constexpr Index n = 4;
  const auto u = dense_vec(n, 0.0);
  grb::Vector<bool> mask(n);
  mask.set_element(0, true);
  mask.set_element(2, false);  // stored but falsy

  // Value mask: only index 0 is writable.
  grb::Vector<double> by_value(n);
  grb::apply(by_value, mask, grb::NoAccumulate{}, grb::Identity<double>{}, u,
             grb::default_desc);
  EXPECT_EQ(by_value.nvals(), 1u);

  // Structural mask: presence alone matters, so index 2 joins in.
  grb::Vector<double> by_structure(n);
  grb::apply(by_structure, mask, grb::NoAccumulate{}, grb::Identity<double>{},
             u, grb::structure_mask_desc);
  EXPECT_EQ(by_structure.nvals(), 2u);
  EXPECT_DOUBLE_EQ(*by_structure.extract_element(2), 2.0);
}

TEST(DescriptorBehavior, StructuralComplementExcludesAllStoredPositions) {
  constexpr Index n = 4;
  const auto u = dense_vec(n, 0.0);
  grb::Vector<bool> mask(n);
  mask.set_element(0, true);
  mask.set_element(2, false);

  grb::Vector<double> w(n);
  const grb::Descriptor desc =
      grb::Descriptor{}.with_mask_structure().with_mask_complement();
  grb::apply(w, mask, grb::NoAccumulate{}, grb::Identity<double>{}, u, desc);
  EXPECT_EQ(w.nvals(), 2u);  // only the absent positions 1 and 3
  EXPECT_FALSE(w.extract_element(0).has_value());
  EXPECT_FALSE(w.extract_element(2).has_value());
  EXPECT_TRUE(w.extract_element(1).has_value());
  EXPECT_TRUE(w.extract_element(3).has_value());
}

TEST(DescriptorBehavior, TransposeIn0RoutesThroughMxvOnTheTranspose) {
  // a = [[., 7], [., .]]; a^T row 1 has 7 at column 0.
  grb::Matrix<double> a(2, 2);
  a.set_element(0, 1, 7.0);
  grb::Vector<double> x(2);
  x.set_element(0, 3.0);

  grb::Vector<double> y(2);
  grb::mxv(y, grb::NoMask{}, grb::NoAccumulate{},
           grb::min_plus_semiring<double>(), a, x,
           grb::Descriptor{}.with_transpose_in0());
  EXPECT_FALSE(y.extract_element(0).has_value());
  EXPECT_DOUBLE_EQ(*y.extract_element(1), 10.0);
}

}  // namespace
