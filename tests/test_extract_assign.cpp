// Unit tests for extract / assign — sub-structure gather and scatter.
#include <gtest/gtest.h>

#include <vector>

#include "graphblas/graphblas.hpp"

namespace {

using grb::Index;

TEST(ExtractVector, GathersByIndexList) {
  grb::Vector<double> u(6);
  u.set_element(1, 10.0);
  u.set_element(3, 30.0);
  u.set_element(5, 50.0);
  const std::vector<Index> idx{5, 0, 3};
  grb::Vector<double> w(3);
  grb::extract(w, u, idx);
  EXPECT_DOUBLE_EQ(*w.extract_element(0), 50.0);
  EXPECT_FALSE(w.has_element(1));  // u[0] absent
  EXPECT_DOUBLE_EQ(*w.extract_element(2), 30.0);
}

TEST(ExtractVector, AllIndicesSentinel) {
  grb::Vector<double> u(4);
  u.set_element(2, 2.0);
  const std::vector<Index> all{grb::all_indices};
  grb::Vector<double> w(4);
  grb::extract(w, u, all);
  EXPECT_EQ(w, u);
}

TEST(ExtractVector, DuplicateIndicesAllowed) {
  grb::Vector<double> u(3);
  u.set_element(1, 7.0);
  const std::vector<Index> idx{1, 1, 1};
  grb::Vector<double> w(3);
  grb::extract(w, u, idx);
  EXPECT_EQ(w.nvals(), 3u);
  for (Index i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(*w.extract_element(i), 7.0);
}

TEST(ExtractVector, BadIndexThrows) {
  grb::Vector<double> u(3);
  const std::vector<Index> idx{7};
  grb::Vector<double> w(1);
  EXPECT_THROW(grb::extract(w, u, idx), grb::IndexOutOfBounds);
}

TEST(ExtractMatrix, Submatrix) {
  grb::Matrix<double> a(4, 4);
  for (Index i = 0; i < 4; ++i)
    for (Index j = 0; j < 4; ++j)
      a.set_element(i, j, static_cast<double>(10 * i + j));
  const std::vector<Index> rows{2, 0};
  const std::vector<Index> cols{3, 1};
  grb::Matrix<double> c(2, 2);
  grb::extract(c, a, rows, cols);
  EXPECT_DOUBLE_EQ(*c.extract_element(0, 0), 23.0);
  EXPECT_DOUBLE_EQ(*c.extract_element(0, 1), 21.0);
  EXPECT_DOUBLE_EQ(*c.extract_element(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(*c.extract_element(1, 1), 1.0);
}

TEST(ExtractMatrix, AllRowsSelectedColumns) {
  grb::Matrix<double> a(2, 3);
  a.set_element(0, 0, 1.0);
  a.set_element(1, 2, 5.0);
  const std::vector<Index> all{grb::all_indices};
  const std::vector<Index> cols{2, 0};
  grb::Matrix<double> c(2, 2);
  grb::extract(c, a, all, cols);
  EXPECT_DOUBLE_EQ(*c.extract_element(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(*c.extract_element(0, 1), 1.0);
  EXPECT_EQ(c.nvals(), 2u);
}

TEST(ExtractColumn, IncomingEdgesView) {
  // Vertex-centric "incoming edges of v" = column extraction (Sec. II-B).
  grb::Matrix<double> a(3, 3);
  a.set_element(0, 2, 1.5);
  a.set_element(1, 2, 2.5);
  grb::Vector<double> in_edges(3);
  grb::extract_column(in_edges, grb::NoMask{}, grb::NoAccumulate{}, a, 2);
  EXPECT_EQ(in_edges.nvals(), 2u);
  EXPECT_DOUBLE_EQ(*in_edges.extract_element(0), 1.5);
  EXPECT_DOUBLE_EQ(*in_edges.extract_element(1), 2.5);
}

// --- assign. ----------------------------------------------------------------

TEST(AssignVector, ScatterThroughIndexMap) {
  grb::Vector<double> w(6);
  w.set_element(0, 99.0);
  grb::Vector<double> u(2);
  u.set_element(0, 1.0);
  u.set_element(1, 2.0);
  const std::vector<Index> idx{4, 2};
  grb::assign(w, grb::NoMask{}, grb::NoAccumulate{}, u, idx);
  EXPECT_DOUBLE_EQ(*w.extract_element(4), 1.0);
  EXPECT_DOUBLE_EQ(*w.extract_element(2), 2.0);
  EXPECT_DOUBLE_EQ(*w.extract_element(0), 99.0);  // untouched region kept
}

TEST(AssignVector, EmptyInputPositionsDeleteTargets) {
  // GrB_assign: positions selected by indices but absent in u are deleted.
  grb::Vector<double> w(4);
  w.set_element(1, 11.0);
  w.set_element(2, 22.0);
  grb::Vector<double> u(2);  // entirely empty
  const std::vector<Index> idx{1, 3};
  grb::assign(w, grb::NoMask{}, grb::NoAccumulate{}, u, idx);
  EXPECT_FALSE(w.has_element(1));  // covered and empty -> deleted
  EXPECT_DOUBLE_EQ(*w.extract_element(2), 22.0);
}

TEST(AssignVector, AccumKeepsAndCombines) {
  grb::Vector<double> w(4);
  w.set_element(1, 10.0);
  grb::Vector<double> u(2);
  u.set_element(0, 1.0);
  u.set_element(1, 2.0);
  const std::vector<Index> idx{1, 2};
  grb::assign(w, grb::NoMask{}, grb::Plus<double>{}, u, idx);
  EXPECT_DOUBLE_EQ(*w.extract_element(1), 11.0);
  EXPECT_DOUBLE_EQ(*w.extract_element(2), 2.0);
}

TEST(AssignScalarVector, MaskedMembershipIdiom) {
  // S<tB> = true: mark bucket members in the processed set.
  grb::Vector<bool> s(5);
  s.set_element(0, true);
  grb::Vector<bool> tb(5);
  tb.set_element(2, true);
  tb.set_element(4, true);
  grb::assign_scalar(s, tb, true);
  EXPECT_TRUE(*s.extract_element(0));
  EXPECT_TRUE(*s.extract_element(2));
  EXPECT_TRUE(*s.extract_element(4));
  EXPECT_EQ(s.nvals(), 3u);
}

TEST(AssignScalarVector, StructuralMask) {
  grb::Vector<double> w(4);
  grb::Vector<double> mask(4);
  mask.set_element(1, 0.0);  // present but falsy
  mask.set_element(2, 5.0);
  grb::assign_scalar(w, mask, grb::NoAccumulate{}, 7.0,
                     std::vector<Index>{grb::all_indices},
                     grb::structure_mask_desc);
  EXPECT_EQ(w.nvals(), 2u);  // structural: both positions written
  EXPECT_DOUBLE_EQ(*w.extract_element(1), 7.0);
}

TEST(AssignScalarVector, ExplicitIndexList) {
  grb::Vector<int> w(5);
  grb::assign_scalar(w, grb::NoMask{}, grb::NoAccumulate{}, 3,
                     std::vector<Index>{0, 2, 2, 4});
  EXPECT_EQ(w.nvals(), 3u);  // duplicate collapses
  EXPECT_EQ(*w.extract_element(2), 3);
}

TEST(AssignMatrix, SubmatrixScatter) {
  grb::Matrix<double> c(4, 4);
  c.set_element(0, 0, 99.0);
  grb::Matrix<double> a(2, 2);
  a.set_element(0, 0, 1.0);
  a.set_element(1, 1, 2.0);
  const std::vector<Index> rows{1, 3};
  const std::vector<Index> cols{2, 0};
  grb::assign(c, grb::NoMask{}, grb::NoAccumulate{}, a, rows, cols);
  EXPECT_DOUBLE_EQ(*c.extract_element(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(*c.extract_element(3, 0), 2.0);
  EXPECT_DOUBLE_EQ(*c.extract_element(0, 0), 99.0);
}

TEST(AssignScalarMatrix, RectangularRegion) {
  grb::Matrix<double> c(3, 3);
  grb::assign_scalar(c, grb::NoMask{}, grb::NoAccumulate{}, 5.0,
                     std::vector<Index>{0, 1}, std::vector<Index>{1, 2});
  EXPECT_EQ(c.nvals(), 4u);
  EXPECT_DOUBLE_EQ(*c.extract_element(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(*c.extract_element(1, 2), 5.0);
  EXPECT_FALSE(c.has_element(2, 2));
}

TEST(AssignVector, SizeMismatchThrows) {
  grb::Vector<double> w(4);
  grb::Vector<double> u(3);
  const std::vector<Index> idx{0, 1};  // 2 targets for 3 elements
  EXPECT_THROW(grb::assign(w, grb::NoMask{}, grb::NoAccumulate{}, u, idx),
               grb::DimensionMismatch);
}

}  // namespace
