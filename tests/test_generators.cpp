// Unit tests for the synthetic graph generators: structural invariants per
// family plus determinism.
#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hpp"
#include "graph/stats.hpp"

namespace {

using dsg::EdgeList;
using grb::Index;

TEST(Rmat, VertexCountIsPowerOfTwoAndEdgesNearBudget) {
  auto g = dsg::generate_rmat({.scale = 8, .edge_factor = 4, .seed = 1});
  EXPECT_EQ(g.num_vertices(), 256u);
  // Self-loop candidates are skipped, so <= budget.
  EXPECT_LE(g.num_edges(), static_cast<std::size_t>(4 * 256));
  EXPECT_GT(g.num_edges(), static_cast<std::size_t>(3 * 256));
}

TEST(Rmat, DeterministicPerSeed) {
  auto a = dsg::generate_rmat({.scale = 6, .edge_factor = 4, .seed = 9});
  auto b = dsg::generate_rmat({.scale = 6, .edge_factor = 4, .seed = 9});
  auto c = dsg::generate_rmat({.scale = 6, .edge_factor = 4, .seed = 10});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Rmat, SkewedDegreesVsErdos) {
  // RMAT should produce a higher max degree than a same-size uniform graph.
  auto rmat = dsg::generate_rmat({.scale = 10, .edge_factor = 8, .seed = 3});
  auto er = dsg::generate_erdos_renyi(1024, rmat.num_edges(), 3);
  auto dr = dsg::out_degrees(rmat);
  auto de = dsg::out_degrees(er);
  EXPECT_GT(*std::max_element(dr.begin(), dr.end()),
            *std::max_element(de.begin(), de.end()));
}

TEST(Rmat, RejectsBadProbabilities) {
  EXPECT_THROW(dsg::generate_rmat({.scale = 4, .a = 0.9, .b = 0.3, .c = 0.3}),
               grb::InvalidValue);
}

TEST(ErdosRenyi, ExactEdgeCountNoDupsNoLoops) {
  auto g = dsg::generate_erdos_renyi(100, 500, 7);
  EXPECT_EQ(g.num_vertices(), 100u);
  EXPECT_EQ(g.num_edges(), 500u);
  std::set<std::pair<Index, Index>> seen;
  for (const auto& e : g.edges()) {
    EXPECT_NE(e.src, e.dst);
    EXPECT_TRUE(seen.insert({e.src, e.dst}).second) << "duplicate edge";
  }
}

TEST(ErdosRenyi, RejectsImpossibleEdgeCount) {
  EXPECT_THROW(dsg::generate_erdos_renyi(3, 7, 1), grb::InvalidValue);
}

TEST(Grid2d, StructureOfSmallGrid) {
  auto g = dsg::generate_grid2d(3, 2);
  EXPECT_EQ(g.num_vertices(), 6u);
  // 3x2 grid: horizontal edges 2 per row * 2 rows = 4; vertical 3.
  // Each stored in both directions: 14 directed edges.
  EXPECT_EQ(g.num_edges(), 14u);
  EXPECT_TRUE(g.is_symmetric());
}

TEST(Grid2d, DiagonalsAddEdges) {
  auto plain = dsg::generate_grid2d(4, 4, false);
  auto diag = dsg::generate_grid2d(4, 4, true);
  EXPECT_EQ(diag.num_edges(), plain.num_edges() + 2u * 9u);
}

TEST(Grid2d, DiameterScalesWithSide) {
  auto g = dsg::generate_grid2d(16, 16);
  auto levels = dsg::bfs_levels(g, 0);
  Index ecc = 0;
  for (auto l : levels) ecc = std::max(ecc, l);
  EXPECT_EQ(ecc, 30u);  // Manhattan distance corner-to-corner
}

TEST(SmallWorld, DegreeAndSymmetry) {
  auto g = dsg::generate_small_world(50, 3, 0.0, 5);
  // beta=0: pure ring lattice, every vertex has exactly 2k undirected
  // neighbours -> 2k out-edges after the paired insertion.
  auto deg = dsg::out_degrees(g);
  for (auto d : deg) EXPECT_EQ(d, 6u);
  EXPECT_TRUE(g.is_symmetric());
}

TEST(SmallWorld, RewiringChangesStructure) {
  auto a = dsg::generate_small_world(100, 4, 0.0, 5);
  auto b = dsg::generate_small_world(100, 4, 0.5, 5);
  EXPECT_NE(a, b);
}

TEST(SmallWorld, ValidatesParameters) {
  EXPECT_THROW(dsg::generate_small_world(10, 5, 0.1), grb::InvalidValue);
  EXPECT_THROW(dsg::generate_small_world(10, 2, 1.5), grb::InvalidValue);
  EXPECT_THROW(dsg::generate_small_world(2, 1, 0.1), grb::InvalidValue);
}

TEST(Path, LinearChain) {
  auto g = dsg::generate_path(5);
  EXPECT_EQ(g.num_edges(), 8u);  // 4 undirected = 8 directed
  auto levels = dsg::bfs_levels(g, 0);
  EXPECT_EQ(levels[4], 4u);
}

TEST(Cycle, ClosesTheLoop) {
  auto g = dsg::generate_cycle(6);
  EXPECT_EQ(g.num_edges(), 12u);
  auto levels = dsg::bfs_levels(g, 0);
  EXPECT_EQ(levels[3], 3u);  // halfway around
  EXPECT_EQ(levels[5], 1u);  // backwards around the cycle
}

TEST(Star, HubAndSpokes) {
  auto g = dsg::generate_star(10);
  auto deg = dsg::out_degrees(g);
  EXPECT_EQ(deg[0], 9u);
  for (Index v = 1; v < 10; ++v) EXPECT_EQ(deg[v], 1u);
}

TEST(Complete, AllPairs) {
  auto g = dsg::generate_complete(5);
  EXPECT_EQ(g.num_edges(), 20u);  // n*(n-1)
  auto levels = dsg::bfs_levels(g, 2);
  for (Index v = 0; v < 5; ++v) {
    EXPECT_EQ(levels[v], v == 2 ? 0u : 1u);
  }
}

TEST(BinaryTree, ParentChildStructure) {
  auto g = dsg::generate_binary_tree(7);
  EXPECT_EQ(g.num_edges(), 12u);  // 6 undirected edges
  auto levels = dsg::bfs_levels(g, 0);
  EXPECT_EQ(levels[1], 1u);
  EXPECT_EQ(levels[6], 2u);
}

TEST(ConnectedRandom, AlwaysOneComponent) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto g = dsg::generate_connected_random(80, 40, seed);
    auto comps = dsg::component_sizes(g);
    ASSERT_EQ(comps.size(), 1u) << "seed " << seed;
    EXPECT_EQ(comps[0], 80u);
  }
}

TEST(Generators, InvalidSizesThrow) {
  EXPECT_THROW(dsg::generate_grid2d(0, 5), grb::InvalidValue);
  EXPECT_THROW(dsg::generate_cycle(2), grb::InvalidValue);
  EXPECT_THROW(dsg::generate_star(1), grb::InvalidValue);
}

}  // namespace
