// test_fuzz_regressions.cpp — every checked-in fuzz corpus entry replayed
// as a deterministic unit test.
//
// The libFuzzer harnesses and this suite share the exact same entry
// points (fuzz/fuzz_targets.hpp, built into dsg_fuzz_entry), so a corpus
// file that once crashed a harness is pinned here forever: it runs on
// every ctest invocation, with whatever sanitizer/audit configuration the
// build carries, no clang or libFuzzer required.  When a fuzz run finds a
// new crasher, minimize it and drop it into tests/fuzz_corpus/<harness>/
// — nothing else to update, the directory scan below picks it up.
//
// The suite also pins the structure-aware mutator: determinism in (input,
// seed), size bounds, and a mini-fuzz loop pushing a few hundred mutants
// of the golden plan through the loader (cheap smoke for the "parse or
// named throw" contract even in plain builds).
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz_targets.hpp"

namespace {

namespace fs = std::filesystem;

std::vector<std::uint8_t> read_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

/// Corpus files for one harness, sorted for stable test output.
std::vector<fs::path> corpus_entries(const std::string& harness) {
  const fs::path dir = fs::path(DSG_FUZZ_CORPUS_DIR) / harness;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  EXPECT_FALSE(files.empty()) << "empty corpus: " << dir;
  return files;
}

using Target = int (*)(const std::uint8_t*, std::size_t);

void replay_corpus(const std::string& harness, Target target) {
  for (const fs::path& path : corpus_entries(harness)) {
    const std::vector<std::uint8_t> bytes = read_bytes(path);
    SCOPED_TRACE(path.filename().string());
    EXPECT_EQ(0, target(bytes.data(), bytes.size()));
  }
}

TEST(FuzzRegressions, PlanLoadCorpus) {
  replay_corpus("plan_load", dsg::fuzz::plan_load_target);
}

TEST(FuzzRegressions, MatrixMarketCorpus) {
  replay_corpus("matrix_market", dsg::fuzz::matrix_market_target);
}

TEST(FuzzRegressions, SnapCorpus) {
  replay_corpus("snap", dsg::fuzz::snap_target);
}

TEST(FuzzRegressions, CapiServerCorpus) {
  replay_corpus("capi_server", dsg::fuzz::capi_server_target);
}

// --- The structure-aware plan mutator ----------------------------------

std::vector<std::uint8_t> golden_plan() {
  return read_bytes(fs::path(DSG_TEST_DATA_DIR) / "diamond.plan");
}

TEST(PlanMutator, DeterministicInInputAndSeed) {
  const std::vector<std::uint8_t> base = golden_plan();
  for (unsigned seed : {0U, 1U, 42U, 0xdeadbeefU}) {
    std::vector<std::uint8_t> a(base), b(base);
    a.resize(base.size() + 256);
    b.resize(base.size() + 256);
    const std::size_t na =
        dsg::fuzz::plan_mutate(a.data(), base.size(), a.size(), seed);
    const std::size_t nb =
        dsg::fuzz::plan_mutate(b.data(), base.size(), b.size(), seed);
    ASSERT_EQ(na, nb) << "seed " << seed;
    EXPECT_TRUE(std::equal(a.begin(), a.begin() + static_cast<long>(na),
                           b.begin()))
        << "seed " << seed;
  }
}

TEST(PlanMutator, RespectsMaxSize) {
  const std::vector<std::uint8_t> base = golden_plan();
  for (unsigned seed = 0; seed < 200; ++seed) {
    std::vector<std::uint8_t> buf(base);
    buf.resize(base.size() + 64);
    const std::size_t n =
        dsg::fuzz::plan_mutate(buf.data(), base.size(), buf.size(), seed);
    EXPECT_LE(n, buf.size()) << "seed " << seed;
  }
}

TEST(PlanMutator, MutantsHonorParseOrThrowContract) {
  // A few hundred single-step mutants of the golden image, each pushed
  // through the full loader: every one must either load or throw the
  // named InvalidValue (the target returns 0 in both cases and lets any
  // other exception escape, failing the test).
  const std::vector<std::uint8_t> base = golden_plan();
  std::size_t changed = 0;
  for (unsigned seed = 0; seed < 500; ++seed) {
    std::vector<std::uint8_t> buf(base);
    buf.resize(base.size() + 128);
    const std::size_t n =
        dsg::fuzz::plan_mutate(buf.data(), base.size(), buf.size(), seed);
    if (n != base.size() ||
        !std::equal(base.begin(), base.end(), buf.begin())) {
      ++changed;
    }
    ASSERT_EQ(0, dsg::fuzz::plan_load_target(buf.data(), n))
        << "seed " << seed;
  }
  // The mutator must actually mutate: identical output for most seeds
  // would make the fuzzer spin.
  EXPECT_GT(changed, 400U);
}

TEST(PlanMutator, GrowsTinyInputsTowardHeader) {
  std::vector<std::uint8_t> buf(8, 0xab);
  buf.resize(512);
  const std::size_t n = dsg::fuzz::plan_mutate(buf.data(), 8, 512, 7);
  EXPECT_GT(n, 8U);
  EXPECT_LE(n, 512U);
}

}  // namespace
