// test_solver.cpp — the plan/execute SSSP API: GraphPlan, the algorithm
// registry, SsspSolver solve/solve_batch/solve_with_paths, and the v2
// DsgSolver C handles.
//
// The load-bearing guarantees pinned here:
//   1. every registered algorithm, run through the solver, produces results
//      identical to its legacy free-function entry point;
//   2. solve_batch is element-identical to a per-source solve() loop,
//      including repeated and duplicate sources (warm-workspace reuse must
//      not leak state between queries);
//   3. the unreachable-vertex convention (exactly +inf, never absent) holds
//      across every algorithm on a disconnected graph;
//   4. plan validation fails construction, not solve.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "capi/graphblas.h"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "sssp/paths.hpp"
#include "sssp/solver.hpp"
#include "test_support.hpp"

namespace dsg::test {
namespace {

using sssp::Algorithm;
using sssp::SolverOptions;
using sssp::SsspSolver;

grb::Matrix<double> weighted_test_graph(Index n = 400, std::size_t extra = 1200,
                                        unsigned seed = 11) {
  auto graph = generate_connected_random(n, extra, seed);
  assign_uniform_weights(graph, 0.1, 5.0, seed + 1);
  graph.normalize();
  return graph.to_matrix();
}

// ---------------------------------------------------------------------------
// Registry basics.
// ---------------------------------------------------------------------------

TEST(SolverRegistry, CoversAllAlgorithmsWithStableNames) {
  const auto registry = sssp::algorithm_registry();
  ASSERT_EQ(registry.size(), static_cast<std::size_t>(sssp::kNumAlgorithms));
  const char* expected[] = {"buckets",  "graphblas", "graphblas_select",
                            "capi",     "fused",     "openmp",
                            "bellman_ford", "dijkstra",
                            "rho_stepping", "delta_stepping_async"};
  for (std::size_t k = 0; k < registry.size(); ++k) {
    EXPECT_EQ(static_cast<std::size_t>(registry[k].id), k);
    EXPECT_STREQ(registry[k].name, expected[k]);
    EXPECT_EQ(sssp::find_algorithm(registry[k].name), &registry[k]);
    EXPECT_EQ(&sssp::algorithm_info(registry[k].id), &registry[k]);
  }
  EXPECT_EQ(sssp::find_algorithm("no_such_algorithm"), nullptr);
}

// ---------------------------------------------------------------------------
// Solver results == legacy entry points, for every algorithm.
// ---------------------------------------------------------------------------

TEST(SsspSolver, MatchesLegacyEntryPointsOnAllAlgorithms) {
  const auto a = weighted_test_graph();
  const double delta = 1.0;
  const Index source = 3;

  // Legacy references, one per registry name (the solver must reproduce
  // these exactly).
  std::vector<std::pair<std::string, std::vector<double>>> legacy;
  // One slot per registry row, reserved up front: GCC 12's -O3 inliner
  // otherwise trips -Warray-bounds false positives inside the grown
  // reallocation path of this pair-of-string-and-vector element type.
  legacy.reserve(static_cast<std::size_t>(sssp::kNumAlgorithms));
  DeltaSteppingOptions opt;
  opt.delta = delta;
  OpenMpOptions omp_opt;
  omp_opt.delta = delta;
  legacy.emplace_back("buckets", delta_stepping_buckets(a, source, opt).dist);
  legacy.emplace_back("graphblas",
                      delta_stepping_graphblas(a, source, opt).dist);
  legacy.emplace_back("graphblas_select",
                      delta_stepping_graphblas_select(a, source, opt).dist);
  legacy.emplace_back("capi", delta_stepping_capi(a, source, opt).dist);
  legacy.emplace_back("fused", delta_stepping_fused(a, source, opt).dist);
  legacy.emplace_back("openmp", delta_stepping_openmp(a, source, omp_opt).dist);
  legacy.emplace_back("bellman_ford", bellman_ford(a, source).dist);
  legacy.emplace_back("dijkstra", dijkstra(a, source).dist);
  // The async engines are value-deterministic (bit-identical distances for
  // any schedule), so the exact-equality check below holds for them too.
  AsyncSteppingOptions async_opt;
  async_opt.delta = delta;
  legacy.emplace_back("rho_stepping", rho_stepping(a, source, async_opt).dist);
  legacy.emplace_back("delta_stepping_async",
                      delta_stepping_async(a, source, async_opt).dist);

  for (const auto& [name, want] : legacy) {
    SCOPED_TRACE("algorithm=" + name);
    const auto* info = sssp::find_algorithm(name);
    ASSERT_NE(info, nullptr);
    SolverOptions options;
    options.algorithm = info->id;
    options.delta = delta;
    SsspSolver solver(a, options);
    const auto got = solver.solve(source);
    ASSERT_EQ(got.dist.size(), want.size());
    for (std::size_t v = 0; v < want.size(); ++v) {
      EXPECT_EQ(got.dist[v], want[v]) << "vertex " << v;
    }
  }
}

// ---------------------------------------------------------------------------
// solve_batch: element-identical to per-source solve loops, duplicates
// included, across every registered algorithm.
// ---------------------------------------------------------------------------

TEST(SsspSolver, BatchIdenticalToPerSourceLoopAllAlgorithms) {
  const auto a = weighted_test_graph(250, 700, 23);
  // Repeats and duplicates on purpose: a workspace leaking state between
  // queries would show up as a divergence on the second occurrence.
  const std::vector<Index> sources = {0, 17, 17, 3, 249, 0, 101, 17};

  for (const auto& info : sssp::algorithm_registry()) {
    SCOPED_TRACE(std::string("algorithm=") + info.name);
    SolverOptions options;
    options.algorithm = info.id;
    options.delta = 0.8;
    SsspSolver solver(a, options);

    const auto batched = solver.solve_batch(sources);
    ASSERT_EQ(batched.size(), sources.size());
    for (std::size_t k = 0; k < sources.size(); ++k) {
      const auto individual = solver.solve(sources[k]);
      ASSERT_EQ(batched[k].dist.size(), individual.dist.size());
      for (std::size_t v = 0; v < individual.dist.size(); ++v) {
        EXPECT_EQ(batched[k].dist[v], individual.dist[v])
            << "source " << sources[k] << " vertex " << v;
      }
    }
  }
}

TEST(SsspSolver, BatchValidatesSourcesUpFront) {
  SsspSolver solver(two_islands_graph().to_matrix());
  const std::vector<Index> sources = {0, 99};  // 99 out of range (n=4)
  EXPECT_THROW(solver.solve_batch(sources), grb::IndexOutOfBounds);
  EXPECT_THROW(solver.solve(99), grb::IndexOutOfBounds);
}

// ---------------------------------------------------------------------------
// Unreachable-vertex convention: exactly +inf everywhere, all algorithms
// (the disconnected-graph regression of the consistency audit).
// ---------------------------------------------------------------------------

TEST(SsspSolver, DisconnectedGraphReportsExactInfEverywhere) {
  const auto a = two_islands_graph().to_matrix();
  const auto want = two_islands_distances_from_0();

  for (const auto& info : sssp::algorithm_registry()) {
    SCOPED_TRACE(std::string("algorithm=") + info.name);
    SolverOptions options;
    options.algorithm = info.id;
    SsspSolver solver(a, options);
    const auto result = solver.solve(0);

    ASSERT_EQ(result.dist.size(), want.size());  // never absent entries
    for (std::size_t v = 0; v < want.size(); ++v) {
      if (want[v] == kInfDist) {
        // Exactly +inf: not NaN, not a large finite sentinel.
        EXPECT_EQ(result.dist[v], kInfDist) << "vertex " << v;
        EXPECT_FALSE(std::isnan(result.dist[v]));
      } else {
        EXPECT_NEAR(result.dist[v], want[v], 1e-12) << "vertex " << v;
      }
    }
    // And validate_sssp accepts exactly this convention.
    const auto report = validate_sssp(a, 0, result.dist);
    EXPECT_TRUE(report.ok) << report.message;
  }
}

TEST(ValidateSssp, RejectsWrongUnreachableConventions) {
  const auto a = two_islands_graph().to_matrix();
  // NaN where unreachable: rejected.
  std::vector<double> with_nan = {0.0, 1.0, std::nan(""), std::nan("")};
  EXPECT_FALSE(validate_sssp(a, 0, with_nan).ok);
  // Finite sentinel where unreachable: rejected.
  std::vector<double> with_sentinel = {0.0, 1.0, 1e300, 1e300};
  EXPECT_FALSE(validate_sssp(a, 0, with_sentinel).ok);
  // +inf where reachable: rejected.
  std::vector<double> inf_reachable = {0.0, kInfDist, kInfDist, kInfDist};
  EXPECT_FALSE(validate_sssp(a, 0, inf_reachable).ok);
  // The one true convention: accepted.
  EXPECT_TRUE(validate_sssp(a, 0, two_islands_distances_from_0()).ok);
}

// ---------------------------------------------------------------------------
// Plan behaviour: validation at construction, auto-delta, setup accounting.
// ---------------------------------------------------------------------------

TEST(GraphPlan, ValidatesAtConstructionNotSolve) {
  grb::Matrix<double> negative(3, 3);
  negative.set_element(0, 1, -2.0);
  EXPECT_THROW(SsspSolver{negative}, grb::InvalidValue);

  grb::Matrix<double> rect(3, 4);
  EXPECT_THROW(SsspSolver{rect}, grb::DimensionMismatch);

  grb::Matrix<double> empty(0, 0);
  EXPECT_THROW(SsspSolver{empty}, grb::InvalidValue);
}

TEST(GraphPlan, AutoDeltaFollowsDegreeStats) {
  const auto a = weighted_test_graph(300, 900, 5);
  SsspSolver solver(a);  // delta = kAutoDelta
  const auto& stats = solver.plan().stats();
  EXPECT_TRUE(solver.plan().delta_was_auto());
  EXPECT_GT(solver.delta(), 0.0);
  const double expected = std::max(
      stats.max_weight / std::max(1.0, stats.avg_out_degree),
      stats.min_positive_weight);
  EXPECT_DOUBLE_EQ(solver.delta(), expected);

  // Explicit delta wins.
  SolverOptions options;
  options.delta = 2.5;
  SsspSolver fixed(a, options);
  EXPECT_FALSE(fixed.plan().delta_was_auto());
  EXPECT_DOUBLE_EQ(fixed.delta(), 2.5);

  // Auto-delta answers are still correct.
  const auto result = solver.solve(0);
  const auto report = validate_sssp(a, 0, result.dist);
  EXPECT_TRUE(report.ok) << report.message;
}

TEST(GraphPlan, SetupPaidOncePerPlanNotPerSolve) {
  const auto a = weighted_test_graph(500, 2000, 7);
  SsspSolver solver(a);
  const double setup_after_build = solver.plan().setup_seconds();
  EXPECT_GT(setup_after_build, 0.0);
  for (int k = 0; k < 3; ++k) {
    const auto r = solver.solve(0);
    // The per-solve stats never re-report setup: it is amortized.
    EXPECT_EQ(r.stats.setup_seconds, 0.0);
  }
  EXPECT_EQ(solver.plan().setup_seconds(), setup_after_build);
}

// ---------------------------------------------------------------------------
// solve_with_paths.
// ---------------------------------------------------------------------------

TEST(SsspSolver, SolveWithPathsRecoversTree) {
  const auto a = diamond_graph().to_matrix();
  SsspSolver solver(a);
  const auto result = solver.solve_with_paths(0);
  expect_distances(result.dist, diamond_distances_from_0(), "paths dist");
  ASSERT_EQ(result.parent.size(), result.dist.size());
  EXPECT_EQ(result.parent[0], kNoParent);  // source
  // Every non-source reachable vertex has a tight parent edge.
  for (Index v = 1; v < result.dist.size(); ++v) {
    const Index u = result.parent[v];
    ASSERT_NE(u, kNoParent) << "vertex " << v;
    const auto w = a.extract_element(u, v);
    ASSERT_TRUE(w.has_value());
    EXPECT_NEAR(result.dist[u] + *w, result.dist[v], 1e-12);
  }
}

// ---------------------------------------------------------------------------
// v2 C API handles.
// ---------------------------------------------------------------------------

class DsgSolverCapi : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto m = diamond_graph().to_matrix();
    ASSERT_EQ(GrB_Matrix_new(&a_, m.nrows(), m.ncols()), GrB_SUCCESS);
    m.for_each([&](Index r, Index c, const double& w) {
      GrB_Matrix_setElement_FP64(a_, w, r, c);
    });
  }
  void TearDown() override { GrB_Matrix_free(&a_); }
  GrB_Matrix a_ = nullptr;
};

TEST_F(DsgSolverCapi, SolveAndBatchMatchReference) {
  DsgSolver solver = nullptr;
  ASSERT_EQ(DsgSolver_new(&solver, a_, DSG_SSSP_FUSED, 1.0), GrB_SUCCESS);

  GrB_Index n = 0;
  ASSERT_EQ(DsgSolver_nrows(&n, solver), GrB_SUCCESS);
  ASSERT_EQ(n, 5u);
  double delta = 0.0;
  ASSERT_EQ(DsgSolver_delta(&delta, solver), GrB_SUCCESS);
  EXPECT_DOUBLE_EQ(delta, 1.0);
  const char* name = nullptr;
  ASSERT_EQ(DsgSolver_algorithm_name(&name, solver), GrB_SUCCESS);
  EXPECT_STREQ(name, "fused");

  const auto want = diamond_distances_from_0();
  std::vector<double> dist(n, -1.0);
  ASSERT_EQ(DsgSolver_solve(solver, 0, dist.data()), GrB_SUCCESS);
  for (std::size_t v = 0; v < want.size(); ++v) {
    EXPECT_NEAR(dist[v], want[v], 1e-12) << "vertex " << v;
  }

  // Batch (with a duplicate source) equals per-source solves.
  const GrB_Index sources[] = {0, 2, 0};
  std::vector<double> batch(3 * n, -1.0);
  ASSERT_EQ(DsgSolver_solve_batch(solver, sources, 3, batch.data()),
            GrB_SUCCESS);
  for (std::size_t k = 0; k < 3; ++k) {
    std::vector<double> single(n);
    ASSERT_EQ(DsgSolver_solve(solver, sources[k], single.data()),
              GrB_SUCCESS);
    for (std::size_t v = 0; v < n; ++v) {
      EXPECT_EQ(batch[k * n + v], single[v]) << "query " << k;
    }
  }

  ASSERT_EQ(DsgSolver_free(&solver), GrB_SUCCESS);
  EXPECT_EQ(solver, nullptr);
}

TEST_F(DsgSolverCapi, AutoDeltaSentinel) {
  DsgSolver solver = nullptr;
  ASSERT_EQ(DsgSolver_new(&solver, a_, DSG_SSSP_FUSED, DSG_SSSP_DELTA_AUTO),
            GrB_SUCCESS);
  double delta = 0.0;
  ASSERT_EQ(DsgSolver_delta(&delta, solver), GrB_SUCCESS);
  EXPECT_GT(delta, 0.0);
  DsgSolver_free(&solver);
}

TEST_F(DsgSolverCapi, ErrorCodesNotExceptions) {
  DsgSolver solver = nullptr;
  EXPECT_EQ(DsgSolver_new(nullptr, a_, DSG_SSSP_FUSED, 1.0),
            GrB_NULL_POINTER);
  EXPECT_EQ(DsgSolver_new(&solver, nullptr, DSG_SSSP_FUSED, 1.0),
            GrB_NULL_POINTER);
  EXPECT_EQ(DsgSolver_new(&solver, a_, static_cast<DsgSsspAlgorithm>(99), 1.0),
            GrB_INVALID_VALUE);

  // Non-square graph: error code at plan time, no exception escapes.
  GrB_Matrix rect = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&rect, 2, 3), GrB_SUCCESS);
  EXPECT_EQ(DsgSolver_new(&solver, rect, DSG_SSSP_FUSED, 1.0),
            GrB_DIMENSION_MISMATCH);
  GrB_Matrix_free(&rect);

  // Negative weight: GrB_INVALID_VALUE.
  GrB_Matrix neg = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&neg, 2, 2), GrB_SUCCESS);
  GrB_Matrix_setElement_FP64(neg, -1.0, 0, 1);
  EXPECT_EQ(DsgSolver_new(&solver, neg, DSG_SSSP_FUSED, 1.0),
            GrB_INVALID_VALUE);
  GrB_Matrix_free(&neg);

  ASSERT_EQ(DsgSolver_new(&solver, a_, DSG_SSSP_FUSED, 1.0), GrB_SUCCESS);
  double dist[5];
  EXPECT_EQ(DsgSolver_solve(solver, 77, dist), GrB_INVALID_INDEX);
  EXPECT_EQ(DsgSolver_solve(solver, 0, nullptr), GrB_NULL_POINTER);
  const GrB_Index bad_sources[] = {0, 77};
  double batch[10];
  EXPECT_EQ(DsgSolver_solve_batch(solver, bad_sources, 2, batch),
            GrB_INVALID_INDEX);
  DsgSolver_free(&solver);

  // Snapshot semantics: mutating the matrix after planning is harmless.
  ASSERT_EQ(DsgSolver_new(&solver, a_, DSG_SSSP_DIJKSTRA, 1.0), GrB_SUCCESS);
  GrB_Matrix_clear(a_);
  ASSERT_EQ(DsgSolver_solve(solver, 0, dist), GrB_SUCCESS);
  const auto want = diamond_distances_from_0();
  for (std::size_t v = 0; v < want.size(); ++v) {
    EXPECT_NEAR(dist[v], want[v], 1e-12);
  }
  DsgSolver_free(&solver);
}

}  // namespace
}  // namespace dsg::test
