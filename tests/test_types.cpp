// Unit tests for graphblas/types.hpp: infinity model, saturating add,
// error taxonomy, storage mapping.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "graphblas/types.hpp"

namespace {

TEST(InfinityValue, FloatingTypesUseIeeeInfinity) {
  EXPECT_EQ(grb::infinity_value<double>(),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(grb::infinity_value<float>(),
            std::numeric_limits<float>::infinity());
}

TEST(InfinityValue, IntegralTypesSaturateAtMax) {
  EXPECT_EQ(grb::infinity_value<std::int32_t>(),
            std::numeric_limits<std::int32_t>::max());
  EXPECT_EQ(grb::infinity_value<std::uint64_t>(),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(SaturatingAdd, FloatingBehavesAsPlainPlus) {
  EXPECT_DOUBLE_EQ(grb::saturating_add(1.5, 2.5), 4.0);
  const double inf = grb::infinity_value<double>();
  EXPECT_EQ(grb::saturating_add(inf, 3.0), inf);
  EXPECT_EQ(grb::saturating_add(3.0, inf), inf);
}

TEST(SaturatingAdd, IntegralInfinityAbsorbs) {
  const auto inf = grb::infinity_value<std::int32_t>();
  EXPECT_EQ(grb::saturating_add(inf, 5), inf);
  EXPECT_EQ(grb::saturating_add(5, inf), inf);
  EXPECT_EQ(grb::saturating_add(inf, inf), inf);
}

TEST(SaturatingAdd, IntegralNearMaxClampsInsteadOfWrapping) {
  const auto big = std::numeric_limits<std::int32_t>::max() - 1;
  EXPECT_EQ(grb::saturating_add(big, 100),
            std::numeric_limits<std::int32_t>::max());
}

TEST(SaturatingAdd, UnsignedClamps) {
  const auto big = std::numeric_limits<std::uint32_t>::max() - 2;
  EXPECT_EQ(grb::saturating_add<std::uint32_t>(big, 100),
            std::numeric_limits<std::uint32_t>::max());
  EXPECT_EQ(grb::saturating_add<std::uint32_t>(3, 4), 7u);
}

TEST(SaturatingAdd, SmallIntegersAddNormally) {
  EXPECT_EQ(grb::saturating_add(3, 4), 7);
  EXPECT_EQ(grb::saturating_add(-3, 4), 1);
}

TEST(StorageOf, BoolMapsToUnsignedChar) {
  static_assert(std::is_same_v<grb::storage_of_t<bool>, unsigned char>);
  static_assert(std::is_same_v<grb::storage_of_t<double>, double>);
  static_assert(std::is_same_v<grb::storage_of_t<std::int64_t>, std::int64_t>);
}

TEST(Errors, HierarchyRootsAtError) {
  EXPECT_THROW(throw grb::DimensionMismatch("x"), grb::Error);
  EXPECT_THROW(throw grb::IndexOutOfBounds("x"), grb::Error);
  EXPECT_THROW(throw grb::NoValue("x"), grb::Error);
  EXPECT_THROW(throw grb::InvalidValue("x"), grb::Error);
  EXPECT_THROW(throw grb::AliasError("x"), grb::Error);
}

TEST(Errors, MessagesCarryContext) {
  try {
    grb::detail::check_size_match(3, 5, "testsite");
    FAIL() << "expected DimensionMismatch";
  } catch (const grb::DimensionMismatch& e) {
    EXPECT_NE(std::string(e.what()).find("testsite"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("5"), std::string::npos);
  }
}

TEST(Errors, CheckIndexBoundary) {
  EXPECT_NO_THROW(grb::detail::check_index(4, 5, "site"));
  EXPECT_THROW(grb::detail::check_index(5, 5, "site"), grb::IndexOutOfBounds);
}

}  // namespace
