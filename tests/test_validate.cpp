// Unit tests for the SSSP validators — they must catch every class of
// corruption we can inject.
#include <gtest/gtest.h>

#include "graph/edge_list.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/validate.hpp"

namespace {

using dsg::EdgeList;
using dsg::kInfDist;
using grb::Index;

grb::Matrix<double> triangle() {
  EdgeList g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(0, 2, 5.0);
  // vertex 3 disconnected
  return g.to_matrix();
}

std::vector<double> good_dist() { return {0.0, 1.0, 3.0, kInfDist}; }

TEST(ValidateSssp, AcceptsCorrectSolution) {
  auto report = dsg::validate_sssp(triangle(), 0, good_dist());
  EXPECT_TRUE(report.ok) << report.message;
  EXPECT_TRUE(report.message.empty());
}

TEST(ValidateSssp, RejectsWrongSize) {
  std::vector<double> d{0.0, 1.0};
  EXPECT_FALSE(dsg::validate_sssp(triangle(), 0, d).ok);
}

TEST(ValidateSssp, RejectsNonZeroSource) {
  auto d = good_dist();
  d[0] = 0.5;
  auto report = dsg::validate_sssp(triangle(), 0, d);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.message.find("source"), std::string::npos);
}

TEST(ValidateSssp, RejectsOverestimate) {
  auto d = good_dist();
  d[2] = 4.0;  // worse than 1+2: triangle inequality violated... but also
               // no tight predecessor — either failure is acceptable.
  EXPECT_FALSE(dsg::validate_sssp(triangle(), 0, d).ok);
}

TEST(ValidateSssp, RejectsUnderestimate) {
  auto d = good_dist();
  d[2] = 0.5;  // impossible: no tight predecessor (and edges relax fine)
  auto report = dsg::validate_sssp(triangle(), 0, d);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.message.find("predecessor"), std::string::npos);
}

TEST(ValidateSssp, RejectsInfForReachable) {
  auto d = good_dist();
  d[2] = kInfDist;
  auto report = dsg::validate_sssp(triangle(), 0, d);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.message.find("reachable"), std::string::npos);
}

TEST(ValidateSssp, RejectsFiniteForUnreachable) {
  auto d = good_dist();
  d[3] = 7.0;
  auto report = dsg::validate_sssp(triangle(), 0, d);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.message.find("unreachable"), std::string::npos);
}

TEST(ValidateSssp, ToleranceAbsorbsRounding) {
  auto d = good_dist();
  d[2] = 3.0 + 1e-12;
  EXPECT_TRUE(dsg::validate_sssp(triangle(), 0, d, 1e-9).ok);
  EXPECT_FALSE(dsg::validate_sssp(triangle(), 0, d, 1e-15).ok);
}

TEST(ValidateSssp, EndToEndAgainstDijkstra) {
  auto a = triangle();
  auto r = dsg::dijkstra(a, 0);
  EXPECT_TRUE(dsg::validate_sssp(a, 0, r.dist).ok);
}

// --- compare_distances. -------------------------------------------------------

TEST(CompareDistances, AcceptsEqual) {
  EXPECT_TRUE(dsg::compare_distances({1.0, kInfDist}, {1.0, kInfDist}).ok);
}

TEST(CompareDistances, AcceptsWithinTolerance) {
  EXPECT_TRUE(dsg::compare_distances({1.0}, {1.0 + 1e-12}, 1e-9).ok);
}

TEST(CompareDistances, RejectsBeyondTolerance) {
  auto r = dsg::compare_distances({1.0}, {1.1}, 1e-9);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("dist[0]"), std::string::npos);
}

TEST(CompareDistances, RejectsInfMismatchBothWays) {
  EXPECT_FALSE(dsg::compare_distances({kInfDist}, {5.0}).ok);
  EXPECT_FALSE(dsg::compare_distances({5.0}, {kInfDist}).ok);
}

TEST(CompareDistances, RejectsSizeMismatch) {
  EXPECT_FALSE(dsg::compare_distances({1.0}, {1.0, 2.0}).ok);
}

}  // namespace
