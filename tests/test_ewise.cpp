// Unit tests for eWiseAdd / eWiseMult — union vs intersection semantics and
// the Sec. V-B non-commutative-operator pitfall with its mask workaround.
#include <gtest/gtest.h>

#include "graphblas/graphblas.hpp"

namespace {

using grb::Index;

grb::Vector<double> vec(std::initializer_list<std::pair<Index, double>> elems,
                        Index n) {
  grb::Vector<double> v(n);
  for (auto [i, x] : elems) v.set_element(i, x);
  return v;
}

TEST(EwiseAddVector, UnionCombinesIntersectionAndPassesThroughRest) {
  auto u = vec({{0, 1.0}, {1, 2.0}}, 4);
  auto v = vec({{1, 10.0}, {3, 30.0}}, 4);
  grb::Vector<double> w(4);
  grb::ewise_add(w, grb::Plus<double>{}, u, v);
  EXPECT_EQ(w.nvals(), 3u);
  EXPECT_DOUBLE_EQ(*w.extract_element(0), 1.0);   // only u: pass-through
  EXPECT_DOUBLE_EQ(*w.extract_element(1), 12.0);  // both: op
  EXPECT_DOUBLE_EQ(*w.extract_element(3), 30.0);  // only v: pass-through
}

TEST(EwiseAddVector, MinIsTheDistanceUpdate) {
  // t = min(t, tReq) with union semantics: absent t means infinity, so new
  // distances flow in — exactly Fig. 2 line 52.
  auto t = vec({{0, 0.0}, {1, 5.0}}, 4);
  auto treq = vec({{1, 3.0}, {2, 7.0}}, 4);
  grb::ewise_add(t, grb::Min<double>{}, t, treq);
  EXPECT_DOUBLE_EQ(*t.extract_element(0), 0.0);
  EXPECT_DOUBLE_EQ(*t.extract_element(1), 3.0);
  EXPECT_DOUBLE_EQ(*t.extract_element(2), 7.0);
}

TEST(EwiseAddVector, OutputAliasingInputIsSafe) {
  auto s = vec({{0, 1.0}}, 3);
  auto tb = vec({{1, 1.0}}, 3);
  grb::ewise_add(s, grb::LogicalOr<double>{}, s, tb);  // s = s + tB (Fig. 2)
  EXPECT_EQ(s.nvals(), 2u);
  EXPECT_TRUE(s.has_element(0));
  EXPECT_TRUE(s.has_element(1));
}

TEST(EwiseAddVector, NonCommutativePitfall) {
  // Sec. V-B: (tReq < t) via eWiseAdd.  Where tReq is ABSENT but t present,
  // the union passes t's value through — truthy, i.e. a spurious "true".
  auto treq = vec({{0, 3.0}}, 3);
  auto t = vec({{0, 5.0}, {1, 4.0}}, 3);
  grb::Vector<bool> out(3);
  grb::ewise_add(out, grb::NoMask{}, grb::NoAccumulate{},
                 grb::LessThan<double>{}, treq, t);
  EXPECT_TRUE(*out.extract_element(0));  // genuine comparison: 3 < 5
  // The pitfall: position 1 has no request, yet the output is stored and
  // truthy because t[1]=4.0 passed through.
  ASSERT_TRUE(out.has_element(1));
  EXPECT_TRUE(*out.extract_element(1));
}

TEST(EwiseAddVector, PitfallFixedByTreqMask) {
  // The paper's workaround: apply tReq as the output mask.
  auto treq = vec({{0, 3.0}, {2, 9.0}}, 3);
  auto t = vec({{0, 5.0}, {1, 4.0}, {2, 2.0}}, 3);
  grb::Vector<bool> out(3);
  grb::ewise_add(out, treq, grb::NoAccumulate{}, grb::LessThan<double>{},
                 treq, t, grb::replace_desc);
  EXPECT_EQ(out.nvals(), 2u);        // only where tReq exists
  EXPECT_TRUE(*out.extract_element(0));   // 3 < 5
  EXPECT_FALSE(*out.extract_element(2));  // 9 < 2 is false (stored false)
  EXPECT_FALSE(out.has_element(1));       // masked out
}

TEST(EwiseAddVector, EwiseMultWouldLoseNewVertices) {
  // Also from Sec. V-B: eWiseMult intersects, so a request for a vertex
  // with no current distance (t absent == infinity) vanishes — wrong for
  // the algorithm, demonstrated here.
  auto treq = vec({{1, 3.0}}, 3);  // new vertex, t[1] absent
  auto t = vec({{0, 5.0}}, 3);
  grb::Vector<bool> out(3);
  grb::ewise_mult(out, grb::NoMask{}, grb::NoAccumulate{},
                  grb::LessThan<double>{}, treq, t);
  EXPECT_EQ(out.nvals(), 0u);  // the improvement at vertex 1 is lost
}

TEST(EwiseMultVector, IntersectionOnly) {
  auto u = vec({{0, 2.0}, {1, 3.0}}, 4);
  auto v = vec({{1, 4.0}, {2, 5.0}}, 4);
  grb::Vector<double> w(4);
  grb::ewise_mult(w, grb::Times<double>{}, u, v);
  EXPECT_EQ(w.nvals(), 1u);
  EXPECT_DOUBLE_EQ(*w.extract_element(1), 12.0);
}

TEST(EwiseMultVector, HadamardFilterIdiom) {
  // t ∘ tB: restrict t to the bucket.
  auto t = vec({{0, 0.5}, {1, 1.5}, {2, 2.5}}, 3);
  grb::Vector<bool> tb(3);
  tb.set_element(0, true);
  tb.set_element(2, true);
  grb::Vector<double> masked(3);
  grb::ewise_mult(masked, grb::Second<double>{}, tb, t);
  EXPECT_EQ(masked.nvals(), 2u);
  EXPECT_DOUBLE_EQ(*masked.extract_element(0), 0.5);
  EXPECT_DOUBLE_EQ(*masked.extract_element(2), 2.5);
}

TEST(EwiseVector, MaskAccumReplaceComposition) {
  auto u = vec({{0, 1.0}, {1, 2.0}, {2, 3.0}}, 3);
  auto v = vec({{0, 10.0}, {1, 20.0}, {2, 30.0}}, 3);
  auto w = vec({{0, 100.0}, {2, 300.0}}, 3);
  grb::Vector<bool> mask(3);
  mask.set_element(0, true);
  mask.set_element(1, true);
  grb::ewise_add(w, mask, grb::Plus<double>{}, grb::Plus<double>{}, u, v,
                 grb::replace_desc);
  // z = u+v = {11, 22, 33}; accum with old w at mask-true positions:
  // w[0] = 100+11, w[1] = 22 (no old); w[2] dropped by replace.
  EXPECT_EQ(w.nvals(), 2u);
  EXPECT_DOUBLE_EQ(*w.extract_element(0), 111.0);
  EXPECT_DOUBLE_EQ(*w.extract_element(1), 22.0);
}

TEST(EwiseVector, DimensionChecks) {
  grb::Vector<double> a(3), b(4), w(3);
  EXPECT_THROW(grb::ewise_add(w, grb::Plus<double>{}, a, b),
               grb::DimensionMismatch);
  EXPECT_THROW(grb::ewise_mult(w, grb::Plus<double>{}, a, b),
               grb::DimensionMismatch);
}

// --- Matrix eWise. ----------------------------------------------------------

grb::Matrix<double> matA() {
  grb::Matrix<double> m(2, 3);
  m.set_element(0, 0, 1.0);
  m.set_element(0, 2, 2.0);
  m.set_element(1, 1, 3.0);
  return m;
}

grb::Matrix<double> matB() {
  grb::Matrix<double> m(2, 3);
  m.set_element(0, 0, 10.0);
  m.set_element(1, 0, 20.0);
  m.set_element(1, 1, 30.0);
  return m;
}

TEST(EwiseAddMatrix, Union) {
  grb::Matrix<double> c(2, 3);
  grb::ewise_add(c, grb::Plus<double>{}, matA(), matB());
  EXPECT_EQ(c.nvals(), 4u);
  EXPECT_DOUBLE_EQ(*c.extract_element(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(*c.extract_element(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(*c.extract_element(1, 0), 20.0);
  EXPECT_DOUBLE_EQ(*c.extract_element(1, 1), 33.0);
}

TEST(EwiseMultMatrix, IntersectionIsHadamard) {
  grb::Matrix<double> c(2, 3);
  grb::ewise_mult(c, grb::Times<double>{}, matA(), matB());
  EXPECT_EQ(c.nvals(), 2u);
  EXPECT_DOUBLE_EQ(*c.extract_element(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(*c.extract_element(1, 1), 90.0);
}

TEST(EwiseMatrix, TransposeDescriptors) {
  auto a = matA();             // 2x3
  auto bt = matB().transposed();  // 3x2
  grb::Matrix<double> c(2, 3);
  grb::ewise_add(c, grb::NoMask{}, grb::NoAccumulate{}, grb::Plus<double>{},
                 a, bt, grb::Descriptor{.transpose_in1 = true});
  EXPECT_DOUBLE_EQ(*c.extract_element(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(*c.extract_element(1, 1), 33.0);
}

TEST(EwiseMatrix, DimensionChecks) {
  grb::Matrix<double> a(2, 3), b(3, 2), c(2, 3);
  EXPECT_THROW(grb::ewise_add(c, grb::Plus<double>{}, a, b),
               grb::DimensionMismatch);
}

}  // namespace
