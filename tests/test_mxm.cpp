// Unit tests for mxm: Gustavson product vs dense reference, semiring
// variety, masks, and the K-truss-style fill-in elimination the paper cites.
#include <gtest/gtest.h>

#include <vector>

#include "graphblas/graphblas.hpp"

namespace {

using grb::Index;

/// Dense (plus,times) reference product for cross-checking.
std::vector<std::vector<double>> dense_product(
    const grb::Matrix<double>& a, const grb::Matrix<double>& b) {
  std::vector<std::vector<double>> c(
      a.nrows(), std::vector<double>(b.ncols(), 0.0));
  a.for_each([&](Index i, Index k, double av) {
    b.for_each([&](Index kk, Index j, double bv) {
      if (k == kk) c[i][j] += av * bv;
    });
  });
  return c;
}

grb::Matrix<double> random_matrix(Index n, Index m, int seed, double density) {
  grb::Matrix<double> out(n, m);
  unsigned state = static_cast<unsigned>(seed);
  auto next = [&] {
    state = state * 1664525u + 1013904223u;
    return (state >> 8) % 1000 / 1000.0;
  };
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < m; ++j) {
      if (next() < density) out.set_element(i, j, next() * 10 + 0.1);
    }
  }
  return out;
}

TEST(Mxm, MatchesDenseReference) {
  auto a = random_matrix(8, 6, 1, 0.4);
  auto b = random_matrix(6, 7, 2, 0.4);
  grb::Matrix<double> c(8, 7);
  grb::mxm(c, grb::plus_times_semiring<double>(), a, b);
  auto ref = dense_product(a, b);
  for (Index i = 0; i < 8; ++i) {
    for (Index j = 0; j < 7; ++j) {
      const double got = c.extract_element(i, j).value_or(0.0);
      EXPECT_NEAR(got, ref[i][j], 1e-9) << "at (" << i << "," << j << ")";
    }
  }
}

TEST(Mxm, IdentityMatrixIsNeutral) {
  auto a = random_matrix(5, 5, 3, 0.5);
  grb::Matrix<double> eye(5, 5);
  for (Index i = 0; i < 5; ++i) eye.set_element(i, i, 1.0);
  grb::Matrix<double> c(5, 5);
  grb::mxm(c, grb::plus_times_semiring<double>(), a, eye);
  EXPECT_EQ(c, a);
  grb::mxm(c, grb::plus_times_semiring<double>(), eye, a);
  EXPECT_EQ(c, a);
}

TEST(Mxm, TransposeDescriptors) {
  auto a = random_matrix(4, 6, 4, 0.5);
  auto b = random_matrix(4, 5, 5, 0.5);
  // C = AT * B via descriptor must equal the explicit transpose product.
  grb::Matrix<double> c1(6, 5), c2(6, 5);
  grb::mxm(c1, grb::NoMask{}, grb::NoAccumulate{},
           grb::plus_times_semiring<double>(), a, b,
           grb::Descriptor{.transpose_in0 = true});
  grb::mxm(c2, grb::plus_times_semiring<double>(), a.transposed(), b);
  EXPECT_EQ(c1, c2);
}

TEST(Mxm, MinPlusComputesTwoHopDistances) {
  grb::Matrix<double> a(3, 3);
  a.set_element(0, 1, 2.0);
  a.set_element(1, 2, 3.0);
  grb::Matrix<double> c(3, 3);
  grb::mxm(c, grb::min_plus_semiring<double>(), a, a);
  EXPECT_DOUBLE_EQ(*c.extract_element(0, 2), 5.0);
  EXPECT_EQ(c.nvals(), 1u);
}

TEST(Mxm, KTrussStyleMaskEliminatesFillIn) {
  // The paper motivates Hadamard-after-product to kill fill-in:
  // S = ATA ∘ A.  With A as mask + replace, mxm delivers it in one call.
  grb::Matrix<double> a(4, 4);
  // A small undirected triangle 0-1-2 plus a pendant 2-3.
  auto set_sym = [&](Index i, Index j) {
    a.set_element(i, j, 1.0);
    a.set_element(j, i, 1.0);
  };
  set_sym(0, 1);
  set_sym(1, 2);
  set_sym(0, 2);
  set_sym(2, 3);

  grb::Matrix<double> full(4, 4);
  grb::mxm(full, grb::NoMask{}, grb::NoAccumulate{},
           grb::plus_times_semiring<double>(), a, a,
           grb::Descriptor{.transpose_in0 = true});
  grb::Matrix<double> masked(4, 4);
  grb::mxm(masked, a, grb::NoAccumulate{}, grb::plus_times_semiring<double>(),
           a, a,
           grb::Descriptor{.replace = true, .transpose_in0 = true});
  EXPECT_GT(full.nvals(), masked.nvals());  // fill-in eliminated
  // Each triangle edge supports exactly 1 triangle: S[0][1] == 1.
  EXPECT_DOUBLE_EQ(*masked.extract_element(0, 1), 1.0);
  // The pendant edge 2-3 supports no triangle: vertices 2 and 3 share no
  // neighbour, so the product has no stored entry there even though the
  // mask would allow one.
  EXPECT_FALSE(masked.has_element(2, 3));
}

TEST(Mxm, AccumAddsIntoExisting) {
  auto a = random_matrix(3, 3, 6, 0.6);
  grb::Matrix<double> c(3, 3);
  c.set_element(0, 0, 100.0);
  grb::Matrix<double> ab(3, 3);
  grb::mxm(ab, grb::plus_times_semiring<double>(), a, a);
  const double expected =
      100.0 + ab.extract_element(0, 0).value_or(0.0);
  grb::mxm(c, grb::NoMask{}, grb::Plus<double>{},
           grb::plus_times_semiring<double>(), a, a);
  if (ab.has_element(0, 0)) {
    EXPECT_NEAR(*c.extract_element(0, 0), expected, 1e-9);
  } else {
    EXPECT_DOUBLE_EQ(*c.extract_element(0, 0), 100.0);
  }
}

TEST(Mxm, DimensionChecks) {
  grb::Matrix<double> a(2, 3), b(4, 2), c(2, 2);
  EXPECT_THROW(grb::mxm(c, grb::plus_times_semiring<double>(), a, b),
               grb::DimensionMismatch);
}

TEST(Mxm, EmptyOperandsGiveEmptyResult) {
  grb::Matrix<double> a(3, 3), b(3, 3), c(3, 3);
  grb::mxm(c, grb::plus_times_semiring<double>(), a, b);
  EXPECT_EQ(c.nvals(), 0u);
}

}  // namespace
