// test_pointwise_parallel.cpp — serial parity for the OpenMP point-wise
// vector kernels (apply / select / ewise_add / ewise_mult).
//
// The parallel kernels promise BIT-IDENTICAL output to the serial path
// (two-pass count/fill over contiguous chunks preserves the serial emit
// order exactly).  The suite runs each op twice on the same inputs — once
// with the Context threshold dropped to 1 (parallel path taken whenever
// OpenMP is available) and once with it effectively disabled — and
// compares structures and values exactly.  Without OpenMP both runs take
// the serial path and the suite still passes, so the same tests cover the
// no-OpenMP build.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "graphblas/graphblas.hpp"

namespace {

using grb::Index;

/// Deterministic LCG so the fixtures are reproducible across platforms.
struct Lcg {
  std::uint64_t state;
  explicit Lcg(std::uint64_t seed) : state(seed) {}
  std::uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  }
  double uniform() { return static_cast<double>(next() % 1000003) / 1000003.0; }
};

/// Sparse vector with roughly `density` fill and values in [0, 10).
grb::Vector<double> random_vector(Index n, double density, std::uint64_t seed) {
  Lcg rng(seed);
  grb::Vector<double> v(n);
  auto& vi = v.mutable_indices();
  auto& vv = v.mutable_values();
  for (Index i = 0; i < n; ++i) {
    if (rng.uniform() < density) {
      vi.push_back(i);
      vv.push_back(rng.uniform() * 10.0);
    }
  }
  return v;
}

grb::Vector<bool> random_mask(Index n, double density, std::uint64_t seed) {
  Lcg rng(seed);
  grb::Vector<bool> m(n);
  auto& mi = m.mutable_indices();
  auto& mv = m.mutable_values();
  for (Index i = 0; i < n; ++i) {
    if (rng.uniform() < density) {
      mi.push_back(i);
      mv.push_back(rng.uniform() < 0.7);  // mix of true and stored-false
    }
  }
  return m;
}

template <typename T>
void expect_identical(const grb::Vector<T>& a, const grb::Vector<T>& b,
                      const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  ASSERT_EQ(a.nvals(), b.nvals()) << what;
  auto ai = a.indices();
  auto bi = b.indices();
  auto av = a.values();
  auto bv = b.values();
  for (std::size_t k = 0; k < ai.size(); ++k) {
    ASSERT_EQ(ai[k], bi[k]) << what << " structure @" << k;
    ASSERT_EQ(av[k], bv[k]) << what << " value @" << k;  // bit-identical
  }
}

/// Runs `body(ctx, out)` once on a parallel-eager Context and once on a
/// serial-pinned one, asserting identical results.
template <typename Body>
void check_parity(Index n, const char* what, Body&& body) {
  grb::Context parallel_ctx;
  parallel_ctx.pointwise_parallel_threshold = 1;
  grb::Context serial_ctx;
  serial_ctx.pointwise_parallel_threshold =
      std::numeric_limits<Index>::max();

  grb::Vector<double> out_par(n);
  grb::Vector<double> out_ser(n);
  body(parallel_ctx, out_par);
  body(serial_ctx, out_ser);
  expect_identical(out_par, out_ser, what);
}

constexpr Index kN = 40000;  // large enough for several chunks per op

TEST(PointwiseParallel, ApplyUnmasked) {
  const auto u = random_vector(kN, 0.4, 1);
  check_parity(kN, "apply unmasked", [&](grb::Context& ctx, auto& out) {
    grb::apply(ctx, out, grb::NoMask{}, grb::NoAccumulate{},
               grb::BindSecond<grb::Plus<double>, double>{{}, 1.25}, u);
  });
}

TEST(PointwiseParallel, ApplyMaskedVariants) {
  const auto u = random_vector(kN, 0.5, 2);
  const auto mask = random_mask(kN, 0.3, 3);
  check_parity(kN, "apply value mask", [&](grb::Context& ctx, auto& out) {
    grb::apply(ctx, out, mask, grb::NoAccumulate{}, grb::Identity<double>{},
               u, grb::replace_desc);
  });
  check_parity(kN, "apply structure mask", [&](grb::Context& ctx, auto& out) {
    grb::apply(ctx, out, mask, grb::NoAccumulate{}, grb::Identity<double>{},
               u, grb::structure_mask_desc);
  });
  grb::Descriptor comp = grb::replace_desc;
  comp.mask_complement = true;
  check_parity(kN, "apply complement mask", [&](grb::Context& ctx, auto& out) {
    grb::apply(ctx, out, mask, grb::NoAccumulate{}, grb::Identity<double>{},
               u, comp);
  });
}

TEST(PointwiseParallel, ApplyWithAccumulator) {
  const auto u = random_vector(kN, 0.4, 4);
  const auto seed_vals = random_vector(kN, 0.2, 5);
  check_parity(kN, "apply accum", [&](grb::Context& ctx, auto& out) {
    out = seed_vals;  // pre-existing output contents to accumulate into
    grb::apply(ctx, out, grb::NoMask{}, grb::Plus<double>{},
               grb::Identity<double>{}, u);
  });
}

TEST(PointwiseParallel, SelectValueAndMask) {
  const auto u = random_vector(kN, 0.5, 6);
  const auto mask = random_mask(kN, 0.4, 7);
  check_parity(kN, "select threshold", [&](grb::Context& ctx, auto& out) {
    grb::select(ctx, out, grb::GreaterThanThreshold<double>{5.0}, u);
  });
  check_parity(kN, "select masked", [&](grb::Context& ctx, auto& out) {
    grb::select(
        ctx, out, mask, grb::NoAccumulate{},
        [](const double& x, Index i) { return x > 2.0 && i % 3 != 0; }, u,
        grb::replace_desc);
  });
}

TEST(PointwiseParallel, EwiseAddUnionSemantics) {
  const auto u = random_vector(kN, 0.4, 8);
  const auto v = random_vector(kN, 0.4, 9);
  check_parity(kN, "ewise_add min", [&](grb::Context& ctx, auto& out) {
    grb::ewise_add(ctx, out, grb::NoMask{}, grb::NoAccumulate{},
                   grb::Min<double>{}, u, v);
  });
  const auto mask = random_mask(kN, 0.3, 10);
  check_parity(kN, "ewise_add masked", [&](grb::Context& ctx, auto& out) {
    grb::ewise_add(ctx, out, mask, grb::NoAccumulate{}, grb::Plus<double>{},
                   u, v, grb::replace_desc);
  });
  // The Sec. V-B pitfall op (non-commutative LessThan): pass-through
  // semantics must be identical too.
  check_parity(kN, "ewise_add lt", [&](grb::Context& ctx, auto& out) {
    grb::Vector<double> cmp(kN);
    grb::ewise_add(ctx, cmp, u, grb::NoAccumulate{}, grb::LessThan<double>{},
                   u, v, grb::replace_desc);
    grb::apply(ctx, out, cmp, grb::NoAccumulate{}, grb::Identity<double>{}, u,
               grb::replace_desc);
  });
}

TEST(PointwiseParallel, EwiseMultIntersection) {
  const auto u = random_vector(kN, 0.5, 11);
  const auto v = random_vector(kN, 0.5, 12);
  check_parity(kN, "ewise_mult", [&](grb::Context& ctx, auto& out) {
    grb::ewise_mult(ctx, out, grb::NoMask{}, grb::NoAccumulate{},
                    grb::Times<double>{}, u, v);
  });
  const auto mask = random_mask(kN, 0.25, 13);
  check_parity(kN, "ewise_mult masked", [&](grb::Context& ctx, auto& out) {
    grb::ewise_mult(ctx, out, mask, grb::NoAccumulate{}, grb::Plus<double>{},
                    u, v, grb::structure_mask_desc);
  });
}

TEST(PointwiseParallel, EmptyAndDenseEdges) {
  const grb::Vector<double> empty(kN);
  const auto dense = random_vector(kN, 1.0, 14);
  check_parity(kN, "apply empty", [&](grb::Context& ctx, auto& out) {
    grb::apply(ctx, out, grb::NoMask{}, grb::NoAccumulate{},
               grb::Identity<double>{}, empty);
  });
  check_parity(kN, "apply dense", [&](grb::Context& ctx, auto& out) {
    grb::apply(ctx, out, grb::NoMask{}, grb::NoAccumulate{},
               grb::BindSecond<grb::Plus<double>, double>{{}, -3.0}, dense);
  });
  check_parity(kN, "ewise_add one empty", [&](grb::Context& ctx, auto& out) {
    grb::ewise_add(ctx, out, grb::NoMask{}, grb::NoAccumulate{},
                   grb::Plus<double>{}, dense, empty);
  });
  check_parity(kN, "ewise_mult one empty", [&](grb::Context& ctx, auto& out) {
    grb::ewise_mult(ctx, out, grb::NoMask{}, grb::NoAccumulate{},
                    grb::Plus<double>{}, dense, empty);
  });
}

}  // namespace
