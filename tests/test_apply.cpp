// Unit tests for grb::apply — including the paper's double-apply filter
// idiom (predicate -> boolean object -> identity under mask) and the full
// mask/accumulator/descriptor matrix.
#include <gtest/gtest.h>

#include "graphblas/graphblas.hpp"

namespace {

using grb::Index;

grb::Vector<double> vec(std::initializer_list<std::pair<Index, double>> elems,
                        Index n) {
  grb::Vector<double> v(n);
  for (auto [i, x] : elems) v.set_element(i, x);
  return v;
}

TEST(ApplyVector, UnaryOpOnStoredElementsOnly) {
  auto u = vec({{0, 1.0}, {2, -2.0}, {4, 3.0}}, 5);
  grb::Vector<double> w(5);
  grb::apply(w, grb::AbsOp<double>{}, u);
  EXPECT_EQ(w.nvals(), 3u);
  EXPECT_DOUBLE_EQ(*w.extract_element(2), 2.0);
  EXPECT_FALSE(w.has_element(1));  // absent stays absent
}

TEST(ApplyVector, TypeChangingOp) {
  auto u = vec({{0, 0.5}, {1, 3.0}}, 3);
  grb::Vector<bool> w(3);
  grb::apply(w, grb::GreaterThanThreshold<double>{1.0}, u);
  EXPECT_EQ(w.nvals(), 2u);
  EXPECT_FALSE(*w.extract_element(0));  // stored false!
  EXPECT_TRUE(*w.extract_element(1));
}

TEST(ApplyVector, DimensionMismatchThrows) {
  grb::Vector<double> u(4), w(5);
  EXPECT_THROW(grb::apply(w, grb::Identity<double>{}, u),
               grb::DimensionMismatch);
}

TEST(ApplyVector, DefaultDescMergesIntoOutput) {
  auto u = vec({{1, 5.0}}, 4);
  auto w = vec({{0, 9.0}}, 4);
  // Without a mask and without accum the output is replaced by T
  // (GraphBLAS write rule), so the old w[0] disappears.
  grb::apply(w, grb::NoMask{}, grb::NoAccumulate{}, grb::Identity<double>{},
             u);
  EXPECT_EQ(w.nvals(), 1u);
  EXPECT_FALSE(w.has_element(0));
  EXPECT_DOUBLE_EQ(*w.extract_element(1), 5.0);
}

TEST(ApplyVector, ValueMaskKeepsUnmaskedOldValues) {
  auto u = vec({{0, 1.0}, {1, 2.0}, {2, 3.0}}, 3);
  auto w = vec({{2, 99.0}}, 3);
  grb::Vector<bool> mask(3);
  mask.set_element(0, true);
  mask.set_element(1, false);  // stored but falsy -> not writable
  grb::apply(w, mask, grb::NoAccumulate{}, grb::Identity<double>{}, u);
  EXPECT_DOUBLE_EQ(*w.extract_element(0), 1.0);   // mask true: written
  EXPECT_FALSE(w.has_element(1));                 // mask false: not written
  EXPECT_DOUBLE_EQ(*w.extract_element(2), 99.0);  // mask absent: old kept
}

TEST(ApplyVector, ValueMaskWithReplaceDropsUnmasked) {
  auto u = vec({{0, 1.0}, {2, 3.0}}, 3);
  auto w = vec({{1, 50.0}, {2, 99.0}}, 3);
  grb::Vector<bool> mask(3);
  mask.set_element(0, true);
  grb::apply(w, mask, grb::NoAccumulate{}, grb::Identity<double>{}, u,
             grb::replace_desc);
  EXPECT_EQ(w.nvals(), 1u);  // everything outside the mask replaced away
  EXPECT_DOUBLE_EQ(*w.extract_element(0), 1.0);
}

TEST(ApplyVector, StructuralMaskIgnoresValues) {
  auto u = vec({{0, 1.0}, {1, 2.0}}, 3);
  grb::Vector<double> w(3);
  grb::Vector<bool> mask(3);
  mask.set_element(1, false);  // present but false
  grb::apply(w, mask, grb::NoAccumulate{}, grb::Identity<double>{}, u,
             grb::structure_mask_desc);
  EXPECT_EQ(w.nvals(), 1u);  // structural: presence counts
  EXPECT_DOUBLE_EQ(*w.extract_element(1), 2.0);
}

TEST(ApplyVector, ComplementMask) {
  auto u = vec({{0, 1.0}, {1, 2.0}, {2, 3.0}}, 3);
  grb::Vector<double> w(3);
  grb::Vector<bool> mask(3);
  mask.set_element(0, true);
  grb::apply(w, mask, grb::NoAccumulate{}, grb::Identity<double>{}, u,
             grb::complement_mask_desc);
  EXPECT_EQ(w.nvals(), 2u);
  EXPECT_FALSE(w.has_element(0));
  EXPECT_TRUE(w.has_element(1));
  EXPECT_TRUE(w.has_element(2));
}

TEST(ApplyVector, AccumCombinesOldAndNew) {
  auto u = vec({{0, 1.0}, {1, 2.0}}, 3);
  auto w = vec({{1, 10.0}, {2, 20.0}}, 3);
  grb::apply(w, grb::NoMask{}, grb::Plus<double>{}, grb::Identity<double>{},
             u);
  EXPECT_DOUBLE_EQ(*w.extract_element(0), 1.0);   // only new
  EXPECT_DOUBLE_EQ(*w.extract_element(1), 12.0);  // accum(10, 2)
  EXPECT_DOUBLE_EQ(*w.extract_element(2), 20.0);  // only old survives accum
}

TEST(ApplyVector, PaperFilterIdiom) {
  // The Fig. 2 lines 27-28 idiom: tgeq = (t >= thr); tcomp = t<tgeq>.
  auto t = vec({{0, 0.0}, {1, 5.0}, {2, 2.0}}, 4);
  grb::Vector<bool> tgeq(4);
  grb::Vector<double> tcomp(4);
  grb::apply(tgeq, grb::NoMask{}, grb::NoAccumulate{},
             grb::GreaterEqualThreshold<double>{2.0}, t);
  EXPECT_EQ(tgeq.nvals(), 3u);  // stored true AND false results
  grb::apply(tcomp, tgeq, grb::NoAccumulate{}, grb::Identity<double>{}, t,
             grb::replace_desc);
  EXPECT_EQ(tcomp.nvals(), 2u);  // only the true ones survive the mask
  EXPECT_TRUE(tcomp.has_element(1));
  EXPECT_TRUE(tcomp.has_element(2));
}

TEST(ApplyVector, BindSecondAsScalarApply) {
  auto u = vec({{0, 1.0}, {1, 2.0}}, 2);
  grb::Vector<double> w(2);
  grb::apply(w, grb::BindSecond<grb::Plus<double>, double>{{}, 10.0}, u);
  EXPECT_DOUBLE_EQ(*w.extract_element(0), 11.0);
  EXPECT_DOUBLE_EQ(*w.extract_element(1), 12.0);
}

// --- Matrix apply. ----------------------------------------------------------

grb::Matrix<double> mat3() {
  grb::Matrix<double> m(3, 3);
  m.set_element(0, 1, 0.5);
  m.set_element(1, 2, 1.5);
  m.set_element(2, 0, 2.5);
  return m;
}

TEST(ApplyMatrix, UnaryOp) {
  auto a = mat3();
  grb::Matrix<double> c(3, 3);
  grb::apply(c, grb::BindSecond<grb::Times<double>, double>{{}, 2.0}, a);
  EXPECT_DOUBLE_EQ(*c.extract_element(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(*c.extract_element(2, 0), 5.0);
  EXPECT_EQ(c.nvals(), 3u);
}

TEST(ApplyMatrix, LightHeavySplitIdiom) {
  // Fig. 2 lines 15-21: the A_L/A_H construction through boolean masks.
  auto a = mat3();
  const double delta = 1.0;
  grb::Matrix<bool> ab(3, 3);
  grb::Matrix<double> al(3, 3), ah(3, 3);
  grb::apply(ab, grb::NoMask{}, grb::NoAccumulate{},
             grb::LightEdgePredicate<double>{delta}, a);
  grb::apply(al, ab, grb::NoAccumulate{}, grb::Identity<double>{}, a);
  grb::apply(ab, grb::NoMask{}, grb::NoAccumulate{},
             grb::GreaterThanThreshold<double>{delta}, a, grb::replace_desc);
  grb::apply(ah, ab, grb::NoAccumulate{}, grb::Identity<double>{}, a);

  EXPECT_EQ(al.nvals(), 1u);  // 0.5
  EXPECT_TRUE(al.has_element(0, 1));
  EXPECT_EQ(ah.nvals(), 2u);  // 1.5, 2.5
  EXPECT_TRUE(ah.has_element(1, 2));
  EXPECT_TRUE(ah.has_element(2, 0));
  // Light/heavy partition the stored entries exactly.
  EXPECT_EQ(al.nvals() + ah.nvals(), a.nvals());
}

TEST(ApplyMatrix, TransposeDescriptor) {
  auto a = mat3();
  grb::Matrix<double> c(3, 3);
  grb::apply(c, grb::NoMask{}, grb::NoAccumulate{}, grb::Identity<double>{},
             a, grb::Descriptor{.transpose_in0 = true});
  EXPECT_TRUE(c.has_element(1, 0));
  EXPECT_DOUBLE_EQ(*c.extract_element(1, 0), 0.5);
}

TEST(ApplyMatrix, MatrixMaskAndReplace) {
  auto a = mat3();
  grb::Matrix<double> c(3, 3);
  c.set_element(2, 2, 42.0);
  grb::Matrix<bool> mask(3, 3);
  mask.set_element(0, 1, true);
  grb::apply(c, mask, grb::NoAccumulate{}, grb::Identity<double>{}, a,
             grb::replace_desc);
  EXPECT_EQ(c.nvals(), 1u);
  EXPECT_DOUBLE_EQ(*c.extract_element(0, 1), 0.5);
}

TEST(ApplyMatrix, AccumOnMatrix) {
  auto a = mat3();
  grb::Matrix<double> c(3, 3);
  c.set_element(0, 1, 10.0);
  grb::apply(c, grb::NoMask{}, grb::Min<double>{}, grb::Identity<double>{},
             a);
  EXPECT_DOUBLE_EQ(*c.extract_element(0, 1), 0.5);  // min(10, 0.5)
  EXPECT_DOUBLE_EQ(*c.extract_element(1, 2), 1.5);
}

}  // namespace
