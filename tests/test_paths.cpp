// Unit tests for shortest-path tree recovery and path extraction.
#include <gtest/gtest.h>

#include "graph/edge_list.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "sssp/paths.hpp"
#include "test_support.hpp"

namespace {

using dsg::EdgeList;
using grb::Index;

grb::Matrix<double> diamond() { return dsg::test::diamond_graph().to_matrix(); }

TEST(RecoverParents, TreeEdgesAreTight) {
  auto a = diamond();
  auto r = dsg::dijkstra(a, 0);
  auto parent = dsg::recover_parents(a, 0, r.dist);
  EXPECT_EQ(parent[0], dsg::kNoParent);
  for (Index v = 1; v < 5; ++v) {
    ASSERT_NE(parent[v], dsg::kNoParent) << "vertex " << v;
    auto w = a.extract_element(parent[v], v);
    ASSERT_TRUE(w.has_value());
    EXPECT_DOUBLE_EQ(r.dist[parent[v]] + *w, r.dist[v]);
  }
}

TEST(RecoverParents, WorksOnDeltaSteppingOutput) {
  auto g = dsg::generate_connected_random(150, 300, 3);
  dsg::assign_uniform_weights(g, 0.2, 3.0, 4);
  g.normalize();
  auto a = g.to_matrix();
  dsg::DeltaSteppingOptions opt;
  opt.delta = 1.0;
  auto r = dsg::delta_stepping_fused(a, 0, opt);
  auto parent = dsg::recover_parents(a, 0, r.dist);
  // Following parents from any vertex reaches the source.
  for (Index v = 0; v < 150; ++v) {
    auto path = dsg::extract_path(parent, 0, v);
    ASSERT_FALSE(path.empty()) << "vertex " << v;
    EXPECT_EQ(path.front(), 0u);
    EXPECT_EQ(path.back(), v);
    EXPECT_NEAR(dsg::path_weight(a, path), r.dist[v], 1e-9);
  }
}

TEST(RecoverParents, UnreachableVerticesHaveNoParent) {
  EdgeList g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  auto a = g.to_matrix();
  auto r = dsg::dijkstra(a, 0);
  auto parent = dsg::recover_parents(a, 0, r.dist);
  EXPECT_EQ(parent[2], dsg::kNoParent);
  EXPECT_EQ(parent[3], dsg::kNoParent);
}

TEST(RecoverParents, RejectsInvalidDistanceVector) {
  auto a = diamond();
  std::vector<double> bogus(5, 0.0);
  bogus[1] = 0.5;  // no in-edge can produce 0.5
  EXPECT_THROW(dsg::recover_parents(a, 0, bogus), grb::InvalidValue);
}

TEST(RecoverParents, RejectsNonZeroSource) {
  auto a = diamond();
  auto r = dsg::dijkstra(a, 0);
  r.dist[0] = 1.0;
  EXPECT_THROW(dsg::recover_parents(a, 0, r.dist), grb::InvalidValue);
}

TEST(RecoverParents, RejectsWrongSize) {
  auto a = diamond();
  std::vector<double> wrong(4, 0.0);
  EXPECT_THROW(dsg::recover_parents(a, 0, wrong), grb::DimensionMismatch);
}

TEST(ExtractPath, SourceToItself) {
  std::vector<Index> parent{dsg::kNoParent, 0};
  auto path = dsg::extract_path(parent, 0, 0);
  EXPECT_EQ(path, (std::vector<Index>{0}));
}

TEST(ExtractPath, SimpleChain) {
  std::vector<Index> parent{dsg::kNoParent, 0, 1, 2};
  auto path = dsg::extract_path(parent, 0, 3);
  EXPECT_EQ(path, (std::vector<Index>{0, 1, 2, 3}));
}

TEST(ExtractPath, UnreachableReturnsEmpty) {
  std::vector<Index> parent{dsg::kNoParent, 0, dsg::kNoParent};
  auto path = dsg::extract_path(parent, 0, 2);
  EXPECT_TRUE(path.empty());
}

TEST(ExtractPath, DetectsCyclicParentArray) {
  std::vector<Index> parent{dsg::kNoParent, 2, 1};  // 1 <-> 2 loop
  EXPECT_THROW(dsg::extract_path(parent, 0, 1), grb::InvalidValue);
}

TEST(ExtractPath, OutOfRangeTarget) {
  std::vector<Index> parent{dsg::kNoParent};
  EXPECT_THROW(dsg::extract_path(parent, 0, 5), grb::IndexOutOfBounds);
}

TEST(PathWeight, SumsEdges) {
  auto a = diamond();
  EXPECT_DOUBLE_EQ(dsg::path_weight(a, {0, 3, 4}), 7.0);
  EXPECT_DOUBLE_EQ(dsg::path_weight(a, {0}), 0.0);
  EXPECT_DOUBLE_EQ(dsg::path_weight(a, {}), 0.0);
}

TEST(PathWeight, MissingEdgeThrows) {
  auto a = diamond();
  EXPECT_THROW(dsg::path_weight(a, {0, 4}), grb::InvalidValue);
}

}  // namespace
