// test_sssp_async.cpp — the lock-free asynchronous relaxation engine
// (rho_stepping + delta_stepping_async).
//
// The engines are *schedule*-nondeterministic: stats counters and round
// structure vary with thread interleaving.  Their *distances* do not — at
// quiescence every edge satisfies dist[v] <= fp(dist[u] + w), and since
// IEEE addition is monotone with non-negative weights the reachable fixed
// point is unique: the min over fp path sums, the same values Dijkstra
// computes.  Every check here therefore goes through the distances-only
// oracle (DSG_CHECK_DISTANCES_ONLY) or compares distance vectors across
// thread counts with exact equality — never through stats.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "capi/graphblas.h"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "sssp/async/write_min.hpp"
#include "sssp/solver.hpp"
#include "test_support.hpp"

namespace dsg::test {
namespace {

using sssp::Algorithm;
using sssp::SolverOptions;
using sssp::SsspSolver;

grb::Matrix<double> random_weighted(Index n, std::size_t extra,
                                    unsigned seed) {
  auto g = generate_connected_random(n, extra, seed);
  assign_uniform_weights(g, 0.05, 4.0, seed + 1);
  g.normalize();
  return g.to_matrix();
}

// ---------------------------------------------------------------------------
// write_min: the one primitive everything else leans on.
// ---------------------------------------------------------------------------

TEST(WriteMin, LowersAndReportsOnlyImprovements) {
  std::atomic<double> slot{10.0};
  EXPECT_TRUE(dsg::async::write_min(slot, 4.0));
  EXPECT_EQ(slot.load(), 4.0);
  EXPECT_FALSE(dsg::async::write_min(slot, 4.0));  // ties are not improvements
  EXPECT_FALSE(dsg::async::write_min(slot, 7.0));
  EXPECT_EQ(slot.load(), 4.0);
}

TEST(WriteMin, ConcurrentWritersConvergeToGlobalMin) {
  // Hammer one slot from several threads (barrier-started, so the writers
  // genuinely overlap); whatever the interleaving, the slot must end at
  // the global minimum of everything written.
  std::atomic<double> slot{1e9};
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  run_concurrent_stress(kThreads, 1, [&slot](int t, std::mt19937_64&) {
    for (int k = 0; k < kPerThread; ++k) {
      dsg::async::write_min(slot,
                            static_cast<double>((k * kThreads + t) % 977));
    }
  });
  EXPECT_EQ(slot.load(), 0.0);  // 0 == (k*kThreads+t) % 977 is hit by t=0,k=0
}

// ---------------------------------------------------------------------------
// Registry contract: both variants registered, flagged nondeterministic and
// threaded, exposed by name.
// ---------------------------------------------------------------------------

TEST(AsyncRegistry, VariantsRegisteredWithHonestFlags) {
  const auto& rho = sssp::algorithm_info(Algorithm::kRhoStepping);
  EXPECT_STREQ(rho.name, "rho_stepping");
  EXPECT_FALSE(rho.deterministic);  // schedule-dependent stats
  EXPECT_TRUE(rho.threaded);
  EXPECT_FALSE(rho.batch_parallel);  // spawns its own threads

  const auto& da = sssp::algorithm_info(Algorithm::kDeltaSteppingAsync);
  EXPECT_STREQ(da.name, "delta_stepping_async");
  EXPECT_FALSE(da.deterministic);
  EXPECT_TRUE(da.threaded);
  EXPECT_FALSE(da.batch_parallel);

  EXPECT_EQ(sssp::find_algorithm("rho_stepping"), &rho);
  EXPECT_EQ(sssp::find_algorithm("delta_stepping_async"), &da);

  // The deterministic engines keep their flag.
  EXPECT_TRUE(sssp::algorithm_info(Algorithm::kFused).deterministic);
  EXPECT_TRUE(sssp::algorithm_info(Algorithm::kDijkstra).deterministic);
}

// ---------------------------------------------------------------------------
// Property sweep: sources x thread counts x tuning knobs, both variants,
// distances-only oracle.  Families chosen to stress both traversal modes:
// the grid keeps frontiers thin (sparse mode), rmat floods them (dense
// switch), the two-islands graph exercises unreachability.
// ---------------------------------------------------------------------------

struct AsyncCase {
  const char* graph;
  double knob;  // delta for delta_stepping_async, rho for rho_stepping
};

class AsyncProperty : public ::testing::TestWithParam<AsyncCase> {
 protected:
  static grb::Matrix<double> make(const std::string& which) {
    if (which == "grid") {
      auto g = generate_grid2d(14, 14);
      g.symmetrize();
      assign_uniform_weights(g, 0.1, 2.0, 7);
      g.normalize();
      return g.to_matrix();
    }
    if (which == "rmat") {
      auto g = generate_rmat({.scale = 7, .edge_factor = 8, .seed = 5});
      g.symmetrize();
      assign_exponential_weights(g, 2.0, 6);
      g.normalize();
      return g.to_matrix();
    }
    return two_islands_graph().to_matrix();
  }
};

TEST_P(AsyncProperty, BothVariantsMatchOracleAcrossSourcesAndThreads) {
  const AsyncCase c = GetParam();
  const auto a = make(c.graph);
  const Index n = a.nrows();
  for (Index source : {Index{0}, n / 2, n - 1}) {
    for (int threads : {1, 2, 4}) {
      SCOPED_TRACE("graph=" + std::string(c.graph) +
                   " source=" + std::to_string(source) +
                   " threads=" + std::to_string(threads));
      AsyncSteppingOptions rho_opt;
      rho_opt.num_threads = threads;
      rho_opt.rho = static_cast<Index>(c.knob);
      DSG_CHECK_DISTANCES_ONLY(a, source,
                               rho_stepping(a, source, rho_opt).dist);

      AsyncSteppingOptions delta_opt;
      delta_opt.num_threads = threads;
      delta_opt.delta = c.knob;
      DSG_CHECK_DISTANCES_ONLY(
          a, source, delta_stepping_async(a, source, delta_opt).dist);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    GraphsAndKnobs, AsyncProperty,
    ::testing::Values(AsyncCase{"grid", 1.0}, AsyncCase{"grid", 8.0},
                      AsyncCase{"rmat", 0.5}, AsyncCase{"rmat", 64.0},
                      AsyncCase{"islands", 1.0}),
    [](const auto& param_info) {
      return std::string(param_info.param.graph) + "_k" +
             std::to_string(static_cast<int>(param_info.param.knob * 10));
    });

// ---------------------------------------------------------------------------
// Value determinism: distance vectors are bit-identical across 1 / 2 / max
// threads (the fp-fixed-point argument, checked with EXPECT_EQ, no
// tolerance).
// ---------------------------------------------------------------------------

TEST(AsyncDeterminism, DistancesBitIdenticalAcrossThreadCounts) {
  const auto a = random_weighted(350, 1400, 71);
  const int hw = static_cast<int>(
      std::max(2u, std::thread::hardware_concurrency()));
  for (const bool use_delta : {false, true}) {
    SCOPED_TRACE(use_delta ? "delta_stepping_async" : "rho_stepping");
    AsyncSteppingOptions opt;
    opt.delta = 0.7;
    auto run = [&](int threads) {
      opt.num_threads = threads;
      return use_delta ? delta_stepping_async(a, 3, opt).dist
                       : rho_stepping(a, 3, opt).dist;
    };
    const auto serial = run(1);
    for (int threads : {2, hw}) {
      const auto parallel = run(threads);
      ASSERT_EQ(parallel.size(), serial.size());
      for (std::size_t v = 0; v < serial.size(); ++v) {
        EXPECT_EQ(parallel[v], serial[v])
            << "threads=" << threads << " vertex " << v;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Solver integration: solve_batch with duplicate sources stays
// element-identical to per-source solves (warm workspace, flag-array
// all-zero invariant between solves).
// ---------------------------------------------------------------------------

TEST(AsyncSolver, BatchWithDuplicateSourcesMatchesPerSourceLoop) {
  const auto a = random_weighted(200, 600, 29);
  const std::vector<Index> sources = {5, 0, 5, 199, 5, 0};
  for (const Algorithm alg :
       {Algorithm::kRhoStepping, Algorithm::kDeltaSteppingAsync}) {
    SCOPED_TRACE(std::string("algorithm=") + sssp::algorithm_info(alg).name);
    SolverOptions options;
    options.algorithm = alg;
    options.delta = 0.9;
    options.num_threads = 2;
    SsspSolver solver(a, options);
    const auto batched = solver.solve_batch(sources);
    ASSERT_EQ(batched.size(), sources.size());
    for (std::size_t k = 0; k < sources.size(); ++k) {
      const auto single = solver.solve(sources[k]);
      ASSERT_EQ(batched[k].dist.size(), single.dist.size());
      for (std::size_t v = 0; v < single.dist.size(); ++v) {
        EXPECT_EQ(batched[k].dist[v], single.dist[v])
            << "query " << k << " vertex " << v;
      }
      DSG_CHECK_DISTANCES_ONLY(a, sources[k], batched[k].dist);
    }
  }
}

TEST(AsyncSolver, RhoKnobFlowsThroughSolverOptions) {
  const auto a = random_weighted(150, 450, 43);
  // Extreme rho values change the schedule drastically but never the
  // answer: rho=1 processes ~one vertex per round, huge rho degenerates to
  // Bellman-Ford-ish full-frontier rounds.
  for (const Index rho : {Index{1}, Index{4}, Index{1u << 20}}) {
    SCOPED_TRACE("rho=" + std::to_string(rho));
    SolverOptions options;
    options.algorithm = Algorithm::kRhoStepping;
    options.rho = rho;
    options.num_threads = 2;
    SsspSolver solver(a, options);
    DSG_CHECK_DISTANCES_ONLY(a, 7, solver.solve(7).dist);
  }
}

// ---------------------------------------------------------------------------
// v2 C API: the DSG_SSSP_RHO / DSG_SSSP_DELTA_ASYNC enum values drive the
// same engines end to end.
// ---------------------------------------------------------------------------

TEST(AsyncCapi, RhoAndAsyncDeltaSolveThroughHandles) {
  const auto m = diamond_graph().to_matrix();
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, m.nrows(), m.ncols()), GrB_SUCCESS);
  m.for_each([&](Index r, Index c, const double& w) {
    GrB_Matrix_setElement_FP64(a, w, r, c);
  });

  const auto want = diamond_distances_from_0();
  struct Variant {
    DsgSsspAlgorithm alg;
    const char* name;
  };
  for (const Variant v : {Variant{DSG_SSSP_RHO, "rho_stepping"},
                          Variant{DSG_SSSP_DELTA_ASYNC,
                                  "delta_stepping_async"}}) {
    SCOPED_TRACE(v.name);
    DsgSolver solver = nullptr;
    ASSERT_EQ(DsgSolver_new(&solver, a, v.alg, 1.0), GrB_SUCCESS);
    const char* name = nullptr;
    ASSERT_EQ(DsgSolver_algorithm_name(&name, solver), GrB_SUCCESS);
    EXPECT_STREQ(name, v.name);

    double dist[5] = {-1, -1, -1, -1, -1};
    ASSERT_EQ(DsgSolver_solve(solver, 0, dist), GrB_SUCCESS);
    for (std::size_t k = 0; k < want.size(); ++k) {
      EXPECT_NEAR(dist[k], want[k], 1e-12) << "vertex " << k;
    }
    ASSERT_EQ(DsgSolver_free(&solver), GrB_SUCCESS);
  }
  GrB_Matrix_free(&a);
}

}  // namespace
}  // namespace dsg::test
