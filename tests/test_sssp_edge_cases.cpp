// Edge cases and failure injection for the SSSP entry points: input
// validation, extreme deltas, extreme structures, numeric extremes.
#include <gtest/gtest.h>

#include "graph/edge_list.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "test_support.hpp"

namespace {

using dsg::EdgeList;
using dsg::kInfDist;
using grb::Index;

grb::Matrix<double> tiny() {
  EdgeList g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  return g.to_matrix();
}

TEST(InputValidation, NonSquareMatrixRejected) {
  grb::Matrix<double> a(2, 3);
  dsg::DeltaSteppingOptions opt;
  EXPECT_THROW(dsg::delta_stepping_graphblas(a, 0, opt),
               grb::DimensionMismatch);
  EXPECT_THROW(dsg::delta_stepping_fused(a, 0, opt), grb::DimensionMismatch);
}

TEST(InputValidation, EmptyGraphRejected) {
  grb::Matrix<double> a(0, 0);
  dsg::DeltaSteppingOptions opt;
  EXPECT_THROW(dsg::delta_stepping_fused(a, 0, opt), grb::InvalidValue);
  EXPECT_THROW(dsg::dijkstra(a, 0), grb::InvalidValue);
}

TEST(InputValidation, SourceOutOfRangeRejected) {
  auto a = tiny();
  dsg::DeltaSteppingOptions opt;
  EXPECT_THROW(dsg::delta_stepping_graphblas(a, 3, opt),
               grb::IndexOutOfBounds);
  EXPECT_THROW(dsg::delta_stepping_buckets(a, 99, opt),
               grb::IndexOutOfBounds);
  EXPECT_THROW(dsg::dijkstra(a, 3), grb::IndexOutOfBounds);
}

TEST(InputValidation, NegativeWeightRejectedByDeltaStepping) {
  EdgeList g(2);
  g.add_edge(0, 1, -1.0);
  auto a = g.to_matrix();
  dsg::DeltaSteppingOptions opt;
  EXPECT_THROW(dsg::delta_stepping_graphblas(a, 0, opt), grb::InvalidValue);
  EXPECT_THROW(dsg::delta_stepping_fused(a, 0, opt), grb::InvalidValue);
  EXPECT_THROW(dsg::delta_stepping_buckets(a, 0, opt), grb::InvalidValue);
  EXPECT_THROW(dsg::dijkstra(a, 0), grb::InvalidValue);
}

TEST(InputValidation, BadDeltaRejected) {
  auto a = tiny();
  dsg::DeltaSteppingOptions opt;
  opt.delta = 0.0;
  EXPECT_THROW(dsg::delta_stepping_fused(a, 0, opt), grb::InvalidValue);
  opt.delta = -2.0;
  EXPECT_THROW(dsg::delta_stepping_graphblas(a, 0, opt), grb::InvalidValue);
}

TEST(EdgeCases, IsolatedSourceVertex) {
  EdgeList g(3);
  g.add_edge(1, 2, 1.0);
  dsg::DeltaSteppingOptions opt;
  auto r = dsg::delta_stepping_graphblas(g.to_matrix(), 0, opt);
  EXPECT_DOUBLE_EQ(r.dist[0], 0.0);
  EXPECT_EQ(r.dist[1], kInfDist);
  EXPECT_EQ(r.dist[2], kInfDist);
}

TEST(EdgeCases, SinkOnlySource) {
  // Source has only incoming edges.
  EdgeList g(3);
  g.add_edge(1, 0, 1.0);
  g.add_edge(2, 0, 1.0);
  dsg::DeltaSteppingOptions opt;
  auto r = dsg::delta_stepping_fused(g.to_matrix(), 0, opt);
  EXPECT_DOUBLE_EQ(r.dist[0], 0.0);
  EXPECT_EQ(r.dist[1], kInfDist);
}

TEST(EdgeCases, ZeroWeightEdgesAreExcludedFromLightSet) {
  // The formulation A_L = A ∘ (0 < A <= Δ) excludes explicit zeros;
  // with heavy also requiring w > Δ, zero-weight edges vanish entirely.
  // Document this contract: zero-weight edges are not traversed by the
  // linear-algebraic delta-stepping (the paper's graphs have unit weights).
  EdgeList g(3);
  g.add_edge(0, 1, 0.0);
  g.add_edge(1, 2, 1.0);
  dsg::DeltaSteppingOptions opt;
  auto r = dsg::delta_stepping_graphblas(g.to_matrix(), 0, opt);
  EXPECT_EQ(r.dist[1], kInfDist);  // 0-weight edge not in A_L nor A_H
  // Dijkstra (not delta-split) does traverse it:
  auto rd = dsg::dijkstra(g.to_matrix(), 0);
  EXPECT_DOUBLE_EQ(rd.dist[1], 0.0);
  EXPECT_DOUBLE_EQ(rd.dist[2], 1.0);
}

TEST(EdgeCases, TinyDeltaManyEmptyBuckets) {
  auto a = tiny();
  dsg::DeltaSteppingOptions opt;
  opt.delta = 0.125;  // distances 0,1,2 -> buckets 0,8,16
  auto r = dsg::delta_stepping_fused(a, 0, opt);
  EXPECT_DOUBLE_EQ(r.dist[2], 2.0);
  EXPECT_GE(r.stats.outer_iterations, 3u);
}

TEST(EdgeCases, HugeDeltaSingleBucket) {
  auto a = tiny();
  dsg::DeltaSteppingOptions opt;
  opt.delta = 1e12;
  auto r = dsg::delta_stepping_graphblas(a, 0, opt);
  EXPECT_DOUBLE_EQ(r.dist[2], 2.0);
  EXPECT_EQ(r.stats.outer_iterations, 1u);
}

TEST(EdgeCases, DeltaEqualToWeightBoundary) {
  // w == delta goes to the light set (<=); verify boundary handling across
  // every variant via the shared parity table.
  EdgeList g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 2.0);
  DSG_CHECK_IMPL_PARITY(dsg::test::delta_stepping_impls(), g.to_matrix(), 0,
                        2.0);
}

TEST(EdgeCases, DistanceExactlyOnBucketBoundary) {
  // tent(v) == i*delta must land in bucket i (closed-below interval).
  EdgeList g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  dsg::DeltaSteppingOptions opt;
  opt.delta = 1.0;
  auto r = dsg::delta_stepping_graphblas(g.to_matrix(), 0, opt);
  EXPECT_DOUBLE_EQ(r.dist[3], 3.0);
}

TEST(EdgeCases, VeryLargeWeights) {
  EdgeList g(3);
  g.add_edge(0, 1, 1e15);
  g.add_edge(1, 2, 1e15);
  dsg::DeltaSteppingOptions opt;
  opt.delta = 1e14;
  auto r = dsg::delta_stepping_buckets(g.to_matrix(), 0, opt);
  EXPECT_DOUBLE_EQ(r.dist[2], 2e15);
}

TEST(EdgeCases, DenseCompleteGraph) {
  auto g = dsg::generate_complete(30);
  dsg::assign_uniform_weights(g, 0.5, 2.0, 3);
  DSG_CHECK_IMPL_PARITY(dsg::test::delta_stepping_impls(), g.to_matrix(), 0,
                        0.7);
}

TEST(EdgeCases, StarGraphSingleHub) {
  auto g = dsg::generate_star(500);
  dsg::assign_unit_weights(g);
  dsg::DeltaSteppingOptions opt;
  auto r = dsg::delta_stepping_graphblas(g.to_matrix(), 0, opt);
  for (Index v = 1; v < 500; ++v) EXPECT_DOUBLE_EQ(r.dist[v], 1.0);
  // From a leaf: everything is at most 2.
  auto r2 = dsg::delta_stepping_fused(g.to_matrix(), 7, opt);
  EXPECT_DOUBLE_EQ(r2.dist[0], 1.0);
  EXPECT_DOUBLE_EQ(r2.dist[8], 2.0);
}

TEST(EdgeCases, OpenMpThreadCountVariants) {
  auto g = dsg::generate_connected_random(200, 300, 5);
  dsg::assign_uniform_weights(g, 0.1, 2.0, 6);
  g.normalize();
  auto a = g.to_matrix();
  auto ref = dsg::dijkstra(a, 0);
  for (int threads : {1, 2, 4, 8}) {
    dsg::OpenMpOptions opt;
    opt.delta = 0.5;
    opt.num_threads = threads;
    auto r = dsg::delta_stepping_openmp(a, 0, opt);
    auto cmp = dsg::compare_distances(ref.dist, r.dist);
    EXPECT_TRUE(cmp.ok) << threads << " threads: " << cmp.message;
  }
}

TEST(EdgeCases, OpenMpTaskGranularityVariants) {
  auto g = dsg::generate_grid2d(20, 20);
  auto a = g.to_matrix();
  auto ref = dsg::dijkstra(a, 0);
  for (int tasks : {1, 3, 16, 64}) {
    dsg::OpenMpOptions opt;
    opt.num_threads = 4;
    opt.tasks_per_vector = tasks;
    auto r = dsg::delta_stepping_openmp(a, 0, opt);
    auto cmp = dsg::compare_distances(ref.dist, r.dist);
    EXPECT_TRUE(cmp.ok) << tasks << " tasks: " << cmp.message;
  }
}

TEST(EdgeCases, RepeatedRunsAreDeterministic) {
  auto g = dsg::generate_rmat({.scale = 7, .edge_factor = 5, .seed = 2});
  g.symmetrize();
  dsg::assign_unit_weights(g);
  g.normalize();
  auto a = g.to_matrix();
  dsg::DeltaSteppingOptions opt;
  auto r1 = dsg::delta_stepping_graphblas(a, 0, opt);
  auto r2 = dsg::delta_stepping_graphblas(a, 0, opt);
  EXPECT_EQ(r1.dist, r2.dist);
  EXPECT_EQ(r1.stats.light_phases, r2.stats.light_phases);
}

TEST(EdgeCases, ProfileFlagPopulatesTimers) {
  auto g = dsg::generate_grid2d(30, 30);
  dsg::DeltaSteppingOptions opt;
  opt.profile = true;
  auto r = dsg::delta_stepping_fused(g.to_matrix(), 0, opt);
  EXPECT_GT(r.stats.setup_seconds, 0.0);
  EXPECT_GT(r.stats.light_seconds + r.stats.vector_seconds, 0.0);
}

}  // namespace
