// Unit tests for grb::select — value and index-aware filtering, the fused
// alternative to the paper's double-apply idiom.
#include <gtest/gtest.h>

#include "graphblas/graphblas.hpp"

namespace {

using grb::Index;

TEST(SelectVector, ValuePredicateKeepsMatches) {
  grb::Vector<double> u(5);
  u.set_element(0, 0.5);
  u.set_element(1, 1.5);
  u.set_element(3, 2.5);
  grb::Vector<double> w(5);
  grb::select(w, grb::GreaterThanThreshold<double>{1.0}, u);
  EXPECT_EQ(w.nvals(), 2u);
  EXPECT_TRUE(w.has_element(1));
  EXPECT_TRUE(w.has_element(3));
}

TEST(SelectVector, EquivalentToDoubleApplyIdiom) {
  // select(pred) == apply(pred) + apply(identity under mask) — the paper's
  // fusion opportunity in one call.
  grb::Vector<double> t(6);
  t.set_element(0, 0.0);
  t.set_element(1, 1.2);
  t.set_element(2, 2.9);
  t.set_element(4, 3.4);
  const grb::HalfOpenRangePredicate<double> bucket{1.0, 3.0};

  grb::Vector<double> fused(6);
  grb::select(fused, bucket, t);

  grb::Vector<bool> tb(6);
  grb::Vector<double> unfused(6);
  grb::apply(tb, grb::NoMask{}, grb::NoAccumulate{}, bucket, t);
  grb::apply(unfused, tb, grb::NoAccumulate{}, grb::Identity<double>{}, t,
             grb::replace_desc);
  EXPECT_EQ(fused, unfused);
}

TEST(SelectVector, IndexAwarePredicate) {
  grb::Vector<double> u(6);
  for (Index i = 0; i < 6; ++i) u.set_element(i, 1.0);
  grb::Vector<double> w(6);
  grb::select(
      w, [](const double&, Index i) { return i % 2 == 0; }, u);
  EXPECT_EQ(w.nvals(), 3u);
  EXPECT_TRUE(w.has_element(0));
  EXPECT_FALSE(w.has_element(1));
}

TEST(SelectVector, EmptyInput) {
  grb::Vector<double> u(4), w(4);
  grb::select(w, grb::GreaterThanThreshold<double>{0.0}, u);
  EXPECT_EQ(w.nvals(), 0u);
}

TEST(SelectMatrix, LightHeavySplitInOneCallEach) {
  grb::Matrix<double> a(3, 3);
  a.set_element(0, 1, 0.5);
  a.set_element(1, 2, 1.5);
  a.set_element(2, 0, 2.5);
  grb::Matrix<double> al(3, 3), ah(3, 3);
  grb::select(al, grb::LightEdgePredicate<double>{1.0}, a);
  grb::select(ah, grb::GreaterThanThreshold<double>{1.0}, a);
  EXPECT_EQ(al.nvals(), 1u);
  EXPECT_EQ(ah.nvals(), 2u);
  EXPECT_DOUBLE_EQ(*al.extract_element(0, 1), 0.5);
}

TEST(SelectMatrix, TriLowerUpper) {
  grb::Matrix<double> a(3, 3);
  for (Index i = 0; i < 3; ++i)
    for (Index j = 0; j < 3; ++j) a.set_element(i, j, 1.0);
  grb::Matrix<double> lower(3, 3), upper(3, 3), strict_lower(3, 3);
  grb::select(lower, grb::TriLower{}, a);
  grb::select(upper, grb::TriUpper{}, a);
  grb::select(strict_lower, grb::TriLower{-1}, a);
  EXPECT_EQ(lower.nvals(), 6u);         // incl. diagonal
  EXPECT_EQ(upper.nvals(), 6u);
  EXPECT_EQ(strict_lower.nvals(), 3u);  // below diagonal only
  EXPECT_FALSE(strict_lower.has_element(1, 1));
  EXPECT_TRUE(strict_lower.has_element(2, 0));
}

TEST(SelectMatrix, OffDiagonalRemovesSelfLoops) {
  grb::Matrix<double> a(3, 3);
  a.set_element(0, 0, 1.0);
  a.set_element(0, 1, 2.0);
  a.set_element(2, 2, 3.0);
  grb::Matrix<double> c(3, 3);
  grb::select(c, grb::OffDiagonal{}, a);
  EXPECT_EQ(c.nvals(), 1u);
  EXPECT_TRUE(c.has_element(0, 1));
}

TEST(SelectMatrix, MaskComposes) {
  grb::Matrix<double> a(2, 2);
  a.set_element(0, 0, 5.0);
  a.set_element(0, 1, 6.0);
  grb::Matrix<bool> mask(2, 2);
  mask.set_element(0, 0, true);
  grb::Matrix<double> c(2, 2);
  grb::select(c, mask, grb::NoAccumulate{},
              [](const double&, Index, Index) { return true; }, a,
              grb::replace_desc);
  EXPECT_EQ(c.nvals(), 1u);
  EXPECT_DOUBLE_EQ(*c.extract_element(0, 0), 5.0);
}

TEST(SelectMatrix, DimensionCheck) {
  grb::Matrix<double> a(2, 3), c(3, 2);
  EXPECT_THROW(grb::select(c, grb::GreaterThanThreshold<double>{0.0}, a),
               grb::DimensionMismatch);
}

// --- Selectivity-sampler regression: position-correlated predicates. --------
//
// sampled_keep_fraction used to probe only the FIRST set bit of each
// sampled word, so any predicate correlated with i mod 64 (structured
// grids, strided frontiers) was estimated from one intra-word position
// only — a fully populated vector with keep(i) = (i % 64 < 32) came back
// as keep-everything (bit 0 always passes).  The rotating probe offset
// spreads samples across intra-word positions and kills the bias.

TEST(SelectivitySampler, PositionCorrelatedPredicateUnbiased) {
  const Index n = 64 * 256;
  grb::Vector<double> u(n);
  for (Index i = 0; i < n; ++i) u.set_element(i, 1.0);
  u.to_dense();

  // True keep fraction 1/2, but concentrated in the low half of each word.
  const auto low_half = [](Index i) { return (i % 64) < 32; };
  const double est_half = grb::detail::sampled_keep_fraction(u, low_half);
  EXPECT_NEAR(est_half, 0.5, 0.05);

  // True keep fraction 1/64, all on bit 0 — the old sampler's only probe
  // position, which made it report 1.0.
  const auto bit_zero = [](Index i) { return (i % 64) == 0; };
  const double est_thin = grb::detail::sampled_keep_fraction(u, bit_zero);
  EXPECT_NEAR(est_thin, 1.0 / 64.0, 0.01);

  // Behavioral consequence: a thin position-correlated filter must choose
  // the compacted output path (the old estimate of 1.0 forced the dense
  // stage no matter the crossover).
  grb::Context ctx;
  ctx.dense_output_crossover = 0.4;
  EXPECT_TRUE(grb::detail::dense_output_prefers_compaction(ctx, u, bit_zero));
}

}  // namespace
