// Fault-injection tests: the injection machinery itself (determinism,
// trigger semantics), allocation-failure sweeps over every algorithm's
// yield points with recovery afterwards, catalog honesty, and the C-API
// error-code mapping under injected faults.
//
// The suites run under ASan and TSan in CI: "pass" here also means no
// leak on any injected-throw path, no deadlock in the async engine when a
// worker dies, and no exception escaping an extern "C" or OpenMP boundary.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <new>
#include <string>
#include <vector>

#include "capi/graphblas.h"
#include "serving/server.hpp"
#include "sssp/solver.hpp"
#include "test_support.hpp"
#include "testing/fault_injection.hpp"

namespace {

using dsg::QueryControl;
using dsg::SsspResult;
using dsg::SsspStatus;
using dsg::sssp::Algorithm;
using dsg::sssp::BatchOptions;
using dsg::sssp::SolverOptions;
using dsg::sssp::SsspSolver;
using dsg::testing::FaultSpec;
using dsg::testing::ScopedFaults;
using grb::Index;

SsspSolver make_solver(Algorithm algorithm, const dsg::EdgeList& g) {
  SolverOptions options;
  options.algorithm = algorithm;
  // Δ = 1 keeps the diamond graph's bucket count at ~5+, so "fire on hit
  // 2 of <variant>/round" is guaranteed to be reachable in every sweep.
  options.delta = 1.0;
  return SsspSolver(g.to_matrix(), options);
}

FaultSpec throw_at(const char* point, std::int64_t hit) {
  FaultSpec spec;
  spec.point = point;
  spec.on_hit = hit;
  return spec;
}

// --- The machinery itself. ---------------------------------------------------

TEST(FaultInjection, InactiveByDefault) {
  EXPECT_FALSE(dsg::testing::faults_active());
  dsg::testing::fault_point("no/such/point");  // must be a no-op
  EXPECT_EQ(dsg::testing::fault_point_hits("no/such/point"), 0u);
  EXPECT_TRUE(dsg::testing::touched_fault_points().empty());
}

TEST(FaultInjection, EmptyTableCountsHitsWithoutFiring) {
  ScopedFaults faults(1, {});
  EXPECT_TRUE(dsg::testing::faults_active());
  dsg::testing::fault_point("p");
  dsg::testing::fault_point("p");
  dsg::testing::fault_point("q");
  EXPECT_EQ(dsg::testing::fault_point_hits("p"), 2u);
  EXPECT_EQ(dsg::testing::fault_point_hits("q"), 1u);
  const auto touched = dsg::testing::touched_fault_points();
  EXPECT_EQ(touched.size(), 2u);
}

TEST(FaultInjection, OnHitFiresExactlyOnce) {
  ScopedFaults faults(1, {throw_at("p", 2)});
  dsg::testing::fault_point("p");  // hit 0
  dsg::testing::fault_point("p");  // hit 1
  EXPECT_THROW(dsg::testing::fault_point("p"), std::bad_alloc);  // hit 2
  dsg::testing::fault_point("p");  // hit 3 — past the trigger
}

TEST(FaultInjection, PerPointHitCountersAreIndependent) {
  ScopedFaults faults(1, {throw_at("p", 1)});
  dsg::testing::fault_point("q");  // q's hit 0 must not advance p
  dsg::testing::fault_point("p");  // p hit 0
  EXPECT_THROW(dsg::testing::fault_point("p"), std::bad_alloc);  // p hit 1
}

TEST(FaultInjection, WildcardMatchesEveryPoint) {
  ScopedFaults faults(1, {throw_at("*", 0)});
  EXPECT_THROW(dsg::testing::fault_point("anything"), std::bad_alloc);
  // Each point has its own hit counter, so another point's hit 0 fires too.
  EXPECT_THROW(dsg::testing::fault_point("elsewhere"), std::bad_alloc);
}

TEST(FaultInjection, KeyedTriggerIgnoresHitOrder) {
  FaultSpec spec;
  spec.point = "p";
  spec.with_key = 7;
  ScopedFaults faults(1, {spec});
  dsg::testing::fault_point("p", 3);
  dsg::testing::fault_point("p", 9);
  EXPECT_THROW(dsg::testing::fault_point("p", 7), std::bad_alloc);
  dsg::testing::fault_point("p", 8);
  EXPECT_THROW(dsg::testing::fault_point("p", 7), std::bad_alloc);
}

TEST(FaultInjection, OneInEveryHitFiresAlways) {
  FaultSpec spec;
  spec.point = "p";
  spec.one_in = 1;
  ScopedFaults faults(1, {spec});
  for (int i = 0; i < 5; ++i) {
    EXPECT_THROW(dsg::testing::fault_point("p"), std::bad_alloc);
  }
}

TEST(FaultInjection, OneInPatternIsSeedDeterministic) {
  FaultSpec spec;
  spec.point = "p";
  spec.one_in = 3;
  auto pattern_for_seed = [&](std::uint64_t seed) {
    ScopedFaults faults(seed, {spec});
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      bool hit = false;
      try {
        dsg::testing::fault_point("p");
      } catch (const std::bad_alloc&) {
        hit = true;
      }
      fired.push_back(hit);
    }
    return fired;
  };
  const auto a = pattern_for_seed(42);
  const auto b = pattern_for_seed(42);
  EXPECT_EQ(a, b);  // replayable
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);  // it does fire...
  EXPECT_NE(std::count(a.begin(), a.end(), false), 0);  // ...but not always
}

TEST(FaultInjection, DelayActionSleepsInsteadOfThrowing) {
  FaultSpec spec;
  spec.point = "p";
  spec.one_in = 1;
  spec.action = FaultSpec::Action::kDelay;
  spec.delay = std::chrono::microseconds(50);
  ScopedFaults faults(1, {spec});
  dsg::testing::fault_point("p");  // must return, not throw
  EXPECT_EQ(dsg::testing::fault_point_hits("p"), 1u);
}

// --- Allocation-failure sweep: every algorithm's yield points. ---------------
//
// For each (algorithm, fault point) pair: inject a bad_alloc at an early
// hit, require the solve to surface it as an exception (never a terminate,
// a deadlock, or a leak — ASan/TSan enforce the latter two), then clear
// faults and require the SAME solver to produce exact distances.  Recovery
// is the sharp edge: a throw must not leave a stale workspace behind.

struct SweepCase {
  Algorithm algorithm;
  const char* point;
};

void check_throw_then_recover(const SweepCase& c, std::int64_t hit) {
  SCOPED_TRACE(std::string(c.point) + " hit " + std::to_string(hit));
  const auto g = dsg::test::diamond_graph();
  SsspSolver solver = make_solver(c.algorithm, g);
  {
    ScopedFaults faults(1, {throw_at(c.point, hit)});
    EXPECT_THROW(solver.solve(0), std::bad_alloc);
  }
  SsspResult r = solver.solve(0);
  EXPECT_EQ(r.status, SsspStatus::kComplete);
  dsg::test::expect_distances(r.dist, dsg::test::diamond_distances_from_0(),
                              "recovery");
}

TEST(FaultSweep, BucketsRound) {
  check_throw_then_recover({Algorithm::kBuckets, "buckets/round"}, 0);
  check_throw_then_recover({Algorithm::kBuckets, "buckets/round"}, 2);
}

TEST(FaultSweep, FusedRound) {
  check_throw_then_recover({Algorithm::kFused, "fused/round"}, 0);
  check_throw_then_recover({Algorithm::kFused, "fused/round"}, 2);
}

TEST(FaultSweep, GraphblasRound) {
  check_throw_then_recover({Algorithm::kGraphblas, "graphblas/round"}, 0);
}

TEST(FaultSweep, GraphblasSelectRound) {
  check_throw_then_recover(
      {Algorithm::kGraphblasSelect, "graphblas_select/round"}, 0);
}

TEST(FaultSweep, CapiRound) {
  // The capi core owns eight GrB_Vector handles; the throw path must free
  // them all (ASan leak check is the assertion that matters here).
  check_throw_then_recover({Algorithm::kCapi, "capi/round"}, 0);
  check_throw_then_recover({Algorithm::kCapi, "capi/round"}, 1);
}

#if defined(DSG_HAVE_OPENMP)
TEST(FaultSweep, OpenmpRound) {
  // The throw happens inside an OpenMP single block: it must be captured
  // and rethrown after the region, never allowed to terminate the process.
  check_throw_then_recover({Algorithm::kOpenmp, "openmp/round"}, 0);
  check_throw_then_recover({Algorithm::kOpenmp, "openmp/round"}, 2);
}
#endif

TEST(FaultSweep, DijkstraSettle) {
  check_throw_then_recover({Algorithm::kDijkstra, "dijkstra/settle"}, 0);
  check_throw_then_recover({Algorithm::kDijkstra, "dijkstra/settle"}, 3);
}

TEST(FaultSweep, BellmanFordRelax) {
  check_throw_then_recover({Algorithm::kBellmanFord, "bellman_ford/relax"}, 0);
  check_throw_then_recover({Algorithm::kBellmanFord, "bellman_ford/relax"}, 3);
}

TEST(FaultSweep, SolverEntry) {
  check_throw_then_recover({Algorithm::kFused, "solver/solve"}, 0);
}

// The async engine cases: the faulting worker must record its failure and
// still reach both round barriers, or the sweep deadlocks right here.
TEST(FaultSweep, AsyncWorkerRound) {
  check_throw_then_recover({Algorithm::kDeltaSteppingAsync, "async/round"}, 0);
  check_throw_then_recover({Algorithm::kDeltaSteppingAsync, "async/round"}, 2);
  check_throw_then_recover({Algorithm::kRhoStepping, "async/round"}, 0);
}

TEST(FaultSweep, AsyncCoordinator) {
  check_throw_then_recover(
      {Algorithm::kDeltaSteppingAsync, "async/coordinate"}, 0);
  // rho = max(64, n/8) swallows the whole diamond in one round, so only
  // the first coordinate call is guaranteed.
  check_throw_then_recover({Algorithm::kRhoStepping, "async/coordinate"}, 0);
}

TEST(FaultSweep, AsyncEngineSurvivesRepeatedFaults) {
  // A larger graph and a probabilistic trigger: many rounds, many workers,
  // faults landing at schedule-dependent moments.  Every iteration must
  // either complete exactly or throw cleanly — and the next one must be
  // exact after faults clear.
  const auto g = dsg::test::path_graph(512);
  SsspSolver solver = make_solver(Algorithm::kDeltaSteppingAsync, g);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    FaultSpec spec;
    spec.point = "async/round";
    spec.one_in = 37;
    ScopedFaults faults(seed, {spec});
    try {
      SsspResult r = solver.solve(0);
      DSG_CHECK_DISTANCES_ONLY(solver.plan().matrix(), 0, r.dist);
    } catch (const std::bad_alloc&) {
      // contained failure — fine
    }
  }
  dsg::testing::clear_faults();
  SsspResult r = solver.solve(0);
  dsg::test::expect_distances(r.dist, dsg::test::path_distances_from_0(512),
                              "after fault storm");
}

// --- Serving-layer yield points: throw, then recover. ------------------------

TEST(FaultSweep, ServingPlanLoad) {
  const std::string path = ::testing::TempDir() + "dsg_fault_plan.plan";
  dsg::GraphPlan plan(dsg::test::diamond_graph().to_matrix(), 1.0);
  plan.save(path);
  {
    ScopedFaults faults(1, {throw_at("serving/plan_load", 0)});
    EXPECT_THROW(dsg::GraphPlan::load(path), std::bad_alloc);
  }
  // The same file loads cleanly once faults clear — the throw left no
  // half-open mapping or stream behind.
  dsg::GraphPlan loaded = dsg::GraphPlan::load(path);
  EXPECT_EQ(loaded.fingerprint(), plan.fingerprint());
  std::remove(path.c_str());
}

TEST(FaultSweep, ServingPoolEnqueue) {
  dsg::serving::SsspServer server(dsg::test::diamond_graph().to_matrix());
  {
    ScopedFaults faults(1, {throw_at("serving/pool_enqueue", 0)});
    // The throw happens before a ticket is issued: nothing to redeem,
    // nothing counted as submitted.
    EXPECT_THROW(server.submit(0), std::bad_alloc);
  }
  EXPECT_EQ(server.stats().submitted, 0u);
  const dsg::sssp::QueryResult r = server.wait(server.submit(0));
  ASSERT_TRUE(r.ok()) << r.error;
  dsg::test::expect_distances(r.result.dist,
                              dsg::test::diamond_distances_from_0(),
                              "after enqueue fault");
}

TEST(FaultSweep, ServingCacheInsertFailureIsBestEffort) {
  dsg::serving::SsspServer server(dsg::test::diamond_graph().to_matrix());
  {
    ScopedFaults faults(1, {throw_at("serving/cache_insert", 0)});
    // The insert throw must NOT fail the query: the caller still gets its
    // exact distances; only the accounting records the dropped insert.
    const dsg::sssp::QueryResult r = server.wait(server.submit(0));
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.result.status, SsspStatus::kComplete);
    dsg::test::expect_distances(r.result.dist,
                                dsg::test::diamond_distances_from_0(),
                                "during insert fault");
  }
  dsg::serving::ServerStats stats = server.stats();
  EXPECT_EQ(stats.cache_insert_failures, 1u);
  EXPECT_EQ(stats.cache.entries, 0u);
  // Recovery: the next identical query misses (nothing was cached), solves,
  // and this time its insert lands.
  ASSERT_TRUE(server.wait(server.submit(0)).ok());
  stats = server.stats();
  EXPECT_EQ(stats.cache.entries, 1u);
  EXPECT_EQ(stats.completed, 2u);
}

// (serving/worker_query's isolation contract — one poisoned query fails
// alone, the pool recovers — is covered in test_serving.cpp.)

// --- Catalog honesty. --------------------------------------------------------

/// Touches every serving-layer fault point: a served query (pool_enqueue,
/// worker_query, cache_insert) and a plan-file load (plan_load).
void run_serving_workload() {
  dsg::serving::ServerOptions options;
  options.num_workers = 1;
  dsg::serving::SsspServer server(dsg::test::diamond_graph().to_matrix(),
                                  options);
  ASSERT_TRUE(server.wait(server.submit(0)).ok());
  const std::string path = ::testing::TempDir() + "dsg_catalog.plan";
  server.plan().save(path);
  dsg::GraphPlan::load(path);
  std::remove(path.c_str());
}

TEST(FaultCatalog, EveryCatalogPointIsReachable) {
  // Run the workloads that should visit every named point, with an empty
  // fault table (accounting only), then compare against the catalog.
  ScopedFaults faults(1, {});
  const auto g = dsg::test::diamond_graph();
  for (const auto& info : dsg::sssp::algorithm_registry()) {
    SsspSolver solver = make_solver(info.id, g);
    solver.solve(0);
  }
  {
    SsspSolver solver = make_solver(Algorithm::kFused, g);
    const std::vector<Index> sources = {0, 1};
    solver.solve_batch(sources, BatchOptions{});
  }
  {
    GrB_Vector v = nullptr;
    ASSERT_EQ(GrB_Vector_new(&v, 3), GrB_SUCCESS);
    GrB_Vector_free(&v);
  }
  run_serving_workload();

  const auto touched = dsg::testing::touched_fault_points();
  for (const char* name : dsg::testing::fault_point_catalog()) {
#if !defined(DSG_HAVE_OPENMP)
    if (std::string(name) == "openmp/round") continue;  // aliased to fused
#endif
    EXPECT_NE(std::find(touched.begin(), touched.end(), name), touched.end())
        << "catalog point never reached: " << name;
  }
}

TEST(FaultCatalog, TouchedPointsAreCatalogued) {
  // The inverse direction: production code must not grow ad-hoc fault
  // points that the catalog (and the docs) do not know about.
  ScopedFaults faults(1, {});
  const auto g = dsg::test::diamond_graph();
  for (const auto& info : dsg::sssp::algorithm_registry()) {
    SsspSolver solver = make_solver(info.id, g);
    solver.solve(0);
  }
  run_serving_workload();
  const auto catalog = dsg::testing::fault_point_catalog();
  for (const std::string& name : dsg::testing::touched_fault_points()) {
    EXPECT_NE(std::find_if(catalog.begin(), catalog.end(),
                           [&](const char* c) { return name == c; }),
              catalog.end())
        << "uncatalogued fault point: " << name;
  }
}

// --- C-API error mapping under injected faults. ------------------------------

TEST(CapiFaults, ObjectCreationMapsBadAllocToOutOfMemory) {
  {
    ScopedFaults faults(1, {throw_at("capi/object_new", 0)});
    GrB_Vector v = nullptr;
    EXPECT_EQ(GrB_Vector_new(&v, 4), GrB_OUT_OF_MEMORY);
    EXPECT_EQ(v, nullptr);
  }
  {
    ScopedFaults faults(1, {throw_at("capi/object_new", 0)});
    GrB_Matrix a = nullptr;
    EXPECT_EQ(GrB_Matrix_new(&a, 4, 4), GrB_OUT_OF_MEMORY);
    EXPECT_EQ(a, nullptr);
  }
  // After faults clear the same calls succeed.
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, 4), GrB_SUCCESS);
  {
    ScopedFaults faults(1, {throw_at("capi/object_new", 0)});
    GrB_Vector copy = nullptr;
    EXPECT_EQ(GrB_Vector_dup(&copy, v), GrB_OUT_OF_MEMORY);
    EXPECT_EQ(copy, nullptr);
  }
  GrB_Vector_free(&v);
}

class CapiSolverFaults : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto m = dsg::test::diamond_graph().to_matrix();
    ASSERT_EQ(GrB_Matrix_new(&a_, m.nrows(), m.ncols()), GrB_SUCCESS);
    m.for_each([&](Index r, Index c, const double& w) {
      GrB_Matrix_setElement_FP64(a_, w, r, c);
    });
    ASSERT_EQ(DsgSolver_new(&solver_, a_, DSG_SSSP_FUSED, 1.0), GrB_SUCCESS);
  }
  void TearDown() override {
    DsgSolver_free(&solver_);
    GrB_Matrix_free(&a_);
  }
  GrB_Matrix a_ = nullptr;
  DsgSolver solver_ = nullptr;
};

TEST_F(CapiSolverFaults, SolveMapsInjectedBadAllocToOutOfMemory) {
  ScopedFaults faults(1, {throw_at("solver/solve", 0)});
  std::vector<double> dist(5, -1.0);
  EXPECT_EQ(DsgSolver_solve(solver_, 0, dist.data()), GrB_OUT_OF_MEMORY);
}

TEST_F(CapiSolverFaults, ExpiredDeadlineReturnsTimeoutWithBounds) {
  DsgQueryControl control = nullptr;
  ASSERT_EQ(DsgQueryControl_new(&control), GrB_SUCCESS);
  ASSERT_EQ(DsgQueryControl_set_timeout(control, 0.0), GrB_SUCCESS);
  std::vector<double> dist(5, -1.0);
  EXPECT_EQ(DsgSolver_solve_opts(solver_, 0, dist.data(), control),
            DSG_TIMEOUT);
  // Partial result written: source settled, the rest still unreached.
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
  for (int v = 1; v < 5; ++v) EXPECT_EQ(dist[v], dsg::kInfDist);
  // reset re-arms the same handle for a complete run.
  ASSERT_EQ(DsgQueryControl_reset(control), GrB_SUCCESS);
  EXPECT_EQ(DsgSolver_solve_opts(solver_, 0, dist.data(), control),
            GrB_SUCCESS);
  const auto want = dsg::test::diamond_distances_from_0();
  for (int v = 0; v < 5; ++v) EXPECT_NEAR(dist[v], want[v], 1e-12);
  DsgQueryControl_free(&control);
  EXPECT_EQ(control, nullptr);
}

TEST_F(CapiSolverFaults, CancelledControlReturnsCancelled) {
  DsgQueryControl control = nullptr;
  ASSERT_EQ(DsgQueryControl_new(&control), GrB_SUCCESS);
  ASSERT_EQ(DsgQueryControl_cancel(control), GrB_SUCCESS);
  std::vector<double> dist(5, -1.0);
  EXPECT_EQ(DsgSolver_solve_opts(solver_, 0, dist.data(), control),
            DSG_CANCELLED);
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
  DsgQueryControl_free(&control);
}

TEST_F(CapiSolverFaults, NullControlRunsToCompletion) {
  std::vector<double> dist(5, -1.0);
  EXPECT_EQ(DsgSolver_solve_opts(solver_, 0, dist.data(), nullptr),
            GrB_SUCCESS);
  const auto want = dsg::test::diamond_distances_from_0();
  for (int v = 0; v < 5; ++v) EXPECT_NEAR(dist[v], want[v], 1e-12);
}

TEST_F(CapiSolverFaults, BatchOptsIsolatesThePoisonedQuery) {
  FaultSpec poison;
  poison.point = "solver/batch_query";
  poison.with_key = 2;
  ScopedFaults faults(1, {poison});

  const GrB_Index sources[] = {0, 2, 4};
  std::vector<double> dist(3 * 5, -1.0);
  std::vector<GrB_Info> statuses(3, GrB_PANIC);
  ASSERT_EQ(DsgSolver_solve_batch_opts(solver_, sources, 3, dist.data(),
                                       nullptr, statuses.data()),
            GrB_SUCCESS);
  EXPECT_EQ(statuses[0], GrB_SUCCESS);
  EXPECT_EQ(statuses[1], GrB_OUT_OF_MEMORY);
  EXPECT_EQ(statuses[2], GrB_SUCCESS);
  // The poisoned query's slice is untouched; its neighbors are complete.
  for (int v = 0; v < 5; ++v) EXPECT_EQ(dist[5 + v], -1.0);
  const auto want = dsg::test::diamond_distances_from_0();
  for (int v = 0; v < 5; ++v) EXPECT_NEAR(dist[v], want[v], 1e-12);
}

}  // namespace
