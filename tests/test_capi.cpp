// Unit tests for the GraphBLAS C API shim (capi/graphblas.h): object
// lifecycle, error codes, operator registration, operation semantics, and
// the Fig. 2 transcription's parity with the template implementation.
#include <gtest/gtest.h>

#include <vector>

#include "capi/graphblas.h"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "test_support.hpp"

namespace {

// RAII helpers keep the C tests leak-free without polluting the API.
struct VectorGuard {
  GrB_Vector v = nullptr;
  explicit VectorGuard(GrB_Index n) { GrB_Vector_new(&v, n); }
  ~VectorGuard() { GrB_Vector_free(&v); }
};

struct MatrixGuard {
  GrB_Matrix m = nullptr;
  MatrixGuard(GrB_Index r, GrB_Index c) { GrB_Matrix_new(&m, r, c); }
  ~MatrixGuard() { GrB_Matrix_free(&m); }
};

TEST(CapiVector, LifecycleAndElements) {
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, 5), GrB_SUCCESS);
  GrB_Index n = 0, nvals = 99;
  EXPECT_EQ(GrB_Vector_size(&n, v), GrB_SUCCESS);
  EXPECT_EQ(n, 5u);
  EXPECT_EQ(GrB_Vector_nvals(&nvals, v), GrB_SUCCESS);
  EXPECT_EQ(nvals, 0u);

  EXPECT_EQ(GrB_Vector_setElement_FP64(v, 2.5, 3), GrB_SUCCESS);
  double x = 0;
  EXPECT_EQ(GrB_Vector_extractElement_FP64(&x, v, 3), GrB_SUCCESS);
  EXPECT_DOUBLE_EQ(x, 2.5);
  EXPECT_EQ(GrB_Vector_extractElement_FP64(&x, v, 1), GrB_NO_VALUE);
  EXPECT_EQ(GrB_Vector_extractElement_FP64(&x, v, 9), GrB_INVALID_INDEX);

  EXPECT_EQ(GrB_Vector_removeElement(v, 3), GrB_SUCCESS);
  GrB_Vector_nvals(&nvals, v);
  EXPECT_EQ(nvals, 0u);

  EXPECT_EQ(GrB_Vector_free(&v), GrB_SUCCESS);
  EXPECT_EQ(v, nullptr);
}

TEST(CapiVector, NullPointerChecks) {
  EXPECT_EQ(GrB_Vector_new(nullptr, 5), GrB_NULL_POINTER);
  GrB_Index out;
  EXPECT_EQ(GrB_Vector_nvals(&out, nullptr), GrB_NULL_POINTER);
  EXPECT_EQ(GrB_Vector_setElement_FP64(nullptr, 1.0, 0), GrB_NULL_POINTER);
}

TEST(CapiVector, SetElementOutOfBounds) {
  VectorGuard v(3);
  EXPECT_EQ(GrB_Vector_setElement_FP64(v.v, 1.0, 3), GrB_INVALID_INDEX);
}

TEST(CapiVector, DupAndExtractTuples) {
  VectorGuard v(4);
  GrB_Vector_setElement_FP64(v.v, 1.0, 1);
  GrB_Vector_setElement_FP64(v.v, 3.0, 3);
  GrB_Vector copy = nullptr;
  ASSERT_EQ(GrB_Vector_dup(&copy, v.v), GrB_SUCCESS);
  GrB_Vector_setElement_FP64(v.v, 9.0, 0);  // must not affect the copy

  GrB_Index indices[4];
  double values[4];
  GrB_Index count = 4;
  ASSERT_EQ(GrB_Vector_extractTuples_FP64(indices, values, &count, copy),
            GrB_SUCCESS);
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(indices[0], 1u);
  EXPECT_DOUBLE_EQ(values[1], 3.0);
  GrB_Vector_free(&copy);
}

TEST(CapiVector, ExtractTuplesCapacityCheck) {
  VectorGuard v(4);
  GrB_Vector_setElement_FP64(v.v, 1.0, 0);
  GrB_Vector_setElement_FP64(v.v, 2.0, 1);
  GrB_Index indices[1];
  double values[1];
  GrB_Index count = 1;  // too small
  EXPECT_EQ(GrB_Vector_extractTuples_FP64(indices, values, &count, v.v),
            GrB_INVALID_VALUE);
}

TEST(CapiMatrix, LifecycleAndBuild) {
  MatrixGuard a(3, 3);
  GrB_Index dims = 0;
  GrB_Matrix_nrows(&dims, a.m);
  EXPECT_EQ(dims, 3u);

  const GrB_Index rows[] = {0, 1, 1};
  const GrB_Index cols[] = {1, 2, 2};
  const double vals[] = {1.5, 9.0, 2.5};  // duplicate at (1,2)
  ASSERT_EQ(GrB_Matrix_build_FP64(a.m, rows, cols, vals, 3, GrB_MIN_FP64),
            GrB_SUCCESS);
  GrB_Index nvals = 0;
  GrB_Matrix_nvals(&nvals, a.m);
  EXPECT_EQ(nvals, 2u);
  double x = 0;
  EXPECT_EQ(GrB_Matrix_extractElement_FP64(&x, a.m, 1, 2), GrB_SUCCESS);
  EXPECT_DOUBLE_EQ(x, 2.5);  // min dup
  EXPECT_EQ(GrB_Matrix_extractElement_FP64(&x, a.m, 2, 2), GrB_NO_VALUE);
}

TEST(CapiMatrix, BuildRejectsOutOfRange) {
  MatrixGuard a(2, 2);
  const GrB_Index rows[] = {5};
  const GrB_Index cols[] = {0};
  const double vals[] = {1.0};
  EXPECT_EQ(GrB_Matrix_build_FP64(a.m, rows, cols, vals, 1, GrB_NULL),
            GrB_INVALID_INDEX);
}

TEST(CapiDescriptor, SetFields) {
  GrB_Descriptor d = nullptr;
  ASSERT_EQ(GrB_Descriptor_new(&d), GrB_SUCCESS);
  EXPECT_EQ(GrB_Descriptor_set(d, GrB_OUTP, GrB_REPLACE), GrB_SUCCESS);
  EXPECT_EQ(GrB_Descriptor_set(d, GrB_MASK, GrB_COMP), GrB_SUCCESS);
  EXPECT_EQ(GrB_Descriptor_set(d, GrB_INP1, GrB_TRAN), GrB_SUCCESS);
  EXPECT_EQ(GrB_Descriptor_set(d, GrB_OUTP, GrB_TRAN), GrB_INVALID_VALUE);
  GrB_Descriptor_free(&d);
}

TEST(CapiApply, FilterIdiomWorksThroughTheCApi) {
  // The double-apply filter from the listing: predicate, then identity
  // under the produced mask.
  VectorGuard t(4), tgeq(4), tcomp(4);
  GrB_Vector_setElement_FP64(t.v, 0.5, 0);
  GrB_Vector_setElement_FP64(t.v, 2.5, 1);
  GrB_Vector_setElement_FP64(t.v, 3.5, 3);

  GrB_UnaryOp geq2 = nullptr;
  static auto geq2_fn = [](double x) { return x >= 2.0 ? 1.0 : 0.0; };
  GrB_UnaryOp_new(&geq2, +geq2_fn);
  ASSERT_EQ(GrB_Vector_apply(tgeq.v, GrB_NULL, GrB_NULL, geq2, t.v, GrB_NULL),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_apply(tcomp.v, tgeq.v, GrB_NULL, GrB_IDENTITY_FP64,
                             t.v, GrB_NULL),
            GrB_SUCCESS);
  GrB_Index nvals = 0;
  GrB_Vector_nvals(&nvals, tcomp.v);
  EXPECT_EQ(nvals, 2u);
  double x = 0;
  EXPECT_EQ(GrB_Vector_extractElement_FP64(&x, tcomp.v, 1), GrB_SUCCESS);
  EXPECT_DOUBLE_EQ(x, 2.5);
  GrB_UnaryOp_free(&geq2);
}

TEST(CapiEwise, UnionSemanticsAndPitfall) {
  // The Sec. V-B pass-through behaviour must survive the C boundary.
  VectorGuard treq(3), t(3), out(3);
  GrB_Vector_setElement_FP64(treq.v, 3.0, 0);
  GrB_Vector_setElement_FP64(t.v, 5.0, 0);
  GrB_Vector_setElement_FP64(t.v, 4.0, 1);
  ASSERT_EQ(GrB_eWiseAdd(out.v, GrB_NULL, GrB_NULL, GrB_LT_FP64, treq.v, t.v,
                         GrB_NULL),
            GrB_SUCCESS);
  double x = 0;
  EXPECT_EQ(GrB_Vector_extractElement_FP64(&x, out.v, 0), GrB_SUCCESS);
  EXPECT_DOUBLE_EQ(x, 1.0);  // genuine 3 < 5
  EXPECT_EQ(GrB_Vector_extractElement_FP64(&x, out.v, 1), GrB_SUCCESS);
  EXPECT_DOUBLE_EQ(x, 4.0);  // pass-through: t's value, truthy!
}

TEST(CapiEwise, MaskWorkaroundFixesPitfall) {
  VectorGuard treq(3), t(3), out(3);
  GrB_Vector_setElement_FP64(treq.v, 3.0, 0);
  GrB_Vector_setElement_FP64(t.v, 5.0, 0);
  GrB_Vector_setElement_FP64(t.v, 4.0, 1);
  GrB_Descriptor clear = nullptr;
  GrB_Descriptor_new(&clear);
  GrB_Descriptor_set(clear, GrB_OUTP, GrB_REPLACE);
  ASSERT_EQ(GrB_eWiseAdd(out.v, treq.v, GrB_NULL, GrB_LT_FP64, treq.v, t.v,
                         clear),
            GrB_SUCCESS);
  GrB_Index nvals = 0;
  GrB_Vector_nvals(&nvals, out.v);
  EXPECT_EQ(nvals, 1u);  // position 1 masked away
  GrB_Descriptor_free(&clear);
}

TEST(CapiVxm, MinPlusRelaxation) {
  MatrixGuard a(3, 3);
  GrB_Matrix_setElement_FP64(a.m, 2.0, 0, 1);
  GrB_Matrix_setElement_FP64(a.m, 3.0, 1, 2);
  VectorGuard t(3), req(3);
  GrB_Vector_setElement_FP64(t.v, 0.0, 0);
  ASSERT_EQ(GrB_vxm(req.v, GrB_NULL, GrB_NULL, GxB_MIN_PLUS_FP64, t.v, a.m,
                    GrB_NULL),
            GrB_SUCCESS);
  double x = 0;
  EXPECT_EQ(GrB_Vector_extractElement_FP64(&x, req.v, 1), GrB_SUCCESS);
  EXPECT_DOUBLE_EQ(x, 2.0);
  EXPECT_EQ(GrB_Vector_extractElement_FP64(&x, req.v, 2), GrB_NO_VALUE);
}

TEST(CapiVxm, DimensionMismatchReported) {
  MatrixGuard a(3, 3);
  VectorGuard u(2), w(3);
  EXPECT_EQ(GrB_vxm(w.v, GrB_NULL, GrB_NULL, GxB_MIN_PLUS_FP64, u.v, a.m,
                    GrB_NULL),
            GrB_DIMENSION_MISMATCH);
}

TEST(CapiReduce, SumWithMonoidIdentity) {
  VectorGuard v(4);
  GrB_Vector_setElement_FP64(v.v, 1.5, 0);
  GrB_Vector_setElement_FP64(v.v, 2.5, 2);
  double out = 0;
  ASSERT_EQ(GrB_Vector_reduce_FP64(&out, GrB_NULL, GrB_PLUS_FP64, 0.0, v.v,
                                   GrB_NULL),
            GrB_SUCCESS);
  EXPECT_DOUBLE_EQ(out, 4.0);
}

// --- The Fig. 2 transcription, end to end. --------------------------------------

TEST(CapiDeltaStepping, SolvesTheHandComputedDiamond) {
  auto r = dsg::delta_stepping_capi(dsg::test::diamond_graph().to_matrix(), 0,
                                    {});
  dsg::test::expect_distances(r.dist, dsg::test::diamond_distances_from_0(),
                              "capi diamond");
}

TEST(CapiDeltaStepping, MatchesDijkstraAcrossGraphsAndDeltas) {
  for (std::uint64_t seed : {3u, 5u}) {
    auto g = dsg::generate_connected_random(150, 300, seed);
    dsg::assign_uniform_weights(g, 0.1, 4.0, seed + 1);
    g.normalize();
    auto a = g.to_matrix();
    auto ref = dsg::dijkstra(a, 0);
    for (double delta : {0.5, 1.0, 5.0}) {
      dsg::DeltaSteppingOptions opt;
      opt.delta = delta;
      auto r = dsg::delta_stepping_capi(a, 0, opt);
      auto cmp = dsg::compare_distances(ref.dist, r.dist, 1e-9);
      EXPECT_TRUE(cmp.ok) << "seed " << seed << " delta " << delta << ": "
                          << cmp.message;
      auto val = dsg::validate_sssp(a, 0, r.dist);
      EXPECT_TRUE(val.ok) << val.message;
    }
  }
}

TEST(CapiDeltaStepping, StatsMatchTemplateImplementation) {
  auto g = dsg::generate_grid2d(16, 16);
  auto a = g.to_matrix();
  dsg::DeltaSteppingOptions opt;
  auto capi = dsg::delta_stepping_capi(a, 0, opt);
  // The transcription runs the same abstract algorithm, so its bucket and
  // phase counts must agree with the template GraphBLAS implementation.
  EXPECT_EQ(capi.stats.outer_iterations, 31u);  // grid diameter 30 -> 31
  EXPECT_GE(capi.stats.light_phases, capi.stats.outer_iterations);
}

}  // namespace
