// Unit tests for grb::reduce — scalar and row/column reductions.
#include <gtest/gtest.h>

#include "graphblas/graphblas.hpp"

namespace {

using grb::Index;

TEST(ReduceVector, PlusSumsStoredElements) {
  grb::Vector<double> v(5);
  v.set_element(0, 1.0);
  v.set_element(2, 2.5);
  v.set_element(4, 3.5);
  EXPECT_DOUBLE_EQ(grb::reduce(grb::plus_monoid<double>(), v), 7.0);
}

TEST(ReduceVector, EmptyGivesIdentity) {
  grb::Vector<double> v(5);
  EXPECT_DOUBLE_EQ(grb::reduce(grb::plus_monoid<double>(), v), 0.0);
  EXPECT_EQ(grb::reduce(grb::min_monoid<double>(), v),
            grb::infinity_value<double>());
}

TEST(ReduceVector, MinFindsSmallest) {
  grb::Vector<double> v(5);
  v.set_element(1, 4.0);
  v.set_element(3, -2.0);
  EXPECT_DOUBLE_EQ(grb::reduce(grb::min_monoid<double>(), v), -2.0);
}

TEST(ReduceVector, LorDetectsAnyTruthy) {
  grb::Vector<bool> v(4);
  v.set_element(0, false);
  EXPECT_FALSE(grb::reduce(grb::lor_monoid<bool>(), v));
  v.set_element(2, true);
  EXPECT_TRUE(grb::reduce(grb::lor_monoid<bool>(), v));
}

TEST(ReduceVector, SetCardinalityIdiom) {
  // |S| as reduce(plus) over a 0/1 vector of set membership.
  grb::Vector<int> s(6);
  s.set_element(0, 1);
  s.set_element(3, 1);
  s.set_element(5, 1);
  EXPECT_EQ(grb::reduce(grb::plus_monoid<int>(), s), 3);
}

TEST(ReduceVector, WithAccumIntoScalar) {
  grb::Vector<double> v(3);
  v.set_element(0, 2.0);
  double out = 10.0;
  grb::reduce(out, grb::Plus<double>{}, grb::plus_monoid<double>(), v);
  EXPECT_DOUBLE_EQ(out, 12.0);
  grb::reduce(out, grb::NoAccumulate{}, grb::plus_monoid<double>(), v);
  EXPECT_DOUBLE_EQ(out, 2.0);
}

TEST(ReduceMatrix, ScalarOverAllEntries) {
  grb::Matrix<double> m(3, 3);
  m.set_element(0, 1, 1.0);
  m.set_element(2, 0, 2.0);
  EXPECT_DOUBLE_EQ(grb::reduce(grb::plus_monoid<double>(), m), 3.0);
  EXPECT_DOUBLE_EQ(grb::reduce(grb::max_monoid<double>(), m), 2.0);
}

TEST(ReduceMatrix, RowWiseIntoVector) {
  grb::Matrix<double> m(3, 4);
  m.set_element(0, 0, 1.0);
  m.set_element(0, 3, 2.0);
  m.set_element(2, 1, 5.0);
  grb::Vector<double> w(3);
  grb::reduce(w, grb::plus_monoid<double>(), m);
  EXPECT_DOUBLE_EQ(*w.extract_element(0), 3.0);
  EXPECT_FALSE(w.has_element(1));  // empty row -> no entry
  EXPECT_DOUBLE_EQ(*w.extract_element(2), 5.0);
}

TEST(ReduceMatrix, ColumnWiseViaTransposeDescriptor) {
  grb::Matrix<double> m(3, 4);
  m.set_element(0, 0, 1.0);
  m.set_element(2, 0, 2.0);
  m.set_element(1, 3, 7.0);
  grb::Vector<double> w(4);
  grb::reduce(w, grb::NoMask{}, grb::NoAccumulate{},
              grb::plus_monoid<double>(), m,
              grb::Descriptor{.transpose_in0 = true});
  EXPECT_DOUBLE_EQ(*w.extract_element(0), 3.0);
  EXPECT_DOUBLE_EQ(*w.extract_element(3), 7.0);
  EXPECT_EQ(w.nvals(), 2u);
}

TEST(ReduceMatrix, OutDegreeIdiom) {
  // Out-degree vector: row-reduce over (plus, One-applied) entries.
  grb::Matrix<double> m(3, 3);
  m.set_element(0, 1, 5.0);
  m.set_element(0, 2, 7.0);
  m.set_element(1, 0, 9.0);
  grb::Matrix<double> ones(3, 3);
  grb::apply(ones, grb::One<double>{}, m);
  grb::Vector<double> deg(3);
  grb::reduce(deg, grb::plus_monoid<double>(), ones);
  EXPECT_DOUBLE_EQ(*deg.extract_element(0), 2.0);
  EXPECT_DOUBLE_EQ(*deg.extract_element(1), 1.0);
}

TEST(ReduceMatrix, MaskOnRowReduction) {
  grb::Matrix<double> m(3, 3);
  m.set_element(0, 0, 1.0);
  m.set_element(1, 1, 2.0);
  m.set_element(2, 2, 3.0);
  grb::Vector<bool> mask(3);
  mask.set_element(1, true);
  grb::Vector<double> w(3);
  grb::reduce(w, mask, grb::NoAccumulate{}, grb::plus_monoid<double>(), m,
              grb::replace_desc);
  EXPECT_EQ(w.nvals(), 1u);
  EXPECT_DOUBLE_EQ(*w.extract_element(1), 2.0);
}

TEST(ReduceMatrix, DimensionCheck) {
  grb::Matrix<double> m(3, 4);
  grb::Vector<double> w(4);  // wrong: must match nrows
  EXPECT_THROW(grb::reduce(w, grb::plus_monoid<double>(), m),
               grb::DimensionMismatch);
}

}  // namespace
