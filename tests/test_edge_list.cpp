// Unit tests for dsg::EdgeList — normalization, symmetrization, matrix
// round trips.
#include <gtest/gtest.h>

#include "graph/edge_list.hpp"

namespace {

using dsg::EdgeList;
using grb::Index;

TEST(EdgeList, AddEdgeGrowsVertexCount) {
  EdgeList g;
  g.add_edge(0, 5, 2.0);
  EXPECT_EQ(g.num_vertices(), 6u);
  g.add_edge(9, 1);
  EXPECT_EQ(g.num_vertices(), 10u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(g.edges()[1].weight, 1.0);  // default weight
}

TEST(EdgeList, SymmetrizeAddsReverses) {
  EdgeList g(3);
  g.add_edge(0, 1, 2.5);
  g.add_edge(1, 2, 3.5);
  g.symmetrize();
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(g.is_symmetric());
}

TEST(EdgeList, SymmetrizeSkipsSelfLoops) {
  EdgeList g(2);
  g.add_edge(1, 1, 9.0);
  g.symmetrize();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(EdgeList, NormalizeRemovesSelfLoopsAndDedupsByMin) {
  EdgeList g(3);
  g.add_edge(0, 0, 1.0);  // self loop: dropped (paper: empty diagonal)
  g.add_edge(0, 1, 5.0);
  g.add_edge(0, 1, 3.0);  // duplicate: min weight wins
  g.add_edge(2, 1, 4.0);
  g.normalize();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(g.edges()[0].weight, 3.0);
}

TEST(EdgeList, NormalizeSortsEdges) {
  EdgeList g(4);
  g.add_edge(3, 0);
  g.add_edge(0, 2);
  g.add_edge(0, 1);
  g.normalize();
  EXPECT_EQ(g.edges()[0].dst, 1u);
  EXPECT_EQ(g.edges()[1].dst, 2u);
  EXPECT_EQ(g.edges()[2].src, 3u);
}

TEST(EdgeList, IsSymmetricRequiresMatchingWeights) {
  EdgeList g(2);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 0, 2.0);  // reverse exists but weight differs
  EXPECT_FALSE(g.is_symmetric());
}

TEST(EdgeList, ToMatrixPlacesWeights) {
  EdgeList g(3);
  g.add_edge(0, 1, 1.5);
  g.add_edge(2, 0, 2.5);
  auto a = g.to_matrix();
  EXPECT_EQ(a.nrows(), 3u);
  EXPECT_EQ(a.nvals(), 2u);
  EXPECT_DOUBLE_EQ(*a.extract_element(0, 1), 1.5);
  EXPECT_DOUBLE_EQ(*a.extract_element(2, 0), 2.5);
}

TEST(EdgeList, ToMatrixDuplicatesKeepMin) {
  EdgeList g(2);
  g.add_edge(0, 1, 5.0);
  g.add_edge(0, 1, 2.0);
  auto a = g.to_matrix();
  EXPECT_DOUBLE_EQ(*a.extract_element(0, 1), 2.0);
}

TEST(EdgeList, MatrixRoundTrip) {
  EdgeList g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(3, 0, 3.0);
  g.normalize();
  auto back = EdgeList::from_matrix(g.to_matrix());
  EXPECT_EQ(back, g);
}

TEST(EdgeList, MaxVertexPlusOne) {
  EdgeList g(100);  // declared larger than used
  g.add_edge(3, 7);
  EXPECT_EQ(g.max_vertex_plus_one(), 8u);
  EXPECT_EQ(g.num_vertices(), 100u);  // declared count unchanged
}

TEST(EdgeList, EmptyGraphToMatrix) {
  EdgeList g(5);
  auto a = g.to_matrix();
  EXPECT_EQ(a.nrows(), 5u);
  EXPECT_EQ(a.nvals(), 0u);
}

}  // namespace
