// test_lock_audit.cpp — proves the lockdep auditor fires on the
// deliberate violations and stays silent on well-ordered locking.
//
// The suite runs meaningfully only when the auditor is armed
// (DSG_AUDIT_INVARIANTS builds); unarmed builds compile AuditedMutex to a
// plain std::mutex wrapper, so every detection test GTEST_SKIPs — the
// deliberate-inversion pattern is never even performed there (under TSan
// its lock-order heuristics would flag it, correctly, for the wrong
// test).
//
// Tests install a capturing handler so a detected violation records
// instead of aborting; each test resets the global order graph first so
// one test's deliberate edges cannot poison the next.
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "testing/lock_audit.hpp"

namespace {

using dsg::testing::AuditedConditionVariable;
using dsg::testing::AuditedLock;
using dsg::testing::AuditedMutex;
using dsg::testing::LockOrderViolation;

// The capturing handler's mailbox.  One test runs at a time and the
// handler fires on whichever thread violated, so a plain global guarded
// by the test's join points is enough.
std::vector<LockOrderViolation> g_captured;

void capture_handler(const LockOrderViolation& v) { g_captured.push_back(v); }

class LockAuditTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!dsg::testing::lock_audit_armed()) {
      GTEST_SKIP() << "lock audit unarmed (DSG_AUDIT_INVARIANTS off)";
    }
    dsg::testing::lock_audit_reset();
    g_captured.clear();
    dsg::testing::set_lock_audit_handler(&capture_handler);
  }
  void TearDown() override {
    if (dsg::testing::lock_audit_armed()) {
      dsg::testing::set_lock_audit_handler(nullptr);
      dsg::testing::lock_audit_reset();
    }
  }
};

TEST_F(LockAuditTest, DeliberateInversionFires) {
  AuditedMutex a{"test::A"};
  AuditedMutex b{"test::B"};

  // Thread 1 records the order A -> B.
  std::thread t1([&] {
    std::lock_guard<AuditedMutex> ga(a);
    std::lock_guard<AuditedMutex> gb(b);
  });
  t1.join();
  ASSERT_TRUE(g_captured.empty()) << g_captured.front().report;

  // Thread 2 takes B -> A: never an actual deadlock here (t1 is long
  // gone), but exactly the order lockdep must flag.
  std::thread t2([&] {
    std::lock_guard<AuditedMutex> gb(b);
    std::lock_guard<AuditedMutex> ga(a);
  });
  t2.join();

  ASSERT_EQ(1U, g_captured.size());
  EXPECT_EQ(LockOrderViolation::Kind::kOrderInversion, g_captured[0].kind);
  // The report must name both chains — this thread's and the recorded
  // opposite order.
  EXPECT_NE(std::string::npos, g_captured[0].report.find("test::B -> test::A"))
      << g_captured[0].report;
  EXPECT_NE(std::string::npos, g_captured[0].report.find("test::A -> test::B"))
      << g_captured[0].report;
}

TEST_F(LockAuditTest, ThreeLockCycleFires) {
  AuditedMutex a{"cycle::A"};
  AuditedMutex b{"cycle::B"};
  AuditedMutex c{"cycle::C"};

  auto take_pair = [](AuditedMutex& first, AuditedMutex& second) {
    std::thread t([&] {
      std::lock_guard<AuditedMutex> g1(first);
      std::lock_guard<AuditedMutex> g2(second);
    });
    t.join();
  };
  take_pair(a, b);  // A -> B
  take_pair(b, c);  // B -> C
  ASSERT_TRUE(g_captured.empty()) << g_captured.front().report;
  take_pair(c, a);  // C -> A closes the cycle through B

  ASSERT_EQ(1U, g_captured.size());
  EXPECT_EQ(LockOrderViolation::Kind::kOrderInversion, g_captured[0].kind);
}

// audit_id() and the detail:: hooks only exist in armed builds, so this
// one test is compiled out (not just skipped) otherwise.
#ifdef DSG_AUDIT_INVARIANTS
TEST_F(LockAuditTest, RecursiveLockFires) {
  AuditedMutex a{"recursive::A"};
  std::thread t([&] {
    a.lock();
    // Note the intent to re-acquire: the auditor fires here, BEFORE the
    // call would deadlock, and the capturing handler lets us back out.
    dsg::testing::detail::lock_audit_note_acquire(a.audit_id());
    a.unlock();
  });
  t.join();
  ASSERT_EQ(1U, g_captured.size());
  EXPECT_EQ(LockOrderViolation::Kind::kRecursiveLock, g_captured[0].kind);
  EXPECT_NE(std::string::npos, g_captured[0].report.find("recursive::A"))
      << g_captured[0].report;
}
#endif  // DSG_AUDIT_INVARIANTS

TEST_F(LockAuditTest, WaitWhileHoldingSecondLockFires) {
  AuditedMutex outer{"wait::outer"};
  AuditedMutex inner{"wait::inner"};
  AuditedConditionVariable cv;

  std::thread t([&] {
    std::lock_guard<AuditedMutex> go(outer);
    AuditedLock li(inner);
    // wait_for with an immediate-true predicate: the violation is
    // flagged on ENTRY (outer is still held), and the bounded wait keeps
    // the test from blocking on a never-signaled condvar.
    (void)cv.wait_for(li, std::chrono::milliseconds(1),
                      [] { return true; });
  });
  t.join();

  ASSERT_EQ(1U, g_captured.size());
  EXPECT_EQ(LockOrderViolation::Kind::kWaitWhileHolding, g_captured[0].kind);
  EXPECT_NE(std::string::npos, g_captured[0].report.find("wait::outer"))
      << g_captured[0].report;
  EXPECT_NE(std::string::npos, g_captured[0].report.find("wait::inner"))
      << g_captured[0].report;
}

TEST_F(LockAuditTest, ConsistentOrderStaysSilent) {
  AuditedMutex a{"ok::A"};
  AuditedMutex b{"ok::B"};
  AuditedConditionVariable cv;

  // Many threads, always A -> B, plus single-lock condvar waits: the
  // auditor must not false-positive on heavy consistent traffic.
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      for (int k = 0; k < 100; ++k) {
        std::lock_guard<AuditedMutex> ga(a);
        std::lock_guard<AuditedMutex> gb(b);
      }
      AuditedLock lock(a);
      (void)cv.wait_for(lock, std::chrono::milliseconds(1),
                        [] { return true; });
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_TRUE(g_captured.empty())
      << "unexpected violation: " << g_captured.front().report;
}

TEST_F(LockAuditTest, ResetClearsRecordedOrders) {
  AuditedMutex a{"reset::A"};
  AuditedMutex b{"reset::B"};
  std::thread t1([&] {
    std::lock_guard<AuditedMutex> ga(a);
    std::lock_guard<AuditedMutex> gb(b);
  });
  t1.join();
  dsg::testing::lock_audit_reset();
  // Post-reset the opposite order is just a fresh first observation.
  std::thread t2([&] {
    std::lock_guard<AuditedMutex> gb(b);
    std::lock_guard<AuditedMutex> ga(a);
  });
  t2.join();
  EXPECT_TRUE(g_captured.empty())
      << "stale order survived reset: " << g_captured.front().report;
}

TEST_F(LockAuditTest, DestroyedMutexLeavesNoStaleEdges) {
  AuditedMutex a{"lifetime::A"};
  {
    AuditedMutex tmp{"lifetime::tmp"};
    std::thread t([&] {
      std::lock_guard<AuditedMutex> ga(a);
      std::lock_guard<AuditedMutex> gt(tmp);
    });
    t.join();
  }
  // tmp is gone; a NEW mutex (likely recycling tmp's id) must not
  // inherit its ordering constraints.
  AuditedMutex fresh{"lifetime::fresh"};
  std::thread t2([&] {
    std::lock_guard<AuditedMutex> gf(fresh);
    std::lock_guard<AuditedMutex> ga(a);
  });
  t2.join();
  EXPECT_TRUE(g_captured.empty())
      << "stale edge from destroyed mutex: " << g_captured.front().report;
}

TEST(LockAuditUnarmed, WrappersWorkAsPlainPrimitives) {
  // Compile-and-run smoke for BOTH arms: lock/unlock, try_lock, condvar
  // wait with predicate.  In unarmed builds this is the entire suite.
  AuditedMutex mu{"smoke::mu"};
  AuditedConditionVariable cv;
  bool flag = false;

  std::thread setter([&] {
    std::lock_guard<AuditedMutex> g(mu);
    flag = true;
    cv.notify_all();
  });
  {
    AuditedLock lock(mu);
    cv.wait(lock, [&] { return flag; });
    EXPECT_TRUE(flag);
  }
  setter.join();

  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

}  // namespace
