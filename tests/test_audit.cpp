// Tests for the debug invariant auditor (graphblas/audit.hpp): every
// checker fires on deliberately corrupted data, stays silent on healthy
// objects, and the object-level hooks (Vector, Matrix, GraphPlan) report
// through the same AuditError.  The checkers are always compiled, so this
// suite runs identically with and without -DDSG_AUDIT_INVARIANTS=ON.
#include <gtest/gtest.h>

#include <cstdint>
#include <type_traits>
#include <vector>

#include "graphblas/audit.hpp"
#include "graphblas/graphblas.hpp"
#include "sssp/plan.hpp"

namespace {

using grb::Index;
using grb::audit::AuditError;
using grb::detail::BitmapWord;

// AuditError deliberately sits outside the grb::Error hierarchy: the C API
// boundary maps grb::Error to recoverable GrB_Info codes, and a corrupt
// library state must never be reported as a recoverable bad-input outcome.
static_assert(!std::is_base_of_v<grb::Error, AuditError>);
static_assert(std::is_base_of_v<std::logic_error, AuditError>);

// --- check_bitmap -----------------------------------------------------------

TEST(CheckBitmap, HealthyIncludingWordBoundaries) {
  for (const Index n : {Index{1}, Index{63}, Index{64}, Index{65}, Index{70},
                        Index{128}}) {
    std::vector<BitmapWord> words(grb::detail::bitmap_words(n), 0);
    grb::detail::bitmap_set(words.data(), 0);
    grb::detail::bitmap_set(words.data(), n - 1);
    const Index nvals = n == 1 ? 1 : 2;
    EXPECT_NO_THROW(grb::audit::check_bitmap(words, n, nvals, "t"));
  }
  EXPECT_NO_THROW(
      grb::audit::check_bitmap(std::vector<BitmapWord>{}, 0, 0, "t"));
}

TEST(CheckBitmap, FiresOnNonzeroTailPadding) {
  const Index n = 70;  // valid bits 0..69; padding bits 70..127
  std::vector<BitmapWord> words(grb::detail::bitmap_words(n), 0);
  grb::detail::bitmap_set(words.data(), 69);
  ASSERT_NO_THROW(grb::audit::check_bitmap(words, n, 1, "t"));
  words[1] |= BitmapWord{1} << 7;  // logical position 71: past the dimension
  EXPECT_THROW(grb::audit::check_bitmap(words, n, 2, "t"), AuditError);
}

TEST(CheckBitmap, FiresOnPopcountMismatch) {
  const Index n = 64;
  std::vector<BitmapWord> words(1, 0);
  grb::detail::bitmap_set(words.data(), 3);
  grb::detail::bitmap_set(words.data(), 40);
  EXPECT_NO_THROW(grb::audit::check_bitmap(words, n, 2, "t"));
  EXPECT_THROW(grb::audit::check_bitmap(words, n, 3, "t"), AuditError);
}

TEST(CheckBitmap, FiresOnWrongWordCount) {
  std::vector<BitmapWord> words(2, 0);
  EXPECT_THROW(grb::audit::check_bitmap(words, 64, 0, "t"), AuditError);
}

// --- check_sorted_coords ----------------------------------------------------

TEST(CheckSortedCoords, HealthyAndEmpty) {
  const std::vector<Index> ind{0, 3, 9};
  EXPECT_NO_THROW(grb::audit::check_sorted_coords(ind, 10, 3, "t"));
  EXPECT_NO_THROW(
      grb::audit::check_sorted_coords(std::vector<Index>{}, 10, 0, "t"));
}

TEST(CheckSortedCoords, FiresOnUnsortedDuplicateOutOfRangeAndLength) {
  const std::vector<Index> unsorted{3, 1, 5};
  EXPECT_THROW(grb::audit::check_sorted_coords(unsorted, 10, 3, "t"),
               AuditError);
  const std::vector<Index> duplicate{1, 4, 4};
  EXPECT_THROW(grb::audit::check_sorted_coords(duplicate, 10, 3, "t"),
               AuditError);
  const std::vector<Index> out_of_range{1, 4, 10};
  EXPECT_THROW(grb::audit::check_sorted_coords(out_of_range, 10, 3, "t"),
               AuditError);
  const std::vector<Index> fine{1, 4, 9};
  EXPECT_THROW(grb::audit::check_sorted_coords(fine, 10, 2, "t"), AuditError);
}

// --- check_csr --------------------------------------------------------------

TEST(CheckCsr, HealthyAndDegenerate) {
  // 3x4: row0 = {1, 3}, row1 = {}, row2 = {0}.
  const std::vector<Index> ptr{0, 2, 2, 3};
  const std::vector<Index> col{1, 3, 0};
  EXPECT_NO_THROW(grb::audit::check_csr(ptr, col, 3, 3, 4, "t"));
  // Default-constructed matrices carry no offsets array at all.
  EXPECT_NO_THROW(grb::audit::check_csr(std::vector<Index>{},
                                        std::vector<Index>{}, 0, 0, 0, "t"));
}

TEST(CheckCsr, FiresOnBrokenOffsets) {
  const std::vector<Index> col{1, 3, 0};
  const std::vector<Index> nonmonotone{0, 2, 1, 3};
  EXPECT_THROW(grb::audit::check_csr(nonmonotone, col, 3, 3, 4, "t"),
               AuditError);
  const std::vector<Index> bad_front{1, 2, 2, 3};
  EXPECT_THROW(grb::audit::check_csr(bad_front, col, 3, 3, 4, "t"),
               AuditError);
  const std::vector<Index> bad_back{0, 2, 2, 4};
  EXPECT_THROW(grb::audit::check_csr(bad_back, col, 3, 3, 4, "t"), AuditError);
  const std::vector<Index> wrong_len{0, 2, 3};
  EXPECT_THROW(grb::audit::check_csr(wrong_len, col, 3, 3, 4, "t"),
               AuditError);
  // Rise-then-fall: monotone at every checked prefix, front == 0 and
  // back == nnz both hold, but row 0's end offset points far past
  // col_ind.  The checker must fail on the BOUND (not read col_ind out
  // of bounds at the risen row before noticing the later fall) — this
  // is the adversarial shape a forged plan file feeds the auditor.
  const std::vector<Index> rise_then_fall{0, 1000, 2, 3};
  EXPECT_THROW(grb::audit::check_csr(rise_then_fall, col, 3, 3, 4, "t"),
               AuditError);
}

TEST(CheckCsr, FiresOnBrokenColumns) {
  const std::vector<Index> ptr{0, 2, 2, 3};
  const std::vector<Index> out_of_range{1, 4, 0};
  EXPECT_THROW(grb::audit::check_csr(ptr, out_of_range, 3, 3, 4, "t"),
               AuditError);
  const std::vector<Index> unsorted_row{3, 1, 0};
  EXPECT_THROW(grb::audit::check_csr(ptr, unsorted_row, 3, 3, 4, "t"),
               AuditError);
  const std::vector<Index> col{1, 3, 0};
  EXPECT_THROW(grb::audit::check_csr(ptr, col, 2, 3, 4, "t"), AuditError);
}

// --- check_light_heavy ------------------------------------------------------

// 2x2 graph: row0 = {(1, 0.5), (0, 3.0)} split at delta=1 into light {0.5}
// and heavy {3.0}; row1 = {(0, 1.0)} all light (1.0 <= delta).
struct SplitFixture {
  std::vector<Index> a_ptr{0, 2, 3};
  std::vector<double> a_val{0.5, 3.0, 1.0};
  std::vector<Index> light_ptr{0, 1, 2};
  std::vector<double> light_val{0.5, 1.0};
  std::vector<Index> heavy_ptr{0, 1, 1};
  std::vector<double> heavy_val{3.0};
  double delta = 1.0;

  void check() const {
    grb::audit::check_light_heavy(a_ptr, a_val, light_ptr, light_val,
                                  heavy_ptr, heavy_val, delta, "t");
  }
};

TEST(CheckLightHeavy, HealthyPartition) {
  EXPECT_NO_THROW(SplitFixture{}.check());
}

TEST(CheckLightHeavy, FiresOnMisfiledWeights) {
  SplitFixture heavy_in_light;
  heavy_in_light.light_val[0] = 2.0;  // > delta, filed as light
  EXPECT_THROW(heavy_in_light.check(), AuditError);

  SplitFixture light_in_heavy;
  light_in_heavy.heavy_val[0] = 0.25;  // <= delta, filed as heavy
  EXPECT_THROW(light_in_heavy.check(), AuditError);

  SplitFixture zero_as_light;
  zero_as_light.light_val[0] = 0.0;  // zero weights belong to neither half
  EXPECT_THROW(zero_as_light.check(), AuditError);
}

TEST(CheckLightHeavy, FiresOnLostOrInventedEdges) {
  SplitFixture lost_edge;  // row 0 drops its heavy edge entirely
  lost_edge.heavy_ptr = {0, 0, 0};
  lost_edge.heavy_val = {};
  EXPECT_THROW(lost_edge.check(), AuditError);

  SplitFixture wrong_dim;
  wrong_dim.light_ptr = {0, 2};
  EXPECT_THROW(wrong_dim.check(), AuditError);
}

// --- Vector::check_invariants ----------------------------------------------

grb::Vector<double> sparse_vector_0_3_9() {
  grb::Vector<double> v(10);
  v.mutable_indices() = {0, 3, 9};
  v.mutable_values() = {1.0, 2.0, 3.0};
  return v;
}

TEST(VectorAudit, HealthySparseAndDense) {
  grb::Vector<double> v = sparse_vector_0_3_9();
  EXPECT_NO_THROW(v.check_invariants("t"));
  v.to_dense();
  ASSERT_TRUE(v.mirror_is_valid());  // to_dense keeps the sorted form live
  EXPECT_NO_THROW(v.check_invariants("t"));
  v.to_sparse();
  EXPECT_NO_THROW(v.check_invariants("t"));
}

TEST(VectorAudit, FiresOnCorruptSparseCoordinates) {
  grb::Vector<double> unsorted = sparse_vector_0_3_9();
  unsorted.mutable_indices() = {3, 0, 9};
  EXPECT_THROW(unsorted.check_invariants("t"), AuditError);

  grb::Vector<double> out_of_range = sparse_vector_0_3_9();
  out_of_range.mutable_indices() = {0, 3, 10};
  EXPECT_THROW(out_of_range.check_invariants("t"), AuditError);

  grb::Vector<double> length_skew = sparse_vector_0_3_9();
  length_skew.mutable_values().pop_back();
  EXPECT_THROW(length_skew.check_invariants("t"), AuditError);
}

TEST(VectorAudit, FiresOnCorruptDenseBitmap) {
  // 70 elements so the bitmap spans two words with 58 padding bits.
  grb::Vector<double> v(70);
  v.mutable_indices() = {0, 64, 69};
  v.mutable_values() = {1.0, 2.0, 3.0};
  // Member references stay valid across the representation switch; writing
  // through them afterwards is exactly the kernel misuse the audit exists
  // to catch (mutable_dense_bitmap would mark the mirror invalid, hiding
  // the mirror-consistency checks this suite needs to reach).
  auto& words = v.mutable_dense_bitmap();
  v.to_dense();

  words[1] |= BitmapWord{1} << 12;  // logical position 76: padding
  EXPECT_THROW(v.check_invariants("t"), AuditError);
  words[1] &= ~(BitmapWord{1} << 12);

  grb::detail::bitmap_set(words.data(), 17);  // popcount 4, stored count 3
  EXPECT_THROW(v.check_invariants("t"), AuditError);
}

TEST(VectorAudit, FiresOnStaleMirror) {
  grb::Vector<double> v(70);
  v.mutable_indices() = {0, 64, 69};
  v.mutable_values() = {1.0, 2.0, 3.0};
  auto& words = v.mutable_dense_bitmap();
  auto& dvals = v.mutable_dense_values();
  v.to_dense();
  ASSERT_TRUE(v.mirror_is_valid());

  // Move a stored bit (popcount preserved): the mirror still lists 64.
  grb::detail::bitmap_reset(words.data(), 64);
  grb::detail::bitmap_set(words.data(), 32);
  EXPECT_THROW(v.check_invariants("t"), AuditError);
  grb::detail::bitmap_reset(words.data(), 32);
  grb::detail::bitmap_set(words.data(), 64);
  ASSERT_NO_THROW(v.check_invariants("t"));

  dvals[64] = -5.0;  // the mirror still holds 2.0
  EXPECT_THROW(v.check_invariants("t"), AuditError);
}

TEST(VectorAudit, FiresOnDenseValueLengthSkew) {
  grb::Vector<double> v = sparse_vector_0_3_9();
  auto& dvals = v.mutable_dense_values();
  v.to_dense();
  dvals.resize(4);
  EXPECT_THROW(v.check_invariants("t"), AuditError);
}

// --- Matrix / GraphPlan hooks ----------------------------------------------

grb::Matrix<double> triangle_matrix() {
  const std::vector<Index> rows{0, 0, 1, 2};
  const std::vector<Index> cols{1, 2, 2, 0};
  const std::vector<double> vals{0.5, 3.0, 1.0, 2.0};
  return grb::Matrix<double>::build(3, 3, rows, cols, vals);
}

TEST(MatrixAudit, HealthyBuiltAndDefaultConstructed) {
  EXPECT_NO_THROW(triangle_matrix().check_invariants("t"));
  EXPECT_NO_THROW(grb::Matrix<double>().check_invariants("t"));
}

TEST(PlanAudit, HealthyBeforeAndAfterSplitMaterialization) {
  dsg::GraphPlan plan(triangle_matrix(), 1.0);
  EXPECT_NO_THROW(plan.check_invariants());  // split not yet materialized
  const auto& split = plan.light_heavy();    // audits on build when enabled
  EXPECT_EQ(split.light_val.size() + split.heavy_val.size(), 4u);
  EXPECT_NO_THROW(plan.check_invariants());  // now audits the split too
}

}  // namespace
