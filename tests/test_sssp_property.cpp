// Property-based cross-validation: every delta-stepping variant must agree
// with Dijkstra on randomized graphs across families, weight models, deltas
// and sources, and every produced distance vector must satisfy the SSSP
// fixed-point invariants.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "graph/weights.hpp"
#include "test_support.hpp"

namespace {

using grb::Index;

enum class Family { kRmat, kErdos, kGrid, kSmallWorld, kTree };
enum class WeightModel { kUnit, kUniform, kExponential, kInteger };

struct Case {
  Family family;
  WeightModel weights;
  double delta;
  std::uint64_t seed;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const char* fam[] = {"rmat", "erdos", "grid", "smallworld", "tree"};
  const char* wm[] = {"unit", "uniform", "exp", "integer"};
  return std::string(fam[static_cast<int>(info.param.family)]) + "_" +
         wm[static_cast<int>(info.param.weights)] + "_d" +
         std::to_string(static_cast<int>(info.param.delta * 10)) + "_s" +
         std::to_string(info.param.seed);
}

dsg::EdgeList make_graph(const Case& c) {
  dsg::EdgeList g;
  switch (c.family) {
    case Family::kRmat:
      g = dsg::generate_rmat({.scale = 7, .edge_factor = 6, .seed = c.seed});
      break;
    case Family::kErdos:
      g = dsg::generate_erdos_renyi(150, 600, c.seed);
      break;
    case Family::kGrid:
      g = dsg::generate_grid2d(12, 12);
      break;
    case Family::kSmallWorld:
      g = dsg::generate_small_world(120, 3, 0.2, c.seed);
      break;
    case Family::kTree:
      g = dsg::generate_connected_random(130, 0, c.seed);
      break;
  }
  g.symmetrize();
  switch (c.weights) {
    case WeightModel::kUnit:
      dsg::assign_unit_weights(g);
      break;
    case WeightModel::kUniform:
      dsg::assign_uniform_weights(g, 0.05, 4.0, c.seed + 1);
      break;
    case WeightModel::kExponential:
      dsg::assign_exponential_weights(g, 3.0, c.seed + 1);
      break;
    case WeightModel::kInteger:
      dsg::assign_integer_weights(g, 1, 7, c.seed + 1);
      break;
  }
  g.normalize();
  return g;
}

class SsspProperty : public ::testing::TestWithParam<Case> {};

TEST_P(SsspProperty, AllVariantsMatchDijkstraAndValidate) {
  const Case c = GetParam();
  auto graph = make_graph(c);
  auto a = graph.to_matrix();
  const Index n = a.nrows();
  // A couple of sources spread across the id range; the shared table runs
  // every delta-stepping variant against the Dijkstra + structural oracle
  // (the macro validates the Dijkstra reference itself first).
  for (Index source : {Index{0}, n / 2, n - 1}) {
    SCOPED_TRACE("source " + std::to_string(source));
    DSG_CHECK_IMPL_PARITY(dsg::test::delta_stepping_impls(), a, source,
                          c.delta);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, SsspProperty,
    ::testing::Values(
        Case{Family::kRmat, WeightModel::kUnit, 1.0, 11},
        Case{Family::kRmat, WeightModel::kUniform, 0.5, 12},
        Case{Family::kRmat, WeightModel::kExponential, 2.0, 13},
        Case{Family::kErdos, WeightModel::kUnit, 1.0, 21},
        Case{Family::kErdos, WeightModel::kUniform, 1.0, 22},
        Case{Family::kErdos, WeightModel::kInteger, 3.0, 23},
        Case{Family::kGrid, WeightModel::kUnit, 1.0, 31},
        Case{Family::kGrid, WeightModel::kUniform, 0.7, 32},
        Case{Family::kSmallWorld, WeightModel::kUnit, 1.0, 41},
        Case{Family::kSmallWorld, WeightModel::kExponential, 4.0, 42},
        Case{Family::kTree, WeightModel::kUniform, 1.5, 51},
        Case{Family::kTree, WeightModel::kInteger, 2.0, 52}),
    case_name);

// Delta sweep on one fixed weighted graph: the answer must be independent
// of delta (delta only affects scheduling).
class DeltaSweep : public ::testing::TestWithParam<double> {};

TEST_P(DeltaSweep, DistancesIndependentOfDelta) {
  auto g = dsg::generate_connected_random(120, 240, 99);
  dsg::assign_uniform_weights(g, 0.1, 6.0, 100);
  g.normalize();
  SCOPED_TRACE("delta=" + std::to_string(GetParam()));
  DSG_CHECK_IMPL_PARITY(dsg::test::delta_stepping_impls(), g.to_matrix(), 0,
                        GetParam());
}

INSTANTIATE_TEST_SUITE_P(Widths, DeltaSweep,
                         ::testing::Values(0.1, 0.25, 0.5, 1.0, 2.0, 5.0,
                                           20.0, 1e6),
                         [](const auto& param_info) {
                           // Named-string concat (not `"d" + std::string&&`):
                           // GCC 12 -O3 emits a -Wrestrict false positive
                           // inside the rvalue operator+'s inlined insert,
                           // which -Werror turns into a Release build break.
                           std::string name = "d";
                           name += std::to_string(param_info.index);
                           return name;
                         });

// Monotonicity property: adding an edge can only improve (or keep)
// distances.
TEST(SsspMonotonicity, AddingEdgesNeverIncreasesDistances) {
  auto g = dsg::generate_connected_random(100, 50, 7);
  dsg::assign_uniform_weights(g, 0.5, 3.0, 8);
  g.normalize();
  auto a1 = g.to_matrix();
  dsg::DeltaSteppingOptions opt;
  opt.delta = 1.0;
  auto d1 = dsg::delta_stepping_fused(a1, 0, opt).dist;

  g.add_edge(0, 99, 0.25);  // a shortcut
  g.add_edge(99, 0, 0.25);
  g.normalize();
  auto a2 = g.to_matrix();
  auto d2 = dsg::delta_stepping_fused(a2, 0, opt).dist;
  for (Index v = 0; v < 100; ++v) {
    EXPECT_LE(d2[v], d1[v] + 1e-12) << "vertex " << v;
  }
}

// Scaling property: scaling all weights scales all distances.
TEST(SsspScaling, WeightsScaleLinearly) {
  auto g = dsg::generate_connected_random(80, 160, 17);
  dsg::assign_uniform_weights(g, 0.2, 2.0, 18);
  g.normalize();
  auto a1 = g.to_matrix();
  auto g2 = g;
  for (auto& e : g2.edges()) e.weight *= 3.0;
  auto a2 = g2.to_matrix();

  dsg::DeltaSteppingOptions o1, o2;
  o1.delta = 0.8;
  o2.delta = 2.4;  // scale delta along to keep identical bucketing
  auto d1 = dsg::delta_stepping_graphblas(a1, 5, o1).dist;
  auto d2 = dsg::delta_stepping_graphblas(a2, 5, o2).dist;
  for (Index v = 0; v < 80; ++v) {
    EXPECT_NEAR(d2[v], 3.0 * d1[v], 1e-9);
  }
}

// Permutation property: relabeling vertices permutes distances.
TEST(SsspPermutation, RelabelingCommutesWithSssp) {
  auto g = dsg::generate_connected_random(60, 120, 23);
  dsg::assign_uniform_weights(g, 0.1, 3.0, 24);
  g.normalize();
  const Index n = g.num_vertices();

  // A fixed pseudo-random permutation.
  std::vector<Index> perm(n);
  for (Index v = 0; v < n; ++v) perm[v] = (v * 37 + 11) % n;

  dsg::EdgeList h(n);
  for (const auto& e : g.edges()) {
    h.add_edge(perm[e.src], perm[e.dst], e.weight);
  }
  dsg::DeltaSteppingOptions opt;
  opt.delta = 1.0;
  auto dg = dsg::delta_stepping_fused(g.to_matrix(), 0, opt).dist;
  auto dh = dsg::delta_stepping_fused(h.to_matrix(), perm[0], opt).dist;
  for (Index v = 0; v < n; ++v) {
    EXPECT_NEAR(dh[perm[v]], dg[v], 1e-9);
  }
}

// Unit-weight graphs: delta=1 distances equal BFS hop counts.
TEST(SsspBfsEquivalence, UnitWeightsMatchBfsLevels) {
  auto g = dsg::generate_rmat({.scale = 8, .edge_factor = 6, .seed = 77});
  g.symmetrize();
  dsg::assign_unit_weights(g);
  g.normalize();
  auto levels = dsg::bfs_levels(g, 0);
  dsg::DeltaSteppingOptions opt;
  opt.delta = 1.0;
  auto dist = dsg::delta_stepping_graphblas(g.to_matrix(), 0, opt).dist;
  for (Index v = 0; v < g.num_vertices(); ++v) {
    if (levels[v] == std::numeric_limits<Index>::max()) {
      EXPECT_EQ(dist[v], dsg::kInfDist);
    } else {
      EXPECT_DOUBLE_EQ(dist[v], static_cast<double>(levels[v]));
    }
  }
}

}  // namespace
