// Tests for the dual sparse/dense Vector storage: representation round
// trips, bit-identity of every vector operation across representations
// (under masks x complement x structure x accum x replace), the Context
// density policy with its hysteresis band, and the dense-aware fast paths
// (O(1) point access, in-place relaxation, dense mask probing).
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "algorithms/bfs.hpp"
#include "graphblas/graphblas.hpp"
#include "sssp/delta_stepping_graphblas.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/plan.hpp"

namespace {

using grb::Index;

grb::Vector<double> random_vector(Index n, double density, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> vd(0.0, 10.0);
  std::bernoulli_distribution keep(density);
  grb::Vector<double> v(n);
  auto& vi = v.mutable_indices();
  auto& vv = v.mutable_values();
  for (Index i = 0; i < n; ++i) {
    if (keep(rng)) {
      vi.push_back(i);
      vv.push_back(vd(rng));
    }
  }
  return v;
}

grb::Vector<bool> random_mask(Index n, double density, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution keep(density);
  std::bernoulli_distribution truthy(0.5);
  grb::Vector<bool> m(n);
  auto& mi = m.mutable_indices();
  auto& mv = m.mutable_values();
  for (Index i = 0; i < n; ++i) {
    if (keep(rng)) {
      mi.push_back(i);
      mv.push_back(truthy(rng) ? 1 : 0);  // stored falses exercise value masks
    }
  }
  return m;
}

/// Asserts logical equality *and* identical canonical tuple dumps (the
/// strictest representation-independent comparison we have).
template <typename T>
void expect_identical(const grb::Vector<T>& a, const grb::Vector<T>& b) {
  EXPECT_EQ(a, b);
  std::vector<Index> ai, bi;
  std::vector<T> av, bv;
  a.extract_tuples(ai, av);
  b.extract_tuples(bi, bv);
  EXPECT_EQ(ai, bi);
  EXPECT_EQ(av, bv);
}

// ---------------------------------------------------------------------------
// Representation round trips.
// ---------------------------------------------------------------------------

TEST(Representation, RoundTripPreservesContentAndAccessors) {
  auto v = random_vector(200, 0.4, 1);
  auto original = v;
  ASSERT_FALSE(v.is_dense());

  v.to_dense();
  EXPECT_TRUE(v.is_dense());
  EXPECT_EQ(v.storage_kind(), grb::StorageKind::kDense);
  expect_identical(v, original);
  EXPECT_EQ(v.nvals(), original.nvals());
  for (Index i = 0; i < v.size(); ++i) {
    EXPECT_EQ(v.has_element(i), original.has_element(i));
    EXPECT_EQ(v.extract_element(i), original.extract_element(i));
  }
  // Sorted-coordinate views keep working on a dense vector (the mirror).
  auto idx = v.indices();
  auto oidx = original.indices();
  ASSERT_EQ(idx.size(), oidx.size());
  for (std::size_t k = 0; k < idx.size(); ++k) EXPECT_EQ(idx[k], oidx[k]);

  v.to_sparse();
  EXPECT_FALSE(v.is_dense());
  expect_identical(v, original);

  // Conversions are idempotent.
  v.to_sparse();
  expect_identical(v, original);
  v.to_dense();
  v.to_dense();
  expect_identical(v, original);
}

TEST(Representation, DenseMutationsAreO1AndInvalidateMirror) {
  auto v = random_vector(50, 0.5, 2);
  v.to_dense();
  const Index before = v.nvals();

  v.set_element(0, 42.0);  // may add or overwrite
  EXPECT_DOUBLE_EQ(*v.extract_element(0), 42.0);
  v.remove_element(0);
  EXPECT_FALSE(v.has_element(0));
  v.set_element(49, 7.0);
  EXPECT_TRUE(v.is_dense());

  // The mirror rebuilt after mutation matches a fresh sparse conversion.
  auto w = v;
  w.to_sparse();
  expect_identical(v, w);
  (void)before;
}

TEST(Representation, FullIsDenseAndToDenseArrayAgrees) {
  auto v = grb::Vector<double>::full(6, 3.5);
  EXPECT_TRUE(v.is_dense());
  EXPECT_EQ(v.nvals(), 6u);
  EXPECT_EQ(v.to_dense_array(-1.0), std::vector<double>(6, 3.5));
  v.remove_element(2);
  auto arr = v.to_dense_array(-1.0);
  EXPECT_DOUBLE_EQ(arr[2], -1.0);
  EXPECT_DOUBLE_EQ(arr[3], 3.5);
}

TEST(Representation, ClearAndResizeOnDense) {
  auto v = random_vector(30, 0.9, 3);
  v.to_dense();
  v.resize(10);
  EXPECT_EQ(v.size(), 10u);
  auto w = v;
  w.to_sparse();
  expect_identical(v, w);

  v.resize(40);
  EXPECT_EQ(v.size(), 40u);
  EXPECT_FALSE(v.has_element(35));

  v.clear();
  EXPECT_EQ(v.nvals(), 0u);
  EXPECT_FALSE(v.is_dense());  // an empty vector is canonically sparse
  EXPECT_EQ(v.size(), 40u);
}

TEST(Representation, EqualityIsRepresentationAgnostic) {
  auto a = random_vector(100, 0.6, 4);
  auto b = a;
  b.to_dense();
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, a);
  b.set_element(0, -1.0);
  EXPECT_NE(a, b);
}

TEST(Representation, BoolVectorDenseKeepsStoredFalse) {
  grb::Vector<bool> v(5);
  v.set_element(0, true);
  v.set_element(3, false);
  v.to_dense();
  EXPECT_EQ(v.nvals(), 2u);
  EXPECT_TRUE(*v.extract_element(0));
  EXPECT_FALSE(*v.extract_element(3));  // stored false survives conversion
  v.to_sparse();
  EXPECT_EQ(v.nvals(), 2u);
  EXPECT_FALSE(*v.extract_element(3));
}

TEST(Representation, MutableAccessorsCanonicalizeADenseVector) {
  // mutable_indices()/mutable_values() expose the *live* arrays (BFS
  // rewrites values in place); on a dense vector they must materialize and
  // convert, never drop content (regression: discard_dense here silently
  // emptied auto-promoted vectors).
  auto v = random_vector(40, 0.9, 33);
  auto expected = v;
  v.to_dense();
  auto& vals = v.mutable_values();
  EXPECT_FALSE(v.is_dense());
  ASSERT_EQ(vals.size(), static_cast<std::size_t>(expected.nvals()));
  for (auto& x : vals) x += 1.0;
  auto idx = v.indices();
  for (std::size_t k = 0; k < idx.size(); ++k) {
    EXPECT_DOUBLE_EQ(*v.extract_element(idx[k]),
                     *expected.extract_element(idx[k]) + 1.0);
  }
}

TEST(Representation, HasElementIsTotalOnDense) {
  auto v = random_vector(16, 0.8, 34);
  v.to_dense();
  EXPECT_FALSE(v.has_element(16));  // out of range answers false, like sparse
  EXPECT_FALSE(v.has_element(1000));
  EXPECT_FALSE(v.extract_element(16).has_value());
}

TEST(Representation, BfsParentsSurviveFrontierAutoPromotion) {
  // Regression: a two-level star whose first wavefront hits 50% density.
  // Auto-promotion used to make select's output dense and the in-place id
  // stamp then emptied it, silently losing parents for the second level.
  const Index n = 12;
  std::vector<Index> r, c;
  std::vector<double> w;
  auto edge = [&](Index a, Index b) {
    r.push_back(a); c.push_back(b); w.push_back(1.0);
    r.push_back(b); c.push_back(a); w.push_back(1.0);
  };
  for (Index v = 1; v <= 6; ++v) edge(0, v);
  for (Index v = 7; v <= 11; ++v) edge(1, v);
  auto a = grb::Matrix<double>::build(n, n, r, c, w);

  const auto parents = dsg::bfs_parents_graphblas(a, 0);
  ASSERT_EQ(parents.size(), n);
  for (Index v = 1; v <= 6; ++v) EXPECT_EQ(parents[v], 0u) << "vertex " << v;
  for (Index v = 7; v <= 11; ++v) EXPECT_EQ(parents[v], 1u) << "vertex " << v;
}

// ---------------------------------------------------------------------------
// Word-packed bitmap edge cases: sizes straddling the 64-position word
// boundary, where tail-masking and the popcount recount can go wrong.
// ---------------------------------------------------------------------------

TEST(Representation, ResizeAcrossWordBoundaries) {
  for (Index n : {Index{63}, Index{64}, Index{65}, Index{127}, Index{128}}) {
    for (bool dense : {false, true}) {
      // Shrink to every interesting boundary: the stored count must be
      // recounted (dense: via popcount after tail-masking the last word)
      // and the content must equal the sparse-truncated reference.
      for (Index m : {Index{0}, Index{1}, Index{32}, Index{63}, Index{64},
                      Index{65}, n - 1, n}) {
        if (m > n) continue;
        auto v = random_vector(n, 0.7, 100 + n);
        auto ref = v;  // stays sparse
        if (dense) v.to_dense();
        v.resize(m);
        ref.resize(m);
        EXPECT_EQ(v.size(), m) << "n=" << n << " m=" << m << " dense=" << dense;
        EXPECT_EQ(v.nvals(), ref.nvals())
            << "n=" << n << " m=" << m << " dense=" << dense;
        expect_identical(v, ref);

        // Grow back past the next word boundary: dimension changes, the
        // stored set must not (grown positions are absent).
        const Index g = m + 65;
        v.resize(g);
        ref.resize(g);
        EXPECT_EQ(v.size(), g);
        EXPECT_EQ(v.nvals(), ref.nvals());
        EXPECT_FALSE(v.has_element(g - 1));
        expect_identical(v, ref);
      }

      // clear() canonicalizes to sparse regardless of word alignment.
      auto v = random_vector(n, 0.9, 200 + n);
      if (dense) v.to_dense();
      v.clear();
      EXPECT_EQ(v.nvals(), 0u);
      EXPECT_FALSE(v.is_dense());
      EXPECT_EQ(v.size(), n);
    }
  }
}

TEST(Representation, RoundTripAtWordBoundarySizes) {
  for (Index n : {Index{63}, Index{64}, Index{65}, Index{127}, Index{128}}) {
    auto v = random_vector(n, 0.8, 300 + n);
    auto original = v;
    v.to_dense();
    EXPECT_EQ(v.nvals(), original.nvals()) << "n=" << n;
    expect_identical(v, original);
    // The last logical position is exercised explicitly: it lives in the
    // tail word whose padding bits must stay zero.
    v.set_element(n - 1, 42.0);
    v.remove_element(n - 1);
    EXPECT_FALSE(v.has_element(n - 1));
    v.to_sparse();
    original.remove_element(n - 1);
    expect_identical(v, original);
  }
}

TEST(Representation, SwapDenseStorageInvalidatesStaleMirror) {
  const Index n = 130;  // two full words + a 2-bit tail
  auto v = random_vector(n, 0.8, 41);
  v.to_dense();
  // Materialize the sparse mirror, then install entirely new dense content
  // behind its back: the old mirror must not leak through any
  // sorted-coordinate accessor.
  ASSERT_GT(v.indices().size(), 0u);
  std::vector<grb::detail::BitmapWord> bm(grb::detail::bitmap_words(n), 0);
  std::vector<double> vals(n, 0.0);
  Index nnz = 0;
  for (Index i = 0; i < n; i += 2) {
    grb::detail::bitmap_set(bm.data(), i);
    vals[i] = static_cast<double>(i);
    ++nnz;
  }
  v.swap_dense_storage(bm, vals, nnz);
  EXPECT_TRUE(v.is_dense());
  EXPECT_EQ(v.nvals(), nnz);
  auto idx = v.indices();
  auto val = v.values();
  ASSERT_EQ(idx.size(), static_cast<std::size_t>(nnz));
  for (std::size_t k = 0; k < idx.size(); ++k) {
    EXPECT_EQ(idx[k], static_cast<Index>(2 * k));
    EXPECT_DOUBLE_EQ(val[k], static_cast<double>(2 * k));
  }
}

// ---------------------------------------------------------------------------
// Context density policy and hysteresis.
// ---------------------------------------------------------------------------

TEST(Representation, HysteresisAtTheSwitchThresholds) {
  grb::Context ctx;
  ctx.dense_promote_density = 0.5;
  ctx.dense_demote_density = 0.25;

  grb::Vector<double> v(100);
  for (Index i = 0; i < 49; ++i) v.set_element(i, 1.0);
  ctx.manage_representation(v);
  EXPECT_FALSE(v.is_dense()) << "below promote threshold stays sparse";

  v.set_element(49, 1.0);  // density exactly 0.5
  ctx.manage_representation(v);
  EXPECT_TRUE(v.is_dense()) << "at promote threshold switches to dense";

  // Drop into the hysteresis band (0.25, 0.5): representation must hold.
  for (Index i = 26; i < 50; ++i) v.remove_element(i);  // 26 left, d = 0.26
  ctx.manage_representation(v);
  EXPECT_TRUE(v.is_dense()) << "inside the band keeps the current form";

  v.remove_element(25);  // 25 left, density exactly 0.25
  ctx.manage_representation(v);
  EXPECT_FALSE(v.is_dense()) << "at demote threshold switches to sparse";

  // Climbing back through the band from below must also hold.
  for (Index i = 25; i < 49; ++i) v.set_element(i, 1.0);  // d = 0.49
  ctx.manage_representation(v);
  EXPECT_FALSE(v.is_dense()) << "inside the band keeps the current form";
}

TEST(Representation, AutoSwitchCanBeDisabled) {
  grb::Context ctx;
  ctx.auto_representation = false;
  auto v = random_vector(100, 1.0, 5);
  ctx.manage_representation(v);
  EXPECT_FALSE(v.is_dense());
}

TEST(Representation, OperationsAutoPromoteDenseOutputs) {
  grb::Context ctx;  // default policy
  auto u = random_vector(100, 0.9, 6);
  ASSERT_FALSE(u.is_dense());
  grb::Vector<double> w(100);
  grb::apply(ctx, w, grb::NoMask{}, grb::NoAccumulate{},
             grb::Identity<double>{}, u);
  EXPECT_TRUE(w.is_dense()) << "a 90%-dense result should be promoted";

  grb::Vector<double> sparse_out(100);
  auto tiny = random_vector(100, 0.05, 7);
  grb::apply(ctx, sparse_out, grb::NoMask{}, grb::NoAccumulate{},
             grb::Identity<double>{}, tiny);
  EXPECT_FALSE(sparse_out.is_dense()) << "a 5%-dense result stays sparse";
}

// ---------------------------------------------------------------------------
// Bit-identity of operations across representations.
//
// For every op we compute the result with all-sparse inputs and with
// all-dense inputs (and mixed where meaningful), across mask x complement x
// structure x replace x accum, with auto-switching ON — the representation
// of the output must never change its logical value.
// ---------------------------------------------------------------------------

struct OpCase {
  bool masked;
  bool complement;
  bool structure;
  bool replace;
  bool accum;
};

std::vector<OpCase> all_cases() {
  std::vector<OpCase> cases;
  for (bool masked : {false, true}) {
    for (bool complement : {false, true}) {
      for (bool structure : {false, true}) {
        for (bool replace : {false, true}) {
          for (bool accum : {false, true}) {
            if (!masked && (complement || structure)) continue;
            cases.push_back({masked, complement, structure, replace, accum});
          }
        }
      }
    }
  }
  return cases;
}

grb::Descriptor make_desc(const OpCase& c) {
  grb::Descriptor d;
  d.mask_complement = c.complement;
  d.mask_structure = c.structure;
  d.replace = c.replace;
  return d;
}

/// Runs `run(ctx, w, mask, desc)` twice — once with sparse inputs handed in,
/// once after the caller densified them — and compares.  The caller supplies
/// closures capturing the inputs in the desired representation.
template <typename RunSparse, typename RunDense>
void check_bit_identity(const char* what, Index n, RunSparse&& run_sparse,
                        RunDense&& run_dense) {
  const auto w0 = random_vector(n, 0.3, 99);  // pre-existing output content
  auto mask = random_mask(n, 0.6, 100);
  auto mask_dense = mask;
  mask_dense.to_dense();

  for (const auto& c : all_cases()) {
    const auto desc = make_desc(c);
    grb::Context ctx_s, ctx_d;
    auto ws = w0;
    auto wd = w0;
    wd.to_dense();  // output representation must not matter either
    run_sparse(ctx_s, ws, mask, c, desc);
    run_dense(ctx_d, wd, mask_dense, c, desc);
    EXPECT_EQ(ws, wd) << what << " masked=" << c.masked
                      << " comp=" << c.complement << " struct=" << c.structure
                      << " replace=" << c.replace << " accum=" << c.accum;
  }
}

TEST(RepresentationParity, Apply) {
  const Index n = 150;
  auto u = random_vector(n, 0.7, 10);
  auto ud = u;
  ud.to_dense();
  auto op = [](double x) { return x + 1.5; };
  auto go = [&](const auto& uu) {
    return [&, uu](grb::Context& ctx, grb::Vector<double>& w,
                   const grb::Vector<bool>& m, const OpCase& c,
                   const grb::Descriptor& desc) {
      if (c.masked && c.accum) {
        grb::apply(ctx, w, m, grb::Plus<double>{}, op, uu, desc);
      } else if (c.masked) {
        grb::apply(ctx, w, m, grb::NoAccumulate{}, op, uu, desc);
      } else if (c.accum) {
        grb::apply(ctx, w, grb::NoMask{}, grb::Plus<double>{}, op, uu, desc);
      } else {
        grb::apply(ctx, w, grb::NoMask{}, grb::NoAccumulate{}, op, uu, desc);
      }
    };
  };
  check_bit_identity("apply", n, go(u), go(ud));
}

TEST(RepresentationParity, Select) {
  const Index n = 150;
  auto u = random_vector(n, 0.7, 11);
  auto ud = u;
  ud.to_dense();
  auto pred = [](double x, Index) { return x < 5.0; };
  auto go = [&](const auto& uu) {
    return [&, uu](grb::Context& ctx, grb::Vector<double>& w,
                   const grb::Vector<bool>& m, const OpCase& c,
                   const grb::Descriptor& desc) {
      if (c.masked && c.accum) {
        grb::select(ctx, w, m, grb::Plus<double>{}, pred, uu, desc);
      } else if (c.masked) {
        grb::select(ctx, w, m, grb::NoAccumulate{}, pred, uu, desc);
      } else if (c.accum) {
        grb::select(ctx, w, grb::NoMask{}, grb::Plus<double>{}, pred, uu,
                    desc);
      } else {
        grb::select(ctx, w, grb::NoMask{}, grb::NoAccumulate{}, pred, uu,
                    desc);
      }
    };
  };
  check_bit_identity("select", n, go(u), go(ud));
}

template <typename EwiseFn>
void ewise_parity(const char* what, EwiseFn ew) {
  const Index n = 150;
  auto u = random_vector(n, 0.6, 12);
  auto v = random_vector(n, 0.4, 13);
  // Sweep representation combinations: SS is the reference, SD/DS/DD must
  // all match it.
  for (int combo = 1; combo < 4; ++combo) {
    auto uu = u;
    auto vv = v;
    if (combo & 1) uu.to_dense();
    if (combo & 2) vv.to_dense();
    auto go = [&](const auto& a, const auto& b) {
      return [&, a, b](grb::Context& ctx, grb::Vector<double>& w,
                       const grb::Vector<bool>& m, const OpCase& c,
                       const grb::Descriptor& desc) {
        ew(ctx, w, m, c, desc, a, b);
      };
    };
    check_bit_identity(what, n, go(u, v), go(uu, vv));
  }
}

TEST(RepresentationParity, EwiseAdd) {
  ewise_parity("ewise_add", [](grb::Context& ctx, grb::Vector<double>& w,
                               const grb::Vector<bool>& m, const OpCase& c,
                               const grb::Descriptor& desc, const auto& a,
                               const auto& b) {
    auto op = grb::Min<double>{};
    if (c.masked && c.accum) {
      grb::ewise_add(ctx, w, m, grb::Plus<double>{}, op, a, b, desc);
    } else if (c.masked) {
      grb::ewise_add(ctx, w, m, grb::NoAccumulate{}, op, a, b, desc);
    } else if (c.accum) {
      grb::ewise_add(ctx, w, grb::NoMask{}, grb::Plus<double>{}, op, a, b,
                     desc);
    } else {
      grb::ewise_add(ctx, w, grb::NoMask{}, grb::NoAccumulate{}, op, a, b,
                     desc);
    }
  });
}

TEST(RepresentationParity, EwiseMult) {
  ewise_parity("ewise_mult", [](grb::Context& ctx, grb::Vector<double>& w,
                                const grb::Vector<bool>& m, const OpCase& c,
                                const grb::Descriptor& desc, const auto& a,
                                const auto& b) {
    auto op = grb::Times<double>{};
    if (c.masked && c.accum) {
      grb::ewise_mult(ctx, w, m, grb::Plus<double>{}, op, a, b, desc);
    } else if (c.masked) {
      grb::ewise_mult(ctx, w, m, grb::NoAccumulate{}, op, a, b, desc);
    } else if (c.accum) {
      grb::ewise_mult(ctx, w, grb::NoMask{}, grb::Plus<double>{}, op, a, b,
                      desc);
    } else {
      grb::ewise_mult(ctx, w, grb::NoMask{}, grb::NoAccumulate{}, op, a, b,
                      desc);
    }
  });
}

TEST(RepresentationParity, VxmAndMxvWithDenseInputsAndMasks) {
  const Index n = 60;
  std::mt19937_64 rng(14);
  std::uniform_int_distribution<Index> pick(0, n - 1);
  std::uniform_real_distribution<double> wd(0.5, 2.0);
  std::vector<Index> r, c;
  std::vector<double> vals;
  for (int k = 0; k < 400; ++k) {
    r.push_back(pick(rng));
    c.push_back(pick(rng));
    vals.push_back(wd(rng));
  }
  auto a = grb::Matrix<double>::build(n, n, r, c, vals, grb::Min<double>{});
  const auto sr = grb::min_plus_semiring<double>();

  auto u = random_vector(n, 0.8, 15);
  auto ud = u;
  ud.to_dense();
  auto mask = random_mask(n, 0.5, 16);
  auto mask_dense = mask;
  mask_dense.to_dense();

  for (bool complement : {false, true}) {
    grb::Descriptor desc;
    desc.mask_complement = complement;
    desc.replace = true;

    grb::Context ctx;
    grb::Vector<double> w1(n), w2(n), w3(n), w4(n);
    grb::vxm(ctx, w1, mask, grb::NoAccumulate{}, sr, u, a, desc);
    grb::vxm(ctx, w2, mask_dense, grb::NoAccumulate{}, sr, ud, a, desc);
    EXPECT_EQ(w1, w2) << "vxm complement=" << complement;

    grb::mxv(ctx, w3, mask, grb::NoAccumulate{}, sr, a, u, desc);
    grb::mxv(ctx, w4, mask_dense, grb::NoAccumulate{}, sr, a, ud, desc);
    EXPECT_EQ(w3, w4) << "mxv complement=" << complement;
  }
}

TEST(RepresentationParity, InPlaceDenseRelaxationMatchesSparse) {
  // t = min(t, tReq) with w aliasing u — the delta-stepping hot path.
  const Index n = 300;
  auto t = random_vector(n, 0.8, 17);
  auto treq = random_vector(n, 0.05, 18);

  auto t_sparse = t;
  grb::Context ctx;
  grb::ewise_add(ctx, t_sparse, grb::NoMask{}, grb::NoAccumulate{},
                 grb::Min<double>{}, t_sparse, treq);

  auto t_dense = t;
  t_dense.to_dense();
  auto treq_d = treq;  // sparse request vector, as in the algorithm
  grb::Context ctx2;
  grb::ewise_add(ctx2, t_dense, grb::NoMask{}, grb::NoAccumulate{},
                 grb::Min<double>{}, t_dense, treq_d);
  EXPECT_TRUE(t_dense.is_dense()) << "in-place path must keep t dense";
  EXPECT_EQ(t_sparse, t_dense);

  // And with a dense request vector.
  auto t_dense2 = t;
  t_dense2.to_dense();
  treq_d.to_dense();
  grb::Context ctx3;
  grb::ewise_add(ctx3, t_dense2, grb::NoMask{}, grb::NoAccumulate{},
                 grb::Min<double>{}, t_dense2, treq_d);
  EXPECT_EQ(t_sparse, t_dense2);
}

TEST(RepresentationParity, ReduceExtractAssignOverDense) {
  const Index n = 80;
  auto u = random_vector(n, 0.7, 19);
  auto ud = u;
  ud.to_dense();

  auto monoid = grb::plus_monoid<double>();
  EXPECT_DOUBLE_EQ(grb::reduce(monoid, u), grb::reduce(monoid, ud));

  const std::vector<Index> idx{5, 3, 60, 3, 7};
  grb::Vector<double> e1(static_cast<Index>(idx.size()));
  grb::Vector<double> e2(static_cast<Index>(idx.size()));
  grb::extract(e1, u, idx);
  grb::extract(e2, ud, idx);
  EXPECT_EQ(e1, e2);

  auto w1 = random_vector(n, 0.5, 20);
  auto w2 = w1;
  w2.to_dense();
  const std::vector<Index> all{grb::all_indices};
  grb::assign_scalar(w1, grb::NoMask{}, grb::NoAccumulate{}, 2.5,
                     std::span<const Index>(all));
  grb::assign_scalar(w2, grb::NoMask{}, grb::NoAccumulate{}, 2.5,
                     std::span<const Index>(all));
  EXPECT_EQ(w1, w2);
}

TEST(RepresentationParity, ParallelDenseKernelsMatchSerial) {
  // Lowering pointwise_parallel_threshold forces the OpenMP kernels (no-op
  // gate when built without OpenMP); results must be bit-identical to the
  // serial sweep for any thread count.  The dense-output heuristic is
  // pinned to each of its two paths in turn — crossover 0 forces the
  // word-packed dense stage, 1 forces the compaction kernel — so both
  // parallel kernels are exercised deterministically (the sampling
  // estimator must never decide what this test covers), and the two paths
  // are pinned against each other at the end.
  const Index n = 5000;
  auto u = random_vector(n, 0.8, 30);
  auto v = random_vector(n, 0.7, 31);
  u.to_dense();
  v.to_dense();
  auto mask = random_mask(n, 0.5, 32);
  mask.to_dense();

  auto op = [](double x) { return x * 2.0; };
  auto pred = [](double x, Index) { return x < 5.0; };

  grb::Vector<double> apply_by_crossover[2]{grb::Vector<double>(n),
                                            grb::Vector<double>(n)};
  grb::Vector<double> select_by_crossover[2]{grb::Vector<double>(n),
                                             grb::Vector<double>(n)};
  int leg = 0;
  for (double crossover : {0.0, 1.0}) {
    grb::Context serial, parallel;
    serial.pointwise_parallel_threshold = n + 1;
    parallel.pointwise_parallel_threshold = 1;
    serial.dense_output_crossover = crossover;
    parallel.dense_output_crossover = crossover;

    grb::Vector<double> w1(n), w2(n);
    grb::apply(serial, w1, mask, grb::NoAccumulate{}, op, u,
               grb::replace_desc);
    grb::apply(parallel, w2, mask, grb::NoAccumulate{}, op, u,
               grb::replace_desc);
    expect_identical(w1, w2);
    apply_by_crossover[leg] = w1;

    grb::Vector<double> s1(n), s2(n);
    grb::select(serial, s1, grb::NoMask{}, grb::NoAccumulate{}, pred, u);
    grb::select(parallel, s2, grb::NoMask{}, grb::NoAccumulate{}, pred, u);
    expect_identical(s1, s2);
    select_by_crossover[leg] = s1;

    grb::Vector<double> a1(n), a2(n), m1(n), m2(n);
    grb::ewise_add(serial, a1, grb::NoMask{}, grb::NoAccumulate{},
                   grb::Min<double>{}, u, v);
    grb::ewise_add(parallel, a2, grb::NoMask{}, grb::NoAccumulate{},
                   grb::Min<double>{}, u, v);
    expect_identical(a1, a2);
    grb::ewise_mult(serial, m1, grb::NoMask{}, grb::NoAccumulate{},
                    grb::Times<double>{}, u, v);
    grb::ewise_mult(parallel, m2, grb::NoMask{}, grb::NoAccumulate{},
                    grb::Times<double>{}, u, v);
    expect_identical(m1, m2);
    ++leg;
  }
  // Dense stage (crossover 0) and compaction (crossover 1) are the same
  // logical operation: outputs must match exactly.
  expect_identical(apply_by_crossover[0], apply_by_crossover[1]);
  expect_identical(select_by_crossover[0], select_by_crossover[1]);
}

TEST(RepresentationParity, MixedEwiseAddParallelMatchesSerial) {
  // The mixed dense/sparse union merge has its own word-blocked OpenMP
  // kernel (sparse cursors rebound per chunk): pin it against the serial
  // sweep in both operand orders and against the all-sparse reference.
  const Index n = 5000;
  auto dense_side = random_vector(n, 0.8, 35);
  auto sparse_side = random_vector(n, 0.1, 36);
  auto ref_u = dense_side;
  auto ref_v = sparse_side;
  dense_side.to_dense();

  grb::Context serial, parallel, plain;
  serial.pointwise_parallel_threshold = n + 1;
  parallel.pointwise_parallel_threshold = 1;

  grb::Vector<double> r(n);
  grb::ewise_add(plain, r, grb::NoMask{}, grb::NoAccumulate{},
                 grb::Min<double>{}, ref_u, ref_v);
  for (bool dense_first : {true, false}) {
    grb::Vector<double> w1(n), w2(n);
    if (dense_first) {
      grb::ewise_add(serial, w1, grb::NoMask{}, grb::NoAccumulate{},
                     grb::Min<double>{}, dense_side, sparse_side);
      grb::ewise_add(parallel, w2, grb::NoMask{}, grb::NoAccumulate{},
                     grb::Min<double>{}, dense_side, sparse_side);
    } else {
      grb::ewise_add(serial, w1, grb::NoMask{}, grb::NoAccumulate{},
                     grb::Min<double>{}, sparse_side, dense_side);
      grb::ewise_add(parallel, w2, grb::NoMask{}, grb::NoAccumulate{},
                     grb::Min<double>{}, sparse_side, dense_side);
    }
    expect_identical(w1, w2);
    EXPECT_EQ(w1, r) << "mixed merge disagrees with the sparse reference";
  }
}

TEST(Representation, FullVectorFollowsContextPolicy) {
  // Vector::full defaults to dense, but full_vector routes the choice
  // through the Context: a pinned-sparse Context must get the sparse form,
  // or the "representation off" benchmark leg silently runs dense kernels.
  grb::Context on, off;
  off.auto_representation = false;

  auto a = grb::full_vector(on, Index{100}, 1.5);
  EXPECT_TRUE(a.is_dense());
  auto b = grb::full_vector(off, Index{100}, 1.5);
  EXPECT_FALSE(b.is_dense());
  EXPECT_EQ(a, b);
  EXPECT_EQ(b.nvals(), 100u);

  auto c = grb::Vector<double>::full(100, 1.5, grb::StorageKind::kSparse);
  EXPECT_FALSE(c.is_dense());
  expect_identical(b, c);

  // Ops over the policy-built vector keep the off context sparse end to
  // end: no write phase installs a dense result.
  grb::Vector<double> w(100);
  grb::apply(off, w, grb::NoMask{}, grb::NoAccumulate{},
             grb::Identity<double>{}, b);
  EXPECT_EQ(off.dense_writes, 0u);
  EXPECT_FALSE(w.is_dense());
}

TEST(Representation, AutoOffSsspLegStaysSparseThroughout) {
  // Regression pin for the bench_solver_batch representation on/off record:
  // the "off" leg (auto_representation = false, nothing explicitly
  // densified) must never run a dense write phase, while the "on" leg on
  // the same plan must — otherwise the two rows measure the same thing.
  const Index n = 64;
  std::mt19937_64 rng(22);
  std::uniform_int_distribution<Index> pick(0, n - 1);
  std::uniform_real_distribution<double> wd(0.5, 2.0);
  std::vector<Index> r, c;
  std::vector<double> vals;
  for (int k = 0; k < 500; ++k) {
    r.push_back(pick(rng));
    c.push_back(pick(rng));
    vals.push_back(wd(rng));
  }
  auto a = grb::Matrix<double>::build(n, n, r, c, vals, grb::Min<double>{});
  auto plan = dsg::GraphPlan::borrow(a, 1.0);
  dsg::ExecOptions exec;

  grb::Context ctx_off;
  ctx_off.auto_representation = false;
  const auto off = dsg::delta_stepping_graphblas(plan, ctx_off, 0, exec);
  EXPECT_EQ(ctx_off.dense_writes, 0u)
      << "the pinned-sparse leg ran dense kernels";

  grb::Context ctx_on;
  const auto on = dsg::delta_stepping_graphblas(plan, ctx_on, 0, exec);
  EXPECT_GT(ctx_on.dense_writes, 0u)
      << "the auto leg never went dense — the record compares nothing";
  EXPECT_EQ(off.dist, on.dist);
}

TEST(RepresentationParity, SsspEndToEndWithAutoSwitching) {
  // The full algorithm over the substrate, sparse seed vs pre-densified
  // Context policy: distances must be identical (pinned elsewhere against
  // Dijkstra; here we pin graphblas-variant determinism under switching).
  const Index n = 64;
  std::mt19937_64 rng(21);
  std::uniform_int_distribution<Index> pick(0, n - 1);
  std::uniform_real_distribution<double> wd(0.5, 2.0);
  std::vector<Index> r, c;
  std::vector<double> vals;
  for (int k = 0; k < 500; ++k) {
    r.push_back(pick(rng));
    c.push_back(pick(rng));
    vals.push_back(wd(rng));
  }
  auto a = grb::Matrix<double>::build(n, n, r, c, vals, grb::Min<double>{});

  dsg::DeltaSteppingOptions opt;
  opt.delta = 1.0;
  auto res = dsg::delta_stepping_graphblas(a, 0, opt);
  auto ref = dsg::dijkstra(a, 0);
  ASSERT_EQ(res.dist.size(), ref.dist.size());
  for (std::size_t i = 0; i < ref.dist.size(); ++i) {
    EXPECT_DOUBLE_EQ(res.dist[i], ref.dist[i]) << "vertex " << i;
  }
}

}  // namespace
