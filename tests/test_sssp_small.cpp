// Hand-computed SSSP instances exercised against every implementation.
#include <gtest/gtest.h>

#include "graph/edge_list.hpp"
#include "sssp/bellman_ford.hpp"
#include "sssp/delta_stepping_buckets.hpp"
#include "sssp/delta_stepping_capi.hpp"
#include "sssp/delta_stepping_fused.hpp"
#include "sssp/delta_stepping_graphblas.hpp"
#include "sssp/delta_stepping_openmp.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/paths.hpp"

namespace {

using dsg::EdgeList;
using dsg::kInfDist;
using grb::Index;

/// Every SSSP entry point under a common signature for table-driven tests.
using SsspFn = dsg::SsspResult (*)(const grb::Matrix<double>&, Index, double);

dsg::SsspResult run_gb(const grb::Matrix<double>& a, Index s, double d) {
  dsg::DeltaSteppingOptions o;
  o.delta = d;
  return dsg::delta_stepping_graphblas(a, s, o);
}
dsg::SsspResult run_gb_select(const grb::Matrix<double>& a, Index s,
                              double d) {
  dsg::DeltaSteppingOptions o;
  o.delta = d;
  return dsg::delta_stepping_graphblas_select(a, s, o);
}
dsg::SsspResult run_fused(const grb::Matrix<double>& a, Index s, double d) {
  dsg::DeltaSteppingOptions o;
  o.delta = d;
  return dsg::delta_stepping_fused(a, s, o);
}
dsg::SsspResult run_omp(const grb::Matrix<double>& a, Index s, double d) {
  dsg::OpenMpOptions o;
  o.delta = d;
  o.num_threads = 2;
  return dsg::delta_stepping_openmp(a, s, o);
}
dsg::SsspResult run_buckets(const grb::Matrix<double>& a, Index s, double d) {
  dsg::DeltaSteppingOptions o;
  o.delta = d;
  return dsg::delta_stepping_buckets(a, s, o);
}
dsg::SsspResult run_capi(const grb::Matrix<double>& a, Index s, double d) {
  dsg::DeltaSteppingOptions o;
  o.delta = d;
  return dsg::delta_stepping_capi(a, s, o);
}
dsg::SsspResult run_dijkstra(const grb::Matrix<double>& a, Index s, double) {
  return dsg::dijkstra(a, s);
}
dsg::SsspResult run_bf(const grb::Matrix<double>& a, Index s, double) {
  return dsg::bellman_ford(a, s);
}
dsg::SsspResult run_bf_rounds(const grb::Matrix<double>& a, Index s, double) {
  return dsg::bellman_ford_rounds(a, s);
}

struct Impl {
  const char* name;
  SsspFn fn;
};

const Impl kImpls[] = {
    {"graphblas", run_gb},     {"graphblas_select", run_gb_select},
    {"fused", run_fused},      {"openmp", run_omp},
    {"buckets", run_buckets},  {"capi", run_capi},
    {"dijkstra", run_dijkstra},
    {"bellman_ford", run_bf},  {"bellman_ford_rounds", run_bf_rounds},
};

class AllImpls : public ::testing::TestWithParam<Impl> {};

INSTANTIATE_TEST_SUITE_P(Sssp, AllImpls, ::testing::ValuesIn(kImpls),
                         [](const auto& info) { return info.param.name; });

// The classic CLRS-style weighted digraph.
grb::Matrix<double> diamond() {
  EdgeList g(5);
  g.add_edge(0, 1, 10.0);
  g.add_edge(0, 3, 5.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(1, 3, 2.0);
  g.add_edge(2, 4, 4.0);
  g.add_edge(3, 1, 3.0);
  g.add_edge(3, 2, 9.0);
  g.add_edge(3, 4, 2.0);
  g.add_edge(4, 0, 7.0);
  g.add_edge(4, 2, 6.0);
  return g.to_matrix();
}

TEST_P(AllImpls, DiamondDigraph) {
  auto r = GetParam().fn(diamond(), 0, 3.0);
  const std::vector<double> want{0.0, 8.0, 9.0, 5.0, 7.0};
  for (Index v = 0; v < 5; ++v) {
    EXPECT_DOUBLE_EQ(r.dist[v], want[v]) << "vertex " << v;
  }
}

TEST_P(AllImpls, DiamondFromOtherSource) {
  auto r = GetParam().fn(diamond(), 3, 2.0);
  EXPECT_DOUBLE_EQ(r.dist[3], 0.0);
  EXPECT_DOUBLE_EQ(r.dist[1], 3.0);
  EXPECT_DOUBLE_EQ(r.dist[2], 4.0);
  EXPECT_DOUBLE_EQ(r.dist[4], 2.0);
  EXPECT_DOUBLE_EQ(r.dist[0], 9.0);
}

TEST_P(AllImpls, UnweightedPathGraphCountsHops) {
  EdgeList g(6);
  for (Index v = 0; v + 1 < 6; ++v) {
    g.add_edge(v, v + 1, 1.0);
    g.add_edge(v + 1, v, 1.0);
  }
  auto r = GetParam().fn(g.to_matrix(), 0, 1.0);
  for (Index v = 0; v < 6; ++v) {
    EXPECT_DOUBLE_EQ(r.dist[v], static_cast<double>(v));
  }
}

TEST_P(AllImpls, DisconnectedComponentStaysInfinite) {
  EdgeList g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);  // unreachable island
  auto r = GetParam().fn(g.to_matrix(), 0, 1.0);
  EXPECT_DOUBLE_EQ(r.dist[0], 0.0);
  EXPECT_DOUBLE_EQ(r.dist[1], 1.0);
  EXPECT_EQ(r.dist[2], kInfDist);
  EXPECT_EQ(r.dist[3], kInfDist);
}

TEST_P(AllImpls, ShorterLongRouteBeatsDirectEdge) {
  // Direct heavy edge 0->2 (10) loses to the two-hop light route (3).
  EdgeList g(3);
  g.add_edge(0, 2, 10.0);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  auto r = GetParam().fn(g.to_matrix(), 0, 2.5);
  EXPECT_DOUBLE_EQ(r.dist[2], 3.0);
}

TEST_P(AllImpls, SingleVertexGraph) {
  EdgeList g(1);
  auto r = GetParam().fn(g.to_matrix(), 0, 1.0);
  ASSERT_EQ(r.dist.size(), 1u);
  EXPECT_DOUBLE_EQ(r.dist[0], 0.0);
}

TEST_P(AllImpls, TwoVertexBothDirections) {
  EdgeList g(2);
  g.add_edge(0, 1, 2.5);
  g.add_edge(1, 0, 0.5);
  auto r = GetParam().fn(g.to_matrix(), 1, 1.0);
  EXPECT_DOUBLE_EQ(r.dist[0], 0.5);
  EXPECT_DOUBLE_EQ(r.dist[1], 0.0);
}

TEST_P(AllImpls, ZigzagRequiresReintroduction) {
  // Classic delta-stepping stress: improving a vertex within the same
  // bucket multiple times (light edge chains inside one bucket).
  EdgeList g(5);
  g.add_edge(0, 1, 0.3);
  g.add_edge(1, 2, 0.3);
  g.add_edge(2, 3, 0.3);
  g.add_edge(3, 4, 0.05);
  g.add_edge(0, 4, 1.0);  // direct but slightly worse: 1.0 > 0.95
  auto r = GetParam().fn(g.to_matrix(), 0, 1.0);
  EXPECT_NEAR(r.dist[4], 0.95, 1e-12);
}

// --- Baseline-specific checks. ----------------------------------------------

TEST(Dijkstra, ParentsFormShortestPathTree) {
  std::vector<Index> parent;
  auto r = dsg::dijkstra_with_parents(diamond(), 0, parent);
  EXPECT_EQ(parent[0], dsg::kNoParent);
  EXPECT_EQ(parent[3], 0u);
  EXPECT_EQ(parent[1], 3u);  // 0->3->1 = 8 beats 0->1 = 10
  EXPECT_EQ(parent[2], 1u);
  EXPECT_EQ(parent[4], 3u);
  // Tree edges are tight.
  auto a = diamond();
  for (Index v = 1; v < 5; ++v) {
    auto w = a.extract_element(parent[v], v);
    ASSERT_TRUE(w.has_value());
    EXPECT_DOUBLE_EQ(r.dist[parent[v]] + *w, r.dist[v]);
  }
}

TEST(BellmanFord, HandlesNegativeEdgesOnDag) {
  EdgeList g(4);
  g.add_edge(0, 1, 4.0);
  g.add_edge(0, 2, 2.0);
  g.add_edge(2, 1, -1.0);
  g.add_edge(1, 3, 1.0);
  auto r = dsg::bellman_ford(g.to_matrix(), 0);
  EXPECT_DOUBLE_EQ(r.dist[1], 1.0);  // 0->2->1
  EXPECT_DOUBLE_EQ(r.dist[3], 2.0);
}

TEST(BellmanFord, DetectsNegativeCycle) {
  EdgeList g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, -2.0);
  g.add_edge(2, 1, 1.0);  // 1->2->1 loop of weight -1
  EXPECT_THROW(dsg::bellman_ford(g.to_matrix(), 0), grb::InvalidValue);
  EXPECT_THROW(dsg::bellman_ford_rounds(g.to_matrix(), 0), grb::InvalidValue);
}

TEST(BellmanFord, IgnoresUnreachableNegativeCycle) {
  EdgeList g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, -5.0);  // negative cycle island
  g.add_edge(3, 2, 1.0);
  auto r = dsg::bellman_ford(g.to_matrix(), 0);
  EXPECT_DOUBLE_EQ(r.dist[1], 1.0);
}

// --- Stats plumbing. ----------------------------------------------------------

TEST(SsspStats, BucketsCountedOnPathGraph) {
  EdgeList g(5);
  for (Index v = 0; v + 1 < 5; ++v) g.add_edge(v, v + 1, 1.0);
  dsg::DeltaSteppingOptions o;
  o.delta = 1.0;
  auto r = dsg::delta_stepping_fused(g.to_matrix(), 0, o);
  // Distances 0..4 with delta 1 -> 5 buckets processed.
  EXPECT_EQ(r.stats.outer_iterations, 5u);
  EXPECT_GE(r.stats.light_phases, 5u);
}

TEST(SsspStats, SingleBucketWhenDeltaHuge) {
  EdgeList g(5);
  for (Index v = 0; v + 1 < 5; ++v) g.add_edge(v, v + 1, 1.0);
  dsg::DeltaSteppingOptions o;
  o.delta = 1000.0;  // Bellman-Ford regime: one bucket, many phases
  auto r = dsg::delta_stepping_fused(g.to_matrix(), 0, o);
  EXPECT_EQ(r.stats.outer_iterations, 1u);
  EXPECT_GE(r.stats.light_phases, 4u);
}

}  // namespace
