// Hand-computed SSSP instances exercised against every implementation,
// via the shared fixture layer in test_support.hpp.
#include <gtest/gtest.h>

#include "graph/edge_list.hpp"
#include "sssp/paths.hpp"
#include "test_support.hpp"

namespace {

using dsg::EdgeList;
using dsg::kInfDist;
using dsg::test::Impl;
using grb::Index;

class AllImpls : public ::testing::TestWithParam<Impl> {};

INSTANTIATE_TEST_SUITE_P(Sssp, AllImpls,
                         ::testing::ValuesIn(dsg::test::all_sssp_impls()),
                         [](const auto& param_info) {
                           return param_info.param.name;
                         });

TEST_P(AllImpls, DiamondDigraph) {
  auto r = GetParam().fn(dsg::test::diamond_graph().to_matrix(), 0, 3.0);
  dsg::test::expect_distances(r.dist, dsg::test::diamond_distances_from_0(),
                              GetParam().name);
}

TEST_P(AllImpls, DiamondFromOtherSource) {
  auto r = GetParam().fn(dsg::test::diamond_graph().to_matrix(), 3, 2.0);
  dsg::test::expect_distances(r.dist, {9.0, 3.0, 4.0, 0.0, 2.0},
                              GetParam().name);
}

TEST_P(AllImpls, UnweightedPathGraphCountsHops) {
  auto r = GetParam().fn(dsg::test::path_graph(6).to_matrix(), 0, 1.0);
  dsg::test::expect_distances(r.dist, dsg::test::path_distances_from_0(6),
                              GetParam().name);
}

TEST_P(AllImpls, DisconnectedComponentStaysInfinite) {
  auto r = GetParam().fn(dsg::test::two_islands_graph().to_matrix(), 0, 1.0);
  dsg::test::expect_distances(
      r.dist, dsg::test::two_islands_distances_from_0(), GetParam().name);
}

TEST_P(AllImpls, ShorterLongRouteBeatsDirectEdge) {
  // Direct heavy edge 0->2 (10) loses to the two-hop light route (3).
  EdgeList g(3);
  g.add_edge(0, 2, 10.0);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  auto r = GetParam().fn(g.to_matrix(), 0, 2.5);
  EXPECT_DOUBLE_EQ(r.dist[2], 3.0);
}

TEST_P(AllImpls, SingleVertexGraph) {
  EdgeList g(1);
  auto r = GetParam().fn(g.to_matrix(), 0, 1.0);
  ASSERT_EQ(r.dist.size(), 1u);
  EXPECT_DOUBLE_EQ(r.dist[0], 0.0);
}

TEST_P(AllImpls, TwoVertexBothDirections) {
  EdgeList g(2);
  g.add_edge(0, 1, 2.5);
  g.add_edge(1, 0, 0.5);
  auto r = GetParam().fn(g.to_matrix(), 1, 1.0);
  EXPECT_DOUBLE_EQ(r.dist[0], 0.5);
  EXPECT_DOUBLE_EQ(r.dist[1], 0.0);
}

TEST_P(AllImpls, ZigzagRequiresReintroduction) {
  // Classic delta-stepping stress: improving a vertex within the same
  // bucket multiple times (light edge chains inside one bucket).
  auto r = GetParam().fn(dsg::test::zigzag_graph().to_matrix(), 0, 1.0);
  dsg::test::expect_distances(r.dist, dsg::test::zigzag_distances_from_0(),
                              GetParam().name);
}

// --- Baseline-specific checks. ----------------------------------------------

TEST(Dijkstra, ParentsFormShortestPathTree) {
  std::vector<Index> parent;
  auto r = dsg::dijkstra_with_parents(dsg::test::diamond_graph().to_matrix(),
                                      0, parent);
  EXPECT_EQ(parent[0], dsg::kNoParent);
  EXPECT_EQ(parent[3], 0u);
  EXPECT_EQ(parent[1], 3u);  // 0->3->1 = 8 beats 0->1 = 10
  EXPECT_EQ(parent[2], 1u);
  EXPECT_EQ(parent[4], 3u);
  // Tree edges are tight.
  auto a = dsg::test::diamond_graph().to_matrix();
  for (Index v = 1; v < 5; ++v) {
    auto w = a.extract_element(parent[v], v);
    ASSERT_TRUE(w.has_value());
    EXPECT_DOUBLE_EQ(r.dist[parent[v]] + *w, r.dist[v]);
  }
}

TEST(BellmanFord, HandlesNegativeEdgesOnDag) {
  EdgeList g(4);
  g.add_edge(0, 1, 4.0);
  g.add_edge(0, 2, 2.0);
  g.add_edge(2, 1, -1.0);
  g.add_edge(1, 3, 1.0);
  auto r = dsg::bellman_ford(g.to_matrix(), 0);
  EXPECT_DOUBLE_EQ(r.dist[1], 1.0);  // 0->2->1
  EXPECT_DOUBLE_EQ(r.dist[3], 2.0);
}

TEST(BellmanFord, DetectsNegativeCycle) {
  EdgeList g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, -2.0);
  g.add_edge(2, 1, 1.0);  // 1->2->1 loop of weight -1
  EXPECT_THROW(dsg::bellman_ford(g.to_matrix(), 0), grb::InvalidValue);
  EXPECT_THROW(dsg::bellman_ford_rounds(g.to_matrix(), 0), grb::InvalidValue);
}

TEST(BellmanFord, IgnoresUnreachableNegativeCycle) {
  EdgeList g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, -5.0);  // negative cycle island
  g.add_edge(3, 2, 1.0);
  auto r = dsg::bellman_ford(g.to_matrix(), 0);
  EXPECT_DOUBLE_EQ(r.dist[1], 1.0);
}

// --- Stats plumbing. ----------------------------------------------------------

TEST(SsspStats, BucketsCountedOnPathGraph) {
  EdgeList g(5);
  for (Index v = 0; v + 1 < 5; ++v) g.add_edge(v, v + 1, 1.0);
  dsg::DeltaSteppingOptions o;
  o.delta = 1.0;
  auto r = dsg::delta_stepping_fused(g.to_matrix(), 0, o);
  // Distances 0..4 with delta 1 -> 5 buckets processed.
  EXPECT_EQ(r.stats.outer_iterations, 5u);
  EXPECT_GE(r.stats.light_phases, 5u);
}

TEST(SsspStats, SingleBucketWhenDeltaHuge) {
  EdgeList g(5);
  for (Index v = 0; v + 1 < 5; ++v) g.add_edge(v, v + 1, 1.0);
  dsg::DeltaSteppingOptions o;
  o.delta = 1000.0;  // Bellman-Ford regime: one bucket, many phases
  auto r = dsg::delta_stepping_fused(g.to_matrix(), 0, o);
  EXPECT_EQ(r.stats.outer_iterations, 1u);
  EXPECT_GE(r.stats.light_phases, 4u);
}

}  // namespace
