// test_result_cache.cpp — the serving layer's LRU result cache in
// isolation: hit/miss/eviction order, accounting, the capacity-0 and
// capacity-1 edge cases, and the fingerprint-mismatch guarantee (a cache
// can never serve distances computed for a different graph).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <stdexcept>
#include <vector>

#include "serving/result_cache.hpp"
#include "sssp/plan.hpp"
#include "test_support.hpp"

namespace dsg::serving {
namespace {

using grb::Index;

CacheKey key_for(std::uint64_t fingerprint, Index source) {
  CacheKey key;
  key.plan_fingerprint = fingerprint;
  key.source = source;
  key.algorithm = 4;  // kFused
  key.delta = 1.0;
  return key;
}

ResultCache::Distances dist_of(double value) {
  return std::make_shared<const std::vector<double>>(
      std::vector<double>{value});
}

TEST(ResultCache, MissThenHit) {
  ResultCache cache(4);
  const CacheKey key = key_for(1, 0);
  EXPECT_EQ(cache.lookup(key), nullptr);
  cache.insert(key, dist_of(7.0));
  const ResultCache::Distances hit = cache.lookup(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ((*hit)[0], 7.0);

  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.capacity, 4u);
}

TEST(ResultCache, EvictsLeastRecentlyUsedInOrder) {
  ResultCache cache(3);
  for (Index s = 0; s < 3; ++s) cache.insert(key_for(1, s), dist_of(s));
  // Touch 0: LRU order (oldest first) becomes 1, 2, 0.
  ASSERT_NE(cache.lookup(key_for(1, 0)), nullptr);
  // Each insert past capacity evicts exactly the current oldest.
  cache.insert(key_for(1, 3), dist_of(3.0));  // evicts 1
  EXPECT_EQ(cache.lookup(key_for(1, 1)), nullptr);
  EXPECT_NE(cache.lookup(key_for(1, 2)), nullptr);  // order now 0, 3, 2
  cache.insert(key_for(1, 4), dist_of(4.0));        // evicts 0
  EXPECT_EQ(cache.lookup(key_for(1, 0)), nullptr);
  EXPECT_NE(cache.lookup(key_for(1, 3)), nullptr);
  EXPECT_NE(cache.lookup(key_for(1, 4)), nullptr);

  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.insertions, 5u);
}

TEST(ResultCache, ReinsertRefreshesValueAndRecency) {
  ResultCache cache(2);
  cache.insert(key_for(1, 0), dist_of(1.0));
  cache.insert(key_for(1, 1), dist_of(2.0));
  // Refresh key 0: no eviction (the key is already resident), and 0 moves
  // to most-recently-used, so the next eviction victim is 1.
  cache.insert(key_for(1, 0), dist_of(9.0));
  EXPECT_EQ(cache.stats().evictions, 0u);
  cache.insert(key_for(1, 2), dist_of(3.0));
  EXPECT_EQ(cache.lookup(key_for(1, 1)), nullptr);
  const ResultCache::Distances hit = cache.lookup(key_for(1, 0));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ((*hit)[0], 9.0);
}

TEST(ResultCache, CapacityZeroDisablesEverything) {
  ResultCache cache(0);
  cache.insert(key_for(1, 0), dist_of(1.0));
  EXPECT_EQ(cache.lookup(key_for(1, 0)), nullptr);
  const ResultCacheStats stats = cache.stats();
  // A dropped insert is not an eviction — nothing was ever resident.
  EXPECT_EQ(stats.insertions, 0u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(ResultCache, CapacityOneIsAValidLru) {
  ResultCache cache(1);
  cache.insert(key_for(1, 0), dist_of(1.0));
  cache.insert(key_for(1, 1), dist_of(2.0));  // evicts 0
  EXPECT_EQ(cache.lookup(key_for(1, 0)), nullptr);
  EXPECT_NE(cache.lookup(key_for(1, 1)), nullptr);
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ResultCache, HitKeepsValueAliveAcrossEviction) {
  ResultCache cache(1);
  cache.insert(key_for(1, 0), dist_of(5.0));
  const ResultCache::Distances held = cache.lookup(key_for(1, 0));
  ASSERT_NE(held, nullptr);
  cache.insert(key_for(1, 1), dist_of(6.0));  // evicts 0 while `held` lives
  EXPECT_EQ((*held)[0], 5.0);
}

TEST(ResultCache, ClearEmptiesButKeepsCounters) {
  ResultCache cache(4);
  cache.insert(key_for(1, 0), dist_of(1.0));
  ASSERT_NE(cache.lookup(key_for(1, 0)), nullptr);
  cache.clear();
  EXPECT_EQ(cache.lookup(key_for(1, 0)), nullptr);
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

// Every component of the key must discriminate: same (source, algorithm,
// delta) under a different fingerprint — or a different algorithm or Δ
// under the same fingerprint — can never alias.
TEST(ResultCache, KeyComponentsNeverAlias) {
  ResultCache cache(8);
  const CacheKey base = key_for(0xAAAA, 3);
  cache.insert(base, dist_of(1.0));

  CacheKey other_plan = base;
  other_plan.plan_fingerprint = 0xBBBB;
  CacheKey other_alg = base;
  other_alg.algorithm = 7;  // kDijkstra
  CacheKey other_delta = base;
  other_delta.delta = 2.0;
  CacheKey other_source = base;
  other_source.source = 4;

  EXPECT_EQ(cache.lookup(other_plan), nullptr);
  EXPECT_EQ(cache.lookup(other_alg), nullptr);
  EXPECT_EQ(cache.lookup(other_delta), nullptr);
  EXPECT_EQ(cache.lookup(other_source), nullptr);
  EXPECT_NE(cache.lookup(base), nullptr);
}

// The fingerprint is the load-bearing guard: two structurally different
// graphs — same size, same query — produce different GraphPlan
// fingerprints, so a shared cache can never serve one graph's distances
// for the other.  (Equal-weight copies of the same graph, by design, DO
// share a fingerprint: their distances are interchangeable.)
TEST(ResultCache, DistinctGraphsHaveDistinctFingerprints) {
  GraphPlan diamond(test::diamond_graph().to_matrix());
  GraphPlan zigzag(test::zigzag_graph().to_matrix());
  GraphPlan path5(test::path_graph(5).to_matrix());
  GraphPlan diamond_again(test::diamond_graph().to_matrix());

  EXPECT_NE(diamond.fingerprint(), zigzag.fingerprint());
  EXPECT_NE(diamond.fingerprint(), path5.fingerprint());
  EXPECT_NE(zigzag.fingerprint(), path5.fingerprint());
  EXPECT_EQ(diamond.fingerprint(), diamond_again.fingerprint());

  ResultCache cache(8);
  CacheKey diamond_key = key_for(diamond.fingerprint(), 0);
  cache.insert(diamond_key, dist_of(42.0));
  EXPECT_EQ(cache.lookup(key_for(zigzag.fingerprint(), 0)), nullptr);
  EXPECT_NE(cache.lookup(key_for(diamond_again.fingerprint(), 0)), nullptr);
}

// A weight perturbation alone (identical structure) must also flip the
// fingerprint — distances depend on values, not just sparsity.
TEST(ResultCache, WeightChangeFlipsFingerprint) {
  EdgeList g1 = test::diamond_graph();
  GraphPlan p1(g1.to_matrix());
  EdgeList g2(5);
  g2.add_edge(0, 1, 10.0);
  g2.add_edge(0, 3, 5.0);
  g2.add_edge(1, 2, 1.0);
  g2.add_edge(1, 3, 2.0);
  g2.add_edge(2, 4, 4.0);
  g2.add_edge(3, 1, 3.0);
  g2.add_edge(3, 2, 9.5);  // one weight differs
  g2.add_edge(3, 4, 2.0);
  g2.add_edge(4, 0, 7.0);
  g2.add_edge(4, 2, 6.0);
  GraphPlan p2(g2.to_matrix());
  EXPECT_NE(p1.fingerprint(), p2.fingerprint());
}

TEST(ResultCache, ConcurrentMixedTrafficKeepsAccountingConsistent) {
  ResultCache cache(16);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::uint64_t> lookups(kThreads, 0);
  std::vector<std::uint64_t> inserts(kThreads, 0);
  test::run_concurrent_stress(kThreads, 99, [&](int t, std::mt19937_64& rng) {
    for (int i = 0; i < kOpsPerThread; ++i) {
      const Index source = static_cast<Index>(rng() % 32);
      if (rng() % 2 == 0) {
        ++lookups[static_cast<std::size_t>(t)];
        const ResultCache::Distances hit = cache.lookup(key_for(1, source));
        // Values are keyed deterministically, so any hit must carry its
        // own key's value — a torn or cross-wired entry throws here.
        if (hit && (*hit)[0] != static_cast<double>(source)) {
          throw std::runtime_error("cache served a wrong value");
        }
      } else {
        ++inserts[static_cast<std::size_t>(t)];
        cache.insert(key_for(1, source),
                     dist_of(static_cast<double>(source)));
      }
    }
  });
  std::uint64_t total_lookups = 0;
  std::uint64_t total_inserts = 0;
  for (int t = 0; t < kThreads; ++t) {
    total_lookups += lookups[static_cast<std::size_t>(t)];
    total_inserts += inserts[static_cast<std::size_t>(t)];
  }
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, total_lookups);
  EXPECT_EQ(stats.insertions, total_inserts);
  // Conservation: every insertion either refreshed a resident key, is
  // still resident, or was eventually evicted — so evictions can never
  // exceed insertions, and residency never exceeds capacity.
  EXPECT_LE(stats.evictions, stats.insertions);
  EXPECT_LE(stats.entries, 16u);
  EXPECT_EQ(stats.capacity, 16u);
}

}  // namespace
}  // namespace dsg::serving
