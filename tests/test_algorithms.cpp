// Unit + property tests for the GraphBLAS algorithm collection (BFS,
// connected components, PageRank, triangles, K-truss), each cross-checked
// against an independent reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "algorithms/bfs.hpp"
#include "algorithms/connected_components.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/triangles.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "graph/weights.hpp"
#include "sssp/paths.hpp"

namespace {

using dsg::EdgeList;
using grb::Index;

EdgeList undirected_sample(std::uint64_t seed) {
  auto g = dsg::generate_rmat({.scale = 8, .edge_factor = 6, .seed = seed});
  g.symmetrize();
  dsg::assign_unit_weights(g);
  g.normalize();
  return g;
}

// --- BFS. ---------------------------------------------------------------------

TEST(BfsGraphBlas, LevelsMatchReferenceBfs) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    auto g = undirected_sample(seed);
    auto a = g.to_matrix();
    auto got = dsg::bfs_levels_graphblas(a, 0);
    auto want = dsg::bfs_levels(g, 0);
    ASSERT_EQ(got.size(), want.size());
    for (Index v = 0; v < g.num_vertices(); ++v) {
      if (want[v] == std::numeric_limits<Index>::max()) {
        EXPECT_EQ(got[v], dsg::kUnreachedLevel) << "v=" << v;
      } else {
        EXPECT_EQ(got[v], want[v]) << "v=" << v;
      }
    }
  }
}

TEST(BfsGraphBlas, PathGraph) {
  auto g = dsg::generate_path(6);
  auto levels = dsg::bfs_levels_graphblas(g.to_matrix(), 2);
  EXPECT_EQ(levels[2], 0u);
  EXPECT_EQ(levels[0], 2u);
  EXPECT_EQ(levels[5], 3u);
}

TEST(BfsGraphBlas, DisconnectedStaysUnreached) {
  EdgeList g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 0, 1.0);
  g.add_edge(2, 3, 1.0);
  auto levels = dsg::bfs_levels_graphblas(g.to_matrix(), 0);
  EXPECT_EQ(levels[2], dsg::kUnreachedLevel);
  EXPECT_EQ(levels[3], dsg::kUnreachedLevel);
}

TEST(BfsGraphBlas, ParentsFormValidBfsTree) {
  auto g = undirected_sample(7);
  auto a = g.to_matrix();
  auto parent = dsg::bfs_parents_graphblas(a, 0);
  auto levels = dsg::bfs_levels_graphblas(a, 0);
  EXPECT_EQ(parent[0], dsg::kNoParent);
  for (Index v = 0; v < g.num_vertices(); ++v) {
    if (v == 0 || levels[v] == dsg::kUnreachedLevel) continue;
    ASSERT_NE(parent[v], dsg::kNoParent) << "v=" << v;
    // Parent is one level above and an actual in-neighbour.
    EXPECT_EQ(levels[parent[v]] + 1, levels[v]) << "v=" << v;
    EXPECT_TRUE(a.has_element(parent[v], v)) << "v=" << v;
  }
}

TEST(BfsGraphBlas, SourceOutOfRangeThrows) {
  auto g = dsg::generate_path(3);
  EXPECT_THROW(dsg::bfs_levels_graphblas(g.to_matrix(), 5),
               grb::IndexOutOfBounds);
}

// --- Connected components. ------------------------------------------------------

TEST(ConnectedComponents, MatchesReferenceCounts) {
  for (std::uint64_t seed : {1u, 5u, 9u}) {
    auto g = undirected_sample(seed);
    auto labels = dsg::connected_components_graphblas(g.to_matrix());
    auto ref_sizes = dsg::component_sizes(g);
    EXPECT_EQ(dsg::count_components(labels),
              static_cast<Index>(ref_sizes.size()));
  }
}

TEST(ConnectedComponents, LabelsAreConsistentWithinEdges) {
  auto g = undirected_sample(11);
  auto labels = dsg::connected_components_graphblas(g.to_matrix());
  for (const auto& e : g.edges()) {
    EXPECT_EQ(labels[e.src], labels[e.dst]);
  }
}

TEST(ConnectedComponents, LabelIsMinimumVertexId) {
  EdgeList g(6);
  g.add_edge(4, 5, 1.0);
  g.add_edge(5, 4, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 1, 1.0);
  auto labels = dsg::connected_components_graphblas(g.to_matrix());
  EXPECT_EQ(labels[4], 4u);
  EXPECT_EQ(labels[5], 4u);
  EXPECT_EQ(labels[1], 1u);
  EXPECT_EQ(labels[2], 1u);
  EXPECT_EQ(labels[0], 0u);  // isolated keeps own id
  EXPECT_EQ(labels[3], 3u);
  EXPECT_EQ(dsg::count_components(labels), 4u);
}

TEST(ConnectedComponents, SingleComponentGraph) {
  auto g = dsg::generate_connected_random(64, 32, 3);
  auto labels = dsg::connected_components_graphblas(g.to_matrix());
  EXPECT_EQ(dsg::count_components(labels), 1u);
  for (Index l : labels) EXPECT_EQ(l, 0u);
}

// --- PageRank. -------------------------------------------------------------------

TEST(PageRank, SumsToOneAndConverges) {
  auto g = undirected_sample(13);
  auto result = dsg::pagerank_graphblas(g.to_matrix(), {.tolerance = 1e-12});
  const double total =
      std::accumulate(result.rank.begin(), result.rank.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-6);
  EXPECT_LT(result.residual, 1e-10);
  EXPECT_GT(result.iterations, 1u);
}

TEST(PageRank, UniformOnCycle) {
  auto g = dsg::generate_cycle(8);
  auto result = dsg::pagerank_graphblas(g.to_matrix());
  for (double r : result.rank) {
    EXPECT_NEAR(r, 1.0 / 8.0, 1e-9);
  }
}

TEST(PageRank, HubOfStarDominates) {
  auto g = dsg::generate_star(20);
  auto result = dsg::pagerank_graphblas(g.to_matrix());
  for (Index v = 1; v < 20; ++v) {
    EXPECT_GT(result.rank[0], result.rank[v]);
  }
}

TEST(PageRank, HandlesDanglingVertices) {
  EdgeList g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);  // vertex 2 dangles
  auto result = dsg::pagerank_graphblas(g.to_matrix());
  const double total =
      std::accumulate(result.rank.begin(), result.rank.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-6);
  EXPECT_GT(result.rank[2], 0.0);
}

TEST(PageRank, RejectsBadDamping) {
  auto g = dsg::generate_cycle(4);
  EXPECT_THROW(dsg::pagerank_graphblas(g.to_matrix(), {.damping = 1.0}),
               grb::InvalidValue);
}

// --- Triangles / K-truss. ----------------------------------------------------------

std::uint64_t brute_force_triangles(const EdgeList& g) {
  auto a = g.to_matrix();
  std::uint64_t count = 0;
  const Index n = a.nrows();
  for (Index i = 0; i < n; ++i) {
    for (Index j = i + 1; j < n; ++j) {
      if (!a.has_element(i, j)) continue;
      for (Index k = j + 1; k < n; ++k) {
        if (a.has_element(i, k) && a.has_element(j, k)) ++count;
      }
    }
  }
  return count;
}

TEST(Triangles, KnownSmallCases) {
  // Triangle
  auto tri = dsg::generate_complete(3);
  EXPECT_EQ(dsg::triangle_count_graphblas(tri.to_matrix()), 1u);
  // K4 has 4 triangles; K5 has 10.
  EXPECT_EQ(dsg::triangle_count_graphblas(
                dsg::generate_complete(4).to_matrix()), 4u);
  EXPECT_EQ(dsg::triangle_count_graphblas(
                dsg::generate_complete(5).to_matrix()), 10u);
  // Trees and cycles >3 have none.
  EXPECT_EQ(dsg::triangle_count_graphblas(
                dsg::generate_binary_tree(15).to_matrix()), 0u);
  EXPECT_EQ(dsg::triangle_count_graphblas(
                dsg::generate_cycle(6).to_matrix()), 0u);
}

TEST(Triangles, MatchesBruteForceOnRandomGraphs) {
  for (std::uint64_t seed : {2u, 4u, 6u}) {
    auto g = dsg::generate_erdos_renyi(60, 400, seed);
    g.symmetrize();
    g.normalize();
    EXPECT_EQ(dsg::triangle_count_graphblas(g.to_matrix()),
              brute_force_triangles(g))
        << "seed " << seed;
  }
}

TEST(EdgeSupport, CountsTrianglesPerEdge) {
  // K4: every edge participates in exactly 2 triangles.
  auto g = dsg::generate_complete(4);
  auto support = dsg::edge_support_graphblas(g.to_matrix());
  support.for_each([&](Index, Index, const double& s) {
    EXPECT_DOUBLE_EQ(s, 2.0);
  });
  EXPECT_EQ(support.nvals(), 12u);
}

TEST(KTruss, K3KeepsOnlyTriangleEdges) {
  // Triangle 0-1-2 with a pendant 2-3: the pendant edge has no support.
  EdgeList g(4);
  auto add_sym = [&](Index i, Index j) {
    g.add_edge(i, j, 1.0);
    g.add_edge(j, i, 1.0);
  };
  add_sym(0, 1);
  add_sym(1, 2);
  add_sym(0, 2);
  add_sym(2, 3);
  auto truss = dsg::k_truss_graphblas(g.to_matrix(), 3);
  EXPECT_EQ(truss.nvals(), 6u);  // the triangle, both directions
  EXPECT_FALSE(truss.has_element(2, 3));
  EXPECT_TRUE(truss.has_element(0, 1));
}

TEST(KTruss, K4OfCompleteGraph) {
  // K5 is a 5-truss; asking for k=4 keeps everything.
  auto g = dsg::generate_complete(5);
  auto truss = dsg::k_truss_graphblas(g.to_matrix(), 4);
  EXPECT_EQ(truss.nvals(), 20u);
  // k=6 kills it entirely (every edge has support 3 < 4).
  auto empty = dsg::k_truss_graphblas(g.to_matrix(), 6);
  EXPECT_EQ(empty.nvals(), 0u);
}

TEST(KTruss, CascadingRemoval) {
  // Two triangles sharing an edge plus a tail: removing the tail first
  // round is not enough for k=4 — the whole structure unravels.
  EdgeList g(5);
  auto add_sym = [&](Index i, Index j) {
    g.add_edge(i, j, 1.0);
    g.add_edge(j, i, 1.0);
  };
  add_sym(0, 1);
  add_sym(1, 2);
  add_sym(0, 2);
  add_sym(1, 3);
  add_sym(2, 3);
  add_sym(3, 4);
  auto t3 = dsg::k_truss_graphblas(g.to_matrix(), 3);
  EXPECT_EQ(t3.nvals(), 10u);  // both triangles survive, tail dropped
  auto t4 = dsg::k_truss_graphblas(g.to_matrix(), 4);
  EXPECT_EQ(t4.nvals(), 0u);  // only edge (1,2) has support 2; cascade
}

TEST(KTruss, PreservesOriginalWeights) {
  EdgeList g(3);
  g.add_edge(0, 1, 2.5);
  g.add_edge(1, 0, 2.5);
  g.add_edge(1, 2, 3.5);
  g.add_edge(2, 1, 3.5);
  g.add_edge(0, 2, 4.5);
  g.add_edge(2, 0, 4.5);
  auto truss = dsg::k_truss_graphblas(g.to_matrix(), 3);
  EXPECT_DOUBLE_EQ(*truss.extract_element(0, 1), 2.5);
  EXPECT_DOUBLE_EQ(*truss.extract_element(2, 0), 4.5);
}

TEST(KTruss, RejectsBadK) {
  auto g = dsg::generate_complete(4);
  EXPECT_THROW(dsg::k_truss_graphblas(g.to_matrix(), 2), grb::InvalidValue);
}

}  // namespace
