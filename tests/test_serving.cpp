// test_serving.cpp — the SsspServer pool under concurrency: mixed-source
// traffic from many client threads checked against a Dijkstra oracle
// (cache on and off), cancellation and deadlines mid-stream, one poisoned
// query failing alone, ticket discipline, auto-algorithm selection, and
// the DsgServer_* C surface.
//
// Assertion discipline: client threads run inside run_concurrent_stress
// (test_support.hpp), where gtest macros are not safe — bodies throw on
// violation and the harness rethrows on the main thread.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "capi/graphblas.h"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "serving/server.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/validate.hpp"
#include "test_support.hpp"
#include "testing/fault_injection.hpp"

namespace dsg::serving {
namespace {

using grb::Index;

/// The stress graph: the suite's small-world graph with mixed real
/// weights, so the auto-Δ split has genuine light AND heavy edges and
/// queries take long enough to overlap across workers.
grb::Matrix<double> stress_graph() {
  EdgeList graph = generate_small_world(300, 4, 0.1, 7);
  graph.symmetrize();
  graph.normalize();
  assign_uniform_weights(graph, 0.1, 10.0, 101);
  return graph.to_matrix();
}

/// Memoized Dijkstra oracle over all sources of one graph.
class Oracle {
 public:
  explicit Oracle(const grb::Matrix<double>& a)
      : a_(a), dist_(a.nrows()) {}

  const std::vector<double>& operator[](Index source) {
    std::vector<double>& slot = dist_[source];
    if (slot.empty()) slot = dijkstra(a_, source).dist;
    return slot;
  }

 private:
  const grb::Matrix<double>& a_;
  std::vector<std::vector<double>> dist_;
};

/// Throws unless `got` matches the oracle's exact distances (1e-9, the
/// project-wide cross-implementation tolerance).
void require_oracle_match(const std::vector<double>& want,
                          const std::vector<double>& got, Index source) {
  const auto cmp = compare_distances(want, got, 1e-9);
  if (!cmp.ok) {
    throw std::runtime_error("source " + std::to_string(source) + ": " +
                             cmp.message);
  }
}

/// Throws unless `got` is a valid PARTIAL result for `source`: the source
/// itself settled at 0 and every entry is an upper bound on the truth.
void require_upper_bounds(const std::vector<double>& want,
                          const std::vector<double>& got, Index source) {
  if (got.size() != want.size()) {
    throw std::runtime_error("partial result has wrong size");
  }
  if (got[source] != 0.0) {
    throw std::runtime_error("partial result lost dist[source] == 0");
  }
  for (std::size_t v = 0; v < want.size(); ++v) {
    if (got[v] < want[v] - 1e-9) {
      throw std::runtime_error("partial result below true distance at vertex " +
                               std::to_string(v));
    }
  }
}

TEST(Serving, SingleQueryMatchesOracle) {
  SsspServer server(test::diamond_graph().to_matrix());
  const SsspServer::Ticket ticket = server.submit(0);
  const sssp::QueryResult r = server.wait(ticket);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.result.status, SsspStatus::kComplete);
  test::expect_distances(r.result.dist, test::diamond_distances_from_0(),
                         "served diamond");
}

// The headline stress: N client threads, mixed sources (a hot set plus
// per-thread randoms), every result checked against the oracle.  One leg
// with the cache on, one with it off — identical correctness contract.
class ServingStress : public ::testing::TestWithParam<bool> {};

TEST_P(ServingStress, ConcurrentMixedTrafficMatchesOracle) {
  const bool cache_on = GetParam();
  const grb::Matrix<double> a = stress_graph();
  const Index n = a.nrows();
  Oracle oracle(a);
  // Pre-warm the oracle for every source any thread can draw (worker
  // threads must not race the memoization).
  for (Index s = 0; s < n; ++s) oracle[s];

  ServerOptions options;
  options.num_workers = 3;
  options.queue_capacity = 8;  // small: exercises submit backpressure
  options.cache_capacity = cache_on ? 64 : 0;
  SsspServer server(grb::Matrix<double>(a), options);

  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 24;
  test::run_concurrent_stress(kClients, 7, [&](int t, std::mt19937_64& rng) {
    for (int q = 0; q < kQueriesPerClient; ++q) {
      // Half the traffic draws from an 8-source hot set (repeats across
      // threads feed the cache); half is thread-private uniform.
      const Index source = (q % 2 == 0)
                               ? static_cast<Index>(rng() % 8)
                               : static_cast<Index>(rng() % n);
      const SsspServer::Ticket ticket = server.submit(source);
      const sssp::QueryResult r = server.wait(ticket);
      if (!r.ok()) {
        throw std::runtime_error("query failed: " + r.error);
      }
      if (r.result.status != SsspStatus::kComplete) {
        throw std::runtime_error("query not complete");
      }
      require_oracle_match(oracle[source], r.result.dist, source);
      (void)t;
    }
  });

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted,
            static_cast<std::uint64_t>(kClients * kQueriesPerClient));
  EXPECT_EQ(stats.completed, stats.submitted);
  EXPECT_EQ(stats.failed, 0u);
  if (cache_on) {
    // Hot-set repeats guarantee hits: 48 hot-set queries over 8 sources
    // cannot all miss.  (The exact count is schedule-dependent.)
    EXPECT_GT(stats.cache.hits, 0u);
    EXPECT_EQ(stats.cache.hits + stats.cache.misses, stats.submitted);
  } else {
    EXPECT_EQ(stats.cache.hits, 0u);
    EXPECT_EQ(stats.cache.capacity, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(CacheOnOff, ServingStress, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& leg) {
                           return leg.param ? "CacheOn" : "CacheOff";
                         });

TEST(Serving, CacheHitReplaysBitIdenticalDistances) {
  ServerOptions options;
  options.num_workers = 1;
  SsspServer server(stress_graph(), options);
  const sssp::QueryResult first = server.wait(server.submit(5));
  const sssp::QueryResult second = server.wait(server.submit(5));
  ASSERT_TRUE(first.ok() && second.ok());
  ASSERT_EQ(first.result.dist.size(), second.result.dist.size());
  for (std::size_t v = 0; v < first.result.dist.size(); ++v) {
    EXPECT_EQ(first.result.dist[v], second.result.dist[v]) << "vertex " << v;
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.cache.hits, 1u);
  EXPECT_EQ(stats.cache.misses, 1u);
}

TEST(Serving, BypassCacheSkipsLookupAndInsert) {
  ServerOptions options;
  options.num_workers = 1;
  SsspServer server(test::diamond_graph().to_matrix(), options);
  SsspServer::Query query;
  query.source = 0;
  query.bypass_cache = true;
  ASSERT_TRUE(server.wait(server.submit(query)).ok());
  ASSERT_TRUE(server.wait(server.submit(query)).ok());
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.cache.hits, 0u);
  EXPECT_EQ(stats.cache.misses, 0u);
  EXPECT_EQ(stats.cache.entries, 0u);
}

// ---------------------------------------------------------------------------
// Lifecycle under the pool: deadlines, cancellation, poisoned queries.
// ---------------------------------------------------------------------------

TEST(Serving, PreCancelledQueryReturnsCancelledUpperBounds) {
  const grb::Matrix<double> a = stress_graph();
  Oracle oracle(a);
  const std::vector<double>& truth = oracle[3];
  SsspServer server{grb::Matrix<double>(a)};
  QueryControl control;
  control.request_cancel();
  const sssp::QueryResult r = server.wait(server.submit(3, control));
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.result.status, SsspStatus::kCancelled);
  require_upper_bounds(truth, r.result.dist, 3);
  // An interrupted result must never be cached.
  EXPECT_EQ(server.stats().cache.entries, 0u);
}

TEST(Serving, ExpiredDeadlineReturnsDeadlineExpired) {
  SsspServer server{stress_graph()};
  QueryControl control;
  control.set_timeout(0.0);  // already expired at the first poll
  const sssp::QueryResult r = server.wait(server.submit(3, control));
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.result.status, SsspStatus::kDeadlineExpired);
  EXPECT_EQ(server.stats().deadline_expired, 1u);
  EXPECT_EQ(server.stats().cache.entries, 0u);
}

// Mid-stream cancellation, racy by construction: a watcher thread cancels
// while workers chew through a stream that the fault injector has slowed
// down.  Whatever each query's outcome, its distances must be either
// exact or valid upper bounds — never garbage.
TEST(Serving, MidStreamCancellationLeavesOnlyValidResults) {
  const grb::Matrix<double> a = stress_graph();
  Oracle oracle(a);
  for (Index s = 0; s < 16; ++s) oracle[s];

  // Widen the race window: every worker query sleeps at pickup.
  testing::FaultSpec slow;
  slow.point = "serving/worker_query";
  slow.one_in = 1;
  slow.action = testing::FaultSpec::Action::kDelay;
  slow.delay = std::chrono::microseconds(500);
  testing::ScopedFaults faults(42, {slow});

  ServerOptions options;
  options.num_workers = 2;
  SsspServer server(grb::Matrix<double>(a), options);
  QueryControl control;
  std::vector<SsspServer::Ticket> tickets;
  tickets.reserve(16);
  for (Index s = 0; s < 16; ++s) tickets.push_back(server.submit(s, control));

  std::thread watcher([&control] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    control.request_cancel();
  });
  int cancelled = 0;
  for (Index s = 0; s < 16; ++s) {
    const sssp::QueryResult r = server.wait(tickets[static_cast<size_t>(s)]);
    ASSERT_TRUE(r.ok()) << r.error;
    if (r.result.status == SsspStatus::kComplete) {
      const auto cmp = compare_distances(oracle[s], r.result.dist, 1e-9);
      EXPECT_TRUE(cmp.ok) << cmp.message;
    } else {
      ASSERT_EQ(r.result.status, SsspStatus::kCancelled);
      ++cancelled;
      require_upper_bounds(oracle[s], r.result.dist, s);
    }
  }
  watcher.join();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed + stats.cancelled, 16u);
  EXPECT_EQ(stats.cancelled, static_cast<std::uint64_t>(cancelled));
}

// One poisoned query (targeted via its source key) fails alone: the other
// queries of the same stream complete exactly, and the pool survives.
TEST(Serving, PoisonedQueryFailsAloneAndPoolRecovers) {
  const grb::Matrix<double> a = stress_graph();
  Oracle oracle(a);
  for (Index s = 0; s < 8; ++s) oracle[s];

  constexpr Index kPoisoned = 5;
  testing::FaultSpec poison;
  poison.point = "serving/worker_query";
  poison.with_key = static_cast<std::int64_t>(kPoisoned);
  testing::ScopedFaults faults(1, {poison});

  ServerOptions options;
  options.num_workers = 2;
  options.cache_capacity = 0;  // keep every query an honest solve
  SsspServer server(grb::Matrix<double>(a), options);
  std::vector<SsspServer::Ticket> tickets;
  tickets.reserve(8);
  for (Index s = 0; s < 8; ++s) tickets.push_back(server.submit(s));

  for (Index s = 0; s < 8; ++s) {
    const sssp::QueryResult r = server.wait(tickets[static_cast<size_t>(s)]);
    if (s == kPoisoned) {
      EXPECT_FALSE(r.ok());
      EXPECT_EQ(r.result.status, SsspStatus::kFailed);
      EXPECT_FALSE(r.error.empty());
      ASSERT_NE(r.exception, nullptr);
      EXPECT_THROW(std::rethrow_exception(r.exception), std::bad_alloc);
    } else {
      ASSERT_TRUE(r.ok()) << "source " << s << ": " << r.error;
      const auto cmp = compare_distances(oracle[s], r.result.dist, 1e-9);
      EXPECT_TRUE(cmp.ok) << cmp.message;
    }
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 7u);

  // The pool is still serving after the failure.
  ASSERT_TRUE(server.wait(server.submit(0)).ok());
}

// ---------------------------------------------------------------------------
// Ticket discipline and shutdown.
// ---------------------------------------------------------------------------

TEST(Serving, TicketsRedeemExactlyOnce) {
  SsspServer server(test::diamond_graph().to_matrix());
  const SsspServer::Ticket ticket = server.submit(0);
  ASSERT_TRUE(server.wait(ticket).ok());
  EXPECT_THROW(server.wait(ticket), grb::InvalidValue);
  EXPECT_THROW(server.wait(ticket + 1000), grb::InvalidValue);
}

TEST(Serving, SubmitValidatesBeforeEnqueue) {
  SsspServer server(test::diamond_graph().to_matrix());
  EXPECT_THROW(server.submit(5), grb::IndexOutOfBounds);  // n == 5
  SsspServer::Query bad_alg;
  bad_alg.source = 0;
  bad_alg.algorithm = sssp::Algorithm::kCapi;
  EXPECT_THROW(server.submit(bad_alg), grb::InvalidValue);
  EXPECT_EQ(server.stats().submitted, 0u);
}

TEST(Serving, ShutdownDrainsAndRejectsNewWork) {
  SsspServer server{stress_graph()};
  std::vector<SsspServer::Ticket> tickets;
  tickets.reserve(6);
  for (Index s = 0; s < 6; ++s) tickets.push_back(server.submit(s));
  server.shutdown();
  server.shutdown();  // idempotent
  EXPECT_THROW(server.submit(0), grb::InvalidValue);
  // Everything submitted before shutdown stays redeemable.
  for (const SsspServer::Ticket ticket : tickets) {
    EXPECT_TRUE(server.wait(ticket).ok());
  }
}

TEST(Serving, PerQueryAlgorithmOverrideIsHonored) {
  const grb::Matrix<double> a = stress_graph();
  Oracle oracle(a);
  SsspServer server{grb::Matrix<double>(a)};
  SsspServer::Query query;
  query.source = 2;
  query.algorithm = sssp::Algorithm::kBuckets;
  query.bypass_cache = true;
  const sssp::QueryResult r = server.wait(server.submit(query));
  ASSERT_TRUE(r.ok()) << r.error;
  const auto cmp = compare_distances(oracle[2], r.result.dist, 1e-9);
  EXPECT_TRUE(cmp.ok) << cmp.message;
}

// ---------------------------------------------------------------------------
// Auto-algorithm selection.
// ---------------------------------------------------------------------------

TEST(Serving, AutoAlgorithmPicksDijkstraForTinyGraphs) {
  GraphPlan plan(test::diamond_graph().to_matrix());
  EXPECT_EQ(sssp::auto_algorithm(plan), sssp::Algorithm::kDijkstra);
  SsspServer server(test::diamond_graph().to_matrix());
  EXPECT_EQ(server.default_algorithm(), sssp::Algorithm::kDijkstra);
}

TEST(Serving, AutoAlgorithmPicksFusedForLightDominatedGraphs) {
  // 5000 unit-weight vertices, auto Δ: every edge is light.
  GraphPlan plan(test::path_graph(5000).to_matrix());
  EXPECT_EQ(sssp::auto_algorithm(plan), sssp::Algorithm::kFused);
}

TEST(Serving, AutoAlgorithmPicksDijkstraWhenAlmostNothingIsLight) {
  // Same 5000-vertex graph, but Δ far below every weight: the light
  // partition is empty and delta-stepping would degenerate.
  GraphPlan plan(test::path_graph(5000).to_matrix(), 0.125);
  EXPECT_EQ(sssp::auto_algorithm(plan), sssp::Algorithm::kDijkstra);
}

// ---------------------------------------------------------------------------
// The C surface: DsgServer_*.
// ---------------------------------------------------------------------------

class CapiServing : public ::testing::Test {
 protected:
  void SetUp() override {
    const EdgeList graph = test::diamond_graph();
    ASSERT_EQ(GrB_Matrix_new(&a_, 5, 5), GrB_SUCCESS);
    for (const auto& e : graph.edges()) {
      ASSERT_EQ(GrB_Matrix_setElement_FP64(a_, e.weight, e.src, e.dst),
                GrB_SUCCESS);
    }
  }

  void TearDown() override { GrB_Matrix_free(&a_); }

  GrB_Matrix a_ = nullptr;
};

TEST_F(CapiServing, SubmitWaitStatsRoundTrip) {
  DsgServer server = nullptr;
  ASSERT_EQ(DsgServer_new(&server, a_, DSG_SSSP_AUTO, DSG_SSSP_DELTA_AUTO, 2,
                          16, 8),
            GrB_SUCCESS);
  uint64_t ticket = 0;
  ASSERT_EQ(DsgServer_submit(server, 0, nullptr, &ticket), GrB_SUCCESS);
  std::vector<double> dist(5, -1.0);
  ASSERT_EQ(DsgServer_wait(server, ticket, dist.data()), GrB_SUCCESS);
  test::expect_distances(dist, test::diamond_distances_from_0(), "capi serve");

  // Second submit of the same source: served from cache, same distances.
  ASSERT_EQ(DsgServer_submit(server, 0, nullptr, &ticket), GrB_SUCCESS);
  std::vector<double> dist2(5, -1.0);
  ASSERT_EQ(DsgServer_wait(server, ticket, dist2.data()), GrB_SUCCESS);
  EXPECT_EQ(dist, dist2);

  DsgServerStats stats = {};
  ASSERT_EQ(DsgServer_stats(server, &stats), GrB_SUCCESS);
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.workers, 2u);
  EXPECT_EQ(stats.queue_capacity, 16u);
  EXPECT_EQ(stats.cache_capacity, 8u);

  EXPECT_EQ(DsgServer_free(&server), GrB_SUCCESS);
  EXPECT_EQ(server, nullptr);
  EXPECT_EQ(DsgServer_free(&server), GrB_SUCCESS);  // NULL-safe
}

TEST_F(CapiServing, SavePlanAndColdStartFromFile) {
  const std::string path = ::testing::TempDir() + "dsg_capi_server.plan";
  DsgServer server = nullptr;
  ASSERT_EQ(DsgServer_new(&server, a_, DSG_SSSP_FUSED, 2.5, 1, 4, 4),
            GrB_SUCCESS);
  ASSERT_EQ(DsgServer_save_plan(server, path.c_str()), GrB_SUCCESS);
  ASSERT_EQ(DsgServer_free(&server), GrB_SUCCESS);

  DsgServer loaded = nullptr;
  ASSERT_EQ(DsgServer_new_from_file(&loaded, path.c_str(), DSG_SSSP_FUSED, 1,
                                    4, 4),
            GrB_SUCCESS);
  uint64_t ticket = 0;
  ASSERT_EQ(DsgServer_submit(loaded, 0, nullptr, &ticket), GrB_SUCCESS);
  std::vector<double> dist(5, -1.0);
  ASSERT_EQ(DsgServer_wait(loaded, ticket, dist.data()), GrB_SUCCESS);
  test::expect_distances(dist, test::diamond_distances_from_0(), "cold start");
  ASSERT_EQ(DsgServer_free(&loaded), GrB_SUCCESS);
  std::remove(path.c_str());

  EXPECT_EQ(DsgServer_new_from_file(&loaded, (path + ".missing").c_str(),
                                    DSG_SSSP_AUTO, 1, 4, 4),
            GrB_INVALID_VALUE);
  EXPECT_EQ(loaded, nullptr);
}

TEST_F(CapiServing, QueryControlCodesSurface) {
  DsgServer server = nullptr;
  ASSERT_EQ(DsgServer_new(&server, a_, DSG_SSSP_AUTO, DSG_SSSP_DELTA_AUTO, 1,
                          4, 0),
            GrB_SUCCESS);
  DsgQueryControl control = nullptr;
  ASSERT_EQ(DsgQueryControl_new(&control), GrB_SUCCESS);
  ASSERT_EQ(DsgQueryControl_cancel(control), GrB_SUCCESS);
  uint64_t ticket = 0;
  ASSERT_EQ(DsgServer_submit(server, 0, control, &ticket), GrB_SUCCESS);
  std::vector<double> dist(5, -1.0);
  EXPECT_EQ(DsgServer_wait(server, ticket, dist.data()), DSG_CANCELLED);
  EXPECT_EQ(dist[0], 0.0);  // partial upper bounds were still written
  ASSERT_EQ(DsgQueryControl_free(&control), GrB_SUCCESS);
  ASSERT_EQ(DsgServer_free(&server), GrB_SUCCESS);
}

TEST_F(CapiServing, ErrorCodes) {
  DsgServer server = nullptr;
  // kCapi cannot run on pool workers.
  EXPECT_EQ(DsgServer_new(&server, a_, DSG_SSSP_CAPI, DSG_SSSP_DELTA_AUTO, 1,
                          4, 4),
            GrB_INVALID_VALUE);
  EXPECT_EQ(server, nullptr);
  EXPECT_EQ(DsgServer_new(&server, a_, static_cast<DsgSsspAlgorithm>(99),
                          DSG_SSSP_DELTA_AUTO, 1, 4, 4),
            GrB_INVALID_VALUE);
  EXPECT_EQ(DsgServer_new(nullptr, a_, DSG_SSSP_AUTO, DSG_SSSP_DELTA_AUTO, 1,
                          4, 4),
            GrB_NULL_POINTER);

  ASSERT_EQ(DsgServer_new(&server, a_, DSG_SSSP_AUTO, DSG_SSSP_DELTA_AUTO, 1,
                          4, 4),
            GrB_SUCCESS);
  uint64_t ticket = 0;
  EXPECT_EQ(DsgServer_submit(server, 99, nullptr, &ticket),
            GrB_INVALID_INDEX);
  EXPECT_EQ(DsgServer_submit(server, 0, nullptr, nullptr), GrB_NULL_POINTER);
  std::vector<double> dist(5);
  EXPECT_EQ(DsgServer_wait(server, 424242, dist.data()), GrB_INVALID_VALUE);
  EXPECT_EQ(DsgServer_stats(server, nullptr), GrB_NULL_POINTER);
  ASSERT_EQ(DsgServer_free(&server), GrB_SUCCESS);
  EXPECT_EQ(DsgServer_free(nullptr), GrB_NULL_POINTER);
}

}  // namespace
}  // namespace dsg::serving
