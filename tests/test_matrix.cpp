// Unit tests for grb::Matrix<T>: CSR construction, row access, element ops,
// build with dup, transpose, tuples.
#include <gtest/gtest.h>

#include <vector>

#include "graphblas/matrix.hpp"

namespace {

using grb::Index;

grb::Matrix<double> make_sample() {
  //     0    1    2    3
  // 0 [ .   1.0  2.0   . ]
  // 1 [ .    .   3.0   . ]
  // 2 [4.0   .    .   5.0]
  // 3 [ .    .    .    . ]
  const std::vector<Index> r{0, 0, 1, 2, 2};
  const std::vector<Index> c{1, 2, 2, 0, 3};
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  return grb::Matrix<double>::build(4, 4, r, c, v);
}

TEST(Matrix, EmptyConstruction) {
  grb::Matrix<double> m(3, 5);
  EXPECT_EQ(m.nrows(), 3u);
  EXPECT_EQ(m.ncols(), 5u);
  EXPECT_EQ(m.nvals(), 0u);
  EXPECT_TRUE(m.empty());
  EXPECT_TRUE(m.row_indices(1).empty());
}

TEST(Matrix, BuildProducesSortedRows) {
  auto m = make_sample();
  EXPECT_EQ(m.nvals(), 5u);
  auto row0 = m.row_indices(0);
  ASSERT_EQ(row0.size(), 2u);
  EXPECT_EQ(row0[0], 1u);
  EXPECT_EQ(row0[1], 2u);
  auto vals0 = m.row_values(0);
  EXPECT_DOUBLE_EQ(vals0[0], 1.0);
  EXPECT_DOUBLE_EQ(vals0[1], 2.0);
  EXPECT_EQ(m.row_nvals(3), 0u);
}

TEST(Matrix, BuildUnsortedInput) {
  const std::vector<Index> r{2, 0, 1, 0, 2};
  const std::vector<Index> c{3, 2, 2, 1, 0};
  const std::vector<double> v{5.0, 2.0, 3.0, 1.0, 4.0};
  auto m = grb::Matrix<double>::build(4, 4, r, c, v);
  EXPECT_EQ(m, make_sample());
}

TEST(Matrix, BuildCombinesDuplicatesWithDup) {
  const std::vector<Index> r{1, 1, 1};
  const std::vector<Index> c{2, 2, 2};
  const std::vector<double> v{5.0, 3.0, 4.0};
  auto m = grb::Matrix<double>::build(3, 3, r, c, v, grb::Min<double>{});
  EXPECT_EQ(m.nvals(), 1u);
  EXPECT_DOUBLE_EQ(*m.extract_element(1, 2), 3.0);
}

TEST(Matrix, BuildRejectsOutOfBounds) {
  const std::vector<Index> r{5};
  const std::vector<Index> c{0};
  const std::vector<double> v{1.0};
  EXPECT_THROW(grb::Matrix<double>::build(4, 4, r, c, v),
               grb::IndexOutOfBounds);
}

TEST(Matrix, BuildRejectsLengthMismatch) {
  const std::vector<Index> r{0, 1};
  const std::vector<Index> c{0};
  const std::vector<double> v{1.0};
  EXPECT_THROW(grb::Matrix<double>::build(4, 4, r, c, v), grb::InvalidValue);
}

TEST(Matrix, ExtractElement) {
  auto m = make_sample();
  EXPECT_DOUBLE_EQ(*m.extract_element(2, 3), 5.0);
  EXPECT_FALSE(m.extract_element(3, 3).has_value());
  EXPECT_TRUE(m.has_element(0, 1));
  EXPECT_FALSE(m.has_element(1, 0));
}

TEST(Matrix, SetElementInsertsAndUpdates) {
  auto m = make_sample();
  m.set_element(3, 1, 7.0);
  EXPECT_EQ(m.nvals(), 6u);
  EXPECT_DOUBLE_EQ(*m.extract_element(3, 1), 7.0);
  m.set_element(3, 1, 8.0);
  EXPECT_EQ(m.nvals(), 6u);
  EXPECT_DOUBLE_EQ(*m.extract_element(3, 1), 8.0);
  // Insertion keeps later rows' spans coherent.
  EXPECT_DOUBLE_EQ(*m.extract_element(2, 0), 4.0);
}

TEST(Matrix, RemoveElement) {
  auto m = make_sample();
  m.remove_element(0, 2);
  EXPECT_EQ(m.nvals(), 4u);
  EXPECT_FALSE(m.has_element(0, 2));
  EXPECT_DOUBLE_EQ(*m.extract_element(2, 3), 5.0);
  m.remove_element(0, 2);  // absent: no-op
  EXPECT_EQ(m.nvals(), 4u);
}

TEST(Matrix, ExtractTuplesRoundTrips) {
  auto m = make_sample();
  std::vector<Index> r, c;
  std::vector<double> v;
  m.extract_tuples(r, c, v);
  auto m2 = grb::Matrix<double>::build(4, 4, r, c, v);
  EXPECT_EQ(m, m2);
}

TEST(Matrix, ForEachRowMajor) {
  auto m = make_sample();
  std::vector<Index> rows;
  m.for_each([&](Index r, Index, double) { rows.push_back(r); });
  EXPECT_EQ(rows, (std::vector<Index>{0, 0, 1, 2, 2}));
}

TEST(Matrix, TransposedSwapsCoordinates) {
  auto m = make_sample();
  auto t = m.transposed();
  EXPECT_EQ(t.nrows(), 4u);
  EXPECT_EQ(t.nvals(), m.nvals());
  m.for_each([&](Index r, Index c, double v) {
    auto got = t.extract_element(c, r);
    ASSERT_TRUE(got.has_value());
    EXPECT_DOUBLE_EQ(*got, v);
  });
}

TEST(Matrix, DoubleTransposeIsIdentity) {
  auto m = make_sample();
  EXPECT_EQ(m.transposed().transposed(), m);
}

TEST(Matrix, TransposeRectangular) {
  const std::vector<Index> r{0, 1};
  const std::vector<Index> c{4, 0};
  const std::vector<double> v{1.0, 2.0};
  auto m = grb::Matrix<double>::build(2, 5, r, c, v);
  auto t = m.transposed();
  EXPECT_EQ(t.nrows(), 5u);
  EXPECT_EQ(t.ncols(), 2u);
  EXPECT_DOUBLE_EQ(*t.extract_element(4, 0), 1.0);
  EXPECT_DOUBLE_EQ(*t.extract_element(0, 1), 2.0);
}

TEST(Matrix, ClearKeepsDimensions) {
  auto m = make_sample();
  m.clear();
  EXPECT_EQ(m.nrows(), 4u);
  EXPECT_EQ(m.nvals(), 0u);
  EXPECT_TRUE(m.row_indices(2).empty());
}

TEST(Matrix, BoolMatrixWorks) {
  grb::Matrix<bool> m(2, 2);
  m.set_element(0, 1, true);
  m.set_element(1, 0, false);
  EXPECT_EQ(m.nvals(), 2u);
  EXPECT_TRUE(*m.extract_element(0, 1));
  EXPECT_FALSE(*m.extract_element(1, 0));
}

TEST(Matrix, RowAccessOutOfRangeThrows) {
  auto m = make_sample();
  EXPECT_THROW(m.row_indices(4), grb::IndexOutOfBounds);
  EXPECT_THROW(m.row_values(4), grb::IndexOutOfBounds);
  EXPECT_THROW(m.set_element(0, 9, 1.0), grb::IndexOutOfBounds);
}

}  // namespace
