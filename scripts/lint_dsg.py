#!/usr/bin/env python3
"""lint_dsg.py -- project-specific static lints for the delta-stepping tree.

Four machine-checked rules that clang-tidy cannot express (they encode
*this* project's contracts, documented in docs/ARCHITECTURE.md under
"Correctness tooling"):

  atomics-confinement
      Raw std::atomic access -- the std::atomic/std::atomic_ref spellings,
      memory_order_* arguments, compare_exchange_*, .fetch_*() RMWs, and
      #include <atomic> -- is only legal in the audited allowlist:
          src/sssp/async/write_min.hpp      (CAS min relaxation primitive)
          src/sssp/async/async_stepping.cpp (async engine internals)
          src/sssp/query_control.hpp        (cancel flag + audited wrappers)
      Everything else must route through the wrappers those files export
      (dsg::async::write_min, dsg::RelaxedCounter, dsg::PublishedFlag).
      Extending the allowlist means auditing the new file's ordering
      argument and editing ALLOWED_ATOMICS here, in the same review.

  capi-guard
      Every extern "C" API entry point defined in src/capi/*.cpp (names
      GrB_* / GxB_* / Dsg*) must route through guarded(), the
      exception->GrB_Info translation wrapper, so no C++ exception can
      cross the C ABI boundary.

  header-hygiene
      No '#include' of a .cpp file anywhere, and no 'using namespace' at
      any scope in headers (.h/.hpp).

  lock-discipline
      Raw .lock()/.unlock() on a mutex (std::mutex variants or the
      project's AuditedMutex) is only legal inside testing/lock_audit.*
      (the lockdep wrappers themselves).  Everything else must hold locks
      through lock_guard / unique_lock / scoped_lock, so no code path can
      leak a lock past an exception -- and so the lockdep auditor sees
      every acquisition.  Mutex variable NAMES are collected tree-wide
      (declarations live in headers, call sites in .cpp files), then any
      name.lock()/name.unlock() call site outside the allowlist is
      flagged.  Calling .unlock() on a unique_lock GUARD is fine and not
      flagged: the guard still owns the mutex's cleanup.

Usage:
  lint_dsg.py                 lint <repo>/src (the script's ../src)
  lint_dsg.py --root DIR      lint DIR instead (fixtures, tests)
  lint_dsg.py --self-test     run the bundled good/bad fixtures and exit

Exit status: 0 clean, 1 violations found (or self-test failure),
2 usage/internal error.  Output: one "file:line: [rule] message" per
violation, gcc-style, so editors and CI annotate them.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# --- Rule configuration -----------------------------------------------------

# Files (relative to the lint root) where raw atomics are legal.
ALLOWED_ATOMICS = {
    "sssp/async/write_min.hpp",
    "sssp/async/async_stepping.cpp",
    "sssp/query_control.hpp",
    # The lockdep auditor's violation-handler pointer: one default-seq_cst
    # exchange/load, no ordering subtleties.  The auditor cannot route
    # through the audited wrappers without auditing itself.
    "testing/lock_audit.cpp",
}

ATOMIC_TOKENS = re.compile(
    r"""std::atomic\b            # the type and atomic_ref, atomic_flag...
      | std::memory_order\b
      | \bmemory_order_(?:relaxed|consume|acquire|release|acq_rel|seq_cst)\b
      | \.compare_exchange_(?:weak|strong)\b
      | \.fetch_(?:add|sub|and|or|xor)\s*\(
      | \#\s*include\s*<atomic>
    """,
    re.VERBOSE,
)

HEADER_SUFFIXES = {".h", ".hpp"}
SOURCE_SUFFIXES = {".h", ".hpp", ".cpp"}

# A C-API entry point: GrB_* / GxB_* / Dsg* at the start of a (possibly
# multi-token) declarator, immediately followed by an argument list.
CAPI_ENTRY = re.compile(r"\b((?:GrB|GxB|Dsg)[A-Za-z0-9_]*)\s*\(")

USING_NAMESPACE = re.compile(r"\busing\s+namespace\b")
INCLUDE_CPP = re.compile(r'#\s*include\s*["<][^">]*\.cpp[">]')

# An entry body counts as guarded when it calls guarded() directly or one of
# the guard-equivalent dispatch helpers (internal-linkage functions whose own
# bodies route through guarded()).  Adding a helper here requires that it
# wrap *all* its callback invocations in guarded(), like these two do.
GUARD_CALLS = ("guarded(", "run_vector_op(", "run_matrix_op(")

# Files (relative to the lint root) where raw mutex .lock()/.unlock() is
# legal: the lockdep wrappers themselves, which forward to the underlying
# std::mutex by definition.
ALLOWED_RAW_LOCK = {
    "testing/lock_audit.hpp",
    "testing/lock_audit.cpp",
}

# A mutex *variable* declaration: the type (possibly qualified/mutable/
# static), then the variable name, then an initializer or semicolon.
# Function declarations (name followed by '(') deliberately do not match.
MUTEX_DECL = re.compile(
    r"""\b(?:std::(?:recursive_|timed_|recursive_timed_|shared_)?mutex
          | (?:dsg::)?(?:testing::)?AuditedMutex)
        \s+([A-Za-z_]\w*)\s*(?:;|\{|=)
    """,
    re.VERBOSE,
)


class Violation:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Replaces comment and string-literal contents with spaces, preserving
    line structure so reported line numbers stay exact."""
    out = []
    i, n = 0, len(text)
    mode = "code"  # code | line | block | str | chr
    quote = '"'
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                # Raw string literal: R"delim( ... )delim"
                if out and out[-1] == "R" and (len(out) < 2 or not out[-2].isalnum()):
                    m = re.match(r'R"([^()\s\\]*)\(', text[i - 1 : i + 32])
                    if m:
                        end = text.find(")" + m.group(1) + '"', i)
                        if end == -1:
                            end = n - 1
                        end += len(m.group(1)) + 2
                        seg = text[i : end]
                        out.append('"' + re.sub(r"[^\n]", " ", seg[1:-1]) + '"')
                        i = end
                        continue
                mode, quote = "str", '"'
                out.append(c)
                i += 1
                continue
            if c == "'":
                mode, quote = "chr", "'"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif mode == "line":
            if c == "\n":
                mode = "code"
                out.append(c)
            else:
                out.append(" ")
        elif mode == "block":
            if c == "*" and nxt == "/":
                mode = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # str / chr
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                mode = "code"
                out.append(c)
            else:
                out.append(c if c == "\n" else " ")
        i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def iter_sources(root: Path):
    for path in sorted(root.rglob("*")):
        if path.suffix in SOURCE_SUFFIXES and path.is_file():
            yield path


# --- Rules ------------------------------------------------------------------


def check_atomics(root: Path, path: Path, code: str) -> list[Violation]:
    rel = path.relative_to(root).as_posix()
    if rel in ALLOWED_ATOMICS:
        return []
    out = []
    for m in ATOMIC_TOKENS.finditer(code):
        out.append(
            Violation(
                path,
                line_of(code, m.start()),
                "atomics-confinement",
                f"raw atomic token '{m.group(0).strip()}' outside the audited "
                "allowlist; use the wrappers in sssp/query_control.hpp or "
                "sssp/async/write_min.hpp (see docs/ARCHITECTURE.md)",
            )
        )
    return out


def find_capi_entries(code: str):
    """Yields (name, name_offset, body_start, body_end) for every top-level
    C-API function *definition* (argument list followed by a brace body)."""
    for m in CAPI_ENTRY.finditer(code):
        # Walk the argument list to its matching ')'.
        depth = 0
        i = m.end() - 1
        while i < len(code):
            if code[i] == "(":
                depth += 1
            elif code[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        if i >= len(code):
            continue
        j = i + 1
        while j < len(code) and code[j] in " \t\n":
            j += 1
        if j >= len(code) or code[j] != "{":
            continue  # declaration, call, or pointer — not a definition
        # The token before the name must end a previous statement or be a
        # declarator token, not a call context like 'return Foo(...)'.
        k = m.start() - 1
        while k >= 0 and code[k] in " \t\n*&":
            k -= 1
        if k >= 0 and not (code[k].isalnum() or code[k] in "_;}{"):
            continue
        # Matching close brace of the body.
        depth = 0
        end = j
        while end < len(code):
            if code[end] == "{":
                depth += 1
            elif code[end] == "}":
                depth -= 1
                if depth == 0:
                    break
            end += 1
        yield m.group(1), m.start(), j, end


def check_capi_guard(root: Path, path: Path, code: str) -> list[Violation]:
    rel = path.relative_to(root).as_posix()
    if not (rel.startswith("capi/") and path.suffix == ".cpp"):
        return []
    out = []
    for name, off, body_start, body_end in find_capi_entries(code):
        body = code[body_start:body_end]
        if not any(call in body for call in GUARD_CALLS):
            out.append(
                Violation(
                    path,
                    line_of(code, off),
                    "capi-guard",
                    f"C API entry '{name}' does not route through guarded(); "
                    "an exception here would cross the C ABI boundary",
                )
            )
    return out


def check_header_hygiene(root: Path, path: Path, code: str) -> list[Violation]:
    del root
    out = []
    for m in INCLUDE_CPP.finditer(code):
        out.append(
            Violation(
                path,
                line_of(code, m.start()),
                "header-hygiene",
                "#include of a .cpp file",
            )
        )
    if path.suffix in HEADER_SUFFIXES:
        for m in USING_NAMESPACE.finditer(code):
            out.append(
                Violation(
                    path,
                    line_of(code, m.start()),
                    "header-hygiene",
                    "'using namespace' in a header leaks into every includer",
                )
            )
    return out


# Tree-wide mutex-name collection for the lock-discipline rule.  Mutex
# members are declared in headers but locked in .cpp files, so a per-file
# scan would miss exactly the call sites that matter.  Keyed by root:
# self-test lints two separate fixture trees in one process.
_MUTEX_NAME_CACHE: dict[Path, frozenset[str]] = {}


def mutex_names(root: Path) -> frozenset[str]:
    cached = _MUTEX_NAME_CACHE.get(root)
    if cached is not None:
        return cached
    names = set()
    for path in iter_sources(root):
        code = strip_comments_and_strings(path.read_text(encoding="utf-8"))
        for m in MUTEX_DECL.finditer(code):
            names.add(m.group(1))
    result = frozenset(names)
    _MUTEX_NAME_CACHE[root] = result
    return result


def check_lock_discipline(root: Path, path: Path, code: str) -> list[Violation]:
    rel = path.relative_to(root).as_posix()
    if rel in ALLOWED_RAW_LOCK:
        return []
    names = mutex_names(root)
    if not names:
        return []
    call_site = re.compile(
        r"\b(" + "|".join(re.escape(n) for n in sorted(names)) +
        r")\s*(?:\.|->)\s*(lock|unlock)\s*\(\s*\)"
    )
    out = []
    for m in call_site.finditer(code):
        out.append(
            Violation(
                path,
                line_of(code, m.start()),
                "lock-discipline",
                f"raw .{m.group(2)}() on mutex '{m.group(1)}'; hold locks "
                "via lock_guard/unique_lock/scoped_lock (raw acquisition "
                "is only legal inside testing/lock_audit.*)",
            )
        )
    return out


RULES = (
    check_atomics,
    check_capi_guard,
    check_header_hygiene,
    check_lock_discipline,
)


def lint_tree(root: Path) -> list[Violation]:
    violations: list[Violation] = []
    for path in iter_sources(root):
        code = strip_comments_and_strings(path.read_text(encoding="utf-8"))
        for rule in RULES:
            violations.extend(rule(root, path, code))
    return violations


# --- Self-test --------------------------------------------------------------


def self_test(fixtures: Path) -> int:
    """Runs the lint over the bundled fixtures: the good tree must be clean
    and the bad tree must trip every rule at its expected location."""
    good = fixtures / "good"
    bad = fixtures / "bad"
    failures = []

    good_violations = lint_tree(good)
    for v in good_violations:
        failures.append(f"good fixture flagged: {v}")

    bad_violations = lint_tree(bad)
    expected = {
        ("graphblas/rogue_atomics.hpp", "atomics-confinement"),
        ("graphblas/rogue_counter.cpp", "atomics-confinement"),
        ("capi/unguarded_api.cpp", "capi-guard"),
        ("graphblas/leaky_header.hpp", "header-hygiene"),
        ("serving/raw_lock.cpp", "lock-discipline"),
    }
    seen = {(v.path.relative_to(bad).as_posix(), v.rule) for v in bad_violations}
    for miss in sorted(expected - seen):
        failures.append(f"bad fixture NOT flagged: {miss[0]} [{miss[1]}]")
    for extra in sorted(seen - expected):
        failures.append(f"unexpected bad-fixture violation: {extra[0]} [{extra[1]}]")

    # The guarded entry in the bad tree must not be flagged (precision, not
    # just recall): unguarded_api.cpp also defines one correct function.
    for v in bad_violations:
        if v.rule == "capi-guard" and "GrB_ok_entry" in v.message:
            failures.append(f"guarded entry falsely flagged: {v}")

    if failures:
        print("lint_dsg.py --self-test FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(
        f"lint_dsg.py --self-test OK "
        f"({len(bad_violations)} expected violations in bad/, good/ clean)"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path, default=None,
                        help="tree to lint (default: <repo>/src)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the bundled fixtures instead of linting")
    args = parser.parse_args()

    script_dir = Path(__file__).resolve().parent
    if args.self_test:
        return self_test(script_dir / "lint_fixtures")

    root = args.root if args.root else script_dir.parent / "src"
    if not root.is_dir():
        print(f"lint_dsg.py: no such directory: {root}", file=sys.stderr)
        return 2
    violations = lint_tree(root)
    for v in violations:
        print(v)
    if violations:
        print(f"lint_dsg.py: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
