#!/usr/bin/env bash
# Perf baseline: builds the bench binaries in Release mode, runs them on the
# generated RMAT / Erdos-Renyi / grid suite, and emits BENCH_sssp.json at
# the repo root — the checked-in perf trajectory for the SSSP hot path.
#
# Usage: scripts/bench_baseline.sh [build-dir] [--quick]
#   build-dir  defaults to build-bench (kept separate from the dev build)
#   --quick    CI smoke mode: fewer graphs, smaller spmspv instance
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="build-bench"
QUICK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

# Tests are excluded: the perf build only needs the bench binaries (and the
# GCC-12 -Wrestrict false positive in one -O3 test TU stays out of the way).
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release \
  -DDSG_BUILD_TESTS=OFF -DDSG_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target bench_fig3_fusion bench_delta_sweep bench_spmspv \
           bench_solver_batch

OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$OUT_DIR"' EXIT

if [[ "$QUICK" -eq 1 ]]; then
  FIG3_ARGS=(--graphs 3)
  SWEEP_ARGS=(--graphs 2 --deltas "0.5,1,2")
  SPMSPV_ARGS=(--n 65536 --deg 4)
  BATCH_ARGS=(--graphs 3)
else
  FIG3_ARGS=(--graphs 6)
  SWEEP_ARGS=(--graphs 3)
  SPMSPV_ARGS=()
  BATCH_ARGS=(--graphs 6)
fi

"$BUILD_DIR/bench/bench_fig3_fusion" "${FIG3_ARGS[@]}" --csv \
  > "$OUT_DIR/fig3.csv"
"$BUILD_DIR/bench/bench_delta_sweep" "${SWEEP_ARGS[@]}" --csv \
  > "$OUT_DIR/sweep.csv"
"$BUILD_DIR/bench/bench_spmspv" "${SPMSPV_ARGS[@]}" --csv \
  > "$OUT_DIR/spmspv.csv"
# --check is the Release amortization gate: solve_batch(64) < 2x the 64
# warm solves AND 64 legacy calls >= 1.5x solve_batch(64).  A failed gate
# fails this script (and the CI bench-smoke job).
"$BUILD_DIR/bench/bench_solver_batch" "${BATCH_ARGS[@]}" --csv --check \
  > "$OUT_DIR/solver_batch.csv"

python3 - "$OUT_DIR" "$QUICK" <<'PY'
import csv, json, platform, os, subprocess, sys

out_dir, quick = sys.argv[1], sys.argv[2] == "1"

def read_table(path):
    rows, header = [], None
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            cells = next(csv.reader([line]))
            if header is None:
                header = cells
            else:
                rows.append(dict(zip(header, cells)))
    return rows

def read_tables(path):
    """Multi-table CSV: a non-numeric first cell after data rows starts a
    new header (bench_solver_batch emits throughput + amortization)."""
    tables, header, rows = [], None, []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            cells = next(csv.reader([line]))
            if header is None:
                header = cells
            elif cells[0] in ("graph", "metric"):  # a new table's header
                tables.append((header, rows))
                header, rows = cells, []
            else:
                rows.append(dict(zip(header, cells)))
    if header is not None:
        tables.append((header, rows))
    return [rows for _, rows in tables]

def git_head():
    try:
        return subprocess.check_output(
            ["git", "rev-parse", "--short", "HEAD"], text=True).strip()
    except Exception:
        return "unknown"

batch_tables = read_tables(os.path.join(out_dir, "solver_batch.csv"))

doc = {
    "schema": "dsg-bench-sssp-v2",
    "quick": quick,
    "commit": git_head(),
    "host": {
        "machine": platform.machine(),
        "nproc": os.cpu_count(),
    },
    "fig3_fusion": read_table(os.path.join(out_dir, "fig3.csv")),
    "delta_sweep": read_table(os.path.join(out_dir, "sweep.csv")),
    "spmspv": read_table(os.path.join(out_dir, "spmspv.csv")),
    # Batched-query scenario: queries/sec at batch sizes 1/8/64 through a
    # warm SsspSolver, plus the 64-query legacy/warm/batch amortization.
    "solver_batch": batch_tables[0] if batch_tables else [],
    "solver_batch_amortization":
        batch_tables[1] if len(batch_tables) > 1 else [],
}
with open("BENCH_sssp.json", "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print("wrote BENCH_sssp.json")
PY
