#!/usr/bin/env bash
# Perf baseline: builds the bench binaries in Release mode, runs them on the
# generated RMAT / Erdos-Renyi / grid suite, and emits BENCH_sssp.json at
# the repo root — the checked-in perf trajectory for the SSSP hot path.
#
# Usage: scripts/bench_baseline.sh [build-dir] [--quick]
#   build-dir  defaults to build-bench (kept separate from the dev build)
#   --quick    CI smoke mode: fewer graphs, smaller spmspv instance
#
# ---------------------------------------------------------------------------
# BENCH_sssp.json schema (dsg-bench-sssp-v2)
#
# Top-level keys:
#   schema   "dsg-bench-sssp-v2" — bump only on breaking shape changes;
#            additive keys (like spmspv_pointwise) do not bump it.
#   quick    true when produced by --quick (CI smoke); the checked-in file
#            must always come from a full (non-quick) run.
#   commit   short git hash of HEAD at *generation* time, with a "-dirty"
#            suffix when the working tree differed from it.  The checked-in
#            baseline is normally generated right before the commit that
#            includes it, so its stamp reads "<parent-hash>-dirty": the
#            numbers were measured on the dirty tree that *became* that
#            commit, not on the clean parent.  A stamp with no suffix means
#            the numbers reproduce a committed state exactly.
#   host     { machine, nproc } — compare runs on like hardware only.
#
# Table keys (each a list of row objects keyed by that table's CSV header):
#   fig3_fusion    bench_fig3_fusion: per-graph end-to-end SSSP milliseconds
#                  per variant (graphblas / select / capi / fused / openmp
#                  columns; the paper's abstraction-penalty table).  This is
#                  the end-to-end regression reference: a PR touching the
#                  operations layer must keep these faster-or-equal.
#   delta_sweep    bench_delta_sweep: per-graph milliseconds across the Δ
#                  ablation grid, plus the auto-Δ row.
#   spmspv         bench_spmspv table 1: sparse-frontier vxm, workspace
#                  reuse vs per-call reset (cold_ms / reused_ms / speedup
#                  per frontier size; CI gate >= 5x at frontier=16).
#   spmspv_pointwise
#                  bench_spmspv table 2: point-wise ops over a 75%-dense
#                  vector, sparse vs dense representation (sparse_ms /
#                  dense_ms / speedup per op; CI gate: geomean >= 2x,
#                  outputs verified bit-identical — sparse vs dense AND
#                  serial vs OpenMP — before timing).
#   spmspv_wordpack
#                  bench_spmspv table 3: the probe-bound dense ops against
#                  a byte-per-position bitmap reference (byte_ms / word_ms
#                  / speedup; CI gate: geomean >= 1.3x for the word-packed
#                  layout).
#   solver_batch   bench_solver_batch table 1: queries/sec through a warm
#                  SsspSolver at batch sizes 1/8/64 per graph.
#   solver_batch_amortization
#                  bench_solver_batch table 2: 64-query legacy vs warm vs
#                  batch totals (CI gate: batch < 2x warm, legacy >= 1.5x
#                  batch).
#   solver_batch_representation
#                  bench_solver_batch table 3: the unfused GraphBLAS
#                  variant with Vector density auto-switching on vs off
#                  (record only — the dense-path gate is spmspv_pointwise).
#   serving        bench_solver_batch table 4: sustained closed-loop
#                  traffic through SsspServer (pool + LRU result cache)
#                  on rmat-13 — qps and client-observed p50/p99 per leg,
#                  cache on vs off, half the traffic from a hot source
#                  set (CI gate: cache-on qps >= 1.5x cache-off at
#                  >= 50% repeated sources).  Additive key — does not
#                  bump the schema.
#   async_scaling  bench_fig4_scaling: per-graph, per-engine self-relative
#                  thread speedups for every registry variant flagged
#                  `threaded` (openmp / rho_stepping / delta_stepping_async;
#                  t1_ms plus Nt_speedup columns).  Additive key — does not
#                  bump the schema.  --check gates: best *async* self-speedup
#                  at the largest thread count >= best deterministic
#                  engine's on grid-128x128 / rmat-16; auto-skipped (noted
#                  on stderr) on hosts with fewer hardware threads than the
#                  sweep asks for, where "scaling" would measure
#                  oversubscription contention.
#
# Regenerating and gating: run `scripts/bench_baseline.sh` on an idle
# machine and commit the rewritten BENCH_sssp.json alongside the change
# that moved the numbers.  CI runs the --quick variant on every push
# (.github/workflows/ci.yml, bench-smoke job), which enforces the
# bench_spmspv and bench_solver_batch --check gates but does not diff
# milliseconds against the checked-in file (CI hardware varies); the
# checked-in numbers are the human-reviewed trajectory.
# See docs/ARCHITECTURE.md for where each measured path lives.
# ---------------------------------------------------------------------------
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="build-bench"
QUICK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

# Tests are excluded: the perf build only needs the bench binaries (and the
# GCC-12 -Wrestrict false positive in one -O3 test TU stays out of the way).
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release \
  -DDSG_BUILD_TESTS=OFF -DDSG_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target bench_fig3_fusion bench_delta_sweep bench_spmspv \
           bench_solver_batch bench_fig4_scaling

OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$OUT_DIR"' EXIT

if [[ "$QUICK" -eq 1 ]]; then
  FIG3_ARGS=(--graphs 3)
  SWEEP_ARGS=(--graphs 2 --deltas "0.5,1,2")
  SPMSPV_ARGS=(--n 65536 --deg 4)
  BATCH_ARGS=(--graphs 3)
  FIG4_ARGS=(--graphs 3)
else
  FIG3_ARGS=(--graphs 6)
  SWEEP_ARGS=(--graphs 3)
  SPMSPV_ARGS=()
  BATCH_ARGS=(--graphs 6)
  # 6 graphs reaches grid-128x128, the first async-scaling gate graph.
  FIG4_ARGS=(--graphs 6)
fi

"$BUILD_DIR/bench/bench_fig3_fusion" "${FIG3_ARGS[@]}" --csv \
  > "$OUT_DIR/fig3.csv"
"$BUILD_DIR/bench/bench_delta_sweep" "${SWEEP_ARGS[@]}" --csv \
  > "$OUT_DIR/sweep.csv"
# --check asserts the dense-vs-sparse bit-identity at every size and (at
# full scale) the two perf gates: workspace reuse >= 5x, dense-path
# pointwise geomean >= 2x.
"$BUILD_DIR/bench/bench_spmspv" "${SPMSPV_ARGS[@]}" --csv --check \
  > "$OUT_DIR/spmspv.csv"
# --check is the Release amortization + serving gate: solve_batch(64) < 2x
# the 64 warm solves, 64 legacy calls >= 1.5x solve_batch(64), AND serving
# cache-on qps >= 1.5x cache-off under 50%-repeated-source traffic.  A
# failed gate fails this script (and the CI bench-smoke job).
"$BUILD_DIR/bench/bench_solver_batch" "${BATCH_ARGS[@]}" --csv --check \
  > "$OUT_DIR/solver_batch.csv"
# --check is the async-scaling gate (see the async_scaling schema note):
# best async self-speedup >= best deterministic engine's at the largest
# thread count on the gate graphs; skipped with a stderr note on hosts too
# narrow to measure scaling honestly.
"$BUILD_DIR/bench/bench_fig4_scaling" "${FIG4_ARGS[@]}" --csv --check \
  > "$OUT_DIR/fig4.csv"

python3 - "$OUT_DIR" "$QUICK" <<'PY'
import csv, json, platform, os, subprocess, sys

out_dir, quick = sys.argv[1], sys.argv[2] == "1"

def read_table(path):
    rows, header = [], None
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            cells = next(csv.reader([line]))
            if header is None:
                header = cells
            else:
                rows.append(dict(zip(header, cells)))
    return rows

def read_tables(path):
    """Multi-table CSV: a known header first-cell after data rows starts a
    new table (bench_solver_batch emits throughput + amortization +
    representation + serving; bench_spmspv emits vxm + pointwise)."""
    tables, header, rows = [], None, []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            cells = next(csv.reader([line]))
            if header is None:
                header = cells
            elif cells[0] in ("graph", "metric", "op", "frontier", "leg"):
                tables.append((header, rows))
                header, rows = cells, []
            else:
                rows.append(dict(zip(header, cells)))
    if header is not None:
        tables.append((header, rows))
    return [rows for _, rows in tables]

def git_head():
    """HEAD at generation time, "-dirty" appended when the tree has
    uncommitted changes — see the `commit` schema note in the header."""
    try:
        head = subprocess.check_output(
            ["git", "rev-parse", "--short", "HEAD"], text=True).strip()
        # status --porcelain (not diff-index) so untracked files — new
        # sources compiled into the measured binaries — also count as dirty.
        dirty = subprocess.check_output(
            ["git", "status", "--porcelain"], text=True).strip() != ""
        return head + ("-dirty" if dirty else "")
    except Exception:
        return "unknown"

batch_tables = read_tables(os.path.join(out_dir, "solver_batch.csv"))
spmspv_tables = read_tables(os.path.join(out_dir, "spmspv.csv"))

doc = {
    "schema": "dsg-bench-sssp-v2",
    "quick": quick,
    "commit": git_head(),
    "host": {
        "machine": platform.machine(),
        "nproc": os.cpu_count(),
    },
    "fig3_fusion": read_table(os.path.join(out_dir, "fig3.csv")),
    "delta_sweep": read_table(os.path.join(out_dir, "sweep.csv")),
    # Sparse-frontier vxm workspace reuse, plus the point-wise ops measured
    # with the vector pinned sparse vs pinned dense (see scripts header for
    # the full schema description).
    "spmspv": spmspv_tables[0] if spmspv_tables else [],
    "spmspv_pointwise":
        spmspv_tables[1] if len(spmspv_tables) > 1 else [],
    "spmspv_wordpack":
        spmspv_tables[2] if len(spmspv_tables) > 2 else [],
    # Batched-query scenario: queries/sec at batch sizes 1/8/64 through a
    # warm SsspSolver, the 64-query legacy/warm/batch amortization, and the
    # dense auto-switching on/off record for the graphblas variant.
    "solver_batch": batch_tables[0] if batch_tables else [],
    "solver_batch_amortization":
        batch_tables[1] if len(batch_tables) > 1 else [],
    "solver_batch_representation":
        batch_tables[2] if len(batch_tables) > 2 else [],
    # Closed-loop serving traffic through SsspServer: cache-on vs cache-off
    # legs, qps + p50/p99 (see the `serving` schema note above).
    "serving": batch_tables[3] if len(batch_tables) > 3 else [],
    # Registry-driven thread scaling: one row per (graph, threaded engine),
    # self-relative speedups per thread count.
    "async_scaling": read_table(os.path.join(out_dir, "fig4.csv")),
}
with open("BENCH_sssp.json", "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print("wrote BENCH_sssp.json")
PY
