// Good fixture: this path is on the atomics allowlist, so raw atomics are
// legal here.
#pragma once

#include <atomic>

namespace fixture {

class Flag {
 public:
  void set() { flag_.store(true, std::memory_order_release); }
  bool get() const { return flag_.load(std::memory_order_acquire); }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace fixture
