// Good fixture: a hygienic header.  Mentions of std::atomic in comments
// and strings must NOT trip the atomics-confinement rule.
#pragma once

#include <string>

namespace fixture {

// "std::atomic<int> in a comment is fine; so is memory_order_relaxed."
inline std::string motto() {
  return "std::atomic is spelled here only inside a string literal";
}

}  // namespace fixture
