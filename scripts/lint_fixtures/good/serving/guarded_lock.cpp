// Fixture: disciplined locking — guards only.  Must stay clean under the
// lock-discipline rule, INCLUDING the unique_lock::unlock() call below:
// unlocking through the guard is fine (the guard still owns cleanup);
// only raw mutex .lock()/.unlock() is forbidden.
#include <mutex>

namespace {
std::mutex state_mu;
int state = 0;
}  // namespace

int read_state() {
  std::lock_guard<std::mutex> guard(state_mu);
  return state;
}

void bump_then_work_unlocked() {
  std::unique_lock<std::mutex> lk(state_mu);
  ++state;
  lk.unlock();  // guard-mediated early release: allowed
}
