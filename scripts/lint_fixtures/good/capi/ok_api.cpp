// Good fixture: every C-API entry routes through guarded().
#include <exception>

namespace {
template <typename F>
int guarded(F&& f) noexcept {
  try {
    f();
    return 0;
  } catch (...) {
    return 1;
  }
}
}  // namespace

extern "C" int GrB_fixture_entry(int* out) {
  if (out == nullptr) return 2;
  return guarded([&] { *out = 42; });
}

extern "C" int DsgFixture_entry(void) {
  return guarded([] {});
}

// A *call* to a GrB_-prefixed function inside a helper must not be mistaken
// for an unguarded definition.
namespace {
int helper(int* out) { return GrB_fixture_entry(out); }
}  // namespace

extern "C" int GxB_fixture_entry(int* out) {
  return guarded([&] { helper(out); });
}
