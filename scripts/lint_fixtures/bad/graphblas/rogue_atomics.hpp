// Bad fixture: raw std::atomic outside the allowlist.
#pragma once

#include <atomic>

namespace fixture {

class RogueFlag {
 public:
  void set() { flag_.store(true, std::memory_order_seq_cst); }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace fixture
