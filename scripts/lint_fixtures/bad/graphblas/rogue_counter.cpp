// Bad fixture: RMW atomics in a translation unit off the allowlist.
#include <atomic>

namespace fixture {

std::atomic<long> g_count{0};

void bump() { g_count.fetch_add(1, std::memory_order_relaxed); }

bool try_claim(std::atomic<int>& slot) {
  int expected = 0;
  return slot.compare_exchange_strong(expected, 1);
}

}  // namespace fixture
