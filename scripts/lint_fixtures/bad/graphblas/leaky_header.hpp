// Bad fixture: header hygiene violations.
#pragma once

#include "impl.cpp"

using namespace std;
