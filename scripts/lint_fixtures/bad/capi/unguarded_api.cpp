// Bad fixture: one unguarded C-API entry next to a correctly guarded one.
// Only the unguarded definition may be flagged.
namespace {
template <typename F>
int guarded(F&& f) noexcept {
  try {
    f();
    return 0;
  } catch (...) {
    return 1;
  }
}
}  // namespace

extern "C" int GrB_ok_entry(int* out) {
  return guarded([&] { *out = 1; });
}

extern "C" int GrB_bad_entry(int* out) {
  *out = *(new int(7));  // may throw bad_alloc straight across the C ABI
  return 0;
}
