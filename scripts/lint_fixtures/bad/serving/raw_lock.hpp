// Fixture: declares mutex MEMBERS only — the violations live in
// raw_lock.cpp, proving the lock-discipline rule collects mutex names
// tree-wide (declaration in a header, raw call site in a .cpp).  This
// header itself must NOT be flagged.
#pragma once

#include <mutex>

namespace dsg::testing {
class AuditedMutex;  // stand-in for the real wrapper
}

class BadCache {
 public:
  void touch();

 private:
  std::mutex map_mu_;
};
