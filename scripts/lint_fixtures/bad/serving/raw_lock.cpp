// Fixture: raw .lock()/.unlock() on mutexes — every call site here must
// be flagged by the lock-discipline rule.  An exception between lock()
// and unlock() leaks the lock forever; guards make that impossible.
#include "raw_lock.hpp"

#include <mutex>

namespace {
std::mutex queue_mu;
}  // namespace

void BadCache::touch() {
  // Cross-file case: map_mu_ is declared in raw_lock.hpp.
  map_mu_.lock();
  map_mu_.unlock();
}

int drain_queue() {
  queue_mu.lock();
  const int n = 0;
  queue_mu.unlock();
  return n;
}
