#!/usr/bin/env bash
# check_static.sh — the repo's static-analysis gate, one command for what CI
# runs in the static-analysis job:
#
#   1. scripts/lint_dsg.py        project-specific lints (atomics confinement,
#                                 C-API guard discipline, header hygiene),
#                                 preceded by the lint's own self-test;
#   2. clang-format --dry-run     formatting drift, via .clang-format;
#   3. clang-tidy                 the curated .clang-tidy wall, over every
#                                 library/tool .cpp through compile_commands.
#
# Steps 2 and 3 need the LLVM tools.  Locally, a missing tool is reported as
# a SKIP note and the gate still passes on the remaining steps (the project
# builds with GCC only; developers without clang are still covered by the
# Python lints and -Werror).  CI passes --require-tools, which turns a
# missing tool into a hard failure so the full wall always runs there.
#
# Usage: scripts/check_static.sh [--require-tools]
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
REQUIRE_TOOLS=0
# Dedicated configure dir for compile_commands.json so the gate never races
# a developer's incremental build tree.  Override with DSG_STATIC_BUILD_DIR.
BUILD_DIR="${DSG_STATIC_BUILD_DIR:-$ROOT/build-static}"

for arg in "$@"; do
  case "$arg" in
    --require-tools) REQUIRE_TOOLS=1 ;;
    *)
      echo "usage: $0 [--require-tools]" >&2
      exit 2
      ;;
  esac
done

find_tool() {
  local name
  for name in "$@"; do
    if command -v "$name" >/dev/null 2>&1; then
      echo "$name"
      return 0
    fi
  done
  return 1
}

skip_or_fail() {
  if [ "$REQUIRE_TOOLS" -eq 1 ]; then
    echo "FAIL: $1 not found and --require-tools is set" >&2
    exit 1
  fi
  echo "SKIP: $1 not found; install LLVM tools or rely on CI for this step"
}

echo "== 1/3 project lints (scripts/lint_dsg.py) =="
python3 "$ROOT/scripts/lint_dsg.py" --self-test
python3 "$ROOT/scripts/lint_dsg.py"
echo "project lints: OK"

echo "== 2/3 clang-format =="
if CLANG_FORMAT="$(find_tool clang-format clang-format-19 clang-format-18 \
    clang-format-17 clang-format-16 clang-format-15 clang-format-14)"; then
  (cd "$ROOT" && git ls-files 'src/**/*.cpp' 'src/**/*.hpp' 'src/**/*.h' \
      'tests/*.cpp' 'bench/*.cpp' |
    xargs "$CLANG_FORMAT" --dry-run --Werror)
  echo "clang-format: OK"
else
  skip_or_fail clang-format
fi

echo "== 3/3 clang-tidy =="
if CLANG_TIDY="$(find_tool clang-tidy clang-tidy-19 clang-tidy-18 \
    clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14)"; then
  if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    cmake -S "$ROOT" -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Debug >/dev/null
  fi
  # Translation units only: headers are covered through HeaderFilterRegex.
  (cd "$ROOT" && git ls-files 'src/**/*.cpp' |
    xargs "$CLANG_TIDY" -p "$BUILD_DIR" --quiet --warnings-as-errors='*')
  echo "clang-tidy: OK"
else
  skip_or_fail clang-tidy
fi

echo "check_static.sh: all available steps passed"
