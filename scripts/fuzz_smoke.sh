#!/usr/bin/env bash
# fuzz_smoke.sh — bounded-budget adversarial-input smoke over every fuzz
# harness (fuzz/ — plan_load, matrix_market, snap, capi_server).
#
# With clang available, builds -DDSG_FUZZ=ON (libFuzzer + ASan/UBSan) and
# runs each harness over its seed corpus plus a time-budgeted
# coverage-guided session; ANY crash, sanitizer report, OOM, or leak
# fails the script and leaves the offending input in
# <build-dir>/fuzz-artifacts/.  Without clang (e.g. the GCC-only dev
# container), degrades to replay mode: the same harness binaries built
# with the standalone main execute the full corpus once — the contract
# check minus coverage guidance — and prints a SKIP note for the
# budgeted session.  --require-clang turns that degradation into a hard
# failure (CI uses this so the real fuzz job can never silently
# downgrade).
#
# Usage:
#   scripts/fuzz_smoke.sh [build-dir] [--quick] [--require-clang]
#     build-dir        default: build-fuzz
#     --quick          5s budget per harness instead of 60s
#     --require-clang  fail instead of degrading when clang is missing
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="build-fuzz"
BUDGET=60
REQUIRE_CLANG=0
for arg in "$@"; do
  case "$arg" in
    --quick) BUDGET=5 ;;
    --require-clang) REQUIRE_CLANG=1 ;;
    -*) echo "fuzz_smoke.sh: unknown option $arg" >&2; exit 2 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

HARNESSES=(plan_load matrix_market snap capi_server)
CORPUS_ROOT="tests/fuzz_corpus"

CLANG_CXX=""
for cxx in clang++ clang++-19 clang++-18 clang++-17 clang++-16 clang++-15; do
  if command -v "$cxx" >/dev/null 2>&1; then CLANG_CXX="$cxx"; break; fi
done

if [[ -z "$CLANG_CXX" ]]; then
  if [[ "$REQUIRE_CLANG" == 1 ]]; then
    echo "fuzz_smoke.sh: --require-clang set but no clang++ found" >&2
    exit 1
  fi
  echo "fuzz_smoke.sh: no clang++ found — REPLAY MODE (corpus execution"
  echo "only; SKIPPING the coverage-guided budget, which needs libFuzzer)."
  cmake -B "$BUILD_DIR" -S . -DDSG_BUILD_BENCH=OFF -DDSG_BUILD_EXAMPLES=OFF \
        -DDSG_BUILD_TESTS=OFF
  cmake --build "$BUILD_DIR" -j "$(nproc)" \
        --target fuzz_plan_load fuzz_matrix_market fuzz_snap fuzz_capi_server
  for name in "${HARNESSES[@]}"; do
    echo "--- replay: $name ---"
    "$BUILD_DIR/fuzz/fuzz_$name" "$CORPUS_ROOT/$name"
  done
  echo "fuzz_smoke.sh: replay OK (budgeted fuzzing SKIPPED: no clang)"
  exit 0
fi

# Full mode: libFuzzer binaries under ASan+UBSan.
cmake -B "$BUILD_DIR" -S . -DDSG_FUZZ=ON \
      -DCMAKE_CXX_COMPILER="$CLANG_CXX" \
      -DDSG_BUILD_BENCH=OFF -DDSG_BUILD_EXAMPLES=OFF -DDSG_BUILD_TESTS=OFF
cmake --build "$BUILD_DIR" -j "$(nproc)" \
      --target fuzz_plan_load fuzz_matrix_market fuzz_snap fuzz_capi_server

ARTIFACTS="$BUILD_DIR/fuzz-artifacts"
mkdir -p "$ARTIFACTS"

# halt_on_error: the first report must fail the run, not scroll past.
export ASAN_OPTIONS="halt_on_error=1:abort_on_error=1:${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1:${UBSAN_OPTIONS:-}"

for name in "${HARNESSES[@]}"; do
  seed_dir="$CORPUS_ROOT/$name"
  work_dir="$BUILD_DIR/corpus-$name"
  mkdir -p "$work_dir"
  echo "--- fuzz: $name (seed corpus + ${BUDGET}s budget) ---"
  # Pass 1: execute the full checked-in corpus, no mutation (-runs=0).
  "$BUILD_DIR/fuzz/fuzz_$name" -runs=0 \
      -artifact_prefix="$ARTIFACTS/$name-" "$seed_dir"
  # Pass 2: coverage-guided session seeded from the corpus.  New inputs
  # accumulate in work_dir (a scratch copy; promoting a find into the
  # checked-in corpus is a deliberate git add).
  "$BUILD_DIR/fuzz/fuzz_$name" -max_total_time="$BUDGET" \
      -rss_limit_mb=2048 -max_len=65536 -print_final_stats=1 \
      -artifact_prefix="$ARTIFACTS/$name-" "$work_dir" "$seed_dir"
done

echo "fuzz_smoke.sh: all ${#HARNESSES[@]} harnesses clean (budget ${BUDGET}s each)"
