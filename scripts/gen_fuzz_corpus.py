#!/usr/bin/env python3
"""Generate the checked-in seed corpora under tests/fuzz_corpus/."""
import struct, os, shutil

REPO = "/root/repo"
DATA = os.path.join(REPO, "tests", "data")
CORPUS = os.path.join(REPO, "tests", "fuzz_corpus")

FNV_BASIS = 0xCBF29CE484222325
FNV_PRIME = 0x100000001B3
MASK = (1 << 64) - 1

def fnv1a(h, data):
    for b in data:
        h = ((h ^ b) * FNV_PRIME) & MASK
    return h

def restamp(img):
    """Return img with the checksum field (offset 104..112) re-stamped."""
    img = bytearray(img)
    zeroed = bytes(img[:104]) + b"\x00" * 8 + bytes(img[112:])
    total = fnv1a(FNV_BASIS, zeroed)
    img[104:112] = struct.pack("<Q", total)
    return bytes(img)

plan = open(os.path.join(DATA, "diamond.plan"), "rb").read()
assert len(plan) == 576, len(plan)
# Sanity: the golden file's checksum must round-trip through our FNV.
assert restamp(plan) == plan, "FNV mismatch vs golden plan"

def w(sub, name, data):
    path = os.path.join(CORPUS, sub, name)
    with open(path, "wb") as f:
        f.write(data)
    print(f"{sub}/{name}: {len(data)} bytes")

def patched(img, off, fmt, value, stamp=True):
    img = bytearray(img)
    img[off:off + struct.calcsize(fmt)] = struct.pack(fmt, value)
    return restamp(bytes(img)) if stamp else bytes(img)

# --- plan_load ----------------------------------------------------------
w("plan_load", "diamond_valid.plan", plan)
w("plan_load", "empty.bin", b"")
w("plan_load", "truncated_header.bin", plan[:60])
w("plan_load", "truncated_payload.bin", plan[:200])
w("plan_load", "trailing_garbage.bin", restamp(plan + b"\xcc" * 16))
w("plan_load", "bad_magic.bin", b"NOTAPLAN" + plan[8:])
w("plan_load", "bad_version.bin", patched(plan, 8, "<I", 999))
w("plan_load", "bad_endian.bin", patched(plan, 12, "<I", 0x04030201))
w("plan_load", "bad_width.bin", patched(plan, 16, "<I", 32))
w("plan_load", "zero_vertices.bin", patched(plan, 24, "<Q", 0))
# Counts that overflow the payload-size arithmetic: num_vertices near 2^64.
w("plan_load", "overflow_vertices.bin", patched(plan, 24, "<Q", (1 << 64) - 2))
# Counts that pass arithmetic but dwarf the actual file size.
w("plan_load", "oversized_edges.bin", patched(plan, 32, "<Q", 1 << 40))
# Stale checksum (single payload bit flipped, checksum left alone).
stale = bytearray(plan); stale[300] ^= 0x40
w("plan_load", "stale_checksum.bin", bytes(stale))
# Forged checksum + structural corruption: restamped so the corruption
# reaches the structural validators.
w("plan_load", "nan_delta.bin", patched(plan, 56, "<d", float("nan")))
w("plan_load", "negative_delta.bin", patched(plan, 56, "<d", -1.0))
# row_ptr rise-then-fall: first row_ptr entry after header; row_ptr[1] at
# header+8. diamond has n=5, e=10: row_ptr is 6 u64s at offset 112.
w("plan_load", "rowptr_risefall.bin", patched(plan, 112 + 8, "<Q", 1 << 20))
w("plan_load", "rowptr_nonmonotone.bin", patched(plan, 112 + 16, "<Q", 0))
# col_ind out of range: col_ind starts at 112 + 6*8 = 160.
w("plan_load", "colind_oob.bin", patched(plan, 160, "<Q", 1 << 30))
# negative weight: val starts at 160 + 10*8 = 240.
w("plan_load", "negative_weight.bin", patched(plan, 240, "<d", -2.0))
w("plan_load", "nan_weight.bin", patched(plan, 240, "<d", float("nan")))
w("plan_load", "inf_weight.bin", patched(plan, 240, "<d", float("inf")))

# --- matrix_market ------------------------------------------------------
shutil.copy(os.path.join(DATA, "diamond.mtx"),
            os.path.join(CORPUS, "matrix_market", "diamond_valid.mtx"))
print("matrix_market/diamond_valid.mtx: copied")
w("matrix_market", "empty.mtx", b"")
w("matrix_market", "banner_only.mtx",
  b"%%MatrixMarket matrix coordinate real general\n")
w("matrix_market", "bad_banner.mtx", b"%%NotMatrixMarket x y z w\n1 1 1\n")
w("matrix_market", "huge_nnz.mtx",
  b"%%MatrixMarket matrix coordinate real general\n"
  b"4 4 18446744073709551615\n1 2 1.0\n")
w("matrix_market", "huge_nnz_symmetric.mtx",
  b"%%MatrixMarket matrix coordinate real symmetric\n"
  b"4 4 9999999999\n1 2 1.0\n")
w("matrix_market", "nan_weight.mtx",
  b"%%MatrixMarket matrix coordinate real general\n3 3 1\n1 2 nan\n")
w("matrix_market", "inf_weight.mtx",
  b"%%MatrixMarket matrix coordinate real general\n3 3 1\n1 2 inf\n")
w("matrix_market", "oob_entry.mtx",
  b"%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1.0\n")
w("matrix_market", "nonsquare.mtx",
  b"%%MatrixMarket matrix coordinate real general\n2 3 1\n1 1 1.0\n")
w("matrix_market", "pattern_symmetric.mtx",
  b"%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n1 2\n2 3\n")
w("matrix_market", "missing_entries.mtx",
  b"%%MatrixMarket matrix coordinate real general\n3 3 5\n1 2 1.0\n")
w("matrix_market", "negative_dim.mtx",
  b"%%MatrixMarket matrix coordinate real general\n-3 -3 1\n1 1 1.0\n")

# --- snap ---------------------------------------------------------------
shutil.copy(os.path.join(DATA, "diamond.snap"),
            os.path.join(CORPUS, "snap", "diamond_valid.snap"))
print("snap/diamond_valid.snap: copied")
w("snap", "empty.snap", b"")
w("snap", "comments_only.snap", b"# just a comment\n# another\n")
w("snap", "unweighted.snap", b"0 1\n1 2\n2 0\n")
w("snap", "bad_weight.snap", b"0\t1\txyz\n")
w("snap", "nan_weight.snap", b"0 1 nan\n")
w("snap", "inf_weight.snap", b"0 1 -inf\n")
w("snap", "negative_id.snap", b"-5 1 1.0\n")
w("snap", "huge_id.snap", b"99999999999999999999999999 1 1.0\n")
w("snap", "sparse_ids.snap", b"1000000 2000000 0.5\n2000000 1000000 0.25\n")

# --- capi_server --------------------------------------------------------
# Prefix: u32 source, u8 algorithm selector byte, u8 num_queries, 2 pad.
def prefix(source, alg_byte, nq):
    return struct.pack("<IBBxx", source, alg_byte, nq)

w("capi_server", "valid_auto.bin", prefix(0, 0, 3) + plan)       # alg -1 AUTO
w("capi_server", "valid_fused.bin", prefix(2, 5, 2) + plan)      # alg 4 fused
w("capi_server", "capi_rejected.bin", prefix(0, 4, 1) + plan)    # alg 3 kCapi
w("capi_server", "bad_alg.bin", prefix(1, 11, 1) + plan)         # alg 10 invalid
w("capi_server", "oob_source.bin", prefix(4096, 0, 2) + plan)
w("capi_server", "corrupt_plan.bin", prefix(0, 0, 1) + bytes(stale))
w("capi_server", "truncated_plan.bin", prefix(0, 0, 1) + plan[:100])
w("capi_server", "prefix_only.bin", prefix(0, 0, 7))
w("capi_server", "short.bin", b"\x01\x02")
