#!/usr/bin/env bash
# Documentation hygiene check (the CI docs job):
#   1. every relative markdown link in README.md, ROADMAP.md, and docs/*.md
#      resolves to an existing file (anchors stripped; http(s) links are
#      not fetched — this check is offline by design);
#   2. every docs/<file> path *mentioned anywhere* in README.md exists, so
#      prose references cannot rot silently.
# Exits non-zero listing every violation.
set -euo pipefail
cd "$(dirname "$0")/.."

python3 - <<'PY'
import glob
import os
import re
import sys

failures = []

sources = ["README.md", "ROADMAP.md"] + sorted(glob.glob("docs/*.md"))

link_re = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
for src in sources:
    if not os.path.exists(src):
        failures.append(f"{src}: file listed for checking does not exist")
        continue
    text = open(src, encoding="utf-8").read()
    for target in link_re.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = os.path.normpath(os.path.join(os.path.dirname(src), path))
        if not os.path.exists(resolved):
            failures.append(f"{src}: broken link -> {target}")

readme = open("README.md", encoding="utf-8").read()
for mention in sorted(set(re.findall(r"docs/[A-Za-z0-9_.-]+\.md", readme))):
    if not os.path.exists(mention):
        failures.append(f"README.md: mentions {mention}, which does not exist")

if failures:
    print("documentation check FAILED:")
    for f in failures:
        print("  " + f)
    sys.exit(1)

print(f"documentation check passed ({len(sources)} files scanned)")
PY
