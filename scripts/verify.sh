#!/usr/bin/env bash
# Tier-1 verify: configure, build everything, run the full CTest suite.
#
# Usage:
#   scripts/verify.sh [build-dir] [extra cmake args...]   build + ctest
#   scripts/verify.sh --static                            static gate only
#   scripts/verify.sh --audit [build-dir]                 build + ctest with
#                                                         DSG_AUDIT_INVARIANTS
#   scripts/verify.sh --fuzz [fuzz_smoke args...]         fuzz smoke (see
#                                                         scripts/fuzz_smoke.sh)
set -euo pipefail
cd "$(dirname "$0")/.."

case "${1:-}" in
  --static)
    exec scripts/check_static.sh
    ;;
  --fuzz)
    shift
    exec scripts/fuzz_smoke.sh "$@"
    ;;
  --audit)
    shift
    BUILD_DIR="${1:-build-audit}"
    shift || true
    set -- "$@" -DDSG_AUDIT_INVARIANTS=ON
    ;;
  *)
    BUILD_DIR="${1:-build}"
    shift || true
    ;;
esac

cmake -B "$BUILD_DIR" -S . "$@"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure --timeout 180 -j "$(nproc)"
