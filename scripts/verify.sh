#!/usr/bin/env bash
# Tier-1 verify: configure, build everything, run the full CTest suite.
# Usage: scripts/verify.sh [build-dir] [extra cmake args...]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
shift || true

cmake -B "$BUILD_DIR" -S . "$@"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure --timeout 180 -j "$(nproc)"
