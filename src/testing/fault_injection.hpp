// fault_injection.hpp — seeded, deterministic fault injection at named
// yield points.
//
// Production code marks its natural failure/yield points with
//
//     dsg::testing::fault_point("async/round");            // unkeyed
//     dsg::testing::fault_point("solver/batch_query", k);  // keyed
//
// When no faults are installed (the default, and always in production)
// a fault point is one relaxed atomic load and a branch.  Tests install a
// fault table — a list of FaultSpec triggers — and every hit of a matching
// point deterministically either throws std::bad_alloc (allocation-failure
// injection) or sleeps (delay injection, to widen race windows and force
// deadlines to fire mid-run).
//
// Determinism: triggers fire from pure data — the installed seed, the
// point name, the per-point hit index, and the caller-supplied key — never
// from RNG state or wall-clock time, so a failing run replays exactly
// under the same seed.  (With concurrent callers the *interleaving* of
// hits is scheduling-dependent, so concurrent tests should trigger on
// `key` or `one_in`, which do not depend on global hit order.)
//
// Thread-safety: fault_point may be called from any thread (the async
// engine's workers do).  install/clear are test-side and must not race a
// running solve's *installation* — install before, clear after.
//
// The canonical list of named points compiled into the library is
// fault_point_catalog(); tests sweep it and docs/ARCHITECTURE.md mirrors
// it.  Add every new production fault point to the catalog.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace dsg::testing {

/// One trigger.  `point` selects the fault point by exact name ("*"
/// matches every point); the trigger fires on a hit when ANY armed
/// condition matches that hit.
struct FaultSpec {
  std::string point;

  // Conditions (all optional; unarmed conditions never match):
  /// Fire when the seeded hash of (seed, point, hit index) lands in a
  /// 1-in-`one_in` bucket.  1 = every hit.
  std::uint64_t one_in = 0;
  /// Fire on exactly this per-point hit index (0-based).
  std::int64_t on_hit = -1;
  /// Fire when the caller-supplied key equals this (for schedule-
  /// independent targeting, e.g. "fail the query whose source is 5").
  std::int64_t with_key = -1;

  enum class Action { kThrowBadAlloc, kDelay };
  Action action = Action::kThrowBadAlloc;
  /// Sleep length for kDelay.
  std::chrono::microseconds delay{200};
};

/// Installs a fault table (replacing any previous one) and starts
/// recording hits.  An empty spec list is valid: nothing fires, but hit
/// accounting runs — useful for coverage assertions.
void install_faults(std::uint64_t seed, std::vector<FaultSpec> specs);

/// Removes the table; fault points return to no-ops.
void clear_faults();

bool faults_active();

/// Production-side yield point.  May throw std::bad_alloc or sleep when a
/// matching trigger fires; otherwise (and always when inactive) a no-op.
void fault_point(const char* name, std::uint64_t key = 0);

/// Hits of `name` since the last install (0 when inactive or never hit).
std::uint64_t fault_point_hits(const char* name);

/// Names hit at least once since the last install.
std::vector<std::string> touched_fault_points();

/// Every named fault point compiled into the library (the documented
/// catalog).  Tests assert the catalog stays honest by exercising the
/// code paths and comparing against touched_fault_points().
std::span<const char* const> fault_point_catalog();

/// RAII install/clear for tests.
struct ScopedFaults {
  ScopedFaults(std::uint64_t seed, std::vector<FaultSpec> specs) {
    install_faults(seed, std::move(specs));
  }
  ~ScopedFaults() { clear_faults(); }
  ScopedFaults(const ScopedFaults&) = delete;
  ScopedFaults& operator=(const ScopedFaults&) = delete;
};

}  // namespace dsg::testing
