// lock_audit.hpp — a lockdep-style runtime lock-order auditor for the
// serving layer.
//
// The serving stack holds multiple mutexes (server queue, result cache)
// across a worker pool, and a deadlock there is a silent liveness bug no
// sanitizer reports until two threads actually interleave the wrong way.
// This header gives the code the Linux-lockdep property: the FIRST time
// any thread acquires locks in an order that could deadlock — even if the
// fatal interleaving never happens in this run — the auditor fires with
// both acquisition chains' lock names.
//
// Usage: declare mutexes as
//
//   dsg::testing::AuditedMutex mu_{"SsspServer::mu"};
//
// and guard with std::lock_guard<AuditedMutex> / AuditedLock
// (= std::unique_lock<AuditedMutex>).  Condition variables that wait on an
// AuditedMutex use AuditedConditionVariable.
//
// Arming matrix: under DSG_AUDIT_INVARIANTS (the existing global audit
// option) every acquisition is recorded; without it AuditedMutex is an
// inline forwarding wrapper over std::mutex — same layout role, zero
// bookkeeping, so production builds pay nothing.
//
// What the armed build detects, at the moment of the offending acquire:
//
//   - order inversion: thread A took X then Y, thread B now takes Y then
//     X.  Detected via a process-global directed graph of "held H while
//     acquiring L" edges; acquiring along a path that closes a cycle
//     aborts with both chains.
//   - recursive acquisition: locking a mutex this thread already holds
//     (guaranteed deadlock on std::mutex).
//   - condvar-wait-while-holding-second-lock: waiting releases ONLY the
//     lock handed to wait(); any other held lock stays held while this
//     thread sleeps, which deadlocks as soon as the notifier needs it.
//
// The default violation handler prints the report and aborts (a deadlock
// bug must never be swallowed); tests install a capturing handler via
// set_lock_audit_handler to prove the detector fires without dying.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <string>

namespace dsg::testing {

/// A detected lock-discipline violation, handed to the installed handler.
struct LockOrderViolation {
  enum class Kind {
    kOrderInversion,   ///< acquisition would close a cycle in the order graph
    kRecursiveLock,    ///< thread re-locking a mutex it already holds
    kWaitWhileHolding  ///< condvar wait with a second lock still held
  };
  Kind kind;
  /// Human-readable report: the lock names in this thread's held chain and
  /// (for inversions) the previously recorded conflicting chain.
  std::string report;
};

/// True when the auditor is compiled in (DSG_AUDIT_INVARIANTS builds).
bool lock_audit_armed() noexcept;

/// Replace the violation handler (nullptr restores the default
/// print-and-abort).  Returns the previous handler.  The handler runs on
/// the offending thread with the auditor's internal lock NOT held; if it
/// returns, execution continues past the violation (tests only).
using LockAuditHandler = void (*)(const LockOrderViolation&);
LockAuditHandler set_lock_audit_handler(LockAuditHandler handler) noexcept;

/// Drop every recorded acquisition edge (test isolation: one test's
/// deliberate inversion must not poison the order graph for the next).
void lock_audit_reset() noexcept;

#ifdef DSG_AUDIT_INVARIANTS

namespace detail {
// Registration/bookkeeping entry points, defined in lock_audit.cpp.
// `id` is a process-unique small integer per AuditedMutex instance.
std::size_t lock_audit_register(const char* name) noexcept;
void lock_audit_unregister(std::size_t id) noexcept;
void lock_audit_note_acquire(std::size_t id);   // before blocking
void lock_audit_note_acquired(std::size_t id);  // lock is now held
void lock_audit_note_release(std::size_t id);
void lock_audit_note_wait(std::size_t id);  // entering cv wait on `id`
}  // namespace detail

/// std::mutex plus lockdep bookkeeping.  Satisfies BasicLockable/Lockable
/// so std::lock_guard / std::unique_lock / std::scoped_lock all work.
class AuditedMutex {
 public:
  explicit AuditedMutex(const char* name)
      : id_(detail::lock_audit_register(name)) {}
  ~AuditedMutex() { detail::lock_audit_unregister(id_); }
  AuditedMutex(const AuditedMutex&) = delete;
  AuditedMutex& operator=(const AuditedMutex&) = delete;

  void lock() {
    // Record intent BEFORE blocking: if this acquire would complete a
    // deadlock cycle, the report must fire now — the whole point is to
    // catch the order while the run is still alive to print it.
    detail::lock_audit_note_acquire(id_);
    mu_.lock();
    detail::lock_audit_note_acquired(id_);
  }
  bool try_lock() {
    const bool got = mu_.try_lock();
    // try_lock cannot deadlock (it never blocks), so failure records
    // nothing and success records the held edge like a normal acquire.
    if (got) {
      detail::lock_audit_note_acquire(id_);
      detail::lock_audit_note_acquired(id_);
    }
    return got;
  }
  void unlock() {
    detail::lock_audit_note_release(id_);
    mu_.unlock();
  }

  std::size_t audit_id() const noexcept { return id_; }

 private:
  std::mutex mu_;
  std::size_t id_;
};

/// Condition variable for AuditedMutex.  condition_variable_any because
/// std::condition_variable is hard-wired to unique_lock<std::mutex>.
class AuditedConditionVariable {
 public:
  template <typename Predicate>
  void wait(std::unique_lock<AuditedMutex>& lock, Predicate pred) {
    while (!pred()) wait(lock);
  }
  void wait(std::unique_lock<AuditedMutex>& lock) {
    detail::lock_audit_note_wait(lock.mutex()->audit_id());
    cv_.wait(lock);
  }
  template <typename Rep, typename Period>
  std::cv_status wait_for(std::unique_lock<AuditedMutex>& lock,
                          const std::chrono::duration<Rep, Period>& dur) {
    detail::lock_audit_note_wait(lock.mutex()->audit_id());
    return cv_.wait_for(lock, dur);
  }
  template <typename Rep, typename Period, typename Predicate>
  bool wait_for(std::unique_lock<AuditedMutex>& lock,
                const std::chrono::duration<Rep, Period>& dur,
                Predicate pred) {
    detail::lock_audit_note_wait(lock.mutex()->audit_id());
    return cv_.wait_for(lock, dur, std::move(pred));
  }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

#else  // !DSG_AUDIT_INVARIANTS — zero-cost forwarding wrappers.

class AuditedMutex {
 public:
  explicit AuditedMutex(const char* /*name*/) {}
  AuditedMutex(const AuditedMutex&) = delete;
  AuditedMutex& operator=(const AuditedMutex&) = delete;

  void lock() { mu_.lock(); }
  bool try_lock() { return mu_.try_lock(); }
  void unlock() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

class AuditedConditionVariable {
 public:
  template <typename Predicate>
  void wait(std::unique_lock<AuditedMutex>& lock, Predicate pred) {
    cv_.wait(lock, std::move(pred));
  }
  void wait(std::unique_lock<AuditedMutex>& lock) { cv_.wait(lock); }
  template <typename Rep, typename Period>
  std::cv_status wait_for(std::unique_lock<AuditedMutex>& lock,
                          const std::chrono::duration<Rep, Period>& dur) {
    return cv_.wait_for(lock, dur);
  }
  template <typename Rep, typename Period, typename Predicate>
  bool wait_for(std::unique_lock<AuditedMutex>& lock,
                const std::chrono::duration<Rep, Period>& dur,
                Predicate pred) {
    return cv_.wait_for(lock, dur, std::move(pred));
  }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

#endif  // DSG_AUDIT_INVARIANTS

/// The guard type serving code uses where it needs an unlockable guard or
/// a condvar-compatible lock.
using AuditedLock = std::unique_lock<AuditedMutex>;

}  // namespace dsg::testing
