// lock_audit.cpp — the process-global lockdep state behind AuditedMutex.
//
// Data model (armed builds only):
//
//   - Every AuditedMutex registers for a small integer id and a name.
//     Ids are recycled after unregister so long-running processes that
//     churn servers don't grow the graph without bound.
//   - Each thread keeps a thread_local stack of currently-held ids.
//   - A process-global directed graph stores an edge h -> l for every
//     observed "acquired l while holding h", together with the acquisition
//     chain (lock names, outermost first) that first produced the edge —
//     that chain is the "other thread's stack" in violation reports.
//
// At note_acquire (BEFORE the underlying mutex blocks) the auditor:
//
//   1. flags a recursive acquire if the id is already in this thread's
//      held stack;
//   2. checks whether a path id ~> h already exists for any held lock h
//      (DFS over the edge set): if it does, some earlier acquisition
//      chain took these locks in the opposite order, so the two orders
//      can deadlock — report with both chains;
//   3. otherwise records edges h -> id for every held h and proceeds.
//
// Firing at the *order*, not the deadlock, is the whole point: the fatal
// interleaving may need a scheduler coincidence this run never hits, but
// the inverted order is visible the first time either side runs.
//
// note_wait flags a condvar wait entered while more than one lock is
// held: wait() releases only its own mutex, so every other held lock
// stays held for the full sleep — the classic notify-side deadlock.
//
// All bookkeeping happens under one internal std::mutex (never an
// AuditedMutex — the auditor must not audit itself).  Violations are
// reported AFTER dropping the internal lock so a capturing test handler
// can safely touch audited locks again.
#include "testing/lock_audit.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace dsg::testing {

namespace {

void default_handler(const LockOrderViolation& v) {
  std::fprintf(stderr, "\n=== dsg lock audit: %s ===\n%s\n",
               v.kind == LockOrderViolation::Kind::kOrderInversion
                   ? "lock-order inversion"
                   : (v.kind == LockOrderViolation::Kind::kRecursiveLock
                          ? "recursive lock"
                          : "condvar wait while holding a second lock"),
               v.report.c_str());
  std::abort();
}

std::atomic<LockAuditHandler> g_handler{&default_handler};

}  // namespace

LockAuditHandler set_lock_audit_handler(LockAuditHandler handler) noexcept {
  const LockAuditHandler prev = g_handler.exchange(
      handler != nullptr ? handler : &default_handler);
  return prev == &default_handler ? nullptr : prev;
}

#ifndef DSG_AUDIT_INVARIANTS

bool lock_audit_armed() noexcept { return false; }
void lock_audit_reset() noexcept {}

#else  // DSG_AUDIT_INVARIANTS

bool lock_audit_armed() noexcept { return true; }

namespace detail {
namespace {

// All mutable state below is guarded by state_mutex() — a plain
// std::mutex, leaf-level by construction (no audited operation runs while
// it is held, and the handler is invoked after it is dropped).
std::mutex& state_mutex() {
  static std::mutex mu;
  return mu;
}

struct Edge {
  std::size_t to;
  std::string first_seen_chain;  // "outer -> ... -> inner" that created it
};

struct State {
  std::vector<std::string> names;      // by id; empty string = free slot
  std::vector<std::size_t> free_ids;   // recycled slots
  std::vector<std::vector<Edge>> out;  // adjacency by id
};

State& state() {
  static State* s = new State();  // leaked: threads may outlive statics
  return *s;
}

// This thread's currently-held audited locks, outermost first.
thread_local std::vector<std::size_t> t_held;

std::string chain_string(const State& s, const std::vector<std::size_t>& held,
                         std::size_t next) {
  std::string chain;
  for (const std::size_t id : held) {
    chain += s.names[id];
    chain += " -> ";
  }
  chain += s.names[next];
  return chain;
}

/// Is there a path from `from` to `to` in the recorded order graph?
/// Returns the edge chain annotations along one such path via `trail`.
bool find_path(const State& s, std::size_t from, std::size_t to,
               std::vector<char>& visited, std::vector<std::string>& trail) {
  if (from == to) return true;
  visited[from] = 1;
  for (const Edge& e : s.out[from]) {
    if (visited[e.to] != 0) continue;
    trail.push_back(e.first_seen_chain);
    if (find_path(s, e.to, to, visited, trail)) return true;
    trail.pop_back();
  }
  return false;
}

void deliver(LockOrderViolation v) {
  // Handler runs with the state mutex NOT held (callers ensure this).
  g_handler.load()(v);
}

}  // namespace

std::size_t lock_audit_register(const char* name) noexcept {
  std::lock_guard<std::mutex> g(state_mutex());
  State& s = state();
  std::size_t id = 0;
  if (!s.free_ids.empty()) {
    id = s.free_ids.back();
    s.free_ids.pop_back();
    s.names[id] = name;
    s.out[id].clear();
  } else {
    id = s.names.size();
    s.names.emplace_back(name);
    s.out.emplace_back();
  }
  return id;
}

void lock_audit_unregister(std::size_t id) noexcept {
  std::lock_guard<std::mutex> g(state_mutex());
  State& s = state();
  // Drop every edge touching the dead id: a recycled slot must not
  // inherit ordering constraints from a destroyed mutex.
  s.out[id].clear();
  for (std::vector<Edge>& edges : s.out) {
    std::erase_if(edges, [id](const Edge& e) { return e.to == id; });
  }
  s.names[id].clear();
  s.free_ids.push_back(id);
}

void lock_audit_note_acquire(std::size_t id) {
  LockOrderViolation violation;
  bool fire = false;
  {
    std::lock_guard<std::mutex> g(state_mutex());
    State& s = state();
    for (const std::size_t held : t_held) {
      if (held == id) {
        violation.kind = LockOrderViolation::Kind::kRecursiveLock;
        violation.report = "thread re-locking '" + s.names[id] +
                           "' while already holding it; held chain: " +
                           chain_string(s, t_held, id);
        fire = true;
        break;
      }
    }
    if (!fire && !t_held.empty()) {
      // Inversion check: a recorded path id ~> h means some chain took
      // `id` before h; this thread holds h and wants `id` — cycle.
      for (const std::size_t held : t_held) {
        std::vector<char> visited(s.names.size(), 0);
        std::vector<std::string> trail;
        if (find_path(s, id, held, visited, trail)) {
          violation.kind = LockOrderViolation::Kind::kOrderInversion;
          violation.report =
              "this thread's acquisition chain: " +
              chain_string(s, t_held, id) +
              "\npreviously recorded opposite order:";
          for (const std::string& hop : trail) {
            violation.report += "\n  via chain: " + hop;
          }
          fire = true;
          break;
        }
      }
    }
    if (!fire) {
      const std::string chain = chain_string(s, t_held, id);
      for (const std::size_t held : t_held) {
        std::vector<Edge>& edges = s.out[held];
        bool known = false;
        for (const Edge& e : edges) {
          if (e.to == id) {
            known = true;
            break;
          }
        }
        if (!known) edges.push_back(Edge{id, chain});
      }
    }
  }
  if (fire) deliver(std::move(violation));
}

void lock_audit_note_acquired(std::size_t id) { t_held.push_back(id); }

void lock_audit_note_release(std::size_t id) {
  // Unlock order need not be LIFO (unique_lock::unlock interleavings),
  // so erase the most recent matching entry rather than popping.
  for (std::size_t i = t_held.size(); i > 0; --i) {
    if (t_held[i - 1] == id) {
      t_held.erase(t_held.begin() + static_cast<std::ptrdiff_t>(i) - 1);
      return;
    }
  }
}

void lock_audit_note_wait(std::size_t id) {
  LockOrderViolation violation;
  bool fire = false;
  {
    std::lock_guard<std::mutex> g(state_mutex());
    State& s = state();
    if (t_held.size() > 1) {
      violation.kind = LockOrderViolation::Kind::kWaitWhileHolding;
      std::string held_names;
      for (const std::size_t h : t_held) {
        if (!held_names.empty()) held_names += ", ";
        held_names += s.names[h];
      }
      violation.report = "condvar wait on '" + s.names[id] +
                         "' entered while holding: " + held_names +
                         " — only the waited mutex is released during the "
                         "sleep";
      fire = true;
    }
  }
  if (fire) deliver(std::move(violation));
}

}  // namespace detail

void lock_audit_reset() noexcept {
  std::lock_guard<std::mutex> g(detail::state_mutex());
  for (auto& edges : detail::state().out) edges.clear();
}

#endif  // DSG_AUDIT_INVARIANTS

}  // namespace dsg::testing
