#include "testing/fault_injection.hpp"

#include <cstring>
#include <mutex>
#include <new>
#include <thread>
#include <unordered_map>

#include "sssp/query_control.hpp"  // PublishedFlag, the audited latch

namespace dsg::testing {
namespace {

// Fast-path gate: fault_point() bails on one relaxed peek when no table is
// installed, so production builds pay nothing measurable.  The
// release/acquire publication pairs install_faults()'s table write with
// concurrent observers; the racy peek() fast path re-checks g_state under
// g_mutex before touching it.
PublishedFlag g_active;

struct FaultState {
  std::uint64_t seed = 0;
  std::vector<FaultSpec> specs;
  std::unordered_map<std::string, std::uint64_t> hits;
};

std::mutex g_mutex;
FaultState* g_state = nullptr;  // guarded by g_mutex

// splitmix64 — the standard seeded mixer; deterministic across platforms.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_name(const char* name) {
  // FNV-1a over the point name, folded through mix64.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char* p = name; *p; ++p) {
    h = (h ^ static_cast<unsigned char>(*p)) * 0x100000001b3ULL;
  }
  return mix64(h);
}

bool spec_matches(const FaultSpec& spec, std::uint64_t seed, const char* name,
                  std::uint64_t hit, std::uint64_t key) {
  if (spec.point != "*" && spec.point != name) return false;
  if (spec.on_hit >= 0 && static_cast<std::uint64_t>(spec.on_hit) == hit) {
    return true;
  }
  if (spec.with_key >= 0 && static_cast<std::uint64_t>(spec.with_key) == key) {
    return true;
  }
  if (spec.one_in > 0 &&
      mix64(seed ^ hash_name(name) ^ hit) % spec.one_in == 0) {
    return true;
  }
  return false;
}

}  // namespace

void install_faults(std::uint64_t seed, std::vector<FaultSpec> specs) {
  std::lock_guard<std::mutex> lock(g_mutex);
  delete g_state;
  g_state = new FaultState{seed, std::move(specs), {}};
  g_active.publish(true);
}

void clear_faults() {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_active.publish(false);
  delete g_state;
  g_state = nullptr;
}

bool faults_active() { return g_active.observe(); }

void fault_point(const char* name, std::uint64_t key) {
  if (!g_active.peek()) return;

  FaultSpec::Action action{};
  std::chrono::microseconds delay{};
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    // Re-check under the lock: clear_faults() may have raced the fast path.
    if (g_state == nullptr) return;
    const std::uint64_t hit = g_state->hits[name]++;
    for (const FaultSpec& spec : g_state->specs) {
      if (spec_matches(spec, g_state->seed, name, hit, key)) {
        fire = true;
        action = spec.action;
        delay = spec.delay;
        break;
      }
    }
  }
  if (!fire) return;
  switch (action) {
    case FaultSpec::Action::kThrowBadAlloc:
      throw std::bad_alloc();
    case FaultSpec::Action::kDelay:
      std::this_thread::sleep_for(delay);
      break;
  }
}

std::uint64_t fault_point_hits(const char* name) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_state == nullptr) return 0;
  auto it = g_state->hits.find(name);
  return it == g_state->hits.end() ? 0 : it->second;
}

std::vector<std::string> touched_fault_points() {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::vector<std::string> out;
  if (g_state == nullptr) return out;
  out.reserve(g_state->hits.size());
  for (const auto& [name, count] : g_state->hits) {
    if (count > 0) out.push_back(name);
  }
  return out;
}

std::span<const char* const> fault_point_catalog() {
  // The authoritative list of named points in production code.  Keep in
  // sync with docs/ARCHITECTURE.md ("Failure model & query lifecycle").
  static constexpr const char* kCatalog[] = {
      "solver/solve",            // SsspSolver::solve, before dispatch
      "solver/batch_query",      // per-query in solve_batch (key = source)
      "buckets/round",           // kBuckets bucket loop
      "fused/round",             // kFused / kGraphblasSelect-era fused loop
      "openmp/round",            // kOpenmp outer round (inside the region)
      "graphblas/round",         // kGraphblas pure-GraphBLAS loop
      "graphblas_select/round",  // kGraphblasSelect loop
      "capi/round",              // kCapi plan-core loop
      "dijkstra/settle",         // kDijkstra heap pops (sampled)
      "bellman_ford/relax",      // kBellmanFord worklist dequeues (sampled)
      "async/round",             // async engine, per-worker round start
      "async/coordinate",        // async engine, coordinator phase
      "capi/object_new",         // C-API object creation entry points
      "serving/plan_load",       // PlanIo::load, before reading the file
      "serving/pool_enqueue",    // SsspServer::submit, before queueing (key = source)
      "serving/worker_query",    // worker picks up a query (key = source)
      "serving/cache_insert",    // result-cache insert of a kComplete result
  };
  return {kCatalog, sizeof(kCatalog) / sizeof(kCatalog[0])};
}

}  // namespace dsg::testing
