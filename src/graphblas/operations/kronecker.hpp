// kronecker.hpp — GrB_kronecker: the Kronecker product over a semiring's
// multiplicative operator.
//
// C = A ⊗ B has dimensions (m_A·m_B) x (n_A·n_B) with
//   C[i·m_B + k][j·n_B + l] = mult(A[i][j], B[k][l]).
// Kronecker powers of a small stochastic seed matrix generate the
// RMAT/Graph500 family the benchmark suite uses as its social-network
// stand-in, which makes this operation a natural part of the substrate.
#pragma once

#include <vector>

#include "graphblas/descriptor.hpp"
#include "graphblas/mask.hpp"
#include "graphblas/matrix.hpp"
#include "graphblas/types.hpp"

namespace grb {

/// C<Mask> accum= A ⊗ B (by `op`, typically the semiring multiply).
template <typename C, typename Mask, typename Accum, typename BinaryOp,
          typename A, typename B>
void kronecker(Matrix<C>& c, const Mask& mask, const Accum& accum,
               BinaryOp op, const Matrix<A>& a, const Matrix<B>& b,
               const Descriptor& desc = default_desc) {
  const Matrix<A>* pa = desc.transpose_in0 ? &a.transpose_cached() : &a;
  const Matrix<B>* pb = desc.transpose_in1 ? &b.transpose_cached() : &b;
  const Index crows = pa->nrows() * pb->nrows();
  const Index ccols = pa->ncols() * pb->ncols();
  detail::check_size_match(c.nrows(), crows, "kronecker: C rows");
  detail::check_size_match(c.ncols(), ccols, "kronecker: C cols");

  using Z = decltype(op(std::declval<A>(), std::declval<B>()));
  Matrix<Z> z(crows, ccols);
  std::vector<Index> zptr(crows + 1, 0);
  std::vector<Index> zind;
  std::vector<storage_of_t<Z>> zval;
  zind.reserve(pa->nvals() * pb->nvals());
  zval.reserve(pa->nvals() * pb->nvals());

  // Row i·m_B + k of C interleaves row i of A with row k of B; generating
  // rows in (i, k) lexicographic order keeps CSR order, and within a row
  // the (j, l) double loop ascends because both operands' rows ascend.
  for (Index i = 0; i < pa->nrows(); ++i) {
    auto acols = pa->row_indices(i);
    auto avals = pa->row_values(i);
    for (Index k = 0; k < pb->nrows(); ++k) {
      auto bcols = pb->row_indices(k);
      auto bvals = pb->row_values(k);
      for (std::size_t x = 0; x < acols.size(); ++x) {
        for (std::size_t y = 0; y < bcols.size(); ++y) {
          zind.push_back(acols[x] * pb->ncols() + bcols[y]);
          zval.push_back(static_cast<storage_of_t<Z>>(
              op(static_cast<A>(avals[x]), static_cast<B>(bvals[y]))));
        }
      }
      zptr[i * pb->nrows() + k + 1] = static_cast<Index>(zind.size());
    }
  }
  z.adopt(std::move(zptr), std::move(zind), std::move(zval));
  detail::write_matrix_result(c, std::move(z), mask, accum, desc);
}

/// Unmasked, non-accumulating convenience overload.
template <typename C, typename BinaryOp, typename A, typename B>
void kronecker(Matrix<C>& c, BinaryOp op, const Matrix<A>& a,
               const Matrix<B>& b, const Descriptor& desc = default_desc) {
  kronecker(c, NoMask{}, NoAccumulate{}, op, a, b, desc);
}

}  // namespace grb
