// reduce.hpp — GrB_reduce: fold the stored elements of a vector or matrix
// with a monoid.
//
// Delta-stepping's loop conditions are nvals() checks on filtered vectors,
// but reductions are part of the substrate contract and the tests use them
// heavily (e.g. reduce(Plus) over a boolean set == set cardinality).
#pragma once

#include <optional>
#include <vector>

#include "graphblas/descriptor.hpp"
#include "graphblas/mask.hpp"
#include "graphblas/matrix.hpp"
#include "graphblas/monoid.hpp"
#include "graphblas/types.hpp"
#include "graphblas/vector.hpp"

namespace grb {

/// Scalar reduce of a vector: returns fold(monoid, stored elements) or the
/// monoid identity when the vector is empty (per GrB_reduce semantics the
/// identity is the neutral start value).
template <typename MonoidT, typename U>
typename MonoidT::value_type reduce(const MonoidT& monoid,
                                    const Vector<U>& u) {
  using T = typename MonoidT::value_type;
  T acc = monoid.identity();
  u.for_each([&](Index, const U& x) { acc = monoid(acc, static_cast<T>(x)); });
  return acc;
}

/// Scalar reduce with accumulator: out = accum(out, reduce(monoid, u)).
template <typename T, typename Accum, typename MonoidT, typename U>
void reduce(T& out, const Accum& accum, const MonoidT& monoid,
            const Vector<U>& u) {
  const auto r = reduce(monoid, u);
  if constexpr (detail::is_no_accum_v<Accum>) {
    out = static_cast<T>(r);
  } else {
    out = static_cast<T>(accum(out, r));
  }
}

/// Scalar reduce of a matrix.
template <typename MonoidT, typename A>
typename MonoidT::value_type reduce(const MonoidT& monoid,
                                    const Matrix<A>& a) {
  using T = typename MonoidT::value_type;
  T acc = monoid.identity();
  a.for_each(
      [&](Index, Index, const A& x) { acc = monoid(acc, static_cast<T>(x)); });
  return acc;
}

/// Row-wise reduce of a matrix into a vector: w[i] = fold(monoid, A[i][:]).
/// desc.transpose_in0 reduces columns instead.  Rows with no stored entries
/// produce no output entry (GraphBLAS semantics).
template <typename W, typename Mask, typename Accum, typename MonoidT,
          typename A>
void reduce(Vector<W>& w, const Mask& mask, const Accum& accum,
            const MonoidT& monoid, const Matrix<A>& a,
            const Descriptor& desc = default_desc) {
  const Matrix<A>* pa = desc.transpose_in0 ? &a.transpose_cached() : &a;
  detail::check_size_match(w.size(), pa->nrows(), "reduce: w vs A rows");

  using T = typename MonoidT::value_type;
  Vector<T> z(pa->nrows());
  auto& zi = z.mutable_indices();
  auto& zv = z.mutable_values();
  for (Index r = 0; r < pa->nrows(); ++r) {
    auto vals = pa->row_values(r);
    if (vals.empty()) continue;
    T acc = static_cast<T>(vals[0]);
    for (std::size_t k = 1; k < vals.size(); ++k) {
      acc = monoid(acc, static_cast<T>(vals[k]));
    }
    zi.push_back(r);
    zv.push_back(acc);
  }
  detail::write_vector_result(w, z, mask, accum, desc);
}

/// Unmasked, non-accumulating convenience overload.
template <typename W, typename MonoidT, typename A>
void reduce(Vector<W>& w, const MonoidT& monoid, const Matrix<A>& a,
            const Descriptor& desc = default_desc) {
  reduce(w, NoMask{}, NoAccumulate{}, monoid, a, desc);
}

}  // namespace grb
