// mxv.hpp — GrB_vxm and GrB_mxv: sparse vector–matrix and matrix–vector
// products over an arbitrary semiring.
//
// vxm computes w = uᵀ A, which over (min,+) with u = (t ∘ tB_i) and A = A_L
// is exactly the edge-relaxation request vector tReq = A_Lᵀ (t ∘ tB_i) of
// the delta-stepping formulation (paper Fig. 2, lines 43 and 60).
//
// Kernel shape: for each stored u[i], scatter semiring.mult(u[i], A[i][j])
// into a dense accumulator indexed by j, combining with semiring.add.  This
// is the push-style SpMSpV that SuiteSparse uses for row-major vxm; its cost
// is proportional to the sum of the out-degrees of the frontier.
#pragma once

#include <vector>

#include "graphblas/descriptor.hpp"
#include "graphblas/mask.hpp"
#include "graphblas/matrix.hpp"
#include "graphblas/semiring.hpp"
#include "graphblas/types.hpp"
#include "graphblas/vector.hpp"

namespace grb {

namespace detail {

/// Dense scatter accumulator reused across products.  `occupied` doubles as
/// the structure of the result.
template <typename Z>
struct ScatterAccumulator {
  std::vector<storage_of_t<Z>> value;
  std::vector<unsigned char> occupied;
  std::vector<Index> touched;  // indices with occupied==1, unsorted

  void reset(Index n) {
    value.assign(n, Z{});
    occupied.assign(n, 0);
    touched.clear();
  }

  template <typename SR>
  void scatter(Index j, const Z& x, const SR& sr) {
    if (!occupied[j]) {
      occupied[j] = 1;
      value[j] = x;
      touched.push_back(j);
    } else {
      value[j] = sr.add(static_cast<Z>(value[j]), x);
    }
  }
};

/// Core push kernel: z = uᵀ A over semiring `sr` (no mask/accum — those are
/// applied by the caller's write phase).
template <typename Z, typename SR, typename U, typename A>
Vector<Z> vxm_kernel(const SR& sr, const Vector<U>& u, const Matrix<A>& a) {
  Vector<Z> z(a.ncols());
  ScatterAccumulator<Z> acc;
  acc.reset(a.ncols());

  u.for_each([&](Index i, const U& ux) {
    auto cols = a.row_indices(i);
    auto vals = a.row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      acc.scatter(cols[k],
                  static_cast<Z>(sr.mult(ux, static_cast<A>(vals[k]))), sr);
    }
  });

  std::sort(acc.touched.begin(), acc.touched.end());
  auto& zi = z.mutable_indices();
  auto& zv = z.mutable_values();
  zi.reserve(acc.touched.size());
  zv.reserve(acc.touched.size());
  for (Index j : acc.touched) {
    zi.push_back(j);
    zv.push_back(acc.value[j]);
  }
  return z;
}

/// Core pull kernel: z = A u over semiring `sr` (dot products of CSR rows
/// with the sparse input vector).
template <typename Z, typename SR, typename A, typename U>
Vector<Z> mxv_kernel(const SR& sr, const Matrix<A>& a, const Vector<U>& u) {
  Vector<Z> z(a.nrows());
  auto& zi = z.mutable_indices();
  auto& zv = z.mutable_values();

  auto ui = u.indices();
  auto uv = u.values();
  for (Index r = 0; r < a.nrows(); ++r) {
    auto cols = a.row_indices(r);
    auto vals = a.row_values(r);
    bool any = false;
    Z acc{};
    std::size_t x = 0, y = 0;
    while (x < cols.size() && y < ui.size()) {
      if (cols[x] < ui[y]) {
        ++x;
      } else if (ui[y] < cols[x]) {
        ++y;
      } else {
        const Z p = static_cast<Z>(
            sr.mult(static_cast<A>(vals[x]), static_cast<U>(uv[y])));
        acc = any ? sr.add(acc, p) : p;
        any = true;
        ++x;
        ++y;
      }
    }
    if (any) {
      zi.push_back(r);
      zv.push_back(acc);
    }
  }
  return z;
}

}  // namespace detail

/// w<mask> accum= uᵀ A  (GrB_vxm).  desc.transpose_in1 transposes A.
template <typename W, typename Mask, typename Accum, typename SR, typename U,
          typename A>
void vxm(Vector<W>& w, const Mask& mask, const Accum& accum, const SR& sr,
         const Vector<U>& u, const Matrix<A>& a,
         const Descriptor& desc = default_desc) {
  const Matrix<A>* pa = &a;
  Matrix<A> at;
  if (desc.transpose_in1) {
    at = a.transposed();
    pa = &at;
  }
  detail::check_size_match(u.size(), pa->nrows(), "vxm: u size vs A rows");
  detail::check_size_match(w.size(), pa->ncols(), "vxm: w size vs A cols");

  using Z = typename SR::value_type;
  auto z = detail::vxm_kernel<Z>(sr, u, *pa);
  detail::write_vector_result(w, z, mask, accum, desc);
}

/// Unmasked, non-accumulating convenience overload.
template <typename W, typename SR, typename U, typename A>
void vxm(Vector<W>& w, const SR& sr, const Vector<U>& u, const Matrix<A>& a,
         const Descriptor& desc = default_desc) {
  vxm(w, NoMask{}, NoAccumulate{}, sr, u, a, desc);
}

/// w<mask> accum= A u  (GrB_mxv).  desc.transpose_in0 transposes A, in which
/// case the push kernel (vxm on the untransposed matrix) is used since
/// Aᵀu = (uᵀA)ᵀ.
template <typename W, typename Mask, typename Accum, typename SR, typename A,
          typename U>
void mxv(Vector<W>& w, const Mask& mask, const Accum& accum, const SR& sr,
         const Matrix<A>& a, const Vector<U>& u,
         const Descriptor& desc = default_desc) {
  using Z = typename SR::value_type;
  if (desc.transpose_in0) {
    detail::check_size_match(u.size(), a.nrows(), "mxv(T): u size vs A rows");
    detail::check_size_match(w.size(), a.ncols(), "mxv(T): w size vs A cols");
    auto z = detail::vxm_kernel<Z>(sr, u, a);
    detail::write_vector_result(w, z, mask, accum, desc);
    return;
  }
  detail::check_size_match(u.size(), a.ncols(), "mxv: u size vs A cols");
  detail::check_size_match(w.size(), a.nrows(), "mxv: w size vs A rows");
  auto z = detail::mxv_kernel<Z>(sr, a, u);
  detail::write_vector_result(w, z, mask, accum, desc);
}

/// Unmasked, non-accumulating convenience overload.
template <typename W, typename SR, typename A, typename U>
void mxv(Vector<W>& w, const SR& sr, const Matrix<A>& a, const Vector<U>& u,
         const Descriptor& desc = default_desc) {
  mxv(w, NoMask{}, NoAccumulate{}, sr, a, u, desc);
}

}  // namespace grb
