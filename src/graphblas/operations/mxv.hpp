// mxv.hpp — GrB_vxm and GrB_mxv: sparse vector–matrix and matrix–vector
// products over an arbitrary semiring.
//
// vxm computes w = uᵀ A, which over (min,+) with u = (t ∘ tB_i) and A = A_L
// is exactly the edge-relaxation request vector tReq = A_Lᵀ (t ∘ tB_i) of
// the delta-stepping formulation (paper Fig. 2, lines 43 and 60).
//
// Kernel shape: for each stored u[i], scatter semiring.mult(u[i], A[i][j])
// into a dense accumulator indexed by j, combining with semiring.add.  This
// is the push-style SpMSpV that SuiteSparse uses for row-major vxm; its cost
// is proportional to the sum of the out-degrees of the frontier.  The
// accumulator lives in the grb::Context workspace (sparse reset, see
// context.hpp), the mask probe is pushed down into the scatter loop so
// non-writable columns are never computed, and frontiers above the
// Context's threshold run the OpenMP per-thread-accumulator kernel.
#pragma once

#include <vector>

#include "graphblas/context.hpp"
#include "graphblas/descriptor.hpp"
#include "graphblas/mask.hpp"
#include "graphblas/matrix.hpp"
#include "graphblas/semiring.hpp"
#include "graphblas/types.hpp"
#include "graphblas/vector.hpp"

#if defined(DSG_HAVE_OPENMP)
#include <omp.h>
#endif

namespace grb {

namespace detail {

#if defined(DSG_HAVE_OPENMP)

/// Parallel push kernel: u's entries are split into degree-balanced
/// contiguous chunks, each thread scatters its chunk into a private
/// accumulator, then threads merge disjoint column ranges of all private
/// accumulators into one result.  Merging chunk s = 0..nt-1 in order feeds
/// each column its contributions in the same ascending-row sequence as the
/// serial kernel, but associated per chunk — bit-identical to serial for
/// exactly-associative adds (min/max/or/and, the delta-stepping case), and
/// within rounding of it for floating-point sums.  Semiring ops must not
/// throw (an exception would escape the parallel region and terminate).
template <typename Z, typename SR, typename U, typename A, typename Probe>
Vector<Z> vxm_kernel_parallel(Context& ctx, const SR& sr, const Vector<U>& u,
                              const Matrix<A>& a, const Probe& probe) {
  const Index n = a.ncols();
  auto ui = u.indices();
  auto uv = u.values();
  const std::size_t nu = ui.size();

  const int want = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(std::max(1, omp_get_max_threads())),
      std::max<std::size_t>(1, nu)));

  auto& pool = ctx.get<ThreadScatterPool<Z>>();
  auto& merged = pool.merged;
  merged.reset(n);

  // num_threads is only an upper bound (dynamic teams, thread limits,
  // nesting can all shrink it), so the chunking is derived from the team
  // size actually delivered, inside the region: chunk t covers u entries
  // [cuts[t], cuts[t+1]), cut so chunks carry roughly equal out-degree
  // sums (entry-count chunks starve on power-law graphs).
  std::vector<std::size_t> cuts;
  int team = 1;

#pragma omp parallel num_threads(want)
  {
#pragma omp single
    {
      team = omp_get_num_threads();
      const auto nt = static_cast<std::size_t>(team);
      cuts.assign(nt + 1, 0);
      std::uint64_t total = 0;
      for (std::size_t k = 0; k < nu; ++k) total += a.row_nvals(ui[k]);
      std::uint64_t seen = 0;
      std::size_t k = 0;
      for (std::size_t c = 1; c < nt; ++c) {
        const std::uint64_t target = total * c / nt;
        while (k < nu && seen < target) seen += a.row_nvals(ui[k++]);
        cuts[c] = k;
      }
      cuts[nt] = nu;
      if (pool.local.size() < nt) pool.local.resize(nt);
      if (pool.range_ind.size() < nt) pool.range_ind.resize(nt);
    }  // implied barrier: cuts/pool sizing visible to the whole team

    const auto nt = static_cast<std::size_t>(team);
    const auto t = static_cast<std::size_t>(omp_get_thread_num());
    auto& lacc = pool.local[t];
    lacc.reset(n);
    for (std::size_t k = cuts[t]; k < cuts[t + 1]; ++k) {
      const Index i = ui[k];
      const U ux = static_cast<U>(uv[k]);
      auto cols = a.row_indices(i);
      auto vals = a.row_values(i);
      for (std::size_t e = 0; e < cols.size(); ++e) {
        const Index j = cols[e];
        if (!lacc.occupied[j] && !probe(j)) continue;  // mask push-down
        lacc.scatter(j, static_cast<Z>(sr.mult(ux, static_cast<A>(vals[e]))),
                     sr);
      }
    }

#pragma omp barrier

    // Thread t merges columns [lo, hi) from every private accumulator.
    // Ranges are disjoint, so `merged` needs no synchronization.
    const Index lo = n * static_cast<Index>(t) / static_cast<Index>(nt);
    const Index hi = n * (static_cast<Index>(t) + 1) / static_cast<Index>(nt);
    auto& out = pool.range_ind[t];
    out.clear();
    for (std::size_t s = 0; s < nt; ++s) {
      const auto& sacc = pool.local[s];
      for (Index j : sacc.touched) {
        if (j < lo || j >= hi) continue;
        if (!merged.occupied[j]) {
          merged.occupied[j] = 1;
          merged.value[j] = sacc.value[j];
          out.push_back(j);
        } else {
          merged.value[j] = sr.add(static_cast<Z>(merged.value[j]),
                                   static_cast<Z>(sacc.value[j]));
        }
      }
    }
    std::sort(out.begin(), out.end());
  }

  // Per-range outputs are sorted and the ranges ascend, so concatenation is
  // already in index order.  Clearing occupied bits as we emit restores the
  // merged accumulator's all-clear invariant without an O(n) pass.
  Vector<Z> z(n);
  auto& zi = z.mutable_indices();
  auto& zv = z.mutable_values();
  std::size_t nnz = 0;
  for (std::size_t t = 0; t < static_cast<std::size_t>(team); ++t) {
    nnz += pool.range_ind[t].size();
  }
  zi.reserve(nnz);
  zv.reserve(nnz);
  for (std::size_t t = 0; t < static_cast<std::size_t>(team); ++t) {
    for (Index j : pool.range_ind[t]) {
      zi.push_back(j);
      zv.push_back(merged.value[j]);
      merged.occupied[j] = 0;
    }
  }
  return z;
}

#endif  // DSG_HAVE_OPENMP

/// Core push kernel: z = uᵀ A over semiring `sr`.  The probe (from
/// with_vector_probe) is applied inside the scatter loop: a column the mask
/// makes non-writable is skipped before its product is ever formed, at one
/// probe call per distinct column.  Accum/replace still happen in the
/// caller's write phase.
template <typename Z, typename SR, typename U, typename A, typename Probe>
Vector<Z> vxm_kernel(Context& ctx, const SR& sr, const Vector<U>& u,
                     const Matrix<A>& a, const Probe& probe) {
  const Index n = a.ncols();
  if constexpr (std::is_same_v<Probe, AlwaysFalseProbe>) {
    // Complement of "no mask": nothing is writable, skip the product.
    return Vector<Z>(n);
  } else {
#if defined(DSG_HAVE_OPENMP)
    // With a single thread the parallel kernel is the serial one plus merge
    // and region overhead, so it must also clear the thread-count gate.
    if (u.nvals() >= ctx.vxm_parallel_threshold &&
        omp_get_max_threads() > 1) {
      return vxm_kernel_parallel<Z>(ctx, sr, u, a, probe);
    }
#endif
    auto& acc = ctx.get<ScatterAccumulator<Z>>();
    acc.reset(n);
    u.for_each([&](Index i, const U& ux) {
      auto cols = a.row_indices(i);
      auto vals = a.row_values(i);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        const Index j = cols[k];
        if (!acc.occupied[j] && !probe(j)) continue;  // mask push-down
        acc.scatter(j, static_cast<Z>(sr.mult(ux, static_cast<A>(vals[k]))),
                    sr);
      }
    });
    Vector<Z> z(n);
    acc.extract_sorted(n, z.mutable_indices(), z.mutable_values());
    return z;
  }
}

/// Core pull kernel: z = A u over semiring `sr` (dot products of CSR rows
/// with the sparse input vector).  The probe skips non-writable rows before
/// their dot product is computed.  A dense-representation u replaces the
/// sorted two-pointer intersection with an O(1) bitmap test per matrix
/// entry, making each dot product O(row nnz) regardless of u's density.
template <typename Z, typename SR, typename A, typename U, typename Probe>
Vector<Z> mxv_kernel(const SR& sr, const Matrix<A>& a, const Vector<U>& u,
                     const Probe& probe) {
  Vector<Z> z(a.nrows());
  auto& zi = z.mutable_indices();
  auto& zv = z.mutable_values();

  if (u.is_dense()) {
    auto ubit = u.dense_bitmap();
    auto uval = u.dense_values();
    for (Index r = 0; r < a.nrows(); ++r) {
      if (!probe(r)) continue;  // mask push-down
      auto cols = a.row_indices(r);
      auto vals = a.row_values(r);
      bool any = false;
      Z acc{};
      for (std::size_t x = 0; x < cols.size(); ++x) {
        const Index j = cols[x];
        if (!detail::bitmap_test(ubit.data(), j)) continue;
        const Z p = static_cast<Z>(
            sr.mult(static_cast<A>(vals[x]), static_cast<U>(uval[j])));
        acc = any ? sr.add(acc, p) : p;
        any = true;
      }
      if (any) {
        zi.push_back(r);
        zv.push_back(acc);
      }
    }
    return z;
  }

  auto ui = u.indices();
  auto uv = u.values();
  for (Index r = 0; r < a.nrows(); ++r) {
    if (!probe(r)) continue;  // mask push-down
    auto cols = a.row_indices(r);
    auto vals = a.row_values(r);
    bool any = false;
    Z acc{};
    std::size_t x = 0, y = 0;
    while (x < cols.size() && y < ui.size()) {
      if (cols[x] < ui[y]) {
        ++x;
      } else if (ui[y] < cols[x]) {
        ++y;
      } else {
        const Z p = static_cast<Z>(
            sr.mult(static_cast<A>(vals[x]), static_cast<U>(uv[y])));
        acc = any ? sr.add(acc, p) : p;
        any = true;
        ++x;
        ++y;
      }
    }
    if (any) {
      zi.push_back(r);
      zv.push_back(acc);
    }
  }
  return z;
}

}  // namespace detail

/// w<mask> accum= uᵀ A  (GrB_vxm) using `ctx`'s workspaces.
/// desc.transpose_in1 transposes A (served from the matrix's cached
/// transpose — no per-call rebuild).
template <typename W, typename Mask, typename Accum, typename SR, typename U,
          typename A>
void vxm(Context& ctx, Vector<W>& w, const Mask& mask, const Accum& accum,
         const SR& sr, const Vector<U>& u, const Matrix<A>& a,
         const Descriptor& desc = default_desc) {
  const Matrix<A>* pa = desc.transpose_in1 ? &a.transpose_cached() : &a;
  detail::check_size_match(u.size(), pa->nrows(), "vxm: u size vs A rows");
  detail::check_size_match(w.size(), pa->ncols(), "vxm: w size vs A cols");

  using Z = typename SR::value_type;
  detail::with_vector_probe(mask, desc, w.size(), [&](const auto& probe) {
    auto z = detail::vxm_kernel<Z>(ctx, sr, u, *pa, probe);
    detail::masked_write_vector(ctx, w, std::move(z), probe, accum,
                                desc.replace,
                                /*z_prefiltered=*/true);
  });
}

/// Legacy signature: runs on the thread-local default context.
template <typename W, typename Mask, typename Accum, typename SR, typename U,
          typename A>
void vxm(Vector<W>& w, const Mask& mask, const Accum& accum, const SR& sr,
         const Vector<U>& u, const Matrix<A>& a,
         const Descriptor& desc = default_desc) {
  vxm(default_context(), w, mask, accum, sr, u, a, desc);
}

/// Unmasked, non-accumulating convenience overloads.
template <typename W, typename SR, typename U, typename A>
void vxm(Context& ctx, Vector<W>& w, const SR& sr, const Vector<U>& u,
         const Matrix<A>& a, const Descriptor& desc = default_desc) {
  vxm(ctx, w, NoMask{}, NoAccumulate{}, sr, u, a, desc);
}

template <typename W, typename SR, typename U, typename A>
void vxm(Vector<W>& w, const SR& sr, const Vector<U>& u, const Matrix<A>& a,
         const Descriptor& desc = default_desc) {
  vxm(default_context(), w, NoMask{}, NoAccumulate{}, sr, u, a, desc);
}

/// w<mask> accum= A u  (GrB_mxv) using `ctx`'s workspaces.
/// desc.transpose_in0 transposes A, in which case the push kernel (vxm on
/// the untransposed matrix) is used since Aᵀu = (uᵀA)ᵀ.
template <typename W, typename Mask, typename Accum, typename SR, typename A,
          typename U>
void mxv(Context& ctx, Vector<W>& w, const Mask& mask, const Accum& accum,
         const SR& sr, const Matrix<A>& a, const Vector<U>& u,
         const Descriptor& desc = default_desc) {
  using Z = typename SR::value_type;
  if (desc.transpose_in0) {
    detail::check_size_match(u.size(), a.nrows(), "mxv(T): u size vs A rows");
    detail::check_size_match(w.size(), a.ncols(), "mxv(T): w size vs A cols");
    detail::with_vector_probe(mask, desc, w.size(), [&](const auto& probe) {
      auto z = detail::vxm_kernel<Z>(ctx, sr, u, a, probe);
      detail::masked_write_vector(ctx, w, std::move(z), probe, accum,
                                desc.replace,
                                /*z_prefiltered=*/true);
    });
    return;
  }
  detail::check_size_match(u.size(), a.ncols(), "mxv: u size vs A cols");
  detail::check_size_match(w.size(), a.nrows(), "mxv: w size vs A rows");
  detail::with_vector_probe(mask, desc, w.size(), [&](const auto& probe) {
    auto z = detail::mxv_kernel<Z>(sr, a, u, probe);
    detail::masked_write_vector(ctx, w, std::move(z), probe, accum,
                                desc.replace,
                                /*z_prefiltered=*/true);
  });
}

/// Legacy signature: runs on the thread-local default context.
template <typename W, typename Mask, typename Accum, typename SR, typename A,
          typename U>
void mxv(Vector<W>& w, const Mask& mask, const Accum& accum, const SR& sr,
         const Matrix<A>& a, const Vector<U>& u,
         const Descriptor& desc = default_desc) {
  mxv(default_context(), w, mask, accum, sr, a, u, desc);
}

/// Unmasked, non-accumulating convenience overloads.
template <typename W, typename SR, typename A, typename U>
void mxv(Context& ctx, Vector<W>& w, const SR& sr, const Matrix<A>& a,
         const Vector<U>& u, const Descriptor& desc = default_desc) {
  mxv(ctx, w, NoMask{}, NoAccumulate{}, sr, a, u, desc);
}

template <typename W, typename SR, typename A, typename U>
void mxv(Vector<W>& w, const SR& sr, const Matrix<A>& a, const Vector<U>& u,
         const Descriptor& desc = default_desc) {
  mxv(default_context(), w, NoMask{}, NoAccumulate{}, sr, a, u, desc);
}

}  // namespace grb
