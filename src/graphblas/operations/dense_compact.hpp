// dense_compact.hpp — the dense-*output* decision for point-wise kernels
// over dense-representation inputs, and the compacted kernel it selects.
//
// A dense-input select/apply can stage its result two ways:
//
//   - dense stage: positional sweep writing a word-packed bitmap + value
//     array, then the dense write phase.  Cost is O(n/64) word traffic no
//     matter how few entries survive — unbeatable for dense outputs, pure
//     overhead for thin ones.
//   - compacted: ctz-walk the input bitmap and push surviving (index,
//     value) pairs straight into sorted-coordinate form, then the sparse
//     write phase.  Cost is O(survivors) plus the word walk.
//
// The crossover sits near 40% *output* density (measured on the
// select_range row of the spmspv_pointwise bench: below that, compaction
// wins; Context::dense_output_crossover holds the knob).  Output density
// is input density times filter selectivity; selectivity is estimated by
// sampling a few hundred stored entries.  Both paths produce bit-identical
// logical results — the choice moves time, never values.
#pragma once

#include <algorithm>
#include <cstddef>

#include "graphblas/bitmap.hpp"
#include "graphblas/context.hpp"
#include "graphblas/mask.hpp"
#include "graphblas/operations/pointwise_parallel.hpp"
#include "graphblas/types.hpp"
#include "graphblas/vector.hpp"

namespace grb::detail {

/// Estimated fraction of u's stored entries that pass `keep(i)`, from up to
/// ~256 samples spread evenly over the bitmap words.  Within each sampled
/// word the probed bit *rotates* (the first set bit at or cyclically after
/// sample-counter mod 64): probing a fixed intra-word position — e.g.
/// always the first set bit — skews the estimate whenever keep-probability
/// correlates with i mod 64, which structured inputs (grids, strided
/// frontiers) routinely produce.  Deterministic — fixed stride, no RNG —
/// so repeated runs take the same kernel path.  `u` must be in the dense
/// representation.
template <typename U, typename Keep>
double sampled_keep_fraction(const Vector<U>& u, const Keep& keep) {
  auto ubit = u.dense_bitmap();
  const std::size_t nwords = ubit.size();
  if (nwords == 0 || u.nvals() == 0) return 0.0;
  constexpr std::size_t kTargetSamples = 256;
  const std::size_t stride = std::max<std::size_t>(1, nwords / kTargetSamples);
  std::size_t samples = 0, hits = 0, probe = 0;
  for (std::size_t wd = 0; wd < nwords; wd += stride, ++probe) {
    const BitmapWord word = ubit[wd];
    if (word == 0) continue;
    // First set bit at or cyclically after the rotating start offset.
    const int start = static_cast<int>(probe % kBitmapWordBits);
    const int off =
        (start + std::countr_zero(std::rotr(word, start))) %
        static_cast<int>(kBitmapWordBits);
    const Index i = static_cast<Index>(wd) * kBitmapWordBits +
                    static_cast<Index>(off);
    ++samples;
    if (keep(i)) ++hits;
  }
  if (samples == 0) return 1.0;
  return static_cast<double>(hits) / static_cast<double>(samples);
}

/// True when the estimated output density (input density x sampled keep
/// rate) falls below the Context's dense-output crossover, i.e. when the
/// compacted kernel should replace the dense stage.
template <typename U, typename Keep>
bool dense_output_prefers_compaction(const Context& ctx, const Vector<U>& u,
                                     const Keep& keep) {
  if (ctx.dense_output_crossover <= 0.0) return false;
  if (ctx.dense_output_crossover >= 1.0) return true;
  const double est = u.density() * sampled_keep_fraction(u, keep);
  return est < ctx.dense_output_crossover;
}

/// Compacted kernel: z (sparse, empty) receives the entries of dense-
/// representation u that pass the pushed-down probe and `keep(i)`, with
/// values produced by `emit(i)`.  Walks the bitmap word-at-a-time (zero
/// words skipped outright, probe applied via probe_writable_word) and
/// ctz-iterates survivors.  Above the Context threshold the walk runs the
/// deterministic two-pass OpenMP scheme over contiguous *word* ranges, so
/// the output is bit-identical to serial for any thread count.
template <typename Z, typename Probe, typename U, typename Keep,
          typename Emit>
void compact_dense_to_sparse(Context& ctx, Vector<Z>& z, const Vector<U>& u,
                             const Probe& probe, const Keep& keep,
                             const Emit& emit) {
  auto ubit = u.dense_bitmap();
  const std::size_t nwords = ubit.size();
  auto& zi = z.mutable_indices();
  auto& zv = z.mutable_values();

  // Survivor word: input presence AND probe AND per-entry keep.
  auto survivors = [&](std::size_t wd) {
    BitmapWord m = ubit[wd];
    if (m == 0) return m;
    m &= probe_writable_word(probe, wd, m);
    BitmapWord out = 0;
    bitmap_for_each_in_word(m,
                            static_cast<Index>(wd) * kBitmapWordBits,
                            [&](Index i) {
                              if (keep(i)) out |= BitmapWord{1} << (i & 63);
                            });
    return out;
  };

#if defined(DSG_HAVE_OPENMP)
  if (u.size() >= ctx.pointwise_parallel_threshold &&
      omp_get_max_threads() > 1) {
    const int chunks = pointwise_chunks(static_cast<std::size_t>(u.size()));
    parallel_chunked_compact(
        chunks,
        [&](int t) {
          const auto [w0, w1] = chunk_range(nwords, t, chunks);
          std::size_t count = 0;
          for (std::size_t wd = w0; wd < w1; ++wd) {
            count += static_cast<std::size_t>(std::popcount(survivors(wd)));
          }
          return count;
        },
        [&](std::size_t total) {
          zi.resize(total);
          zv.resize(total);
        },
        [&](int t, std::size_t off) {
          const auto [w0, w1] = chunk_range(nwords, t, chunks);
          for (std::size_t wd = w0; wd < w1; ++wd) {
            bitmap_for_each_in_word(
                survivors(wd), static_cast<Index>(wd) * kBitmapWordBits,
                [&](Index i) {
                  zi[off] = i;
                  zv[off] = emit(i);
                  ++off;
                });
          }
        });
    return;
  }
#else
  (void)ctx;
#endif  // DSG_HAVE_OPENMP
  zi.reserve(static_cast<std::size_t>(u.nvals()));
  zv.reserve(static_cast<std::size_t>(u.nvals()));
  for (std::size_t wd = 0; wd < nwords; ++wd) {
    bitmap_for_each_in_word(survivors(wd),
                            static_cast<Index>(wd) * kBitmapWordBits,
                            [&](Index i) {
                              zi.push_back(i);
                              zv.push_back(emit(i));
                            });
  }
}

}  // namespace grb::detail
