// assign.hpp — GrB_assign: scatter a scalar / vector / matrix into a
// target's sub-structure.
//
// The scalar-into-vector form with a mask is the "set membership" idiom:
// w<m> = 1 marks every position where m is true.
#pragma once

#include <span>
#include <vector>

#include "graphblas/descriptor.hpp"
#include "graphblas/mask.hpp"
#include "graphblas/matrix.hpp"
#include "graphblas/operations/extract.hpp"
#include "graphblas/types.hpp"
#include "graphblas/vector.hpp"

namespace grb {

/// w<mask>(indices) accum= u:  w[indices[k]] = u[k].
template <typename W, typename Mask, typename Accum, typename U>
void assign(Vector<W>& w, const Mask& mask, const Accum& accum,
            const Vector<U>& u, std::span<const Index> indices,
            const Descriptor& desc = default_desc) {
  auto idx = detail::resolve_indices(indices, w.size());
  detail::check_size_match(static_cast<Index>(idx.size()), u.size(),
                           "assign: indices vs u");

  // Scatter u through the index map into a w-sized result, then run the
  // standard write phase with accumulate-if-present semantics: positions of
  // w not covered by the scatter keep their values (GrB_assign, not
  // GxB_subassign).
  Vector<U> scattered(w.size());
  {
    std::vector<std::pair<Index, U>> tuples;
    tuples.reserve(u.nvals());
    u.for_each([&](Index k, const U& x) {
      detail::check_index(idx[k], w.size(), "assign: target index");
      tuples.emplace_back(idx[k], x);
    });
    std::sort(tuples.begin(), tuples.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    auto& si = scattered.mutable_indices();
    auto& sv = scattered.mutable_values();
    for (auto& [i, x] : tuples) {
      if (!si.empty() && si.back() == i) {
        sv.back() = x;  // later index wins, per assign duplicate rule
      } else {
        si.push_back(i);
        sv.push_back(x);
      }
    }
  }

  // Positions selected by `indices` but empty in u must *delete* the target
  // entry under no-accum semantics.  We realize this by first clearing the
  // covered region when there is no accumulator.
  if constexpr (detail::is_no_accum_v<Accum>) {
    Vector<W> cleared = w;
    for (Index i : idx) cleared.remove_element(i);
    // Merge: cleared keeps untouched region; scattered supplies new values.
    Vector<W> z = cleared;
    scattered.for_each(
        [&](Index i, const U& x) { z.set_element(i, static_cast<W>(x)); });
    detail::write_vector_result(w, z, mask, accum, desc);
  } else {
    detail::write_vector_result(w, scattered, mask, accum, desc);
  }
}

/// w<mask> accum= scalar over `indices` (GrB_assign with scalar).
template <typename W, typename Mask, typename Accum, typename T>
void assign_scalar(Vector<W>& w, const Mask& mask, const Accum& accum,
                   const T& value, std::span<const Index> indices,
                   const Descriptor& desc = default_desc) {
  auto idx = detail::resolve_indices(indices, w.size());
  Vector<T> z(w.size());
  {
    std::vector<Index> sorted(idx.begin(), idx.end());
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    auto& zi = z.mutable_indices();
    auto& zv = z.mutable_values();
    for (Index i : sorted) {
      detail::check_index(i, w.size(), "assign_scalar: index");
      zi.push_back(i);
      zv.push_back(value);
    }
  }
  detail::write_vector_result(w, z, mask, accum, desc);
}

/// Whole-vector masked scalar assign: w<mask> = value (all indices).
template <typename W, typename Mask, typename T>
void assign_scalar(Vector<W>& w, const Mask& mask, const T& value,
                   const Descriptor& desc = default_desc) {
  const Index all[] = {all_indices};
  assign_scalar(w, mask, NoAccumulate{}, value, all, desc);
}

/// C<Mask>(rows, cols) accum= A.
template <typename C, typename Mask, typename Accum, typename A>
void assign(Matrix<C>& c, const Mask& mask, const Accum& accum,
            const Matrix<A>& a, std::span<const Index> row_indices,
            std::span<const Index> col_indices,
            const Descriptor& desc = default_desc) {
  auto ri = detail::resolve_indices(row_indices, c.nrows());
  auto ci = detail::resolve_indices(col_indices, c.ncols());
  detail::check_size_match(static_cast<Index>(ri.size()), a.nrows(),
                           "assign: row indices vs A rows");
  detail::check_size_match(static_cast<Index>(ci.size()), a.ncols(),
                           "assign: col indices vs A cols");

  Matrix<C> z = c;
  if constexpr (detail::is_no_accum_v<Accum>) {
    for (Index rk = 0; rk < a.nrows(); ++rk) {
      for (Index ck = 0; ck < a.ncols(); ++ck) {
        detail::check_index(ri[rk], c.nrows(), "assign: row");
        detail::check_index(ci[ck], c.ncols(), "assign: col");
        z.remove_element(ri[rk], ci[ck]);
      }
    }
  }
  a.for_each([&](Index r, Index col, const A& x) {
    z.set_element(ri[r], ci[col], static_cast<C>(x));
  });
  detail::write_matrix_result(c, z, mask, accum, desc);
}

/// C<Mask> accum= scalar over (rows x cols).
template <typename C, typename Mask, typename Accum, typename T>
void assign_scalar(Matrix<C>& c, const Mask& mask, const Accum& accum,
                   const T& value, std::span<const Index> row_indices,
                   std::span<const Index> col_indices,
                   const Descriptor& desc = default_desc) {
  auto ri = detail::resolve_indices(row_indices, c.nrows());
  auto ci = detail::resolve_indices(col_indices, c.ncols());
  Matrix<T> z(c.nrows(), c.ncols());
  for (Index r : ri) {
    for (Index col : ci) {
      detail::check_index(r, c.nrows(), "assign_scalar: row");
      detail::check_index(col, c.ncols(), "assign_scalar: col");
      z.set_element(r, col, value);
    }
  }
  detail::write_matrix_result(c, z, mask, accum, desc);
}

}  // namespace grb
