// transpose.hpp — GrB_transpose with mask/accum/descriptor.
#pragma once

#include "graphblas/descriptor.hpp"
#include "graphblas/mask.hpp"
#include "graphblas/matrix.hpp"
#include "graphblas/types.hpp"

namespace grb {

/// C<Mask> accum= Aᵀ.  With desc.transpose_in0 the two transposes cancel
/// and this is a (possibly masked) copy of A.
template <typename C, typename Mask, typename Accum, typename A>
void transpose(Matrix<C>& c, const Mask& mask, const Accum& accum,
               const Matrix<A>& a, const Descriptor& desc = default_desc) {
  const Matrix<A>& z = desc.transpose_in0 ? a : a.transpose_cached();
  detail::check_size_match(c.nrows(), z.nrows(), "transpose: C vs Aᵀ rows");
  detail::check_size_match(c.ncols(), z.ncols(), "transpose: C vs Aᵀ cols");
  detail::write_matrix_result(c, z, mask, accum, desc);
}

/// Unmasked convenience overload.
template <typename C, typename A>
void transpose(Matrix<C>& c, const Matrix<A>& a,
               const Descriptor& desc = default_desc) {
  transpose(c, NoMask{}, NoAccumulate{}, a, desc);
}

}  // namespace grb
