// extract.hpp — GrB_extract: gather a subvector / submatrix by index list.
#pragma once

#include <span>
#include <vector>

#include "graphblas/descriptor.hpp"
#include "graphblas/mask.hpp"
#include "graphblas/matrix.hpp"
#include "graphblas/types.hpp"
#include "graphblas/vector.hpp"

namespace grb {

namespace detail {

/// Expands the `all_indices` sentinel into 0..n-1.
inline std::vector<Index> resolve_indices(std::span<const Index> idx,
                                          Index n) {
  if (idx.size() == 1 && idx[0] == all_indices) {
    std::vector<Index> out(n);
    for (Index i = 0; i < n; ++i) out[i] = i;
    return out;
  }
  return {idx.begin(), idx.end()};
}

}  // namespace detail

/// w<mask> accum= u(indices):  w[k] = u[indices[k]].
/// `indices` may contain duplicates and need not be sorted; pass the single
/// element grb::all_indices for "all of u".
template <typename W, typename Mask, typename Accum, typename U>
void extract(Vector<W>& w, const Mask& mask, const Accum& accum,
             const Vector<U>& u, std::span<const Index> indices,
             const Descriptor& desc = default_desc) {
  auto idx = detail::resolve_indices(indices, u.size());
  detail::check_size_match(w.size(), static_cast<Index>(idx.size()),
                           "extract: w vs indices");

  Vector<U> z(static_cast<Index>(idx.size()));
  auto& zi = z.mutable_indices();
  auto& zv = z.mutable_values();
  for (std::size_t k = 0; k < idx.size(); ++k) {
    detail::check_index(idx[k], u.size(), "extract: index");
    if (auto v = u.extract_element(idx[k])) {
      zi.push_back(static_cast<Index>(k));
      zv.push_back(*v);
    }
  }
  detail::write_vector_result(w, z, mask, accum, desc);
}

/// Unmasked convenience overload.
template <typename W, typename U>
void extract(Vector<W>& w, const Vector<U>& u, std::span<const Index> indices,
             const Descriptor& desc = default_desc) {
  extract(w, NoMask{}, NoAccumulate{}, u, indices, desc);
}

/// C<Mask> accum= A(row_indices, col_indices).
template <typename C, typename Mask, typename Accum, typename A>
void extract(Matrix<C>& c, const Mask& mask, const Accum& accum,
             const Matrix<A>& a, std::span<const Index> row_indices,
             std::span<const Index> col_indices,
             const Descriptor& desc = default_desc) {
  const Matrix<A>* pa = desc.transpose_in0 ? &a.transpose_cached() : &a;
  auto ri = detail::resolve_indices(row_indices, pa->nrows());
  auto ci = detail::resolve_indices(col_indices, pa->ncols());
  detail::check_size_match(c.nrows(), static_cast<Index>(ri.size()),
                           "extract: C rows vs row_indices");
  detail::check_size_match(c.ncols(), static_cast<Index>(ci.size()),
                           "extract: C cols vs col_indices");

  // Invert the column selection: old column -> list of new positions.
  std::vector<std::vector<Index>> col_map(pa->ncols());
  for (std::size_t k = 0; k < ci.size(); ++k) {
    detail::check_index(ci[k], pa->ncols(), "extract: col index");
    col_map[ci[k]].push_back(static_cast<Index>(k));
  }

  Matrix<A> z(static_cast<Index>(ri.size()), static_cast<Index>(ci.size()));
  std::vector<Index> zptr(ri.size() + 1, 0);
  std::vector<Index> zind;
  std::vector<A> zval;
  std::vector<std::pair<Index, A>> row_buf;
  for (std::size_t rk = 0; rk < ri.size(); ++rk) {
    detail::check_index(ri[rk], pa->nrows(), "extract: row index");
    row_buf.clear();
    auto cols = pa->row_indices(ri[rk]);
    auto vals = pa->row_values(ri[rk]);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      for (Index new_c : col_map[cols[k]]) {
        row_buf.emplace_back(new_c, static_cast<A>(vals[k]));
      }
    }
    std::sort(row_buf.begin(), row_buf.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    for (const auto& [ncol, v] : row_buf) {
      zind.push_back(ncol);
      zval.push_back(v);
    }
    zptr[rk + 1] = static_cast<Index>(zind.size());
  }
  z.adopt(std::move(zptr), std::move(zind), std::move(zval));
  detail::write_matrix_result(c, z, mask, accum, desc);
}

/// Unmasked convenience overload (matrix).
template <typename C, typename A>
void extract(Matrix<C>& c, const Matrix<A>& a,
             std::span<const Index> row_indices,
             std::span<const Index> col_indices,
             const Descriptor& desc = default_desc) {
  extract(c, NoMask{}, NoAccumulate{}, a, row_indices, col_indices, desc);
}

/// Column extraction: w<mask> accum= A(:, col) — used by vertex-centric
/// "incoming edges of v" access (paper Sec. II-B).
template <typename W, typename Mask, typename Accum, typename A>
void extract_column(Vector<W>& w, const Mask& mask, const Accum& accum,
                    const Matrix<A>& a, Index col,
                    const Descriptor& desc = default_desc) {
  const Matrix<A>* pa = desc.transpose_in0 ? &a.transpose_cached() : &a;
  detail::check_index(col, pa->ncols(), "extract_column: col");
  detail::check_size_match(w.size(), pa->nrows(), "extract_column: w vs rows");

  Vector<A> z(pa->nrows());
  auto& zi = z.mutable_indices();
  auto& zv = z.mutable_values();
  for (Index r = 0; r < pa->nrows(); ++r) {
    if (auto v = pa->extract_element(r, col)) {
      zi.push_back(r);
      zv.push_back(*v);
    }
  }
  detail::write_vector_result(w, z, mask, accum, desc);
}

}  // namespace grb
