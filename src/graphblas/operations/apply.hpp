// apply.hpp — GrB_apply: point-wise application of a unary operator to the
// stored elements of a vector or matrix, with optional mask and accumulator.
//
// This is the workhorse of the paper's filter idiom: a first apply turns a
// threshold predicate into a boolean object, and a second apply uses that
// boolean object as a *mask* over an identity op to keep only the entries
// where the predicate held (Fig. 2, lines 16-17, 20-21, 27-28, 35, 37, ...).
#pragma once

#include <vector>

#include "graphblas/descriptor.hpp"
#include "graphblas/mask.hpp"
#include "graphblas/matrix.hpp"
#include "graphblas/types.hpp"
#include "graphblas/vector.hpp"

namespace grb {

/// w<mask> accum= op(u)
///
/// Applies `op` to every stored element of `u`; absent elements stay absent.
/// Mask/accum/descriptor behave per the standard write rule (see mask.hpp).
template <typename W, typename Mask, typename Accum, typename UnaryOp,
          typename U>
void apply(Vector<W>& w, const Mask& mask, const Accum& accum, UnaryOp op,
           const Vector<U>& u, const Descriptor& desc = default_desc) {
  detail::check_size_match(w.size(), u.size(), "apply: w vs u");

  using Z = decltype(op(std::declval<U>()));
  Vector<Z> z(u.size());
  std::vector<Index> zi(u.indices().begin(), u.indices().end());
  std::vector<storage_of_t<Z>> zv;
  zv.reserve(u.nvals());
  for (const auto& x : u.values()) {
    zv.push_back(static_cast<storage_of_t<Z>>(op(static_cast<U>(x))));
  }
  z.adopt(std::move(zi), std::move(zv));

  detail::write_vector_result(w, z, mask, accum, desc);
}

/// Unmasked, non-accumulating convenience overload.
template <typename W, typename UnaryOp, typename U>
void apply(Vector<W>& w, UnaryOp op, const Vector<U>& u,
           const Descriptor& desc = default_desc) {
  apply(w, NoMask{}, NoAccumulate{}, op, u, desc);
}

/// C<Mask> accum= op(A)     (with optional transpose of A via desc)
template <typename C, typename Mask, typename Accum, typename UnaryOp,
          typename A>
void apply(Matrix<C>& c, const Mask& mask, const Accum& accum, UnaryOp op,
           const Matrix<A>& a, const Descriptor& desc = default_desc) {
  const Matrix<A>* src = &a;
  Matrix<A> at;
  if (desc.transpose_in0) {
    at = a.transposed();
    src = &at;
  }
  detail::check_size_match(c.nrows(), src->nrows(), "apply: C rows vs A rows");
  detail::check_size_match(c.ncols(), src->ncols(), "apply: C cols vs A cols");

  using Z = decltype(op(std::declval<A>()));
  Matrix<Z> z(src->nrows(), src->ncols());
  std::vector<Index> zptr(src->row_ptr().begin(), src->row_ptr().end());
  std::vector<Index> zind(src->col_ind().begin(), src->col_ind().end());
  std::vector<storage_of_t<Z>> zval;
  zval.reserve(src->nvals());
  for (const auto& x : src->raw_values()) {
    zval.push_back(static_cast<storage_of_t<Z>>(op(static_cast<A>(x))));
  }
  z.adopt(std::move(zptr), std::move(zind), std::move(zval));

  detail::write_matrix_result(c, z, mask, accum, desc);
}

/// Unmasked, non-accumulating convenience overload (matrix).
template <typename C, typename UnaryOp, typename A>
void apply(Matrix<C>& c, UnaryOp op, const Matrix<A>& a,
           const Descriptor& desc = default_desc) {
  apply(c, NoMask{}, NoAccumulate{}, op, a, desc);
}

}  // namespace grb
