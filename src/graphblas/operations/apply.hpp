// apply.hpp — GrB_apply: point-wise application of a unary operator to the
// stored elements of a vector or matrix, with optional mask and accumulator.
//
// This is the workhorse of the paper's filter idiom: a first apply turns a
// threshold predicate into a boolean object, and a second apply uses that
// boolean object as a *mask* over an identity op to keep only the entries
// where the predicate held (Fig. 2, lines 16-17, 20-21, 27-28, 35, 37, ...).
#pragma once

#include <vector>

#include "graphblas/bitmap.hpp"
#include "graphblas/descriptor.hpp"
#include "graphblas/mask.hpp"
#include "graphblas/matrix.hpp"
#include "graphblas/operations/dense_compact.hpp"
#include "graphblas/operations/pointwise_parallel.hpp"
#include "graphblas/types.hpp"
#include "graphblas/vector.hpp"

namespace grb {

namespace detail {

/// Dense-representation apply kernel: word-packed sweep of u's bitmap with
/// the mask pushed down one 64-lane word at a time (zero words skipped
/// whole, probe applied via probe_writable_word, op run only at surviving
/// bits via ctz iteration), staging a dense result.  Parallelizes over
/// contiguous word ranges — each word is written by exactly one thread, so
/// the result is bit-identical to serial for any thread count.
template <typename W, typename Probe, typename Accum, typename UnaryOp,
          typename U>
void apply_vector_dense(Context& ctx, Vector<W>& w, const Probe& probe,
                        const Accum& accum, UnaryOp op, const Vector<U>& u,
                        const Descriptor& desc) {
  using Z = decltype(op(std::declval<U>()));
  const Index n = u.size();
  auto& stage = ctx.get<DenseKernelStage<Z>>();
  stage.reset(n);
  Index nnz = 0;
  if constexpr (!std::is_same_v<Probe, AlwaysFalseProbe>) {
    auto ubit = u.dense_bitmap();
    auto uval = u.dense_values();
    const std::size_t nwords = ubit.size();
    auto word_kernel = [&](std::size_t wd) -> Index {
      const BitmapWord uw = ubit[wd];
      if (uw == 0) return 0;  // whole-word skip of empty regions
      const BitmapWord m = uw & probe_writable_word(probe, wd, uw);
      if (m == 0) return 0;
      stage.bit[wd] = m;
      bitmap_for_each_in_word(
          m, static_cast<Index>(wd) * kBitmapWordBits, [&](Index i) {
            stage.val[i] =
                static_cast<storage_of_t<Z>>(op(static_cast<U>(uval[i])));
          });
      return static_cast<Index>(std::popcount(m));
    };
#if defined(DSG_HAVE_OPENMP)
    if (n >= ctx.pointwise_parallel_threshold && omp_get_max_threads() > 1) {
      std::int64_t count = 0;
#pragma omp parallel for schedule(static) reduction(+ : count)
      for (std::ptrdiff_t pw = 0; pw < static_cast<std::ptrdiff_t>(nwords);
           ++pw) {
        count += static_cast<std::int64_t>(
            word_kernel(static_cast<std::size_t>(pw)));
      }
      nnz = static_cast<Index>(count);
      masked_write_vector_dense(ctx, w, stage, nnz, probe, accum,
                                desc.replace, /*z_prefiltered=*/true);
      return;
    }
#endif  // DSG_HAVE_OPENMP
    for (std::size_t wd = 0; wd < nwords; ++wd) nnz += word_kernel(wd);
  }
  masked_write_vector_dense(ctx, w, stage, nnz, probe, accum, desc.replace,
                            /*z_prefiltered=*/true);
}

}  // namespace detail

/// w<mask> accum= op(u), using `ctx`'s workspaces.
///
/// Applies `op` to every stored element of `u`; absent elements stay absent.
/// Mask/accum/descriptor behave per the standard write rule (see mask.hpp);
/// the mask probe is pushed down so `op` never runs at non-writable
/// positions.  A dense-representation input takes the positional bitmap
/// kernel (detail::apply_vector_dense); results are bit-identical either
/// way.
template <typename W, typename Mask, typename Accum, typename UnaryOp,
          typename U>
void apply(Context& ctx, Vector<W>& w, const Mask& mask, const Accum& accum,
           UnaryOp op, const Vector<U>& u,
           const Descriptor& desc = default_desc) {
  detail::check_size_match(w.size(), u.size(), "apply: w vs u");

  using Z = decltype(op(std::declval<U>()));
  detail::with_vector_probe(mask, desc, w.size(), [&](const auto& probe) {
    if (u.is_dense()) {
      // Output structure is u ∧ mask, so when the estimated output density
      // falls below the crossover the compacted kernel replaces the dense
      // stage (see dense_compact.hpp); results are bit-identical.
      if constexpr (!std::is_same_v<std::decay_t<decltype(probe)>,
                                    detail::AlwaysFalseProbe>) {
        if (detail::dense_output_prefers_compaction(
                ctx, u, [&](Index i) { return probe(i); })) {
          auto uval = u.dense_values();
          Vector<Z> z(u.size());
          detail::compact_dense_to_sparse(
              ctx, z, u, probe, [](Index) { return true; },
              [&](Index i) {
                return static_cast<storage_of_t<Z>>(
                    op(static_cast<U>(uval[i])));
              });
          detail::masked_write_vector(ctx, w, std::move(z), probe, accum,
                                      desc.replace,
                                      /*z_prefiltered=*/true);
          return;
        }
      }
      detail::apply_vector_dense(ctx, w, probe, accum, op, u, desc);
      return;
    }
    Vector<Z> z(u.size());
    auto& zi = z.mutable_indices();
    auto& zv = z.mutable_values();
    auto ui = u.indices();
    auto uv = u.values();
    const std::size_t nu = ui.size();
#if defined(DSG_HAVE_OPENMP)
    // Parallel two-pass kernel (bit-identical to serial; see
    // pointwise_parallel.hpp) once the input clears the Context threshold.
    if (nu >= static_cast<std::size_t>(ctx.pointwise_parallel_threshold) &&
        omp_get_max_threads() > 1) {
      if constexpr (std::is_same_v<std::decay_t<decltype(probe)>,
                                   detail::AlwaysTrueProbe>) {
        // Output structure equals input structure: one parallel transform.
        zi.assign(ui.begin(), ui.end());
        zv.resize(nu);
#pragma omp parallel for schedule(static)
        for (std::ptrdiff_t k = 0; k < static_cast<std::ptrdiff_t>(nu); ++k) {
          zv[static_cast<std::size_t>(k)] = static_cast<storage_of_t<Z>>(
              op(static_cast<U>(uv[static_cast<std::size_t>(k)])));
        }
      } else {
        const int chunks = detail::pointwise_chunks(nu);
        detail::parallel_chunked_compact(
            chunks,
            [&](int t) {
              const auto [b, e] = detail::chunk_range(nu, t, chunks);
              std::size_t count = 0;
              for (std::size_t k = b; k < e; ++k) {
                if (probe(ui[k])) ++count;
              }
              return count;
            },
            [&](std::size_t total) {
              zi.resize(total);
              zv.resize(total);
            },
            [&](int t, std::size_t off) {
              const auto [b, e] = detail::chunk_range(nu, t, chunks);
              for (std::size_t k = b; k < e; ++k) {
                if (!probe(ui[k])) continue;  // mask push-down
                zi[off] = ui[k];
                zv[off] = static_cast<storage_of_t<Z>>(
                    op(static_cast<U>(uv[k])));
                ++off;
              }
            });
      }
      detail::masked_write_vector(ctx, w, std::move(z), probe, accum,
                                  desc.replace,
                                  /*z_prefiltered=*/true);
      return;
    }
#endif  // DSG_HAVE_OPENMP
    if constexpr (std::is_same_v<std::decay_t<decltype(probe)>,
                                 detail::AlwaysTrueProbe>) {
      // Unmasked fast path: bulk-copy the structure, transform the values.
      zi.assign(ui.begin(), ui.end());
      zv.reserve(nu);
      for (const auto& x : uv) {
        zv.push_back(static_cast<storage_of_t<Z>>(op(static_cast<U>(x))));
      }
    } else {
      zi.reserve(nu);
      zv.reserve(nu);
      u.for_each([&](Index i, const U& x) {
        if (!probe(i)) return;  // mask push-down
        zi.push_back(i);
        zv.push_back(static_cast<storage_of_t<Z>>(op(x)));
      });
    }
    detail::masked_write_vector(ctx, w, std::move(z), probe, accum,
                                desc.replace,
                                /*z_prefiltered=*/true);
  });
}

/// Legacy signature: runs on the thread-local default context.
template <typename W, typename Mask, typename Accum, typename UnaryOp,
          typename U>
void apply(Vector<W>& w, const Mask& mask, const Accum& accum, UnaryOp op,
           const Vector<U>& u, const Descriptor& desc = default_desc) {
  apply(default_context(), w, mask, accum, op, u, desc);
}

/// Unmasked, non-accumulating convenience overloads.
template <typename W, typename UnaryOp, typename U>
void apply(Context& ctx, Vector<W>& w, UnaryOp op, const Vector<U>& u,
           const Descriptor& desc = default_desc) {
  apply(ctx, w, NoMask{}, NoAccumulate{}, op, u, desc);
}

template <typename W, typename UnaryOp, typename U>
void apply(Vector<W>& w, UnaryOp op, const Vector<U>& u,
           const Descriptor& desc = default_desc) {
  apply(default_context(), w, NoMask{}, NoAccumulate{}, op, u, desc);
}

/// C<Mask> accum= op(A)     (with optional transpose of A via desc)
template <typename C, typename Mask, typename Accum, typename UnaryOp,
          typename A>
void apply(Matrix<C>& c, const Mask& mask, const Accum& accum, UnaryOp op,
           const Matrix<A>& a, const Descriptor& desc = default_desc) {
  const Matrix<A>* src = desc.transpose_in0 ? &a.transpose_cached() : &a;
  detail::check_size_match(c.nrows(), src->nrows(), "apply: C rows vs A rows");
  detail::check_size_match(c.ncols(), src->ncols(), "apply: C cols vs A cols");

  using Z = decltype(op(std::declval<A>()));
  Matrix<Z> z(src->nrows(), src->ncols());
  std::vector<Index> zptr(src->row_ptr().begin(), src->row_ptr().end());
  std::vector<Index> zind(src->col_ind().begin(), src->col_ind().end());
  std::vector<storage_of_t<Z>> zval;
  zval.reserve(src->nvals());
  for (const auto& x : src->raw_values()) {
    zval.push_back(static_cast<storage_of_t<Z>>(op(static_cast<A>(x))));
  }
  z.adopt(std::move(zptr), std::move(zind), std::move(zval));

  detail::write_matrix_result(c, std::move(z), mask, accum, desc);
}

/// Unmasked, non-accumulating convenience overload (matrix).
template <typename C, typename UnaryOp, typename A>
void apply(Matrix<C>& c, UnaryOp op, const Matrix<A>& a,
           const Descriptor& desc = default_desc) {
  apply(c, NoMask{}, NoAccumulate{}, op, a, desc);
}

}  // namespace grb
