// select.hpp — GxB_select-style structural filtering: keep the stored
// elements satisfying an index-aware predicate.
//
// select() is the *fused* alternative to the paper's double-apply filter
// idiom: one pass instead of "apply predicate -> boolean object -> apply
// identity under mask".  The ABL-OPS benchmark contrasts the two.
#pragma once

#include <vector>

#include "graphblas/bitmap.hpp"
#include "graphblas/descriptor.hpp"
#include "graphblas/mask.hpp"
#include "graphblas/matrix.hpp"
#include "graphblas/operations/dense_compact.hpp"
#include "graphblas/operations/pointwise_parallel.hpp"
#include "graphblas/types.hpp"
#include "graphblas/vector.hpp"

namespace grb {

namespace detail {

/// Dense-representation select kernel: the filter is a word-packed bitmap
/// AND — zero words skipped whole, the mask probe applied 64 lanes at a
/// time via probe_writable_word, the predicate run only at candidate bits
/// (ctz iteration) — staging a dense result, no compaction, no index
/// arrays.  Parallelizes over contiguous word ranges (one writer per
/// word), bit-identical to serial for any thread count.
template <typename W, typename Probe, typename Accum, typename Pred,
          typename U>
void select_vector_dense(Context& ctx, Vector<W>& w, const Probe& probe,
                         const Accum& accum, Pred pred, const Vector<U>& u,
                         const Descriptor& desc) {
  const Index n = u.size();
  auto& stage = ctx.get<DenseKernelStage<U>>();
  stage.reset(n);
  Index nnz = 0;
  if constexpr (!std::is_same_v<Probe, AlwaysFalseProbe>) {
    auto ubit = u.dense_bitmap();
    auto uval = u.dense_values();
    const std::size_t nwords = ubit.size();
    auto word_kernel = [&](std::size_t wd) -> Index {
      const BitmapWord uw = ubit[wd];
      if (uw == 0) return 0;  // whole-word skip of empty regions
      const BitmapWord cand = uw & probe_writable_word(probe, wd, uw);
      if (cand == 0) return 0;
      BitmapWord m = 0;
      bitmap_for_each_in_word(
          cand, static_cast<Index>(wd) * kBitmapWordBits, [&](Index i) {
            if (pred(static_cast<U>(uval[i]), i)) {
              m |= BitmapWord{1} << (i & 63);
              stage.val[i] = uval[i];
            }
          });
      stage.bit[wd] = m;
      return static_cast<Index>(std::popcount(m));
    };
#if defined(DSG_HAVE_OPENMP)
    if (n >= ctx.pointwise_parallel_threshold && omp_get_max_threads() > 1) {
      std::int64_t count = 0;
#pragma omp parallel for schedule(static) reduction(+ : count)
      for (std::ptrdiff_t pw = 0; pw < static_cast<std::ptrdiff_t>(nwords);
           ++pw) {
        count += static_cast<std::int64_t>(
            word_kernel(static_cast<std::size_t>(pw)));
      }
      nnz = static_cast<Index>(count);
      masked_write_vector_dense(ctx, w, stage, nnz, probe, accum,
                                desc.replace, /*z_prefiltered=*/true);
      return;
    }
#endif  // DSG_HAVE_OPENMP
    for (std::size_t wd = 0; wd < nwords; ++wd) nnz += word_kernel(wd);
  }
  masked_write_vector_dense(ctx, w, stage, nnz, probe, accum, desc.replace,
                            /*z_prefiltered=*/true);
}

}  // namespace detail

/// w<mask> accum= select(pred, u):  w keeps u's entries where
/// pred(value, index) holds.  Uses `ctx`'s workspaces; the mask probe is
/// pushed down so masked-out entries are never tested or staged.  A dense-
/// representation input takes the positional bitmap kernel; results are
/// bit-identical either way.
template <typename W, typename Mask, typename Accum, typename Pred,
          typename U>
  requires VectorSelectOpFor<Pred, U>
void select(Context& ctx, Vector<W>& w, const Mask& mask, const Accum& accum,
            Pred pred, const Vector<U>& u,
            const Descriptor& desc = default_desc) {
  detail::check_size_match(w.size(), u.size(), "select: w vs u");

  detail::with_vector_probe(mask, desc, w.size(), [&](const auto& probe) {
    if (u.is_dense()) {
      // Low-selectivity filters (bucket extraction keeping a thin value
      // range) produce sparse outputs; below the crossover the compacted
      // kernel beats the dense stage (see dense_compact.hpp).  Results are
      // bit-identical either way.
      if constexpr (!std::is_same_v<std::decay_t<decltype(probe)>,
                                    detail::AlwaysFalseProbe>) {
        auto uval = u.dense_values();
        auto keep = [&](Index i) {
          return pred(static_cast<U>(uval[i]), i);
        };
        if (detail::dense_output_prefers_compaction(
                ctx, u, [&](Index i) { return probe(i) && keep(i); })) {
          Vector<U> z(u.size());
          detail::compact_dense_to_sparse(ctx, z, u, probe, keep,
                                          [&](Index i) { return uval[i]; });
          detail::masked_write_vector(ctx, w, std::move(z), probe, accum,
                                      desc.replace,
                                      /*z_prefiltered=*/true);
          return;
        }
      }
      detail::select_vector_dense(ctx, w, probe, accum, pred, u, desc);
      return;
    }
    Vector<U> z(u.size());
    auto& zi = z.mutable_indices();
    auto& zv = z.mutable_values();
#if defined(DSG_HAVE_OPENMP)
    // Parallel two-pass kernel (bit-identical to serial; see
    // pointwise_parallel.hpp) once the input clears the Context threshold.
    auto ui = u.indices();
    auto uv = u.values();
    const std::size_t nu = ui.size();
    if (nu >= static_cast<std::size_t>(ctx.pointwise_parallel_threshold) &&
        omp_get_max_threads() > 1) {
      const int chunks = detail::pointwise_chunks(nu);
      auto keep = [&](std::size_t k) {
        return probe(ui[k]) && pred(static_cast<U>(uv[k]), ui[k]);
      };
      detail::parallel_chunked_compact(
          chunks,
          [&](int t) {
            const auto [b, e] = detail::chunk_range(nu, t, chunks);
            std::size_t count = 0;
            for (std::size_t k = b; k < e; ++k) {
              if (keep(k)) ++count;
            }
            return count;
          },
          [&](std::size_t total) {
            zi.resize(total);
            zv.resize(total);
          },
          [&](int t, std::size_t off) {
            const auto [b, e] = detail::chunk_range(nu, t, chunks);
            for (std::size_t k = b; k < e; ++k) {
              if (!keep(k)) continue;
              zi[off] = ui[k];
              zv[off] = uv[k];
              ++off;
            }
          });
      detail::masked_write_vector(ctx, w, std::move(z), probe, accum,
                                  desc.replace,
                                  /*z_prefiltered=*/true);
      return;
    }
#endif  // DSG_HAVE_OPENMP
    u.for_each([&](Index i, const U& x) {
      if (probe(i) && pred(x, i)) {
        zi.push_back(i);
        zv.push_back(x);
      }
    });
    detail::masked_write_vector(ctx, w, std::move(z), probe, accum,
                                desc.replace,
                                /*z_prefiltered=*/true);
  });
}

/// Legacy signature: runs on the thread-local default context.
template <typename W, typename Mask, typename Accum, typename Pred,
          typename U>
  requires VectorSelectOpFor<Pred, U>
void select(Vector<W>& w, const Mask& mask, const Accum& accum, Pred pred,
            const Vector<U>& u, const Descriptor& desc = default_desc) {
  select(default_context(), w, mask, accum, pred, u, desc);
}

/// Value-only predicate convenience: wraps pred(value) into pred(value, i).
template <typename W, typename Pred, typename U>
  requires UnaryOpFor<Pred, U> && (!VectorSelectOpFor<Pred, U>)
void select(Context& ctx, Vector<W>& w, Pred pred, const Vector<U>& u,
            const Descriptor& desc = default_desc) {
  select(
      ctx, w, NoMask{}, NoAccumulate{},
      [&pred](const U& x, Index) { return static_cast<bool>(pred(x)); }, u,
      desc);
}

template <typename W, typename Pred, typename U>
  requires UnaryOpFor<Pred, U> && (!VectorSelectOpFor<Pred, U>)
void select(Vector<W>& w, Pred pred, const Vector<U>& u,
            const Descriptor& desc = default_desc) {
  select(default_context(), w, pred, u, desc);
}

/// Index-aware unmasked convenience overloads.
template <typename W, typename Pred, typename U>
  requires VectorSelectOpFor<Pred, U>
void select(Context& ctx, Vector<W>& w, Pred pred, const Vector<U>& u,
            const Descriptor& desc = default_desc) {
  select(ctx, w, NoMask{}, NoAccumulate{}, pred, u, desc);
}

template <typename W, typename Pred, typename U>
  requires VectorSelectOpFor<Pred, U>
void select(Vector<W>& w, Pred pred, const Vector<U>& u,
            const Descriptor& desc = default_desc) {
  select(default_context(), w, NoMask{}, NoAccumulate{}, pred, u, desc);
}

/// C<Mask> accum= select(pred, A): keeps A's entries where
/// pred(value, row, col) holds.
template <typename C, typename Mask, typename Accum, typename Pred,
          typename A>
  requires MatrixSelectOpFor<Pred, A>
void select(Matrix<C>& c, const Mask& mask, const Accum& accum, Pred pred,
            const Matrix<A>& a, const Descriptor& desc = default_desc) {
  const Matrix<A>* pa = desc.transpose_in0 ? &a.transpose_cached() : &a;
  detail::check_size_match(c.nrows(), pa->nrows(), "select: C vs A rows");
  detail::check_size_match(c.ncols(), pa->ncols(), "select: C vs A cols");

  Matrix<A> z(pa->nrows(), pa->ncols());
  std::vector<Index> zptr(pa->nrows() + 1, 0);
  std::vector<Index> zind;
  std::vector<storage_of_t<A>> zval;
  for (Index r = 0; r < pa->nrows(); ++r) {
    auto cols = pa->row_indices(r);
    auto vals = pa->row_values(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (pred(static_cast<A>(vals[k]), r, cols[k])) {
        zind.push_back(cols[k]);
        zval.push_back(vals[k]);
      }
    }
    zptr[r + 1] = static_cast<Index>(zind.size());
  }
  z.adopt(std::move(zptr), std::move(zind), std::move(zval));
  detail::write_matrix_result(c, std::move(z), mask, accum, desc);
}

/// Value-only predicate convenience (matrix).
template <typename C, typename Pred, typename A>
  requires UnaryOpFor<Pred, A> && (!MatrixSelectOpFor<Pred, A>)
void select(Matrix<C>& c, Pred pred, const Matrix<A>& a,
            const Descriptor& desc = default_desc) {
  select(
      c, NoMask{}, NoAccumulate{},
      [&pred](const A& x, Index, Index) { return static_cast<bool>(pred(x)); },
      a, desc);
}

/// Index-aware unmasked convenience overload (matrix).
template <typename C, typename Pred, typename A>
  requires MatrixSelectOpFor<Pred, A>
void select(Matrix<C>& c, Pred pred, const Matrix<A>& a,
            const Descriptor& desc = default_desc) {
  select(c, NoMask{}, NoAccumulate{}, pred, a, desc);
}

// --- Predefined index-aware predicates (GxB_TRIL / GxB_TRIU / diag). --------

/// Keeps entries strictly below the diagonal shifted by k: col < row + k.
struct TriLower {
  std::int64_t k = 0;
  template <typename T>
  bool operator()(const T&, Index r, Index c) const {
    return static_cast<std::int64_t>(c) <= static_cast<std::int64_t>(r) + k;
  }
};

/// Keeps entries on/above the shifted diagonal: col >= row + k.
struct TriUpper {
  std::int64_t k = 0;
  template <typename T>
  bool operator()(const T&, Index r, Index c) const {
    return static_cast<std::int64_t>(c) >= static_cast<std::int64_t>(r) + k;
  }
};

/// Keeps off-diagonal entries (removes self-loops).
struct OffDiagonal {
  template <typename T>
  bool operator()(const T&, Index r, Index c) const {
    return r != c;
  }
};

}  // namespace grb
