// ewise.hpp — GrB_eWiseAdd and GrB_eWiseMult.
//
// eWiseAdd operates on the *union* of the input structures: where both
// operands are present the binary op combines them; where only one is
// present, that value passes through unchanged.  This pass-through is
// exactly the non-commutative-operator pitfall the paper analyses in
// Sec. V-B: computing the filter (tReq < t) with eWiseAdd(LT) returns t's
// value (truthy!) wherever tReq is absent, so the algorithm must apply tReq
// as a mask.  We implement the standard behaviour faithfully and unit-test
// the pitfall.
//
// eWiseMult operates on the *intersection*: output has entries only where
// both inputs do.
#pragma once

#include <algorithm>
#include <vector>

#include "graphblas/descriptor.hpp"
#include "graphblas/mask.hpp"
#include "graphblas/matrix.hpp"
#include "graphblas/operations/pointwise_parallel.hpp"
#include "graphblas/types.hpp"
#include "graphblas/vector.hpp"

namespace grb {

#if defined(DSG_HAVE_OPENMP)

namespace detail {

/// Chunk boundaries for a parallel two-stream merge: the index domain
/// [0, n) is cut evenly and each cut located in both entry streams.  Equal
/// indices land in the same chunk on both sides (cuts are by index value),
/// so union/intersection pairing is preserved chunk-locally and the
/// concatenated result is bit-identical to the serial merge.
struct MergeCuts {
  int chunks = 1;
  std::vector<std::size_t> ua, vb;  // chunks + 1 stream offsets each
};

template <typename USpan, typename VSpan>
MergeCuts merge_cuts(Index n, const USpan& ui, const VSpan& vi) {
  MergeCuts c;
  c.chunks = pointwise_chunks(ui.size() + vi.size());
  const auto nc = static_cast<std::size_t>(c.chunks);
  c.ua.resize(nc + 1);
  c.vb.resize(nc + 1);
  for (std::size_t t = 0; t <= nc; ++t) {
    const Index bound = static_cast<Index>(
        static_cast<std::size_t>(n) * t / nc);
    c.ua[t] = static_cast<std::size_t>(
        std::lower_bound(ui.begin(), ui.end(), bound) - ui.begin());
    c.vb[t] = static_cast<std::size_t>(
        std::lower_bound(vi.begin(), vi.end(), bound) - vi.begin());
  }
  return c;
}

}  // namespace detail

#endif  // DSG_HAVE_OPENMP

/// w<mask> accum= u (+op) v  — union (eWiseAdd) on vectors, using `ctx`'s
/// workspaces.  The mask probe is pushed down into the merge: positions the
/// mask makes non-writable are never combined or staged.
template <typename W, typename Mask, typename Accum, typename BinaryOp,
          typename U, typename V>
void ewise_add(Context& ctx, Vector<W>& w, const Mask& mask,
               const Accum& accum, BinaryOp op, const Vector<U>& u,
               const Vector<V>& v, const Descriptor& desc = default_desc) {
  detail::check_size_match(u.size(), v.size(), "ewise_add: u vs v");
  detail::check_size_match(w.size(), u.size(), "ewise_add: w vs u");

  using Z = std::common_type_t<decltype(op(std::declval<U>(), std::declval<V>())), U, V>;
  detail::with_vector_probe(mask, desc, w.size(), [&](const auto& probe) {
    Vector<Z> z(u.size());
    auto& zi = z.mutable_indices();
    auto& zv = z.mutable_values();
    zi.reserve(u.nvals() + v.nvals());
    zv.reserve(u.nvals() + v.nvals());

    auto ui = u.indices();
    auto uv = u.values();
    auto vi = v.indices();
    auto vv = v.values();
#if defined(DSG_HAVE_OPENMP)
    // Parallel two-pass union merge (bit-identical to serial; see
    // pointwise_parallel.hpp) once the inputs clear the Context threshold.
    if (ui.size() + vi.size() >=
            static_cast<std::size_t>(ctx.pointwise_parallel_threshold) &&
        omp_get_max_threads() > 1) {
      const auto cuts = detail::merge_cuts(u.size(), ui, vi);
      detail::parallel_chunked_compact(
          cuts.chunks,
          [&](int t) {
            std::size_t a = cuts.ua[static_cast<std::size_t>(t)];
            std::size_t b = cuts.vb[static_cast<std::size_t>(t)];
            const std::size_t a1 = cuts.ua[static_cast<std::size_t>(t) + 1];
            const std::size_t b1 = cuts.vb[static_cast<std::size_t>(t) + 1];
            std::size_t count = 0;
            while (a < a1 || b < b1) {
              if (a < a1 && (b >= b1 || ui[a] < vi[b])) {
                if (probe(ui[a])) ++count;
                ++a;
              } else if (b < b1 && (a >= a1 || vi[b] < ui[a])) {
                if (probe(vi[b])) ++count;
                ++b;
              } else {
                if (probe(ui[a])) ++count;
                ++a;
                ++b;
              }
            }
            return count;
          },
          [&](std::size_t total) {
            zi.resize(total);
            zv.resize(total);
          },
          [&](int t, std::size_t off) {
            std::size_t a = cuts.ua[static_cast<std::size_t>(t)];
            std::size_t b = cuts.vb[static_cast<std::size_t>(t)];
            const std::size_t a1 = cuts.ua[static_cast<std::size_t>(t) + 1];
            const std::size_t b1 = cuts.vb[static_cast<std::size_t>(t) + 1];
            while (a < a1 || b < b1) {
              if (a < a1 && (b >= b1 || ui[a] < vi[b])) {
                if (probe(ui[a])) {
                  zi[off] = ui[a];
                  zv[off] = static_cast<Z>(uv[a]);  // lone operand
                  ++off;
                }
                ++a;
              } else if (b < b1 && (a >= a1 || vi[b] < ui[a])) {
                if (probe(vi[b])) {
                  zi[off] = vi[b];
                  zv[off] = static_cast<Z>(vv[b]);
                  ++off;
                }
                ++b;
              } else {
                if (probe(ui[a])) {
                  zi[off] = ui[a];
                  zv[off] = static_cast<Z>(op(uv[a], vv[b]));
                  ++off;
                }
                ++a;
                ++b;
              }
            }
          });
      detail::masked_write_vector(ctx, w, std::move(z), probe, accum,
                                  desc.replace,
                                  /*z_prefiltered=*/true);
      return;
    }
#endif  // DSG_HAVE_OPENMP
    std::size_t a = 0, b = 0;
    while (a < ui.size() || b < vi.size()) {
      if (a < ui.size() && (b >= vi.size() || ui[a] < vi[b])) {
        if (probe(ui[a])) {
          zi.push_back(ui[a]);
          zv.push_back(static_cast<Z>(uv[a]));  // lone operand passes through
        }
        ++a;
      } else if (b < vi.size() && (a >= ui.size() || vi[b] < ui[a])) {
        if (probe(vi[b])) {
          zi.push_back(vi[b]);
          zv.push_back(static_cast<Z>(vv[b]));
        }
        ++b;
      } else {
        if (probe(ui[a])) {
          zi.push_back(ui[a]);
          zv.push_back(static_cast<Z>(op(uv[a], vv[b])));
        }
        ++a;
        ++b;
      }
    }
    detail::masked_write_vector(ctx, w, std::move(z), probe, accum,
                                desc.replace,
                                /*z_prefiltered=*/true);
  });
}

/// Legacy signature: runs on the thread-local default context.
template <typename W, typename Mask, typename Accum, typename BinaryOp,
          typename U, typename V>
void ewise_add(Vector<W>& w, const Mask& mask, const Accum& accum,
               BinaryOp op, const Vector<U>& u, const Vector<V>& v,
               const Descriptor& desc = default_desc) {
  ewise_add(default_context(), w, mask, accum, op, u, v, desc);
}

/// Unmasked, non-accumulating convenience overloads.
template <typename W, typename BinaryOp, typename U, typename V>
void ewise_add(Context& ctx, Vector<W>& w, BinaryOp op, const Vector<U>& u,
               const Vector<V>& v, const Descriptor& desc = default_desc) {
  ewise_add(ctx, w, NoMask{}, NoAccumulate{}, op, u, v, desc);
}

template <typename W, typename BinaryOp, typename U, typename V>
void ewise_add(Vector<W>& w, BinaryOp op, const Vector<U>& u,
               const Vector<V>& v, const Descriptor& desc = default_desc) {
  ewise_add(default_context(), w, NoMask{}, NoAccumulate{}, op, u, v, desc);
}

/// w<mask> accum= u (.op) v  — intersection (eWiseMult) on vectors, using
/// `ctx`'s workspaces, with the mask pushed down into the merge.
template <typename W, typename Mask, typename Accum, typename BinaryOp,
          typename U, typename V>
void ewise_mult(Context& ctx, Vector<W>& w, const Mask& mask,
                const Accum& accum, BinaryOp op, const Vector<U>& u,
                const Vector<V>& v, const Descriptor& desc = default_desc) {
  detail::check_size_match(u.size(), v.size(), "ewise_mult: u vs v");
  detail::check_size_match(w.size(), u.size(), "ewise_mult: w vs u");

  using Z = decltype(op(std::declval<U>(), std::declval<V>()));
  detail::with_vector_probe(mask, desc, w.size(), [&](const auto& probe) {
    Vector<Z> z(u.size());
    auto& zi = z.mutable_indices();
    auto& zv = z.mutable_values();

    auto ui = u.indices();
    auto uv = u.values();
    auto vi = v.indices();
    auto vv = v.values();
#if defined(DSG_HAVE_OPENMP)
    // Parallel two-pass intersection merge (bit-identical to serial).
    if (ui.size() + vi.size() >=
            static_cast<std::size_t>(ctx.pointwise_parallel_threshold) &&
        omp_get_max_threads() > 1) {
      const auto cuts = detail::merge_cuts(u.size(), ui, vi);
      detail::parallel_chunked_compact(
          cuts.chunks,
          [&](int t) {
            std::size_t a = cuts.ua[static_cast<std::size_t>(t)];
            std::size_t b = cuts.vb[static_cast<std::size_t>(t)];
            const std::size_t a1 = cuts.ua[static_cast<std::size_t>(t) + 1];
            const std::size_t b1 = cuts.vb[static_cast<std::size_t>(t) + 1];
            std::size_t count = 0;
            while (a < a1 && b < b1) {
              if (ui[a] < vi[b]) {
                ++a;
              } else if (vi[b] < ui[a]) {
                ++b;
              } else {
                if (probe(ui[a])) ++count;
                ++a;
                ++b;
              }
            }
            return count;
          },
          [&](std::size_t total) {
            zi.resize(total);
            zv.resize(total);
          },
          [&](int t, std::size_t off) {
            std::size_t a = cuts.ua[static_cast<std::size_t>(t)];
            std::size_t b = cuts.vb[static_cast<std::size_t>(t)];
            const std::size_t a1 = cuts.ua[static_cast<std::size_t>(t) + 1];
            const std::size_t b1 = cuts.vb[static_cast<std::size_t>(t) + 1];
            while (a < a1 && b < b1) {
              if (ui[a] < vi[b]) {
                ++a;
              } else if (vi[b] < ui[a]) {
                ++b;
              } else {
                if (probe(ui[a])) {
                  zi[off] = ui[a];
                  zv[off] = op(uv[a], vv[b]);
                  ++off;
                }
                ++a;
                ++b;
              }
            }
          });
      detail::masked_write_vector(ctx, w, std::move(z), probe, accum,
                                  desc.replace,
                                  /*z_prefiltered=*/true);
      return;
    }
#endif  // DSG_HAVE_OPENMP
    std::size_t a = 0, b = 0;
    while (a < ui.size() && b < vi.size()) {
      if (ui[a] < vi[b]) {
        ++a;
      } else if (vi[b] < ui[a]) {
        ++b;
      } else {
        if (probe(ui[a])) {
          zi.push_back(ui[a]);
          zv.push_back(op(uv[a], vv[b]));
        }
        ++a;
        ++b;
      }
    }
    detail::masked_write_vector(ctx, w, std::move(z), probe, accum,
                                desc.replace,
                                /*z_prefiltered=*/true);
  });
}

/// Legacy signature: runs on the thread-local default context.
template <typename W, typename Mask, typename Accum, typename BinaryOp,
          typename U, typename V>
void ewise_mult(Vector<W>& w, const Mask& mask, const Accum& accum,
                BinaryOp op, const Vector<U>& u, const Vector<V>& v,
                const Descriptor& desc = default_desc) {
  ewise_mult(default_context(), w, mask, accum, op, u, v, desc);
}

/// Unmasked, non-accumulating convenience overloads.
template <typename W, typename BinaryOp, typename U, typename V>
void ewise_mult(Context& ctx, Vector<W>& w, BinaryOp op, const Vector<U>& u,
                const Vector<V>& v, const Descriptor& desc = default_desc) {
  ewise_mult(ctx, w, NoMask{}, NoAccumulate{}, op, u, v, desc);
}

template <typename W, typename BinaryOp, typename U, typename V>
void ewise_mult(Vector<W>& w, BinaryOp op, const Vector<U>& u,
                const Vector<V>& v, const Descriptor& desc = default_desc) {
  ewise_mult(default_context(), w, NoMask{}, NoAccumulate{}, op, u, v, desc);
}

// ---------------------------------------------------------------------------
// Matrix variants.
// ---------------------------------------------------------------------------

namespace detail {

/// Row-wise union/intersection merge shared by the matrix eWise kernels.
template <bool kUnion, typename Z, typename BinaryOp, typename A, typename B>
Matrix<Z> ewise_matrix_kernel(BinaryOp op, const Matrix<A>& a,
                              const Matrix<B>& b) {
  Matrix<Z> z(a.nrows(), a.ncols());
  std::vector<Index> zptr(a.nrows() + 1, 0);
  std::vector<Index> zind;
  std::vector<storage_of_t<Z>> zval;
  zind.reserve(kUnion ? a.nvals() + b.nvals()
                      : std::min(a.nvals(), b.nvals()));
  zval.reserve(zind.capacity());

  for (Index r = 0; r < a.nrows(); ++r) {
    auto ai = a.row_indices(r);
    auto av = a.row_values(r);
    auto bi = b.row_indices(r);
    auto bv = b.row_values(r);
    std::size_t x = 0, y = 0;
    while (x < ai.size() || y < bi.size()) {
      if (x < ai.size() && (y >= bi.size() || ai[x] < bi[y])) {
        if constexpr (kUnion) {
          zind.push_back(ai[x]);
          zval.push_back(static_cast<Z>(av[x]));
        }
        ++x;
      } else if (y < bi.size() && (x >= ai.size() || bi[y] < ai[x])) {
        if constexpr (kUnion) {
          zind.push_back(bi[y]);
          zval.push_back(static_cast<Z>(bv[y]));
        }
        ++y;
      } else {
        zind.push_back(ai[x]);
        zval.push_back(static_cast<Z>(op(av[x], bv[y])));
        ++x;
        ++y;
      }
    }
    zptr[r + 1] = static_cast<Index>(zind.size());
  }
  z.adopt(std::move(zptr), std::move(zind), std::move(zval));
  return z;
}

}  // namespace detail

/// C<Mask> accum= A (+op) B — union (eWiseAdd) on matrices.
template <typename C, typename Mask, typename Accum, typename BinaryOp,
          typename A, typename B>
void ewise_add(Matrix<C>& c, const Mask& mask, const Accum& accum,
               BinaryOp op, const Matrix<A>& a, const Matrix<B>& b,
               const Descriptor& desc = default_desc) {
  const Matrix<A>* pa = desc.transpose_in0 ? &a.transpose_cached() : &a;
  const Matrix<B>* pb = desc.transpose_in1 ? &b.transpose_cached() : &b;
  detail::check_size_match(pa->nrows(), pb->nrows(), "ewise_add: A vs B rows");
  detail::check_size_match(pa->ncols(), pb->ncols(), "ewise_add: A vs B cols");
  detail::check_size_match(c.nrows(), pa->nrows(), "ewise_add: C vs A rows");
  detail::check_size_match(c.ncols(), pa->ncols(), "ewise_add: C vs A cols");

  using Z = std::common_type_t<decltype(op(std::declval<A>(), std::declval<B>())), A, B>;
  auto z = detail::ewise_matrix_kernel<true, Z>(op, *pa, *pb);
  detail::write_matrix_result(c, std::move(z), mask, accum, desc);
}

/// Unmasked convenience overload (matrix eWiseAdd).
template <typename C, typename BinaryOp, typename A, typename B>
void ewise_add(Matrix<C>& c, BinaryOp op, const Matrix<A>& a,
               const Matrix<B>& b, const Descriptor& desc = default_desc) {
  ewise_add(c, NoMask{}, NoAccumulate{}, op, a, b, desc);
}

/// C<Mask> accum= A (.op) B — intersection (eWiseMult) on matrices.
/// This is the Hadamard product used by A_L = A ∘ (0 < A ≤ Δ).
template <typename C, typename Mask, typename Accum, typename BinaryOp,
          typename A, typename B>
void ewise_mult(Matrix<C>& c, const Mask& mask, const Accum& accum,
                BinaryOp op, const Matrix<A>& a, const Matrix<B>& b,
                const Descriptor& desc = default_desc) {
  const Matrix<A>* pa = desc.transpose_in0 ? &a.transpose_cached() : &a;
  const Matrix<B>* pb = desc.transpose_in1 ? &b.transpose_cached() : &b;
  detail::check_size_match(pa->nrows(), pb->nrows(), "ewise_mult: A vs B rows");
  detail::check_size_match(pa->ncols(), pb->ncols(), "ewise_mult: A vs B cols");
  detail::check_size_match(c.nrows(), pa->nrows(), "ewise_mult: C vs A rows");
  detail::check_size_match(c.ncols(), pa->ncols(), "ewise_mult: C vs A cols");

  using Z = decltype(op(std::declval<A>(), std::declval<B>()));
  auto z = detail::ewise_matrix_kernel<false, Z>(op, *pa, *pb);
  detail::write_matrix_result(c, std::move(z), mask, accum, desc);
}

/// Unmasked convenience overload (matrix eWiseMult).
template <typename C, typename BinaryOp, typename A, typename B>
void ewise_mult(Matrix<C>& c, BinaryOp op, const Matrix<A>& a,
                const Matrix<B>& b, const Descriptor& desc = default_desc) {
  ewise_mult(c, NoMask{}, NoAccumulate{}, op, a, b, desc);
}

}  // namespace grb
