// ewise.hpp — GrB_eWiseAdd and GrB_eWiseMult.
//
// eWiseAdd operates on the *union* of the input structures: where both
// operands are present the binary op combines them; where only one is
// present, that value passes through unchanged.  This pass-through is
// exactly the non-commutative-operator pitfall the paper analyses in
// Sec. V-B: computing the filter (tReq < t) with eWiseAdd(LT) returns t's
// value (truthy!) wherever tReq is absent, so the algorithm must apply tReq
// as a mask.  We implement the standard behaviour faithfully and unit-test
// the pitfall.
//
// eWiseMult operates on the *intersection*: output has entries only where
// both inputs do.
#pragma once

#include <algorithm>
#include <bit>
#include <span>
#include <vector>

#include "graphblas/bitmap.hpp"
#include "graphblas/descriptor.hpp"
#include "graphblas/mask.hpp"
#include "graphblas/matrix.hpp"
#include "graphblas/operations/pointwise_parallel.hpp"
#include "graphblas/types.hpp"
#include "graphblas/vector.hpp"

namespace grb {

#if defined(DSG_HAVE_OPENMP)

namespace detail {

/// Chunk boundaries for a parallel two-stream merge: the index domain
/// [0, n) is cut evenly and each cut located in both entry streams.  Equal
/// indices land in the same chunk on both sides (cuts are by index value),
/// so union/intersection pairing is preserved chunk-locally and the
/// concatenated result is bit-identical to the serial merge.
struct MergeCuts {
  int chunks = 1;
  std::vector<std::size_t> ua, vb;  // chunks + 1 stream offsets each
};

template <typename USpan, typename VSpan>
MergeCuts merge_cuts(Index n, const USpan& ui, const VSpan& vi) {
  MergeCuts c;
  c.chunks = pointwise_chunks(ui.size() + vi.size());
  const auto nc = static_cast<std::size_t>(c.chunks);
  c.ua.resize(nc + 1);
  c.vb.resize(nc + 1);
  for (std::size_t t = 0; t <= nc; ++t) {
    const Index bound = static_cast<Index>(
        static_cast<std::size_t>(n) * t / nc);
    c.ua[t] = static_cast<std::size_t>(
        std::lower_bound(ui.begin(), ui.end(), bound) - ui.begin());
    c.vb[t] = static_cast<std::size_t>(
        std::lower_bound(vi.begin(), vi.end(), bound) - vi.begin());
  }
  return c;
}

}  // namespace detail

#endif  // DSG_HAVE_OPENMP

namespace detail {

/// In-place dense union: w aliases u, u is dense, every position writable,
/// no accumulator.  Then `w = u ⊕ v` collapses to scattering v's entries
/// into w's word-packed dense arrays — O(nnz(v)) instead of an
/// O(nnz(u) + nnz(v)) sorted merge.  This is the delta-stepping relaxation
/// `t = min(t, tReq)` once t has gone dense: cost proportional to the
/// request vector, not to the distance vector.
template <typename W, typename BinaryOp, typename V>
void ewise_add_dense_inplace(Vector<W>& w, BinaryOp op, const Vector<V>& v) {
  auto& bit = w.mutable_dense_bitmap();
  auto& val = w.mutable_dense_values();
  Index nnz = w.nvals();
  v.for_each([&](Index i, const V& x) {
    if (bitmap_test(bit.data(), i)) {
      val[i] = static_cast<storage_of_t<W>>(op(static_cast<W>(val[i]), x));
    } else {
      bitmap_set(bit.data(), i);
      val[i] = static_cast<storage_of_t<W>>(static_cast<W>(x));
      ++nnz;
    }
  });
  w.set_dense_nvals(nnz);
}

/// Dense union kernel: at least one operand is in the dense representation.
/// One pass over the bitmap words with the mask pushed down 64 lanes at a
/// time; a sparse operand's presence word is assembled from its sorted
/// entries as the cursor crosses each word, so words where neither side
/// stores anything cost two loads.  Fills `stage` and returns the stored
/// count.
///
/// Both the both-dense and the mixed dense/sparse shapes parallelize over
/// contiguous *word* ranges — each chunk rebinds its sparse cursors with
/// one binary search, and every output word has exactly one writer — so
/// the result is bit-identical to serial for any thread count.
template <typename Z, typename Probe, typename BinaryOp, typename U,
          typename V>
Index ewise_add_dense_kernel(Context& ctx, DenseKernelStage<Z>& stage,
                             const Probe& probe, BinaryOp op,
                             const Vector<U>& u, const Vector<V>& v) {
  const Index n = u.size();
  if constexpr (std::is_same_v<Probe, AlwaysFalseProbe>) {
    (void)ctx;
    (void)op;
    (void)n;
    return 0;
  } else {
    const bool ud = u.is_dense();
    const bool vd = v.is_dense();
    auto ub = ud ? u.dense_bitmap() : std::span<const BitmapWord>{};
    auto udv = ud ? u.dense_values()
                  : std::span<const storage_of_t<U>>{};
    auto ui = ud ? std::span<const Index>{} : u.indices();
    auto usv = ud ? std::span<const storage_of_t<U>>{} : u.values();
    auto vb = vd ? v.dense_bitmap() : std::span<const BitmapWord>{};
    auto vdv = vd ? v.dense_values()
                  : std::span<const storage_of_t<V>>{};
    auto vi = vd ? std::span<const Index>{} : v.indices();
    auto vsv = vd ? std::span<const storage_of_t<V>>{} : v.values();
    const std::size_t nwords = bitmap_words(n);

    // Merges words [w0, w1) with the sparse-side cursors positioned at the
    // first entry >= w0 * 64; returns the stored count of the range.
    auto range_kernel = [&](std::size_t w0, std::size_t w1, std::size_t a,
                            std::size_t b) -> Index {
      Index nnz = 0;
      for (std::size_t wd = w0; wd < w1; ++wd) {
        const Index base = static_cast<Index>(wd) * kBitmapWordBits;
        const Index bound = base + kBitmapWordBits;
        BitmapWord uwp;
        const std::size_t a0 = a;
        if (ud) {
          uwp = ub[wd];
        } else {
          uwp = 0;
          while (a < ui.size() && ui[a] < bound) {
            uwp |= BitmapWord{1} << (ui[a] & 63);
            ++a;
          }
        }
        BitmapWord vwp;
        const std::size_t b0 = b;
        if (vd) {
          vwp = vb[wd];
        } else {
          vwp = 0;
          while (b < vi.size() && vi[b] < bound) {
            vwp |= BitmapWord{1} << (vi[b] & 63);
            ++b;
          }
        }
        const BitmapWord cand = uwp | vwp;
        if (cand == 0) continue;  // whole-word skip of empty regions
        const BitmapWord m = cand & probe_writable_word(probe, wd, cand);
        if (m == 0) continue;
        stage.bit[wd] = m;
        nnz += static_cast<Index>(std::popcount(m));
        // Values, ascending within the word; sparse sides ride local
        // cursors over their [·0, ·) entry ranges.
        std::size_t ka = a0, kb = b0;
        BitmapWord rest = m;
        while (rest != 0) {
          const Index i =
              base + static_cast<Index>(std::countr_zero(rest));
          rest &= rest - 1;
          const BitmapWord lane = BitmapWord{1} << (i & 63);
          const bool iu = (uwp & lane) != 0;
          const bool iv = (vwp & lane) != 0;
          storage_of_t<U> ux{};
          storage_of_t<V> vx{};
          if (iu) {
            if (ud) {
              ux = udv[i];
            } else {
              while (ui[ka] < i) ++ka;
              ux = usv[ka];
            }
          }
          if (iv) {
            if (vd) {
              vx = vdv[i];
            } else {
              while (vi[kb] < i) ++kb;
              vx = vsv[kb];
            }
          }
          stage.val[i] =
              iu && iv
                  ? static_cast<storage_of_t<Z>>(static_cast<Z>(op(ux, vx)))
                  : iu ? static_cast<storage_of_t<Z>>(static_cast<Z>(ux))
                       : static_cast<storage_of_t<Z>>(static_cast<Z>(vx));
        }
      }
      return nnz;
    };

#if defined(DSG_HAVE_OPENMP)
    if (n >= ctx.pointwise_parallel_threshold && omp_get_max_threads() > 1) {
      const int chunks = pointwise_chunks(static_cast<std::size_t>(n));
      std::int64_t total = 0;
#pragma omp parallel for schedule(static, 1) reduction(+ : total)
      for (int t = 0; t < chunks; ++t) {
        const auto [w0, w1] = chunk_range(nwords, t, chunks);
        const Index lo = static_cast<Index>(w0) * kBitmapWordBits;
        const std::size_t a =
            ud ? 0
               : static_cast<std::size_t>(
                     std::lower_bound(ui.begin(), ui.end(), lo) - ui.begin());
        const std::size_t b =
            vd ? 0
               : static_cast<std::size_t>(
                     std::lower_bound(vi.begin(), vi.end(), lo) - vi.begin());
        total += static_cast<std::int64_t>(range_kernel(w0, w1, a, b));
      }
      return static_cast<Index>(total);
    }
#endif  // DSG_HAVE_OPENMP
    return range_kernel(0, nwords, 0, 0);
  }
}

}  // namespace detail

/// w<mask> accum= u (+op) v  — union (eWiseAdd) on vectors, using `ctx`'s
/// workspaces.  The mask probe is pushed down into the merge: positions the
/// mask makes non-writable are never combined or staged.  Dense-
/// representation operands take positional bitmap kernels; when w aliases u
/// and u is dense (the relaxation `t = min(t, tReq)`), the update happens
/// in place at O(nnz(v)).  Results are bit-identical across
/// representations.
template <typename W, typename Mask, typename Accum, typename BinaryOp,
          typename U, typename V>
void ewise_add(Context& ctx, Vector<W>& w, const Mask& mask,
               const Accum& accum, BinaryOp op, const Vector<U>& u,
               const Vector<V>& v, const Descriptor& desc = default_desc) {
  detail::check_size_match(u.size(), v.size(), "ewise_add: u vs v");
  detail::check_size_match(w.size(), u.size(), "ewise_add: w vs u");

  using Z = std::common_type_t<decltype(op(std::declval<U>(), std::declval<V>())), U, V>;
  detail::with_vector_probe(mask, desc, w.size(), [&](const auto& probe) {
    if constexpr (std::is_same_v<W, U> && std::is_same_v<Z, W> &&
                  std::is_same_v<std::decay_t<decltype(probe)>,
                                 detail::AlwaysTrueProbe> &&
                  detail::is_no_accum_v<Accum>) {
      // w := u ⊕ v with w aliasing a dense u: scatter v in place, O(nnz(v)).
      if (static_cast<const void*>(&w) == static_cast<const void*>(&u) &&
          w.is_dense()) {
        detail::ewise_add_dense_inplace(w, op, v);
        ++ctx.dense_writes;  // w stays dense: count it like a dense write
        return;
      }
    }
    if (u.is_dense() || v.is_dense()) {
      auto& stage = ctx.get<detail::DenseKernelStage<Z>>();
      stage.reset(u.size());
      const Index nnz =
          detail::ewise_add_dense_kernel(ctx, stage, probe, op, u, v);
      detail::masked_write_vector_dense(ctx, w, stage, nnz, probe, accum,
                                        desc.replace, /*z_prefiltered=*/true);
      return;
    }
    Vector<Z> z(u.size());
    auto& zi = z.mutable_indices();
    auto& zv = z.mutable_values();
    zi.reserve(u.nvals() + v.nvals());
    zv.reserve(u.nvals() + v.nvals());

    auto ui = u.indices();
    auto uv = u.values();
    auto vi = v.indices();
    auto vv = v.values();
#if defined(DSG_HAVE_OPENMP)
    // Parallel two-pass union merge (bit-identical to serial; see
    // pointwise_parallel.hpp) once the inputs clear the Context threshold.
    if (ui.size() + vi.size() >=
            static_cast<std::size_t>(ctx.pointwise_parallel_threshold) &&
        omp_get_max_threads() > 1) {
      const auto cuts = detail::merge_cuts(u.size(), ui, vi);
      detail::parallel_chunked_compact(
          cuts.chunks,
          [&](int t) {
            std::size_t a = cuts.ua[static_cast<std::size_t>(t)];
            std::size_t b = cuts.vb[static_cast<std::size_t>(t)];
            const std::size_t a1 = cuts.ua[static_cast<std::size_t>(t) + 1];
            const std::size_t b1 = cuts.vb[static_cast<std::size_t>(t) + 1];
            std::size_t count = 0;
            while (a < a1 || b < b1) {
              if (a < a1 && (b >= b1 || ui[a] < vi[b])) {
                if (probe(ui[a])) ++count;
                ++a;
              } else if (b < b1 && (a >= a1 || vi[b] < ui[a])) {
                if (probe(vi[b])) ++count;
                ++b;
              } else {
                if (probe(ui[a])) ++count;
                ++a;
                ++b;
              }
            }
            return count;
          },
          [&](std::size_t total) {
            zi.resize(total);
            zv.resize(total);
          },
          [&](int t, std::size_t off) {
            std::size_t a = cuts.ua[static_cast<std::size_t>(t)];
            std::size_t b = cuts.vb[static_cast<std::size_t>(t)];
            const std::size_t a1 = cuts.ua[static_cast<std::size_t>(t) + 1];
            const std::size_t b1 = cuts.vb[static_cast<std::size_t>(t) + 1];
            while (a < a1 || b < b1) {
              if (a < a1 && (b >= b1 || ui[a] < vi[b])) {
                if (probe(ui[a])) {
                  zi[off] = ui[a];
                  zv[off] = static_cast<Z>(uv[a]);  // lone operand
                  ++off;
                }
                ++a;
              } else if (b < b1 && (a >= a1 || vi[b] < ui[a])) {
                if (probe(vi[b])) {
                  zi[off] = vi[b];
                  zv[off] = static_cast<Z>(vv[b]);
                  ++off;
                }
                ++b;
              } else {
                if (probe(ui[a])) {
                  zi[off] = ui[a];
                  zv[off] = static_cast<Z>(op(uv[a], vv[b]));
                  ++off;
                }
                ++a;
                ++b;
              }
            }
          });
      detail::masked_write_vector(ctx, w, std::move(z), probe, accum,
                                  desc.replace,
                                  /*z_prefiltered=*/true);
      return;
    }
#endif  // DSG_HAVE_OPENMP
    std::size_t a = 0, b = 0;
    while (a < ui.size() || b < vi.size()) {
      if (a < ui.size() && (b >= vi.size() || ui[a] < vi[b])) {
        if (probe(ui[a])) {
          zi.push_back(ui[a]);
          zv.push_back(static_cast<Z>(uv[a]));  // lone operand passes through
        }
        ++a;
      } else if (b < vi.size() && (a >= ui.size() || vi[b] < ui[a])) {
        if (probe(vi[b])) {
          zi.push_back(vi[b]);
          zv.push_back(static_cast<Z>(vv[b]));
        }
        ++b;
      } else {
        if (probe(ui[a])) {
          zi.push_back(ui[a]);
          zv.push_back(static_cast<Z>(op(uv[a], vv[b])));
        }
        ++a;
        ++b;
      }
    }
    detail::masked_write_vector(ctx, w, std::move(z), probe, accum,
                                desc.replace,
                                /*z_prefiltered=*/true);
  });
}

/// Legacy signature: runs on the thread-local default context.
template <typename W, typename Mask, typename Accum, typename BinaryOp,
          typename U, typename V>
void ewise_add(Vector<W>& w, const Mask& mask, const Accum& accum,
               BinaryOp op, const Vector<U>& u, const Vector<V>& v,
               const Descriptor& desc = default_desc) {
  ewise_add(default_context(), w, mask, accum, op, u, v, desc);
}

/// Unmasked, non-accumulating convenience overloads.
template <typename W, typename BinaryOp, typename U, typename V>
void ewise_add(Context& ctx, Vector<W>& w, BinaryOp op, const Vector<U>& u,
               const Vector<V>& v, const Descriptor& desc = default_desc) {
  ewise_add(ctx, w, NoMask{}, NoAccumulate{}, op, u, v, desc);
}

template <typename W, typename BinaryOp, typename U, typename V>
void ewise_add(Vector<W>& w, BinaryOp op, const Vector<U>& u,
               const Vector<V>& v, const Descriptor& desc = default_desc) {
  ewise_add(default_context(), w, NoMask{}, NoAccumulate{}, op, u, v, desc);
}

namespace detail {

/// Both-dense intersection kernel: one whole-word bitmap AND per 64
/// positions into `stage`, op run only at surviving bits (ctz iteration).
/// Parallelizes over contiguous word ranges (one writer per word),
/// bit-identical to serial.
template <typename Z, typename Probe, typename BinaryOp, typename U,
          typename V>
Index ewise_mult_dense_kernel(Context& ctx, DenseKernelStage<Z>& stage,
                              const Probe& probe, BinaryOp op,
                              const Vector<U>& u, const Vector<V>& v) {
  const Index n = u.size();
  Index nnz = 0;
  if constexpr (std::is_same_v<Probe, AlwaysFalseProbe>) {
    (void)ctx;
    (void)op;
    (void)n;
    return 0;
  } else {
    auto ub = u.dense_bitmap();
    auto uv = u.dense_values();
    auto vb = v.dense_bitmap();
    auto vv = v.dense_values();
    const std::size_t nwords = ub.size();
    auto word_kernel = [&](std::size_t wd) -> Index {
      const BitmapWord cand = ub[wd] & vb[wd];  // bulk word AND
      if (cand == 0) return 0;
      const BitmapWord m = cand & probe_writable_word(probe, wd, cand);
      if (m == 0) return 0;
      stage.bit[wd] = m;
      bitmap_for_each_in_word(
          m, static_cast<Index>(wd) * kBitmapWordBits,
          [&](Index i) { stage.val[i] = op(uv[i], vv[i]); });
      return static_cast<Index>(std::popcount(m));
    };
#if defined(DSG_HAVE_OPENMP)
    if (n >= ctx.pointwise_parallel_threshold && omp_get_max_threads() > 1) {
      std::int64_t count = 0;
#pragma omp parallel for schedule(static) reduction(+ : count)
      for (std::ptrdiff_t pw = 0; pw < static_cast<std::ptrdiff_t>(nwords);
           ++pw) {
        count += static_cast<std::int64_t>(
            word_kernel(static_cast<std::size_t>(pw)));
      }
      return static_cast<Index>(count);
    }
#endif  // DSG_HAVE_OPENMP
    for (std::size_t wd = 0; wd < nwords; ++wd) nnz += word_kernel(wd);
    return nnz;
  }
}

}  // namespace detail

/// w<mask> accum= u (.op) v  — intersection (eWiseMult) on vectors, using
/// `ctx`'s workspaces, with the mask pushed down into the merge.  Both
/// operands dense: positional bitmap-AND kernel.  Exactly one dense: the
/// sparse side is walked and the dense side probed O(1) per entry, so the
/// intersection costs O(nnz(sparse side)) — no merge over the dense
/// operand at all.  Results are bit-identical across representations.
template <typename W, typename Mask, typename Accum, typename BinaryOp,
          typename U, typename V>
void ewise_mult(Context& ctx, Vector<W>& w, const Mask& mask,
                const Accum& accum, BinaryOp op, const Vector<U>& u,
                const Vector<V>& v, const Descriptor& desc = default_desc) {
  detail::check_size_match(u.size(), v.size(), "ewise_mult: u vs v");
  detail::check_size_match(w.size(), u.size(), "ewise_mult: w vs u");

  using Z = decltype(op(std::declval<U>(), std::declval<V>()));
  detail::with_vector_probe(mask, desc, w.size(), [&](const auto& probe) {
    if (u.is_dense() && v.is_dense()) {
      auto& stage = ctx.get<detail::DenseKernelStage<Z>>();
      stage.reset(u.size());
      const Index nnz =
          detail::ewise_mult_dense_kernel(ctx, stage, probe, op, u, v);
      detail::masked_write_vector_dense(ctx, w, stage, nnz, probe, accum,
                                        desc.replace, /*z_prefiltered=*/true);
      return;
    }
    if (u.is_dense() != v.is_dense()) {
      // Walk the sparse side, probe the dense side's bitmap.
      Vector<Z> z(u.size());
      auto& zi = z.mutable_indices();
      auto& zv = z.mutable_values();
      if (u.is_dense()) {
        auto ub = u.dense_bitmap();
        auto uv = u.dense_values();
        auto vi = v.indices();
        auto vv = v.values();
        for (std::size_t k = 0; k < vi.size(); ++k) {
          const Index i = vi[k];
          if (detail::bitmap_test(ub.data(), i) && probe(i)) {
            zi.push_back(i);
            zv.push_back(op(uv[i], vv[k]));
          }
        }
      } else {
        auto vb = v.dense_bitmap();
        auto vv = v.dense_values();
        auto ui = u.indices();
        auto uv = u.values();
        for (std::size_t k = 0; k < ui.size(); ++k) {
          const Index i = ui[k];
          if (detail::bitmap_test(vb.data(), i) && probe(i)) {
            zi.push_back(i);
            zv.push_back(op(uv[k], vv[i]));
          }
        }
      }
      detail::masked_write_vector(ctx, w, std::move(z), probe, accum,
                                  desc.replace,
                                  /*z_prefiltered=*/true);
      return;
    }
    Vector<Z> z(u.size());
    auto& zi = z.mutable_indices();
    auto& zv = z.mutable_values();

    auto ui = u.indices();
    auto uv = u.values();
    auto vi = v.indices();
    auto vv = v.values();
#if defined(DSG_HAVE_OPENMP)
    // Parallel two-pass intersection merge (bit-identical to serial).
    if (ui.size() + vi.size() >=
            static_cast<std::size_t>(ctx.pointwise_parallel_threshold) &&
        omp_get_max_threads() > 1) {
      const auto cuts = detail::merge_cuts(u.size(), ui, vi);
      detail::parallel_chunked_compact(
          cuts.chunks,
          [&](int t) {
            std::size_t a = cuts.ua[static_cast<std::size_t>(t)];
            std::size_t b = cuts.vb[static_cast<std::size_t>(t)];
            const std::size_t a1 = cuts.ua[static_cast<std::size_t>(t) + 1];
            const std::size_t b1 = cuts.vb[static_cast<std::size_t>(t) + 1];
            std::size_t count = 0;
            while (a < a1 && b < b1) {
              if (ui[a] < vi[b]) {
                ++a;
              } else if (vi[b] < ui[a]) {
                ++b;
              } else {
                if (probe(ui[a])) ++count;
                ++a;
                ++b;
              }
            }
            return count;
          },
          [&](std::size_t total) {
            zi.resize(total);
            zv.resize(total);
          },
          [&](int t, std::size_t off) {
            std::size_t a = cuts.ua[static_cast<std::size_t>(t)];
            std::size_t b = cuts.vb[static_cast<std::size_t>(t)];
            const std::size_t a1 = cuts.ua[static_cast<std::size_t>(t) + 1];
            const std::size_t b1 = cuts.vb[static_cast<std::size_t>(t) + 1];
            while (a < a1 && b < b1) {
              if (ui[a] < vi[b]) {
                ++a;
              } else if (vi[b] < ui[a]) {
                ++b;
              } else {
                if (probe(ui[a])) {
                  zi[off] = ui[a];
                  zv[off] = op(uv[a], vv[b]);
                  ++off;
                }
                ++a;
                ++b;
              }
            }
          });
      detail::masked_write_vector(ctx, w, std::move(z), probe, accum,
                                  desc.replace,
                                  /*z_prefiltered=*/true);
      return;
    }
#endif  // DSG_HAVE_OPENMP
    std::size_t a = 0, b = 0;
    while (a < ui.size() && b < vi.size()) {
      if (ui[a] < vi[b]) {
        ++a;
      } else if (vi[b] < ui[a]) {
        ++b;
      } else {
        if (probe(ui[a])) {
          zi.push_back(ui[a]);
          zv.push_back(op(uv[a], vv[b]));
        }
        ++a;
        ++b;
      }
    }
    detail::masked_write_vector(ctx, w, std::move(z), probe, accum,
                                desc.replace,
                                /*z_prefiltered=*/true);
  });
}

/// Legacy signature: runs on the thread-local default context.
template <typename W, typename Mask, typename Accum, typename BinaryOp,
          typename U, typename V>
void ewise_mult(Vector<W>& w, const Mask& mask, const Accum& accum,
                BinaryOp op, const Vector<U>& u, const Vector<V>& v,
                const Descriptor& desc = default_desc) {
  ewise_mult(default_context(), w, mask, accum, op, u, v, desc);
}

/// Unmasked, non-accumulating convenience overloads.
template <typename W, typename BinaryOp, typename U, typename V>
void ewise_mult(Context& ctx, Vector<W>& w, BinaryOp op, const Vector<U>& u,
                const Vector<V>& v, const Descriptor& desc = default_desc) {
  ewise_mult(ctx, w, NoMask{}, NoAccumulate{}, op, u, v, desc);
}

template <typename W, typename BinaryOp, typename U, typename V>
void ewise_mult(Vector<W>& w, BinaryOp op, const Vector<U>& u,
                const Vector<V>& v, const Descriptor& desc = default_desc) {
  ewise_mult(default_context(), w, NoMask{}, NoAccumulate{}, op, u, v, desc);
}

// ---------------------------------------------------------------------------
// Matrix variants.
// ---------------------------------------------------------------------------

namespace detail {

/// Row-wise union/intersection merge shared by the matrix eWise kernels.
template <bool kUnion, typename Z, typename BinaryOp, typename A, typename B>
Matrix<Z> ewise_matrix_kernel(BinaryOp op, const Matrix<A>& a,
                              const Matrix<B>& b) {
  Matrix<Z> z(a.nrows(), a.ncols());
  std::vector<Index> zptr(a.nrows() + 1, 0);
  std::vector<Index> zind;
  std::vector<storage_of_t<Z>> zval;
  zind.reserve(kUnion ? a.nvals() + b.nvals()
                      : std::min(a.nvals(), b.nvals()));
  zval.reserve(zind.capacity());

  for (Index r = 0; r < a.nrows(); ++r) {
    auto ai = a.row_indices(r);
    auto av = a.row_values(r);
    auto bi = b.row_indices(r);
    auto bv = b.row_values(r);
    std::size_t x = 0, y = 0;
    while (x < ai.size() || y < bi.size()) {
      if (x < ai.size() && (y >= bi.size() || ai[x] < bi[y])) {
        if constexpr (kUnion) {
          zind.push_back(ai[x]);
          zval.push_back(static_cast<Z>(av[x]));
        }
        ++x;
      } else if (y < bi.size() && (x >= ai.size() || bi[y] < ai[x])) {
        if constexpr (kUnion) {
          zind.push_back(bi[y]);
          zval.push_back(static_cast<Z>(bv[y]));
        }
        ++y;
      } else {
        zind.push_back(ai[x]);
        zval.push_back(static_cast<Z>(op(av[x], bv[y])));
        ++x;
        ++y;
      }
    }
    zptr[r + 1] = static_cast<Index>(zind.size());
  }
  z.adopt(std::move(zptr), std::move(zind), std::move(zval));
  return z;
}

}  // namespace detail

/// C<Mask> accum= A (+op) B — union (eWiseAdd) on matrices.
template <typename C, typename Mask, typename Accum, typename BinaryOp,
          typename A, typename B>
void ewise_add(Matrix<C>& c, const Mask& mask, const Accum& accum,
               BinaryOp op, const Matrix<A>& a, const Matrix<B>& b,
               const Descriptor& desc = default_desc) {
  const Matrix<A>* pa = desc.transpose_in0 ? &a.transpose_cached() : &a;
  const Matrix<B>* pb = desc.transpose_in1 ? &b.transpose_cached() : &b;
  detail::check_size_match(pa->nrows(), pb->nrows(), "ewise_add: A vs B rows");
  detail::check_size_match(pa->ncols(), pb->ncols(), "ewise_add: A vs B cols");
  detail::check_size_match(c.nrows(), pa->nrows(), "ewise_add: C vs A rows");
  detail::check_size_match(c.ncols(), pa->ncols(), "ewise_add: C vs A cols");

  using Z = std::common_type_t<decltype(op(std::declval<A>(), std::declval<B>())), A, B>;
  auto z = detail::ewise_matrix_kernel<true, Z>(op, *pa, *pb);
  detail::write_matrix_result(c, std::move(z), mask, accum, desc);
}

/// Unmasked convenience overload (matrix eWiseAdd).
template <typename C, typename BinaryOp, typename A, typename B>
void ewise_add(Matrix<C>& c, BinaryOp op, const Matrix<A>& a,
               const Matrix<B>& b, const Descriptor& desc = default_desc) {
  ewise_add(c, NoMask{}, NoAccumulate{}, op, a, b, desc);
}

/// C<Mask> accum= A (.op) B — intersection (eWiseMult) on matrices.
/// This is the Hadamard product used by A_L = A ∘ (0 < A ≤ Δ).
template <typename C, typename Mask, typename Accum, typename BinaryOp,
          typename A, typename B>
void ewise_mult(Matrix<C>& c, const Mask& mask, const Accum& accum,
                BinaryOp op, const Matrix<A>& a, const Matrix<B>& b,
                const Descriptor& desc = default_desc) {
  const Matrix<A>* pa = desc.transpose_in0 ? &a.transpose_cached() : &a;
  const Matrix<B>* pb = desc.transpose_in1 ? &b.transpose_cached() : &b;
  detail::check_size_match(pa->nrows(), pb->nrows(), "ewise_mult: A vs B rows");
  detail::check_size_match(pa->ncols(), pb->ncols(), "ewise_mult: A vs B cols");
  detail::check_size_match(c.nrows(), pa->nrows(), "ewise_mult: C vs A rows");
  detail::check_size_match(c.ncols(), pa->ncols(), "ewise_mult: C vs A cols");

  using Z = decltype(op(std::declval<A>(), std::declval<B>()));
  auto z = detail::ewise_matrix_kernel<false, Z>(op, *pa, *pb);
  detail::write_matrix_result(c, std::move(z), mask, accum, desc);
}

/// Unmasked convenience overload (matrix eWiseMult).
template <typename C, typename BinaryOp, typename A, typename B>
void ewise_mult(Matrix<C>& c, BinaryOp op, const Matrix<A>& a,
                const Matrix<B>& b, const Descriptor& desc = default_desc) {
  ewise_mult(c, NoMask{}, NoAccumulate{}, op, a, b, desc);
}

}  // namespace grb
