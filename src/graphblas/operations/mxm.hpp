// mxm.hpp — GrB_mxm: sparse matrix–matrix multiply over a semiring,
// row-wise Gustavson with a dense per-row accumulator.
//
// Delta-stepping itself does not need mxm, but the substrate provides it for
// completeness (e.g. the K-truss computation S = AᵀA ∘ A the paper cites as
// motivation for edge-centric fill-in elimination), and the test suite uses
// it to cross-check vxm/mxv against full products.
#pragma once

#include <vector>

#include "graphblas/descriptor.hpp"
#include "graphblas/mask.hpp"
#include "graphblas/matrix.hpp"
#include "graphblas/operations/mxv.hpp"
#include "graphblas/semiring.hpp"
#include "graphblas/types.hpp"

namespace grb {

namespace detail {

template <typename Z, typename SR, typename A, typename B>
Matrix<Z> mxm_kernel(Context& ctx, const SR& sr, const Matrix<A>& a,
                     const Matrix<B>& b) {
  Matrix<Z> z(a.nrows(), b.ncols());
  std::vector<Index> zptr(a.nrows() + 1, 0);
  std::vector<Index> zind;
  std::vector<storage_of_t<Z>> zval;

  // Gustavson row-by-row with the Context accumulator: the per-row reset is
  // sparse (O(row fill), not O(ncols)), so total cost is O(flops + nnz(C)).
  auto& acc = ctx.get<ScatterAccumulator<Z>>();
  for (Index r = 0; r < a.nrows(); ++r) {
    acc.reset(b.ncols());
    auto acols = a.row_indices(r);
    auto avals = a.row_values(r);
    for (std::size_t k = 0; k < acols.size(); ++k) {
      const Index i = acols[k];
      auto bcols = b.row_indices(i);
      auto bvals = b.row_values(i);
      for (std::size_t l = 0; l < bcols.size(); ++l) {
        acc.scatter(bcols[l],
                    static_cast<Z>(sr.mult(static_cast<A>(avals[k]),
                                           static_cast<B>(bvals[l]))),
                    sr);
      }
    }
    acc.extract_sorted(b.ncols(), zind, zval);
    zptr[r + 1] = static_cast<Index>(zind.size());
  }
  z.adopt(std::move(zptr), std::move(zind), std::move(zval));
  return z;
}

}  // namespace detail

/// C<Mask> accum= A (op) B  (GrB_mxm) using `ctx`'s workspaces, with
/// optional input transposes.
template <typename C, typename Mask, typename Accum, typename SR, typename A,
          typename B>
void mxm(Context& ctx, Matrix<C>& c, const Mask& mask, const Accum& accum,
         const SR& sr, const Matrix<A>& a, const Matrix<B>& b,
         const Descriptor& desc = default_desc) {
  const Matrix<A>* pa = desc.transpose_in0 ? &a.transpose_cached() : &a;
  const Matrix<B>* pb = desc.transpose_in1 ? &b.transpose_cached() : &b;
  detail::check_size_match(pa->ncols(), pb->nrows(), "mxm: A cols vs B rows");
  detail::check_size_match(c.nrows(), pa->nrows(), "mxm: C rows vs A rows");
  detail::check_size_match(c.ncols(), pb->ncols(), "mxm: C cols vs B cols");

  using Z = typename SR::value_type;
  auto z = detail::mxm_kernel<Z>(ctx, sr, *pa, *pb);
  detail::write_matrix_result(c, std::move(z), mask, accum, desc);
}

/// Legacy signature: runs on the thread-local default context.
template <typename C, typename Mask, typename Accum, typename SR, typename A,
          typename B>
void mxm(Matrix<C>& c, const Mask& mask, const Accum& accum, const SR& sr,
         const Matrix<A>& a, const Matrix<B>& b,
         const Descriptor& desc = default_desc) {
  mxm(default_context(), c, mask, accum, sr, a, b, desc);
}

/// Unmasked, non-accumulating convenience overloads.
template <typename C, typename SR, typename A, typename B>
void mxm(Context& ctx, Matrix<C>& c, const SR& sr, const Matrix<A>& a,
         const Matrix<B>& b, const Descriptor& desc = default_desc) {
  mxm(ctx, c, NoMask{}, NoAccumulate{}, sr, a, b, desc);
}

template <typename C, typename SR, typename A, typename B>
void mxm(Matrix<C>& c, const SR& sr, const Matrix<A>& a, const Matrix<B>& b,
         const Descriptor& desc = default_desc) {
  mxm(default_context(), c, NoMask{}, NoAccumulate{}, sr, a, b, desc);
}

}  // namespace grb
