// pointwise_parallel.hpp — the deterministic two-pass parallel scheme
// shared by the point-wise vector operations (apply / select / ewise).
//
// Those kernels all compact a filtered/merged stream into a fresh sparse
// vector.  The output size is data-dependent, so a naive parallel loop
// cannot write in place.  The scheme here splits the input into contiguous
// chunks and runs two parallel passes:
//
//   1. count: each chunk reports how many entries it will emit;
//   2. a serial prefix sum turns counts into write offsets;
//   3. fill: each chunk writes its entries at its offset.
//
// Chunks are contiguous and processed left-to-right within themselves, so
// the concatenated output is exactly the serial output — bit-identical,
// independent of thread count and scheduling.  (This is the property the
// serial-parity tests pin down.)
//
// Only compiled under DSG_HAVE_OPENMP; callers gate on
// Context::pointwise_parallel_threshold.
#pragma once

#if defined(DSG_HAVE_OPENMP)

#include <algorithm>
#include <cstddef>
#include <vector>

#include <omp.h>

namespace grb::detail {

/// Number of chunks for `work` input items: one per thread, but never so
/// many that a chunk drops below ~4k items (below that the pass overhead
/// dominates).
inline int pointwise_chunks(std::size_t work) {
  const std::size_t by_work = work / 4096 + 1;
  const auto threads =
      static_cast<std::size_t>(std::max(1, omp_get_max_threads()));
  return static_cast<int>(std::max<std::size_t>(
      1, std::min<std::size_t>(threads, by_work)));
}

/// [begin, end) of chunk t when `work` items are cut into `chunks` even
/// contiguous pieces.  Count and fill passes MUST use the same boundaries;
/// keeping the arithmetic here keeps them in lockstep.
struct ChunkRange {
  std::size_t begin;
  std::size_t end;
};

inline ChunkRange chunk_range(std::size_t work, int t, int chunks) {
  const auto nt = static_cast<std::size_t>(t);
  const auto nc = static_cast<std::size_t>(chunks);
  return {work * nt / nc, work * (nt + 1) / nc};
}

/// Runs the count / prefix / fill scheme over `chunks` chunks.
/// count(t) -> entries chunk t emits; resize(total) sizes the output;
/// fill(t, offset) writes chunk t's entries starting at `offset`.
template <typename CountFn, typename ResizeFn, typename FillFn>
void parallel_chunked_compact(int chunks, CountFn&& count, ResizeFn&& resize,
                              FillFn&& fill) {
  std::vector<std::size_t> offs(static_cast<std::size_t>(chunks) + 1, 0);
#pragma omp parallel for schedule(static, 1)
  for (int t = 0; t < chunks; ++t) {
    offs[static_cast<std::size_t>(t) + 1] = count(t);
  }
  for (int t = 0; t < chunks; ++t) {
    offs[static_cast<std::size_t>(t) + 1] += offs[static_cast<std::size_t>(t)];
  }
  resize(offs[static_cast<std::size_t>(chunks)]);
#pragma omp parallel for schedule(static, 1)
  for (int t = 0; t < chunks; ++t) {
    fill(t, offs[static_cast<std::size_t>(t)]);
  }
}

}  // namespace grb::detail

#endif  // DSG_HAVE_OPENMP
