// matrix.hpp — grb::Matrix<T>, a sparse matrix in CSR (compressed sparse
// row) form, analogous to GrB_Matrix.
//
// CSR matches the access pattern of the delta-stepping kernels: row i holds
// the outgoing edges of vertex i, and the (min,+) vxm pulls rows of A for
// each stored element of the input vector, which is exactly
// tReq = A_Lᵀ (t ∘ tB_i) evaluated as (t ∘ tB_i)ᵀ A_L.
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <span>
#include <tuple>
#include <utility>
#include <vector>

#include "graphblas/audit.hpp"
#include "graphblas/ops.hpp"
#include "graphblas/types.hpp"

namespace grb {

template <typename T>
class Matrix {
 public:
  using value_type = T;
  using storage_type = storage_of_t<T>;

  Matrix() = default;

  /// Empty matrix of logical dimensions nrows x ncols.
  Matrix(Index nrows, Index ncols)
      : nrows_(nrows), ncols_(ncols), row_ptr_(nrows + 1, 0) {}

  // Copies share the transpose snapshot (it matches the copied data and
  // each object invalidates only its own cache on mutation); moves
  // transfer it.  Spelled out because the cache mutex is neither copyable
  // nor movable.
  Matrix(const Matrix& o)
      : nrows_(o.nrows_),
        ncols_(o.ncols_),
        row_ptr_(o.row_ptr_),
        col_ind_(o.col_ind_),
        val_(o.val_),
        transpose_cache_(o.transpose_snapshot()) {}
  Matrix(Matrix&& o) noexcept
      : nrows_(o.nrows_),
        ncols_(o.ncols_),
        row_ptr_(std::move(o.row_ptr_)),
        col_ind_(std::move(o.col_ind_)),
        val_(std::move(o.val_)),
        transpose_cache_(o.take_transpose_snapshot()) {}
  Matrix& operator=(const Matrix& o) {
    if (this != &o) {
      nrows_ = o.nrows_;
      ncols_ = o.ncols_;
      row_ptr_ = o.row_ptr_;
      col_ind_ = o.col_ind_;
      val_ = o.val_;
      set_transpose_snapshot(o.transpose_snapshot());
    }
    return *this;
  }
  Matrix& operator=(Matrix&& o) noexcept {
    if (this != &o) {
      nrows_ = o.nrows_;
      ncols_ = o.ncols_;
      row_ptr_ = std::move(o.row_ptr_);
      col_ind_ = std::move(o.col_ind_);
      val_ = std::move(o.val_);
      set_transpose_snapshot(o.take_transpose_snapshot());
    }
    return *this;
  }

  /// Builds from COO triples; duplicates combined with `dup`
  /// (GrB_Matrix_build).  Triples need not be sorted.
  template <typename DupOp = Second<T>>
  static Matrix build(Index nrows, Index ncols, std::span<const Index> rows,
                      std::span<const Index> cols, std::span<const T> values,
                      DupOp dup = DupOp{}) {
    if (rows.size() != cols.size() || rows.size() != values.size()) {
      throw InvalidValue("Matrix::build: triple count mismatch");
    }
    for (std::size_t k = 0; k < rows.size(); ++k) {
      detail::check_index(rows[k], nrows, "Matrix::build row");
      detail::check_index(cols[k], ncols, "Matrix::build col");
    }
    std::vector<std::size_t> order(rows.size());
    for (std::size_t k = 0; k < order.size(); ++k) order[k] = k;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return std::tie(rows[a], cols[a]) <
                              std::tie(rows[b], cols[b]);
                     });

    Matrix m(nrows, ncols);
    m.col_ind_.reserve(rows.size());
    m.val_.reserve(rows.size());
    Index prev_r = all_indices, prev_c = all_indices;
    for (std::size_t k : order) {
      const Index r = rows[k], c = cols[k];
      if (!m.col_ind_.empty() && r == prev_r && c == prev_c) {
        m.val_.back() = dup(m.val_.back(), values[k]);
      } else {
        m.col_ind_.push_back(c);
        m.val_.push_back(values[k]);
        ++m.row_ptr_[r + 1];
        prev_r = r;
        prev_c = c;
      }
    }
    for (Index r = 0; r < nrows; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
    return m;
  }

  Index nrows() const { return nrows_; }
  Index ncols() const { return ncols_; }

  /// Number of stored elements (GrB_Matrix_nvals).
  Index nvals() const { return static_cast<Index>(col_ind_.size()); }

  bool empty() const { return col_ind_.empty(); }

  /// Removes all stored elements (GrB_Matrix_clear).
  void clear() {
    invalidate_transpose();
    std::fill(row_ptr_.begin(), row_ptr_.end(), Index{0});
    col_ind_.clear();
    val_.clear();
  }

  /// Stored column indices of row r (ascending).
  std::span<const Index> row_indices(Index r) const {
    detail::check_index(r, nrows_, "Matrix::row_indices");
    return {col_ind_.data() + row_ptr_[r],
            static_cast<std::size_t>(row_ptr_[r + 1] - row_ptr_[r])};
  }

  /// Stored values of row r, parallel to row_indices(r).
  std::span<const storage_type> row_values(Index r) const {
    detail::check_index(r, nrows_, "Matrix::row_values");
    return {val_.data() + row_ptr_[r],
            static_cast<std::size_t>(row_ptr_[r + 1] - row_ptr_[r])};
  }

  /// Number of stored elements in row r (out-degree of vertex r).
  Index row_nvals(Index r) const {
    detail::check_index(r, nrows_, "Matrix::row_nvals");
    return row_ptr_[r + 1] - row_ptr_[r];
  }

  bool has_element(Index r, Index c) const {
    auto cols = row_indices(r);
    return std::binary_search(cols.begin(), cols.end(), c);
  }

  /// Stored value at (r, c) or nullopt (GrB_Matrix_extractElement).
  std::optional<T> extract_element(Index r, Index c) const {
    auto cols = row_indices(r);
    auto it = std::lower_bound(cols.begin(), cols.end(), c);
    if (it == cols.end() || *it != c) return std::nullopt;
    return static_cast<T>(
        row_values(r)[static_cast<std::size_t>(it - cols.begin())]);
  }

  /// Sets A[r][c] = x (GrB_Matrix_setElement).  O(nnz) worst case —
  /// intended for tests and incremental construction of small matrices;
  /// bulk data should go through build().
  void set_element(Index r, Index c, const T& x) {
    detail::check_index(r, nrows_, "Matrix::set_element row");
    detail::check_index(c, ncols_, "Matrix::set_element col");
    invalidate_transpose();
    const Index lo = row_ptr_[r], hi = row_ptr_[r + 1];
    auto it = std::lower_bound(col_ind_.begin() + lo, col_ind_.begin() + hi, c);
    auto pos = static_cast<std::size_t>(it - col_ind_.begin());
    if (it != col_ind_.begin() + hi && *it == c) {
      val_[pos] = x;
      return;
    }
    col_ind_.insert(it, c);
    val_.insert(val_.begin() + static_cast<std::ptrdiff_t>(pos), x);
    for (Index rr = r + 1; rr <= nrows_; ++rr) ++row_ptr_[rr];
  }

  /// Removes the element at (r, c) if present (GrB_Matrix_removeElement).
  void remove_element(Index r, Index c) {
    detail::check_index(r, nrows_, "Matrix::remove_element row");
    detail::check_index(c, ncols_, "Matrix::remove_element col");
    invalidate_transpose();
    const Index lo = row_ptr_[r], hi = row_ptr_[r + 1];
    auto it = std::lower_bound(col_ind_.begin() + lo, col_ind_.begin() + hi, c);
    if (it == col_ind_.begin() + hi || *it != c) return;
    auto pos = static_cast<std::size_t>(it - col_ind_.begin());
    col_ind_.erase(it);
    val_.erase(val_.begin() + static_cast<std::ptrdiff_t>(pos));
    for (Index rr = r + 1; rr <= nrows_; ++rr) --row_ptr_[rr];
  }

  /// Dumps to COO triples in row-major order (GrB_Matrix_extractTuples).
  void extract_tuples(std::vector<Index>& rows, std::vector<Index>& cols,
                      std::vector<T>& values) const {
    rows.clear();
    cols.clear();
    values.clear();
    rows.reserve(nvals());
    for (Index r = 0; r < nrows_; ++r) {
      for (Index k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
        rows.push_back(r);
      }
    }
    cols = col_ind_;
    values.assign(val_.begin(), val_.end());
  }

  /// Invokes f(row, col, value) in row-major order.
  template <typename F>
  void for_each(F&& f) const {
    for (Index r = 0; r < nrows_; ++r) {
      for (Index k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
        f(r, col_ind_[k], static_cast<T>(val_[k]));
      }
    }
  }

  /// Explicit transpose as a new CSR matrix (GrB_transpose without mask).
  /// Counting sort by column: O(nnz + n).
  Matrix transposed() const {
    Matrix t(ncols_, nrows_);
    t.col_ind_.resize(col_ind_.size());
    t.val_.resize(val_.size());
    // Count entries per column.
    for (Index c : col_ind_) ++t.row_ptr_[c + 1];
    for (Index c = 0; c < ncols_; ++c) t.row_ptr_[c + 1] += t.row_ptr_[c];
    std::vector<Index> next(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
    for (Index r = 0; r < nrows_; ++r) {
      for (Index k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
        const Index c = col_ind_[k];
        const Index slot = next[c]++;
        t.col_ind_[slot] = r;
        t.val_[slot] = val_[k];
      }
    }
    return t;
  }

  /// The transpose, built once and cached until this matrix is mutated
  /// (set_element / remove_element / clear / adopt invalidate it).  This is
  /// what operations with a transpose descriptor use: the paper's algorithms
  /// pass A_L / A_H unchanged through thousands of calls, and rebuilding an
  /// O(nnz + n) transpose per call dwarfed the actual kernel work.  The
  /// lazy fill is mutex-guarded — the substrate confines raw atomics to the
  /// audited async allowlist (scripts/lint_dsg.py), and an uncontended lock
  /// around a pointer copy is noise next to any kernel — so concurrent
  /// read-only use of a shared matrix stays safe, the build happens exactly
  /// once, and later calls are a lock + pointer read.  Racing a *mutation*
  /// against readers is UB, as for any container.  The returned reference
  /// is stable until the next mutation: invalidation only drops the owning
  /// shared_ptr held here, and readers of a quiescent matrix hold none.
  const Matrix& transpose_cached() const {
    std::lock_guard<std::mutex> lock(transpose_mu_);
    if (!transpose_cache_) {
      transpose_cache_ = std::make_shared<const Matrix>(transposed());
    }
    return *transpose_cache_;
  }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.nrows_ == b.nrows_ && a.ncols_ == b.ncols_ &&
           a.row_ptr_ == b.row_ptr_ && a.col_ind_ == b.col_ind_ &&
           a.val_ == b.val_;
  }

  // --- Internal bulk access for kernel implementations. ---------------------
  void adopt(std::vector<Index>&& row_ptr, std::vector<Index>&& col_ind,
             std::vector<storage_type>&& values) {
    invalidate_transpose();
    row_ptr_ = std::move(row_ptr);
    col_ind_ = std::move(col_ind);
    val_ = std::move(values);
  }
  std::span<const Index> row_ptr() const { return row_ptr_; }
  std::span<const Index> col_ind() const { return col_ind_; }
  std::span<const storage_type> raw_values() const { return val_; }

  /// Audits the CSR structure (monotone row offsets, in-range ascending
  /// columns, parallel values — see audit.hpp).  Throws
  /// grb::audit::AuditError on violation; O(nrows + nnz).
  void check_invariants(const char* where) const {
    audit::check_csr(row_ptr_, col_ind_, val_.size(), nrows_, ncols_, where);
  }

 private:
  void invalidate_transpose() { set_transpose_snapshot(nullptr); }

  std::shared_ptr<const Matrix> transpose_snapshot() const {
    std::lock_guard<std::mutex> lock(transpose_mu_);
    return transpose_cache_;
  }
  std::shared_ptr<const Matrix> take_transpose_snapshot() noexcept {
    std::lock_guard<std::mutex> lock(transpose_mu_);
    return std::move(transpose_cache_);
  }
  void set_transpose_snapshot(std::shared_ptr<const Matrix> snap) noexcept {
    std::lock_guard<std::mutex> lock(transpose_mu_);
    transpose_cache_ = std::move(snap);
  }

  Index nrows_ = 0;
  Index ncols_ = 0;
  std::vector<Index> row_ptr_;  // size nrows_+1
  std::vector<Index> col_ind_;     // ascending within each row
  std::vector<storage_type> val_;  // parallel to col_ind_
  // Derived state, excluded from operator== (it never disagrees with the
  // CSR arrays while valid).  Guarded by transpose_mu_.
  mutable std::mutex transpose_mu_;
  mutable std::shared_ptr<const Matrix> transpose_cache_;
};

template <typename T>
std::ostream& operator<<(std::ostream& os, const Matrix<T>& m) {
  os << "Matrix(" << m.nrows() << "x" << m.ncols() << ", nvals=" << m.nvals()
     << ") {";
  bool first = true;
  m.for_each([&](Index r, Index c, const T& x) {
    os << (first ? "" : ", ") << "(" << r << "," << c << "):" << x;
    first = false;
  });
  return os << "}";
}

}  // namespace grb
