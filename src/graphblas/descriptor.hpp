// descriptor.hpp — operation descriptors, analogous to GrB_Descriptor.
//
// A descriptor modifies how an operation treats its output, mask and inputs:
//  - outp = replace  : clear the output before writing results
//                      (the paper's `clear_desc`, used pervasively in Fig. 2)
//  - mask complement : use the complement of the mask's structure/values
//  - mask structure  : mask by presence of entries, ignoring values
//  - transpose in0/in1: operate on the transpose of an input matrix
#pragma once

#include <cstdint>

namespace grb {

struct Descriptor {
  bool replace = false;          ///< GrB_OUTP = GrB_REPLACE
  bool mask_complement = false;  ///< GrB_MASK = GrB_COMP
  bool mask_structure = false;   ///< GrB_MASK = GrB_STRUCTURE
  bool transpose_in0 = false;    ///< GrB_INP0 = GrB_TRAN
  bool transpose_in1 = false;    ///< GrB_INP1 = GrB_TRAN

  constexpr Descriptor with_replace(bool v = true) const {
    Descriptor d = *this;
    d.replace = v;
    return d;
  }
  constexpr Descriptor with_mask_complement(bool v = true) const {
    Descriptor d = *this;
    d.mask_complement = v;
    return d;
  }
  constexpr Descriptor with_mask_structure(bool v = true) const {
    Descriptor d = *this;
    d.mask_structure = v;
    return d;
  }
  constexpr Descriptor with_transpose_in0(bool v = true) const {
    Descriptor d = *this;
    d.transpose_in0 = v;
    return d;
  }
  constexpr Descriptor with_transpose_in1(bool v = true) const {
    Descriptor d = *this;
    d.transpose_in1 = v;
    return d;
  }
};

/// Default descriptor: merge into output, mask by value, no transpose.
inline constexpr Descriptor default_desc{};

/// The paper's `clear_desc`: replace output contents.
inline constexpr Descriptor replace_desc{.replace = true};

/// Complemented mask.
inline constexpr Descriptor complement_mask_desc{.mask_complement = true};

/// Structural mask.
inline constexpr Descriptor structure_mask_desc{.mask_structure = true};

}  // namespace grb
