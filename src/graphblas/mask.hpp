// mask.hpp — mask and accumulator handling shared by every GraphBLAS
// operation.
//
// Every GraphBLAS operation has the form
//     C<M, desc> accum= T
// where T is the computed result.  The write phase is:
//   1. Z = accum ? (C union-combined with T via accum) : T
//   2. for every position p:
//        mask true at p  -> C[p] = Z[p] (absent if Z absent)
//        mask false at p -> C[p] kept, or deleted when desc.replace
// A value mask tests presence *and* truthiness; a structural mask
// (desc.mask_structure) tests presence only; desc.mask_complement flips the
// test.  `NoMask` means "all positions writable" (complement: none).
#pragma once

#include <type_traits>
#include <vector>

#include "graphblas/context.hpp"
#include "graphblas/descriptor.hpp"
#include "graphblas/matrix.hpp"
#include "graphblas/types.hpp"
#include "graphblas/vector.hpp"

namespace grb {

/// Tag: operation runs unmasked (GrB_NULL mask).
struct NoMask {};

/// Tag: results assign rather than accumulate (GrB_NULL accum).
struct NoAccumulate {};

namespace detail {

template <typename Mask>
inline constexpr bool is_no_mask_v = std::is_same_v<std::decay_t<Mask>, NoMask>;

template <typename Accum>
inline constexpr bool is_no_accum_v =
    std::is_same_v<std::decay_t<Accum>, NoAccumulate>;

/// Point query against a vector mask under descriptor flags.  Probing cost
/// depends on the mask's storage representation:
///   - dense (bitmap) representation: O(1) bitmap test, no probe structure
///     to build and no mirror materialization;
///   - sparse with every position stored (the fully-populated boolean
///     filters of delta-stepping): direct subscript into the value array;
///   - sparse otherwise: binary search per probe.
template <typename MaskT>
class VectorMaskProbe {
 public:
  VectorMaskProbe(const Vector<MaskT>& mask, const Descriptor& desc)
      : mask_(&mask),
        complement_(desc.mask_complement),
        structural_(desc.mask_structure) {
    if (mask.is_dense()) {
      mode_ = Mode::kBitmap;
      bit_ = mask.dense_bitmap().data();
      val_ = mask.dense_values().data();
    } else if (mask.nvals() == mask.size()) {
      mode_ = Mode::kAllStored;
      val_ = mask.values().data();
    } else {
      mode_ = Mode::kSearch;
    }
  }

  bool operator()(Index i) const {
    bool t;
    switch (mode_) {
      case Mode::kBitmap:
        t = bit_[i] != 0 &&
            (structural_ || val_[i] != storage_of_t<MaskT>(MaskT(0)));
        break;
      case Mode::kAllStored:
        t = structural_ || val_[i] != storage_of_t<MaskT>(MaskT(0));
        break;
      default:
        if (structural_) {
          t = mask_->has_element(i);
        } else {
          auto v = mask_->extract_element(i);
          t = v.has_value() && *v != MaskT(0);
        }
    }
    return complement_ ? !t : t;
  }

 private:
  enum class Mode { kBitmap, kAllStored, kSearch };
  const Vector<MaskT>* mask_;
  const unsigned char* bit_ = nullptr;
  const storage_of_t<MaskT>* val_ = nullptr;
  bool complement_;
  bool structural_;
  Mode mode_ = Mode::kSearch;
};

/// Point query against a matrix mask under descriptor flags.
template <typename MaskT>
class MatrixMaskProbe {
 public:
  MatrixMaskProbe(const Matrix<MaskT>& mask, const Descriptor& desc)
      : mask_(&mask),
        complement_(desc.mask_complement),
        structural_(desc.mask_structure) {}

  bool operator()(Index r, Index c) const {
    bool t;
    auto v = mask_->extract_element(r, c);
    if (structural_) {
      t = v.has_value();
    } else {
      t = v.has_value() && *v != MaskT(0);
    }
    return complement_ ? !t : t;
  }

 private:
  const Matrix<MaskT>* mask_;
  bool complement_;
  bool structural_;
};

struct AlwaysTrueProbe {
  constexpr bool operator()(Index) const { return true; }
  constexpr bool operator()(Index, Index) const { return true; }
};
struct AlwaysFalseProbe {
  constexpr bool operator()(Index) const { return false; }
  constexpr bool operator()(Index, Index) const { return false; }
};

/// Resolves (mask, desc) to a concrete probe type and invokes `f` with it.
/// Operations use this to build the probe *once* and share it between the
/// kernel (mask push-down: skip non-writable positions while computing) and
/// the write phase — positions the probe rejects either keep the old output
/// value or are deleted under replace, so their computed values are never
/// observable and the kernel may skip them outright.
template <typename Mask, typename F>
decltype(auto) with_vector_probe(const Mask& mask, const Descriptor& desc,
                                 Index out_size, F&& f) {
  if constexpr (is_no_mask_v<Mask>) {
    (void)mask;
    (void)out_size;
    if (desc.mask_complement) {
      // Complement of "no mask" (all true) is all false: nothing writable.
      return f(AlwaysFalseProbe{});
    }
    return f(AlwaysTrueProbe{});
  } else {
    check_size_match(mask.size(), out_size, "mask size vs output size");
    return f(VectorMaskProbe<typename Mask::value_type>(mask, desc));
  }
}

// ---------------------------------------------------------------------------
// Vector write phase.
// ---------------------------------------------------------------------------

/// Performs `w<probe> accum= z` with replace semantics.  `probe(i)` decides
/// writability per index; pass AlwaysTrueProbe for no mask.  The merge is
/// staged in ctx-owned buffers that are swapped with w's storage at the
/// end, so steady-state calls recycle capacity instead of reallocating.
///
/// `z_prefiltered` asserts that every entry of z already passed the probe
/// (true when the producing kernel pushed the mask down); the merge then
/// probes only positions present solely in w, instead of re-probing the
/// whole union.
template <typename W, typename Z, typename Probe, typename Accum>
void masked_write_vector(Context& ctx, Vector<W>& w, const Vector<Z>& z,
                         const Probe& probe, const Accum& accum, bool replace,
                         bool z_prefiltered = false) {
  auto& scratch = ctx.get<WriteScratch<storage_of_t<W>>>();
  auto& out_ind = scratch.ind;
  auto& out_val = scratch.val;
  out_ind.clear();
  out_val.clear();
  out_ind.reserve(w.nvals() + z.nvals());
  out_val.reserve(w.nvals() + z.nvals());

  auto wi = w.indices();
  auto wv = w.values();
  auto zi = z.indices();
  auto zv = z.values();
  std::size_t a = 0, b = 0;
  while (a < wi.size() || b < zi.size()) {
    bool in_w = false, in_z = false;
    Index i;
    if (a < wi.size() && (b >= zi.size() || wi[a] <= zi[b])) {
      i = wi[a];
      in_w = true;
      if (b < zi.size() && zi[b] == i) in_z = true;
    } else {
      i = zi[b];
      in_z = true;
    }

    if ((in_z && z_prefiltered) || probe(i)) {
      // Mask true: write Z-after-accum.
      if constexpr (is_no_accum_v<Accum>) {
        if (in_z) {
          out_ind.push_back(i);
          out_val.push_back(static_cast<W>(zv[b]));
        }
      } else {
        if (in_w && in_z) {
          out_ind.push_back(i);
          out_val.push_back(static_cast<W>(accum(wv[a], zv[b])));
        } else if (in_z) {
          out_ind.push_back(i);
          out_val.push_back(static_cast<W>(zv[b]));
        } else {  // only w
          out_ind.push_back(i);
          out_val.push_back(wv[a]);
        }
      }
    } else {
      // Mask false: keep old value unless replace.
      if (!replace && in_w) {
        out_ind.push_back(i);
        out_val.push_back(wv[a]);
      }
    }

    if (in_w) ++a;
    if (in_z) ++b;
  }
  w.swap_storage(out_ind, out_val);
  ctx.manage_representation(w);
}

/// Rvalue overload: when there is no mask and no accumulator, every
/// position is writable and takes z's entry (or absence), so the merge is
/// the identity map — steal z's storage instead of copying it.  This is
/// the shape of most calls on the delta-stepping hot path (unmasked
/// replace-mode vxm / eWiseAdd / apply).
template <typename W, typename Z, typename Probe, typename Accum>
void masked_write_vector(Context& ctx, Vector<W>& w, Vector<Z>&& z,
                         const Probe& probe, const Accum& accum, bool replace,
                         bool z_prefiltered = false) {
  if constexpr (std::is_same_v<W, Z> &&
                std::is_same_v<Probe, AlwaysTrueProbe> &&
                is_no_accum_v<Accum>) {
    (void)probe;
    (void)replace;
    (void)z_prefiltered;
    w = std::move(z);
    ctx.manage_representation(w);
  } else {
    masked_write_vector(ctx, w, z, probe, accum, replace, z_prefiltered);
  }
}

/// Dense-result write phase: performs `w<probe> accum= z` where z is a
/// dense-staged kernel result — `z.bit[i]` marks presence, `z.val[i]` holds
/// the value, `znnz` counts the set bits.  The stage's buffers are consumed
/// (swapped into w on the fast path, or recycled by the caller's next
/// reset); w ends in the dense representation and is then handed to the
/// Context's density policy, which may demote it.
///
/// Semantics are exactly masked_write_vector's, position by position — the
/// bit-identity tests compare the two on the same inputs.
template <typename W, typename Z, typename Probe, typename Accum>
void masked_write_vector_dense(Context& ctx, Vector<W>& w,
                               DenseKernelStage<Z>& z, Index znnz,
                               const Probe& probe, const Accum& accum,
                               bool replace, bool z_prefiltered = false) {
  const Index n = w.size();
  // Like the sparse rvalue fast path: W and Z must be the *same element
  // type* (not merely the same storage type) so the adoption cannot skip
  // the value-normalizing casts of the general path (bool vs uchar).
  if constexpr (std::is_same_v<Probe, AlwaysTrueProbe> &&
                is_no_accum_v<Accum> && std::is_same_v<W, Z>) {
    // Every position writable, result is exactly z: adopt the stage's
    // buffers; the stage inherits w's previous dense buffers (capacity
    // ping-pong, like the sparse write scratch).
    (void)replace;
    (void)z_prefiltered;
    w.swap_dense_storage(z.bit, z.val, znnz);
    ctx.manage_representation(w);
    return;
  } else {
    auto& out = ctx.get<DenseWriteStage<storage_of_t<W>>>();
    out.reset(n);
    Index nnz = 0;

    const bool w_dense = w.is_dense();
    auto wbit = w_dense ? w.dense_bitmap() : std::span<const unsigned char>{};
    auto wdv = w_dense ? w.dense_values()
                       : std::span<const storage_of_t<W>>{};
    auto wi = w_dense ? std::span<const Index>{} : w.indices();
    auto wv = w_dense ? std::span<const storage_of_t<W>>{} : w.values();
    std::size_t a = 0;  // cursor into (wi, wv) when w is sparse

    for (Index i = 0; i < n; ++i) {
      const bool in_z = z.bit[i] != 0;
      bool in_w;
      storage_of_t<W> wx{};
      if (w_dense) {
        in_w = wbit[i] != 0;
        if (in_w) wx = wdv[i];
      } else {
        in_w = a < wi.size() && wi[a] == i;
        if (in_w) wx = wv[a++];
      }

      if ((in_z && z_prefiltered) || probe(i)) {
        if constexpr (is_no_accum_v<Accum>) {
          if (in_z) {
            out.bit[i] = 1;
            out.val[i] = static_cast<W>(static_cast<Z>(z.val[i]));
            ++nnz;
          }
        } else {
          if (in_w && in_z) {
            out.bit[i] = 1;
            out.val[i] = static_cast<W>(accum(wx, z.val[i]));
            ++nnz;
          } else if (in_z) {
            out.bit[i] = 1;
            out.val[i] = static_cast<W>(static_cast<Z>(z.val[i]));
            ++nnz;
          } else if (in_w) {
            out.bit[i] = 1;
            out.val[i] = wx;
            ++nnz;
          }
        }
      } else {
        if (!replace && in_w) {
          out.bit[i] = 1;
          out.val[i] = wx;
          ++nnz;
        }
      }
    }
    w.swap_dense_storage(out.bit, out.val, nnz);
    ctx.manage_representation(w);
  }
}

/// Dispatches on mask type and invokes masked_write_vector.
template <typename W, typename Z, typename Mask, typename Accum>
void write_vector_result(Context& ctx, Vector<W>& w, const Vector<Z>& z,
                         const Mask& mask, const Accum& accum,
                         const Descriptor& desc) {
  with_vector_probe(mask, desc, w.size(), [&](const auto& probe) {
    masked_write_vector(ctx, w, z, probe, accum, desc.replace);
  });
}

/// Legacy entry point for operations that have no Context parameter.
template <typename W, typename Z, typename Mask, typename Accum>
void write_vector_result(Vector<W>& w, const Vector<Z>& z, const Mask& mask,
                         const Accum& accum, const Descriptor& desc) {
  write_vector_result(default_context(), w, z, mask, accum, desc);
}

// ---------------------------------------------------------------------------
// Matrix write phase.
// ---------------------------------------------------------------------------

template <typename W, typename Z, typename Probe, typename Accum>
void masked_write_matrix(Matrix<W>& w, const Matrix<Z>& z, const Probe& probe,
                         const Accum& accum, bool replace) {
  const Index nrows = w.nrows();
  std::vector<Index> out_ptr(nrows + 1, 0);
  std::vector<Index> out_ind;
  std::vector<storage_of_t<W>> out_val;
  out_ind.reserve(w.nvals() + z.nvals());
  out_val.reserve(w.nvals() + z.nvals());

  for (Index r = 0; r < nrows; ++r) {
    auto wi = w.row_indices(r);
    auto wv = w.row_values(r);
    auto zi = z.row_indices(r);
    auto zv = z.row_values(r);
    std::size_t a = 0, b = 0;
    while (a < wi.size() || b < zi.size()) {
      bool in_w = false, in_z = false;
      Index c;
      if (a < wi.size() && (b >= zi.size() || wi[a] <= zi[b])) {
        c = wi[a];
        in_w = true;
        if (b < zi.size() && zi[b] == c) in_z = true;
      } else {
        c = zi[b];
        in_z = true;
      }

      if (probe(r, c)) {
        if constexpr (is_no_accum_v<Accum>) {
          if (in_z) {
            out_ind.push_back(c);
            out_val.push_back(static_cast<W>(zv[b]));
          }
        } else {
          if (in_w && in_z) {
            out_ind.push_back(c);
            out_val.push_back(static_cast<W>(accum(wv[a], zv[b])));
          } else if (in_z) {
            out_ind.push_back(c);
            out_val.push_back(static_cast<W>(zv[b]));
          } else {
            out_ind.push_back(c);
            out_val.push_back(wv[a]);
          }
        }
      } else {
        if (!replace && in_w) {
          out_ind.push_back(c);
          out_val.push_back(wv[a]);
        }
      }

      if (in_w) ++a;
      if (in_z) ++b;
    }
    out_ptr[r + 1] = static_cast<Index>(out_ind.size());
  }
  w.adopt(std::move(out_ptr), std::move(out_ind), std::move(out_val));
}

template <typename W, typename Z, typename Mask, typename Accum>
void write_matrix_result(Matrix<W>& w, const Matrix<Z>& z, const Mask& mask,
                         const Accum& accum, const Descriptor& desc) {
  if constexpr (is_no_mask_v<Mask>) {
    if (desc.mask_complement) {
      masked_write_matrix(w, z, AlwaysFalseProbe{}, accum, desc.replace);
    } else {
      masked_write_matrix(w, z, AlwaysTrueProbe{}, accum, desc.replace);
    }
  } else {
    check_size_match(mask.nrows(), w.nrows(), "mask rows vs output rows");
    check_size_match(mask.ncols(), w.ncols(), "mask cols vs output cols");
    MatrixMaskProbe<typename Mask::value_type> probe(mask, desc);
    masked_write_matrix(w, z, probe, accum, desc.replace);
  }
}

/// Rvalue overload: unmasked non-accumulating writes are C := Z, so z's
/// CSR arrays move straight into the output (the A_L/A_H filter setup of
/// delta-stepping is four such applies over the whole matrix).
template <typename W, typename Z, typename Mask, typename Accum>
void write_matrix_result(Matrix<W>& w, Matrix<Z>&& z, const Mask& mask,
                         const Accum& accum, const Descriptor& desc) {
  if constexpr (std::is_same_v<W, Z> && is_no_mask_v<Mask> &&
                is_no_accum_v<Accum>) {
    if (!desc.mask_complement) {
      w = std::move(z);
      return;
    }
  }
  write_matrix_result(w, z, mask, accum, desc);
}

}  // namespace detail
}  // namespace grb
