// mask.hpp — mask and accumulator handling shared by every GraphBLAS
// operation.
//
// Every GraphBLAS operation has the form
//     C<M, desc> accum= T
// where T is the computed result.  The write phase is:
//   1. Z = accum ? (C union-combined with T via accum) : T
//   2. for every position p:
//        mask true at p  -> C[p] = Z[p] (absent if Z absent)
//        mask false at p -> C[p] kept, or deleted when desc.replace
// A value mask tests presence *and* truthiness; a structural mask
// (desc.mask_structure) tests presence only; desc.mask_complement flips the
// test.  `NoMask` means "all positions writable" (complement: none).
#pragma once

#include <bit>
#include <type_traits>
#include <vector>

#include "graphblas/bitmap.hpp"
#include "graphblas/context.hpp"
#include "graphblas/descriptor.hpp"
#include "graphblas/matrix.hpp"
#include "graphblas/types.hpp"
#include "graphblas/vector.hpp"

namespace grb {

/// Tag: operation runs unmasked (GrB_NULL mask).
struct NoMask {};

/// Tag: results assign rather than accumulate (GrB_NULL accum).
struct NoAccumulate {};

namespace detail {

template <typename Mask>
inline constexpr bool is_no_mask_v = std::is_same_v<std::decay_t<Mask>, NoMask>;

template <typename Accum>
inline constexpr bool is_no_accum_v =
    std::is_same_v<std::decay_t<Accum>, NoAccumulate>;

/// Point query against a vector mask under descriptor flags.  Probing cost
/// depends on the mask's storage representation:
///   - dense (word-packed bitmap) representation: O(1) bit test per point
///     probe, and — through writable_word — one 64-lane word per bulk
///     probe, which is the structural-mask fast path of the dense kernels;
///   - sparse with every position stored (the fully-populated boolean
///     filters of delta-stepping): direct subscript into the value array;
///   - sparse otherwise: binary search per probe.
template <typename MaskT>
class VectorMaskProbe {
 public:
  VectorMaskProbe(const Vector<MaskT>& mask, const Descriptor& desc)
      : mask_(&mask),
        complement_(desc.mask_complement),
        structural_(desc.mask_structure) {
    if (mask.is_dense()) {
      mode_ = Mode::kBitmap;
      bit_ = mask.dense_bitmap().data();
      val_ = mask.dense_values().data();
    } else if (mask.nvals() == mask.size()) {
      mode_ = Mode::kAllStored;
      val_ = mask.values().data();
    } else {
      mode_ = Mode::kSearch;
    }
  }

  bool operator()(Index i) const {
    return complement_ ? !raw(i) : raw(i);
  }

  /// Bulk probe: a 64-lane writability word for bitmap word `wd`, correct
  /// at every lane set in `candidates` (other lanes unspecified — callers
  /// AND the result against candidate-derived words).  A structural bitmap
  /// mask answers with one whole-word AND-able load; a value bitmap mask
  /// additionally clears stored-but-falsy candidate lanes; the sparse modes
  /// fall back to one raw probe per candidate, exactly the per-position
  /// cost the point query already paid.
  BitmapWord writable_word(std::size_t wd, BitmapWord candidates) const {
    BitmapWord t;
    switch (mode_) {
      case Mode::kBitmap:
        t = bit_[wd];
        if (!structural_) {
          bitmap_for_each_in_word(
              t & candidates, static_cast<Index>(wd) * kBitmapWordBits,
              [&](Index i) {
                if (val_[i] == storage_of_t<MaskT>(MaskT(0))) {
                  t &= ~(BitmapWord{1} << (i & 63));
                }
              });
        }
        break;
      case Mode::kAllStored:
        if (structural_) {
          t = ~BitmapWord{0};
        } else {
          t = 0;
          bitmap_for_each_in_word(
              candidates, static_cast<Index>(wd) * kBitmapWordBits,
              [&](Index i) {
                if (val_[i] != storage_of_t<MaskT>(MaskT(0))) {
                  t |= BitmapWord{1} << (i & 63);
                }
              });
        }
        break;
      default:
        t = 0;
        bitmap_for_each_in_word(
            candidates, static_cast<Index>(wd) * kBitmapWordBits,
            [&](Index i) {
              if (raw(i)) t |= BitmapWord{1} << (i & 63);
            });
    }
    return complement_ ? ~t : t;
  }

 private:
  /// Mask truth before descriptor complement.
  bool raw(Index i) const {
    switch (mode_) {
      case Mode::kBitmap:
        return bitmap_test(bit_, i) &&
               (structural_ || val_[i] != storage_of_t<MaskT>(MaskT(0)));
      case Mode::kAllStored:
        return structural_ || val_[i] != storage_of_t<MaskT>(MaskT(0));
      default:
        if (structural_) return mask_->has_element(i);
        auto v = mask_->extract_element(i);
        return v.has_value() && *v != MaskT(0);
    }
  }

  enum class Mode { kBitmap, kAllStored, kSearch };
  const Vector<MaskT>* mask_;
  const BitmapWord* bit_ = nullptr;
  const storage_of_t<MaskT>* val_ = nullptr;
  bool complement_;
  bool structural_;
  Mode mode_ = Mode::kSearch;
};

/// Point query against a matrix mask under descriptor flags.
template <typename MaskT>
class MatrixMaskProbe {
 public:
  MatrixMaskProbe(const Matrix<MaskT>& mask, const Descriptor& desc)
      : mask_(&mask),
        complement_(desc.mask_complement),
        structural_(desc.mask_structure) {}

  bool operator()(Index r, Index c) const {
    bool t = false;
    auto v = mask_->extract_element(r, c);
    if (structural_) {
      t = v.has_value();
    } else {
      t = v.has_value() && *v != MaskT(0);
    }
    return complement_ ? !t : t;
  }

 private:
  const Matrix<MaskT>* mask_;
  bool complement_;
  bool structural_;
};

struct AlwaysTrueProbe {
  constexpr bool operator()(Index) const { return true; }
  constexpr bool operator()(Index, Index) const { return true; }
};
struct AlwaysFalseProbe {
  constexpr bool operator()(Index) const { return false; }
  constexpr bool operator()(Index, Index) const { return false; }
};

/// Bulk (64-lane) probe evaluation for bitmap word `wd`: the word-packed
/// kernels apply the mask one word at a time instead of one position at a
/// time.  Lanes outside `candidates` are unspecified — every caller ANDs
/// the result (or its complement) against words derived from candidates,
/// whose padding/absent lanes are zero, so unspecified lanes never reach
/// an output.  No-mask probes are whole-word constants; a VectorMaskProbe
/// answers through its writable_word (one AND-able load for structural
/// bitmap masks); anything else degrades to one point probe per candidate,
/// the same cost the positional kernels paid per candidate before.
template <typename Probe>
inline BitmapWord probe_writable_word(const Probe& probe, std::size_t wd,
                                      BitmapWord candidates) {
  if constexpr (std::is_same_v<Probe, AlwaysTrueProbe>) {
    (void)probe;
    (void)wd;
    (void)candidates;
    return ~BitmapWord{0};
  } else if constexpr (std::is_same_v<Probe, AlwaysFalseProbe>) {
    (void)probe;
    (void)wd;
    (void)candidates;
    return BitmapWord{0};
  } else if constexpr (requires { probe.writable_word(wd, candidates); }) {
    return probe.writable_word(wd, candidates);
  } else {
    BitmapWord t = 0;
    bitmap_for_each_in_word(candidates,
                            static_cast<Index>(wd) * kBitmapWordBits,
                            [&](Index i) {
                              if (probe(i)) t |= BitmapWord{1} << (i & 63);
                            });
    return t;
  }
}

/// Resolves (mask, desc) to a concrete probe type and invokes `f` with it.
/// Operations use this to build the probe *once* and share it between the
/// kernel (mask push-down: skip non-writable positions while computing) and
/// the write phase — positions the probe rejects either keep the old output
/// value or are deleted under replace, so their computed values are never
/// observable and the kernel may skip them outright.
template <typename Mask, typename F>
decltype(auto) with_vector_probe(const Mask& mask, const Descriptor& desc,
                                 Index out_size, F&& f) {
  if constexpr (is_no_mask_v<Mask>) {
    (void)mask;
    (void)out_size;
    if (desc.mask_complement) {
      // Complement of "no mask" (all true) is all false: nothing writable.
      return f(AlwaysFalseProbe{});
    }
    return f(AlwaysTrueProbe{});
  } else {
    check_size_match(mask.size(), out_size, "mask size vs output size");
    return f(VectorMaskProbe<typename Mask::value_type>(mask, desc));
  }
}

// ---------------------------------------------------------------------------
// Vector write phase.
// ---------------------------------------------------------------------------

/// Performs `w<probe> accum= z` with replace semantics.  `probe(i)` decides
/// writability per index; pass AlwaysTrueProbe for no mask.  The merge is
/// staged in ctx-owned buffers that are swapped with w's storage at the
/// end, so steady-state calls recycle capacity instead of reallocating.
///
/// `z_prefiltered` asserts that every entry of z already passed the probe
/// (true when the producing kernel pushed the mask down); the merge then
/// probes only positions present solely in w, instead of re-probing the
/// whole union.
template <typename W, typename Z, typename Probe, typename Accum>
void masked_write_vector(Context& ctx, Vector<W>& w, const Vector<Z>& z,
                         const Probe& probe, const Accum& accum, bool replace,
                         bool z_prefiltered = false) {
  auto& scratch = ctx.get<WriteScratch<storage_of_t<W>>>();
  auto& out_ind = scratch.ind;
  auto& out_val = scratch.val;
  out_ind.clear();
  out_val.clear();
  out_ind.reserve(w.nvals() + z.nvals());
  out_val.reserve(w.nvals() + z.nvals());

  auto wi = w.indices();
  auto wv = w.values();
  auto zi = z.indices();
  auto zv = z.values();
  std::size_t a = 0, b = 0;
  while (a < wi.size() || b < zi.size()) {
    bool in_w = false, in_z = false;
    Index i = 0;
    if (a < wi.size() && (b >= zi.size() || wi[a] <= zi[b])) {
      i = wi[a];
      in_w = true;
      if (b < zi.size() && zi[b] == i) in_z = true;
    } else {
      i = zi[b];
      in_z = true;
    }

    if ((in_z && z_prefiltered) || probe(i)) {
      // Mask true: write Z-after-accum.
      if constexpr (is_no_accum_v<Accum>) {
        if (in_z) {
          out_ind.push_back(i);
          out_val.push_back(static_cast<W>(zv[b]));
        }
      } else {
        if (in_w && in_z) {
          out_ind.push_back(i);
          out_val.push_back(static_cast<W>(accum(wv[a], zv[b])));
        } else if (in_z) {
          out_ind.push_back(i);
          out_val.push_back(static_cast<W>(zv[b]));
        } else {  // only w
          out_ind.push_back(i);
          out_val.push_back(wv[a]);
        }
      }
    } else {
      // Mask false: keep old value unless replace.
      if (!replace && in_w) {
        out_ind.push_back(i);
        out_val.push_back(wv[a]);
      }
    }

    if (in_w) ++a;
    if (in_z) ++b;
  }
  w.swap_storage(out_ind, out_val);
  ctx.manage_representation(w);
}

/// Rvalue overload: when there is no mask and no accumulator, every
/// position is writable and takes z's entry (or absence), so the merge is
/// the identity map — steal z's storage instead of copying it.  This is
/// the shape of most calls on the delta-stepping hot path (unmasked
/// replace-mode vxm / eWiseAdd / apply).
template <typename W, typename Z, typename Probe, typename Accum>
void masked_write_vector(Context& ctx, Vector<W>& w, Vector<Z>&& z,
                         const Probe& probe, const Accum& accum, bool replace,
                         bool z_prefiltered = false) {
  if constexpr (std::is_same_v<W, Z> &&
                std::is_same_v<Probe, AlwaysTrueProbe> &&
                is_no_accum_v<Accum>) {
    (void)probe;
    (void)replace;
    (void)z_prefiltered;
    w = std::move(z);
    ctx.manage_representation(w);
  } else {
    masked_write_vector(ctx, w, z, probe, accum, replace, z_prefiltered);
  }
}

/// Dense-result write phase: performs `w<probe> accum= z` where z is a
/// dense-staged kernel result — bit i of z.bit word i>>6 marks presence,
/// `z.val[i]` holds the value, `znnz` counts the set bits.  The stage's
/// buffers are consumed (swapped into w on the fast path, or recycled by
/// the caller's next reset); w ends in the dense representation and is
/// then handed to the Context's density policy, which may demote it.
///
/// The merge runs one bitmap word (64 positions) at a time: words where
/// neither w nor z stores anything are skipped with two loads, the probe
/// is applied through probe_writable_word (one AND for structural bitmap
/// masks), the four write categories (take-z / accum-both / keep-w /
/// drop) are whole-word bit expressions, and only the surviving values are
/// copied, via ctz iteration.  Semantics are exactly masked_write_vector's,
/// position by position — the bit-identity tests compare the two on the
/// same inputs.
template <typename W, typename Z, typename Probe, typename Accum>
void masked_write_vector_dense(Context& ctx, Vector<W>& w,
                               DenseKernelStage<Z>& z, Index znnz,
                               const Probe& probe, const Accum& accum,
                               bool replace, bool z_prefiltered = false) {
  const Index n = w.size();
  // Like the sparse rvalue fast path: W and Z must be the *same element
  // type* (not merely the same storage type) so the adoption cannot skip
  // the value-normalizing casts of the general path (bool vs uchar).
  if constexpr (std::is_same_v<Probe, AlwaysTrueProbe> &&
                is_no_accum_v<Accum> && std::is_same_v<W, Z>) {
    // Every position writable, result is exactly z: adopt the stage's
    // buffers; the stage inherits w's previous dense buffers (capacity
    // ping-pong, like the sparse write scratch).
    (void)replace;
    (void)z_prefiltered;
    ++ctx.dense_writes;
    w.swap_dense_storage(z.bit, z.val, znnz);
    ctx.manage_representation(w);
    return;
  } else {
    auto& out = ctx.get<DenseWriteStage<storage_of_t<W>>>();
    out.reset(n);
    Index nnz = 0;

    const bool w_dense = w.is_dense();
    auto wbit = w_dense ? w.dense_bitmap() : std::span<const BitmapWord>{};
    auto wdv = w_dense ? w.dense_values()
                       : std::span<const storage_of_t<W>>{};
    auto wi = w_dense ? std::span<const Index>{} : w.indices();
    auto wv = w_dense ? std::span<const storage_of_t<W>>{} : w.values();
    std::size_t a = 0;  // cursor into (wi, wv) when w is sparse

    const std::size_t nwords = bitmap_words(n);
    for (std::size_t wd = 0; wd < nwords; ++wd) {
      const Index base = static_cast<Index>(wd) * kBitmapWordBits;
      const Index bound = base + kBitmapWordBits;
      const BitmapWord zw = z.bit[wd];

      // Presence word for w; a sparse w also remembers its entry range
      // [a0, a) so values can be read back by cursor below.
      BitmapWord ww = 0;
      const std::size_t a0 = a;
      if (w_dense) {
        ww = wbit[wd];
      } else {
        while (a < wi.size() && wi[a] < bound) {
          ww |= BitmapWord{1} << (wi[a] & 63);
          ++a;
        }
      }
      if ((zw | ww) == 0) continue;  // whole-word skip of empty regions

      // Prefiltered z entries are writable by contract, so the probe is
      // only consulted at w-only lanes then — the word analogue of the old
      // per-position `(in_z && z_prefiltered) || probe(i)` short-circuit.
      const BitmapWord pcand = z_prefiltered ? (ww & ~zw) : (zw | ww);
      const BitmapWord pw =
          pcand != 0 ? probe_writable_word(probe, wd, pcand) : 0;
      const BitmapWord writable = z_prefiltered ? (zw | pw) : pw;

      BitmapWord outw;
      if constexpr (is_no_accum_v<Accum>) {
        const BitmapWord takez = zw & writable;
        const BitmapWord keepw = replace ? 0 : (ww & ~writable);
        outw = takez | keepw;
        bitmap_for_each_in_word(takez, base, [&](Index i) {
          out.val[i] = static_cast<W>(static_cast<Z>(z.val[i]));
        });
        if (keepw != 0) {
          if (w_dense) {
            bitmap_for_each_in_word(keepw, base,
                                    [&](Index i) { out.val[i] = wdv[i]; });
          } else {
            for (std::size_t k = a0; k < a; ++k) {
              const Index i = wi[k];
              if (keepw & (BitmapWord{1} << (i & 63))) out.val[i] = wv[k];
            }
          }
        }
      } else {
        const BitmapWord both = ww & zw & writable;
        const BitmapWord zonly = zw & ~ww & writable;
        const BitmapWord wkeep =
            (ww & ~zw & writable) | (replace ? 0 : (ww & ~writable));
        outw = both | zonly | wkeep;
        bitmap_for_each_in_word(zonly, base, [&](Index i) {
          out.val[i] = static_cast<W>(static_cast<Z>(z.val[i]));
        });
        if ((both | wkeep) != 0) {
          if (w_dense) {
            bitmap_for_each_in_word(both, base, [&](Index i) {
              out.val[i] = static_cast<W>(accum(wdv[i], z.val[i]));
            });
            bitmap_for_each_in_word(wkeep, base,
                                    [&](Index i) { out.val[i] = wdv[i]; });
          } else {
            for (std::size_t k = a0; k < a; ++k) {
              const Index i = wi[k];
              const BitmapWord lane = BitmapWord{1} << (i & 63);
              if (both & lane) {
                out.val[i] = static_cast<W>(accum(wv[k], z.val[i]));
              } else if (wkeep & lane) {
                out.val[i] = wv[k];
              }
            }
          }
        }
      }
      out.bit[wd] = outw;
      nnz += static_cast<Index>(std::popcount(outw));
    }
    ++ctx.dense_writes;
    w.swap_dense_storage(out.bit, out.val, nnz);
    ctx.manage_representation(w);
  }
}

/// Dispatches on mask type and invokes masked_write_vector.
template <typename W, typename Z, typename Mask, typename Accum>
void write_vector_result(Context& ctx, Vector<W>& w, const Vector<Z>& z,
                         const Mask& mask, const Accum& accum,
                         const Descriptor& desc) {
  with_vector_probe(mask, desc, w.size(), [&](const auto& probe) {
    masked_write_vector(ctx, w, z, probe, accum, desc.replace);
  });
}

/// Legacy entry point for operations that have no Context parameter.
template <typename W, typename Z, typename Mask, typename Accum>
void write_vector_result(Vector<W>& w, const Vector<Z>& z, const Mask& mask,
                         const Accum& accum, const Descriptor& desc) {
  write_vector_result(default_context(), w, z, mask, accum, desc);
}

// ---------------------------------------------------------------------------
// Matrix write phase.
// ---------------------------------------------------------------------------

template <typename W, typename Z, typename Probe, typename Accum>
void masked_write_matrix(Matrix<W>& w, const Matrix<Z>& z, const Probe& probe,
                         const Accum& accum, bool replace) {
  const Index nrows = w.nrows();
  std::vector<Index> out_ptr(nrows + 1, 0);
  std::vector<Index> out_ind;
  std::vector<storage_of_t<W>> out_val;
  out_ind.reserve(w.nvals() + z.nvals());
  out_val.reserve(w.nvals() + z.nvals());

  for (Index r = 0; r < nrows; ++r) {
    auto wi = w.row_indices(r);
    auto wv = w.row_values(r);
    auto zi = z.row_indices(r);
    auto zv = z.row_values(r);
    std::size_t a = 0, b = 0;
    while (a < wi.size() || b < zi.size()) {
      bool in_w = false, in_z = false;
      Index c = 0;
      if (a < wi.size() && (b >= zi.size() || wi[a] <= zi[b])) {
        c = wi[a];
        in_w = true;
        if (b < zi.size() && zi[b] == c) in_z = true;
      } else {
        c = zi[b];
        in_z = true;
      }

      if (probe(r, c)) {
        if constexpr (is_no_accum_v<Accum>) {
          if (in_z) {
            out_ind.push_back(c);
            out_val.push_back(static_cast<W>(zv[b]));
          }
        } else {
          if (in_w && in_z) {
            out_ind.push_back(c);
            out_val.push_back(static_cast<W>(accum(wv[a], zv[b])));
          } else if (in_z) {
            out_ind.push_back(c);
            out_val.push_back(static_cast<W>(zv[b]));
          } else {
            out_ind.push_back(c);
            out_val.push_back(wv[a]);
          }
        }
      } else {
        if (!replace && in_w) {
          out_ind.push_back(c);
          out_val.push_back(wv[a]);
        }
      }

      if (in_w) ++a;
      if (in_z) ++b;
    }
    out_ptr[r + 1] = static_cast<Index>(out_ind.size());
  }
  w.adopt(std::move(out_ptr), std::move(out_ind), std::move(out_val));
}

template <typename W, typename Z, typename Mask, typename Accum>
void write_matrix_result(Matrix<W>& w, const Matrix<Z>& z, const Mask& mask,
                         const Accum& accum, const Descriptor& desc) {
  if constexpr (is_no_mask_v<Mask>) {
    if (desc.mask_complement) {
      masked_write_matrix(w, z, AlwaysFalseProbe{}, accum, desc.replace);
    } else {
      masked_write_matrix(w, z, AlwaysTrueProbe{}, accum, desc.replace);
    }
  } else {
    check_size_match(mask.nrows(), w.nrows(), "mask rows vs output rows");
    check_size_match(mask.ncols(), w.ncols(), "mask cols vs output cols");
    MatrixMaskProbe<typename Mask::value_type> probe(mask, desc);
    masked_write_matrix(w, z, probe, accum, desc.replace);
  }
}

/// Rvalue overload: unmasked non-accumulating writes are C := Z, so z's
/// CSR arrays move straight into the output (the A_L/A_H filter setup of
/// delta-stepping is four such applies over the whole matrix).
template <typename W, typename Z, typename Mask, typename Accum>
void write_matrix_result(Matrix<W>& w, Matrix<Z>&& z, const Mask& mask,
                         const Accum& accum, const Descriptor& desc) {
  if constexpr (std::is_same_v<W, Z> && is_no_mask_v<Mask> &&
                is_no_accum_v<Accum>) {
    if (!desc.mask_complement) {
      w = std::move(z);
      return;
    }
  }
  write_matrix_result(w, z, mask, accum, desc);
}

}  // namespace detail
}  // namespace grb
