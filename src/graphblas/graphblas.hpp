// graphblas.hpp — umbrella header for the grb:: GraphBLAS-style substrate.
//
// Include this to get the full public API:
//   - grb::Vector<T>, grb::Matrix<T>         (sparse containers)
//   - operators / monoids / semirings        (ops.hpp, monoid.hpp, semiring.hpp)
//   - grb::Descriptor, grb::NoMask, grb::NoAccumulate
//   - grb::Context / grb::default_context()  (reusable operation workspaces)
//   - operations: apply, ewise_add, ewise_mult, vxm, mxv, mxm, reduce,
//                 select, extract, assign, transpose
#pragma once

#include "graphblas/context.hpp"
#include "graphblas/descriptor.hpp"
#include "graphblas/mask.hpp"
#include "graphblas/matrix.hpp"
#include "graphblas/monoid.hpp"
#include "graphblas/operations/apply.hpp"
#include "graphblas/operations/assign.hpp"
#include "graphblas/operations/ewise.hpp"
#include "graphblas/operations/extract.hpp"
#include "graphblas/operations/kronecker.hpp"
#include "graphblas/operations/mxm.hpp"
#include "graphblas/operations/mxv.hpp"
#include "graphblas/operations/reduce.hpp"
#include "graphblas/operations/select.hpp"
#include "graphblas/operations/transpose.hpp"
#include "graphblas/ops.hpp"
#include "graphblas/semiring.hpp"
#include "graphblas/types.hpp"
#include "graphblas/vector.hpp"
