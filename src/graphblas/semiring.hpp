// semiring.hpp — semirings: an additive monoid paired with a multiplicative
// binary operator, analogous to GrB_Semiring.
#pragma once

#include "graphblas/monoid.hpp"
#include "graphblas/ops.hpp"
#include "graphblas/types.hpp"

namespace grb {

/// Generic semiring.  `AddMonoid` supplies add() and zero(); `MultOp`
/// supplies mult().  vxm/mxv/mxm accumulate mult-products with add.
template <typename AddMonoid, typename MultOp>
struct Semiring {
  using value_type = typename AddMonoid::value_type;
  AddMonoid add_monoid{};
  MultOp mult_op{};

  template <typename A, typename B>
  constexpr auto mult(const A& a, const B& b) const {
    return mult_op(a, b);
  }
  constexpr value_type add(const value_type& a, const value_type& b) const {
    return add_monoid(a, b);
  }
  constexpr value_type zero() const { return add_monoid.identity(); }
};

/// Arithmetic semiring (+, *): ordinary linear algebra.
template <typename T>
constexpr auto plus_times_semiring() {
  return Semiring<Monoid<T, Plus<T>>, Times<T>>{plus_monoid<T>(), Times<T>{}};
}

/// Tropical / shortest-path semiring (min, +).  The `+` saturates at
/// infinity so integral weight types do not wrap around.
/// This is the paper's `min_plus_sring` (Fig. 2, lines 43 and 60).
template <typename T>
constexpr auto min_plus_semiring() {
  return Semiring<Monoid<T, Min<T>>, PlusSaturating<T>>{min_monoid<T>(),
                                                        PlusSaturating<T>{}};
}

/// (max, +) semiring: longest/critical path on DAGs.
template <typename T>
constexpr auto max_plus_semiring() {
  return Semiring<Monoid<T, Max<T>>, Plus<T>>{max_monoid<T>(), Plus<T>{}};
}

/// (min, max) semiring: minimax / bottleneck path.
template <typename T>
constexpr auto min_max_semiring() {
  return Semiring<Monoid<T, Min<T>>, Max<T>>{min_monoid<T>(), Max<T>{}};
}

/// Boolean semiring (||, &&): reachability / BFS frontier expansion.
template <typename T>
constexpr auto lor_land_semiring() {
  return Semiring<Monoid<T, LogicalOr<T>>, LogicalAnd<T>>{lor_monoid<T>(),
                                                          LogicalAnd<T>{}};
}

/// (min, first) semiring: parent selection in BFS-like traversals.
template <typename T>
constexpr auto min_first_semiring() {
  return Semiring<Monoid<T, Min<T>>, First<T>>{min_monoid<T>(), First<T>{}};
}

/// (min, second) semiring: propagate the matrix value on min.
template <typename T>
constexpr auto min_second_semiring() {
  return Semiring<Monoid<T, Min<T>>, Second<T>>{min_monoid<T>(), Second<T>{}};
}

/// (plus, first)/(plus, second) semirings: degree-style aggregations.
template <typename T>
constexpr auto plus_first_semiring() {
  return Semiring<Monoid<T, Plus<T>>, First<T>>{plus_monoid<T>(), First<T>{}};
}

template <typename T>
constexpr auto plus_second_semiring() {
  return Semiring<Monoid<T, Plus<T>>, Second<T>>{plus_monoid<T>(),
                                                 Second<T>{}};
}

}  // namespace grb
