// monoid.hpp — monoids: associative binary operators with identity,
// analogous to GrB_Monoid.
#pragma once

#include "graphblas/ops.hpp"
#include "graphblas/types.hpp"

namespace grb {

/// Generic monoid from a binary op and an identity value.
/// The op must be associative; commutativity is required by reductions that
/// reassociate freely (all of ours do).
template <typename T, typename BinaryOp>
struct Monoid {
  using value_type = T;
  BinaryOp op{};
  T identity_value{};

  constexpr T operator()(const T& a, const T& b) const { return op(a, b); }
  constexpr T identity() const { return identity_value; }
};

/// PlusMonoid: (T, +, 0).
template <typename T>
constexpr Monoid<T, Plus<T>> plus_monoid() {
  return {Plus<T>{}, T(0)};
}

/// TimesMonoid: (T, *, 1).
template <typename T>
constexpr Monoid<T, Times<T>> times_monoid() {
  return {Times<T>{}, T(1)};
}

/// MinMonoid: (T, min, +inf).  The additive monoid of the (min,+) semiring
/// at the heart of SSSP.
template <typename T>
constexpr Monoid<T, Min<T>> min_monoid() {
  return {Min<T>{}, infinity_value<T>()};
}

/// MaxMonoid: (T, max, lowest).
template <typename T>
constexpr Monoid<T, Max<T>> max_monoid() {
  return {Max<T>{}, std::numeric_limits<T>::lowest()};
}

/// LorMonoid: (bool-ish, ||, 0).  Used by `S = S ∪ tBi` in delta-stepping.
template <typename T>
constexpr Monoid<T, LogicalOr<T>> lor_monoid() {
  return {LogicalOr<T>{}, T(0)};
}

/// LandMonoid: (bool-ish, &&, 1).
template <typename T>
constexpr Monoid<T, LogicalAnd<T>> land_monoid() {
  return {LogicalAnd<T>{}, T(1)};
}

}  // namespace grb
