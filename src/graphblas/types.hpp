// types.hpp — fundamental types, error model, and concepts for the grb::
// GraphBLAS-style substrate.
//
// This library implements the subset (and a bit more) of the GraphBLAS C API
// semantics needed by the linear-algebraic delta-stepping SSSP of
// Sridhar et al. (IPDPSW'19), in the template style of GBTL.  Sparse objects
// store *structural* zeros implicitly: an index either holds a value or is
// absent ("no stored element"), independent of the value itself.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <type_traits>

namespace grb {

/// Index type for vector positions and matrix coordinates.
/// GraphBLAS uses GrB_Index (uint64_t); 64 bits keeps us faithful.
using Index = std::uint64_t;

/// In-memory element type for T.  bool maps to unsigned char so containers
/// avoid the std::vector<bool> proxy specialization (no data(), no spans);
/// every other type is stored as itself.  Conversions at the boundary are
/// value-preserving for bool.
template <typename T>
using storage_of_t =
    std::conditional_t<std::is_same_v<T, bool>, unsigned char, T>;

/// Sentinel used by some convenience APIs to mean "all indices".
inline constexpr Index all_indices = std::numeric_limits<Index>::max();

// ---------------------------------------------------------------------------
// Error model.  The GraphBLAS C API returns GrB_Info codes; a C++ library is
// better served by exceptions carrying the same taxonomy.
// ---------------------------------------------------------------------------

/// Base class for all GraphBLAS errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Mismatched object dimensions (GrB_DIMENSION_MISMATCH).
class DimensionMismatch : public Error {
 public:
  explicit DimensionMismatch(const std::string& what)
      : Error("dimension mismatch: " + what) {}
};

/// Index out of bounds (GrB_INDEX_OUT_OF_BOUNDS).
class IndexOutOfBounds : public Error {
 public:
  explicit IndexOutOfBounds(const std::string& what)
      : Error("index out of bounds: " + what) {}
};

/// Reading an element that is not stored (GrB_NO_VALUE).
class NoValue : public Error {
 public:
  explicit NoValue(const std::string& what) : Error("no value: " + what) {}
};

/// Invalid argument combination (GrB_INVALID_VALUE / GrB_NULL_POINTER).
class InvalidValue : public Error {
 public:
  explicit InvalidValue(const std::string& what)
      : Error("invalid value: " + what) {}
};

/// Output object aliased with an input where the operation forbids it.
class AliasError : public Error {
 public:
  explicit AliasError(const std::string& what) : Error("aliasing: " + what) {}
};

// ---------------------------------------------------------------------------
// Concepts.
// ---------------------------------------------------------------------------

/// A unary operator: T -> U via operator().
template <typename Op, typename T>
concept UnaryOpFor = requires(Op op, T a) {
  { op(a) };
};

/// A binary operator: (T, U) -> V via operator().
template <typename Op, typename T, typename U = T>
concept BinaryOpFor = requires(Op op, T a, U b) {
  { op(a, b) };
};

/// An index-aware unary predicate used by select(): (value, index...) -> bool.
template <typename Op, typename T>
concept VectorSelectOpFor = requires(Op op, T a, Index i) {
  { op(a, i) } -> std::convertible_to<bool>;
};

template <typename Op, typename T>
concept MatrixSelectOpFor = requires(Op op, T a, Index i, Index j) {
  { op(a, i, j) } -> std::convertible_to<bool>;
};

/// Monoid: associative binary op with an identity element.
template <typename M, typename T>
concept MonoidFor = requires(M m, T a, T b) {
  { m(a, b) } -> std::convertible_to<T>;
  { m.identity() } -> std::convertible_to<T>;
};

/// Semiring: additive monoid + multiplicative binary op.
template <typename S, typename A, typename B>
concept SemiringFor = requires(S s, A a, B b) {
  { s.mult(a, b) };
  { s.add(s.mult(a, b), s.mult(a, b)) };
  { s.zero() };
};

// ---------------------------------------------------------------------------
// Infinity helpers.  Delta-stepping initializes tentative distances to
// "infinity"; for integral weight types we use max() as the conventional
// saturating infinity.
// ---------------------------------------------------------------------------

template <typename T>
constexpr T infinity_value() {
  if constexpr (std::numeric_limits<T>::has_infinity) {
    return std::numeric_limits<T>::infinity();
  } else {
    return std::numeric_limits<T>::max();
  }
}

/// Saturating add: infinity + x == infinity (prevents integral overflow in
/// the (min,+) semiring).
template <typename T>
constexpr T saturating_add(T a, T b) {
  if constexpr (std::numeric_limits<T>::has_infinity) {
    return a + b;
  } else {
    const T inf = infinity_value<T>();
    if (a == inf || b == inf) return inf;
    if constexpr (std::is_unsigned_v<T>) {
      return (b > inf - a) ? inf : static_cast<T>(a + b);
    } else {
      if (a > 0 && b > inf - a) return inf;
      return static_cast<T>(a + b);
    }
  }
}

namespace detail {

/// Throws DimensionMismatch unless a == b.
inline void check_size_match(Index a, Index b, const char* where) {
  if (a != b) {
    throw DimensionMismatch(std::string(where) + ": " + std::to_string(a) +
                            " vs " + std::to_string(b));
  }
}

inline void check_index(Index i, Index bound, const char* where) {
  if (i >= bound) {
    throw IndexOutOfBounds(std::string(where) + ": " + std::to_string(i) +
                           " >= " + std::to_string(bound));
  }
}

}  // namespace detail

}  // namespace grb
