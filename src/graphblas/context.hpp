// context.hpp — grb::Context, the reusable operation-workspace engine.
//
// Every push-style kernel in the substrate needs the same trio of scratch
// structures: a dense scatter accumulator, the touched-index list that makes
// it sparsely resettable, and result staging buffers for the write phase.
// Allocating and zero-filling those per call costs O(n) even when the input
// holds a handful of entries — which is exactly the delta-stepping hot path
// (light-phase frontiers of a few vertices on graphs of millions).  A
// Context owns these buffers and survives across calls, so steady-state
// operations cost O(work), not O(n):
//
//   - ScatterAccumulator::reset clears only the entries touched by the
//     previous call (O(previous output), not O(n));
//   - extraction switches between sparse (sort the touched list) and dense
//     (sweep the bitmap in index order) modes based on output density;
//   - the write phase swaps its staging buffers with the output vector's
//     storage, so capacity ping-pongs between them instead of being
//     reallocated.
//
// Operations take a Context& as their first argument; the legacy signatures
// forward to a thread-local default_context(), so existing callers (and the
// C API, which has no context parameter) get workspace reuse transparently.
// A Context is NOT thread-safe: use one per thread, or the per-thread
// default.  The OpenMP vxm kernel partitions its per-thread accumulators
// internally from a single caller-owned Context.
#pragma once

#include <algorithm>
#include <memory>
#include <typeindex>
#include <utility>
#include <vector>

#include "graphblas/bitmap.hpp"
#include "graphblas/types.hpp"

namespace grb {

namespace detail {

/// Dense scatter accumulator with sparse reset.  `occupied` doubles as the
/// structure of the result; `touched` records which entries must be cleared
/// before the next use, making reset O(|touched|) instead of O(n).
/// `value` is never bulk-initialized: `occupied` guards first touch, so
/// stale values behind a zero bit are unreachable.
template <typename Z>
struct ScatterAccumulator {
  std::vector<storage_of_t<Z>> value;
  std::vector<unsigned char> occupied;
  std::vector<Index> touched;  // indices with occupied==1, unsorted

  /// Prepares the accumulator for a product of dimension n.  Steady state
  /// (same n as the previous call) is a sparse clear of the touched set;
  /// only a dimension change pays the full O(n) (re)initialization.
  void reset(Index n) {
    if (occupied.size() != static_cast<std::size_t>(n)) {
      value.resize(n);
      occupied.assign(n, 0);
      touched.clear();
    } else {
      for (Index j : touched) occupied[j] = 0;
      touched.clear();
    }
  }

  template <typename SR>
  void scatter(Index j, const Z& x, const SR& sr) {
    if (!occupied[j]) {
      occupied[j] = 1;
      value[j] = x;
      touched.push_back(j);
    } else {
      value[j] = sr.add(static_cast<Z>(value[j]), x);
    }
  }

  /// Emits (index, value) pairs in ascending index order into `out_ind` /
  /// `out_val`, choosing between sorting the touched list (sparse outputs)
  /// and sweeping the bitmap (dense outputs).  The bitmap sweep is O(n) but
  /// branch-predictable and sort-free; it wins once the output holds more
  /// than about an eighth of all positions.  The touched list is preserved
  /// either way so the next reset stays sparse.
  void extract_sorted(Index n, std::vector<Index>& out_ind,
                      std::vector<storage_of_t<Z>>& out_val) {
    out_ind.reserve(out_ind.size() + touched.size());
    out_val.reserve(out_val.size() + touched.size());
    if (touched.size() >= static_cast<std::size_t>(n / 8)) {
      for (Index j = 0; j < n; ++j) {
        if (occupied[j]) {
          out_ind.push_back(j);
          out_val.push_back(value[j]);
        }
      }
    } else {
      std::sort(touched.begin(), touched.end());
      for (Index j : touched) {
        out_ind.push_back(j);
        out_val.push_back(value[j]);
      }
    }
  }
};

/// Staging buffers for the masked write phase (see mask.hpp).  Keyed by the
/// output's storage type; distinct from the kernel accumulator slots so the
/// two never alias within one operation.
template <typename S>
struct WriteScratch {
  std::vector<Index> ind;
  std::vector<S> val;
};

/// Dense (word-packed bitmap + values) staging for kernels that compute a
/// dense-representation result (apply/select/ewise over dense inputs).
/// reset() zeroes the bitmap only — bitmap_words(n) words, so the clear
/// itself reads 64x less memory than the old byte bitmap — while values
/// are guarded by the bits, exactly like ScatterAccumulator.
template <typename Z>
struct DenseKernelStage {
  std::vector<BitmapWord> bit;
  std::vector<storage_of_t<Z>> val;
  void reset(Index n) {
    bit.assign(bitmap_words(n), 0);
    val.resize(n);
  }
};

/// Dense staging for the *write* phase of a dense result (mask/accum merge
/// with the old output).  A distinct template from DenseKernelStage so the
/// kernel's stage and the write stage never alias within one operation,
/// even when Z == W.
template <typename S>
struct DenseWriteStage {
  std::vector<BitmapWord> bit;
  std::vector<S> val;
  void reset(Index n) {
    bit.assign(bitmap_words(n), 0);
    val.resize(n);
  }
};

/// Per-thread accumulators plus merge staging for the OpenMP push kernel.
/// Each thread scatters into its own accumulator; threads then merge
/// disjoint index ranges of all accumulators into `merged`, collecting each
/// range's indices (sorted per range) in `range_ind`.  Concatenating ranges
/// in order yields a fully sorted result without a global sort.
template <typename Z>
struct ThreadScatterPool {
  std::vector<ScatterAccumulator<Z>> local;
  ScatterAccumulator<Z> merged;
  std::vector<std::vector<Index>> range_ind;
};

}  // namespace detail

/// Reusable operation workspace: a heterogeneous registry of scratch
/// structures, created on first use and reused for the lifetime of the
/// Context.  Lookup is a linear scan over a handful of type slots —
/// negligible next to any kernel, and the returned references are stable
/// (slots hold pointers, not inline objects).
class Context {
 public:
  /// Returns the Context-owned instance of T, default-constructing it on
  /// first request.  T identifies the workspace role as well as the element
  /// type (e.g. ScatterAccumulator<double> vs WriteScratch<double>).
  template <typename T>
  T& get() {
    const std::type_index key(typeid(T));
    for (auto& slot : slots_) {
      if (slot.first == key) return *static_cast<T*>(slot.second.get());
    }
    auto owned = std::make_shared<T>();
    T& ref = *owned;
    slots_.emplace_back(key, std::move(owned));
    return ref;
  }

  /// Releases every workspace buffer (memory pressure relief); the Context
  /// remains usable and will re-grow on demand.
  void release() { slots_.clear(); }

  /// Input nvals at/above which vxm switches to the OpenMP per-thread
  /// accumulator kernel (when built with DSG_HAVE_OPENMP).  Below it, the
  /// serial kernel's lack of merge overhead wins.  Tests lower this to
  /// exercise the parallel path on small inputs.
  Index vxm_parallel_threshold = 4096;

  /// Input nvals at/above which the point-wise vector ops (apply / select
  /// / ewise_add / ewise_mult) run their OpenMP two-pass kernels.  The
  /// parallel kernels emit entries in exactly the serial order, so results
  /// are bit-identical either way.  Tests lower this to exercise the
  /// parallel path on small inputs.
  Index pointwise_parallel_threshold = 16384;

  // --- Storage-representation policy (see Vector::to_dense/to_sparse). -----
  //
  // Every vector write phase ends with manage_representation(w): a vector
  // whose density crosses dense_promote_density switches to the bitmap
  // representation; a dense vector falling to dense_demote_density or below
  // switches back.  The band between the two thresholds is hysteresis — a
  // vector hovering near one boundary keeps its current form instead of
  // paying an O(n) conversion per operation.  Representation never changes
  // results (pinned by tests/test_representation.cpp), so auto_representation
  // exists only for benchmarks that need to measure one path in isolation.

  /// Master switch for automatic representation management.
  bool auto_representation = true;
  /// Density at/above which a sparse vector is promoted to dense.
  double dense_promote_density = 0.5;
  /// Density at/below which a dense vector is demoted to sparse.  Must be
  /// strictly below dense_promote_density for the hysteresis band to exist.
  double dense_demote_density = 0.25;

  /// Estimated *output* density below which select/apply over a dense input
  /// compact straight into the sparse form instead of staging a dense
  /// result.  The dense stage sweeps the whole index domain twice (kernel +
  /// write) no matter how few entries survive, so a low-selectivity filter
  /// — bucket extraction keeping a thin [lo, hi) slice of t — is better
  /// served by ctz-compaction; the measured crossover on the
  /// spmspv_pointwise select_range row sits near 40% output density.  The
  /// kernels sample the input to estimate selectivity (see
  /// estimate_keep_fraction in select.hpp); results are bit-identical
  /// either way.  0 disables the compacted path, 1 forces it.
  double dense_output_crossover = 0.4;

  /// Instrumentation: number of vector write phases that installed a
  /// dense-representation result (before any policy demotion).  With
  /// auto_representation = false and no explicitly densified inputs this
  /// must stay 0 — tests/test_representation.cpp pins the
  /// bench_solver_batch "representation off" leg with it.
  std::size_t dense_writes = 0;

  /// Applies the density policy to `v` (any type with size/density/
  /// is_dense/to_dense/to_sparse — templated to keep this header free of a
  /// vector.hpp include).
  template <typename Vec>
  void manage_representation(Vec& v) const {
#ifdef DSG_AUDIT_INVARIANTS
    // Every vector write phase ends here, making this the natural audit
    // boundary: the result the next kernel will consume is checked before
    // any representation change, and the converted form after (conversion
    // bugs would otherwise hide behind a clean pre-image).
    v.check_invariants("write-phase result");
#endif
    if (!auto_representation || v.size() == 0) return;
    const double d = v.density();
    if (v.is_dense()) {
      if (d <= dense_demote_density) v.to_sparse();
    } else if (d >= dense_promote_density) {
      v.to_dense();
    }
#ifdef DSG_AUDIT_INVARIANTS
    v.check_invariants("post-conversion");
#endif
  }

 private:
  std::vector<std::pair<std::type_index, std::shared_ptr<void>>> slots_;
};

/// The thread-local Context used by operations when the caller does not
/// pass one explicitly.  Gives signature-stable callers (tests, the C API)
/// cross-call workspace reuse for free; long-lived pipelines that want
/// deterministic buffer ownership create their own Context.
inline Context& default_context() {
  thread_local Context ctx;
  return ctx;
}

}  // namespace grb
