// audit.hpp — the debug invariant auditor: machine-checked statements of
// the representation invariants the kernels rely on.
//
// Two halves:
//
//   1. The *checkers* — always-compiled free functions over raw spans
//      (check_bitmap, check_sorted_coords, check_csr, check_light_heavy).
//      They throw grb::audit::AuditError on violation and cost at most
//      O(n) (most are O(n/64) or O(nnz)).  Tests call them directly on
//      deliberately corrupted data (tests/test_audit.cpp), and the
//      higher-level hooks below are thin compositions of them.
//
//   2. The *hooks* — call sites guarded by DSG_AUDIT_INVARIANTS (a global
//      CMake option so every TU agrees; see the top-level CMakeLists).
//      With audits on, Vector::check_invariants runs at the end of every
//      vector write phase (Context::manage_representation) and GraphPlan
//      audits its CSR and light/heavy split on materialization.  With
//      audits off the hooks compile to nothing.
//
// The invariants audited here are exactly the ones a single corrupted bit
// silently poisons at serving scale:
//
//   - bitmap zero padding: a set padding bit past size() makes every
//     whole-word AND/popcount kernel over-count (bitmap.hpp's contract);
//   - popcount == nvals: the cached stored-element count drives density
//     policy and extraction sizing;
//   - sorted-unique sparse coordinates: every merge kernel assumes a
//     strictly ascending coordinate stream;
//   - sparse-mirror consistency: a stale mirror served after a dense
//     mutation would hand kernels data from a previous write phase;
//   - CSR monotone row offsets + in-range ascending columns: the row
//     slices handed out by Matrix are only as valid as row_ptr;
//   - exact light/heavy partition: a misfiled edge makes delta-stepping
//     silently wrong (light relaxations assume w <= delta).
#pragma once

#include <bit>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>

#include "graphblas/bitmap.hpp"
#include "graphblas/types.hpp"

namespace grb::audit {

/// An audited invariant does not hold.  Deliberately not a grb::Error:
/// API-boundary code maps grb::Error to recoverable GrB_Info codes, while
/// an AuditError means the *library state* is corrupt — it should reach a
/// test harness or terminate, never be swallowed as a bad-input code.
class AuditError : public std::logic_error {
 public:
  explicit AuditError(const std::string& what)
      : std::logic_error("invariant violated: " + what) {}
};

[[noreturn]] inline void fail(const char* where, const std::string& what) {
  throw AuditError(std::string(where) + ": " + what);
}

/// Bitmap well-formedness for logical dimension n: exactly bitmap_words(n)
/// words, zero padding past position n, and popcount == nvals.  O(n/64).
inline void check_bitmap(std::span<const detail::BitmapWord> words, Index n,
                         Index nvals, const char* where) {
  if (words.size() != detail::bitmap_words(n)) {
    fail(where, "bitmap holds " + std::to_string(words.size()) +
                    " words, dimension " + std::to_string(n) + " needs " +
                    std::to_string(detail::bitmap_words(n)));
  }
  if (!words.empty()) {
    const detail::BitmapWord pad = words.back() & ~detail::bitmap_tail_mask(n);
    if (pad != 0) {
      fail(where, "tail word has nonzero padding bits past position " +
                      std::to_string(n));
    }
  }
  Index count = 0;
  for (const detail::BitmapWord w : words) {
    count += static_cast<Index>(std::popcount(w));
  }
  if (count != nvals) {
    fail(where, "bitmap popcount " + std::to_string(count) +
                    " != stored count " + std::to_string(nvals));
  }
}

/// Sparse-coordinate well-formedness: strictly ascending (sorted, no
/// duplicates), all below the logical dimension, and the values array has
/// matching length.  O(nnz).
inline void check_sorted_coords(std::span<const Index> ind, Index n,
                                std::size_t values_len, const char* where) {
  if (ind.size() != values_len) {
    fail(where, "coordinate/value length mismatch: " +
                    std::to_string(ind.size()) + " vs " +
                    std::to_string(values_len));
  }
  for (std::size_t k = 0; k < ind.size(); ++k) {
    if (ind[k] >= n) {
      fail(where, "coordinate " + std::to_string(ind[k]) + " >= dimension " +
                      std::to_string(n));
    }
    if (k > 0 && ind[k] <= ind[k - 1]) {
      fail(where, "coordinates not strictly ascending at position " +
                      std::to_string(k) + " (" + std::to_string(ind[k - 1]) +
                      " then " + std::to_string(ind[k]) + ")");
    }
  }
}

/// CSR structural well-formedness: nrows+1 monotone non-decreasing row
/// offsets starting at 0 and ending at nnz, column indices in range and
/// strictly ascending within each row, values parallel to columns.
/// O(nrows + nnz).
inline void check_csr(std::span<const Index> row_ptr,
                      std::span<const Index> col_ind, std::size_t values_len,
                      Index nrows, Index ncols, const char* where) {
  if (nrows == 0 && row_ptr.empty()) {
    // Degenerate default-constructed CSR: no offsets array yet.
    if (!col_ind.empty() || values_len != 0) {
      fail(where, "entries stored without row offsets");
    }
    return;
  }
  if (row_ptr.size() != static_cast<std::size_t>(nrows) + 1) {
    fail(where, "row_ptr holds " + std::to_string(row_ptr.size()) +
                    " offsets, expected nrows+1 = " +
                    std::to_string(nrows + 1));
  }
  if (row_ptr.front() != 0) {
    fail(where, "row_ptr[0] = " + std::to_string(row_ptr.front()) + ", not 0");
  }
  if (static_cast<std::size_t>(row_ptr.back()) != col_ind.size()) {
    fail(where, "row_ptr[nrows] = " + std::to_string(row_ptr.back()) +
                    " != nnz = " + std::to_string(col_ind.size()));
  }
  if (col_ind.size() != values_len) {
    fail(where, "column/value length mismatch: " +
                    std::to_string(col_ind.size()) + " vs " +
                    std::to_string(values_len));
  }
  for (Index r = 0; r < nrows; ++r) {
    if (row_ptr[r + 1] < row_ptr[r]) {
      fail(where, "row offsets not monotone at row " + std::to_string(r) +
                      " (" + std::to_string(row_ptr[r]) + " then " +
                      std::to_string(row_ptr[r + 1]) + ")");
    }
    // Checked per row, not implied by front/back: a rise-then-fall
    // offset sequence (e.g. [0, nnz+k, ..., nnz]) keeps both endpoint
    // checks green while the risen row would index past col_ind.
    if (static_cast<std::size_t>(row_ptr[r + 1]) > col_ind.size()) {
      fail(where, "row " + std::to_string(r) + " end offset " +
                      std::to_string(row_ptr[r + 1]) + " > nnz = " +
                      std::to_string(col_ind.size()));
    }
    for (Index k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      if (col_ind[k] >= ncols) {
        fail(where, "row " + std::to_string(r) + " column " +
                        std::to_string(col_ind[k]) + " >= ncols " +
                        std::to_string(ncols));
      }
      if (k > row_ptr[r] && col_ind[k] <= col_ind[k - 1]) {
        fail(where, "row " + std::to_string(r) +
                        " columns not strictly ascending at slot " +
                        std::to_string(k));
      }
    }
  }
}

/// Exact light/heavy partition of a weighted CSR graph at bucket width
/// delta: every light weight is in (0, delta], every heavy weight is
/// > delta, and per row the partition covers exactly the positive-weight
/// entries of the original matrix (zero-weight self-loop entries belong to
/// neither half).  O(nnz).
inline void check_light_heavy(
    std::span<const Index> a_ptr, std::span<const double> a_val,
    std::span<const Index> light_ptr, std::span<const double> light_val,
    std::span<const Index> heavy_ptr, std::span<const double> heavy_val,
    double delta, const char* where) {
  const std::size_t nrows = a_ptr.empty() ? 0 : a_ptr.size() - 1;
  if (light_ptr.size() != a_ptr.size() || heavy_ptr.size() != a_ptr.size()) {
    fail(where, "light/heavy row offsets do not match the matrix dimension");
  }
  for (std::size_t k = 0; k < light_val.size(); ++k) {
    if (!(light_val[k] > 0.0 && light_val[k] <= delta)) {
      fail(where, "light slot " + std::to_string(k) + " holds weight " +
                      std::to_string(light_val[k]) + " outside (0, " +
                      std::to_string(delta) + "]");
    }
  }
  for (std::size_t k = 0; k < heavy_val.size(); ++k) {
    if (!(heavy_val[k] > delta)) {
      fail(where, "heavy slot " + std::to_string(k) + " holds weight " +
                      std::to_string(heavy_val[k]) + " <= delta " +
                      std::to_string(delta));
    }
  }
  for (std::size_t r = 0; r < nrows; ++r) {
    Index expected = 0;
    for (Index k = a_ptr[r]; k < a_ptr[r + 1]; ++k) {
      if (a_val[k] > 0.0) ++expected;
    }
    const Index got = (light_ptr[r + 1] - light_ptr[r]) +
                      (heavy_ptr[r + 1] - heavy_ptr[r]);
    if (got != expected) {
      fail(where, "row " + std::to_string(r) + " partitions " +
                      std::to_string(got) + " edges, matrix has " +
                      std::to_string(expected) + " positive-weight edges");
    }
  }
}

}  // namespace grb::audit
