// vector.hpp — grb::Vector<T>, a sparse vector with sorted coordinate
// storage, analogous to GrB_Vector.
//
// Storage is two parallel arrays (indices ascending, values) — the classic
// compressed sparse vector.  All mutating entry points keep the sort
// invariant; bulk construction goes through build().
#pragma once

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <optional>
#include <ostream>
#include <span>
#include <utility>
#include <vector>

#include "graphblas/ops.hpp"
#include "graphblas/types.hpp"

namespace grb {

template <typename T>
class Vector {
 public:
  using value_type = T;
  using storage_type = storage_of_t<T>;

  Vector() = default;

  /// An empty (no stored elements) vector of logical dimension n.
  explicit Vector(Index n) : size_(n) {}

  /// A vector with every position stored, all equal to `fill`.
  /// This mirrors the dense initialization `t = ∞` in delta-stepping.
  static Vector full(Index n, const T& fill) {
    Vector v(n);
    v.ind_.resize(n);
    std::iota(v.ind_.begin(), v.ind_.end(), Index{0});
    v.val_.assign(n, fill);
    return v;
  }

  /// Builds from (index, value) tuples; duplicates combined with `dup`.
  /// Indices need not be sorted.  Throws IndexOutOfBounds on bad indices.
  template <typename DupOp = Second<T>>
  static Vector build(Index n, std::span<const Index> indices,
                      std::span<const T> values, DupOp dup = DupOp{}) {
    if (indices.size() != values.size()) {
      throw InvalidValue("Vector::build: index/value count mismatch");
    }
    Vector v(n);
    std::vector<std::pair<Index, T>> tuples;
    tuples.reserve(indices.size());
    for (std::size_t k = 0; k < indices.size(); ++k) {
      detail::check_index(indices[k], n, "Vector::build");
      tuples.emplace_back(indices[k], values[k]);
    }
    std::stable_sort(tuples.begin(), tuples.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    v.ind_.reserve(tuples.size());
    v.val_.reserve(tuples.size());
    for (const auto& [i, x] : tuples) {
      if (!v.ind_.empty() && v.ind_.back() == i) {
        v.val_.back() = dup(v.val_.back(), x);
      } else {
        v.ind_.push_back(i);
        v.val_.push_back(x);
      }
    }
    return v;
  }

  /// Logical dimension (GrB_Vector_size).
  Index size() const { return size_; }

  /// Number of stored elements (GrB_Vector_nvals).
  Index nvals() const { return static_cast<Index>(ind_.size()); }

  bool empty() const { return ind_.empty(); }

  /// Removes all stored elements; dimension unchanged (GrB_Vector_clear).
  /// Capacity is retained, so refilling a cleared vector does not allocate.
  void clear() {
    ind_.clear();
    val_.clear();
  }

  /// Pre-allocates storage for n elements without changing contents.
  void reserve(Index n) {
    ind_.reserve(n);
    val_.reserve(n);
  }

  /// Resizes the logical dimension; entries at indices >= n are dropped
  /// (GrB_Vector_resize semantics).
  void resize(Index n) {
    if (n < size_) {
      auto it = std::lower_bound(ind_.begin(), ind_.end(), n);
      auto keep = static_cast<std::size_t>(it - ind_.begin());
      ind_.resize(keep);
      val_.resize(keep);
    }
    size_ = n;
  }

  /// Stores v[i] = x, replacing any existing element
  /// (GrB_Vector_setElement).
  void set_element(Index i, const T& x) {
    detail::check_index(i, size_, "Vector::set_element");
    auto it = std::lower_bound(ind_.begin(), ind_.end(), i);
    auto pos = static_cast<std::size_t>(it - ind_.begin());
    if (it != ind_.end() && *it == i) {
      val_[pos] = x;
    } else {
      ind_.insert(it, i);
      val_.insert(val_.begin() + static_cast<std::ptrdiff_t>(pos), x);
    }
  }

  /// Removes the element at i if present (GrB_Vector_removeElement).
  void remove_element(Index i) {
    detail::check_index(i, size_, "Vector::remove_element");
    auto it = std::lower_bound(ind_.begin(), ind_.end(), i);
    if (it != ind_.end() && *it == i) {
      auto pos = static_cast<std::size_t>(it - ind_.begin());
      ind_.erase(it);
      val_.erase(val_.begin() + static_cast<std::ptrdiff_t>(pos));
    }
  }

  /// True if an element is stored at i.
  bool has_element(Index i) const {
    auto it = std::lower_bound(ind_.begin(), ind_.end(), i);
    return it != ind_.end() && *it == i;
  }

  /// Returns the stored value at i, or nullopt (GrB_Vector_extractElement,
  /// with GrB_NO_VALUE mapped to nullopt).
  std::optional<T> extract_element(Index i) const {
    auto it = std::lower_bound(ind_.begin(), ind_.end(), i);
    if (it == ind_.end() || *it != i) return std::nullopt;
    return static_cast<T>(val_[static_cast<std::size_t>(it - ind_.begin())]);
  }

  /// Value at i or `dflt` when absent — the "implicit value" read used all
  /// over delta-stepping, where absent tentative distances mean ∞.
  T at_or(Index i, const T& dflt) const {
    auto v = extract_element(i);
    return v ? *v : dflt;
  }

  /// Raw sorted views (read-only).  Values are exposed as storage_type
  /// (identical to T except bool -> unsigned char).
  std::span<const Index> indices() const { return ind_; }
  std::span<const storage_type> values() const { return val_; }

  /// Dumps to (indices, values) (GrB_Vector_extractTuples).
  void extract_tuples(std::vector<Index>& indices, std::vector<T>& values) const {
    indices = ind_;
    values.assign(val_.begin(), val_.end());
  }

  /// Invokes f(index, value) over stored elements in ascending index order.
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t k = 0; k < ind_.size(); ++k) {
      f(ind_[k], static_cast<T>(val_[k]));
    }
  }

  /// Densifies into a std::vector with `fill` at absent positions.
  std::vector<T> to_dense(const T& fill = T{}) const {
    std::vector<T> out(size_, fill);
    for (std::size_t k = 0; k < ind_.size(); ++k) {
      out[static_cast<std::size_t>(ind_[k])] = static_cast<T>(val_[k]);
    }
    return out;
  }

  /// Structural + value equality (same dimension, same stored set).
  friend bool operator==(const Vector& a, const Vector& b) {
    return a.size_ == b.size_ && a.ind_ == b.ind_ && a.val_ == b.val_;
  }

  // --- Internal bulk access for kernel implementations. ---------------------
  // Kernels in operations/ construct results as sorted triples directly;
  // adopt() installs them without re-validation beyond debug checks.
  void adopt(std::vector<Index>&& indices, std::vector<storage_type>&& values) {
    ind_ = std::move(indices);
    val_ = std::move(values);
  }
  /// Exchanges storage with caller-owned buffers (sorted triples, like
  /// adopt).  The caller receives the previous storage, so a reused scratch
  /// pair and a vector can ping-pong capacity with zero allocation in
  /// steady state — the write phase in mask.hpp relies on this.
  void swap_storage(std::vector<Index>& indices,
                    std::vector<storage_type>& values) {
    ind_.swap(indices);
    val_.swap(values);
  }
  std::vector<Index>& mutable_indices() { return ind_; }
  std::vector<storage_type>& mutable_values() { return val_; }

 private:
  Index size_ = 0;
  std::vector<Index> ind_;        // ascending
  std::vector<storage_type> val_;  // parallel to ind_
};

/// Debug/logging helper.
template <typename T>
std::ostream& operator<<(std::ostream& os, const Vector<T>& v) {
  os << "Vector(n=" << v.size() << ", nvals=" << v.nvals() << ") {";
  bool first = true;
  v.for_each([&](Index i, const T& x) {
    os << (first ? "" : ", ") << i << ":" << x;
    first = false;
  });
  return os << "}";
}

}  // namespace grb
