// vector.hpp — grb::Vector<T>, a vector with *two* storage representations,
// analogous to GrB_Vector with GxB bitmap/sparse switching.
//
//   - sparse: two parallel arrays (indices ascending, values) — the classic
//     compressed sparse vector.  Cheap to iterate and merge when few
//     positions are stored.
//   - dense: a contiguous value array of logical length n plus a
//     word-packed validity bitmap (64 positions per std::uint64_t word, see
//     bitmap.hpp).  Point access, mask probing, and point-wise kernels
//     become O(1) per position with no sorted-merge overhead, bulk kernels
//     read/AND/popcount 64 positions per load — the right shape for the
//     nearly dense tentative-distance vector of delta-stepping.
//
// The representation is a *performance* property, never a semantic one: the
// stored-element set and values are identical through either form, and
// to_dense()/to_sparse() convert losslessly in place.  grb::Context
// auto-switches outputs by density with hysteresis (see
// Context::manage_representation).
//
// Compatibility: every sorted-coordinate accessor (indices()/values()/
// extract_tuples()) keeps working on a dense vector through a lazily
// materialized *mirror* of the sparse form, so kernels without a dense fast
// path fall back to one canonicalizing O(n) conversion instead of being
// wrong.  Mutating a dense vector invalidates the mirror; the bulk-write
// entry points (adopt / swap_storage / mutable_indices / mutable_values)
// switch the vector back to sparse, because their callers install sorted
// triples.
#pragma once

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <optional>
#include <ostream>
#include <span>
#include <utility>
#include <vector>

#include "graphblas/audit.hpp"
#include "graphblas/bitmap.hpp"
#include "graphblas/ops.hpp"
#include "graphblas/types.hpp"

namespace grb {

/// Which physical representation a Vector currently uses.
enum class StorageKind { kSparse, kDense };

template <typename T>
class Vector {
 public:
  using value_type = T;
  using storage_type = storage_of_t<T>;

  Vector() = default;

  /// An empty (no stored elements) vector of logical dimension n.
  explicit Vector(Index n) : size_(n) {}

  /// A vector with every position stored, all equal to `fill`, built in the
  /// requested representation.  This mirrors the dense initialization
  /// `t = ∞` in delta-stepping, so the default is the dense form; callers
  /// holding a Context should prefer full_vector(ctx, ...), which routes
  /// the choice through the Context's representation policy instead of
  /// hard-coding it.
  static Vector full(Index n, const T& fill,
                     StorageKind kind = StorageKind::kDense) {
    Vector v(n);
    if (kind == StorageKind::kDense) {
      v.bit_.assign(detail::bitmap_words(n), ~detail::BitmapWord{0});
      if (!v.bit_.empty()) v.bit_.back() &= detail::bitmap_tail_mask(n);
      v.dval_.assign(n, static_cast<storage_type>(fill));
      v.dnv_ = n;
      v.kind_ = StorageKind::kDense;
      v.mirror_valid_ = false;
    } else {
      v.ind_.resize(n);
      std::iota(v.ind_.begin(), v.ind_.end(), Index{0});
      v.val_.assign(n, static_cast<storage_type>(fill));
    }
    return v;
  }

  /// Builds from (index, value) tuples; duplicates combined with `dup`.
  /// Indices need not be sorted.  Throws IndexOutOfBounds on bad indices.
  /// The result is sparse; call to_dense() (or let Context auto-switch) for
  /// the bitmap form.
  template <typename DupOp = Second<T>>
  static Vector build(Index n, std::span<const Index> indices,
                      std::span<const T> values, DupOp dup = DupOp{}) {
    if (indices.size() != values.size()) {
      throw InvalidValue("Vector::build: index/value count mismatch");
    }
    Vector v(n);
    std::vector<std::pair<Index, T>> tuples;
    tuples.reserve(indices.size());
    for (std::size_t k = 0; k < indices.size(); ++k) {
      detail::check_index(indices[k], n, "Vector::build");
      tuples.emplace_back(indices[k], values[k]);
    }
    std::stable_sort(tuples.begin(), tuples.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    v.ind_.reserve(tuples.size());
    v.val_.reserve(tuples.size());
    for (const auto& [i, x] : tuples) {
      if (!v.ind_.empty() && v.ind_.back() == i) {
        v.val_.back() = dup(v.val_.back(), x);
      } else {
        v.ind_.push_back(i);
        v.val_.push_back(x);
      }
    }
    return v;
  }

  /// Logical dimension (GrB_Vector_size).
  Index size() const { return size_; }

  /// Number of stored elements (GrB_Vector_nvals).
  Index nvals() const {
    return kind_ == StorageKind::kDense ? dnv_
                                        : static_cast<Index>(ind_.size());
  }

  bool empty() const { return nvals() == 0; }

  // --- Representation control. ----------------------------------------------

  StorageKind storage_kind() const { return kind_; }
  bool is_dense() const { return kind_ == StorageKind::kDense; }

  /// Stored-element fraction in [0, 1]; 0 for a zero-dimension vector.
  double density() const {
    return size_ == 0 ? 0.0
                      : static_cast<double>(nvals()) /
                            static_cast<double>(size_);
  }

  /// Converts in place to the dense (bitmap) representation.  O(n); no-op
  /// when already dense.  Logical content is unchanged.
  void to_dense() {
    if (kind_ == StorageKind::kDense) return;
    bit_.assign(detail::bitmap_words(size_), 0);
    dval_.resize(size_);
    for (std::size_t k = 0; k < ind_.size(); ++k) {
      const Index i = ind_[k];
      detail::bitmap_set(bit_.data(), i);
      dval_[i] = val_[k];
    }
    dnv_ = static_cast<Index>(ind_.size());
    kind_ = StorageKind::kDense;
    mirror_valid_ = true;  // ind_/val_ still hold the exact sorted form
  }

  /// Converts in place to the sorted-coordinate representation.  O(n) when
  /// dense; no-op when already sparse.  Logical content is unchanged.
  void to_sparse() {
    if (kind_ == StorageKind::kSparse) return;
    ensure_mirror();
    kind_ = StorageKind::kSparse;
    bit_.clear();   // capacity retained for the next to_dense()
    dval_.clear();
    dnv_ = 0;
  }

  /// Removes all stored elements; dimension and representation capacity are
  /// retained (GrB_Vector_clear).  The result is sparse: an empty vector is
  /// the canonical sparse object.
  void clear() {
    ind_.clear();
    val_.clear();
    bit_.clear();
    dval_.clear();
    dnv_ = 0;
    kind_ = StorageKind::kSparse;
    mirror_valid_ = true;
  }

  /// Pre-allocates sparse storage for n elements without changing contents.
  void reserve(Index n) {
    ind_.reserve(n);
    val_.reserve(n);
  }

  /// Resizes the logical dimension; entries at indices >= n are dropped
  /// (GrB_Vector_resize semantics).
  void resize(Index n) {
    if (kind_ == StorageKind::kDense) {
      bit_.resize(detail::bitmap_words(n), 0);
      if (n < size_) {
        // Dropped positions: zero the partial tail word and recount.  The
        // popcount sweep is O(n/64); growth needs nothing, because the old
        // tail's padding bits were already zero by invariant.
        if (!bit_.empty()) bit_.back() &= detail::bitmap_tail_mask(n);
        dnv_ = detail::bitmap_count(bit_);
      }
      dval_.resize(n);
      mirror_valid_ = false;
      size_ = n;
      return;
    }
    if (n < size_) {
      auto it = std::lower_bound(ind_.begin(), ind_.end(), n);
      auto keep = static_cast<std::size_t>(it - ind_.begin());
      ind_.resize(keep);
      val_.resize(keep);
    }
    size_ = n;
  }

  /// Stores v[i] = x, replacing any existing element
  /// (GrB_Vector_setElement).  O(1) on a dense vector.
  void set_element(Index i, const T& x) {
    detail::check_index(i, size_, "Vector::set_element");
    if (kind_ == StorageKind::kDense) {
      if (detail::bitmap_set(bit_.data(), i)) ++dnv_;
      dval_[i] = static_cast<storage_type>(x);
      mirror_valid_ = false;
      return;
    }
    auto it = std::lower_bound(ind_.begin(), ind_.end(), i);
    auto pos = static_cast<std::size_t>(it - ind_.begin());
    if (it != ind_.end() && *it == i) {
      val_[pos] = x;
    } else {
      ind_.insert(it, i);
      val_.insert(val_.begin() + static_cast<std::ptrdiff_t>(pos), x);
    }
  }

  /// Removes the element at i if present (GrB_Vector_removeElement).
  /// O(1) on a dense vector.
  void remove_element(Index i) {
    detail::check_index(i, size_, "Vector::remove_element");
    if (kind_ == StorageKind::kDense) {
      if (detail::bitmap_reset(bit_.data(), i)) {
        --dnv_;
        mirror_valid_ = false;
      }
      return;
    }
    auto it = std::lower_bound(ind_.begin(), ind_.end(), i);
    if (it != ind_.end() && *it == i) {
      auto pos = static_cast<std::size_t>(it - ind_.begin());
      ind_.erase(it);
      val_.erase(val_.begin() + static_cast<std::ptrdiff_t>(pos));
    }
  }

  /// True if an element is stored at i.  O(1) on a dense vector.
  /// Total like the sparse form: out-of-range indices answer false.
  bool has_element(Index i) const {
    if (kind_ == StorageKind::kDense) {
      return i < size_ && detail::bitmap_test(bit_.data(), i);
    }
    auto it = std::lower_bound(ind_.begin(), ind_.end(), i);
    return it != ind_.end() && *it == i;
  }

  /// Returns the stored value at i, or nullopt (GrB_Vector_extractElement,
  /// with GrB_NO_VALUE mapped to nullopt).  O(1) on a dense vector.
  std::optional<T> extract_element(Index i) const {
    if (kind_ == StorageKind::kDense) {
      if (i >= size_ || !detail::bitmap_test(bit_.data(), i)) {
        return std::nullopt;
      }
      return static_cast<T>(dval_[i]);
    }
    auto it = std::lower_bound(ind_.begin(), ind_.end(), i);
    if (it == ind_.end() || *it != i) return std::nullopt;
    return static_cast<T>(val_[static_cast<std::size_t>(it - ind_.begin())]);
  }

  /// Value at i or `dflt` when absent — the "implicit value" read used all
  /// over delta-stepping, where absent tentative distances mean ∞.
  T at_or(Index i, const T& dflt) const {
    auto v = extract_element(i);
    return v ? *v : dflt;
  }

  /// Raw sorted views (read-only).  Values are exposed as storage_type
  /// (identical to T except bool -> unsigned char).  On a dense vector this
  /// serves the lazily materialized sparse mirror (one O(n) build, cached
  /// until the next mutation) — the canonicalizing fallback for kernels
  /// without a dense fast path.
  std::span<const Index> indices() const {
    ensure_mirror();
    return ind_;
  }
  std::span<const storage_type> values() const {
    ensure_mirror();
    return val_;
  }

  /// Dense-representation views.  Valid only while is_dense(): the bitmap
  /// is word-packed (bit i & 63 of word i >> 6 is set iff position i is
  /// stored — see bitmap.hpp; padding bits past size() are zero), and
  /// `dense_values()[i]` is then its value (unspecified where the bit is
  /// clear).
  std::span<const detail::BitmapWord> dense_bitmap() const { return bit_; }
  std::span<const storage_type> dense_values() const { return dval_; }

  /// Dumps to (indices, values) (GrB_Vector_extractTuples).
  void extract_tuples(std::vector<Index>& indices, std::vector<T>& values) const {
    ensure_mirror();
    indices = ind_;
    values.assign(val_.begin(), val_.end());
  }

  /// Invokes f(index, value) over stored elements in ascending index order.
  /// Works on either representation without conversion.
  template <typename F>
  void for_each(F&& f) const {
    if (kind_ == StorageKind::kDense) {
      for (std::size_t w = 0; w < bit_.size(); ++w) {
        detail::bitmap_for_each_in_word(
            bit_[w], static_cast<Index>(w) * detail::kBitmapWordBits,
            [&](Index i) { f(i, static_cast<T>(dval_[i])); });
      }
      return;
    }
    for (std::size_t k = 0; k < ind_.size(); ++k) {
      f(ind_[k], static_cast<T>(val_[k]));
    }
  }

  /// Densifies into a std::vector with `fill` at absent positions.  (The
  /// exported array, not a representation change — see to_dense() for that.)
  std::vector<T> to_dense_array(const T& fill = T{}) const {
    std::vector<T> out(static_cast<std::size_t>(size_), fill);
    if (kind_ == StorageKind::kDense) {
      for (std::size_t w = 0; w < bit_.size(); ++w) {
        detail::bitmap_for_each_in_word(
            bit_[w], static_cast<Index>(w) * detail::kBitmapWordBits,
            [&](Index i) {
              out[static_cast<std::size_t>(i)] = static_cast<T>(dval_[i]);
            });
      }
      return out;
    }
    for (std::size_t k = 0; k < ind_.size(); ++k) {
      out[static_cast<std::size_t>(ind_[k])] = static_cast<T>(val_[k]);
    }
    return out;
  }

  /// Structural + value equality (same dimension, same stored set).
  /// Representation-agnostic: a dense vector equals its sparse conversion.
  friend bool operator==(const Vector& a, const Vector& b) {
    if (a.size_ != b.size_ || a.nvals() != b.nvals()) return false;
    a.ensure_mirror();
    b.ensure_mirror();
    return a.ind_ == b.ind_ && a.val_ == b.val_;
  }

  // --- Internal bulk access for kernel implementations. ---------------------
  // Kernels in operations/ construct results as sorted triples directly;
  // adopt() installs them without re-validation beyond debug checks.  All
  // four sparse bulk-write entry points force the vector back to the sparse
  // representation (their callers install sorted triples as the new truth).
  void adopt(std::vector<Index>&& indices, std::vector<storage_type>&& values) {
    discard_dense();
    ind_ = std::move(indices);
    val_ = std::move(values);
  }
  /// Exchanges sparse storage with caller-owned buffers (sorted triples,
  /// like adopt).  The caller receives the previous buffers *for capacity
  /// reuse only* — on a dense vector they may hold a stale mirror — so a
  /// reused scratch pair and a vector can ping-pong capacity with zero
  /// allocation in steady state; the write phase in mask.hpp relies on this.
  void swap_storage(std::vector<Index>& indices,
                    std::vector<storage_type>& values) {
    discard_dense();
    ind_.swap(indices);
    val_.swap(values);
  }
  // Unlike adopt/swap_storage, the element-wise mutable accessors expose
  // the *live* sparse arrays (callers like BFS rewrite values in place), so
  // a dense vector is canonicalized — mirror materialized, representation
  // switched — not discarded.
  std::vector<Index>& mutable_indices() {
    to_sparse();
    return ind_;
  }
  std::vector<storage_type>& mutable_values() {
    to_sparse();
    return val_;
  }

  // Dense-representation bulk access, the bitmap counterparts of the above.
  // swap_dense_storage installs caller-built (bitmap, values, nnz) as the
  // new dense content and hands the previous dense buffers back for
  // capacity ping-pong (empty when the vector was sparse).  `bitmap` must
  // hold bitmap_words(size()) words with zero padding bits, `values`
  // logical-dimension length.  Any lazily built sparse mirror is
  // invalidated: the installed words are the new truth.
  void swap_dense_storage(std::vector<detail::BitmapWord>& bitmap,
                          std::vector<storage_type>& values, Index nnz) {
    bit_.swap(bitmap);
    dval_.swap(values);
    dnv_ = nnz;
    kind_ = StorageKind::kDense;
    mirror_valid_ = false;
    ind_.clear();  // capacity retained for the next mirror build
    val_.clear();
  }
  /// In-place dense mutation for kernels (e.g. the O(nnz) relaxation
  /// scatter).  Valid only while is_dense(); the caller must keep bitmap,
  /// values, and the stored count consistent and finish with
  /// set_dense_nvals().
  std::vector<detail::BitmapWord>& mutable_dense_bitmap() {
    mirror_valid_ = false;
    return bit_;
  }
  std::vector<storage_type>& mutable_dense_values() {
    mirror_valid_ = false;
    return dval_;
  }
  void set_dense_nvals(Index nnz) {
    dnv_ = nnz;
    mirror_valid_ = false;
  }

  // --- Invariant audit (see audit.hpp). -------------------------------------

  /// True while the lazily materialized sparse mirror of a dense vector is
  /// current.  Audit/introspection only: kernels go through indices()/
  /// values(), which materialize on demand.
  bool mirror_is_valid() const {
    return kind_ == StorageKind::kDense && mirror_valid_;
  }

  /// Audits every representation invariant this vector's kernels rely on:
  /// sorted-unique in-range sparse coordinates, bitmap word count / zero
  /// tail padding / popcount == nvals, and (when a dense vector's sparse
  /// mirror is marked valid) mirror-vs-bitmap consistency.  Throws
  /// grb::audit::AuditError on violation; O(n) worst case.  Always
  /// compiled; DSG_AUDIT_INVARIANTS only controls the automatic write-phase
  /// call sites (Context::manage_representation).
  void check_invariants(const char* where) const {
    if (kind_ == StorageKind::kSparse) {
      audit::check_sorted_coords(ind_, size_, val_.size(), where);
      return;
    }
    audit::check_bitmap(bit_, size_, dnv_, where);
    if (dval_.size() != static_cast<std::size_t>(size_)) {
      audit::fail(where, "dense values length " + std::to_string(dval_.size()) +
                             " != dimension " + std::to_string(size_));
    }
    if (mirror_valid_) {
      audit::check_sorted_coords(ind_, size_, val_.size(), where);
      if (ind_.size() != static_cast<std::size_t>(dnv_)) {
        audit::fail(where, "sparse mirror holds " +
                               std::to_string(ind_.size()) +
                               " entries, bitmap stores " +
                               std::to_string(dnv_));
      }
      for (std::size_t k = 0; k < ind_.size(); ++k) {
        const Index i = ind_[k];
        if (!detail::bitmap_test(bit_.data(), i)) {
          audit::fail(where, "stale mirror: coordinate " + std::to_string(i) +
                                 " not set in the bitmap");
        }
        if (val_[k] != dval_[i]) {
          audit::fail(where, "stale mirror: value mismatch at coordinate " +
                                 std::to_string(i));
        }
      }
    }
  }

 private:
  /// Rebuilds the sorted-coordinate mirror of a dense vector (no-op when
  /// sparse or already valid).  Const because it only affects the cached
  /// view, not the logical value; not thread-safe against concurrent first
  /// reads of the same dense vector (one writer per vector, as everywhere
  /// else in the substrate).
  void ensure_mirror() const {
    if (kind_ == StorageKind::kSparse || mirror_valid_) return;
    ind_.clear();
    val_.clear();
    ind_.reserve(dnv_);
    val_.reserve(dnv_);
    for (std::size_t w = 0; w < bit_.size(); ++w) {
      detail::bitmap_for_each_in_word(
          bit_[w], static_cast<Index>(w) * detail::kBitmapWordBits,
          [&](Index i) {
            ind_.push_back(i);
            val_.push_back(dval_[i]);
          });
    }
    mirror_valid_ = true;
  }

  /// Drops the dense representation without materializing the mirror — used
  /// by the sparse bulk-write entry points, whose callers replace the
  /// content wholesale.
  void discard_dense() {
    if (kind_ == StorageKind::kDense) {
      kind_ = StorageKind::kSparse;
      bit_.clear();
      dval_.clear();
      dnv_ = 0;
      ind_.clear();  // stale mirror: keep capacity, drop contents
      val_.clear();
    }
    mirror_valid_ = true;
  }

  Index size_ = 0;
  StorageKind kind_ = StorageKind::kSparse;
  // Sparse representation; when kind_ == kDense these are the lazily
  // rebuilt mirror (mutable so const reads can materialize it).
  mutable std::vector<Index> ind_;         // ascending
  mutable std::vector<storage_type> val_;  // parallel to ind_
  mutable bool mirror_valid_ = true;
  // Dense representation (authoritative when kind_ == kDense).
  std::vector<detail::BitmapWord> bit_;  // word-packed validity bitmap,
                                         // bitmap_words(size_) words,
                                         // padding bits zero
  std::vector<storage_type> dval_;       // values, length size_
  Index dnv_ = 0;                        // number of set bits
};

/// Builds a fully-stored vector in the representation `ctx`'s policy picks:
/// dense while auto-switching is on (density 1.0 always clears the promote
/// threshold), sparse when the caller pinned representations with
/// auto_representation = false.  This is how algorithm code should create
/// its `t = fill` vectors — Vector::full's hard-coded dense default would
/// smuggle dense kernels into a pinned-sparse Context (the
/// bench_solver_batch representation "off" leg).  Duck-typed on the Context
/// like Context::manage_representation, to keep vector.hpp free of a
/// context.hpp include.
template <typename T, typename Ctx>
Vector<T> full_vector(const Ctx& ctx, Index n, const T& fill) {
  return Vector<T>::full(n, fill,
                         ctx.auto_representation ? StorageKind::kDense
                                                 : StorageKind::kSparse);
}

/// Debug/logging helper.
template <typename T>
std::ostream& operator<<(std::ostream& os, const Vector<T>& v) {
  os << "Vector(n=" << v.size() << ", nvals=" << v.nvals()
     << (v.is_dense() ? ", dense" : "") << ") {";
  bool first = true;
  v.for_each([&](Index i, const T& x) {
    os << (first ? "" : ", ") << i << ":" << x;
    first = false;
  });
  return os << "}";
}

}  // namespace grb
