// bitmap.hpp — the word-packed validity bitmap shared by the dense Vector
// representation and every dense kernel.
//
// One std::uint64_t word covers 64 consecutive positions: position i lives
// at bit (i & 63) of word (i >> 6), low bits first, so ascending index
// order is ascending (word, countr_zero) order.  This is the GxB bitmap
// layout SuiteSparse:GraphBLAS uses for its bulk mask-AND and popcount-nnz
// paths, and it is what makes the probe-bound kernels fast:
//
//   - presence tests and mask probes read 64 positions per load;
//   - empty regions are skipped a whole word at a time (word == 0);
//   - set bits are walked with countr_zero + clear-lowest-set-bit, so a
//     kernel's per-element cost is proportional to stored elements, not to
//     the index domain;
//   - nvals is a popcount sum, not a byte scan.
//
// Invariant (everything here relies on it): a bitmap covering a logical
// dimension n has exactly bitmap_words(n) words and every padding bit at
// position >= n is zero.  Producers (Vector, the Context stages, the
// kernels) maintain it; consumers may then AND whole words without
// tail-clamping, because anything ANDed against a presence word inherits
// its zero padding.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "graphblas/types.hpp"

namespace grb::detail {

/// One word of the packed validity bitmap: 64 positions per load.
using BitmapWord = std::uint64_t;

inline constexpr Index kBitmapWordBits = 64;

/// Number of words needed to cover n positions.
constexpr std::size_t bitmap_words(Index n) {
  return static_cast<std::size_t>((n + (kBitmapWordBits - 1)) /
                                  kBitmapWordBits);
}

/// Mask of the bits a dimension-n bitmap may use in its last word (all ones
/// when n is word-aligned).  ANDing the last word with this restores the
/// zero-padding invariant after a bulk fill or a shrink.
constexpr BitmapWord bitmap_tail_mask(Index n) {
  const Index r = n % kBitmapWordBits;
  return r == 0 ? ~BitmapWord{0} : (BitmapWord{1} << r) - 1;
}

/// True if position i is set.  The caller guarantees i < n.
inline bool bitmap_test(const BitmapWord* words, Index i) {
  return (words[i >> 6] >> (i & 63)) & 1u;
}

/// Sets position i; returns true when the bit was previously clear (so
/// callers can maintain a stored-element count without a second test).
inline bool bitmap_set(BitmapWord* words, Index i) {
  BitmapWord& w = words[i >> 6];
  const BitmapWord m = BitmapWord{1} << (i & 63);
  const bool was_clear = (w & m) == 0;
  w |= m;
  return was_clear;
}

/// Clears position i; returns true when the bit was previously set.
inline bool bitmap_reset(BitmapWord* words, Index i) {
  BitmapWord& w = words[i >> 6];
  const BitmapWord m = BitmapWord{1} << (i & 63);
  const bool was_set = (w & m) != 0;
  w &= ~m;
  return was_set;
}

/// Number of set bits — nvals via popcount, O(n/64).
inline Index bitmap_count(const std::vector<BitmapWord>& words) {
  Index n = 0;
  for (const BitmapWord w : words) {
    n += static_cast<Index>(std::popcount(w));
  }
  return n;
}

/// Invokes f(i) for every set bit of `word`, ascending, where bit b maps to
/// index base + b.  countr_zero walks the set bits and w &= w - 1 clears
/// the lowest one, so the loop costs O(popcount), not O(64).
template <typename F>
inline void bitmap_for_each_in_word(BitmapWord word, Index base, F&& f) {
  while (word != 0) {
    f(base + static_cast<Index>(std::countr_zero(word)));
    word &= word - 1;
  }
}

}  // namespace grb::detail
