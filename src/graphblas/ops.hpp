// ops.hpp — unary and binary operators in the style of the GraphBLAS
// predefined operator set (GrB_PLUS_FP64, GrB_MIN_FP64, GrB_LT_FP64, ...).
//
// Operators are stateless function objects so they inline fully; the
// "parameterized" operators used by delta-stepping (value <= Δ, iΔ <= value <
// (i+1)Δ) carry their thresholds as members, mirroring how the paper's C code
// closes over the global `delta` and `i_global`.
#pragma once

#include <algorithm>
#include <cmath>
#include <functional>

#include "graphblas/types.hpp"

namespace grb {

// ---------------------------------------------------------------------------
// Unary operators (GrB_UnaryOp analogues).
// ---------------------------------------------------------------------------

/// GrB_IDENTITY_*: passes the value through.
template <typename T>
struct Identity {
  constexpr T operator()(const T& v) const { return v; }
};

/// GrB_AINV_*: additive inverse.
template <typename T>
struct AdditiveInverse {
  constexpr T operator()(const T& v) const { return static_cast<T>(-v); }
};

/// GrB_MINV_*: multiplicative inverse.
template <typename T>
struct MultiplicativeInverse {
  constexpr T operator()(const T& v) const { return static_cast<T>(T(1) / v); }
};

/// GrB_LNOT: logical negation.
template <typename T>
struct LogicalNot {
  constexpr T operator()(const T& v) const {
    return static_cast<T>(v == T(0));
  }
};

/// GrB_ABS_*.
template <typename T>
struct AbsOp {
  constexpr T operator()(const T& v) const {
    if constexpr (std::is_unsigned_v<T>) {
      return v;
    } else {
      return static_cast<T>(v < T(0) ? -v : v);
    }
  }
};

/// GxB_ONE_*: maps every stored value to one (handy for structure-only views).
template <typename T>
struct One {
  constexpr T operator()(const T&) const { return T(1); }
};

/// Bind-second: turns a binary op into a unary op with fixed rhs
/// (GrB_apply with a BinaryOp + scalar in the v1.3+ C API).
template <typename BinaryOp, typename T>
struct BindSecond {
  BinaryOp op{};
  T rhs{};
  constexpr auto operator()(const T& lhs) const { return op(lhs, rhs); }
};

/// Bind-first analogue.
template <typename BinaryOp, typename T>
struct BindFirst {
  BinaryOp op{};
  T lhs{};
  constexpr auto operator()(const T& rhs) const { return op(lhs, rhs); }
};

// --- Threshold predicates used by the delta-stepping filters. --------------

/// v > delta  (paper: `delta_gt` used to build A_H).
template <typename T>
struct GreaterThanThreshold {
  T threshold{};
  constexpr bool operator()(const T& v) const { return v > threshold; }
};

/// 0 < v <= delta  (paper: `delta_leq` used to build A_L).  The lower bound
/// excludes explicit zeros, matching `A ∘ (0 < A ≤ Δ)` in the formulation.
template <typename T>
struct LightEdgePredicate {
  T threshold{};
  constexpr bool operator()(const T& v) const {
    return v > T(0) && v <= threshold;
  }
};

/// v >= i*delta  (paper: `delta_igeq`, the outer-loop continuation filter).
template <typename T>
struct GreaterEqualThreshold {
  T threshold{};
  constexpr bool operator()(const T& v) const { return v >= threshold; }
};

/// lo <= v < hi  (paper: `delta_irange`, the bucket membership filter
/// iΔ ≤ t < (i+1)Δ).
template <typename T>
struct HalfOpenRangePredicate {
  T lo{};
  T hi{};
  constexpr bool operator()(const T& v) const { return lo <= v && v < hi; }
};

// ---------------------------------------------------------------------------
// Binary operators (GrB_BinaryOp analogues).
// ---------------------------------------------------------------------------

/// GrB_PLUS_*.
template <typename T>
struct Plus {
  constexpr T operator()(const T& a, const T& b) const {
    return static_cast<T>(a + b);
  }
};

/// Saturating plus for the (min,+) semiring: inf + w stays inf even for
/// integral T.  For floating T this is ordinary +.
template <typename T>
struct PlusSaturating {
  constexpr T operator()(const T& a, const T& b) const {
    return saturating_add(a, b);
  }
};

/// GrB_MINUS_*.
template <typename T>
struct Minus {
  constexpr T operator()(const T& a, const T& b) const {
    return static_cast<T>(a - b);
  }
};

/// GrB_TIMES_*.
template <typename T>
struct Times {
  constexpr T operator()(const T& a, const T& b) const {
    return static_cast<T>(a * b);
  }
};

/// GrB_DIV_*.
template <typename T>
struct Div {
  constexpr T operator()(const T& a, const T& b) const {
    return static_cast<T>(a / b);
  }
};

/// GrB_MIN_*.
template <typename T>
struct Min {
  constexpr T operator()(const T& a, const T& b) const {
    return b < a ? b : a;
  }
};

/// GrB_MAX_*.
template <typename T>
struct Max {
  constexpr T operator()(const T& a, const T& b) const {
    return a < b ? b : a;
  }
};

/// GrB_FIRST_*: returns the first argument.
template <typename T>
struct First {
  constexpr T operator()(const T& a, const T&) const { return a; }
};

/// GrB_SECOND_*: returns the second argument.
template <typename T>
struct Second {
  constexpr T operator()(const T&, const T& b) const { return b; }
};

/// GrB_LOR / GrB_LAND / GrB_LXOR on any type with truthiness.
template <typename T>
struct LogicalOr {
  constexpr T operator()(const T& a, const T& b) const {
    return static_cast<T>((a != T(0)) || (b != T(0)));
  }
};

template <typename T>
struct LogicalAnd {
  constexpr T operator()(const T& a, const T& b) const {
    return static_cast<T>((a != T(0)) && (b != T(0)));
  }
};

template <typename T>
struct LogicalXor {
  constexpr T operator()(const T& a, const T& b) const {
    return static_cast<T>((a != T(0)) != (b != T(0)));
  }
};

// --- Comparison operators; result type bool (GrB_LT_* family). -------------
// Note: these are NOT commutative.  Section V-B of the paper discusses the
// surprising behaviour of eWiseAdd with non-commutative operators; our
// eWiseAdd implements the standard-mandated union semantics (pass the lone
// operand through) so the pitfall — and its mask workaround — reproduce.

template <typename T>
struct LessThan {
  constexpr bool operator()(const T& a, const T& b) const { return a < b; }
};

template <typename T>
struct LessEqual {
  constexpr bool operator()(const T& a, const T& b) const { return a <= b; }
};

template <typename T>
struct GreaterThan {
  constexpr bool operator()(const T& a, const T& b) const { return a > b; }
};

template <typename T>
struct GreaterEqual {
  constexpr bool operator()(const T& a, const T& b) const { return a >= b; }
};

template <typename T>
struct Equal {
  constexpr bool operator()(const T& a, const T& b) const { return a == b; }
};

template <typename T>
struct NotEqual {
  constexpr bool operator()(const T& a, const T& b) const { return a != b; }
};

}  // namespace grb
