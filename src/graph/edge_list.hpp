// edge_list.hpp — weighted edge lists, the interchange format between the
// readers/generators and the grb::Matrix adjacency representation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graphblas/matrix.hpp"
#include "graphblas/types.hpp"

namespace dsg {

using grb::Index;

/// A single weighted directed edge u -> v.
struct Edge {
  Index src = 0;
  Index dst = 0;
  double weight = 1.0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// A weighted edge list with an explicit vertex count.
///
/// Vertices are dense identifiers [0, num_vertices).  The list may contain
/// duplicates and self-loops until normalize() is called.
class EdgeList {
 public:
  EdgeList() = default;
  explicit EdgeList(Index num_vertices) : num_vertices_(num_vertices) {}
  EdgeList(Index num_vertices, std::vector<Edge> edges)
      : num_vertices_(num_vertices), edges_(std::move(edges)) {}

  Index num_vertices() const { return num_vertices_; }
  std::size_t num_edges() const { return edges_.size(); }
  const std::vector<Edge>& edges() const { return edges_; }
  std::vector<Edge>& edges() { return edges_; }

  void set_num_vertices(Index n) { num_vertices_ = n; }

  /// Appends an edge; grows num_vertices to cover the endpoints.
  void add_edge(Index src, Index dst, double weight = 1.0);

  /// Adds the reverse of every edge (same weight), making the list
  /// symmetric.  Matches the paper's symmetric undirected inputs.
  void symmetrize();

  /// Removes self-loops (the paper assumes simple graphs: empty diagonal)
  /// and combines duplicate (src,dst) pairs keeping the minimum weight —
  /// the right reduction for shortest paths.
  void normalize();

  /// True if for every edge (u,v,w) the edge (v,u,w) is also present.
  bool is_symmetric() const;

  /// Largest endpoint + 1, ignoring num_vertices().
  Index max_vertex_plus_one() const;

  /// Converts to a CSR adjacency matrix A where A[u][v] = weight(u,v).
  /// Duplicate edges keep the minimum weight.
  grb::Matrix<double> to_matrix() const;

  /// Builds an edge list back from an adjacency matrix.
  static EdgeList from_matrix(const grb::Matrix<double>& a);

  friend bool operator==(const EdgeList&, const EdgeList&) = default;

 private:
  Index num_vertices_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace dsg
