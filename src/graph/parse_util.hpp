// parse_util.hpp — checked integer parsing for the text graph readers.
//
// The readers used to extract vertex ids through `long long`, which caps
// the usable id space at 2^63-1 (grb::Index is 64-bit unsigned) and leaves
// the overflow outcome to the stream: failbit plus a clamped value, folded
// into a generic "bad line" error.  These helpers parse tokens straight
// into the target type with std::from_chars so an out-of-range id or
// dimension is diagnosed as exactly that — it can never clamp or truncate
// into a different valid vertex.
#pragma once

#include <charconv>
#include <string_view>
#include <system_error>

namespace dsg::detail {

enum class ParseStatus {
  kOk,
  kInvalid,     ///< not a (complete) base-10 literal of the target type
  kOutOfRange,  ///< syntactically valid but does not fit the target type
};

/// Parses the whole token as a base-10 integer of type Int.  Trailing
/// characters make the parse kInvalid (tokens come pre-split, so partial
/// matches mean garbage like "12x3").
template <typename Int>
ParseStatus parse_int(std::string_view token, Int& out) {
  const char* first = token.data();
  const char* last = first + token.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  if (ec == std::errc::result_out_of_range) return ParseStatus::kOutOfRange;
  if (ec != std::errc{} || ptr != last) return ParseStatus::kInvalid;
  return ParseStatus::kOk;
}

/// True when the token looks like a negative number ("-" followed by a
/// digit) — lets an unsigned-id parser report "negative id" instead of the
/// generic syntax error.
inline bool looks_negative(std::string_view token) {
  return token.size() >= 2 && token[0] == '-' && token[1] >= '0' &&
         token[1] <= '9';
}

}  // namespace dsg::detail
