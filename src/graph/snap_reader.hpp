// snap_reader.hpp — reader for SNAP-style whitespace-separated edge lists
// (the format of the Stanford Network Analysis Platform datasets the paper
// evaluates on: '# comment' lines, then 'src dst [weight]' per line).
//
// Vertex ids in SNAP files are arbitrary (sparse, not necessarily starting
// at 0); the reader compacts them to dense [0, n) and can return the
// relabeling map.
#pragma once

#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/edge_list.hpp"

namespace dsg {

struct SnapReadResult {
  EdgeList graph;
  /// original id of each compacted vertex: original_id[new] = old.
  std::vector<Index> original_id;
};

/// Parses a SNAP edge list from a stream.  Lines starting with '#' are
/// comments; entries are 'src dst' or 'src dst weight'.  Missing weights
/// default to 1 (the paper uses unit weights).
SnapReadResult read_snap(std::istream& in);

/// Convenience: reads from a file path.
SnapReadResult read_snap_file(const std::string& path);

/// Writes a SNAP-format edge list (with a header comment).
void write_snap(std::ostream& out, const EdgeList& graph);

/// Convenience: writes to a file path.
void write_snap_file(const std::string& path, const EdgeList& graph);

}  // namespace dsg
