#include "graph/edge_list.hpp"

#include <algorithm>
#include <set>
#include <tuple>

namespace dsg {

void EdgeList::add_edge(Index src, Index dst, double weight) {
  edges_.push_back({src, dst, weight});
  num_vertices_ = std::max(num_vertices_, std::max(src, dst) + 1);
}

void EdgeList::symmetrize() {
  const std::size_t n = edges_.size();
  edges_.reserve(2 * n);
  for (std::size_t k = 0; k < n; ++k) {
    const Edge& e = edges_[k];
    if (e.src != e.dst) {
      edges_.push_back({e.dst, e.src, e.weight});
    }
  }
}

void EdgeList::normalize() {
  // Drop self-loops, then sort and combine duplicates by min weight.
  edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                              [](const Edge& e) { return e.src == e.dst; }),
               edges_.end());
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    return std::tie(a.src, a.dst, a.weight) < std::tie(b.src, b.dst, b.weight);
  });
  std::vector<Edge> out;
  out.reserve(edges_.size());
  for (const Edge& e : edges_) {
    if (!out.empty() && out.back().src == e.src && out.back().dst == e.dst) {
      out.back().weight = std::min(out.back().weight, e.weight);
    } else {
      out.push_back(e);
    }
  }
  edges_ = std::move(out);
}

bool EdgeList::is_symmetric() const {
  std::set<std::tuple<Index, Index, double>> seen;
  for (const Edge& e : edges_) {
    seen.insert({e.src, e.dst, e.weight});
  }
  for (const Edge& e : edges_) {
    if (!seen.count({e.dst, e.src, e.weight})) return false;
  }
  return true;
}

Index EdgeList::max_vertex_plus_one() const {
  Index m = 0;
  for (const Edge& e : edges_) {
    m = std::max(m, std::max(e.src, e.dst) + 1);
  }
  return m;
}

grb::Matrix<double> EdgeList::to_matrix() const {
  std::vector<Index> rows, cols;
  std::vector<double> vals;
  rows.reserve(edges_.size());
  cols.reserve(edges_.size());
  vals.reserve(edges_.size());
  for (const Edge& e : edges_) {
    rows.push_back(e.src);
    cols.push_back(e.dst);
    vals.push_back(e.weight);
  }
  return grb::Matrix<double>::build(num_vertices_, num_vertices_, rows, cols,
                                    vals, grb::Min<double>{});
}

EdgeList EdgeList::from_matrix(const grb::Matrix<double>& a) {
  EdgeList el(a.nrows());
  el.edges_.reserve(a.nvals());
  a.for_each([&](Index r, Index c, const double& w) {
    el.edges_.push_back({r, c, w});
  });
  return el;
}

}  // namespace dsg
