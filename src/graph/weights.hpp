// weights.hpp — edge weight models.
//
// The paper runs with unit weights and Δ=1 (so delta-stepping degenerates
// towards Dijkstra-like behaviour, Sec. VII).  The weighted models exercise
// the light/heavy split for the Δ-sweep ablation.
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace dsg {

/// Sets every edge weight to 1 (the paper's configuration).
void assign_unit_weights(EdgeList& graph);

/// Uniform real weights in [lo, hi).  Symmetric pairs (u,v)/(v,u) receive
/// the same weight so undirected semantics are preserved.
void assign_uniform_weights(EdgeList& graph, double lo, double hi,
                            std::uint64_t seed = 42);

/// Integer weights uniform in {lo, ..., hi}, symmetric-consistent.
void assign_integer_weights(EdgeList& graph, int lo, int hi,
                            std::uint64_t seed = 42);

/// Heavy-tailed weights: exp(X) with X uniform in [0, scale] — produces the
/// long light/heavy tail that makes the Δ split interesting.
void assign_exponential_weights(EdgeList& graph, double scale,
                                std::uint64_t seed = 42);

}  // namespace dsg
