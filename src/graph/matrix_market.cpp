#include "graph/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>
#include <string>

#include "graph/parse_util.hpp"
#include "graphblas/types.hpp"

namespace dsg {

namespace {

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

EdgeList read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    throw grb::InvalidValue("MatrixMarket: empty input");
  }

  // Header: %%MatrixMarket matrix coordinate <field> <symmetry>
  std::istringstream hdr(line);
  std::string banner, object, format, field, symmetry;
  hdr >> banner >> object >> format >> field >> symmetry;
  if (to_lower(banner) != "%%matrixmarket") {
    throw grb::InvalidValue("MatrixMarket: missing %%MatrixMarket banner");
  }
  if (to_lower(object) != "matrix" || to_lower(format) != "coordinate") {
    throw grb::InvalidValue(
        "MatrixMarket: only 'matrix coordinate' is supported");
  }
  field = to_lower(field);
  symmetry = to_lower(symmetry);
  const bool pattern = (field == "pattern");
  if (!pattern && field != "real" && field != "integer" && field != "double") {
    throw grb::InvalidValue("MatrixMarket: unsupported field '" + field + "'");
  }
  const bool symmetric = (symmetry == "symmetric");
  if (!symmetric && symmetry != "general") {
    throw grb::InvalidValue("MatrixMarket: unsupported symmetry '" + symmetry +
                            "'");
  }

  // Skip comments, read size line.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  // Dimensions and coordinates are parsed as full-width Index (64-bit
  // unsigned), not through a signed intermediate: a value that doesn't fit
  // must be an error, never a truncation into some other valid dimension.
  auto parse_dim = [&line](const std::string& tok, const char* what) {
    Index v = 0;
    switch (detail::parse_int(tok, v)) {
      case detail::ParseStatus::kOk:
        return v;
      case detail::ParseStatus::kOutOfRange:
        throw grb::InvalidValue(std::string("MatrixMarket: ") + what +
                                " out of range in '" + line + "'");
      case detail::ParseStatus::kInvalid:
        break;
    }
    throw grb::InvalidValue(std::string("MatrixMarket: bad ") + what +
                            " in '" + line + "'");
  };

  std::istringstream size_line(line);
  std::string nrows_tok, ncols_tok, nnz_tok;
  if (!(size_line >> nrows_tok >> ncols_tok >> nnz_tok)) {
    throw grb::InvalidValue("MatrixMarket: bad size line '" + line + "'");
  }
  const Index nrows = parse_dim(nrows_tok, "size line");
  const Index ncols = parse_dim(ncols_tok, "size line");
  const Index nnz = parse_dim(nnz_tok, "size line");
  if (nrows != ncols) {
    throw grb::InvalidValue(
        "MatrixMarket: adjacency matrices must be square, got " +
        std::to_string(nrows) + "x" + std::to_string(ncols));
  }

  EdgeList graph(nrows);
  // The declared nnz is untrusted: cap the up-front reservation so a
  // forged size line cannot commit arbitrary memory before a single entry
  // parses (past the cap push_back grows geometrically, paced by how many
  // entry lines the input actually contains).  The cap is applied before
  // the symmetric doubling so 2 * nnz cannot overflow either.
  constexpr std::size_t kReserveCap = std::size_t{1} << 20;
  const std::size_t reserve_nnz =
      std::min(static_cast<std::size_t>(nnz), kReserveCap);
  graph.edges().reserve(symmetric ? 2 * reserve_nnz : reserve_nnz);
  Index seen = 0;
  while (seen < nnz && std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    std::istringstream ls(line);
    std::string r_tok, c_tok;
    double w = 1.0;
    if (!(ls >> r_tok >> c_tok)) {
      throw grb::InvalidValue("MatrixMarket: bad entry line '" + line + "'");
    }
    const Index r = parse_dim(r_tok, "entry coordinate");
    const Index c = parse_dim(c_tok, "entry coordinate");
    if (!pattern && !(ls >> w)) {
      throw grb::InvalidValue("MatrixMarket: missing value in '" + line + "'");
    }
    // operator>> happily parses "nan" and "inf"; SSSP weights must be
    // finite (negativity is rejected later by GraphPlan, but a NaN would
    // slip through its comparison-based check).
    if (!std::isfinite(w)) {
      throw grb::InvalidValue("MatrixMarket: non-finite weight in '" + line +
                              "'");
    }
    if (r < 1 || r > nrows || c < 1 || c > ncols) {
      throw grb::InvalidValue("MatrixMarket: entry out of bounds in '" + line +
                              "'");
    }
    const Index ri = r - 1;
    const Index ci = c - 1;
    graph.edges().push_back({ri, ci, w});
    if (symmetric && ri != ci) {
      graph.edges().push_back({ci, ri, w});
    }
    ++seen;
  }
  if (seen != nnz) {
    throw grb::InvalidValue("MatrixMarket: expected " + std::to_string(nnz) +
                            " entries, got " + std::to_string(seen));
  }
  return graph;
}

EdgeList read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw grb::InvalidValue("MatrixMarket: cannot open '" + path + "'");
  }
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const EdgeList& graph) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << "% written by deltastep_graphblas\n";
  out << graph.num_vertices() << " " << graph.num_vertices() << " "
      << graph.num_edges() << "\n";
  for (const Edge& e : graph.edges()) {
    out << (e.src + 1) << " " << (e.dst + 1) << " " << e.weight << "\n";
  }
}

void write_matrix_market_file(const std::string& path, const EdgeList& graph) {
  std::ofstream out(path);
  if (!out) {
    throw grb::InvalidValue("MatrixMarket: cannot open '" + path +
                            "' for writing");
  }
  write_matrix_market(out, graph);
}

}  // namespace dsg
