#include "graph/stats.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <numeric>
#include <sstream>

namespace dsg {

namespace {

/// Undirected adjacency (successor lists over symmetrized edges).
std::vector<std::vector<Index>> undirected_adjacency(const EdgeList& graph) {
  std::vector<std::vector<Index>> adj(graph.num_vertices());
  for (const Edge& e : graph.edges()) {
    adj[e.src].push_back(e.dst);
    adj[e.dst].push_back(e.src);
  }
  return adj;
}

}  // namespace

std::vector<Index> out_degrees(const EdgeList& graph) {
  std::vector<Index> deg(graph.num_vertices(), 0);
  for (const Edge& e : graph.edges()) ++deg[e.src];
  return deg;
}

std::vector<Index> component_sizes(const EdgeList& graph) {
  const Index n = graph.num_vertices();
  auto adj = undirected_adjacency(graph);
  std::vector<char> seen(n, 0);
  std::vector<Index> sizes;
  std::deque<Index> queue;
  for (Index s = 0; s < n; ++s) {
    if (seen[s]) continue;
    Index count = 0;
    seen[s] = 1;
    queue.push_back(s);
    while (!queue.empty()) {
      const Index u = queue.front();
      queue.pop_front();
      ++count;
      for (Index v : adj[u]) {
        if (!seen[v]) {
          seen[v] = 1;
          queue.push_back(v);
        }
      }
    }
    sizes.push_back(count);
  }
  std::sort(sizes.rbegin(), sizes.rend());
  return sizes;
}

std::vector<Index> bfs_levels(const EdgeList& graph, Index source) {
  const Index n = graph.num_vertices();
  constexpr Index kUnreached = std::numeric_limits<Index>::max();
  std::vector<Index> level(n, kUnreached);
  if (source >= n) return level;

  std::vector<std::vector<Index>> adj(n);
  for (const Edge& e : graph.edges()) adj[e.src].push_back(e.dst);

  std::deque<Index> queue;
  level[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const Index u = queue.front();
    queue.pop_front();
    for (Index v : adj[u]) {
      if (level[v] == kUnreached) {
        level[v] = level[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return level;
}

GraphStats compute_stats(const EdgeList& graph) {
  GraphStats s;
  s.num_vertices = graph.num_vertices();
  s.num_edges = graph.num_edges();
  if (s.num_vertices == 0) return s;

  auto deg = out_degrees(graph);
  s.min_degree = *std::min_element(deg.begin(), deg.end());
  s.max_degree = *std::max_element(deg.begin(), deg.end());
  s.avg_degree = graph.num_edges() == 0
                     ? 0.0
                     : static_cast<double>(graph.num_edges()) /
                           static_cast<double>(s.num_vertices);

  if (!graph.edges().empty()) {
    s.min_weight = s.max_weight = graph.edges().front().weight;
    for (const Edge& e : graph.edges()) {
      s.min_weight = std::min(s.min_weight, e.weight);
      s.max_weight = std::max(s.max_weight, e.weight);
    }
  }

  auto comps = component_sizes(graph);
  s.num_components = static_cast<Index>(comps.size());
  s.largest_component = comps.empty() ? 0 : comps.front();

  auto levels = bfs_levels(graph, 0);
  constexpr Index kUnreached = std::numeric_limits<Index>::max();
  for (Index l : levels) {
    if (l != kUnreached) s.bfs_ecc_from_zero = std::max(s.bfs_ecc_from_zero, l);
  }
  return s;
}

std::string format_stats(const GraphStats& s) {
  std::ostringstream os;
  os << "|V|=" << s.num_vertices << " |E|=" << s.num_edges
     << " deg[min/avg/max]=" << s.min_degree << "/" << s.avg_degree << "/"
     << s.max_degree << " w[min/max]=" << s.min_weight << "/" << s.max_weight
     << " comps=" << s.num_components << " (largest " << s.largest_component
     << ") ecc0=" << s.bfs_ecc_from_zero;
  return os.str();
}

}  // namespace dsg
