// stats.hpp — structural statistics used by the benchmark reporter
// (Fig. 3/4 sort graphs by ascending node count and annotate sizes) and by
// the test suite's sanity checks.
#pragma once

#include <string>
#include <vector>

#include "graph/edge_list.hpp"

namespace dsg {

struct GraphStats {
  Index num_vertices = 0;
  std::size_t num_edges = 0;  // directed edge count
  Index min_degree = 0;       // out-degree
  Index max_degree = 0;
  double avg_degree = 0.0;
  double min_weight = 0.0;
  double max_weight = 0.0;
  Index num_components = 0;       // weakly connected components
  Index largest_component = 0;    // vertex count of the largest
  Index bfs_ecc_from_zero = 0;    // BFS eccentricity of vertex 0
                                  // (diameter lower bound)
};

/// Computes the full statistics block (one BFS + one component sweep).
GraphStats compute_stats(const EdgeList& graph);

/// Out-degree of every vertex.
std::vector<Index> out_degrees(const EdgeList& graph);

/// Vertex count of each weakly connected component, descending.
std::vector<Index> component_sizes(const EdgeList& graph);

/// Unweighted BFS hop counts from `source` (max() where unreachable).
std::vector<Index> bfs_levels(const EdgeList& graph, Index source);

/// One-line human-readable summary.
std::string format_stats(const GraphStats& stats);

}  // namespace dsg
