#include "graph/snap_reader.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "graph/parse_util.hpp"
#include "graphblas/types.hpp"

namespace dsg {

SnapReadResult read_snap(std::istream& in) {
  SnapReadResult result;
  std::unordered_map<Index, Index> compact;  // original -> dense
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string src_tok, dst_tok;
    double w = 1.0;
    if (!(ls >> src_tok >> dst_tok)) {
      throw grb::InvalidValue("SNAP: bad edge line '" + line + "'");
    }
    // Ids are parsed as full-width Index (64-bit unsigned), not through a
    // signed intermediate: an id that doesn't fit must be an error, never a
    // truncation into some other valid vertex.
    auto parse_id = [&line](const std::string& tok) {
      Index id = 0;
      switch (detail::parse_int(tok, id)) {
        case detail::ParseStatus::kOk:
          return id;
        case detail::ParseStatus::kOutOfRange:
          throw grb::InvalidValue("SNAP: vertex id out of range in '" + line +
                                  "'");
        case detail::ParseStatus::kInvalid:
          break;
      }
      if (detail::looks_negative(tok)) {
        throw grb::InvalidValue("SNAP: negative vertex id in '" + line + "'");
      }
      throw grb::InvalidValue("SNAP: bad edge line '" + line + "'");
    };
    const Index src = parse_id(src_tok);
    const Index dst = parse_id(dst_tok);
    // The weight column is optional, but "absent" and "present but
    // garbage" are different cases: a row like "0 1 xyz" must be a parse
    // error (matching matrix_market.cpp's strictness on its value field),
    // not a silent unit weight.
    if (!(ls >> w)) {
      ls.clear();
      std::string garbage;
      if (ls >> garbage) {
        throw grb::InvalidValue("SNAP: bad weight in '" + line + "'");
      }
      w = 1.0;  // column truly absent
    }
    // operator>> accepts "nan"/"inf" spellings; reject them here so a
    // hostile edge list cannot smuggle a non-finite weight past the
    // comparison-based validation downstream.
    if (!std::isfinite(w)) {
      throw grb::InvalidValue("SNAP: non-finite weight in '" + line + "'");
    }

    auto intern = [&](Index original) {
      auto [it, inserted] =
          compact.try_emplace(original, static_cast<Index>(compact.size()));
      if (inserted) result.original_id.push_back(original);
      return it->second;
    };
    const Index s = intern(src);
    const Index d = intern(dst);
    result.graph.edges().push_back({s, d, w});
  }
  result.graph.set_num_vertices(static_cast<Index>(compact.size()));
  return result;
}

SnapReadResult read_snap_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw grb::InvalidValue("SNAP: cannot open '" + path + "'");
  }
  return read_snap(in);
}

void write_snap(std::ostream& out, const EdgeList& graph) {
  out << "# Directed graph: written by deltastep_graphblas\n";
  out << "# Nodes: " << graph.num_vertices()
      << " Edges: " << graph.num_edges() << "\n";
  out << "# FromNodeId\tToNodeId\tWeight\n";
  for (const Edge& e : graph.edges()) {
    out << e.src << "\t" << e.dst << "\t" << e.weight << "\n";
  }
}

void write_snap_file(const std::string& path, const EdgeList& graph) {
  std::ofstream out(path);
  if (!out) {
    throw grb::InvalidValue("SNAP: cannot open '" + path + "' for writing");
  }
  write_snap(out, graph);
}

}  // namespace dsg
