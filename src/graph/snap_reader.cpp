#include "graph/snap_reader.hpp"

#include <fstream>
#include <sstream>

#include "graphblas/types.hpp"

namespace dsg {

SnapReadResult read_snap(std::istream& in) {
  SnapReadResult result;
  std::unordered_map<Index, Index> compact;  // original -> dense
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    long long src = 0, dst = 0;
    double w = 1.0;
    if (!(ls >> src >> dst)) {
      throw grb::InvalidValue("SNAP: bad edge line '" + line + "'");
    }
    if (src < 0 || dst < 0) {
      throw grb::InvalidValue("SNAP: negative vertex id in '" + line + "'");
    }
    // The weight column is optional, but "absent" and "present but
    // garbage" are different cases: a row like "0 1 xyz" must be a parse
    // error (matching matrix_market.cpp's strictness on its value field),
    // not a silent unit weight.
    if (!(ls >> w)) {
      ls.clear();
      std::string garbage;
      if (ls >> garbage) {
        throw grb::InvalidValue("SNAP: bad weight in '" + line + "'");
      }
      w = 1.0;  // column truly absent
    }

    auto intern = [&](Index original) {
      auto [it, inserted] =
          compact.try_emplace(original, static_cast<Index>(compact.size()));
      if (inserted) result.original_id.push_back(original);
      return it->second;
    };
    const Index s = intern(static_cast<Index>(src));
    const Index d = intern(static_cast<Index>(dst));
    result.graph.edges().push_back({s, d, w});
  }
  result.graph.set_num_vertices(static_cast<Index>(compact.size()));
  return result;
}

SnapReadResult read_snap_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw grb::InvalidValue("SNAP: cannot open '" + path + "'");
  }
  return read_snap(in);
}

void write_snap(std::ostream& out, const EdgeList& graph) {
  out << "# Directed graph: written by deltastep_graphblas\n";
  out << "# Nodes: " << graph.num_vertices()
      << " Edges: " << graph.num_edges() << "\n";
  out << "# FromNodeId\tToNodeId\tWeight\n";
  for (const Edge& e : graph.edges()) {
    out << e.src << "\t" << e.dst << "\t" << e.weight << "\n";
  }
}

void write_snap_file(const std::string& path, const EdgeList& graph) {
  std::ofstream out(path);
  if (!out) {
    throw grb::InvalidValue("SNAP: cannot open '" + path + "' for writing");
  }
  write_snap(out, graph);
}

}  // namespace dsg
