#include "graph/weights.hpp"

#include <cmath>
#include <random>
#include <unordered_map>

namespace dsg {

namespace {

/// Canonical key for an undirected pair so both directions get one weight.
std::uint64_t pair_key(Index u, Index v) {
  const Index lo = u < v ? u : v;
  const Index hi = u < v ? v : u;
  return (static_cast<std::uint64_t>(lo) << 32) ^ hi;
}

template <typename Draw>
void assign_symmetric(EdgeList& graph, Draw&& draw) {
  std::unordered_map<std::uint64_t, double> chosen;
  chosen.reserve(graph.num_edges());
  for (Edge& e : graph.edges()) {
    auto [it, inserted] = chosen.try_emplace(pair_key(e.src, e.dst), 0.0);
    if (inserted) it->second = draw();
    e.weight = it->second;
  }
}

}  // namespace

void assign_unit_weights(EdgeList& graph) {
  for (Edge& e : graph.edges()) e.weight = 1.0;
}

void assign_uniform_weights(EdgeList& graph, double lo, double hi,
                            std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(lo, hi);
  assign_symmetric(graph, [&] { return uni(rng); });
}

void assign_integer_weights(EdgeList& graph, int lo, int hi,
                            std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> uni(lo, hi);
  assign_symmetric(graph, [&] { return static_cast<double>(uni(rng)); });
}

void assign_exponential_weights(EdgeList& graph, double scale,
                                std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, scale);
  assign_symmetric(graph, [&] { return std::exp(uni(rng)); });
}

}  // namespace dsg
