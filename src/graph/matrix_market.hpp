// matrix_market.hpp — Matrix Market (.mtx) coordinate-format reader/writer,
// the interchange format of SuiteSparse and the GraphChallenge datasets.
//
// Supported: `%%MatrixMarket matrix coordinate <real|integer|pattern>
// <general|symmetric>`.  Pattern entries get weight 1; symmetric files are
// expanded to both triangles on read.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/edge_list.hpp"

namespace dsg {

/// Parses Matrix Market coordinate data from a stream.
/// Vertex ids in the file are 1-based (per the format) and converted to
/// 0-based.  Throws grb::InvalidValue on malformed input.
EdgeList read_matrix_market(std::istream& in);

/// Convenience: reads from a file path.
EdgeList read_matrix_market_file(const std::string& path);

/// Writes an edge list as `matrix coordinate real general`.
void write_matrix_market(std::ostream& out, const EdgeList& graph);

/// Convenience: writes to a file path.
void write_matrix_market_file(const std::string& path, const EdgeList& graph);

}  // namespace dsg
