// generators.hpp — synthetic graph generators.
//
// The paper's evaluation uses real SNAP / GraphChallenge graphs (symmetric,
// undirected, unit weights).  Those datasets are not available offline, so
// the benchmark suite substitutes generator families that span the same
// structural regimes (see DESIGN.md §4):
//   - rmat            : skewed-degree, low-diameter (social / citation nets)
//   - erdos_renyi     : uniform random, low diameter
//   - grid2d          : bounded degree, high diameter (road networks)
//   - small_world     : ring + rewiring (Watts–Strogatz)
//   - path/cycle/star/complete/binary_tree : extreme shapes for edge cases
//
// All generators are deterministic given a seed.
#pragma once

#include <cstdint>
#include <random>

#include "graph/edge_list.hpp"

namespace dsg {

/// Recursive-MATrix (Kronecker-like) generator, GraphChallenge/Graph500
/// style.  scale = log2(#vertices); edge_factor = edges per vertex.
/// Default partition probabilities (a,b,c) = (0.57, 0.19, 0.19) match
/// Graph500.
struct RmatParams {
  unsigned scale = 10;
  double edge_factor = 8.0;
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  std::uint64_t seed = 42;
};
EdgeList generate_rmat(const RmatParams& params);

/// Erdős–Rényi G(n, m): m distinct directed edges chosen uniformly.
EdgeList generate_erdos_renyi(Index n, std::size_t m, std::uint64_t seed = 42);

/// width x height 4-neighbour grid (optionally with diagonal 8-neighbour
/// links), the canonical road-network stand-in: bounded degree, large
/// diameter.
EdgeList generate_grid2d(Index width, Index height, bool diagonals = false);

/// Watts–Strogatz small world: ring lattice with k neighbours per side and
/// rewiring probability beta.
EdgeList generate_small_world(Index n, Index k, double beta,
                              std::uint64_t seed = 42);

/// Simple path 0-1-2-...-(n-1).
EdgeList generate_path(Index n);

/// Cycle 0-1-...-(n-1)-0.
EdgeList generate_cycle(Index n);

/// Star: vertex 0 connected to all others.
EdgeList generate_star(Index n);

/// Complete graph K_n (no self loops).
EdgeList generate_complete(Index n);

/// Complete binary tree with n vertices (parent i -> children 2i+1, 2i+2).
EdgeList generate_binary_tree(Index n);

/// Uniform random spanning tree over n vertices plus `extra_edges`
/// additional random edges — guarantees connectivity, used by the
/// property-based tests.
EdgeList generate_connected_random(Index n, std::size_t extra_edges,
                                   std::uint64_t seed = 42);

}  // namespace dsg
