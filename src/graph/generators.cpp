#include "graph/generators.hpp"

#include <algorithm>
#include <unordered_set>

#include "graphblas/types.hpp"

namespace dsg {

namespace {

/// Hash for (src,dst) pairs used by duplicate rejection.
struct PairHash {
  std::size_t operator()(const std::pair<Index, Index>& p) const {
    return std::hash<Index>{}(p.first * 0x9E3779B97F4A7C15ull + p.second);
  }
};

}  // namespace

EdgeList generate_rmat(const RmatParams& params) {
  if (params.a < 0 || params.b < 0 || params.c < 0 ||
      params.a + params.b + params.c > 1.0) {
    throw grb::InvalidValue("rmat: partition probabilities must be >=0 and "
                            "a+b+c <= 1");
  }
  const Index n = Index{1} << params.scale;
  const auto m =
      static_cast<std::size_t>(params.edge_factor * static_cast<double>(n));
  std::mt19937_64 rng(params.seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);

  EdgeList graph(n);
  graph.edges().reserve(m);
  for (std::size_t e = 0; e < m; ++e) {
    Index row = 0, col = 0;
    for (unsigned level = 0; level < params.scale; ++level) {
      const double r = uni(rng);
      row <<= 1;
      col <<= 1;
      if (r < params.a) {
        // top-left quadrant: nothing to add
      } else if (r < params.a + params.b) {
        col |= 1;
      } else if (r < params.a + params.b + params.c) {
        row |= 1;
      } else {
        row |= 1;
        col |= 1;
      }
    }
    if (row != col) {
      graph.edges().push_back({row, col, 1.0});
    }
  }
  return graph;
}

EdgeList generate_erdos_renyi(Index n, std::size_t m, std::uint64_t seed) {
  if (n < 2 && m > 0) {
    throw grb::InvalidValue("erdos_renyi: need >= 2 vertices for edges");
  }
  const auto max_edges = static_cast<std::size_t>(n) * (n - 1);
  if (m > max_edges) {
    throw grb::InvalidValue("erdos_renyi: m exceeds n*(n-1)");
  }
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<Index> pick(0, n - 1);

  EdgeList graph(n);
  graph.edges().reserve(m);
  std::unordered_set<std::pair<Index, Index>, PairHash> seen;
  seen.reserve(2 * m);
  while (seen.size() < m) {
    const Index u = pick(rng), v = pick(rng);
    if (u == v) continue;
    if (seen.insert({u, v}).second) {
      graph.edges().push_back({u, v, 1.0});
    }
  }
  return graph;
}

EdgeList generate_grid2d(Index width, Index height, bool diagonals) {
  if (width == 0 || height == 0) {
    throw grb::InvalidValue("grid2d: zero dimension");
  }
  EdgeList graph(width * height);
  auto id = [&](Index x, Index y) { return y * width + x; };
  for (Index y = 0; y < height; ++y) {
    for (Index x = 0; x < width; ++x) {
      if (x + 1 < width) {
        graph.edges().push_back({id(x, y), id(x + 1, y), 1.0});
        graph.edges().push_back({id(x + 1, y), id(x, y), 1.0});
      }
      if (y + 1 < height) {
        graph.edges().push_back({id(x, y), id(x, y + 1), 1.0});
        graph.edges().push_back({id(x, y + 1), id(x, y), 1.0});
      }
      if (diagonals && x + 1 < width && y + 1 < height) {
        graph.edges().push_back({id(x, y), id(x + 1, y + 1), 1.0});
        graph.edges().push_back({id(x + 1, y + 1), id(x, y), 1.0});
      }
    }
  }
  return graph;
}

EdgeList generate_small_world(Index n, Index k, double beta,
                              std::uint64_t seed) {
  if (n < 3) throw grb::InvalidValue("small_world: need >= 3 vertices");
  if (2 * k >= n) throw grb::InvalidValue("small_world: 2k must be < n");
  if (beta < 0.0 || beta > 1.0) {
    throw grb::InvalidValue("small_world: beta in [0,1]");
  }
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::uniform_int_distribution<Index> pick(0, n - 1);

  EdgeList graph(n);
  for (Index u = 0; u < n; ++u) {
    for (Index j = 1; j <= k; ++j) {
      Index v = (u + j) % n;
      if (uni(rng) < beta) {
        // Rewire to a random non-self target.
        Index w = pick(rng);
        while (w == u) w = pick(rng);
        v = w;
      }
      graph.edges().push_back({u, v, 1.0});
      graph.edges().push_back({v, u, 1.0});
    }
  }
  return graph;
}

EdgeList generate_path(Index n) {
  EdgeList graph(n);
  for (Index u = 0; u + 1 < n; ++u) {
    graph.edges().push_back({u, u + 1, 1.0});
    graph.edges().push_back({u + 1, u, 1.0});
  }
  return graph;
}

EdgeList generate_cycle(Index n) {
  if (n < 3) throw grb::InvalidValue("cycle: need >= 3 vertices");
  EdgeList graph = generate_path(n);
  graph.edges().push_back({n - 1, 0, 1.0});
  graph.edges().push_back({0, n - 1, 1.0});
  return graph;
}

EdgeList generate_star(Index n) {
  if (n < 2) throw grb::InvalidValue("star: need >= 2 vertices");
  EdgeList graph(n);
  for (Index u = 1; u < n; ++u) {
    graph.edges().push_back({0, u, 1.0});
    graph.edges().push_back({u, 0, 1.0});
  }
  return graph;
}

EdgeList generate_complete(Index n) {
  EdgeList graph(n);
  for (Index u = 0; u < n; ++u) {
    for (Index v = 0; v < n; ++v) {
      if (u != v) graph.edges().push_back({u, v, 1.0});
    }
  }
  return graph;
}

EdgeList generate_binary_tree(Index n) {
  EdgeList graph(n);
  for (Index u = 0; u < n; ++u) {
    const Index left = 2 * u + 1, right = 2 * u + 2;
    if (left < n) {
      graph.edges().push_back({u, left, 1.0});
      graph.edges().push_back({left, u, 1.0});
    }
    if (right < n) {
      graph.edges().push_back({u, right, 1.0});
      graph.edges().push_back({right, u, 1.0});
    }
  }
  return graph;
}

EdgeList generate_connected_random(Index n, std::size_t extra_edges,
                                   std::uint64_t seed) {
  if (n == 0) return EdgeList{};
  std::mt19937_64 rng(seed);
  EdgeList graph(n);
  // Random spanning tree: attach each vertex to a random earlier vertex.
  for (Index u = 1; u < n; ++u) {
    std::uniform_int_distribution<Index> pick(0, u - 1);
    const Index p = pick(rng);
    graph.edges().push_back({p, u, 1.0});
    graph.edges().push_back({u, p, 1.0});
  }
  std::uniform_int_distribution<Index> pick(0, n - 1);
  for (std::size_t e = 0; e < extra_edges; ++e) {
    const Index u = pick(rng), v = pick(rng);
    if (u == v) continue;
    graph.edges().push_back({u, v, 1.0});
    graph.edges().push_back({v, u, 1.0});
  }
  return graph;
}

}  // namespace dsg
