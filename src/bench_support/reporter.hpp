// reporter.hpp — ASCII table / CSV output for the benchmark harness.
//
// Each Fig.-3/Fig.-4-style experiment prints one row per graph (sorted by
// ascending node count, as the paper's x-axes are) plus a summary row with
// the average factor the paper headlines.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dsg {

/// A simple column-aligned table with an optional title and footer lines.
class TableReporter {
 public:
  explicit TableReporter(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  void add_footer(std::string line);

  /// Renders the aligned table.
  void print(std::ostream& out) const;

  /// Renders as CSV (header + rows; footers become '# ' comments).
  void print_csv(std::ostream& out) const;

  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> footers_;
};

/// Formats a double with `digits` significant decimals.
std::string format_double(double value, int digits = 3);

/// Formats milliseconds adaptively (us below 0.1ms, s above 10000ms).
std::string format_ms(double ms);

}  // namespace dsg
