#include "bench_support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace dsg {

RunStatistics summarize(std::vector<double> samples) {
  RunStatistics s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.count = samples.size();
  s.min = samples.front();
  s.max = samples.back();
  s.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
           static_cast<double>(samples.size());
  const std::size_t mid = samples.size() / 2;
  s.median = (samples.size() % 2 == 1)
                 ? samples[mid]
                 : 0.5 * (samples[mid - 1] + samples[mid]);
  if (samples.size() > 1) {
    double ss = 0.0;
    for (double x : samples) ss += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(samples.size() - 1));
  }
  return s;
}

double geometric_mean(const std::vector<double>& values) {
  double log_sum = 0.0;
  std::size_t n = 0;
  for (double v : values) {
    if (v > 0.0) {
      log_sum += std::log(v);
      ++n;
    }
  }
  return n == 0 ? 0.0 : std::exp(log_sum / static_cast<double>(n));
}

double arithmetic_mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

}  // namespace dsg
