// stats.hpp — summary statistics over repeated measurements.
#pragma once

#include <cstddef>
#include <vector>

namespace dsg {

struct RunStatistics {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;
};

/// Computes min/max/mean/median/sample-stddev of `samples`.
/// Empty input yields a zeroed block.
RunStatistics summarize(std::vector<double> samples);

/// Geometric mean; ignores non-positive entries (returns 0 if none valid).
/// Fig. 3's "3.7x average improvement" is a mean over per-graph speedups —
/// we report both arithmetic and geometric means.
double geometric_mean(const std::vector<double>& values);

/// Arithmetic mean (0 for empty input).
double arithmetic_mean(const std::vector<double>& values);

}  // namespace dsg
