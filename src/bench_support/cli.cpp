#include "bench_support/cli.hpp"

#include <cstdlib>

namespace dsg {

CliArgs::CliArgs(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int k = 1; k < argc; ++k) {
    std::string arg = argv[k];
    if (arg.rfind("--", 0) == 0) {
      std::string name = arg.substr(2);
      const auto eq = name.find('=');
      if (eq != std::string::npos) {
        named_[name.substr(0, eq)] = name.substr(eq + 1);
      } else if (k + 1 < argc && std::string(argv[k + 1]).rfind("--", 0) != 0) {
        named_[name] = argv[++k];
      } else {
        named_[name] = "";
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return named_.count(name) > 0;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  auto it = named_.find(name);
  return it == named_.end() ? fallback : it->second;
}

long long CliArgs::get_int(const std::string& name, long long fallback) const {
  auto it = named_.find(name);
  if (it == named_.end() || it->second.empty()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  auto it = named_.find(name);
  if (it == named_.end() || it->second.empty()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

}  // namespace dsg
