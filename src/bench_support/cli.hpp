// cli.hpp — minimal argument parsing shared by the bench binaries and
// examples: `--flag`, `--key value`, `--key=value`.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace dsg {

class CliArgs {
 public:
  CliArgs(int argc, char** argv);

  /// True if --name was passed (with or without a value).
  bool has(const std::string& name) const;

  /// Value of --name, or `fallback`.
  std::string get(const std::string& name,
                  const std::string& fallback = "") const;
  long long get_int(const std::string& name, long long fallback) const;
  double get_double(const std::string& name, double fallback) const;

  /// Non-flag positional arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> named_;
  std::vector<std::string> positional_;
};

}  // namespace dsg
