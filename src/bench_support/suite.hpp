// suite.hpp — the standard benchmark graph suite.
//
// Stand-ins for the SNAP / GraphChallenge collection the paper uses
// (symmetric, undirected, unit weights; see DESIGN.md §4 for the
// substitution argument).  Graphs are listed in ascending node count, the
// sort order of Fig. 3 / Fig. 4's x-axes.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graph/edge_list.hpp"

namespace dsg {

struct SuiteEntry {
  std::string name;      ///< e.g. "rmat-13" (stand-in for soc-Epinions1)
  std::string stand_in;  ///< which paper-family dataset this substitutes
  std::function<EdgeList()> make;
};

/// The full suite (9 graphs, ~1e2 .. ~3e5 vertices), unit weights,
/// symmetrized and normalized (no self loops, deduped).
std::vector<SuiteEntry> benchmark_suite();

/// A reduced suite for quick runs / CI (first `count` entries).
std::vector<SuiteEntry> quick_suite(std::size_t count = 4);

/// Weighted variants for the Δ-sweep ablation: same structures, uniform
/// real weights in [w_lo, w_hi).
std::vector<SuiteEntry> weighted_suite(double w_lo = 0.1, double w_hi = 10.0);

}  // namespace dsg
