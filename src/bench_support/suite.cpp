#include "bench_support/suite.hpp"

#include "graph/generators.hpp"
#include "graph/weights.hpp"

namespace dsg {

namespace {

EdgeList finalize(EdgeList graph) {
  graph.symmetrize();
  graph.normalize();
  assign_unit_weights(graph);
  return graph;
}

}  // namespace

std::vector<SuiteEntry> benchmark_suite() {
  // Ordered by ascending node count, like the paper's figures.
  return {
      {"smallworld-0.3k", "ca-* collaboration (small)",
       [] {
         return finalize(generate_small_world(300, 4, 0.1, 7));
       }},
      {"grid-24x24", "road network (small)",
       [] { return finalize(generate_grid2d(24, 24)); }},
      {"rmat-10", "as-caida autonomous systems",
       [] {
         return finalize(generate_rmat({.scale = 10, .edge_factor = 8,
                                        .seed = 11}));
       }},
      {"erdos-4k", "p2p-Gnutella (sparse random)",
       [] { return finalize(generate_erdos_renyi(4000, 24000, 13)); }},
      {"rmat-13", "soc-Epinions1 (social)",
       [] {
         return finalize(generate_rmat({.scale = 13, .edge_factor = 12,
                                        .seed = 17}));
       }},
      {"grid-128x128", "roadNet tile (medium)",
       [] { return finalize(generate_grid2d(128, 128)); }},
      {"smallworld-30k", "email-Enron (small world)",
       [] {
         return finalize(generate_small_world(30000, 8, 0.05, 19));
       }},
      {"rmat-16", "soc-Slashdot / amazon0302 scale",
       [] {
         return finalize(generate_rmat({.scale = 16, .edge_factor = 12,
                                        .seed = 23}));
       }},
      {"grid-512x512", "roadNet-PA tile (large)",
       [] { return finalize(generate_grid2d(512, 512)); }},
  };
}

std::vector<SuiteEntry> quick_suite(std::size_t count) {
  auto all = benchmark_suite();
  if (count < all.size()) all.resize(count);
  return all;
}

std::vector<SuiteEntry> weighted_suite(double w_lo, double w_hi) {
  auto suite = benchmark_suite();
  for (auto& entry : suite) {
    auto base = entry.make;
    entry.make = [base, w_lo, w_hi] {
      EdgeList graph = base();
      assign_uniform_weights(graph, w_lo, w_hi, 101);
      return graph;
    };
    entry.name += "-w";
  }
  return suite;
}

}  // namespace dsg
