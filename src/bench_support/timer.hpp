// timer.hpp — measurement primitives.
//
// The paper times with the Intel RDTSC instruction at fixed CPU frequency.
// We provide both an rdtsc cycle counter (x86-64 only) and a monotonic
// wall-clock timer; the harness reports milliseconds like Fig. 3 and uses
// wall time as ground truth (the container's frequency is not pinned).
#pragma once

#include <chrono>
#include <cstdint>

namespace dsg {

/// Reads the time-stamp counter; 0 on non-x86 builds.
std::uint64_t read_tsc();

/// Estimates the TSC frequency (ticks/second) by spinning ~50ms against
/// steady_clock.  Returns 0 when the TSC is unavailable.
double estimate_tsc_hz();

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds since construction/reset.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Cycle-counter stopwatch in the spirit of the paper's RDTSC timing.
class TscTimer {
 public:
  TscTimer() : start_(read_tsc()) {}
  void reset() { start_ = read_tsc(); }
  std::uint64_t ticks() const { return read_tsc() - start_; }

 private:
  std::uint64_t start_;
};

}  // namespace dsg
