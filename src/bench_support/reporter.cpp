#include "bench_support/reporter.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace dsg {

void TableReporter::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TableReporter::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TableReporter::add_footer(std::string line) {
  footers_.push_back(std::move(line));
}

void TableReporter::print(std::ostream& out) const {
  // Column widths.
  std::vector<std::size_t> width(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    if (row.size() > width.size()) width.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::size_t total = 0;
  for (std::size_t w : width) total += w + 3;

  out << "\n== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(width[c]) + 3) << row[c];
    }
    out << "\n";
  };
  if (!header_.empty()) {
    print_row(header_);
    out << std::string(total, '-') << "\n";
  }
  for (const auto& row : rows_) print_row(row);
  if (!footers_.empty()) {
    out << std::string(total, '-') << "\n";
    for (const auto& line : footers_) out << line << "\n";
  }
  out.flush();
}

void TableReporter::print_csv(std::ostream& out) const {
  auto csv_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ",";
      // Quote fields containing commas.
      if (row[c].find(',') != std::string::npos) {
        out << '"' << row[c] << '"';
      } else {
        out << row[c];
      }
    }
    out << "\n";
  };
  if (!header_.empty()) csv_row(header_);
  for (const auto& row : rows_) csv_row(row);
  for (const auto& line : footers_) out << "# " << line << "\n";
  out.flush();
}

std::string format_double(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

std::string format_ms(double ms) {
  std::ostringstream os;
  if (ms < 0.1) {
    os << std::fixed << std::setprecision(1) << ms * 1e3 << "us";
  } else if (ms > 1e4) {
    os << std::fixed << std::setprecision(2) << ms / 1e3 << "s";
  } else {
    os << std::fixed << std::setprecision(2) << ms << "ms";
  }
  return os.str();
}

}  // namespace dsg
