#include "bench_support/timer.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace dsg {

std::uint64_t read_tsc() {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#else
  return 0;
#endif
}

double estimate_tsc_hz() {
  const std::uint64_t t0 = read_tsc();
  if (t0 == 0 && read_tsc() == 0) return 0.0;
  const auto w0 = std::chrono::steady_clock::now();
  // Spin for ~50ms.
  for (;;) {
    const auto w1 = std::chrono::steady_clock::now();
    const double elapsed = std::chrono::duration<double>(w1 - w0).count();
    if (elapsed >= 0.05) {
      const std::uint64_t t1 = read_tsc();
      return static_cast<double>(t1 - t0) / elapsed;
    }
  }
}

}  // namespace dsg
