// solver_c.cpp — the v2 C API: DsgSolver_* plan/execute handles over
// dsg::sssp::SsspSolver (see the header block in capi/graphblas.h).
//
// Compiled into the dsg_sssp library (not the GrB_* shared binding): the
// solver handles sit above the SSSP layer, while the GrB_* binding sits
// below it — folding both into one library would create a dependency
// cycle.  The shared piece is capi_internal.hpp, the opaque layouts.
//
// Error-code discipline: every entry traps all exceptions and maps them to
// GrB_Info (the same table as the v1 binding); nothing ever throws across
// the C boundary.
#include <algorithm>
#include <exception>
#include <new>

#include "capi/capi_internal.hpp"
#include "capi/graphblas.h"
#include "sssp/query_control.hpp"
#include "sssp/solver.hpp"

struct DsgSolver_opaque {
  dsg::sssp::SsspSolver impl;
};

namespace {

/// Translates grb:: exceptions into GrB_Info codes at the API boundary.
template <typename Fn>
GrB_Info guarded(Fn&& fn) {
  try {
    fn();
    return GrB_SUCCESS;
  } catch (const grb::DimensionMismatch&) {
    return GrB_DIMENSION_MISMATCH;
  } catch (const grb::IndexOutOfBounds&) {
    return GrB_INVALID_INDEX;
  } catch (const grb::InvalidValue&) {
    return GrB_INVALID_VALUE;
  } catch (const std::bad_alloc&) {
    return GrB_OUT_OF_MEMORY;
  } catch (...) {
    return GrB_PANIC;
  }
}

/// The same exception table as guarded(), applied to a captured exception
/// (per-query classification for the batch _opts entry point).
GrB_Info classify(const std::exception_ptr& e) {
  return guarded([&] { std::rethrow_exception(e); });
}

/// Maps an interruption status to its DSG_* code (kComplete = GrB_SUCCESS).
GrB_Info status_code(dsg::SsspStatus status) {
  switch (status) {
    case dsg::SsspStatus::kComplete: return GrB_SUCCESS;
    case dsg::SsspStatus::kDeadlineExpired: return DSG_TIMEOUT;
    case dsg::SsspStatus::kCancelled: return DSG_CANCELLED;
    case dsg::SsspStatus::kFailed: return GrB_PANIC;  // unreachable here
  }
  return GrB_PANIC;
}

}  // namespace

extern "C" {

GrB_Info DsgSolver_new(DsgSolver* solver, GrB_Matrix a,
                       DsgSsspAlgorithm algorithm, double delta) {
  if (!solver || !a) return GrB_NULL_POINTER;
  *solver = nullptr;
  const int alg = static_cast<int>(algorithm);
  if (alg < 0 || alg >= dsg::sssp::kNumAlgorithms) {
    return GrB_INVALID_VALUE;
  }
  return guarded([&] {
    dsg::sssp::SolverOptions options;
    options.algorithm = static_cast<dsg::sssp::Algorithm>(algorithm);
    options.delta = delta;
    // Snapshot: the solver owns a copy, so the caller may free or mutate
    // `a` afterwards.
    *solver = new DsgSolver_opaque{
        dsg::sssp::SsspSolver(grb::Matrix<double>(a->impl), options)};
  });
}

GrB_Info DsgSolver_nrows(GrB_Index* n, DsgSolver solver) {
  if (!n || !solver) return GrB_NULL_POINTER;
  return guarded([&] { *n = solver->impl.num_vertices(); });
}

GrB_Info DsgSolver_delta(double* delta, DsgSolver solver) {
  if (!delta || !solver) return GrB_NULL_POINTER;
  return guarded([&] { *delta = solver->impl.delta(); });
}

GrB_Info DsgSolver_algorithm_name(const char** name, DsgSolver solver) {
  if (!name || !solver) return GrB_NULL_POINTER;
  return guarded(
      [&] { *name = dsg::sssp::algorithm_info(solver->impl.algorithm()).name; });
}

GrB_Info DsgSolver_solve(DsgSolver solver, GrB_Index source, double* dist) {
  if (!solver || !dist) return GrB_NULL_POINTER;
  return guarded([&] {
    dsg::SsspResult result = solver->impl.solve(source);
    std::copy(result.dist.begin(), result.dist.end(), dist);
  });
}

GrB_Info DsgSolver_solve_batch(DsgSolver solver, const GrB_Index* sources,
                               GrB_Index batch, double* dist) {
  if (!solver || (batch > 0 && (!sources || !dist))) return GrB_NULL_POINTER;
  return guarded([&] {
    std::span<const grb::Index> span(sources, batch);
    std::vector<dsg::SsspResult> results = solver->impl.solve_batch(span);
    const std::size_t n = solver->impl.num_vertices();
    for (std::size_t k = 0; k < results.size(); ++k) {
      std::copy(results[k].dist.begin(), results[k].dist.end(),
                dist + k * n);
    }
  });
}

GrB_Info DsgSolver_free(DsgSolver* solver) {
  if (!solver) return GrB_NULL_POINTER;
  return guarded([&] {
    delete *solver;
    *solver = nullptr;
  });
}

/* --- Query lifecycle. --------------------------------------------------- */

GrB_Info DsgQueryControl_new(DsgQueryControl* control) {
  if (!control) return GrB_NULL_POINTER;
  *control = nullptr;
  return guarded([&] { *control = new DsgQueryControl_opaque(); });
}

GrB_Info DsgQueryControl_set_timeout(DsgQueryControl control, double seconds) {
  if (!control) return GrB_NULL_POINTER;
  return guarded([&] { control->impl.set_timeout(seconds); });
}

GrB_Info DsgQueryControl_cancel(DsgQueryControl control) {
  if (!control) return GrB_NULL_POINTER;
  return guarded([&] { control->impl.request_cancel(); });
}

GrB_Info DsgQueryControl_reset(DsgQueryControl control) {
  if (!control) return GrB_NULL_POINTER;
  return guarded([&] { control->impl.reset(); });
}

GrB_Info DsgQueryControl_free(DsgQueryControl* control) {
  if (!control) return GrB_NULL_POINTER;
  return guarded([&] {
    delete *control;
    *control = nullptr;
  });
}

GrB_Info DsgSolver_solve_opts(DsgSolver solver, GrB_Index source,
                              double* dist, DsgQueryControl control) {
  if (!solver || !dist) return GrB_NULL_POINTER;
  GrB_Info soft = GrB_SUCCESS;
  const GrB_Info hard = guarded([&] {
    dsg::SsspResult result =
        control ? solver->impl.solve(source, control->impl)
                : solver->impl.solve(source);
    std::copy(result.dist.begin(), result.dist.end(), dist);
    soft = status_code(result.status);
  });
  return hard != GrB_SUCCESS ? hard : soft;
}

GrB_Info DsgSolver_solve_batch_opts(DsgSolver solver,
                                    const GrB_Index* sources, GrB_Index batch,
                                    double* dist, DsgQueryControl control,
                                    GrB_Info* statuses) {
  if (!solver || (batch > 0 && (!sources || !dist || !statuses))) {
    return GrB_NULL_POINTER;
  }
  return guarded([&] {
    dsg::sssp::BatchOptions opts;
    opts.control = control ? &control->impl : nullptr;
    std::span<const grb::Index> span(sources, batch);
    std::vector<dsg::sssp::QueryResult> results =
        solver->impl.solve_batch(span, opts);
    const std::size_t n = solver->impl.num_vertices();
    for (std::size_t k = 0; k < results.size(); ++k) {
      if (!results[k].ok()) {
        statuses[k] = classify(results[k].exception);
        continue;  // the failed query's distance slice stays untouched
      }
      std::copy(results[k].result.dist.begin(), results[k].result.dist.end(),
                dist + k * n);
      statuses[k] = status_code(results[k].result.status);
    }
  });
}

}  // extern "C"
