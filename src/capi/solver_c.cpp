// solver_c.cpp — the v2 C API: DsgSolver_* plan/execute handles over
// dsg::sssp::SsspSolver (see the header block in capi/graphblas.h).
//
// Compiled into the dsg_sssp library (not the GrB_* shared binding): the
// solver handles sit above the SSSP layer, while the GrB_* binding sits
// below it — folding both into one library would create a dependency
// cycle.  The shared piece is capi_internal.hpp, the opaque layouts.
//
// Error-code discipline: every entry traps all exceptions and maps them to
// GrB_Info (the same table as the v1 binding); nothing ever throws across
// the C boundary.
#include <algorithm>
#include <new>

#include "capi/capi_internal.hpp"
#include "capi/graphblas.h"
#include "sssp/solver.hpp"

struct DsgSolver_opaque {
  dsg::sssp::SsspSolver impl;
};

namespace {

/// Translates grb:: exceptions into GrB_Info codes at the API boundary.
template <typename Fn>
GrB_Info guarded(Fn&& fn) {
  try {
    fn();
    return GrB_SUCCESS;
  } catch (const grb::DimensionMismatch&) {
    return GrB_DIMENSION_MISMATCH;
  } catch (const grb::IndexOutOfBounds&) {
    return GrB_INVALID_INDEX;
  } catch (const grb::InvalidValue&) {
    return GrB_INVALID_VALUE;
  } catch (const std::bad_alloc&) {
    return GrB_OUT_OF_MEMORY;
  } catch (...) {
    return GrB_PANIC;
  }
}

}  // namespace

extern "C" {

GrB_Info DsgSolver_new(DsgSolver* solver, GrB_Matrix a,
                       DsgSsspAlgorithm algorithm, double delta) {
  if (!solver || !a) return GrB_NULL_POINTER;
  *solver = nullptr;
  const int alg = static_cast<int>(algorithm);
  if (alg < 0 || alg >= dsg::sssp::kNumAlgorithms) {
    return GrB_INVALID_VALUE;
  }
  return guarded([&] {
    dsg::sssp::SolverOptions options;
    options.algorithm = static_cast<dsg::sssp::Algorithm>(algorithm);
    options.delta = delta;
    // Snapshot: the solver owns a copy, so the caller may free or mutate
    // `a` afterwards.
    *solver = new DsgSolver_opaque{
        dsg::sssp::SsspSolver(grb::Matrix<double>(a->impl), options)};
  });
}

GrB_Info DsgSolver_nrows(GrB_Index* n, DsgSolver solver) {
  if (!n || !solver) return GrB_NULL_POINTER;
  *n = solver->impl.num_vertices();
  return GrB_SUCCESS;
}

GrB_Info DsgSolver_delta(double* delta, DsgSolver solver) {
  if (!delta || !solver) return GrB_NULL_POINTER;
  *delta = solver->impl.delta();
  return GrB_SUCCESS;
}

GrB_Info DsgSolver_algorithm_name(const char** name, DsgSolver solver) {
  if (!name || !solver) return GrB_NULL_POINTER;
  *name = dsg::sssp::algorithm_info(solver->impl.algorithm()).name;
  return GrB_SUCCESS;
}

GrB_Info DsgSolver_solve(DsgSolver solver, GrB_Index source, double* dist) {
  if (!solver || !dist) return GrB_NULL_POINTER;
  return guarded([&] {
    dsg::SsspResult result = solver->impl.solve(source);
    std::copy(result.dist.begin(), result.dist.end(), dist);
  });
}

GrB_Info DsgSolver_solve_batch(DsgSolver solver, const GrB_Index* sources,
                               GrB_Index batch, double* dist) {
  if (!solver || (batch > 0 && (!sources || !dist))) return GrB_NULL_POINTER;
  return guarded([&] {
    std::span<const grb::Index> span(sources, batch);
    std::vector<dsg::SsspResult> results = solver->impl.solve_batch(span);
    const std::size_t n = solver->impl.num_vertices();
    for (std::size_t k = 0; k < results.size(); ++k) {
      std::copy(results[k].dist.begin(), results[k].dist.end(),
                dist + k * n);
    }
  });
}

GrB_Info DsgSolver_free(DsgSolver* solver) {
  if (!solver) return GrB_NULL_POINTER;
  delete *solver;
  *solver = nullptr;
  return GrB_SUCCESS;
}

}  // extern "C"
