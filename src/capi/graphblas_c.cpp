// graphblas_c.cpp — implementation of the C API shim (capi/graphblas.h)
// over the grb:: template core.
//
// All C-level objects store FP64; boolean results live as 0.0/1.0 and
// value masks test truthiness, so the semantics of the paper's listing
// (including the Sec. V-B eWiseAdd behaviour) carry over unchanged.
#include "capi/graphblas.h"

#include <new>

#include "capi/capi_internal.hpp"  // the opaque object layouts
#include "graphblas/graphblas.hpp"
#include "testing/fault_injection.hpp"

namespace {

// Functional wrappers so the template kernels can consume C objects.
struct CUnary {
  double (*fn)(double);
  double operator()(const double& x) const { return fn(x); }
};

struct CBinary {
  double (*fn)(double, double);
  double operator()(const double& a, const double& b) const {
    return fn(a, b);
  }
};

struct CSemiring {
  using value_type = double;
  const GrB_Semiring_opaque* sr;
  double mult(const double& a, const double& b) const {
    return sr->mult(a, b);
  }
  double add(const double& a, const double& b) const { return sr->add(a, b); }
  double zero() const { return sr->zero; }
};

grb::Descriptor resolve_desc(GrB_Descriptor desc) {
  return desc ? desc->impl : grb::default_desc;
}

/// Translates grb:: exceptions into GrB_Info codes at the API boundary.
template <typename Fn>
GrB_Info guarded(Fn&& fn) {
  try {
    fn();
    return GrB_SUCCESS;
  } catch (const grb::DimensionMismatch&) {
    return GrB_DIMENSION_MISMATCH;
  } catch (const grb::IndexOutOfBounds&) {
    return GrB_INVALID_INDEX;
  } catch (const grb::InvalidValue&) {
    return GrB_INVALID_VALUE;
  } catch (const std::bad_alloc&) {
    return GrB_OUT_OF_MEMORY;
  } catch (...) {
    return GrB_PANIC;
  }
}

// Predefined operator trampolines.
double id_fn(double x) { return x; }
double id_bool_fn(double x) { return x != 0.0; }
double ainv_fn(double x) { return -x; }
double lnot_fn(double x) { return x == 0.0 ? 1.0 : 0.0; }
double plus_fn(double a, double b) { return a + b; }
double minus_fn(double a, double b) { return a - b; }
double times_fn(double a, double b) { return a * b; }
double min_fn(double a, double b) { return b < a ? b : a; }
double max_fn(double a, double b) { return a < b ? b : a; }
double lt_fn(double a, double b) { return a < b ? 1.0 : 0.0; }
double le_fn(double a, double b) { return a <= b ? 1.0 : 0.0; }
double gt_fn(double a, double b) { return a > b ? 1.0 : 0.0; }
double ge_fn(double a, double b) { return a >= b ? 1.0 : 0.0; }
double eq_fn(double a, double b) { return a == b ? 1.0 : 0.0; }
double lor_fn(double a, double b) {
  return (a != 0.0 || b != 0.0) ? 1.0 : 0.0;
}
double land_fn(double a, double b) {
  return (a != 0.0 && b != 0.0) ? 1.0 : 0.0;
}
double first_fn(double a, double) { return a; }
double second_fn(double, double b) { return b; }

GrB_UnaryOp_opaque kIdentityFp64{id_fn};
GrB_UnaryOp_opaque kIdentityBool{id_bool_fn};
GrB_UnaryOp_opaque kAinvFp64{ainv_fn};
GrB_UnaryOp_opaque kLnot{lnot_fn};
GrB_BinaryOp_opaque kPlusFp64{plus_fn};
GrB_BinaryOp_opaque kMinusFp64{minus_fn};
GrB_BinaryOp_opaque kTimesFp64{times_fn};
GrB_BinaryOp_opaque kMinFp64{min_fn};
GrB_BinaryOp_opaque kMaxFp64{max_fn};
GrB_BinaryOp_opaque kLtFp64{lt_fn};
GrB_BinaryOp_opaque kLeFp64{le_fn};
GrB_BinaryOp_opaque kGtFp64{gt_fn};
GrB_BinaryOp_opaque kGeFp64{ge_fn};
GrB_BinaryOp_opaque kEqFp64{eq_fn};
GrB_BinaryOp_opaque kLor{lor_fn};
GrB_BinaryOp_opaque kLand{land_fn};
GrB_BinaryOp_opaque kFirstFp64{first_fn};
GrB_BinaryOp_opaque kSecondFp64{second_fn};

GrB_Semiring_opaque kMinPlusFp64{
    min_fn, plus_fn, grb::infinity_value<double>()};
GrB_Semiring_opaque kPlusTimesFp64{plus_fn, times_fn, 0.0};
GrB_Semiring_opaque kMinFirstFp64{
    min_fn, first_fn, grb::infinity_value<double>()};
GrB_Semiring_opaque kLorLandBool{lor_fn, land_fn, 0.0};

/// Runs a masked vector operation dispatching on the optional mask/accum.
/// The C API has no context parameter, so operations run on the
/// thread-local grb::default_context(): a process using the C binding gets
/// cross-call workspace reuse (sparse accumulator reset, staging-buffer
/// recycling) with no API change, matching the listing in the paper.
template <typename Kernel>
GrB_Info run_vector_op(GrB_Vector w, GrB_Vector mask, GrB_BinaryOp accum,
                       GrB_Descriptor desc, Kernel&& kernel) {
  if (!w) return GrB_NULL_POINTER;
  return guarded([&] {
    grb::Context& ctx = grb::default_context();
    const grb::Descriptor d = resolve_desc(desc);
    if (mask && accum) {
      kernel(ctx, w->impl, mask->impl, CBinary{accum->fn}, d);
    } else if (mask) {
      kernel(ctx, w->impl, mask->impl, grb::NoAccumulate{}, d);
    } else if (accum) {
      kernel(ctx, w->impl, grb::NoMask{}, CBinary{accum->fn}, d);
    } else {
      kernel(ctx, w->impl, grb::NoMask{}, grb::NoAccumulate{}, d);
    }
  });
}

template <typename Kernel>
GrB_Info run_matrix_op(GrB_Matrix c, GrB_Matrix mask, GrB_BinaryOp accum,
                       GrB_Descriptor desc, Kernel&& kernel) {
  if (!c) return GrB_NULL_POINTER;
  return guarded([&] {
    const grb::Descriptor d = resolve_desc(desc);
    if (mask && accum) {
      kernel(c->impl, mask->impl, CBinary{accum->fn}, d);
    } else if (mask) {
      kernel(c->impl, mask->impl, grb::NoAccumulate{}, d);
    } else if (accum) {
      kernel(c->impl, grb::NoMask{}, CBinary{accum->fn}, d);
    } else {
      kernel(c->impl, grb::NoMask{}, grb::NoAccumulate{}, d);
    }
  });
}

}  // namespace

// --- Predefined operator handles. ---------------------------------------------

GrB_UnaryOp GrB_IDENTITY_FP64 = &kIdentityFp64;
GrB_UnaryOp GrB_IDENTITY_BOOL = &kIdentityBool;
GrB_UnaryOp GrB_AINV_FP64 = &kAinvFp64;
GrB_UnaryOp GrB_LNOT = &kLnot;
GrB_BinaryOp GrB_PLUS_FP64 = &kPlusFp64;
GrB_BinaryOp GrB_MINUS_FP64 = &kMinusFp64;
GrB_BinaryOp GrB_TIMES_FP64 = &kTimesFp64;
GrB_BinaryOp GrB_MIN_FP64 = &kMinFp64;
GrB_BinaryOp GrB_MAX_FP64 = &kMaxFp64;
GrB_BinaryOp GrB_LT_FP64 = &kLtFp64;
GrB_BinaryOp GrB_LE_FP64 = &kLeFp64;
GrB_BinaryOp GrB_GT_FP64 = &kGtFp64;
GrB_BinaryOp GrB_GE_FP64 = &kGeFp64;
GrB_BinaryOp GrB_EQ_FP64 = &kEqFp64;
GrB_BinaryOp GrB_LOR = &kLor;
GrB_BinaryOp GrB_LAND = &kLand;
GrB_BinaryOp GrB_FIRST_FP64 = &kFirstFp64;
GrB_BinaryOp GrB_SECOND_FP64 = &kSecondFp64;
GrB_Semiring GxB_MIN_PLUS_FP64 = &kMinPlusFp64;
GrB_Semiring GxB_PLUS_TIMES_FP64 = &kPlusTimesFp64;
GrB_Semiring GxB_MIN_FIRST_FP64 = &kMinFirstFp64;
GrB_Semiring GxB_LOR_LAND_BOOL = &kLorLandBool;

// --- Descriptor. ----------------------------------------------------------------

GrB_Info GrB_Descriptor_new(GrB_Descriptor* desc) {
  if (!desc) return GrB_NULL_POINTER;
  *desc = nullptr;
  return guarded([&] { *desc = new GrB_Descriptor_opaque{}; });
}

GrB_Info GrB_Descriptor_set(GrB_Descriptor desc, GrB_Desc_Field field,
                            GrB_Desc_Value value) {
  if (!desc) return GrB_NULL_POINTER;
  return guarded([&] {
    switch (field) {
      case GrB_OUTP:
        if (value == GrB_REPLACE) {
          desc->impl.replace = true;
        } else if (value == GrB_DEFAULT) {
          desc->impl.replace = false;
        } else {
          throw grb::InvalidValue("GrB_Descriptor_set: bad GrB_OUTP value");
        }
        return;
      case GrB_MASK:
        if (value == GrB_COMP) {
          desc->impl.mask_complement = true;
        } else if (value == GrB_STRUCTURE) {
          desc->impl.mask_structure = true;
        } else if (value == GrB_DEFAULT) {
          desc->impl.mask_complement = false;
          desc->impl.mask_structure = false;
        } else {
          throw grb::InvalidValue("GrB_Descriptor_set: bad GrB_MASK value");
        }
        return;
      case GrB_INP0:
        desc->impl.transpose_in0 = (value == GrB_TRAN);
        return;
      case GrB_INP1:
        desc->impl.transpose_in1 = (value == GrB_TRAN);
        return;
    }
    throw grb::InvalidValue("GrB_Descriptor_set: unknown field");
  });
}

GrB_Info GrB_Descriptor_free(GrB_Descriptor* desc) {
  if (!desc) return GrB_NULL_POINTER;
  return guarded([&] {
    delete *desc;
    *desc = nullptr;
  });
}

// --- User operators. ---------------------------------------------------------------

GrB_Info GrB_UnaryOp_new(GrB_UnaryOp* op, double (*fn)(double)) {
  if (!op || !fn) return GrB_NULL_POINTER;
  *op = nullptr;
  return guarded([&] { *op = new GrB_UnaryOp_opaque{fn}; });
}

GrB_Info GrB_UnaryOp_free(GrB_UnaryOp* op) {
  if (!op) return GrB_NULL_POINTER;
  return guarded([&] {
    delete *op;
    *op = nullptr;
  });
}

GrB_Info GrB_BinaryOp_new(GrB_BinaryOp* op, double (*fn)(double, double)) {
  if (!op || !fn) return GrB_NULL_POINTER;
  *op = nullptr;
  return guarded([&] { *op = new GrB_BinaryOp_opaque{fn}; });
}

GrB_Info GrB_BinaryOp_free(GrB_BinaryOp* op) {
  if (!op) return GrB_NULL_POINTER;
  return guarded([&] {
    delete *op;
    *op = nullptr;
  });
}

// --- Vector object management. -------------------------------------------------------

GrB_Info GrB_Vector_new(GrB_Vector* v, GrB_Index n) {
  if (!v) return GrB_NULL_POINTER;
  // guarded, not bare nothrow-new: the inner grb::Vector construction
  // allocates and its bad_alloc must map to GrB_OUT_OF_MEMORY, not escape
  // the extern "C" boundary.
  *v = nullptr;
  return guarded([&] {
    dsg::testing::fault_point("capi/object_new");
    *v = new GrB_Vector_opaque{grb::Vector<double>(n)};
  });
}

GrB_Info GrB_Vector_dup(GrB_Vector* copy, GrB_Vector v) {
  if (!copy || !v) return GrB_NULL_POINTER;
  *copy = nullptr;
  return guarded([&] {
    dsg::testing::fault_point("capi/object_new");
    *copy = new GrB_Vector_opaque{v->impl};
  });
}

GrB_Info GrB_Vector_free(GrB_Vector* v) {
  if (!v) return GrB_NULL_POINTER;
  return guarded([&] {
    delete *v;
    *v = nullptr;
  });
}

GrB_Info GrB_Vector_size(GrB_Index* n, GrB_Vector v) {
  if (!n || !v) return GrB_NULL_POINTER;
  return guarded([&] { *n = v->impl.size(); });
}

GrB_Info GrB_Vector_nvals(GrB_Index* nvals, GrB_Vector v) {
  if (!nvals || !v) return GrB_NULL_POINTER;
  return guarded([&] { *nvals = v->impl.nvals(); });
}

GrB_Info GrB_Vector_clear(GrB_Vector v) {
  if (!v) return GrB_NULL_POINTER;
  return guarded([&] { v->impl.clear(); });
}

GrB_Info GrB_Vector_setElement_FP64(GrB_Vector v, double x, GrB_Index i) {
  if (!v) return GrB_NULL_POINTER;
  return guarded([&] { v->impl.set_element(i, x); });
}

GrB_Info GrB_Vector_extractElement_FP64(double* x, GrB_Vector v,
                                        GrB_Index i) {
  if (!x || !v) return GrB_NULL_POINTER;
  // GrB_NO_VALUE / GrB_INVALID_INDEX are soft outcomes, not exceptions:
  // report them through `soft` unless the guarded body failed harder.
  GrB_Info soft = GrB_SUCCESS;
  const GrB_Info hard = guarded([&] {
    if (i >= v->impl.size()) {
      soft = GrB_INVALID_INDEX;
      return;
    }
    auto value = v->impl.extract_element(i);
    if (!value) {
      soft = GrB_NO_VALUE;
      return;
    }
    *x = *value;
  });
  return hard != GrB_SUCCESS ? hard : soft;
}

GrB_Info GrB_Vector_removeElement(GrB_Vector v, GrB_Index i) {
  if (!v) return GrB_NULL_POINTER;
  return guarded([&] { v->impl.remove_element(i); });
}

GrB_Info GrB_Vector_extractTuples_FP64(GrB_Index* indices, double* values,
                                       GrB_Index* count, GrB_Vector v) {
  if (!indices || !values || !count || !v) return GrB_NULL_POINTER;
  GrB_Info soft = GrB_SUCCESS;
  const GrB_Info hard = guarded([&] {
    if (*count < v->impl.nvals()) {
      soft = GrB_INVALID_VALUE;
      return;
    }
    GrB_Index k = 0;
    v->impl.for_each([&](grb::Index i, const double& x) {
      indices[k] = i;
      values[k] = x;
      ++k;
    });
    *count = k;
  });
  return hard != GrB_SUCCESS ? hard : soft;
}

// --- Matrix object management. ---------------------------------------------------------

GrB_Info GrB_Matrix_new(GrB_Matrix* a, GrB_Index nrows, GrB_Index ncols) {
  if (!a) return GrB_NULL_POINTER;
  // guarded for the same reason as GrB_Vector_new.
  *a = nullptr;
  return guarded([&] {
    dsg::testing::fault_point("capi/object_new");
    *a = new GrB_Matrix_opaque{grb::Matrix<double>(nrows, ncols)};
  });
}

GrB_Info GrB_Matrix_dup(GrB_Matrix* copy, GrB_Matrix a) {
  if (!copy || !a) return GrB_NULL_POINTER;
  *copy = nullptr;
  return guarded([&] {
    dsg::testing::fault_point("capi/object_new");
    *copy = new GrB_Matrix_opaque{a->impl};
  });
}

GrB_Info GrB_Matrix_free(GrB_Matrix* a) {
  if (!a) return GrB_NULL_POINTER;
  return guarded([&] {
    delete *a;
    *a = nullptr;
  });
}

GrB_Info GrB_Matrix_nrows(GrB_Index* nrows, GrB_Matrix a) {
  if (!nrows || !a) return GrB_NULL_POINTER;
  return guarded([&] { *nrows = a->impl.nrows(); });
}

GrB_Info GrB_Matrix_ncols(GrB_Index* ncols, GrB_Matrix a) {
  if (!ncols || !a) return GrB_NULL_POINTER;
  return guarded([&] { *ncols = a->impl.ncols(); });
}

GrB_Info GrB_Matrix_nvals(GrB_Index* nvals, GrB_Matrix a) {
  if (!nvals || !a) return GrB_NULL_POINTER;
  return guarded([&] { *nvals = a->impl.nvals(); });
}

GrB_Info GrB_Matrix_clear(GrB_Matrix a) {
  if (!a) return GrB_NULL_POINTER;
  return guarded([&] { a->impl.clear(); });
}

GrB_Info GrB_Matrix_setElement_FP64(GrB_Matrix a, double x, GrB_Index row,
                                    GrB_Index col) {
  if (!a) return GrB_NULL_POINTER;
  return guarded([&] { a->impl.set_element(row, col, x); });
}

GrB_Info GrB_Matrix_extractElement_FP64(double* x, GrB_Matrix a,
                                        GrB_Index row, GrB_Index col) {
  if (!x || !a) return GrB_NULL_POINTER;
  GrB_Info soft = GrB_SUCCESS;
  const GrB_Info hard = guarded([&] {
    if (row >= a->impl.nrows() || col >= a->impl.ncols()) {
      soft = GrB_INVALID_INDEX;
      return;
    }
    auto value = a->impl.extract_element(row, col);
    if (!value) {
      soft = GrB_NO_VALUE;
      return;
    }
    *x = *value;
  });
  return hard != GrB_SUCCESS ? hard : soft;
}

GrB_Info GrB_Matrix_build_FP64(GrB_Matrix a, const GrB_Index* rows,
                               const GrB_Index* cols, const double* values,
                               GrB_Index count, GrB_BinaryOp dup) {
  if (!a || !rows || !cols || !values) return GrB_NULL_POINTER;
  return guarded([&] {
    std::span<const grb::Index> r(rows, count);
    std::span<const grb::Index> c(cols, count);
    std::span<const double> v(values, count);
    if (dup) {
      a->impl = grb::Matrix<double>::build(a->impl.nrows(), a->impl.ncols(),
                                           r, c, v, CBinary{dup->fn});
    } else {
      a->impl = grb::Matrix<double>::build(a->impl.nrows(), a->impl.ncols(),
                                           r, c, v);
    }
  });
}

// --- Operations. -------------------------------------------------------------------------

GrB_Info GrB_Vector_apply(GrB_Vector w, GrB_Vector mask, GrB_BinaryOp accum,
                          GrB_UnaryOp op, GrB_Vector u, GrB_Descriptor desc) {
  if (!op || !u) return GrB_NULL_POINTER;
  return run_vector_op(w, mask, accum, desc,
                       [&](grb::Context& ctx, auto& out, const auto& m,
                           const auto& acc, const grb::Descriptor& d) {
                         grb::apply(ctx, out, m, acc, CUnary{op->fn}, u->impl,
                                    d);
                       });
}

GrB_Info GrB_Matrix_apply(GrB_Matrix c, GrB_Matrix mask, GrB_BinaryOp accum,
                          GrB_UnaryOp op, GrB_Matrix a, GrB_Descriptor desc) {
  if (!op || !a) return GrB_NULL_POINTER;
  return run_matrix_op(c, mask, accum, desc,
                       [&](auto& out, const auto& m, const auto& acc,
                           const grb::Descriptor& d) {
                         grb::apply(out, m, acc, CUnary{op->fn}, a->impl, d);
                       });
}

GrB_Info GrB_eWiseAdd(GrB_Vector w, GrB_Vector mask, GrB_BinaryOp accum,
                      GrB_BinaryOp op, GrB_Vector u, GrB_Vector v,
                      GrB_Descriptor desc) {
  if (!op || !u || !v) return GrB_NULL_POINTER;
  return run_vector_op(
      w, mask, accum, desc,
      [&](grb::Context& ctx, auto& out, const auto& m, const auto& acc,
          const grb::Descriptor& d) {
        grb::ewise_add(ctx, out, m, acc, CBinary{op->fn}, u->impl, v->impl, d);
      });
}

GrB_Info GrB_eWiseMult(GrB_Vector w, GrB_Vector mask, GrB_BinaryOp accum,
                       GrB_BinaryOp op, GrB_Vector u, GrB_Vector v,
                       GrB_Descriptor desc) {
  if (!op || !u || !v) return GrB_NULL_POINTER;
  return run_vector_op(
      w, mask, accum, desc,
      [&](grb::Context& ctx, auto& out, const auto& m, const auto& acc,
          const grb::Descriptor& d) {
        grb::ewise_mult(ctx, out, m, acc, CBinary{op->fn}, u->impl, v->impl,
                        d);
      });
}

GrB_Info GrB_vxm(GrB_Vector w, GrB_Vector mask, GrB_BinaryOp accum,
                 GrB_Semiring op, GrB_Vector u, GrB_Matrix a,
                 GrB_Descriptor desc) {
  if (!op || !u || !a) return GrB_NULL_POINTER;
  return run_vector_op(w, mask, accum, desc,
                       [&](grb::Context& ctx, auto& out, const auto& m,
                           const auto& acc, const grb::Descriptor& d) {
                         grb::vxm(ctx, out, m, acc, CSemiring{op}, u->impl,
                                  a->impl, d);
                       });
}

GrB_Info GrB_mxv(GrB_Vector w, GrB_Vector mask, GrB_BinaryOp accum,
                 GrB_Semiring op, GrB_Matrix a, GrB_Vector u,
                 GrB_Descriptor desc) {
  if (!op || !u || !a) return GrB_NULL_POINTER;
  return run_vector_op(w, mask, accum, desc,
                       [&](grb::Context& ctx, auto& out, const auto& m,
                           const auto& acc, const grb::Descriptor& d) {
                         grb::mxv(ctx, out, m, acc, CSemiring{op}, a->impl,
                                  u->impl, d);
                       });
}

GrB_Info GrB_Vector_reduce_FP64(double* out, GrB_BinaryOp accum,
                                GrB_BinaryOp monoid_op, double identity,
                                GrB_Vector u, GrB_Descriptor) {
  if (!out || !monoid_op || !u) return GrB_NULL_POINTER;
  return guarded([&] {
    grb::Monoid<double, CBinary> monoid{CBinary{monoid_op->fn}, identity};
    if (accum) {
      grb::reduce(*out, CBinary{accum->fn}, monoid, u->impl);
    } else {
      grb::reduce(*out, grb::NoAccumulate{}, monoid, u->impl);
    }
  });
}
