// capi_internal.hpp — the C API's opaque object layouts, shared between
// the GrB_* binding (graphblas_c.cpp) and the v2 solver/server handles
// (solver_c.cpp, server_c.cpp).  Not installed; C callers only ever see
// the opaque pointers from capi/graphblas.h.
#pragma once

#include "capi/graphblas.h"
#include "graphblas/descriptor.hpp"
#include "graphblas/matrix.hpp"
#include "graphblas/vector.hpp"
#include "sssp/query_control.hpp"

struct GrB_Vector_opaque {
  grb::Vector<double> impl;
};

struct GrB_Matrix_opaque {
  grb::Matrix<double> impl;
};

struct GrB_Descriptor_opaque {
  grb::Descriptor impl;
};

struct GrB_UnaryOp_opaque {
  double (*fn)(double);
};

struct GrB_BinaryOp_opaque {
  double (*fn)(double, double);
};

struct GrB_Semiring_opaque {
  double (*add)(double, double);
  double (*mult)(double, double);
  double zero;
};

// Shared by solver_c.cpp (DsgSolver_solve_opts and friends) and
// server_c.cpp (DsgServer_submit): both attach the same control handle to
// queries.
struct DsgQueryControl_opaque {
  dsg::QueryControl impl;
};
