// server_c.cpp — the C face of the serving layer: DsgServer_* handles
// over dsg::serving::SsspServer (see capi/graphblas.h for the contract
// and docs/capi.md for the reference).
//
// Compiled into the dsg_serving library, one layer above dsg_sssp's
// solver handles; the shared piece is capi_internal.hpp (opaque
// layouts).  Same error-code discipline as solver_c.cpp: every entry
// traps all exceptions and maps them to GrB_Info — nothing ever throws
// across the C boundary.
#include <algorithm>
#include <exception>
#include <new>
#include <string>

#include "capi/capi_internal.hpp"
#include "capi/graphblas.h"
#include "serving/server.hpp"
#include "sssp/query_control.hpp"

struct DsgServer_opaque {
  // SsspServer is neither movable nor copyable (it owns running
  // threads), so the opaque wrapper constructs it in place.
  template <typename... Args>
  explicit DsgServer_opaque(Args&&... args)
      : impl(std::forward<Args>(args)...) {}

  dsg::serving::SsspServer impl;
};

namespace {

/// Translates grb:: exceptions into GrB_Info codes at the API boundary
/// (the same table as solver_c.cpp — deliberately duplicated per TU so
/// the two libraries stay link-independent).
template <typename Fn>
GrB_Info guarded(Fn&& fn) {
  try {
    fn();
    return GrB_SUCCESS;
  } catch (const grb::DimensionMismatch&) {
    return GrB_DIMENSION_MISMATCH;
  } catch (const grb::IndexOutOfBounds&) {
    return GrB_INVALID_INDEX;
  } catch (const grb::InvalidValue&) {
    return GrB_INVALID_VALUE;
  } catch (const std::bad_alloc&) {
    return GrB_OUT_OF_MEMORY;
  } catch (...) {
    return GrB_PANIC;
  }
}

/// The guarded() table applied to a captured exception (classifying a
/// worker-side failure when the caller redeems the ticket).
GrB_Info classify(const std::exception_ptr& e) {
  return guarded([&] { std::rethrow_exception(e); });
}

/// Maps an interruption status to its DSG_* code (kComplete = GrB_SUCCESS).
GrB_Info status_code(dsg::SsspStatus status) {
  switch (status) {
    case dsg::SsspStatus::kComplete: return GrB_SUCCESS;
    case dsg::SsspStatus::kDeadlineExpired: return DSG_TIMEOUT;
    case dsg::SsspStatus::kCancelled: return DSG_CANCELLED;
    case dsg::SsspStatus::kFailed: return GrB_PANIC;  // unreachable here
  }
  return GrB_PANIC;
}

/// Folds the C enum (which adds DSG_SSSP_AUTO = -1) into ServerOptions.
/// Any other out-of-range value is rejected here so the error surfaces
/// before threads spin up.
void apply_algorithm(dsg::serving::ServerOptions& options,
                     DsgSsspAlgorithm algorithm) {
  const int alg = static_cast<int>(algorithm);
  if (alg == DSG_SSSP_AUTO) return;  // options.algorithm stays nullopt
  if (alg < 0 || alg >= dsg::sssp::kNumAlgorithms) {
    throw grb::InvalidValue("DsgServer_new: unknown algorithm selector");
  }
  options.algorithm = static_cast<dsg::sssp::Algorithm>(alg);
}

dsg::serving::ServerOptions make_options(DsgSsspAlgorithm algorithm,
                                         double delta, int32_t num_workers,
                                         GrB_Index queue_capacity,
                                         GrB_Index cache_capacity) {
  dsg::serving::ServerOptions options;
  apply_algorithm(options, algorithm);
  options.delta = delta;
  options.num_workers = static_cast<int>(num_workers);
  options.queue_capacity = static_cast<std::size_t>(queue_capacity);
  options.cache_capacity = static_cast<std::size_t>(cache_capacity);
  return options;
}

}  // namespace

extern "C" {

GrB_Info DsgServer_new(DsgServer* server, GrB_Matrix a,
                       DsgSsspAlgorithm algorithm, double delta,
                       int32_t num_workers, GrB_Index queue_capacity,
                       GrB_Index cache_capacity) {
  if (!server || !a) return GrB_NULL_POINTER;
  *server = nullptr;
  return guarded([&] {
    dsg::serving::ServerOptions options = make_options(
        algorithm, delta, num_workers, queue_capacity, cache_capacity);
    // Snapshot: the server owns a copy, so the caller may free or mutate
    // `a` afterwards.
    *server = new DsgServer_opaque(grb::Matrix<double>(a->impl), options);
  });
}

GrB_Info DsgServer_new_from_file(DsgServer* server, const char* path,
                                 DsgSsspAlgorithm algorithm,
                                 int32_t num_workers,
                                 GrB_Index queue_capacity,
                                 GrB_Index cache_capacity) {
  if (!server || !path) return GrB_NULL_POINTER;
  *server = nullptr;
  return guarded([&] {
    // The file pins Δ, so the options' delta is never consulted on this
    // path (the plan-sharing constructor ignores it).
    dsg::serving::ServerOptions options = make_options(
        algorithm, dsg::kAutoDelta, num_workers, queue_capacity,
        cache_capacity);
    auto plan = std::make_shared<const dsg::GraphPlan>(
        dsg::GraphPlan::load(std::string(path)));
    *server = new DsgServer_opaque(std::move(plan), options);
  });
}

GrB_Info DsgServer_save_plan(DsgServer server, const char* path) {
  if (!server || !path) return GrB_NULL_POINTER;
  return guarded([&] { server->impl.plan().save(std::string(path)); });
}

GrB_Info DsgServer_submit(DsgServer server, GrB_Index source,
                          DsgQueryControl control, uint64_t* ticket) {
  if (!server || !ticket) return GrB_NULL_POINTER;
  return guarded([&] {
    dsg::serving::SsspServer::Query query;
    query.source = source;
    query.control = control ? &control->impl : nullptr;
    *ticket = server->impl.submit(query);
  });
}

GrB_Info DsgServer_wait(DsgServer server, uint64_t ticket, double* dist) {
  if (!server || !dist) return GrB_NULL_POINTER;
  GrB_Info soft = GrB_SUCCESS;
  const GrB_Info hard = guarded([&] {
    dsg::sssp::QueryResult result = server->impl.wait(ticket);
    if (!result.ok()) {
      // The query threw on a worker: classify its exception and leave
      // dist untouched, mirroring the batch _opts contract.
      soft = classify(result.exception);
      return;
    }
    std::copy(result.result.dist.begin(), result.result.dist.end(), dist);
    soft = status_code(result.result.status);
  });
  return hard != GrB_SUCCESS ? hard : soft;
}

GrB_Info DsgServer_stats(DsgServer server, DsgServerStats* stats) {
  if (!server || !stats) return GrB_NULL_POINTER;
  return guarded([&] {
    const dsg::serving::ServerStats s = server->impl.stats();
    stats->submitted = s.submitted;
    stats->completed = s.completed;
    stats->deadline_expired = s.deadline_expired;
    stats->cancelled = s.cancelled;
    stats->failed = s.failed;
    stats->cache_hits = s.cache.hits;
    stats->cache_misses = s.cache.misses;
    stats->cache_evictions = s.cache.evictions;
    stats->cache_insert_failures = s.cache_insert_failures;
    stats->cache_entries = s.cache.entries;
    stats->cache_capacity = s.cache.capacity;
    stats->workers = s.workers;
    stats->queue_capacity = s.queue_capacity;
  });
}

GrB_Info DsgServer_free(DsgServer* server) {
  if (!server) return GrB_NULL_POINTER;
  return guarded([&] {
    delete *server;  // ~SsspServer drains and joins the pool
    *server = nullptr;
  });
}

}  // extern "C"
