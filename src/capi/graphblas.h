/* graphblas.h — a GraphBLAS C API subset over the grb:: template core.
 *
 * The paper's primary artifact (Fig. 2) is written against the GraphBLAS
 * *C* API with SuiteSparse.  This header reproduces the slice of that API
 * the listing uses — opaque handles, GrB_Info error codes, GrB_NULL
 * defaults, predefined operators, user-defined unary operators from plain
 * function pointers — so the repository can carry a near-verbatim
 * transcription of the paper's code (sssp/delta_stepping_capi.cpp).
 *
 * Scope and simplifications (documented, deliberate):
 *  - one numeric domain: all objects store FP64 internally; BOOL results
 *    are 0.0/1.0 (SuiteSparse typecasts between domains the same way);
 *  - types are enum codes rather than GrB_Type objects;
 *  - only the operations the delta-stepping listing needs are exposed
 *    (new/free/clear/nvals/setElement/extractElement/extractTuples/build,
 *    apply, eWiseAdd, eWiseMult, vxm, reduce, descriptor set);
 *  - user unary ops are double(*)(double); state is carried via globals,
 *    exactly as the paper's delta/i_global are file-scope globals.
 */
#ifndef DSG_CAPI_GRAPHBLAS_H_
#define DSG_CAPI_GRAPHBLAS_H_

#include <stdbool.h>
#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef uint64_t GrB_Index;

/* --- Error codes (GrB_Info). ------------------------------------------- */
typedef enum {
  GrB_SUCCESS = 0,
  GrB_NO_VALUE = 1,
  GrB_UNINITIALIZED_OBJECT = 2,
  GrB_NULL_POINTER = 3,
  GrB_INVALID_VALUE = 4,
  GrB_INVALID_INDEX = 5,
  GrB_DIMENSION_MISMATCH = 6,
  GrB_OUT_OF_MEMORY = 7,
  GrB_PANIC = 8
} GrB_Info;

/* --- Opaque object handles. -------------------------------------------- */
typedef struct GrB_Vector_opaque* GrB_Vector;
typedef struct GrB_Matrix_opaque* GrB_Matrix;
typedef struct GrB_Descriptor_opaque* GrB_Descriptor;
typedef struct GrB_UnaryOp_opaque* GrB_UnaryOp;
typedef struct GrB_BinaryOp_opaque* GrB_BinaryOp;
typedef struct GrB_Semiring_opaque* GrB_Semiring;

/* GrB_NULL in the C API is a NULL pointer for mask/accum/descriptor. */
#define GrB_NULL NULL

/* --- Descriptor fields and values. -------------------------------------- */
typedef enum {
  GrB_OUTP = 0,
  GrB_MASK = 1,
  GrB_INP0 = 2,
  GrB_INP1 = 3
} GrB_Desc_Field;

typedef enum {
  GrB_DEFAULT = 0,
  GrB_REPLACE = 1,
  GrB_COMP = 2,
  GrB_STRUCTURE = 3,
  GrB_TRAN = 4
} GrB_Desc_Value;

GrB_Info GrB_Descriptor_new(GrB_Descriptor* desc);
GrB_Info GrB_Descriptor_set(GrB_Descriptor desc, GrB_Desc_Field field,
                            GrB_Desc_Value value);
GrB_Info GrB_Descriptor_free(GrB_Descriptor* desc);

/* --- Predefined operators (the subset Fig. 2 uses, plus friends). ------- */
extern GrB_UnaryOp GrB_IDENTITY_FP64;
extern GrB_UnaryOp GrB_IDENTITY_BOOL;
extern GrB_UnaryOp GrB_AINV_FP64;
extern GrB_UnaryOp GrB_LNOT;

extern GrB_BinaryOp GrB_PLUS_FP64;
extern GrB_BinaryOp GrB_MINUS_FP64;
extern GrB_BinaryOp GrB_TIMES_FP64;
extern GrB_BinaryOp GrB_MIN_FP64;
extern GrB_BinaryOp GrB_MAX_FP64;
extern GrB_BinaryOp GrB_LT_FP64;
extern GrB_BinaryOp GrB_LE_FP64;
extern GrB_BinaryOp GrB_GT_FP64;
extern GrB_BinaryOp GrB_GE_FP64;
extern GrB_BinaryOp GrB_EQ_FP64;
extern GrB_BinaryOp GrB_LOR;
extern GrB_BinaryOp GrB_LAND;
extern GrB_BinaryOp GrB_FIRST_FP64;
extern GrB_BinaryOp GrB_SECOND_FP64;

/* Semirings (GxB_* naming follows SuiteSparse). */
extern GrB_Semiring GxB_MIN_PLUS_FP64;
extern GrB_Semiring GxB_PLUS_TIMES_FP64;
extern GrB_Semiring GxB_MIN_FIRST_FP64;
extern GrB_Semiring GxB_LOR_LAND_BOOL;

/* User-defined operators from plain function pointers. */
GrB_Info GrB_UnaryOp_new(GrB_UnaryOp* op, double (*fn)(double));
GrB_Info GrB_UnaryOp_free(GrB_UnaryOp* op);
GrB_Info GrB_BinaryOp_new(GrB_BinaryOp* op, double (*fn)(double, double));
GrB_Info GrB_BinaryOp_free(GrB_BinaryOp* op);

/* --- Vectors. ------------------------------------------------------------ */
GrB_Info GrB_Vector_new(GrB_Vector* v, GrB_Index n);
GrB_Info GrB_Vector_dup(GrB_Vector* copy, GrB_Vector v);
GrB_Info GrB_Vector_free(GrB_Vector* v);
GrB_Info GrB_Vector_size(GrB_Index* n, GrB_Vector v);
GrB_Info GrB_Vector_nvals(GrB_Index* nvals, GrB_Vector v);
GrB_Info GrB_Vector_clear(GrB_Vector v);
GrB_Info GrB_Vector_setElement_FP64(GrB_Vector v, double x, GrB_Index i);
/* Returns GrB_NO_VALUE (and leaves *x untouched) when no element stored. */
GrB_Info GrB_Vector_extractElement_FP64(double* x, GrB_Vector v, GrB_Index i);
GrB_Info GrB_Vector_removeElement(GrB_Vector v, GrB_Index i);
/* Arrays must have capacity for nvals entries; *count in/out. */
GrB_Info GrB_Vector_extractTuples_FP64(GrB_Index* indices, double* values,
                                       GrB_Index* count, GrB_Vector v);

/* --- Matrices. ------------------------------------------------------------ */
GrB_Info GrB_Matrix_new(GrB_Matrix* a, GrB_Index nrows, GrB_Index ncols);
GrB_Info GrB_Matrix_dup(GrB_Matrix* copy, GrB_Matrix a);
GrB_Info GrB_Matrix_free(GrB_Matrix* a);
GrB_Info GrB_Matrix_nrows(GrB_Index* nrows, GrB_Matrix a);
GrB_Info GrB_Matrix_ncols(GrB_Index* ncols, GrB_Matrix a);
GrB_Info GrB_Matrix_nvals(GrB_Index* nvals, GrB_Matrix a);
GrB_Info GrB_Matrix_clear(GrB_Matrix a);
GrB_Info GrB_Matrix_setElement_FP64(GrB_Matrix a, double x, GrB_Index row,
                                    GrB_Index col);
GrB_Info GrB_Matrix_extractElement_FP64(double* x, GrB_Matrix a,
                                        GrB_Index row, GrB_Index col);
/* Duplicates combined with `dup` (GrB_NULL means "last wins"). */
GrB_Info GrB_Matrix_build_FP64(GrB_Matrix a, const GrB_Index* rows,
                               const GrB_Index* cols, const double* values,
                               GrB_Index count, GrB_BinaryOp dup);

/* --- Operations (vector variants; mask/accum/desc may be GrB_NULL). ------ */
GrB_Info GrB_Vector_apply(GrB_Vector w, GrB_Vector mask, GrB_BinaryOp accum,
                          GrB_UnaryOp op, GrB_Vector u, GrB_Descriptor desc);
GrB_Info GrB_Matrix_apply(GrB_Matrix c, GrB_Matrix mask, GrB_BinaryOp accum,
                          GrB_UnaryOp op, GrB_Matrix a, GrB_Descriptor desc);
/* The Fig. 2 listing calls the matrix variant plain "GrB_apply". */
#define GrB_apply GrB_Matrix_apply

GrB_Info GrB_eWiseAdd(GrB_Vector w, GrB_Vector mask, GrB_BinaryOp accum,
                      GrB_BinaryOp op, GrB_Vector u, GrB_Vector v,
                      GrB_Descriptor desc);
GrB_Info GrB_eWiseMult(GrB_Vector w, GrB_Vector mask, GrB_BinaryOp accum,
                       GrB_BinaryOp op, GrB_Vector u, GrB_Vector v,
                       GrB_Descriptor desc);

GrB_Info GrB_vxm(GrB_Vector w, GrB_Vector mask, GrB_BinaryOp accum,
                 GrB_Semiring op, GrB_Vector u, GrB_Matrix a,
                 GrB_Descriptor desc);
GrB_Info GrB_mxv(GrB_Vector w, GrB_Vector mask, GrB_BinaryOp accum,
                 GrB_Semiring op, GrB_Matrix a, GrB_Vector u,
                 GrB_Descriptor desc);

/* Scalar reduce of a vector with a binary op treated as a monoid whose
 * identity is `identity`. */
GrB_Info GrB_Vector_reduce_FP64(double* out, GrB_BinaryOp accum,
                                GrB_BinaryOp monoid_op, double identity,
                                GrB_Vector u, GrB_Descriptor desc);

#ifdef __cplusplus
}  /* extern "C" */
#endif

#endif  /* DSG_CAPI_GRAPHBLAS_H_ */
