/* graphblas.h — a GraphBLAS C API subset over the grb:: template core.
 *
 * The paper's primary artifact (Fig. 2) is written against the GraphBLAS
 * *C* API with SuiteSparse.  This header reproduces the slice of that API
 * the listing uses — opaque handles, GrB_Info error codes, GrB_NULL
 * defaults, predefined operators, user-defined unary operators from plain
 * function pointers — so the repository can carry a near-verbatim
 * transcription of the paper's code (sssp/delta_stepping_capi.cpp).
 *
 * Scope and simplifications (documented, deliberate):
 *  - one numeric domain: all objects store FP64 internally; BOOL results
 *    are 0.0/1.0 (SuiteSparse typecasts between domains the same way);
 *  - types are enum codes rather than GrB_Type objects;
 *  - only the operations the delta-stepping listing needs are exposed
 *    (new/free/clear/nvals/setElement/extractElement/extractTuples/build,
 *    apply, eWiseAdd, eWiseMult, vxm, reduce, descriptor set);
 *  - user unary ops are double(*)(double); state is carried via globals,
 *    exactly as the paper's delta/i_global are file-scope globals.
 */
#ifndef DSG_CAPI_GRAPHBLAS_H_
#define DSG_CAPI_GRAPHBLAS_H_

#include <stdbool.h>
#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef uint64_t GrB_Index;

/* --- Error codes (GrB_Info). ------------------------------------------- */
typedef enum {
  GrB_SUCCESS = 0,
  GrB_NO_VALUE = 1,
  GrB_UNINITIALIZED_OBJECT = 2,
  GrB_NULL_POINTER = 3,
  GrB_INVALID_VALUE = 4,
  GrB_INVALID_INDEX = 5,
  GrB_DIMENSION_MISMATCH = 6,
  GrB_OUT_OF_MEMORY = 7,
  GrB_PANIC = 8,
  /* DSG extensions (values above the GrB_* range): query lifecycle
   * outcomes of the DsgSolver_*_opts entry points.  Both are "soft"
   * codes — the distance output IS written (valid upper bounds on the
   * true distances; unreached vertices are +inf). */
  DSG_TIMEOUT = 100,  /* the control's deadline expired mid-run  */
  DSG_CANCELLED = 101 /* DsgQueryControl_cancel was observed     */
} GrB_Info;

/* --- Opaque object handles. -------------------------------------------- */
typedef struct GrB_Vector_opaque* GrB_Vector;
typedef struct GrB_Matrix_opaque* GrB_Matrix;
typedef struct GrB_Descriptor_opaque* GrB_Descriptor;
typedef struct GrB_UnaryOp_opaque* GrB_UnaryOp;
typedef struct GrB_BinaryOp_opaque* GrB_BinaryOp;
typedef struct GrB_Semiring_opaque* GrB_Semiring;

/* GrB_NULL in the C API is a NULL pointer for mask/accum/descriptor. */
#define GrB_NULL NULL

/* --- Descriptor fields and values. -------------------------------------- */
typedef enum {
  GrB_OUTP = 0,
  GrB_MASK = 1,
  GrB_INP0 = 2,
  GrB_INP1 = 3
} GrB_Desc_Field;

typedef enum {
  GrB_DEFAULT = 0,
  GrB_REPLACE = 1,
  GrB_COMP = 2,
  GrB_STRUCTURE = 3,
  GrB_TRAN = 4
} GrB_Desc_Value;

GrB_Info GrB_Descriptor_new(GrB_Descriptor* desc);
GrB_Info GrB_Descriptor_set(GrB_Descriptor desc, GrB_Desc_Field field,
                            GrB_Desc_Value value);
GrB_Info GrB_Descriptor_free(GrB_Descriptor* desc);

/* --- Predefined operators (the subset Fig. 2 uses, plus friends). ------- */
extern GrB_UnaryOp GrB_IDENTITY_FP64;
extern GrB_UnaryOp GrB_IDENTITY_BOOL;
extern GrB_UnaryOp GrB_AINV_FP64;
extern GrB_UnaryOp GrB_LNOT;

extern GrB_BinaryOp GrB_PLUS_FP64;
extern GrB_BinaryOp GrB_MINUS_FP64;
extern GrB_BinaryOp GrB_TIMES_FP64;
extern GrB_BinaryOp GrB_MIN_FP64;
extern GrB_BinaryOp GrB_MAX_FP64;
extern GrB_BinaryOp GrB_LT_FP64;
extern GrB_BinaryOp GrB_LE_FP64;
extern GrB_BinaryOp GrB_GT_FP64;
extern GrB_BinaryOp GrB_GE_FP64;
extern GrB_BinaryOp GrB_EQ_FP64;
extern GrB_BinaryOp GrB_LOR;
extern GrB_BinaryOp GrB_LAND;
extern GrB_BinaryOp GrB_FIRST_FP64;
extern GrB_BinaryOp GrB_SECOND_FP64;

/* Semirings (GxB_* naming follows SuiteSparse). */
extern GrB_Semiring GxB_MIN_PLUS_FP64;
extern GrB_Semiring GxB_PLUS_TIMES_FP64;
extern GrB_Semiring GxB_MIN_FIRST_FP64;
extern GrB_Semiring GxB_LOR_LAND_BOOL;

/* User-defined operators from plain function pointers. */
GrB_Info GrB_UnaryOp_new(GrB_UnaryOp* op, double (*fn)(double));
GrB_Info GrB_UnaryOp_free(GrB_UnaryOp* op);
GrB_Info GrB_BinaryOp_new(GrB_BinaryOp* op, double (*fn)(double, double));
GrB_Info GrB_BinaryOp_free(GrB_BinaryOp* op);

/* --- Vectors. ------------------------------------------------------------ */
GrB_Info GrB_Vector_new(GrB_Vector* v, GrB_Index n);
GrB_Info GrB_Vector_dup(GrB_Vector* copy, GrB_Vector v);
GrB_Info GrB_Vector_free(GrB_Vector* v);
GrB_Info GrB_Vector_size(GrB_Index* n, GrB_Vector v);
GrB_Info GrB_Vector_nvals(GrB_Index* nvals, GrB_Vector v);
GrB_Info GrB_Vector_clear(GrB_Vector v);
GrB_Info GrB_Vector_setElement_FP64(GrB_Vector v, double x, GrB_Index i);
/* Returns GrB_NO_VALUE (and leaves *x untouched) when no element stored. */
GrB_Info GrB_Vector_extractElement_FP64(double* x, GrB_Vector v, GrB_Index i);
GrB_Info GrB_Vector_removeElement(GrB_Vector v, GrB_Index i);
/* Arrays must have capacity for nvals entries; *count in/out. */
GrB_Info GrB_Vector_extractTuples_FP64(GrB_Index* indices, double* values,
                                       GrB_Index* count, GrB_Vector v);

/* --- Matrices. ------------------------------------------------------------ */
GrB_Info GrB_Matrix_new(GrB_Matrix* a, GrB_Index nrows, GrB_Index ncols);
GrB_Info GrB_Matrix_dup(GrB_Matrix* copy, GrB_Matrix a);
GrB_Info GrB_Matrix_free(GrB_Matrix* a);
GrB_Info GrB_Matrix_nrows(GrB_Index* nrows, GrB_Matrix a);
GrB_Info GrB_Matrix_ncols(GrB_Index* ncols, GrB_Matrix a);
GrB_Info GrB_Matrix_nvals(GrB_Index* nvals, GrB_Matrix a);
GrB_Info GrB_Matrix_clear(GrB_Matrix a);
GrB_Info GrB_Matrix_setElement_FP64(GrB_Matrix a, double x, GrB_Index row,
                                    GrB_Index col);
GrB_Info GrB_Matrix_extractElement_FP64(double* x, GrB_Matrix a,
                                        GrB_Index row, GrB_Index col);
/* Duplicates combined with `dup` (GrB_NULL means "last wins"). */
GrB_Info GrB_Matrix_build_FP64(GrB_Matrix a, const GrB_Index* rows,
                               const GrB_Index* cols, const double* values,
                               GrB_Index count, GrB_BinaryOp dup);

/* --- Operations (vector variants; mask/accum/desc may be GrB_NULL). ------ */
GrB_Info GrB_Vector_apply(GrB_Vector w, GrB_Vector mask, GrB_BinaryOp accum,
                          GrB_UnaryOp op, GrB_Vector u, GrB_Descriptor desc);
GrB_Info GrB_Matrix_apply(GrB_Matrix c, GrB_Matrix mask, GrB_BinaryOp accum,
                          GrB_UnaryOp op, GrB_Matrix a, GrB_Descriptor desc);
/* The Fig. 2 listing calls the matrix variant plain "GrB_apply". */
#define GrB_apply GrB_Matrix_apply

GrB_Info GrB_eWiseAdd(GrB_Vector w, GrB_Vector mask, GrB_BinaryOp accum,
                      GrB_BinaryOp op, GrB_Vector u, GrB_Vector v,
                      GrB_Descriptor desc);
GrB_Info GrB_eWiseMult(GrB_Vector w, GrB_Vector mask, GrB_BinaryOp accum,
                       GrB_BinaryOp op, GrB_Vector u, GrB_Vector v,
                       GrB_Descriptor desc);

GrB_Info GrB_vxm(GrB_Vector w, GrB_Vector mask, GrB_BinaryOp accum,
                 GrB_Semiring op, GrB_Vector u, GrB_Matrix a,
                 GrB_Descriptor desc);
GrB_Info GrB_mxv(GrB_Vector w, GrB_Vector mask, GrB_BinaryOp accum,
                 GrB_Semiring op, GrB_Matrix a, GrB_Vector u,
                 GrB_Descriptor desc);

/* Scalar reduce of a vector with a binary op treated as a monoid whose
 * identity is `identity`. */
GrB_Info GrB_Vector_reduce_FP64(double* out, GrB_BinaryOp accum,
                                GrB_BinaryOp monoid_op, double identity,
                                GrB_Vector u, GrB_Descriptor desc);

/* ========================================================================
 * v2: SSSP solver handles (plan/execute API).
 *
 * The v1 surface above mirrors the paper's per-operation C API.  The v2
 * handles expose the repository's plan/execute SSSP solver: DsgSolver_new
 * preprocesses a graph ONCE (weight validation, the delta-dependent
 * light/heavy matrix split, workspace setup) into an immutable plan;
 * DsgSolver_solve / DsgSolver_solve_batch then answer any number of
 * single- or multi-source queries against that plan without re-paying the
 * preprocessing.  This is the API to use for repeated-query workloads
 * (routing services, all-pairs sampling); the legacy one-call-per-query
 * style re-derives the plan every time.
 *
 * Conventions:
 *  - all functions return GrB_Info error codes; no exceptions ever cross
 *    this boundary (internal errors map to the codes below, anything
 *    unexpected to GrB_PANIC);
 *  - distances are written into caller-provided arrays of length n (the
 *    matrix dimension); unreachable vertices are reported as +infinity
 *    ((double)INFINITY) — never NaN, never a finite sentinel;
 *  - DsgSolver_new SNAPSHOTS the matrix: freeing or mutating `a`
 *    afterwards does not affect the solver;
 *  - a solver is not thread-safe; create one per thread, or serialize.
 *    EXCEPTION: DSG_SSSP_CAPI carries the paper listing's file-scope
 *    operator state (delta/i globals, kept global for fidelity), so capi
 *    solvers must be serialized PROCESS-wide — one per thread is not
 *    enough.  Every other algorithm is safe one-solver-per-thread.
 * ======================================================================== */

typedef struct DsgSolver_opaque* DsgSolver;

/* Algorithm selector; values mirror dsg::sssp::Algorithm. */
typedef enum {
  /* Let the plan's graph/Δ statistics pick the algorithm (the serving
   * layer's heuristic: Dijkstra below the bucket-amortization cutoff or
   * when Δ leaves almost no light edges, the fused core otherwise).
   * Valid ONLY for DsgServer_new / DsgServer_new_from_file; DsgSolver_new
   * rejects it with GrB_INVALID_VALUE. */
  DSG_SSSP_AUTO = -1,
  DSG_SSSP_BUCKETS = 0,          /* canonical Meyer-Sanders buckets        */
  DSG_SSSP_GRAPHBLAS = 1,        /* unfused GraphBLAS (paper Fig. 2)       */
  DSG_SSSP_GRAPHBLAS_SELECT = 2, /* GraphBLAS with fused select filters    */
  DSG_SSSP_CAPI = 3,             /* the Fig. 2 C-API transcription         */
  DSG_SSSP_FUSED = 4,            /* fused C implementation (default)       */
  DSG_SSSP_OPENMP = 5,           /* task-parallel fused (Sec. VI-C)        */
  DSG_SSSP_BELLMAN_FORD = 6,     /* SPFA worklist baseline                 */
  DSG_SSSP_DIJKSTRA = 7,         /* binary-heap baseline                   */
  /* The lock-free asynchronous engines.  Distances are bit-identical to
   * the deterministic variants for any thread count (the unique fp
   * min-plus fixed point), but the relaxation *schedule* — and any stats
   * derived from it — is nondeterministic. */
  DSG_SSSP_RHO = 8,              /* async rho-stepping (PASGAL style)      */
  DSG_SSSP_DELTA_ASYNC = 9,      /* async delta-stepping                   */
  /* Forces the enum's value range to cover all of int, so an out-of-range
   * selector arriving from C (where enums are plain ints) is a checkable
   * GrB_INVALID_VALUE instead of undefined behaviour at the parameter
   * load.  Never a valid algorithm. */
  DSG_SSSP_FORCE_INT = 0x7fffffff
} DsgSsspAlgorithm;

/* Pass as `delta` to let the plan pick the bucket width from the graph's
 * degree statistics (max_weight / avg_degree, clamped to the smallest
 * positive weight). */
#define DSG_SSSP_DELTA_AUTO 0.0

/* Builds a solver over a snapshot of `a` (square, non-negative weights).
 * `delta` > 0 fixes the bucket width; <= 0 selects it automatically.
 * Errors: GrB_NULL_POINTER, GrB_DIMENSION_MISMATCH (non-square),
 * GrB_INVALID_VALUE (empty graph, negative weight, bad algorithm). */
GrB_Info DsgSolver_new(DsgSolver* solver, GrB_Matrix a,
                       DsgSsspAlgorithm algorithm, double delta);

/* Number of vertices of the planned graph (the length of every distance
 * array below). */
GrB_Info DsgSolver_nrows(GrB_Index* n, DsgSolver solver);

/* The bucket width Δ in effect (auto-selected or as passed). */
GrB_Info DsgSolver_delta(double* delta, DsgSolver solver);

/* Stable name of the solver's algorithm (e.g. "fused"); the pointer stays
 * valid for the life of the program. */
GrB_Info DsgSolver_algorithm_name(const char** name, DsgSolver solver);

/* One query: dist must have capacity for n doubles.
 * Errors: GrB_INVALID_INDEX (source out of range), GrB_NULL_POINTER. */
GrB_Info DsgSolver_solve(DsgSolver solver, GrB_Index source, double* dist);

/* Batched queries: dist must have capacity for batch * n doubles; query k
 * writes dist[k*n .. k*n + n).  Results are element-identical to calling
 * DsgSolver_solve per source in order (duplicate sources allowed).
 * Internally-serial algorithms fan out across OpenMP threads when the
 * library was built with OpenMP. */
GrB_Info DsgSolver_solve_batch(DsgSolver solver, const GrB_Index* sources,
                               GrB_Index batch, double* dist);

/* Frees the solver and sets *solver to NULL (NULL-safe like GrB_*_free). */
GrB_Info DsgSolver_free(DsgSolver* solver);

/* --- Query lifecycle: deadlines and cooperative cancellation. -----------
 *
 * A DsgQueryControl carries a deadline and/or a cancel flag into the
 * _opts solve entry points.  The running query polls it at its natural
 * round boundaries; on expiry/cancel it stops and the call returns
 * DSG_TIMEOUT / DSG_CANCELLED with the distances computed so far — valid
 * upper bounds on the true distances (the solver only ever lowers a
 * tentative distance), with +inf for vertices not reached yet.
 *
 * DsgQueryControl_cancel is safe to call from any thread while a solve
 * runs; set_timeout/reset must not race a running solve.  One control may
 * be reused across queries (reset clears both the deadline and the cancel
 * flag) or shared by every query of a batch. */
typedef struct DsgQueryControl_opaque* DsgQueryControl;

GrB_Info DsgQueryControl_new(DsgQueryControl* control);

/* Arms a deadline `seconds` from now.  <= 0 means "already expired": the
 * next solve returns DSG_TIMEOUT at its first poll. */
GrB_Info DsgQueryControl_set_timeout(DsgQueryControl control, double seconds);

/* Requests cooperative cancellation (thread-safe, observed within one
 * round by a running solve). */
GrB_Info DsgQueryControl_cancel(DsgQueryControl control);

/* Clears the deadline and the cancel flag, re-arming the control. */
GrB_Info DsgQueryControl_reset(DsgQueryControl control);

GrB_Info DsgQueryControl_free(DsgQueryControl* control);

/* DsgSolver_solve under a lifecycle control (NULL control = run to
 * completion, identical to DsgSolver_solve).  Returns GrB_SUCCESS,
 * DSG_TIMEOUT or DSG_CANCELLED; dist is written in all three cases. */
GrB_Info DsgSolver_solve_opts(DsgSolver solver, GrB_Index source,
                              double* dist, DsgQueryControl control);

/* Failure-isolated batch under an optional shared control: query k writes
 * dist[k*n .. k*n+n) and statuses[k].  A query that fails (e.g. out of
 * memory) gets its own error code in statuses[k] and leaves its distance
 * slice untouched; the other queries complete normally.  The call itself
 * returns GrB_SUCCESS unless its arguments are invalid — per-query
 * outcomes live in `statuses` (GrB_SUCCESS / DSG_TIMEOUT / DSG_CANCELLED
 * / an error code). */
GrB_Info DsgSolver_solve_batch_opts(DsgSolver solver,
                                    const GrB_Index* sources, GrB_Index batch,
                                    double* dist, DsgQueryControl control,
                                    GrB_Info* statuses);

/* === The serving layer: DsgServer_* (SSSP-as-a-service). ================
 *
 * A DsgServer is a fixed pool of worker threads sharing one immutable
 * graph plan, fed by a bounded submit queue, with an LRU result cache
 * keyed by (plan fingerprint, source, algorithm, Δ) in front of the
 * solves.  Submit returns a ticket; wait blocks for and redeems it (each
 * ticket exactly once).  See docs/capi.md for the full contract and
 * docs/ARCHITECTURE.md "Serving layer" for the design.
 *
 * Thread-safety: DsgServer_submit / DsgServer_wait / DsgServer_stats may
 * be called concurrently from any threads.  DsgServer_free must not race
 * them (owner drives shutdown); it drains every submitted query first. */

typedef struct DsgServer_opaque* DsgServer;

/* Cumulative counters since DsgServer_new (all monotonic except
 * cache_entries).  completed counts exact results only; interrupted
 * queries land in deadline_expired / cancelled, throwing ones in failed. */
typedef struct {
  uint64_t submitted;
  uint64_t completed;
  uint64_t deadline_expired;
  uint64_t cancelled;
  uint64_t failed;
  uint64_t cache_hits;
  uint64_t cache_misses;
  uint64_t cache_evictions;
  uint64_t cache_insert_failures;
  uint64_t cache_entries;
  uint64_t cache_capacity;
  uint64_t workers;
  uint64_t queue_capacity;
} DsgServerStats;

/* Builds a server over a snapshot of `a`.  `algorithm` may be any
 * pool-safe selector or DSG_SSSP_AUTO (statistics-driven choice);
 * DSG_SSSP_CAPI is rejected (process-global operator state cannot run on
 * concurrent workers).  num_workers <= 0 selects the hardware thread
 * count; queue_capacity 0 is clamped to 1; cache_capacity 0 disables the
 * result cache.  Errors: GrB_NULL_POINTER, GrB_DIMENSION_MISMATCH,
 * GrB_INVALID_VALUE (empty graph, negative weight, bad/pool-unsafe
 * algorithm). */
GrB_Info DsgServer_new(DsgServer* server, GrB_Matrix a,
                       DsgSsspAlgorithm algorithm, double delta,
                       int32_t num_workers, GrB_Index queue_capacity,
                       GrB_Index cache_capacity);

/* Builds a server from a plan file written by DsgServer_save_plan (or
 * GraphPlan::save): the CSR, statistics, Δ and the materialized
 * light/heavy split load without re-scanning the graph — the sub-second
 * cold-start path.  Errors: GrB_INVALID_VALUE (missing/truncated/corrupt
 * file, wrong version or endianness) plus DsgServer_new's codes. */
GrB_Info DsgServer_new_from_file(DsgServer* server, const char* path,
                                 DsgSsspAlgorithm algorithm,
                                 int32_t num_workers,
                                 GrB_Index queue_capacity,
                                 GrB_Index cache_capacity);

/* Persists the server's plan (format above) for later
 * DsgServer_new_from_file cold starts.  Errors: GrB_NULL_POINTER,
 * GrB_INVALID_VALUE (unwritable path). */
GrB_Info DsgServer_save_plan(DsgServer server, const char* path);

/* Enqueues one query and returns its ticket in *ticket.  Blocks while the
 * bounded queue is full (backpressure).  `control` may be NULL; when
 * non-NULL the caller keeps it alive until DsgServer_wait returns for
 * this ticket.  Errors: GrB_NULL_POINTER, GrB_INVALID_INDEX (source out
 * of range), GrB_INVALID_VALUE (server shutting down). */
GrB_Info DsgServer_submit(DsgServer server, GrB_Index source,
                          DsgQueryControl control, uint64_t* ticket);

/* Blocks until the ticket's query finishes and redeems it: dist (capacity
 * n doubles) receives the distances and the return code is GrB_SUCCESS /
 * DSG_TIMEOUT / DSG_CANCELLED (dist written in all three cases, like
 * DsgSolver_solve_opts).  A query that THREW returns its classified error
 * code (e.g. GrB_OUT_OF_MEMORY) and leaves dist untouched.  An unknown or
 * already-redeemed ticket returns GrB_INVALID_VALUE. */
GrB_Info DsgServer_wait(DsgServer server, uint64_t ticket, double* dist);

GrB_Info DsgServer_stats(DsgServer server, DsgServerStats* stats);

/* Drains every submitted query, joins the pool, frees the server, and
 * sets *server to NULL (NULL-safe like GrB_*_free). */
GrB_Info DsgServer_free(DsgServer* server);

#ifdef __cplusplus
}  /* extern "C" */
#endif

#endif  /* DSG_CAPI_GRAPHBLAS_H_ */
