#include "serving/server.hpp"

#include <algorithm>
#include <exception>
#include <new>
#include <utility>

#include "testing/fault_injection.hpp"

namespace dsg::serving {

namespace {

/// Pool-safety gate: workers run algorithm cores concurrently on separate
/// contexts, which every variant supports except kCapi (the paper
/// listing's file-scope operator globals are process-wide).  The
/// internally-threaded variants (kOpenmp, the async engines) are legal
/// but oversubscribe a busy pool; callers opt into them explicitly.
void require_pool_safe(sssp::Algorithm algorithm) {
  sssp::algorithm_info(algorithm);  // validates the enum value
  if (algorithm == sssp::Algorithm::kCapi) {
    throw grb::InvalidValue(
        "SsspServer: the capi variant carries process-global operator "
        "state and cannot run on concurrent pool workers");
  }
}

}  // namespace

SsspServer::SsspServer(std::shared_ptr<const GraphPlan> plan,
                       ServerOptions options)
    : plan_(std::move(plan)),
      options_(options),
      cache_(options.cache_capacity) {
  if (!plan_) throw grb::InvalidValue("SsspServer: null plan");
  if (options_.num_workers <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    options_.num_workers = static_cast<int>(std::max(1u, hw));
  }
  options_.queue_capacity = std::max<std::size_t>(1, options_.queue_capacity);
  if (options_.algorithm) {
    require_pool_safe(*options_.algorithm);
    default_algorithm_ = *options_.algorithm;
  } else {
    default_algorithm_ = sssp::auto_algorithm(*plan_);
  }
  // Front-load every lazily materialized artifact the pool will touch, so
  // workers only ever take the plan's lazy-cache mutex on a fast path.
  sssp::warm_plan(*plan_, default_algorithm_);
  plan_->fingerprint();
  start_workers();
}

SsspServer::SsspServer(grb::Matrix<double> graph, ServerOptions options)
    : SsspServer(std::make_shared<const GraphPlan>(
                     GraphPlan(std::move(graph), options.delta)),
                 options) {}

SsspServer::~SsspServer() { shutdown(); }

void SsspServer::start_workers() {
  workers_.reserve(static_cast<std::size_t>(options_.num_workers));
  for (int w = 0; w < options_.num_workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void SsspServer::shutdown() {
  {
    std::lock_guard<testing::AuditedMutex> lock(mu_);
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

SsspServer::Ticket SsspServer::submit(const Query& query) {
  grb::detail::check_index(query.source, plan_->num_vertices(),
                           "SsspServer::submit: source");
  require_pool_safe(query.algorithm.value_or(default_algorithm_));
  testing::fault_point("serving/pool_enqueue", query.source);

  testing::AuditedLock lock(mu_);
  not_full_.wait(lock, [&] {
    return stopping_ || queue_.size() < options_.queue_capacity;
  });
  if (stopping_) {
    throw grb::InvalidValue("SsspServer::submit: server is shutting down");
  }
  const Ticket ticket = next_ticket_++;
  outstanding_.insert(ticket);
  queue_.push_back(Item{ticket, query});
  ++submitted_;
  lock.unlock();
  not_empty_.notify_one();
  return ticket;
}

sssp::QueryResult SsspServer::wait(Ticket ticket) {
  testing::AuditedLock lock(mu_);
  for (;;) {
    auto it = finished_.find(ticket);
    if (it != finished_.end()) {
      sssp::QueryResult result = std::move(it->second);
      finished_.erase(it);
      return result;
    }
    if (outstanding_.find(ticket) == outstanding_.end()) {
      throw grb::InvalidValue(
          "SsspServer::wait: unknown or already-redeemed ticket");
    }
    done_.wait(lock);
  }
}

void SsspServer::worker_loop() {
  // One context per worker: grb::Context is explicitly NOT thread-safe,
  // so each worker owns its warm workspaces for the pool's lifetime.
  grb::Context ctx;
  for (;;) {
    Item item;
    {
      testing::AuditedLock lock(mu_);
      not_empty_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, fully drained
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();

    sssp::QueryResult result = run_query(item.query, ctx);

    {
      std::lock_guard<testing::AuditedMutex> lock(mu_);
      if (!result.ok()) {
        ++failed_;
      } else {
        switch (result.result.status) {
          case SsspStatus::kComplete: ++completed_; break;
          case SsspStatus::kDeadlineExpired: ++deadline_expired_; break;
          case SsspStatus::kCancelled: ++cancelled_; break;
          case SsspStatus::kFailed: ++failed_; break;  // unreachable: !ok()
        }
      }
      outstanding_.erase(item.ticket);
      finished_.emplace(item.ticket, std::move(result));
    }
    done_.notify_all();
  }
}

sssp::QueryResult SsspServer::run_query(const Query& query,
                                        grb::Context& ctx) {
  sssp::QueryResult out;
  try {
    testing::fault_point("serving/worker_query", query.source);
    const sssp::Algorithm algorithm =
        query.algorithm.value_or(default_algorithm_);
    const sssp::AlgorithmInfo& info = sssp::algorithm_info(algorithm);
    const CacheKey key{plan_->fingerprint(), query.source,
                       static_cast<int>(algorithm), plan_->delta()};
    const bool use_cache = !query.bypass_cache && cache_.capacity() > 0;
    if (use_cache) {
      if (ResultCache::Distances hit = cache_.lookup(key)) {
        // Bit-identical replay of the first computation; instant, so the
        // control's deadline/cancel state is irrelevant.
        out.result.dist = *hit;
        out.result.status = SsspStatus::kComplete;
        return out;
      }
    }
    ExecOptions exec;
    exec.profile = options_.profile;
    exec.control = query.control;
    out.result = info.run(*plan_, ctx, query.source, exec);
    if (use_cache && out.result.status == SsspStatus::kComplete) {
      // Best-effort: a failed insert (e.g. allocation pressure) must not
      // fail the query — the caller still gets its exact distances.
      try {
        testing::fault_point("serving/cache_insert", query.source);
        cache_.insert(key, std::make_shared<const std::vector<double>>(
                               out.result.dist));
      } catch (const std::bad_alloc&) {
        std::lock_guard<testing::AuditedMutex> lock(mu_);
        ++cache_insert_failures_;
      }
    }
  } catch (const std::exception& e) {
    out.exception = std::current_exception();
    out.result = SsspResult{};
    out.result.status = SsspStatus::kFailed;
    out.error = e.what();
  } catch (...) {
    out.exception = std::current_exception();
    out.result = SsspResult{};
    out.result.status = SsspStatus::kFailed;
    out.error = "unknown error";
  }
  return out;
}

ServerStats SsspServer::stats() const {
  std::lock_guard<testing::AuditedMutex> lock(mu_);
  ServerStats out;
  out.submitted = submitted_;
  out.completed = completed_;
  out.deadline_expired = deadline_expired_;
  out.cancelled = cancelled_;
  out.failed = failed_;
  out.cache_insert_failures = cache_insert_failures_;
  out.cache = cache_.stats();
  out.workers = static_cast<std::uint64_t>(options_.num_workers);
  out.queue_capacity = options_.queue_capacity;
  return out;
}

}  // namespace dsg::serving
