// plan_io.hpp — version-stamped binary persistence for GraphPlan, the
// cold-start half of the serving layer.
//
// A plan file carries everything a server needs to answer queries without
// re-scanning the graph: the adjacency CSR, the construction-time weight/
// degree statistics, the pinned Δ, and the light/heavy split materialized
// at that Δ.  Loading is therefore O(bytes) — one checksum pass plus
// memcpy into the owning vectors — instead of the O(|E|) validation +
// split scans a fresh GraphPlan pays.
//
// File layout (all scalars little-or-big per the writing host; the header
// carries an endianness marker so a foreign-endian reader rejects cleanly
// instead of decoding garbage):
//
//   [ 112-byte header, 8-byte aligned ]
//     magic "DSGPLAN\n", format version, endian marker 0x01020304,
//     index/value widths (64/64), counts (|V|, |E|, light nnz, heavy nnz),
//     Δ + delta_was_auto, the PlanStats scalars, and an FNV-1a checksum
//     over the rest of the header and the whole payload.
//   [ payload: nine 8-byte-aligned arrays, no padding between them ]
//     row_ptr (|V|+1), col_ind (|E|), val (|E|),
//     light_ptr (|V|+1), light_ind, light_val,
//     heavy_ptr (|V|+1), heavy_ind, heavy_val.
//
// The header fully determines the file size, so truncation is detected
// before any payload is touched; the checksum catches bit corruption in
// either region.  Rejections throw grb::InvalidValue with a message
// naming the failing check (see tests/test_plan_io.cpp).
#pragma once

#include <cstdint>
#include <string>

#include "sssp/plan.hpp"

namespace dsg::serving {

/// On-disk format version.  Bump on ANY layout change (readers reject
/// every other version) and regenerate tests/data/*.plan goldens.
inline constexpr std::uint32_t kPlanFormatVersion = 1;

/// The saver/loader behind GraphPlan::save / GraphPlan::load.  A class
/// rather than free functions because loading goes through GraphPlan's
/// private trusted-deserialization constructor (friend access): the
/// checksum stands in for the constructor's O(|E|) validation scan.
class PlanIo {
 public:
  static void save(const GraphPlan& plan, const std::string& path);
  static GraphPlan load(const std::string& path);
};

}  // namespace dsg::serving
