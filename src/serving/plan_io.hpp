// plan_io.hpp — version-stamped binary persistence for GraphPlan, the
// cold-start half of the serving layer.
//
// A plan file carries everything a server needs to answer queries without
// re-scanning the graph: the adjacency CSR, the construction-time weight/
// degree statistics, the pinned Δ, and the light/heavy split materialized
// at that Δ.  Loading is therefore O(bytes) — one checksum pass plus
// memcpy into the owning vectors — instead of the O(|E|) validation +
// split scans a fresh GraphPlan pays.
//
// File layout (all scalars little-or-big per the writing host; the header
// carries an endianness marker so a foreign-endian reader rejects cleanly
// instead of decoding garbage):
//
//   [ 112-byte header, 8-byte aligned ]
//     magic "DSGPLAN\n", format version, endian marker 0x01020304,
//     index/value widths (64/64), counts (|V|, |E|, light nnz, heavy nnz),
//     Δ + delta_was_auto, the PlanStats scalars, and an FNV-1a checksum
//     over the rest of the header and the whole payload.
//   [ payload: nine 8-byte-aligned arrays, no padding between them ]
//     row_ptr (|V|+1), col_ind (|E|), val (|E|),
//     light_ptr (|V|+1), light_ind, light_val,
//     heavy_ptr (|V|+1), heavy_ind, heavy_val.
//
// The header fully determines the file size, so truncation is detected
// before any payload is touched; the checksum catches bit corruption in
// either region.  Rejections throw grb::InvalidValue with a message
// naming the failing check (see tests/test_plan_io.cpp).
//
// Adversarial inputs: the loader treats every byte as hostile (the fuzz
// harness in fuzz/ drives it with arbitrary data).  Header counts are
// combined with overflow-checked arithmetic and cross-checked against the
// actual file size BEFORE any allocation, so a forged header can neither
// overflow the size computation into a colliding total nor commit memory
// the file cannot back.  The checksum is FNV-1a — fast, not
// cryptographic, and trivially forgeable — so after extraction the loader
// always runs the full structural validation (CSR shape, light/heavy
// partition, finite non-negative weights, Δ > 0) and rejects with a named
// grb::InvalidValue; the checksum only screens accidental corruption.
#pragma once

#include <cstdint>
#include <string>

#include "sssp/plan.hpp"

namespace dsg::serving {

/// On-disk format version.  Bump on ANY layout change (readers reject
/// every other version) and regenerate tests/data/*.plan goldens.
inline constexpr std::uint32_t kPlanFormatVersion = 1;

/// Fixed header size in bytes (kept in sync with the PlanFileHeader
/// layout in plan_io.cpp by a static_assert there).
inline constexpr std::size_t kPlanHeaderBytes = 112;

/// The saver/loader behind GraphPlan::save / GraphPlan::load.  A class
/// rather than free functions because loading goes through GraphPlan's
/// private trusted-deserialization constructor (friend access): the
/// checksum lets the loader skip re-deriving the stats scalars, while the
/// structural scan (which does not trust the checksum) keeps a forged
/// file from materializing a memory-unsafe plan.
class PlanIo {
 public:
  static void save(const GraphPlan& plan, const std::string& path);
  static GraphPlan load(const std::string& path);

  /// The same parse over an in-memory byte range (the file contents).
  /// `origin` names the source in rejection messages.  This is the entry
  /// point the fuzz harness drives: for ANY (data, size) it either
  /// returns a fully validated plan or throws grb::InvalidValue — never
  /// crashes, never over-allocates past what `size` can back.
  static GraphPlan load_bytes(const unsigned char* data, std::size_t size,
                              const std::string& origin);

  /// The checksum a well-formed file image of these bytes must carry
  /// (FNV-1a over the header with its checksum field zeroed, then the
  /// rest).  Exposed for tests and the structure-aware fuzz mutator,
  /// which re-stamp the field after editing header/payload bytes so
  /// mutations reach the validators behind the checksum gate.  Requires
  /// size >= kPlanHeaderBytes.
  static std::uint64_t file_checksum(const unsigned char* data,
                                     std::size_t size);
};

}  // namespace dsg::serving
