// server.hpp — SsspServer, the SSSP-as-a-service front door: a fixed pool
// of worker threads sharing one immutable GraphPlan, fed by a bounded
// MPMC queue of queries, with an LRU result cache in front of the solves.
//
// Lifecycle of one query:
//   submit()  validates the source and the algorithm choice, then blocks
//             while the queue is full (bounded backpressure — a serving
//             tier must push back, not buffer unboundedly) and returns a
//             Ticket;
//   a worker  pops the query, resolves its algorithm (per-query override,
//             else the server's auto-selected default), consults the
//             cache, and on a miss runs the plan-based core on its OWN
//             grb::Context (contexts are not thread-safe; the plan is,
//             after warming — its lazy cache is mutex-guarded);
//   wait()    blocks until that ticket's result is ready and redeems it
//             (each ticket redeemable exactly once).
//
// Failure containment mirrors solve_batch's isolation contract: a query
// that throws marks only its own QueryResult kFailed; the pool and every
// other in-flight query keep going.  QueryControl deadlines/cancellation
// plug in per query — an interrupted query returns its partial upper
// bounds with the matching status and is NOT cached (only kComplete
// results are).
//
// Determinism under concurrency: distances are deterministic — every
// pool-safe algorithm is value-deterministic per (graph, Δ, source), so
// the answer to a query does not depend on which worker ran it or what
// else was in flight; a cache hit returns a bit-identical copy of the
// first computation.  Scheduling is not — completion ORDER, cache
// hit/miss counts, and eviction victims depend on thread interleaving.
//
// Synchronization: one mutex + three condvars (queue space, queue data,
// results), plain counters under the same mutex.  No raw atomics — the
// project's atomics-confinement lint routes anything lock-free through
// the audited wrappers, and nothing here is hot enough to need them (the
// lock is taken per query, not per edge).  The mutex and condvars are the
// lockdep-audited wrappers from testing/lock_audit.hpp: under
// DSG_AUDIT_INVARIANTS every acquisition feeds the process-global
// lock-order graph (order inversions and condvar-wait-while-holding-
// second-lock abort with both chains); otherwise they compile to plain
// std::mutex / condition_variable_any.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "serving/result_cache.hpp"
#include "sssp/plan.hpp"
#include "sssp/solver.hpp"
#include "testing/lock_audit.hpp"

namespace dsg::serving {

struct ServerOptions {
  /// Worker threads (<= 0 selects hardware_concurrency, at least 1).
  int num_workers = 2;
  /// Bounded queue depth; submit() blocks when full.  0 is clamped to 1.
  std::size_t queue_capacity = 64;
  /// Result-cache entries; 0 disables caching entirely.
  std::size_t cache_capacity = 256;
  /// Default algorithm for queries without an override.  nullopt =
  /// sssp::auto_algorithm(plan).  kCapi is rejected (process-global
  /// operator state cannot run on pool threads).
  std::optional<sssp::Algorithm> algorithm;
  /// Bucket width for the matrix-snapshot constructor (the plan
  /// constructor consumes it; the plan-sharing constructor ignores it).
  double delta = kAutoDelta;
  /// Collect per-phase timers in each result's SsspStats.
  bool profile = false;
};

/// Monotonic since construction; "completed" counts kComplete only.
struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t failed = 0;
  std::uint64_t cache_insert_failures = 0;  ///< best-effort inserts that threw
  ResultCacheStats cache;
  std::uint64_t workers = 0;
  std::uint64_t queue_capacity = 0;
};

class SsspServer {
 public:
  using Ticket = std::uint64_t;

  struct Query {
    Index source = 0;
    /// Optional lifecycle control; the caller keeps it alive until wait()
    /// returns for this ticket.
    const QueryControl* control = nullptr;
    /// Per-query algorithm override (validated at submit; kCapi rejected).
    std::optional<sssp::Algorithm> algorithm;
    /// Skip the cache for this query (both lookup and insert).
    bool bypass_cache = false;
  };

  /// Shares an existing (already validated) plan across servers.
  explicit SsspServer(std::shared_ptr<const GraphPlan> plan,
                      ServerOptions options = {});
  /// Snapshots a matrix into a fresh plan at options.delta.
  explicit SsspServer(grb::Matrix<double> graph, ServerOptions options = {});

  /// Drains every submitted query, then joins the pool (shutdown()).
  ~SsspServer();

  SsspServer(const SsspServer&) = delete;
  SsspServer& operator=(const SsspServer&) = delete;

  const GraphPlan& plan() const { return *plan_; }
  /// The algorithm queries run under when they carry no override.
  sssp::Algorithm default_algorithm() const { return default_algorithm_; }

  Ticket submit(Index source) {
    Query query;
    query.source = source;
    return submit(query);
  }
  Ticket submit(Index source, const QueryControl& control) {
    Query query;
    query.source = source;
    query.control = &control;
    return submit(query);
  }
  /// Validates and enqueues; blocks while the queue is full.  Throws
  /// grb::IndexOutOfBounds (bad source) or grb::InvalidValue (bad or
  /// pool-unsafe algorithm, server shutting down) without enqueuing.
  Ticket submit(const Query& query);

  /// Blocks until `ticket`'s result is ready and redeems it.  Unknown or
  /// already-redeemed tickets throw grb::InvalidValue.  Results of
  /// queries drained during shutdown() remain redeemable until
  /// destruction.
  sssp::QueryResult wait(Ticket ticket);

  ServerStats stats() const;

  /// Stops accepting new queries, finishes every query already submitted,
  /// and joins the workers.  Idempotent; called by the destructor.  Must
  /// not race other submit() calls from the destructing thread's
  /// perspective — standard owner-drives-shutdown discipline.
  void shutdown();

 private:
  struct Item {
    Ticket ticket = 0;
    Query query;
  };

  void start_workers();
  void worker_loop();
  sssp::QueryResult run_query(const Query& query, grb::Context& ctx);

  std::shared_ptr<const GraphPlan> plan_;
  ServerOptions options_;
  sssp::Algorithm default_algorithm_ = sssp::Algorithm::kFused;
  ResultCache cache_;

  mutable testing::AuditedMutex mu_{"SsspServer::mu"};
  testing::AuditedConditionVariable not_full_;   // queue has space
  testing::AuditedConditionVariable not_empty_;  // queue has work/stopping
  testing::AuditedConditionVariable done_;       // a result landed
  std::deque<Item> queue_;
  std::unordered_set<Ticket> outstanding_;  // issued, not yet finished
  std::unordered_map<Ticket, sssp::QueryResult> finished_;  // awaiting wait()
  Ticket next_ticket_ = 1;
  bool stopping_ = false;
  // Counters (guarded by mu_).
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t deadline_expired_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t cache_insert_failures_ = 0;

  std::vector<std::thread> workers_;
};

}  // namespace dsg::serving
