// result_cache.hpp — the serving layer's LRU source→distances cache.
//
// A cache entry is one completed query's full distance vector, keyed by
// everything that determines it: the plan's structural fingerprint, the
// source vertex, the algorithm, and Δ.  The fingerprint is load-bearing —
// two servers over different graphs (or one server whose plan was swapped)
// can never serve each other's distances, because the keys differ even
// when (source, algorithm, Δ) collide.
//
// Only kComplete results are cacheable: an interrupted query's distances
// are upper bounds for *that* query's deadline, not shortest paths, and a
// later hit would silently launder them into exact answers.  The server
// enforces this; the cache itself stores whatever it is given.
//
// Values are shared_ptr<const vector<double>>: a hit hands back a
// reference to the cached vector (no copy inside the lock) and eviction
// cannot invalidate a result a client is still reading.
//
// Thread-safety: every public method is mutex-guarded; lookup() bumps
// recency, so even "reads" mutate LRU order.  No raw atomics (the project
// atomics-confinement lint applies): one lock, coarse and simple, is the
// audited design — the cache is consulted once per query, not per edge.
// The mutex is a lockdep-audited AuditedMutex (testing/lock_audit.hpp):
// workers consult the cache while NOT holding the server lock, and the
// auditor proves that stays true — nesting ResultCache::mu inside
// SsspServer::mu in one place and the reverse elsewhere would abort the
// DSG_AUDIT_INVARIANTS build at the first offending acquire.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sssp/common.hpp"
#include "testing/lock_audit.hpp"

namespace dsg::serving {

/// Everything that determines a cached distance vector.
struct CacheKey {
  std::uint64_t plan_fingerprint = 0;
  Index source = 0;
  int algorithm = 0;  ///< sssp::Algorithm enum value
  double delta = 0.0;
  bool operator==(const CacheKey&) const = default;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& key) const;
};

/// Monotonic accounting counters plus the current size (surfaced through
/// SsspServer::stats and the C API's DsgServerStats).
struct ResultCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;  ///< new keys + value refreshes
  std::uint64_t evictions = 0;   ///< LRU entries dropped at capacity
  std::uint64_t entries = 0;     ///< current size
  std::uint64_t capacity = 0;
};

class ResultCache {
 public:
  using Distances = std::shared_ptr<const std::vector<double>>;

  /// capacity 0 disables the cache: every lookup misses, every insert is
  /// dropped (no accounting as an eviction — nothing was ever resident).
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  std::size_t capacity() const { return capacity_; }

  /// nullptr on miss.  A hit moves the entry to most-recently-used.
  Distances lookup(const CacheKey& key);

  /// Inserts (or refreshes) `dist` under `key`, evicting the
  /// least-recently-used entry when at capacity.  Null distances are
  /// rejected by the server before reaching here.
  void insert(const CacheKey& key, Distances dist);

  ResultCacheStats stats() const;

  void clear();

 private:
  using LruList = std::list<std::pair<CacheKey, Distances>>;

  const std::size_t capacity_;
  mutable testing::AuditedMutex mu_{"ResultCache::mu"};
  LruList lru_;  // front = most recently used
  std::unordered_map<CacheKey, LruList::iterator, CacheKeyHash> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t insertions_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace dsg::serving
