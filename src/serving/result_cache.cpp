#include "serving/result_cache.hpp"

#include <bit>

namespace dsg::serving {

namespace {

// splitmix64 finalizer, the project's standard seeded mixer.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::size_t CacheKeyHash::operator()(const CacheKey& key) const {
  std::uint64_t h = mix64(key.plan_fingerprint);
  h = mix64(h ^ key.source);
  h = mix64(h ^ static_cast<std::uint64_t>(key.algorithm));
  h = mix64(h ^ std::bit_cast<std::uint64_t>(key.delta));
  return static_cast<std::size_t>(h);
}

ResultCache::Distances ResultCache::lookup(const CacheKey& key) {
  std::lock_guard<testing::AuditedMutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to most-recent
  return it->second->second;
}

void ResultCache::insert(const CacheKey& key, Distances dist) {
  std::lock_guard<testing::AuditedMutex> lock(mu_);
  if (capacity_ == 0) return;  // disabled: drop silently
  auto it = map_.find(key);
  if (it != map_.end()) {
    // Refresh: same key recomputed (e.g. a racing miss on two workers).
    it->second->second = std::move(dist);
    lru_.splice(lru_.begin(), lru_, it->second);
    ++insertions_;
    return;
  }
  if (lru_.size() >= capacity_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.emplace_front(key, std::move(dist));
  map_.emplace(key, lru_.begin());
  ++insertions_;
}

ResultCacheStats ResultCache::stats() const {
  std::lock_guard<testing::AuditedMutex> lock(mu_);
  ResultCacheStats out;
  out.hits = hits_;
  out.misses = misses_;
  out.insertions = insertions_;
  out.evictions = evictions_;
  out.entries = lru_.size();
  out.capacity = capacity_;
  return out;
}

void ResultCache::clear() {
  std::lock_guard<testing::AuditedMutex> lock(mu_);
  lru_.clear();
  map_.clear();
}

}  // namespace dsg::serving
