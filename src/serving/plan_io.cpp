// plan_io.cpp — the GraphPlan binary format (see plan_io.hpp for the
// layout).  Loading prefers mmap (the file is written 8-byte aligned so a
// page-aligned mapping serves every section) and falls back to a plain
// read when mapping fails; either way the bytes are copied into owning
// vectors, so the mapping's lifetime ends inside load().
#include "serving/plan_io.hpp"

#include <cmath>
#include <cstring>
#include <fstream>
#include <memory>
#include <utility>
#include <vector>

#include "graphblas/audit.hpp"
#include "testing/fault_injection.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define DSG_PLAN_IO_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace dsg::serving {

namespace {

constexpr char kMagic[8] = {'D', 'S', 'G', 'P', 'L', 'A', 'N', '\n'};
constexpr std::uint32_t kEndianMarker = 0x01020304u;

/// Fixed 112-byte header.  Every field sits at a naturally aligned offset
/// and the sizes sum exactly to sizeof, so there is no padding to leak
/// uninitialized bytes into the checksum or the file.
struct PlanFileHeader {
  char magic[8];                        // offset 0
  std::uint32_t version;                // 8
  std::uint32_t endian;                 // 12
  std::uint32_t index_bits;             // 16: 64 (grb::Index)
  std::uint32_t value_bits;             // 20: 64 (double)
  std::uint64_t num_vertices;           // 24
  std::uint64_t num_edges;              // 32
  std::uint64_t light_nnz;              // 40
  std::uint64_t heavy_nnz;              // 48
  double delta;                         // 56
  std::uint64_t delta_was_auto;         // 64: 0/1
  double max_weight;                    // 72
  double min_positive_weight;           // 80
  std::uint64_t max_out_degree;         // 88
  double avg_out_degree;                // 96
  std::uint64_t checksum;               // 104: FNV-1a, checksum field zeroed
};
static_assert(sizeof(PlanFileHeader) == kPlanHeaderBytes,
              "header layout drifted");
static_assert(sizeof(grb::Index) == 8 && sizeof(double) == 8,
              "plan format assumes 64-bit indices and values");

/// FNV-1a over a byte range, resumable via the running hash.
std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h = (h ^ p[i]) * 0x100000001b3ULL;
  }
  return h;
}

constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ULL;

template <typename T>
std::uint64_t fnv1a_vec(std::uint64_t h, const std::vector<T>& v) {
  return fnv1a(h, v.data(), v.size() * sizeof(T));
}

/// The checksum input: the header with its checksum field zeroed, then
/// every payload section in file order.  Catches single-bit corruption in
/// either region (size-class errors are caught earlier by the exact
/// file-size check).
std::uint64_t checksum_file(PlanFileHeader header,
                            const std::vector<const void*>& sections,
                            const std::vector<std::size_t>& sizes) {
  header.checksum = 0;
  std::uint64_t h = fnv1a(kFnvBasis, &header, sizeof(header));
  for (std::size_t k = 0; k < sections.size(); ++k) {
    h = fnv1a(h, sections[k], sizes[k]);
  }
  return h;
}

[[noreturn]] void reject(const std::string& path, const std::string& why) {
  throw grb::InvalidValue("plan load: " + why + " (" + path + ")");
}

void write_bytes(std::ofstream& os, const void* data, std::size_t size) {
  if (size == 0) return;  // empty split sections pass a null pointer
  os.write(static_cast<const char*>(data),
           static_cast<std::streamsize>(size));
}

template <typename T>
void write_vec(std::ofstream& os, const std::vector<T>& v) {
  write_bytes(os, v.data(), v.size() * sizeof(T));
}

/// Expected payload byte count for a header, or false when the sum does
/// not fit in uint64 — every multiply and add is overflow-checked, so a
/// forged header can never wrap the total into a value that happens to
/// match the real file size (the classic count*width allocation bug).
/// Runs on pure header arithmetic BEFORE any allocation or file-size
/// comparison.
bool checked_payload_bytes(const PlanFileHeader& h, std::uint64_t& out) {
  std::uint64_t total = 0;
  std::uint64_t ptr_len = 0;
  if (__builtin_add_overflow(h.num_vertices, std::uint64_t{1}, &ptr_len)) {
    return false;
  }
  const std::uint64_t element_counts[] = {
      ptr_len,     h.num_edges, h.num_edges,  // row_ptr, col_ind, val
      ptr_len,     h.light_nnz, h.light_nnz,  // light_ptr, light_ind/val
      ptr_len,     h.heavy_nnz, h.heavy_nnz,  // heavy_ptr, heavy_ind/val
  };
  for (const std::uint64_t count : element_counts) {
    std::uint64_t bytes = 0;
    if (__builtin_mul_overflow(count, std::uint64_t{8}, &bytes) ||
        __builtin_add_overflow(total, bytes, &total)) {
      return false;
    }
  }
  out = total;
  return true;
}

/// Copies the next `count` elements out of the mapped/loaded byte range.
/// The empty case is skipped: an all-light or all-heavy split has
/// zero-length sections, and memcpy's arguments must be non-null even
/// for a zero count.
template <typename T>
std::vector<T> take(const unsigned char*& cursor, std::uint64_t count) {
  std::vector<T> out(count);
  if (count != 0) {
    std::memcpy(out.data(), cursor, count * sizeof(T));
    cursor += count * sizeof(T);
  }
  return out;
}

/// Whole-file bytes, mmap first, ifstream fallback.  The deleter-typed
/// unique_ptr keeps the mapping alive exactly as long as parsing needs it.
class FileBytes {
 public:
  explicit FileBytes(const std::string& path) {
#if defined(DSG_PLAN_IO_HAVE_MMAP)
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
      struct stat st = {};
      if (::fstat(fd, &st) == 0 && st.st_size > 0) {
        void* mapped =
            ::mmap(nullptr, static_cast<std::size_t>(st.st_size), PROT_READ,
                   MAP_PRIVATE, fd, 0);
        if (mapped != MAP_FAILED) {
          data_ = static_cast<const unsigned char*>(mapped);
          size_ = static_cast<std::size_t>(st.st_size);
          mapped_ = mapped;
        }
      }
      ::close(fd);  // the mapping outlives the descriptor
      if (mapped_ != nullptr) return;
    }
#endif
    std::ifstream in(path, std::ios::binary);
    if (!in) reject(path, "cannot open file");
    in.seekg(0, std::ios::end);
    const std::streamoff size = in.tellg();
    in.seekg(0, std::ios::beg);
    fallback_.resize(static_cast<std::size_t>(size));
    in.read(reinterpret_cast<char*>(fallback_.data()), size);
    if (!in) reject(path, "read failed");
    data_ = fallback_.data();
    size_ = fallback_.size();
  }

  ~FileBytes() {
#if defined(DSG_PLAN_IO_HAVE_MMAP)
    if (mapped_ != nullptr) ::munmap(mapped_, size_);
#endif
  }

  FileBytes(const FileBytes&) = delete;
  FileBytes& operator=(const FileBytes&) = delete;

  const unsigned char* data() const { return data_; }
  std::size_t size() const { return size_; }

 private:
  const unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
  void* mapped_ = nullptr;
  std::vector<unsigned char> fallback_;
};

}  // namespace

void PlanIo::save(const GraphPlan& plan, const std::string& path) {
  const grb::Matrix<double>& a = plan.matrix();
  // Force the split now: the file pins Δ, so a loaded plan must start with
  // the split already materialized (that is the cold-start win).
  const detail::LightHeavySplit& split = plan.light_heavy();
  const PlanStats& stats = plan.stats();

  PlanFileHeader header = {};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kPlanFormatVersion;
  header.endian = kEndianMarker;
  header.index_bits = 64;
  header.value_bits = 64;
  header.num_vertices = a.nrows();
  header.num_edges = a.nvals();
  header.light_nnz = split.light_ind.size();
  header.heavy_nnz = split.heavy_ind.size();
  header.delta = plan.delta();
  header.delta_was_auto = plan.delta_was_auto() ? 1 : 0;
  header.max_weight = stats.max_weight;
  header.min_positive_weight = stats.min_positive_weight;
  header.max_out_degree = stats.max_out_degree;
  header.avg_out_degree = stats.avg_out_degree;

  // Sections in file order.  row_ptr/col_ind/raw_values are spans over the
  // matrix's own storage; the split vectors are plan-owned.
  const std::vector<const void*> sections = {
      a.row_ptr().data(),          a.col_ind().data(),
      a.raw_values().data(),       split.light_ptr.data(),
      split.light_ind.data(),      split.light_val.data(),
      split.heavy_ptr.data(),      split.heavy_ind.data(),
      split.heavy_val.data()};
  const std::vector<std::size_t> sizes = {
      a.row_ptr().size_bytes(),          a.col_ind().size_bytes(),
      a.raw_values().size_bytes(),       split.light_ptr.size() * 8,
      split.light_ind.size() * 8,        split.light_val.size() * 8,
      split.heavy_ptr.size() * 8,        split.heavy_ind.size() * 8,
      split.heavy_val.size() * 8};
  header.checksum = checksum_file(header, sections, sizes);

  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) {
    throw grb::InvalidValue("plan save: cannot open " + path +
                            " for writing");
  }
  write_bytes(os, &header, sizeof(header));
  for (std::size_t k = 0; k < sections.size(); ++k) {
    write_bytes(os, sections[k], sizes[k]);
  }
  os.flush();
  if (!os) throw grb::InvalidValue("plan save: write failed on " + path);
}

GraphPlan PlanIo::load(const std::string& path) {
  testing::fault_point("serving/plan_load");
  const FileBytes file(path);
  return load_bytes(file.data(), file.size(), path);
}

std::uint64_t PlanIo::file_checksum(const unsigned char* data,
                                    std::size_t size) {
  if (size < sizeof(PlanFileHeader)) {
    throw grb::InvalidValue(
        "PlanIo::file_checksum: need at least a full header");
  }
  PlanFileHeader header = {};
  std::memcpy(&header, data, sizeof(header));
  return checksum_file(header, {data + sizeof(header)},
                       {size - sizeof(header)});
}

GraphPlan PlanIo::load_bytes(const unsigned char* data, std::size_t size,
                             const std::string& origin) {
  if (size < sizeof(PlanFileHeader)) {
    reject(origin, "truncated header");
  }
  PlanFileHeader header = {};
  std::memcpy(&header, data, sizeof(header));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    reject(origin, "bad magic (not a DSG plan file)");
  }
  if (header.endian != kEndianMarker) {
    reject(origin, "endianness mismatch (file written on a foreign-endian "
                   "host)");
  }
  if (header.version != kPlanFormatVersion) {
    reject(origin, "unsupported format version " +
                       std::to_string(header.version) + " (expected " +
                       std::to_string(kPlanFormatVersion) + ")");
  }
  if (header.index_bits != 64 || header.value_bits != 64) {
    reject(origin, "unsupported index/value width");
  }
  if (header.num_vertices == 0) reject(origin, "empty graph");
  if (!(std::isfinite(header.delta) && header.delta > 0.0)) {
    reject(origin, "invalid delta (must be finite and positive)");
  }
  // Overflow-checked size arithmetic, then the exact cross-check against
  // the real byte count: both run before any allocation, so the vectors
  // sized from these counts are always fully backed by `data`.
  std::uint64_t payload_len = 0;
  if (!checked_payload_bytes(header, payload_len)) {
    reject(origin, "header counts overflow the payload size arithmetic");
  }
  if (size - sizeof(PlanFileHeader) != payload_len) {
    reject(origin,
           "file size mismatch (" + std::to_string(size) +
               " bytes, expected " +
               std::to_string(sizeof(PlanFileHeader) + payload_len) +
               " — truncated or trailing garbage)");
  }

  const unsigned char* payload = data + sizeof(PlanFileHeader);
  if (checksum_file(header, {payload},
                    {static_cast<std::size_t>(payload_len)}) !=
      header.checksum) {
    reject(origin, "checksum mismatch");
  }

  // Payload sections, in file order.
  const std::uint64_t n = header.num_vertices;
  const unsigned char* cursor = payload;
  auto row_ptr = take<grb::Index>(cursor, n + 1);
  auto col_ind = take<grb::Index>(cursor, header.num_edges);
  auto val = take<double>(cursor, header.num_edges);
  detail::LightHeavySplit split;
  split.light_ptr = take<grb::Index>(cursor, n + 1);
  split.light_ind = take<grb::Index>(cursor, header.light_nnz);
  split.light_val = take<double>(cursor, header.light_nnz);
  split.heavy_ptr = take<grb::Index>(cursor, n + 1);
  split.heavy_ind = take<grb::Index>(cursor, header.heavy_nnz);
  split.heavy_val = take<double>(cursor, header.heavy_nnz);

  // The checksum is forgeable (FNV-1a, and the format is documented), so
  // nothing semantic is trusted: weights must be finite and non-negative
  // (a NaN or negative weight would silently corrupt — or hang —
  // delta-stepping), and the CSR/split structure is fully re-validated
  // below before the plan is handed out.
  for (const double w : val) {
    if (!(std::isfinite(w) && w >= 0.0)) {
      reject(origin, "non-finite or negative edge weight");
    }
  }

  PlanStats stats;
  stats.num_vertices = n;
  stats.num_edges = header.num_edges;
  stats.max_out_degree = header.max_out_degree;
  stats.avg_out_degree = header.avg_out_degree;
  stats.max_weight = header.max_weight;
  stats.min_positive_weight = header.min_positive_weight;

  // Restored construction skips re-deriving the stats scalars (the one
  // O(|E|) scan a warm start amortizes) but NOT the structural audit:
  // check_invariants re-validates the adjacency CSR and the light/heavy
  // partition at Δ whether or not DSG_AUDIT_INVARIANTS is compiled in.
  // AuditError normally means "library state corrupt — do not catch", but
  // here the corrupt state came straight from untrusted input, which is
  // precisely a bad-input rejection.
  try {
    grb::Matrix<double> a(n, n);
    a.adopt(std::move(row_ptr), std::move(col_ind), std::move(val));
    GraphPlan plan(GraphPlan::Restored{},
                   std::make_shared<const grb::Matrix<double>>(std::move(a)),
                   header.delta, header.delta_was_auto != 0, stats);
    plan.install_split(std::move(split));
    plan.check_invariants();
    return plan;
  } catch (const grb::audit::AuditError& e) {
    reject(origin, std::string("structurally invalid payload: ") + e.what());
  }
}

}  // namespace dsg::serving

namespace dsg {

// GraphPlan's persistence members live here (not plan.cpp) so the core
// dsg_sssp library carries no file-format code; linking dsg_serving
// provides them.
void GraphPlan::save(const std::string& path) const {
  serving::PlanIo::save(*this, path);
}

GraphPlan GraphPlan::load(const std::string& path) {
  return serving::PlanIo::load(path);
}

}  // namespace dsg
