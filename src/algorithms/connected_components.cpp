#include "algorithms/connected_components.hpp"

#include <algorithm>
#include <unordered_set>

#include "graphblas/graphblas.hpp"

namespace dsg {

std::vector<Index> connected_components_graphblas(
    const grb::Matrix<double>& a) {
  if (a.nrows() != a.ncols()) {
    throw grb::DimensionMismatch("connected_components: matrix must be square");
  }
  const Index n = a.nrows();

  // labels = [0, 1, ..., n-1]
  grb::Vector<Index> labels(n);
  {
    auto& li = labels.mutable_indices();
    auto& lv = labels.mutable_values();
    li.resize(n);
    lv.resize(n);
    for (Index v = 0; v < n; ++v) {
      li[v] = v;
      lv[v] = v;
    }
  }

  const auto min_first = grb::min_first_semiring<Index>();
  grb::Vector<Index> incoming(n);
  for (;;) {
    // incoming[j] = min over in-neighbours i of labels[i]
    grb::vxm(incoming, grb::NoMask{}, grb::NoAccumulate{}, min_first, labels,
             a, grb::replace_desc);
    // proposed = min(labels, incoming), element-wise union
    grb::Vector<Index> proposed(n);
    grb::ewise_add(proposed, grb::NoMask{}, grb::NoAccumulate{},
                   grb::Min<Index>{}, labels, incoming, grb::replace_desc);
    if (proposed == labels) break;
    labels = std::move(proposed);
  }
  return labels.to_dense_array(0);
}

Index count_components(const std::vector<Index>& labels) {
  std::unordered_set<Index> distinct(labels.begin(), labels.end());
  return static_cast<Index>(distinct.size());
}

}  // namespace dsg
