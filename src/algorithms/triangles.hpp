// triangles.hpp — triangle counting and K-truss, the edge-centric
// algorithms the paper cites as motivation for the Hadamard-after-product
// pattern (Sec. II-C: S = AᵀA ∘ A eliminates fill-in).
#pragma once

#include "graphblas/matrix.hpp"
#include "sssp/common.hpp"

namespace dsg {

/// Number of triangles in an undirected simple graph (symmetric matrix,
/// empty diagonal).  Sandia variant: with L the strict lower triangle,
/// the count is sum((L · L) ∘ L) — masked mxm + reduce.
std::uint64_t triangle_count_graphblas(const grb::Matrix<double>& a);

/// Per-edge support: S = (AᵀA) ∘ A, the paper's Sec. II-C formula.
/// S[i][j] is the number of triangles through edge (i,j).
grb::Matrix<double> edge_support_graphblas(const grb::Matrix<double>& a);

/// K-truss: the maximal subgraph in which every edge participates in at
/// least (k-2) triangles.  Iteratively recomputes support and drops weak
/// edges until a fixed point.  Returns the truss adjacency matrix
/// (symmetric subgraph of `a`).
grb::Matrix<double> k_truss_graphblas(const grb::Matrix<double>& a, Index k);

}  // namespace dsg
