#include "algorithms/triangles.hpp"

#include "graphblas/graphblas.hpp"

namespace dsg {

namespace {

void check_symmetric_simple(const grb::Matrix<double>& a, const char* who) {
  if (a.nrows() != a.ncols()) {
    throw grb::DimensionMismatch(std::string(who) + ": matrix must be square");
  }
}

}  // namespace

std::uint64_t triangle_count_graphblas(const grb::Matrix<double>& a) {
  check_symmetric_simple(a, "triangle_count");
  const Index n = a.nrows();

  // L = strict lower triangle of the (0/1 pattern of the) graph.
  grb::Matrix<double> pattern(n, n);
  grb::apply(pattern, grb::One<double>{}, a);
  grb::Matrix<double> lower(n, n);
  grb::select(lower, grb::TriLower{-1}, pattern);

  // C<L> = L · L   (each entry counts wedges closed by the mask edge)
  grb::Matrix<double> closed(n, n);
  grb::mxm(closed, lower, grb::NoAccumulate{},
           grb::plus_times_semiring<double>(), lower, lower,
           grb::replace_desc);
  const double total = grb::reduce(grb::plus_monoid<double>(), closed);
  return static_cast<std::uint64_t>(total + 0.5);
}

grb::Matrix<double> edge_support_graphblas(const grb::Matrix<double>& a) {
  check_symmetric_simple(a, "edge_support");
  const Index n = a.nrows();

  grb::Matrix<double> pattern(n, n);
  grb::apply(pattern, grb::One<double>{}, a);

  // S<A> = (Aᵀ · A): the paper's S = AᵀA ∘ A with the Hadamard realized
  // as an output mask (no fill-in is ever materialized).
  grb::Matrix<double> support(n, n);
  grb::mxm(support, pattern, grb::NoAccumulate{},
           grb::plus_times_semiring<double>(), pattern, pattern,
           grb::Descriptor{.replace = true, .transpose_in0 = true});
  return support;
}

grb::Matrix<double> k_truss_graphblas(const grb::Matrix<double>& a, Index k) {
  check_symmetric_simple(a, "k_truss");
  if (k < 3) {
    throw grb::InvalidValue("k_truss: k must be >= 3");
  }
  const Index n = a.nrows();
  const double min_support = static_cast<double>(k - 2);

  grb::Matrix<double> truss(n, n);
  grb::apply(truss, grb::One<double>{}, a);

  for (;;) {
    // Support of each surviving edge.
    grb::Matrix<double> support(n, n);
    grb::mxm(support, truss, grb::NoAccumulate{},
             grb::plus_times_semiring<double>(), truss, truss,
             grb::Descriptor{.replace = true, .transpose_in0 = true});
    // Keep edges with enough support.
    grb::Matrix<double> kept(n, n);
    grb::select(kept, grb::GreaterEqualThreshold<double>{min_support},
                support);
    grb::Matrix<double> next(n, n);
    grb::apply(next, grb::One<double>{}, kept);
    if (next.nvals() == truss.nvals()) {
      // Fixed point: restore original weights on surviving edges.
      grb::Matrix<double> out(n, n);
      grb::apply(out, next, grb::NoAccumulate{}, grb::Identity<double>{}, a,
                 grb::structure_mask_desc);
      return out;
    }
    truss = std::move(next);
  }
}

}  // namespace dsg
