#include "algorithms/pagerank.hpp"

#include <cmath>

#include "graphblas/graphblas.hpp"

namespace dsg {

PageRankResult pagerank_graphblas(const grb::Matrix<double>& a,
                                  const PageRankOptions& options) {
  if (a.nrows() != a.ncols()) {
    throw grb::DimensionMismatch("pagerank: matrix must be square");
  }
  if (options.damping < 0.0 || options.damping >= 1.0) {
    throw grb::InvalidValue("pagerank: damping must be in [0, 1)");
  }
  const Index n = a.nrows();
  const double d = options.damping;

  // Row-normalize: P[i][j] = 1 / outdeg(i), built with reduce + apply.
  grb::Vector<double> outdeg(n);
  grb::Matrix<double> ones(n, n);
  grb::apply(ones, grb::One<double>{}, a);
  grb::reduce(outdeg, grb::plus_monoid<double>(), ones);

  grb::Matrix<double> p(n, n);
  {
    // P = ones scaled per-row by 1/outdeg.  diag(1/outdeg) * ones via the
    // (plus, times) mxm against a diagonal matrix.
    grb::Matrix<double> inv_deg(n, n);
    outdeg.for_each([&](Index v, const double& deg) {
      inv_deg.set_element(v, v, 1.0 / deg);
    });
    grb::mxm(p, grb::plus_times_semiring<double>(), inv_deg, ones);
  }

  // Dangling vertices: structural complement of outdeg.
  std::vector<double> dangling(n, 0.0);
  {
    auto deg_dense = outdeg.to_dense_array(0.0);
    for (Index v = 0; v < n; ++v) {
      if (deg_dense[v] == 0.0) dangling[v] = 1.0;
    }
  }

  // Fully-stored vectors are built through the Context policy, so a caller
  // pinning representations (auto_representation = false) gets the sparse
  // form here instead of smuggled-in dense kernels.
  grb::Context& ctx = grb::default_context();
  auto rank = grb::full_vector(ctx, n, 1.0 / static_cast<double>(n));
  const double teleport = (1.0 - d) / static_cast<double>(n);

  PageRankResult result;
  for (result.iterations = 0; result.iterations < options.max_iterations;
       ++result.iterations) {
    // Dangling mass this round.
    double dangling_mass = 0.0;
    {
      auto dense = rank.to_dense_array(0.0);
      for (Index v = 0; v < n; ++v) dangling_mass += dense[v] * dangling[v];
    }

    // next = teleport + d * (rankᵀ P) + d * dangling_mass / n
    grb::Vector<double> next(n);
    grb::vxm(next, grb::NoMask{}, grb::NoAccumulate{},
             grb::plus_times_semiring<double>(), rank, p, grb::replace_desc);
    const double base =
        teleport + d * dangling_mass / static_cast<double>(n);
    grb::Vector<double> next_full(n);
    grb::ewise_add(next_full, grb::NoMask{}, grb::NoAccumulate{},
                   grb::Plus<double>{},
                   grb::full_vector(ctx, n, base),
                   [&] {
                     grb::Vector<double> scaled(n);
                     grb::apply(scaled,
                                grb::BindSecond<grb::Times<double>, double>{
                                    {}, d},
                                next);
                     return scaled;
                   }(),
                   grb::replace_desc);

    // L1 residual.
    grb::Vector<double> diff(n);
    grb::ewise_add(diff, grb::NoMask{}, grb::NoAccumulate{},
                   grb::Minus<double>{}, next_full, rank, grb::replace_desc);
    grb::Vector<double> abs_diff(n);
    grb::apply(abs_diff, grb::AbsOp<double>{}, diff);
    result.residual = grb::reduce(grb::plus_monoid<double>(), abs_diff);

    rank = std::move(next_full);
    if (result.residual < options.tolerance) {
      ++result.iterations;
      break;
    }
  }

  result.rank = rank.to_dense_array(0.0);
  return result;
}

}  // namespace dsg
