#include "algorithms/bfs.hpp"

#include "graphblas/graphblas.hpp"
#include "sssp/paths.hpp"

namespace dsg {

std::vector<Index> bfs_levels_graphblas(const grb::Matrix<double>& a,
                                        Index source) {
  check_sssp_inputs(a, source);
  const Index n = a.nrows();

  grb::Vector<bool> frontier(n);   // current wavefront
  grb::Vector<Index> visited(n);   // level per visited vertex
  frontier.set_element(source, true);
  visited.set_element(source, 0);

  const auto bool_sr = grb::lor_land_semiring<bool>();
  Index level = 0;
  while (frontier.nvals() > 0) {
    ++level;
    // frontier<!visited, replace> = frontier ᵀA over (||,&&): one hop,
    // discarding anything already visited (structural complement mask).
    grb::vxm(frontier, visited, grb::NoAccumulate{}, bool_sr, frontier, a,
             grb::Descriptor{.replace = true,
                             .mask_complement = true,
                             .mask_structure = true});
    // visited<frontier> = level
    grb::assign_scalar(visited, frontier, grb::NoAccumulate{}, level,
                       std::vector<Index>{grb::all_indices},
                       grb::structure_mask_desc);
  }
  return visited.to_dense_array(kUnreachedLevel);
}

std::vector<Index> bfs_parents_graphblas(const grb::Matrix<double>& a,
                                         Index source) {
  check_sssp_inputs(a, source);
  const Index n = a.nrows();

  // Wavefront carries candidate parent ids (shifted by +1 so that id 0 is
  // distinguishable from "no value" in masks); (min, first) picks the
  // smallest-id parent among competing predecessors.
  grb::Vector<Index> wavefront(n);
  grb::Vector<Index> parent(n);
  wavefront.set_element(source, source + 1);
  parent.set_element(source, 0);  // placeholder, rewritten below

  const auto min_first = grb::min_first_semiring<Index>();
  while (wavefront.nvals() > 0) {
    // Stamp the wavefront with its own vertex ids: each frontier vertex
    // proposes itself as the parent of its neighbours.
    grb::Vector<Index> ids(n);
    grb::select(
        ids, [](const Index&, Index) { return true; }, wavefront);
    {
      // ids[v] = v + 1 for v in wavefront (index-aware apply).
      auto& vals = ids.mutable_values();
      auto idx = ids.indices();
      for (std::size_t k = 0; k < vals.size(); ++k) {
        vals[k] = idx[k] + 1;
      }
    }
    // wavefront<!parent, replace> = ids ᵀA over (min, first)
    grb::vxm(wavefront, parent, grb::NoAccumulate{}, min_first, ids, a,
             grb::Descriptor{.replace = true,
                             .mask_complement = true,
                             .mask_structure = true});
    // parent<wavefront, structural> = wavefront - 1
    grb::apply(parent, wavefront, grb::NoAccumulate{},
               [](const Index& x) { return x - 1; }, wavefront,
               grb::structure_mask_desc);
  }

  auto out = parent.to_dense_array(kNoParent);
  out[source] = kNoParent;  // the source has no parent
  return out;
}

}  // namespace dsg
