// pagerank.hpp — PageRank on the (plus, times) semiring: the canonical
// "algorithm that is natively linear-algebraic", included to exercise the
// arithmetic-semiring side of the substrate the same way delta-stepping
// exercises (min, +).
#pragma once

#include <vector>

#include "graphblas/matrix.hpp"
#include "sssp/common.hpp"

namespace dsg {

struct PageRankOptions {
  double damping = 0.85;
  double tolerance = 1e-9;  ///< L1 convergence threshold
  Index max_iterations = 100;
};

struct PageRankResult {
  std::vector<double> rank;  ///< sums to 1 (dangling mass redistributed)
  Index iterations = 0;
  double residual = 0.0;  ///< final L1 delta
};

/// Power-iteration PageRank over the row-normalized adjacency matrix.
/// Dangling vertices (no out-edges) donate their mass uniformly.
PageRankResult pagerank_graphblas(const grb::Matrix<double>& a,
                                  const PageRankOptions& options = {});

}  // namespace dsg
