// connected_components.hpp — connected components by label propagation in
// the language of linear algebra: each vertex repeatedly adopts the
// minimum label in its closed neighbourhood, which is one (min, first)
// vector-matrix product plus an element-wise min per round.
#pragma once

#include <vector>

#include "graphblas/matrix.hpp"
#include "sssp/common.hpp"

namespace dsg {

/// Component labels for an *undirected* graph (the matrix must be
/// symmetric — callers with directed data should symmetrize first).
/// Label of a component is the smallest vertex id it contains; isolated
/// vertices keep their own id.  Converges in O(diameter) rounds.
std::vector<Index> connected_components_graphblas(
    const grb::Matrix<double>& a);

/// Number of distinct components given a label vector.
Index count_components(const std::vector<Index>& labels);

}  // namespace dsg
