// bfs.hpp — breadth-first search in the language of linear algebra.
//
// The paper's methodology (vertex/edge patterns -> matrix operations) maps
// BFS onto the boolean semiring: a frontier is a sparse boolean vector, one
// traversal step is vxm over (||,&&), and the visited set is a complement
// mask.  BFS also serves as the unit-weight Δ=1 special case that
// cross-checks delta-stepping in the tests.
#pragma once

#include <vector>

#include "graphblas/matrix.hpp"
#include "sssp/common.hpp"

namespace dsg {

/// Marker level for unreached vertices.
inline constexpr Index kUnreachedLevel = grb::all_indices;

/// BFS levels (hop counts) from `source`; kUnreachedLevel where
/// unreachable.  Runs entirely on GraphBLAS operations.
std::vector<Index> bfs_levels_graphblas(const grb::Matrix<double>& a,
                                        Index source);

/// BFS parents: parent[v] is the BFS-tree predecessor (smallest-id
/// in-neighbour on the previous level), kNoParent for the source and
/// unreachable vertices.  Uses the (min, first) semiring to propagate
/// parent ids through the frontier.
std::vector<Index> bfs_parents_graphblas(const grb::Matrix<double>& a,
                                         Index source);

}  // namespace dsg
