// delta_stepping_graphblas.hpp — the paper's primary artifact: the linear
// algebraic delta-stepping SSSP implemented call-for-call on the GraphBLAS
// substrate (paper Fig. 1 left / Fig. 2).
//
// The structure deliberately mirrors the SuiteSparse listing in Fig. 2,
// including the eWiseAdd-with-tReq-mask workaround for the non-commutative
// (tReq < t) comparison (Sec. V-B).  This is the *unfused* implementation
// whose cost Fig. 3 compares against the fused C implementation.
//
// Both variants come in two forms:
//   - the legacy one-shot free function (matrix + options), which keeps
//     the paper's per-call A_L/A_H setup through GraphBLAS operations
//     (double-apply here, fused select in the ablation) — this is what
//     Fig. 3 / ABL-OPS measure, so the idiom stays in the measured path;
//   - the plan-based core (GraphPlan + Context + source), which executes
//     the same loop against prebuilt A_L/A_H and warm workspaces.
#pragma once

#include "graphblas/matrix.hpp"
#include "sssp/common.hpp"
#include "sssp/plan.hpp"

namespace grb {
class Context;
}

namespace dsg {

/// Runs delta-stepping from `source` on adjacency matrix `a` (weights > 0)
/// using only GraphBLAS operations.
///
/// Faithfulness notes:
///  - A_L / A_H are built with two GrB_apply calls each (predicate then
///    identity-under-mask), exactly like Fig. 2 lines 16-21; the plan-based
///    core receives the same matrices prebuilt in one pass.
///  - The bucket filter, the (tReq < t) test and the S-set update use the
///    same apply / eWiseAdd sequence as Fig. 2 lines 35-54.
///  - Relaxations are vxm over the (min,+) semiring (lines 43 and 60).
SsspResult delta_stepping_graphblas(const grb::Matrix<double>& a, Index source,
                                    const DeltaSteppingOptions& options = {});

/// Plan-based core of the above.  stats.setup_seconds is 0 here — the plan
/// paid the A_L/A_H construction once.
SsspResult delta_stepping_graphblas(const GraphPlan& plan, grb::Context& ctx,
                                    Index source, const ExecOptions& exec = {});

/// Variant using one fused grb::select per filter instead of the
/// double-apply idiom — the "what if the API had first-class selection"
/// ablation (still unfused across operations).  Used by ABL-OPS.
SsspResult delta_stepping_graphblas_select(
    const grb::Matrix<double>& a, Index source,
    const DeltaSteppingOptions& options = {});

/// Plan-based core of the select variant.
SsspResult delta_stepping_graphblas_select(const GraphPlan& plan,
                                           grb::Context& ctx, Index source,
                                           const ExecOptions& exec = {});

}  // namespace dsg
