// delta_stepping_graphblas.hpp — the paper's primary artifact: the linear
// algebraic delta-stepping SSSP implemented call-for-call on the GraphBLAS
// substrate (paper Fig. 1 left / Fig. 2).
//
// The structure deliberately mirrors the SuiteSparse listing in Fig. 2,
// including the double-apply filter idiom and the eWiseAdd-with-tReq-mask
// workaround for the non-commutative (tReq < t) comparison (Sec. V-B).
// This is the *unfused* implementation whose cost Fig. 3 compares against
// the fused C implementation.
#pragma once

#include "graphblas/matrix.hpp"
#include "sssp/common.hpp"

namespace dsg {

/// Runs delta-stepping from `source` on adjacency matrix `a` (weights > 0)
/// using only GraphBLAS operations.
///
/// Faithfulness notes:
///  - A_L / A_H are built with two GrB_apply calls each (predicate then
///    identity-under-mask), exactly like Fig. 2 lines 16-21.
///  - The bucket filter, the (tReq < t) test and the S-set update use the
///    same apply / eWiseAdd sequence as Fig. 2 lines 35-54.
///  - Relaxations are vxm over the (min,+) semiring (lines 43 and 60).
SsspResult delta_stepping_graphblas(const grb::Matrix<double>& a, Index source,
                                    const DeltaSteppingOptions& options = {});

/// Variant using one fused grb::select per filter instead of the
/// double-apply idiom — the "what if the API had first-class selection"
/// ablation (still unfused across operations).  Used by ABL-OPS.
SsspResult delta_stepping_graphblas_select(
    const grb::Matrix<double>& a, Index source,
    const DeltaSteppingOptions& options = {});

}  // namespace dsg
