#include "sssp/delta_stepping_buckets.hpp"

#include <chrono>
#include <cmath>
#include <vector>

#include "graphblas/context.hpp"
#include "testing/fault_injection.hpp"

namespace dsg {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Cyclic bucket array.  Meyer & Sanders observe that at most
/// ceil(max_weight / delta) + 1 buckets can be simultaneously non-empty, so
/// the bucket index wraps modulo that bound.
class BucketArray {
 public:
  BucketArray(Index num_buckets, Index num_vertices)
      : buckets_(num_buckets),
        position_(num_vertices, kAbsent),
        bucket_of_(num_vertices, kAbsent) {}

  static constexpr Index kAbsent = std::numeric_limits<Index>::max();

  /// Moves v into logical bucket b (removing it from its current bucket).
  void insert(Index v, Index b) {
    remove(v);
    const Index slot = b % buckets_.size();
    position_[v] = static_cast<Index>(buckets_[slot].size());
    bucket_of_[v] = slot;
    buckets_[slot].push_back(v);
  }

  /// Removes v from whichever bucket holds it (no-op when absent).
  void remove(Index v) {
    const Index slot = bucket_of_[v];
    if (slot == kAbsent) return;
    auto& bucket = buckets_[slot];
    const Index pos = position_[v];
    const Index last = bucket.back();
    bucket[pos] = last;
    position_[last] = pos;
    bucket.pop_back();
    bucket_of_[v] = kAbsent;
    position_[v] = kAbsent;
  }

  /// Steals the contents of logical bucket b, emptying it.
  std::vector<Index> take(Index b) {
    const Index slot = b % buckets_.size();
    std::vector<Index> out = std::move(buckets_[slot]);
    buckets_[slot].clear();
    for (Index v : out) {
      bucket_of_[v] = kAbsent;
      position_[v] = kAbsent;
    }
    return out;
  }

  bool logical_bucket_empty(Index b) const {
    return buckets_[b % buckets_.size()].empty();
  }

  bool all_empty() const {
    for (const auto& bucket : buckets_) {
      if (!bucket.empty()) return false;
    }
    return true;
  }

 private:
  std::vector<std::vector<Index>> buckets_;
  std::vector<Index> position_;   // index of v inside its bucket
  std::vector<Index> bucket_of_;  // physical slot holding v, or kAbsent
};

}  // namespace

SsspResult delta_stepping_buckets(const GraphPlan& plan, grb::Context&,
                                  Index source, const ExecOptions& exec) {
  const Index n = plan.num_vertices();
  grb::detail::check_index(source, n, "sssp: source");
  const double delta = plan.delta();
  const double max_w = plan.stats().max_weight;
  const auto& split = plan.light_heavy();
  SsspStats stats;  // setup_seconds stays 0: the plan paid it once

  // ceil(max_w/delta)+2 cyclic buckets always suffice (+2 guards the
  // boundary case max_w == k*delta exactly).
  const Index num_buckets =
      static_cast<Index>(std::ceil(max_w / delta)) + 2;
  BucketArray buckets(num_buckets, n);

  std::vector<double> tent(n, kInfDist);

  // relax(v, new_dist) — Fig. 1 right, top.
  auto relax = [&](Index v, double new_dist) {
    if (new_dist < tent[v]) {
      buckets.insert(v, static_cast<Index>(new_dist / delta));
      tent[v] = new_dist;
    }
  };

  relax(source, 0.0);

  // Lifecycle: poll once before the loop (a deadline of 0 returns
  // immediately with the init-state upper bounds) and at every bucket
  // boundary.  tent is relax-only, so it is a valid upper bound at any cut.
  SsspStatus status = poll_control(exec.control);

  std::vector<std::pair<Index, double>> requests;
  Index i = 0;
  while (status == SsspStatus::kComplete && !buckets.all_empty()) {
    testing::fault_point("buckets/round");
    // Advance to the next non-empty bucket.  The cyclic array caps the
    // probe distance at num_buckets.
    while (buckets.logical_bucket_empty(i)) ++i;
    ++stats.outer_iterations;

    std::vector<Index> settled;  // S in the paper
    while (!buckets.logical_bucket_empty(i)) {
      ++stats.light_phases;
      auto current = buckets.take(i);

      // Req = {(w, tent(v) + c(v,w)) : v in B[i], (v,w) light}
      auto light_start = Clock::now();
      requests.clear();
      for (Index v : current) {
        for (Index k = split.light_ptr[v]; k < split.light_ptr[v + 1]; ++k) {
          requests.emplace_back(split.light_ind[k],
                                tent[v] + split.light_val[k]);
        }
      }
      stats.relax_requests += requests.size();

      // S = S ∪ B[i]
      settled.insert(settled.end(), current.begin(), current.end());

      // foreach (w, x) in Req do relax(w, x)
      for (const auto& [w, x] : requests) relax(w, x);
      if (exec.profile) stats.light_seconds += seconds_since(light_start);
    }

    // Req = {(w, tent(v) + c(v,w)) : v in S, (v,w) heavy}; relax each.
    auto heavy_start = Clock::now();
    requests.clear();
    for (Index v : settled) {
      for (Index k = split.heavy_ptr[v]; k < split.heavy_ptr[v + 1]; ++k) {
        requests.emplace_back(split.heavy_ind[k],
                              tent[v] + split.heavy_val[k]);
      }
    }
    stats.relax_requests += requests.size();
    for (const auto& [w, x] : requests) relax(w, x);
    if (exec.profile) stats.heavy_seconds += seconds_since(heavy_start);

    ++i;
    status = poll_control(exec.control);
  }

  SsspResult result;
  result.dist = std::move(tent);
  result.stats = stats;
  result.status = status;
  return result;
}

SsspResult delta_stepping_buckets(const grb::Matrix<double>& a, Index source,
                                  const DeltaSteppingOptions& options) {
  check_sssp_inputs(a, source);
  check_delta(options.delta);

  // One-shot plan; the timer brackets only the split materialization (the
  // plan's validation scan replaces the old untimed weight check), so
  // stats.setup_seconds keeps its historical meaning.
  GraphPlan plan = GraphPlan::borrow(a, options.delta);
  const auto setup_start = Clock::now();
  plan.light_heavy();
  const double setup_seconds = seconds_since(setup_start);

  ExecOptions exec;
  exec.profile = options.profile;
  SsspResult result =
      delta_stepping_buckets(plan, grb::default_context(), source, exec);
  result.stats.setup_seconds = setup_seconds;
  return result;
}

}  // namespace dsg
