// validate.hpp — SSSP solution checkers used by the tests, the benchmark
// harness (every timed run is validated once), and the examples.
#pragma once

#include <string>
#include <vector>

#include "graphblas/matrix.hpp"
#include "sssp/common.hpp"

namespace dsg {

struct ValidationReport {
  bool ok = true;
  std::string message;  // first violation found, empty when ok
};

/// Full structural validation of a distance vector against the graph:
///  - dist[source] == 0;
///  - no edge is over-relaxed: dist[v] <= dist[u] + w(u,v) for every edge;
///  - every finite dist[v], v != source, has a tight predecessor
///    (dist[u] + w(u,v) == dist[v] for some in-edge);
///  - vertices unreachable in the structure have dist == +inf *exactly*
///    (the library-wide SsspResult convention); NaN entries are rejected
///    outright, reachable vertices must be finite.
ValidationReport validate_sssp(const grb::Matrix<double>& a, Index source,
                               const std::vector<double>& dist,
                               double tolerance = 1e-9);

/// Element-wise comparison of two distance vectors (inf == inf allowed).
ValidationReport compare_distances(const std::vector<double>& expected,
                                   const std::vector<double>& actual,
                                   double tolerance = 1e-9);

}  // namespace dsg
