#include "sssp/delta_stepping_graphblas.hpp"

#include <chrono>

#include "graphblas/graphblas.hpp"
#include "testing/fault_injection.hpp"

namespace dsg {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The Fig. 2 loop (lines 8 and 23-69) against prebuilt A_L / A_H.
/// Shared by the plan-based core (plan-owned matrices) and the legacy
/// entry (per-call double-apply setup, the idiom Fig. 3 measures).
SsspResult run_graphblas_loop(const grb::Matrix<double>& al,
                              const grb::Matrix<double>& ah, Index n,
                              double delta, grb::Context& ctx, Index source,
                              bool profile, const QueryControl* control) {
  SsspStats stats;  // setup_seconds filled in by the caller (0 when planned)
  const auto minplus = grb::min_plus_semiring<double>();

  // t[src] = 0                                           (Fig. 2, line 8)
  grb::Vector<double> t(n);
  t.set_element(source, 0.0);

  // Work vectors, kept allocated across iterations like the C listing.
  // Storage representations are managed by the Context density policy: t
  // and the boolean filters go dense once half the graph is reached (O(1)
  // mask probes, positional kernels, in-place min-relaxation), while the
  // bucket frontiers and request vectors stay sparse.
  grb::Vector<bool> tgeq(n);     // t .>= i*delta (boolean, incl. false)
  grb::Vector<double> tcomp(n);  // t where tgeq true
  grb::Vector<bool> tb(n);       // bucket membership filter tB_i
  grb::Vector<double> tmasked(n);
  grb::Vector<double> treq(n);
  grb::Vector<bool> tless(n);  // (tReq .< t)
  grb::Vector<bool> s(n);      // processed-vertex set S

  Index i = 0;

  // Outer loop: while (t .>= i*delta) != 0        (Fig. 2, lines 26-30)
  grb::apply(ctx, tgeq, grb::NoMask{}, grb::NoAccumulate{},
             grb::GreaterEqualThreshold<double>{0.0}, t);
  grb::apply(ctx, tcomp, tgeq, grb::NoAccumulate{}, grb::Identity<double>{}, t,
             grb::replace_desc);
  // Lifecycle: poll before the loop and per bucket.  t is min-only
  // (Min eWiseAdd), so any cut of it is a valid upper bound.
  SsspStatus status = poll_control(control);
  while (status == SsspStatus::kComplete && tcomp.nvals() > 0) {
    testing::fault_point("graphblas/round");
    ++stats.outer_iterations;
    const double lo = static_cast<double>(i) * delta;
    const double hi = lo + delta;

    // s = 0                                         (Fig. 2, line 32)
    s.clear();

    auto vec_start = Clock::now();
    // tBi = (i*delta .<= t .< (i+1)*delta)          (Fig. 2, line 35)
    grb::apply(ctx, tb, grb::NoMask{}, grb::NoAccumulate{},
               grb::HalfOpenRangePredicate<double>{lo, hi}, t,
               grb::replace_desc);
    // t .* tBi                                      (Fig. 2, line 37)
    grb::apply(ctx, tmasked, tb, grb::NoAccumulate{}, grb::Identity<double>{},
               t, grb::replace_desc);
    if (profile) stats.vector_seconds += seconds_since(vec_start);

    // Inner loop: while tBi != 0                    (Fig. 2, lines 39-57)
    while (tmasked.nvals() > 0) {
      ++stats.light_phases;
      stats.relax_requests += tmasked.nvals();

      // tReq = A_L' (min.+) (t .* tBi)              (Fig. 2, line 43)
      auto light_start = Clock::now();
      grb::vxm(ctx, treq, grb::NoMask{}, grb::NoAccumulate{}, minplus,
               tmasked, al, grb::replace_desc);
      if (profile) stats.light_seconds += seconds_since(light_start);

      vec_start = Clock::now();
      // s = s + tBi                                 (Fig. 2, line 45)
      grb::ewise_add(ctx, s, grb::NoMask{}, grb::NoAccumulate{},
                     grb::LogicalOr<bool>{}, s, tb);

      // tBi = (i*delta .<= tReq .< (i+1)*delta) .* (tReq .< t)
      // The (tReq < t) comparison is computed by eWiseAdd under the tReq
      // mask — the Sec. V-B workaround for union pass-through with a
      // non-commutative operator.                   (Fig. 2, lines 48-49)
      grb::ewise_add(ctx, tless, treq, grb::NoAccumulate{},
                     grb::LessThan<double>{}, treq, t, grb::replace_desc);
      grb::apply(ctx, tb, tless, grb::NoAccumulate{},
                 grb::HalfOpenRangePredicate<double>{lo, hi}, treq,
                 grb::replace_desc);

      // t = min(t, tReq)                            (Fig. 2, line 52)
      grb::ewise_add(ctx, t, grb::NoMask{}, grb::NoAccumulate{},
                     grb::Min<double>{}, t, treq);

      // tmasked = t .* tBi                          (Fig. 2, line 54)
      grb::apply(ctx, tmasked, tb, grb::NoAccumulate{}, grb::Identity<double>{},
                 t, grb::replace_desc);
      if (profile) stats.vector_seconds += seconds_since(vec_start);
    }

    // Heavy relaxation for all vertices processed in this bucket:
    // tReq = A_H' (min.+) (t .* s)                  (Fig. 2, lines 58-63)
    auto heavy_start = Clock::now();
    grb::apply(ctx, tmasked, s, grb::NoAccumulate{}, grb::Identity<double>{},
               t, grb::replace_desc);
    grb::vxm(ctx, treq, grb::NoMask{}, grb::NoAccumulate{}, minplus, tmasked,
             ah, grb::replace_desc);
    grb::ewise_add(ctx, t, grb::NoMask{}, grb::NoAccumulate{},
                   grb::Min<double>{}, t, treq);
    if (profile) stats.heavy_seconds += seconds_since(heavy_start);

    // i = i + 1; recompute the outer condition      (Fig. 2, lines 66-69)
    ++i;
    vec_start = Clock::now();
    grb::apply(ctx, tgeq, grb::NoMask{}, grb::NoAccumulate{},
               grb::GreaterEqualThreshold<double>{static_cast<double>(i) *
                                                  delta},
               t, grb::replace_desc);
    grb::apply(ctx, tcomp, tgeq, grb::NoAccumulate{}, grb::Identity<double>{},
               t, grb::replace_desc);
    if (profile) stats.vector_seconds += seconds_since(vec_start);
    status = poll_control(control);
  }

  SsspResult result;
  result.dist = t.to_dense_array(kInfDist);
  // Stored-but-unreached cannot happen: t only ever receives finite values.
  result.stats = stats;
  result.status = status;
  return result;
}

}  // namespace

SsspResult delta_stepping_graphblas(const GraphPlan& plan, grb::Context& ctx,
                                    Index source, const ExecOptions& exec) {
  const Index n = plan.num_vertices();
  grb::detail::check_index(source, n, "sssp: source");
  // A_L / A_H prebuilt by the plan — paid once per graph, not per query.
  // stats.setup_seconds stays 0.
  return run_graphblas_loop(plan.light_matrix(), plan.heavy_matrix(), n,
                            plan.delta(), ctx, source, exec.profile,
                            exec.control);
}

SsspResult delta_stepping_graphblas(const grb::Matrix<double>& a, Index source,
                                    const DeltaSteppingOptions& options) {
  check_sssp_inputs(a, source);
  check_nonnegative_weights(a);
  check_delta(options.delta);

  const Index n = a.nrows();
  const double delta = options.delta;
  grb::Context& ctx = grb::default_context();

  // Per-call A_L / A_H construction through GraphBLAS operations, exactly
  // as the paper writes it and as Fig. 3 measures it: two GrB_apply calls
  // per matrix — predicate -> boolean matrix, then identity under that
  // matrix as a value mask (Fig. 2, lines 15-21).  Plan-holding callers
  // (SsspSolver) skip this entirely.
  const auto setup_start = Clock::now();
  grb::Matrix<bool> ab(n, n);
  grb::Matrix<double> al(n, n);
  grb::Matrix<double> ah(n, n);
  grb::apply(ab, grb::NoMask{}, grb::NoAccumulate{},
             grb::LightEdgePredicate<double>{delta}, a);
  grb::apply(al, ab, grb::NoAccumulate{}, grb::Identity<double>{}, a);
  grb::apply(ab, grb::NoMask{}, grb::NoAccumulate{},
             grb::GreaterThanThreshold<double>{delta}, a, grb::replace_desc);
  grb::apply(ah, ab, grb::NoAccumulate{}, grb::Identity<double>{}, a);
  const double setup_seconds = seconds_since(setup_start);

  SsspResult result = run_graphblas_loop(al, ah, n, delta, ctx, source,
                                         options.profile, nullptr);
  result.stats.setup_seconds = setup_seconds;
  return result;
}

}  // namespace dsg
