// delta_stepping_graphblas_select lives in its own translation unit so
// the compiler's per-function inlining budget applies to each variant
// independently (both fully inline the grb:: kernel templates).
#include "sssp/delta_stepping_graphblas.hpp"

#include <chrono>

#include "graphblas/graphblas.hpp"
#include "testing/fault_injection.hpp"

namespace dsg {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The select-variant loop against prebuilt A_L / A_H.  Shared by the
/// plan-based core (plan-owned matrices) and the legacy entry (per-call
/// fused-select setup, the ABL-OPS idiom).
SsspResult run_select_loop(const grb::Matrix<double>& al,
                           const grb::Matrix<double>& ah, Index n,
                           double delta, grb::Context& ctx, Index source,
                           bool profile, const QueryControl* control) {
  SsspStats stats;  // setup_seconds filled in by the caller (0 when planned)
  const auto minplus = grb::min_plus_semiring<double>();

  grb::Vector<double> t(n);
  t.set_element(source, 0.0);

  grb::Vector<double> tcomp(n);
  grb::Vector<double> tbv(n);  // bucket members carrying their t values
  grb::Vector<double> treq(n);
  grb::Vector<double> tnew(n);
  grb::Vector<double> tmasked(n);  // heavy-phase frontier, reused per bucket
  grb::Vector<bool> s(n);

  Index i = 0;
  grb::select(ctx, tcomp, grb::GreaterEqualThreshold<double>{0.0}, t);
  // Lifecycle: poll before the loop and per bucket; t is min-only, so any
  // cut is a valid upper bound.
  SsspStatus status = poll_control(control);
  while (status == SsspStatus::kComplete && tcomp.nvals() > 0) {
    testing::fault_point("graphblas_select/round");
    ++stats.outer_iterations;
    const double lo = static_cast<double>(i) * delta;
    const double hi = lo + delta;
    s.clear();

    // tbv = t restricted to the bucket, one pass.
    grb::select(ctx, tbv, grb::HalfOpenRangePredicate<double>{lo, hi}, t,
                grb::replace_desc);
    while (tbv.nvals() > 0) {
      ++stats.light_phases;
      stats.relax_requests += tbv.nvals();

      auto light_start = Clock::now();
      grb::vxm(ctx, treq, grb::NoMask{}, grb::NoAccumulate{}, minplus, tbv,
               al, grb::replace_desc);
      if (profile) stats.light_seconds += seconds_since(light_start);

      // S |= bucket members (structural mask of tbv).
      grb::assign_scalar(s, tbv, true, grb::structure_mask_desc);

      // Improved-and-in-bucket: tnew = treq entries that beat t...
      grb::ewise_add(ctx, tnew, treq, grb::NoAccumulate{},
                     grb::LessThan<double>{}, treq, t, grb::replace_desc);
      // ...keep treq values where the comparison was true,
      grb::apply(ctx, tnew, tnew, grb::NoAccumulate{}, grb::Identity<double>{},
                 treq, grb::replace_desc);
      // t = min(t, treq)
      grb::ewise_add(ctx, t, grb::NoMask{}, grb::NoAccumulate{},
                     grb::Min<double>{}, t, treq);
      // next bucket frontier: improved entries that fall in [lo, hi)
      grb::select(ctx, tbv, grb::HalfOpenRangePredicate<double>{lo, hi}, tnew,
                  grb::replace_desc);
    }

    auto heavy_start = Clock::now();
    grb::apply(ctx, tmasked, s, grb::NoAccumulate{}, grb::Identity<double>{},
               t, grb::replace_desc);
    grb::vxm(ctx, treq, grb::NoMask{}, grb::NoAccumulate{}, minplus, tmasked,
             ah, grb::replace_desc);
    grb::ewise_add(ctx, t, grb::NoMask{}, grb::NoAccumulate{},
                   grb::Min<double>{}, t, treq);
    if (profile) stats.heavy_seconds += seconds_since(heavy_start);

    ++i;
    grb::select(ctx, tcomp,
                grb::GreaterEqualThreshold<double>{static_cast<double>(i) *
                                                   delta},
                t, grb::replace_desc);
    status = poll_control(control);
  }

  SsspResult result;
  result.dist = t.to_dense_array(kInfDist);
  result.stats = stats;
  result.status = status;
  return result;
}

}  // namespace

SsspResult delta_stepping_graphblas_select(const GraphPlan& plan,
                                           grb::Context& ctx, Index source,
                                           const ExecOptions& exec) {
  const Index n = plan.num_vertices();
  grb::detail::check_index(source, n, "sssp: source");
  // A_L / A_H prebuilt by the plan; stats.setup_seconds stays 0.
  return run_select_loop(plan.light_matrix(), plan.heavy_matrix(), n,
                         plan.delta(), ctx, source, exec.profile,
                         exec.control);
}

SsspResult delta_stepping_graphblas_select(
    const grb::Matrix<double>& a, Index source,
    const DeltaSteppingOptions& options) {
  check_sssp_inputs(a, source);
  check_nonnegative_weights(a);
  check_delta(options.delta);

  const Index n = a.nrows();
  const double delta = options.delta;
  grb::Context& ctx = grb::default_context();

  // Per-call setup with one fused grb::select per filter instead of the
  // double-apply idiom — the ABL-OPS comparison point.  Plan-holding
  // callers (SsspSolver) skip this entirely.
  const auto setup_start = Clock::now();
  grb::Matrix<double> al(n, n);
  grb::Matrix<double> ah(n, n);
  grb::select(al, grb::LightEdgePredicate<double>{delta}, a);
  grb::select(ah, grb::GreaterThanThreshold<double>{delta}, a);
  const double setup_seconds = seconds_since(setup_start);

  SsspResult result =
      run_select_loop(al, ah, n, delta, ctx, source, options.profile, nullptr);
  result.stats.setup_seconds = setup_seconds;
  return result;
}

}  // namespace dsg
