// async_stepping.hpp — the lock-free asynchronous relaxation engines:
// rho-stepping and asynchronous delta-stepping.
//
// Both variants share one engine (async_stepping.cpp) built on
// std::thread + std::atomic + std::barrier — deliberately *not* OpenMP,
// so ThreadSanitizer can verify the synchronization (libgomp's runtime
// carries no TSan annotations and reports false positives on correct
// OpenMP code; see the tsan job in .github/workflows/ci.yml).  The
// engine runs in coarse rounds:
//
//   - distances live in std::atomic<double>, relaxed via the write_min
//     CAS primitive (see write_min.hpp for the memory-ordering contract);
//   - each improvement lands in a per-thread local queue of 128 entries,
//     processed eagerly within the round; overflow and out-of-window
//     vertices spill into a shared concurrent bag (a flag array + an
//     atomic-cursor append list, deduplicated by flag exchange);
//   - the frontier is traversed sparse (work-stealing over the bag's
//     list) or dense (flag sweep), switched per round by a sampled
//     frontier-size estimate — the same deterministic strided-sampling
//     idiom as grb::Context::dense_output_crossover;
//   - a per-round threshold theta bounds which distances are relaxed now
//     versus deferred: delta_stepping_async uses the next bucket boundary
//     (floor(min/delta)+1)*delta, rho_stepping processes everything when
//     the frontier is at most rho vertices and otherwise the sampled
//     rho-quantile of frontier distances (the PASGAL heuristic).
//
// Determinism contract: the *schedule* (rounds, relaxation order, stats)
// varies run to run, but the returned distances are bit-identical across
// thread counts and schedules — quiescence is the unique fp min-plus
// fixed point (write_min.hpp documents the argument).  The registry
// flags these variants deterministic = false because their SsspStats are
// schedule-dependent; SsspResult.dist is not.
//
// The per-phase timers (light/heavy/vector_seconds) stay 0: the fused
// relaxation has no phase structure to attribute time to.
// stats.outer_iterations counts rounds and stats.relax_requests counts
// vertices relaxed (frontier members plus local-queue hits), matching
// the vertex-granular accounting of the deterministic engines.
#pragma once

#include "sssp/common.hpp"
#include "sssp/plan.hpp"

namespace grb {
class Context;
}

namespace dsg {

/// Options for the legacy one-shot entry points.  The plan-based entry
/// points take the same knobs through ExecOptions (num_threads, rho) and
/// GraphPlan (delta).
struct AsyncSteppingOptions {
  /// Bucket width for delta_stepping_async (> 0); ignored by
  /// rho_stepping.
  double delta = 1.0;
  /// rho_stepping batch-size target: frontiers at most this large are
  /// fully processed in one round.  0 selects max(64, n/8) from the
  /// graph.  Ignored by delta_stepping_async.
  Index rho = 0;
  /// Worker threads; 0 = std::thread::hardware_concurrency().  1 runs the
  /// same engine inline without spawning.
  int num_threads = 0;
  /// Accepted for signature symmetry; the async engine keeps the
  /// per-phase timers at 0 (see the header comment).
  bool profile = false;
};

/// PASGAL-style rho-stepping (plan-based core).  Uses ExecOptions::rho
/// (0 = auto) and ExecOptions::num_threads; the plan's delta is unused.
SsspResult rho_stepping(const GraphPlan& plan, grb::Context& ctx,
                        Index source, const ExecOptions& exec);

/// Asynchronous delta-stepping (plan-based core).  Buckets by the plan's
/// delta but relaxes each bucket lock-free instead of in two-pass
/// deterministic phases.
SsspResult delta_stepping_async(const GraphPlan& plan, grb::Context& ctx,
                                Index source, const ExecOptions& exec);

/// Legacy one-shot entry points (validate, borrow a plan, run once).
SsspResult rho_stepping(const grb::Matrix<double>& a, Index source,
                        const AsyncSteppingOptions& options = {});
SsspResult delta_stepping_async(const grb::Matrix<double>& a, Index source,
                                const AsyncSteppingOptions& options = {});

}  // namespace dsg
