// write_min.hpp — the lock-free relaxation primitive of the asynchronous
// SSSP engines (rho-stepping / async delta-stepping).
//
// Memory-ordering contract
// ------------------------
// Every access in write_min is std::memory_order_relaxed, and that is
// sufficient — documented per access below — because a distance slot is a
// *monotone-decreasing* scalar whose value is the entire message:
//
//   - load(relaxed): a stale (too-high) read only makes the caller attempt
//     a CAS that either fails (another thread already published something
//     lower — the relaxation was redundant) or succeeds with a value that
//     is still an upper bound on the true distance.  No decision other
//     than "is my candidate smaller" is taken from the read, so no
//     acquire fence is needed: there is no dependent data behind the
//     value.
//   - compare_exchange_weak(relaxed, relaxed): the success ordering needs
//     no release because the stored double carries no payload besides
//     itself; the failure ordering needs no acquire for the same reason
//     the initial load does not.  Spurious failures just re-enter the
//     loop with the freshly observed value.
//
// Cross-round visibility is *not* write_min's job: the engine's round
// barrier (std::barrier arrive_and_wait, a release/acquire point) orders
// every relaxed store of round r before every read of round r+1, and the
// final distances are read only after the worker threads have been
// joined.  Within a round, a thread that observes a stale distance merely
// performs a weaker relaxation — and the thread that made the improvement
// re-enqueues the vertex, so the final-value relaxation is never lost.
//
// The loop exits without writing when the candidate is not an
// improvement, so quiescence (no write_min succeeds anywhere) is exactly
// the min-plus fixed point: dist[v] <= dist[u] + w(u,v) for every edge.
// Since IEEE addition is monotone and every stored value is a
// left-to-right fp path sum, that fixed point is unique — which is why
// the async engines are *value*-deterministic (bit-identical distances
// for any schedule or thread count) even though their schedules are not.
#pragma once

#include <atomic>

namespace dsg::async {

/// Atomically lowers `slot` to `value` if (and only if) `value` is
/// strictly smaller.  Returns true when this call improved the slot.
/// Lock-free on every platform where std::atomic<double> is (x86-64,
/// aarch64: plain 64-bit CAS).
inline bool write_min(std::atomic<double>& slot, double value) {
  double current = slot.load(std::memory_order_relaxed);
  while (value < current) {
    if (slot.compare_exchange_weak(current, value, std::memory_order_relaxed,
                                   std::memory_order_relaxed)) {
      return true;
    }
    // CAS failure reloaded `current`; loop re-tests value < current.
  }
  return false;
}

}  // namespace dsg::async
