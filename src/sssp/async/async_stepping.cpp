// async_stepping.cpp — the shared lock-free engine behind rho_stepping and
// delta_stepping_async.  See async_stepping.hpp for the execution model and
// write_min.hpp for the memory-ordering contract.
//
// Threading layout: one std::barrier with two arrive_and_wait points per
// round.  Workers relax between the round start and the first barrier;
// thread 0 then runs the round bookkeeping (termination test, sparse/dense
// mode decision, theta computation, buffer swap) alone between the two
// barriers while the other workers are parked inside the second wait — so
// the bookkeeping mutates plain (non-atomic) shared state without races,
// and the barrier's release/acquire edge publishes it to everyone.
#include "sssp/async/async_stepping.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <barrier>
#include <cmath>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "graphblas/context.hpp"
#include "sssp/async/write_min.hpp"
#include "testing/fault_injection.hpp"

namespace dsg {

namespace {

/// Per-thread eager queue depth (the PASGAL local-queue idiom): freshly
/// improved vertices are relaxed in-round, skipping a frontier round trip.
constexpr int kLocalQueueSize = 128;
/// Strided-sampling budget for frontier-size and rho-quantile estimation.
constexpr Index kSampleTarget = 1024;
/// Work-stealing grab sizes: list entries per claim (sparse rounds) and
/// vertex-range width per claim (dense sweeps).
constexpr Index kGrabSparse = 256;
constexpr Index kGrabDense = 2048;
/// Frontier density (estimated) at which the next round switches from the
/// sparse list traversal to the dense flag sweep.
constexpr Index kDenseFractionDivisor = 16;

/// O(n) engine state parked in the executing grb::Context so repeated
/// solves (benchmark reps, batches) reuse capacity.  Invariant between
/// solves: both flag arrays are all-zero — every round clears the flags it
/// consumes, and a solve only terminates once the frontier is empty.
struct AsyncWorkspace {
  Index n = 0;
  std::unique_ptr<std::atomic<double>[]> dist;
  std::unique_ptr<std::atomic<unsigned char>[]> flags0, flags1;
  std::vector<Index> list0, list1;
  std::vector<double> samples;  // theta-quantile scratch (coordinator only)

  void ensure(Index n_now) {
    if (n == n_now && dist) return;
    n = n_now;
    dist = std::make_unique<std::atomic<double>[]>(n_now);
    // Value-initialized: all-zero, satisfying the between-solves invariant.
    flags0 = std::make_unique<std::atomic<unsigned char>[]>(n_now);
    flags1 = std::make_unique<std::atomic<unsigned char>[]>(n_now);
    list0.assign(n_now, 0);
    list1.assign(n_now, 0);
  }
};

enum class Mode { kSparse, kDense };

/// Thread-local round state: the eager queue plus counters merged into the
/// shared accumulators at the end of every round.
struct Local {
  std::array<Index, kLocalQueueSize> queue;
  int qsize = 0;
  std::uint64_t processed = 0;
  double next_min = kInfDist;
};

struct Engine {
  // Immutable CSR view + policy, set once before any thread starts.
  std::span<const Index> row_ptr, col_ind;
  std::span<const double> val;
  Index n = 0;
  bool use_delta = false;  ///< true: delta_stepping_async; false: rho
  double delta = 1.0;
  Index rho = 0;

  // Shared concurrent state (atomics: touched by all workers in-round).
  std::atomic<double>* dist = nullptr;
  std::atomic<unsigned char>* cur_flags = nullptr;
  std::atomic<unsigned char>* nxt_flags = nullptr;
  Index* cur_list = nullptr;
  Index* nxt_list = nullptr;
  std::atomic<Index> nxt_cursor{0};     ///< sparse bag append position
  std::atomic<unsigned char> nxt_nonempty{0};  ///< dense-mode liveness latch
  std::atomic<double> nxt_min{kInfDist};       ///< min candidate seen for next
  std::atomic<Index> work_cursor{0};    ///< work-stealing claim position
  std::atomic<std::uint64_t> processed_round{0};

  // Round configuration: written only by thread 0 between the two round
  // barriers (all other workers are parked in the second wait), read by
  // everyone after it — the barrier edge orders the plain accesses.
  Mode traverse_mode = Mode::kSparse;
  Mode insert_mode = Mode::kSparse;
  Index cur_size = 0;  ///< exact in sparse rounds, estimated in dense ones
  double theta = kInfDist;
  bool theta_inclusive = false;  ///< rho: process <= theta; delta: < theta
  bool done = false;

  AsyncWorkspace* ws = nullptr;
  SsspStats stats;  // coordinator-owned

  // --- lifecycle + failure containment ------------------------------------
  // The control is polled only by the coordinator (between the barriers),
  // which turns expiry/cancel into `done` — the same plain flag every
  // worker already observes at the round edge, so cancellation needs no
  // extra synchronization.  A worker that throws records the exception
  // here (first one wins), keeps the barrier protocol so nobody deadlocks,
  // and the coordinator shuts the engine down at the next round edge; the
  // error is rethrown on the coordinating caller after the join.
  const QueryControl* control = nullptr;
  SsspStatus status = SsspStatus::kComplete;  // coordinator-owned
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::exception_ptr error;  // guarded by error_mu until the join

  void record_failure() {
    {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!error) error = std::current_exception();
    }
    failed.store(true, std::memory_order_release);
  }

  // --- shared concurrent bag ----------------------------------------------

  /// Publishes v (at candidate distance dv) into the next frontier.  The
  /// flag array both deduplicates the sparse append list and *is* the
  /// frontier in dense rounds.
  void insert_next(Index v, double dv, Local& loc) {
    loc.next_min = std::min(loc.next_min, dv);
    if (insert_mode == Mode::kSparse) {
      if (nxt_flags[v].exchange(1, std::memory_order_relaxed) == 0) {
        nxt_list[nxt_cursor.fetch_add(1, std::memory_order_relaxed)] = v;
      }
    } else {
      // Dense rounds skip the list: the flag is idempotent, so a plain
      // test-and-set (no RMW) avoids cursor contention on huge frontiers.
      if (nxt_flags[v].load(std::memory_order_relaxed) == 0) {
        nxt_flags[v].store(1, std::memory_order_relaxed);
      }
      if (nxt_nonempty.load(std::memory_order_relaxed) == 0) {
        nxt_nonempty.store(1, std::memory_order_relaxed);
      }
    }
  }

  // --- relaxation core ----------------------------------------------------

  /// Relaxes u if its distance falls inside this round's theta window,
  /// else defers it to the next frontier.  Every successful write_min
  /// re-enqueues its target (locally when there is room, otherwise into
  /// the shared bag), which is the invariant that makes quiescence the
  /// min-plus fixed point: no improvement is ever dropped.
  void handle(Index u, Local& loc) {
    const double du = dist[u].load(std::memory_order_relaxed);
    const bool in_window = theta_inclusive ? du <= theta : du < theta;
    if (!in_window) {
      insert_next(u, du, loc);
      return;
    }
    ++loc.processed;
    const Index hi = row_ptr[u + 1];
    for (Index k = row_ptr[u]; k < hi; ++k) {
      const Index v = col_ind[k];
      const double cand = du + val[k];
      if (async::write_min(dist[v], cand)) {
        if (loc.qsize < kLocalQueueSize) {
          loc.queue[static_cast<std::size_t>(loc.qsize++)] = v;
        } else {
          insert_next(v, cand, loc);
        }
      }
    }
  }

  void drain(Local& loc) {
    while (loc.qsize > 0) handle(loc.queue[static_cast<std::size_t>(--loc.qsize)], loc);
  }

  /// One worker's share of a round: claim frontier blocks through the
  /// work cursor until the frontier is exhausted, then merge the local
  /// counters into the shared round accumulators.
  void run_round(Local& loc) {
    testing::fault_point("async/round");
    if (traverse_mode == Mode::kSparse) {
      for (;;) {
        const Index start =
            work_cursor.fetch_add(kGrabSparse, std::memory_order_relaxed);
        if (start >= cur_size) break;
        const Index end = std::min(cur_size, start + kGrabSparse);
        for (Index i = start; i < end; ++i) {
          const Index u = cur_list[i];
          // Clear as we consume: the array must be all-zero by round end
          // so the swap can reuse it as the next-frontier flags.
          cur_flags[u].store(0, std::memory_order_relaxed);
          handle(u, loc);
          drain(loc);
        }
      }
    } else {
      for (;;) {
        const Index start =
            work_cursor.fetch_add(kGrabDense, std::memory_order_relaxed);
        if (start >= n) break;
        const Index end = std::min(n, start + kGrabDense);
        for (Index u = start; u < end; ++u) {
          if (cur_flags[u].load(std::memory_order_relaxed) != 0) {
            cur_flags[u].store(0, std::memory_order_relaxed);
            handle(u, loc);
            drain(loc);
          }
        }
      }
    }
    processed_round.fetch_add(loc.processed, std::memory_order_relaxed);
    loc.processed = 0;
    if (loc.next_min < kInfDist) {
      async::write_min(nxt_min, loc.next_min);
      loc.next_min = kInfDist;
    }
  }

  // --- round bookkeeping (thread 0 only, between the round barriers) ------

  Index dense_threshold() const {
    return std::max<Index>(Index{1}, n / kDenseFractionDivisor);
  }

  /// Sampled frontier-size estimate over the dense flag array: the same
  /// deterministic strided-probe idiom as Context::dense_output_crossover
  /// (no RNG, fixed stride), scaled back to the full domain.
  Index estimate_dense_size() const {
    const Index stride = std::max<Index>(Index{1}, n / kSampleTarget);
    Index probes = 0, hits = 0;
    for (Index v = 0; v < n; v += stride) {
      ++probes;
      hits += nxt_flags[v].load(std::memory_order_relaxed) != 0 ? 1u : 0u;
    }
    return static_cast<Index>(static_cast<double>(hits) /
                              static_cast<double>(probes) *
                              static_cast<double>(n));
  }

  /// Dense -> sparse transition: materialize the flag array as a list.
  /// Serial (coordinator-only) O(n); transitions are rare — a frontier
  /// shrinking back through the density threshold near the end of a solve.
  Index pack_dense_to_list() {
    Index count = 0;
    for (Index v = 0; v < n; ++v) {
      if (nxt_flags[v].load(std::memory_order_relaxed) != 0) {
        nxt_list[count++] = v;
      }
    }
    return count;
  }

  /// theta for the upcoming round, computed against the *current* (just
  /// swapped-in) frontier.  frontier_min is the smallest candidate
  /// recorded while the frontier was filled — an upper bound on the true
  /// minimum (in-round improvements can undercut their recorded value),
  /// which only coarsens the window: theta stays strictly above the true
  /// minimum, so the minimum vertex is always processed and settles.
  double compute_theta(double frontier_min) {
    if (use_delta) {
      return (std::floor(frontier_min / delta) + 1.0) * delta;
    }
    if (cur_size <= rho) return kInfDist;
    // rho-quantile of sampled frontier distances (PASGAL's heuristic):
    // process roughly the rho closest vertices this round.
    auto& buf = ws->samples;
    buf.clear();
    if (traverse_mode == Mode::kSparse) {
      const Index stride = std::max<Index>(Index{1}, cur_size / kSampleTarget);
      for (Index i = 0; i < cur_size; i += stride) {
        buf.push_back(dist[cur_list[i]].load(std::memory_order_relaxed));
      }
    } else {
      const Index stride = std::max<Index>(Index{1}, n / kSampleTarget);
      for (Index v = 0; v < n; v += stride) {
        if (cur_flags[v].load(std::memory_order_relaxed) != 0) {
          buf.push_back(dist[v].load(std::memory_order_relaxed));
        }
      }
    }
    if (buf.empty()) return kInfDist;
    std::size_t k = static_cast<std::size_t>(
        static_cast<double>(rho) / static_cast<double>(cur_size) *
        static_cast<double>(buf.size()));
    if (k >= buf.size()) k = buf.size() - 1;
    std::nth_element(buf.begin(),
                     buf.begin() + static_cast<std::ptrdiff_t>(k), buf.end());
    // The quantile is a frontier member's distance, hence >= the true
    // minimum; the inclusive window (<= theta) then guarantees progress.
    return buf[k];
  }

  void coordinate() {
    // A recorded worker failure ends the solve at this round edge; the
    // acquire pairs with record_failure's release so the error_ptr write
    // is visible to the post-join rethrow.
    if (failed.load(std::memory_order_acquire)) {
      done = true;
      return;
    }
    testing::fault_point("async/coordinate");
    if (status == SsspStatus::kComplete) status = poll_control(control);
    if (status != SsspStatus::kComplete) {
      // Stop cooperatively: dist holds write_min upper bounds at any cut.
      done = true;
      return;
    }
    ++stats.outer_iterations;
    const std::uint64_t processed =
        processed_round.load(std::memory_order_relaxed);
    stats.relax_requests += processed;

    Index next_size = 0;
    bool empty = false;
    if (insert_mode == Mode::kSparse) {
      next_size = nxt_cursor.load(std::memory_order_relaxed);
      empty = next_size == 0;
    } else {
      empty = nxt_nonempty.load(std::memory_order_relaxed) == 0;
      next_size = empty ? Index{0} : estimate_dense_size();
    }
    if (empty) {
      done = true;
      return;
    }

    Mode next_mode =
        next_size >= dense_threshold() ? Mode::kDense : Mode::kSparse;
    if (insert_mode == Mode::kDense && next_mode == Mode::kSparse) {
      next_size = pack_dense_to_list();
    }
    const double frontier_min = nxt_min.load(std::memory_order_relaxed);

    std::swap(cur_flags, nxt_flags);
    std::swap(cur_list, nxt_list);
    cur_size = next_size;
    traverse_mode = insert_mode = next_mode;
    nxt_cursor.store(0, std::memory_order_relaxed);
    nxt_nonempty.store(0, std::memory_order_relaxed);
    nxt_min.store(kInfDist, std::memory_order_relaxed);
    work_cursor.store(0, std::memory_order_relaxed);
    processed_round.store(0, std::memory_order_relaxed);

    // Safety net: a round that processed nothing (cannot happen — theta
    // always admits the frontier minimum — but cheap to guard) flushes
    // everything next round rather than spinning.
    theta = processed == 0 ? kInfDist : compute_theta(frontier_min);
  }

  void worker(std::barrier<>& bar, int tid) {
    Local loc;
    for (;;) {
      try {
        run_round(loc);
      } catch (...) {
        // Record and keep going to the barrier: peers may still be inside
        // run_round, and abandoning the protocol would deadlock them.  The
        // local round state is reset so nothing half-drained carries over.
        record_failure();
        loc.qsize = 0;
        loc.processed = 0;
        loc.next_min = kInfDist;
      }
      bar.arrive_and_wait();  // all relaxation for this round is done
      if (tid == 0) {
        try {
          coordinate();
        } catch (...) {
          record_failure();
          done = true;
        }
      }
      bar.arrive_and_wait();  // round bookkeeping published
      if (done) break;
    }
  }
};

SsspResult run_async(const GraphPlan& plan, grb::Context& ctx, Index source,
                     const ExecOptions& exec, bool use_delta) {
  const Index n = plan.num_vertices();
  grb::detail::check_index(source, n, "sssp: source");
  const grb::Matrix<double>& a = plan.matrix();

  auto& ws = ctx.get<AsyncWorkspace>();
  ws.ensure(n);

  Engine eng;
  eng.row_ptr = a.row_ptr();
  eng.col_ind = a.col_ind();
  eng.val = a.raw_values();
  eng.n = n;
  eng.use_delta = use_delta;
  eng.delta = plan.delta();
  eng.rho = exec.rho > 0 ? exec.rho : std::max<Index>(Index{64}, n / 8);
  eng.ws = &ws;

  eng.dist = ws.dist.get();
  for (Index v = 0; v < n; ++v) {
    eng.dist[v].store(kInfDist, std::memory_order_relaxed);
  }
  eng.dist[source].store(0.0, std::memory_order_relaxed);

  eng.cur_flags = ws.flags0.get();
  eng.nxt_flags = ws.flags1.get();
  eng.cur_list = ws.list0.data();
  eng.nxt_list = ws.list1.data();
  eng.cur_list[0] = source;
  eng.cur_flags[source].store(1, std::memory_order_relaxed);
  eng.cur_size = 1;
  eng.traverse_mode = eng.insert_mode = Mode::kSparse;
  eng.theta_inclusive = !use_delta;
  eng.theta = eng.compute_theta(0.0);
  eng.control = exec.control;

  int threads = exec.num_threads > 0
                    ? exec.num_threads
                    : static_cast<int>(std::thread::hardware_concurrency());
  if (threads < 1) threads = 1;

  // Pre-run poll: a deadline of 0 (or an already-cancelled control) returns
  // before any thread spawns, with the init-state upper bounds.
  eng.status = poll_control(exec.control);
  if (eng.status != SsspStatus::kComplete) {
    eng.done = true;
  } else if (threads == 1) {
    // Inline serial path: the same rounds, no barrier, no spawn.  Errors
    // are parked like the threaded path's so the workspace scrub below
    // runs before the rethrow.
    Local loc;
    try {
      while (!eng.done) {
        eng.run_round(loc);
        eng.coordinate();
      }
    } catch (...) {
      eng.record_failure();
    }
  } else {
    std::barrier<> bar(threads);
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&eng, &bar, t] { eng.worker(bar, t); });
    }
    for (auto& th : pool) th.join();  // join: publishes every final store
  }

  // An interrupted or failed run stops with frontier flags still set
  // (normal termination only happens on an empty frontier).  Scrub both
  // arrays to restore the workspace's between-solves all-zero invariant
  // before returning or rethrowing.
  if (eng.error || eng.status != SsspStatus::kComplete) {
    for (Index v = 0; v < n; ++v) {
      ws.flags0[v].store(0, std::memory_order_relaxed);
      ws.flags1[v].store(0, std::memory_order_relaxed);
    }
  }
  if (eng.error) std::rethrow_exception(eng.error);

  SsspResult result;
  result.dist.resize(n);
  for (Index v = 0; v < n; ++v) {
    result.dist[v] = eng.dist[v].load(std::memory_order_relaxed);
  }
  result.stats = eng.stats;
  result.status = eng.status;
  return result;
}

}  // namespace

SsspResult rho_stepping(const GraphPlan& plan, grb::Context& ctx, Index source,
                        const ExecOptions& exec) {
  return run_async(plan, ctx, source, exec, /*use_delta=*/false);
}

SsspResult delta_stepping_async(const GraphPlan& plan, grb::Context& ctx,
                                Index source, const ExecOptions& exec) {
  return run_async(plan, ctx, source, exec, /*use_delta=*/true);
}

SsspResult rho_stepping(const grb::Matrix<double>& a, Index source,
                        const AsyncSteppingOptions& options) {
  check_sssp_inputs(a, source);
  // The plan's validation scan rejects negative weights; its delta is
  // unused by rho-stepping, so let the heuristic pick one.
  GraphPlan plan = GraphPlan::borrow(a, kAutoDelta);
  ExecOptions exec;
  exec.profile = options.profile;
  exec.num_threads = options.num_threads;
  exec.rho = options.rho;
  return rho_stepping(plan, grb::default_context(), source, exec);
}

SsspResult delta_stepping_async(const grb::Matrix<double>& a, Index source,
                                const AsyncSteppingOptions& options) {
  check_sssp_inputs(a, source);
  check_delta(options.delta);
  GraphPlan plan = GraphPlan::borrow(a, options.delta);
  ExecOptions exec;
  exec.profile = options.profile;
  exec.num_threads = options.num_threads;
  exec.rho = options.rho;
  return delta_stepping_async(plan, grb::default_context(), source, exec);
}

}  // namespace dsg
