// delta_stepping_buckets.hpp — the canonical vertex/edge formulation of
// Meyer & Sanders' delta-stepping (paper Fig. 1, right column): explicit
// buckets of vertices, a request set per processing phase, and the relax()
// procedure that moves vertices between buckets.
//
// This is the form the paper's translation methodology *starts from*; the
// repository keeps it both as a reference point and as an independent
// correctness oracle for the linear-algebraic implementations.
#pragma once

#include "graphblas/matrix.hpp"
#include "sssp/common.hpp"

namespace dsg {

/// Canonical bucket-based delta-stepping from `source`.
SsspResult delta_stepping_buckets(const grb::Matrix<double>& a, Index source,
                                  const DeltaSteppingOptions& options = {});

}  // namespace dsg
