// delta_stepping_buckets.hpp — the canonical vertex/edge formulation of
// Meyer & Sanders' delta-stepping (paper Fig. 1, right column): explicit
// buckets of vertices, a request set per processing phase, and the relax()
// procedure that moves vertices between buckets.
//
// This is the form the paper's translation methodology *starts from*; the
// repository keeps it both as a reference point and as an independent
// correctness oracle for the linear-algebraic implementations.
#pragma once

#include "graphblas/matrix.hpp"
#include "sssp/common.hpp"
#include "sssp/plan.hpp"

namespace grb {
class Context;
}

namespace dsg {

/// Canonical bucket-based delta-stepping from `source`.  One-shot: builds
/// a throwaway plan per call; repeated-query callers should hold an
/// sssp::SsspSolver (or a GraphPlan) instead.
SsspResult delta_stepping_buckets(const grb::Matrix<double>& a, Index source,
                                  const DeltaSteppingOptions& options = {});

/// Plan-based core: executes against a prebuilt GraphPlan (weights already
/// validated, light/heavy split already materialized).
/// stats.setup_seconds is 0 here — the plan paid it once.
SsspResult delta_stepping_buckets(const GraphPlan& plan, grb::Context& ctx,
                                  Index source, const ExecOptions& exec = {});

}  // namespace dsg
