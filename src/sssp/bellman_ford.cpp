#include "sssp/bellman_ford.hpp"

#include <deque>
#include <vector>

#include "testing/fault_injection.hpp"

namespace dsg {

namespace {

/// SPFA worklist core.  The control is polled every kPollStride dequeues
/// (the loop has no round structure).  dist is relax-only, so any
/// interruption cut is a valid upper bound.
SsspResult bellman_ford_impl(const grb::Matrix<double>& a, Index source,
                             const QueryControl* control) {
  const Index n = a.nrows();
  constexpr std::uint64_t kPollStride = 1024;

  SsspResult result;
  result.dist.assign(n, kInfDist);
  result.dist[source] = 0.0;

  std::deque<Index> queue;
  std::vector<unsigned char> in_queue(n, 0);
  std::vector<Index> relax_count(n, 0);
  queue.push_back(source);
  in_queue[source] = 1;

  std::uint64_t dequeues = 0;
  SsspStatus status = poll_control(control);
  while (status == SsspStatus::kComplete && !queue.empty()) {
    if (++dequeues % kPollStride == 0) status = poll_control(control);
    testing::fault_point("bellman_ford/relax");
    const Index u = queue.front();
    queue.pop_front();
    in_queue[u] = 0;
    const double du = result.dist[u];

    auto cols = a.row_indices(u);
    auto vals = a.row_values(u);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const Index v = cols[k];
      const double cand = du + vals[k];
      ++result.stats.relax_requests;
      if (cand < result.dist[v]) {
        result.dist[v] = cand;
        if (!in_queue[v]) {
          if (++relax_count[v] >= n) {
            throw grb::InvalidValue(
                "bellman_ford: negative cycle reachable from source");
          }
          queue.push_back(v);
          in_queue[v] = 1;
        }
      }
    }
  }
  result.status = status;
  return result;
}

}  // namespace

SsspResult bellman_ford(const grb::Matrix<double>& a, Index source) {
  check_sssp_inputs(a, source);
  return bellman_ford_impl(a, source, nullptr);
}

SsspResult bellman_ford(const GraphPlan& plan, grb::Context&, Index source,
                        const ExecOptions& exec) {
  grb::detail::check_index(source, plan.num_vertices(), "sssp: source");
  return bellman_ford_impl(plan.matrix(), source, exec.control);
}

SsspResult bellman_ford_rounds(const grb::Matrix<double>& a, Index source) {
  check_sssp_inputs(a, source);
  const Index n = a.nrows();

  SsspResult result;
  result.dist.assign(n, kInfDist);
  result.dist[source] = 0.0;

  // t_{k+1}[v] = min(t_k[v], min_u t_k[u] + w(u,v)) — a full (min,+)
  // relaxation sweep per round, at most |V|-1 rounds.
  for (Index round = 0; round + 1 < n; ++round) {
    ++result.stats.outer_iterations;
    bool changed = false;
    for (Index u = 0; u < n; ++u) {
      const double du = result.dist[u];
      if (du == kInfDist) continue;
      auto cols = a.row_indices(u);
      auto vals = a.row_values(u);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        const Index v = cols[k];
        const double cand = du + vals[k];
        ++result.stats.relax_requests;
        if (cand < result.dist[v]) {
          result.dist[v] = cand;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }

  // One more sweep detects reachable negative cycles.
  for (Index u = 0; u < n; ++u) {
    const double du = result.dist[u];
    if (du == kInfDist) continue;
    auto cols = a.row_indices(u);
    auto vals = a.row_values(u);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (du + vals[k] < result.dist[cols[k]]) {
        throw grb::InvalidValue(
            "bellman_ford_rounds: negative cycle reachable from source");
      }
    }
  }
  return result;
}

}  // namespace dsg
