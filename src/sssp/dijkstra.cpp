#include "sssp/dijkstra.hpp"

#include <queue>
#include <utility>
#include <vector>

namespace dsg {

namespace {

/// (distance, vertex) min-heap entry; lazy deletion via distance check.
using HeapEntry = std::pair<double, Index>;

/// Core; inputs must be validated by the caller (the public wrappers
/// validate per call, the plan-based entry relies on the plan's one-time
/// validation).
SsspResult dijkstra_impl(const grb::Matrix<double>& a, Index source,
                         std::vector<Index>* parent) {
  const Index n = a.nrows();
  SsspResult result;
  result.dist.assign(n, kInfDist);
  if (parent) parent->assign(n, grb::all_indices);

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  result.dist[source] = 0.0;
  heap.push({0.0, source});

  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > result.dist[u]) continue;  // stale entry
    ++result.stats.outer_iterations;   // settled vertices

    auto cols = a.row_indices(u);
    auto vals = a.row_values(u);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const Index v = cols[k];
      const double cand = d + vals[k];
      ++result.stats.relax_requests;
      if (cand < result.dist[v]) {
        result.dist[v] = cand;
        if (parent) (*parent)[v] = u;
        heap.push({cand, v});
      }
    }
  }
  return result;
}

}  // namespace

SsspResult dijkstra(const grb::Matrix<double>& a, Index source) {
  check_sssp_inputs(a, source);
  check_nonnegative_weights(a);
  return dijkstra_impl(a, source, nullptr);
}

SsspResult dijkstra(const GraphPlan& plan, grb::Context&, Index source,
                    const ExecOptions&) {
  grb::detail::check_index(source, plan.num_vertices(), "sssp: source");
  return dijkstra_impl(plan.matrix(), source, nullptr);
}

SsspResult dijkstra_with_parents(const grb::Matrix<double>& a, Index source,
                                 std::vector<Index>& parent) {
  check_sssp_inputs(a, source);
  check_nonnegative_weights(a);
  return dijkstra_impl(a, source, &parent);
}

}  // namespace dsg
