#include "sssp/dijkstra.hpp"

#include <queue>
#include <utility>
#include <vector>

#include "testing/fault_injection.hpp"

namespace dsg {

namespace {

/// (distance, vertex) min-heap entry; lazy deletion via distance check.
using HeapEntry = std::pair<double, Index>;

/// Polling cadence: the heap loop has no round structure, so the control
/// is checked every kPollStride settled vertices (cheap enough to keep
/// cancel latency low, rare enough not to tax steady_clock).
constexpr std::uint64_t kPollStride = 1024;

/// Core; inputs must be validated by the caller (the public wrappers
/// validate per call, the plan-based entry relies on the plan's one-time
/// validation).
SsspResult dijkstra_impl(const grb::Matrix<double>& a, Index source,
                         std::vector<Index>* parent,
                         const QueryControl* control) {
  const Index n = a.nrows();
  SsspResult result;
  result.dist.assign(n, kInfDist);
  if (parent) parent->assign(n, grb::all_indices);

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  result.dist[source] = 0.0;
  heap.push({0.0, source});

  // dist is relax-only, so any interruption cut is a valid upper bound.
  SsspStatus status = poll_control(control);
  while (status == SsspStatus::kComplete && !heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > result.dist[u]) continue;  // stale entry
    ++result.stats.outer_iterations;   // settled vertices
    if (result.stats.outer_iterations % kPollStride == 0) {
      status = poll_control(control);
    }
    testing::fault_point("dijkstra/settle");

    auto cols = a.row_indices(u);
    auto vals = a.row_values(u);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const Index v = cols[k];
      const double cand = d + vals[k];
      ++result.stats.relax_requests;
      if (cand < result.dist[v]) {
        result.dist[v] = cand;
        if (parent) (*parent)[v] = u;
        heap.push({cand, v});
      }
    }
  }
  result.status = status;
  return result;
}

}  // namespace

SsspResult dijkstra(const grb::Matrix<double>& a, Index source) {
  check_sssp_inputs(a, source);
  check_nonnegative_weights(a);
  return dijkstra_impl(a, source, nullptr, nullptr);
}

SsspResult dijkstra(const GraphPlan& plan, grb::Context&, Index source,
                    const ExecOptions& exec) {
  grb::detail::check_index(source, plan.num_vertices(), "sssp: source");
  return dijkstra_impl(plan.matrix(), source, nullptr, exec.control);
}

SsspResult dijkstra_with_parents(const grb::Matrix<double>& a, Index source,
                                 std::vector<Index>& parent) {
  check_sssp_inputs(a, source);
  check_nonnegative_weights(a);
  return dijkstra_impl(a, source, &parent, nullptr);
}

}  // namespace dsg
