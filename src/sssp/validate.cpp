#include "sssp/validate.hpp"

#include <cmath>
#include <deque>
#include <sstream>

namespace dsg {

namespace {

ValidationReport fail(std::string message) {
  return {false, std::move(message)};
}

}  // namespace

ValidationReport validate_sssp(const grb::Matrix<double>& a, Index source,
                               const std::vector<double>& dist,
                               double tolerance) {
  const Index n = a.nrows();
  if (dist.size() != n) {
    return fail("dist size " + std::to_string(dist.size()) + " != |V| " +
                std::to_string(n));
  }
  if (dist[source] != 0.0) {
    std::ostringstream os;
    os << "dist[source=" << source << "] = " << dist[source] << ", want 0";
    return fail(os.str());
  }

  // Reachability via BFS over the structure.
  std::vector<unsigned char> reachable(n, 0);
  {
    std::deque<Index> queue;
    reachable[source] = 1;
    queue.push_back(source);
    while (!queue.empty()) {
      const Index u = queue.front();
      queue.pop_front();
      for (Index v : a.row_indices(u)) {
        if (!reachable[v]) {
          reachable[v] = 1;
          queue.push_back(v);
        }
      }
    }
  }

  ValidationReport report;
  for (Index v = 0; v < n; ++v) {
    // The library-wide convention (see SsspResult): entries are either a
    // real distance or exactly +inf.  NaN never compares true against the
    // inf checks below, so reject it explicitly with a clear message.
    if (std::isnan(dist[v])) {
      std::ostringstream os;
      os << "vertex " << v << " has NaN distance (unreachable must be +inf)";
      return fail(os.str());
    }
    if (reachable[v] && dist[v] == kInfDist) {
      std::ostringstream os;
      os << "vertex " << v << " is reachable but dist is inf";
      return fail(os.str());
    }
    if (!reachable[v] && dist[v] != kInfDist) {
      std::ostringstream os;
      os << "vertex " << v << " is unreachable but dist = " << dist[v];
      return fail(os.str());
    }
  }

  // Relaxation fixed point + tight predecessor existence.
  std::vector<unsigned char> has_pred(n, 0);
  has_pred[source] = 1;
  bool violated = false;
  std::ostringstream violation;
  a.for_each([&](Index u, Index v, const double& w) {
    if (violated || dist[u] == kInfDist) return;
    if (dist[v] > dist[u] + w + tolerance) {
      violation << "edge (" << u << "," << v << ",w=" << w
                << ") violates triangle inequality: " << dist[v] << " > "
                << dist[u] + w;
      violated = true;
      return;
    }
    if (std::abs(dist[u] + w - dist[v]) <= tolerance) has_pred[v] = 1;
  });
  if (violated) return fail(violation.str());

  for (Index v = 0; v < n; ++v) {
    if (dist[v] != kInfDist && !has_pred[v]) {
      std::ostringstream os;
      os << "vertex " << v << " (dist " << dist[v]
         << ") has no tight predecessor";
      return fail(os.str());
    }
  }
  return report;
}

ValidationReport compare_distances(const std::vector<double>& expected,
                                   const std::vector<double>& actual,
                                   double tolerance) {
  if (expected.size() != actual.size()) {
    return fail("size mismatch: " + std::to_string(expected.size()) + " vs " +
                std::to_string(actual.size()));
  }
  for (std::size_t v = 0; v < expected.size(); ++v) {
    const double e = expected[v], g = actual[v];
    const bool einf = (e == kInfDist), ginf = (g == kInfDist);
    if (einf != ginf || (!einf && std::abs(e - g) > tolerance)) {
      std::ostringstream os;
      os << "dist[" << v << "]: expected " << e << ", got " << g;
      return fail(os.str());
    }
  }
  return {};
}

}  // namespace dsg
